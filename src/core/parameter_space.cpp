#include "safeopt/core/parameter_space.h"

#include "safeopt/support/contracts.h"

namespace safeopt::core {

ParameterSpace::ParameterSpace(std::initializer_list<Parameter> parameters) {
  for (const Parameter& p : parameters) add(p);
}

void ParameterSpace::add(Parameter parameter) {
  SAFEOPT_EXPECTS(!parameter.name.empty());
  SAFEOPT_EXPECTS(parameter.lower <= parameter.upper);
  SAFEOPT_EXPECTS(!index_of(parameter.name).has_value());
  parameters_.push_back(std::move(parameter));
}

const Parameter& ParameterSpace::operator[](std::size_t i) const {
  SAFEOPT_EXPECTS(i < parameters_.size());
  return parameters_[i];
}

std::optional<std::size_t> ParameterSpace::index_of(
    std::string_view name) const noexcept {
  for (std::size_t i = 0; i < parameters_.size(); ++i) {
    if (parameters_[i].name == name) return i;
  }
  return std::nullopt;
}

std::vector<std::string> ParameterSpace::names() const {
  std::vector<std::string> out;
  out.reserve(parameters_.size());
  for (const Parameter& p : parameters_) out.push_back(p.name);
  return out;
}

opt::Box ParameterSpace::box() const {
  SAFEOPT_EXPECTS(!parameters_.empty());
  std::vector<double> lo;
  std::vector<double> hi;
  lo.reserve(parameters_.size());
  hi.reserve(parameters_.size());
  for (const Parameter& p : parameters_) {
    lo.push_back(p.lower);
    hi.push_back(p.upper);
  }
  return opt::Box(std::move(lo), std::move(hi));
}

expr::ParameterAssignment ParameterSpace::assignment(
    std::span<const double> values) const {
  SAFEOPT_EXPECTS(values.size() == parameters_.size());
  expr::ParameterAssignment assignment;
  for (std::size_t i = 0; i < parameters_.size(); ++i) {
    assignment.set(parameters_[i].name, values[i]);
  }
  return assignment;
}

std::vector<double> ParameterSpace::values(
    const expr::ParameterAssignment& assignment) const {
  std::vector<double> out;
  out.reserve(parameters_.size());
  for (const Parameter& p : parameters_) out.push_back(assignment.get(p.name));
  return out;
}

}  // namespace safeopt::core
