// Fixture: the approved forms the rule must NOT flag.
#include <string>

#include "safeopt/support/strings.h"

std::string f(const std::string& name, int n) {
  // safeopt::concat is the sanctioned spelling.
  std::string message = safeopt::concat("prefix ", name, " suffix");
  // A `+` inside a string literal is content, not an operator.
  message = take("a + b is an expression");
  // Increment/compound-assign adjacent to a quote are not concatenation.
  message += "tail";
  int i = 0;
  ++i;
  // Numeric addition near a string-valued call is fine.
  message = safeopt::concat("n=", std::to_string(n + 1));
  // safeopt-lint: allow(string-concat-plus) — intentional, measured hot path
  message = "allowed " + name;
  return message;
}
