#include "safeopt/ftio/writer.h"

#include <gtest/gtest.h>

#include "safeopt/ftio/parser.h"

namespace safeopt::ftio {
namespace {

ParsedFaultTree sample() {
  return parse_fault_tree(R"(
tree Sample;
toplevel top;
top or g a;
g inhibit b cond;
a prob = 0.1;
b prob = 0.25;
cond condition prob = 0.5;
)");
}

TEST(WriterTest, TextFormatContainsAllStatements) {
  const ParsedFaultTree model = sample();
  const std::string text = write_fault_tree(model.tree, model.probabilities);
  EXPECT_NE(text.find("tree Sample;"), std::string::npos);
  EXPECT_NE(text.find("toplevel top;"), std::string::npos);
  EXPECT_NE(text.find("g inhibit b cond;"), std::string::npos);
  EXPECT_NE(text.find("a prob = 0.1;"), std::string::npos);
  EXPECT_NE(text.find("cond condition prob = 0.5;"), std::string::npos);
}

TEST(WriterTest, VoteGateRoundTripsItsThreshold) {
  const ParsedFaultTree model = parse_fault_tree(R"(
toplevel v;
v 2of3 a b c;
a prob = 0.1;
b prob = 0.1;
c prob = 0.1;
)");
  const std::string text = write_fault_tree(model.tree, model.probabilities);
  EXPECT_NE(text.find("v 2of3 a b c;"), std::string::npos);
  const ParsedFaultTree again = parse_fault_tree(text);
  EXPECT_EQ(again.tree.vote_threshold(*again.tree.find("v")), 2u);
}

TEST(DotExportTest, UsesPaperSymbolShapes) {
  const ParsedFaultTree model = sample();
  const std::string dot = to_dot(model.tree, &model.probabilities);
  EXPECT_NE(dot.find("digraph \"Sample\""), std::string::npos);
  // Paper Fig. 1 conventions: basic events are circles, OR gates
  // triangles, INHIBIT gates hexagons, conditions ellipses.
  EXPECT_NE(dot.find("\"a\" [shape=circle"), std::string::npos);
  EXPECT_NE(dot.find("\"top\" [shape=invtriangle"), std::string::npos);
  EXPECT_NE(dot.find("\"g\" [shape=hexagon"), std::string::npos);
  EXPECT_NE(dot.find("\"cond\" [shape=ellipse"), std::string::npos);
  // Probabilities make it into leaf labels; condition edges are dashed.
  EXPECT_NE(dot.find("p=0.25"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(DotExportTest, EdgesFollowChildren) {
  const ParsedFaultTree model = sample();
  const std::string dot = to_dot(model.tree);
  EXPECT_NE(dot.find("\"top\" -> \"g\""), std::string::npos);
  EXPECT_NE(dot.find("\"top\" -> \"a\""), std::string::npos);
  EXPECT_NE(dot.find("\"g\" -> \"b\""), std::string::npos);
  EXPECT_NE(dot.find("\"g\" -> \"cond\""), std::string::npos);
}

TEST(JsonExportTest, ContainsNodesAndProbabilities) {
  const ParsedFaultTree model = sample();
  const std::string json = to_json(model.tree, model.probabilities);
  EXPECT_NE(json.find("\"name\": \"Sample\""), std::string::npos);
  EXPECT_NE(json.find("\"toplevel\": \"top\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"basic-event\", \"prob\": 0.25"),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"condition\", \"prob\": 0.5"),
            std::string::npos);
  EXPECT_NE(json.find("\"gate\": \"INHIBIT\""), std::string::npos);
  EXPECT_NE(json.find("\"children\": [\"b\", \"cond\"]"), std::string::npos);
}

TEST(JsonExportTest, EscapesSpecialCharacters) {
  fta::FaultTree tree("quote\"name");
  const auto a = tree.add_basic_event("a");
  tree.set_top(tree.add_or("top", {a}));
  const auto input = fta::QuantificationInput::for_tree(tree, 0.1);
  const std::string json = to_json(tree, input);
  EXPECT_NE(json.find("quote\\\"name"), std::string::npos);
}

}  // namespace
}  // namespace safeopt::ftio
