#include "safeopt/support/error.h"

namespace safeopt {

std::string_view category_name(ErrorCategory category) noexcept {
  switch (category) {
    case ErrorCategory::kInvalidInput: return "invalid_input";
    case ErrorCategory::kResourceExhausted: return "resource_exhausted";
    case ErrorCategory::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCategory::kCancelled: return "cancelled";
    case ErrorCategory::kInternal: return "internal";
  }
  return "internal";
}

}  // namespace safeopt
