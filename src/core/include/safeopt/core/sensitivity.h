// Sensitivity analysis around a configuration: exact gradients (autodiff) of
// the cost and of each hazard probability with respect to each free
// parameter, plus dimensionless elasticities. This quantifies the paper's
// §IV-C.2 observation that "the dependency of the risk is not symmetric in
// the free parameters" (timer 1 may be chosen more conservatively than
// timer 2), and supports the "rough estimation about how important the
// different parameters are" promised in §V even with crude statistics.
#ifndef SAFEOPT_CORE_SENSITIVITY_H
#define SAFEOPT_CORE_SENSITIVITY_H

#include <string>
#include <vector>

#include "safeopt/core/cost_model.h"
#include "safeopt/core/parameter_space.h"

namespace safeopt::core {

/// Sensitivities of one parameter at the study point.
struct ParameterSensitivity {
  std::string parameter;
  /// ∂f_cost/∂x_j.
  double cost_gradient = 0.0;
  /// Elasticity (x_j / f_cost)·∂f_cost/∂x_j — the % cost change per % change
  /// of the parameter; comparable across parameters with different units.
  double cost_elasticity = 0.0;
  /// ∂P(H_i)/∂x_j per hazard, in CostModel hazard order.
  std::vector<double> hazard_gradients;
};

/// Full sensitivity report at `at`. Parameter order follows `space`.
[[nodiscard]] std::vector<ParameterSensitivity> sensitivity_analysis(
    const CostModel& model, const ParameterSpace& space,
    const expr::ParameterAssignment& at);

}  // namespace safeopt::core

#endif  // SAFEOPT_CORE_SENSITIVITY_H
