// Experiment: paper Fig. 6 — "Probability of false alarms, if an OHV is
// driving correctly", plotted against the runtime of timer 2 for the
// deployed design ("without_LB4") and the light-barrier fix ("with_LB4"),
// plus the stronger LB-at-ODfinal fix discussed in the text.
//
// Paper values to compare against:
//   without LB4 @ T2=15.6  -> more than 80%
//   without LB4 @ T2=30    -> more than 95%      (footnote 4)
//   with LB4    @ optimum  -> ≈ 40%
//   LB at ODfinal          -> ≈ 4%
//
// The analytic curves are cross-checked against the discrete-event traffic
// simulation at three grid points.
#include <cstdio>

#include "safeopt/core/environment_sweep.h"
#include "safeopt/elbtunnel/elbtunnel_model.h"
#include "safeopt/sim/traffic.h"

int main() {
  using namespace safeopt;
  const elbtunnel::ElbtunnelModel model;

  std::printf("=== Fig. 6: P(false alarm | correct OHV present) ===\n\n");

  const core::SweepTable table = core::sweep_parameter(
      "T2", 5.0, 25.0, 21, {},
      {{"without_LB4",
        model.false_alarm_given_ohv(elbtunnel::Design::kBaseline)},
       {"with_LB4", model.false_alarm_given_ohv(elbtunnel::Design::kWithLB4)},
       {"LB_at_ODfinal",
        model.false_alarm_given_ohv(
            elbtunnel::Design::kLightBarrierAtODfinal)}});
  std::printf("%s\n", table.to_csv().c_str());

  const auto at = [&](elbtunnel::Design design, double t2) {
    return model.false_alarm_given_ohv(design).evaluate({{"T2", t2}});
  };
  std::printf("headline numbers (measured vs paper):\n");
  std::printf("  without LB4 @ 15.6 min: %5.1f%%   (paper: > 80%%)\n",
              100.0 * at(elbtunnel::Design::kBaseline, 15.6));
  std::printf("  without LB4 @ 30 min:   %5.1f%%   (paper: > 95%%)\n",
              100.0 * at(elbtunnel::Design::kBaseline, 30.0));
  std::printf("  with LB4    @ 15.6 min: %5.1f%%   (paper: ~ 40%%)\n",
              100.0 * at(elbtunnel::Design::kWithLB4, 15.6));
  std::printf("  LB at ODfinal:          %5.1f%%   (paper: ~ 4%%)\n\n",
              100.0 * at(elbtunnel::Design::kLightBarrierAtODfinal, 15.6));

  std::printf("discrete-event cross-check (40 simulated days each):\n");
  std::printf("%-16s %6s %12s %12s\n", "design", "T2", "analytic",
              "simulated");
  const std::pair<elbtunnel::Design, const char*> designs[] = {
      {elbtunnel::Design::kBaseline, "without_LB4"},
      {elbtunnel::Design::kWithLB4, "with_LB4"},
      {elbtunnel::Design::kLightBarrierAtODfinal, "LB_at_ODfinal"}};
  for (const auto& [design, name] : designs) {
    for (const double t2 : {10.0, 15.6, 25.0}) {
      sim::TrafficConfig config = model.traffic_config(30.0, t2, design);
      config.ohv_arrival_rate_per_min = 0.02;
      config.horizon_minutes = 60.0 * 24.0 * 40.0;
      const auto stats = sim::simulate_height_control(config, 0x5eed);
      std::printf("%-16s %6.1f %11.1f%% %11.1f%%\n", name, t2,
                  100.0 * at(design, t2),
                  100.0 * stats.correct_ohv_alarm_fraction());
    }
  }
  return 0;
}
