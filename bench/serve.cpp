// Experiment: the `safeopt serve` front end as a measured system — cached-
// quantify latency over real loopback HTTP, compile amortization across
// repeated documents, single-flight dedup under a concurrent cold burst,
// and the admission scheduler's weighted-fairness ratio.
//
// Contract flags (scripts/compare_bench.py --serve gates them):
//
//   parity_with_cli      the HTTP response body is byte-identical to the
//                        offline AnalysisGraph render (the same renderer
//                        the CLI prints, so HTTP == `safeopt quantify
//                        --json` by construction);
//   single_flight_dedup  8 concurrent requests against a cold cache run
//                        exactly ONE compile;
//   compile_amortization fraction of compile-pass lookups served from
//                        cache over the repeated-document run (gate:
//                        >= 0.99);
//   fairness_ratio       dispatched-job ratio of a weight-3 tenant over a
//                        weight-1 tenant across a backlogged window
//                        (gate: 3.0 within tolerance).
//
// Latency percentiles are measured over loopback (connect + request +
// response per sample) and reported for trend-watching, never gated — CI
// runners' clocks differ too much.
//
// Usage: bench_serve [--model PATH] [--requests N] [--json PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "safeopt/serve/analysis_graph.h"
#include "safeopt/serve/scheduler.h"
#include "safeopt/serve/server.h"
#include "safeopt/support/net.h"
#include "safeopt/support/strings.h"
#include "safeopt/support/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;
using safeopt::TcpSocket;
using safeopt::concat;

std::string json_escape_document(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

struct Reply {
  int status = 0;
  std::string body;
};

Reply post_quantify(std::uint16_t port, const std::string& body,
                    const std::string& extra_headers = "") {
  TcpSocket socket = TcpSocket::connect_loopback(port);
  socket.write_all(concat("POST /v1/quantify HTTP/1.1\r\nContent-Length: ",
                          std::to_string(body.size()), "\r\n", extra_headers,
                          "\r\n", body));
  std::string raw;
  char chunk[4096];
  while (true) {
    const std::size_t n = socket.read_some(chunk, sizeof(chunk));
    if (n == 0) break;
    raw.append(chunk, n);
  }
  Reply reply;
  const std::size_t space = raw.find(' ');
  if (space != std::string::npos) {
    reply.status = std::atoi(raw.c_str() + space + 1);
  }
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end != std::string::npos) reply.body = raw.substr(header_end + 4);
  return reply;
}

double percentile(std::vector<double> sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  std::sort(sorted_us.begin(), sorted_us.end());
  const std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(index, sorted_us.size() - 1)];
}

/// Weighted-fairness ratio straight off the scheduler: a 3:1 tenant pair,
/// fully backlogged, released against one worker; the dispatch-order ratio
/// over the aligned prefix is the SFQ guarantee under test.
double fairness_ratio() {
  safeopt::ThreadPool pool(1);
  safeopt::serve::SchedulerOptions options;
  options.pool = &pool;
  options.max_concurrent = 1;
  options.max_queue_per_tenant = 64;
  options.tenant_weights = {{"heavy", 3.0}, {"light", 1.0}};
  options.start_paused = true;
  safeopt::serve::AdmissionScheduler scheduler(options);

  std::mutex mutex;
  std::vector<std::string> order;
  for (int i = 0; i < 32; ++i) {
    for (const char* tenant : {"heavy", "light"}) {
      scheduler.submit(tenant, [&mutex, &order, tenant] {
        std::lock_guard<std::mutex> lock(mutex);
        order.emplace_back(tenant);
      });
    }
  }
  scheduler.resume();
  scheduler.drain();

  // Measure at the moment the heavy tenant's backlog drains: up to that
  // dispatch both tenants are continuously backlogged, which is exactly the
  // interval the SFQ weight guarantee covers.
  double heavy = 0.0;
  double light = 0.0;
  for (const std::string& name : order) {
    (name == "heavy" ? heavy : light) += 1.0;
    if (heavy >= 32.0) break;
  }
  return light > 0.0 ? heavy / light : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safeopt;

  std::string model_path = "examples/models/cooling_system.ft";
  std::string json_path;
  int requests = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
    }
  }
  if (!std::ifstream(model_path).good() &&
      std::ifstream("../" + model_path).good()) {
    model_path = "../" + model_path;
  }
  std::ifstream in(model_path);
  if (!in.good()) {
    std::fprintf(stderr, "model %s not found (pass --model PATH)\n",
                 model_path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::string document = text.str();
  const std::string request_body =
      concat("{\"document\": ", json_escape_document(document),
             ", \"model\": \"", model_path, "\"}");

  // ---- parity + cached-latency run over one server ----------------------
  serve::ServerOptions server_options;
  server_options.threads = 2;
  serve::Server server(server_options);
  server.start();

  serve::AnalysisOptions offline_options;
  offline_options.model = model_path;
  serve::AnalysisGraph offline(1 << 22);
  const std::string offline_body =
      offline.quantify(document, offline_options, nullptr);

  const Reply first = post_quantify(server.port(), request_body);
  const bool parity_with_cli =
      first.status == 200 && first.body == offline_body;

  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    const auto start = Clock::now();
    const Reply reply = post_quantify(server.port(), request_body);
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        Clock::now() - start);
    if (reply.status != 200) {
      std::fprintf(stderr, "request %d failed with status %d\n", i,
                   reply.status);
      return 1;
    }
    latencies_us.push_back(static_cast<double>(elapsed.count()) / 1000.0);
  }
  const serve::CacheStats amortized = server.cache_stats();
  double compile_amortization = 0.0;
  if (amortized.passes.count("compile") != 0) {
    const auto& compile = amortized.passes.at("compile");
    compile_amortization =
        static_cast<double>(compile.hits) /
        static_cast<double>(compile.hits + compile.misses);
  }
  server.stop();

  // ---- single-flight dedup: concurrent cold burst -----------------------
  serve::Server cold(server_options);
  cold.start();
  {
    std::vector<std::thread> clients;
    std::atomic<int> failures{0};
    clients.reserve(8);
    for (int i = 0; i < 8; ++i) {
      clients.emplace_back([&, port = cold.port()] {
        const Reply reply = post_quantify(port, request_body);
        if (reply.status != 200) failures.fetch_add(1);
      });
    }
    for (auto& client : clients) client.join();
    if (failures.load() != 0) {
      std::fprintf(stderr, "cold-burst requests failed\n");
      return 1;
    }
  }
  const serve::CacheStats cold_stats = cold.cache_stats();
  const std::uint64_t cold_compiles =
      cold_stats.passes.count("compile") != 0
          ? cold_stats.passes.at("compile").misses
          : 0;
  const bool single_flight_dedup = cold_compiles == 1;
  cold.stop();

  const double ratio = fairness_ratio();
  const double p50 = percentile(latencies_us, 0.50);
  const double p99 = percentile(latencies_us, 0.99);

  std::printf("bench_serve: %d cached quantify requests over loopback\n",
              requests);
  std::printf("  %-24s %10.1f us\n", "latency p50", p50);
  std::printf("  %-24s %10.1f us\n", "latency p99", p99);
  std::printf("  %-24s %10.4f\n", "compile_amortization", compile_amortization);
  std::printf("  %-24s %10s\n", "parity_with_cli",
              parity_with_cli ? "true" : "false");
  std::printf("  %-24s %10s (cold-burst compiles: %llu)\n",
              "single_flight_dedup", single_flight_dedup ? "true" : "false",
              static_cast<unsigned long long>(cold_compiles));
  std::printf("  %-24s %10.2f (weights 3:1)\n", "fairness_ratio", ratio);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n";
    out << "  \"requests\": " << requests << ",\n";
    char number[64];
    std::snprintf(number, sizeof(number), "%.1f", p50);
    out << "  \"cached_quantify_p50_us\": " << number << ",\n";
    std::snprintf(number, sizeof(number), "%.1f", p99);
    out << "  \"cached_quantify_p99_us\": " << number << ",\n";
    std::snprintf(number, sizeof(number), "%.6f", compile_amortization);
    out << "  \"compile_amortization\": " << number << ",\n";
    out << "  \"parity_with_cli\": " << (parity_with_cli ? "true" : "false")
        << ",\n";
    out << "  \"single_flight_dedup\": "
        << (single_flight_dedup ? "true" : "false") << ",\n";
    std::snprintf(number, sizeof(number), "%.4f", ratio);
    out << "  \"fairness_ratio\": " << number << "\n";
    out << "}\n";
  }
  return parity_with_cli && single_flight_dedup ? 0 : 1;
}
