#include "safeopt/mc/uncertainty.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "safeopt/stats/distribution.h"

namespace safeopt::mc {
namespace {

/// top = OR(a, b), point estimates P(a) = P(b) = 1e-3.
struct Fixture {
  Fixture() : tree("u") {
    const auto a = tree.add_basic_event("a");
    const auto b = tree.add_basic_event("b");
    tree.set_top(tree.add_or("top", {a, b}));
    mcs = fta::minimal_cut_sets(tree);
  }
  fta::FaultTree tree;
  fta::CutSetCollection mcs;
};

TEST(UncertainQuantificationTest, ExactLeavesSampleToPointEstimates) {
  const Fixture f;
  const UncertainQuantification u(
      f.tree, fta::QuantificationInput::for_tree(f.tree, 1e-3));
  Rng rng(1);
  const fta::QuantificationInput sampled = u.sample(rng);
  EXPECT_DOUBLE_EQ(sampled.basic_event_probability[0], 1e-3);
  EXPECT_DOUBLE_EQ(sampled.basic_event_probability[1], 1e-3);
}

TEST(UncertainQuantificationTest, UncertainLeavesVaryAcrossSamples) {
  const Fixture f;
  UncertainQuantification u(
      f.tree, fta::QuantificationInput::for_tree(f.tree, 1e-3));
  u.set_lognormal_error_factor("a", 1e-3, 3.0);
  Rng rng(2);
  const double first = u.sample(rng).basic_event_probability[0];
  const double second = u.sample(rng).basic_event_probability[0];
  EXPECT_NE(first, second);
  // Samples are probabilities.
  for (int i = 0; i < 1000; ++i) {
    const double p = u.sample(rng).basic_event_probability[0];
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(UncertainQuantificationTest, ErrorFactorPinsMedianAndP95) {
  const Fixture f;
  UncertainQuantification u(
      f.tree, fta::QuantificationInput::for_tree(f.tree, 1e-3));
  u.set_lognormal_error_factor("a", 1e-3, 3.0);
  Rng rng(3);
  std::vector<double> draws(40000);
  for (double& d : draws) d = u.sample(rng).basic_event_probability[0];
  std::sort(draws.begin(), draws.end());
  // Median ≈ the point estimate, 95th percentile ≈ EF·median.
  EXPECT_NEAR(draws[draws.size() / 2], 1e-3, 1e-4);
  EXPECT_NEAR(draws[static_cast<std::size_t>(0.95 * draws.size())], 3e-3,
              3e-4);
}

TEST(PropagateUncertaintyTest, ExactModelHasZeroSpread) {
  const Fixture f;
  const UncertainQuantification u(
      f.tree, fta::QuantificationInput::for_tree(f.tree, 1e-3));
  const UncertaintyResult result = propagate_uncertainty(u, f.mcs, 500);
  EXPECT_DOUBLE_EQ(result.p05, result.p95);
  EXPECT_DOUBLE_EQ(result.median, result.point_estimate);
  EXPECT_NEAR(result.point_estimate, 2e-3, 1e-12);
}

TEST(PropagateUncertaintyTest, SpreadGrowsWithErrorFactor) {
  const Fixture f;
  double previous_span = 1.0;
  for (const double error_factor : {1.5, 3.0, 10.0}) {
    UncertainQuantification u(
        f.tree, fta::QuantificationInput::for_tree(f.tree, 1e-3));
    u.set_lognormal_error_factor("a", 1e-3, error_factor);
    u.set_lognormal_error_factor("b", 1e-3, error_factor);
    const UncertaintyResult result = propagate_uncertainty(u, f.mcs, 4000);
    EXPECT_GT(result.uncertainty_span(), previous_span);
    previous_span = result.uncertainty_span();
    // The median stays near the point estimate; the mean is pulled up by
    // the lognormal's right tail.
    EXPECT_GT(result.mean, result.median);
    EXPECT_LE(result.p05, result.median);
    EXPECT_LE(result.median, result.p95);
  }
}

TEST(PropagateUncertaintyTest, IsDeterministicPerSeed) {
  const Fixture f;
  UncertainQuantification u(
      f.tree, fta::QuantificationInput::for_tree(f.tree, 1e-3));
  u.set_lognormal_error_factor("a", 1e-3, 3.0);
  const auto r1 = propagate_uncertainty(u, f.mcs, 1000, 42);
  const auto r2 = propagate_uncertainty(u, f.mcs, 1000, 42);
  EXPECT_DOUBLE_EQ(r1.median, r2.median);
  EXPECT_DOUBLE_EQ(r1.p95, r2.p95);
}

TEST(PropagateUncertaintyTest, ConditionsCanBeUncertainToo) {
  fta::FaultTree tree("c");
  const auto pf = tree.add_basic_event("pf");
  const auto env = tree.add_condition("env");
  tree.set_top(tree.add_inhibit("top", pf, env));
  fta::QuantificationInput point = fta::QuantificationInput::for_tree(tree, 0.01);
  point.set(tree, "env", 0.5);
  UncertainQuantification u(tree, point);
  u.set_uncertainty("env", std::make_shared<stats::Uniform>(0.2, 0.8));
  const auto mcs = fta::minimal_cut_sets(tree);
  const UncertaintyResult result = propagate_uncertainty(u, mcs, 4000);
  // E[P(top)] = 0.01 · E[env] = 0.01 · 0.5.
  EXPECT_NEAR(result.mean, 0.005, 3e-4);
  EXPECT_GT(result.p95, result.p05);
}

}  // namespace
}  // namespace safeopt::mc
