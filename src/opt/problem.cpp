#include "safeopt/opt/problem.h"

#include <algorithm>
#include <cmath>

#include "safeopt/support/contracts.h"

namespace safeopt::opt {

Box::Box(std::vector<double> lo, std::vector<double> hi)
    : lower(std::move(lo)), upper(std::move(hi)) {
  SAFEOPT_EXPECTS(lower.size() == upper.size());
  SAFEOPT_EXPECTS(!lower.empty());
  for (std::size_t i = 0; i < lower.size(); ++i) {
    SAFEOPT_EXPECTS(lower[i] <= upper[i]);
  }
}

Box Box::interval(double lo, double hi) { return Box({lo}, {hi}); }

bool Box::contains(std::span<const double> x) const noexcept {
  if (x.size() != lower.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < lower[i] || x[i] > upper[i]) return false;
  }
  return true;
}

std::vector<double> Box::project(std::span<const double> x) const {
  SAFEOPT_EXPECTS(x.size() == lower.size());
  std::vector<double> out(x.begin(), x.end());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::clamp(out[i], lower[i], upper[i]);
  }
  return out;
}

std::vector<double> Box::center() const {
  std::vector<double> out(lower.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = 0.5 * (lower[i] + upper[i]);
  }
  return out;
}

double Box::width(std::size_t i) const {
  SAFEOPT_EXPECTS(i < lower.size());
  return upper[i] - lower[i];
}

void Problem::evaluate_batch(std::span<const double> points,
                             std::span<double> out) const {
  const std::size_t dim = bounds.dimension();
  SAFEOPT_EXPECTS(points.size() == out.size() * dim);
  if (batch_objective) {
    batch_objective(points, out);
    return;
  }
  SAFEOPT_EXPECTS(static_cast<bool>(objective));
  for (std::size_t row = 0; row < out.size(); ++row) {
    out[row] = objective(points.subspan(row * dim, dim));
  }
}

std::vector<double> finite_difference_gradient(const Objective& objective,
                                               const Box& bounds,
                                               std::span<const double> x,
                                               std::size_t* evaluations) {
  SAFEOPT_EXPECTS(x.size() == bounds.dimension());
  std::vector<double> grad(x.size(), 0.0);
  std::vector<double> point(x.begin(), x.end());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double width = std::max(bounds.width(i), 1e-12);
    const double h = std::max(1e-7 * width, 1e-9 * std::abs(x[i]) + 1e-12);
    const double hi = std::min(x[i] + h, bounds.upper[i]);
    const double lo = std::max(x[i] - h, bounds.lower[i]);
    SAFEOPT_ASSERT(hi > lo);
    point[i] = hi;
    const double f_hi = objective(point);
    point[i] = lo;
    const double f_lo = objective(point);
    point[i] = x[i];
    grad[i] = (f_hi - f_lo) / (hi - lo);
    if (evaluations != nullptr) *evaluations += 2;
  }
  return grad;
}

}  // namespace safeopt::opt
