#include "safeopt/bdd/bdd.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../testutil/random_tree.h"

namespace safeopt::bdd {
namespace {

TEST(BddManagerTest, TerminalsAndVariables) {
  BddManager manager(3);
  const BddRef x = manager.variable(0);
  EXPECT_NE(x, kFalse);
  EXPECT_NE(x, kTrue);
  // Hash-consing: the same variable is the same node.
  EXPECT_EQ(x, manager.variable(0));
}

TEST(BddManagerTest, BasicBooleanIdentities) {
  BddManager m(2);
  const BddRef x = m.variable(0);
  const BddRef y = m.variable(1);
  EXPECT_EQ(m.apply_and(x, kTrue), x);
  EXPECT_EQ(m.apply_and(x, kFalse), kFalse);
  EXPECT_EQ(m.apply_or(x, kFalse), x);
  EXPECT_EQ(m.apply_or(x, kTrue), kTrue);
  EXPECT_EQ(m.apply_and(x, x), x);
  EXPECT_EQ(m.apply_or(x, x), x);
  EXPECT_EQ(m.apply_xor(x, x), kFalse);
  EXPECT_EQ(m.apply_not(m.apply_not(x)), x);
  // Canonicity: equivalent formulas share one node.
  EXPECT_EQ(m.apply_and(x, y), m.apply_and(y, x));
  EXPECT_EQ(m.apply_or(m.apply_and(x, y), x), x);  // absorption
}

TEST(BddManagerTest, EvaluateFollowsAssignment) {
  BddManager m(2);
  const BddRef f = m.apply_or(m.variable(0),
                              m.apply_not(m.variable(1)));
  EXPECT_TRUE(m.evaluate(f, {true, true}));
  EXPECT_TRUE(m.evaluate(f, {false, false}));
  EXPECT_FALSE(m.evaluate(f, {false, true}));
}

TEST(BddManagerTest, AtLeastMatchesNaiveCount) {
  BddManager m(4);
  std::vector<BddRef> vars;
  for (std::uint32_t i = 0; i < 4; ++i) vars.push_back(m.variable(i));
  for (std::uint32_t k = 1; k <= 4; ++k) {
    const BddRef f = m.at_least(vars, k);
    for (std::uint32_t mask = 0; mask < 16; ++mask) {
      std::vector<bool> assignment(4);
      std::uint32_t count = 0;
      for (std::uint32_t i = 0; i < 4; ++i) {
        assignment[i] = (mask & (1u << i)) != 0;
        count += assignment[i] ? 1 : 0;
      }
      EXPECT_EQ(m.evaluate(f, assignment), count >= k)
          << "k=" << k << " mask=" << mask;
    }
  }
}

TEST(BddManagerTest, ProbabilityShannonExactOnSmallFormula) {
  BddManager m(2);
  const BddRef f = m.apply_or(m.variable(0), m.variable(1));
  // P(x ∪ y) = 0.1 + 0.2 − 0.02.
  EXPECT_NEAR(m.probability(f, {0.1, 0.2}), 0.28, 1e-15);
}

TEST(BddManagerTest, StatisticsTrackCacheAndNodes) {
  BddManager m(8);
  std::vector<BddRef> vars;
  for (std::uint32_t i = 0; i < 8; ++i) vars.push_back(m.variable(i));
  (void)m.at_least(vars, 4);
  EXPECT_GT(m.statistics().node_count, 8u);
  EXPECT_GT(m.statistics().ite_calls, 0u);
}

TEST(CompileTest, XorCompilesAsExactlyOne) {
  fta::FaultTree tree("xor3");
  const auto a = tree.add_basic_event("a");
  const auto b = tree.add_basic_event("b");
  const auto c = tree.add_basic_event("c");
  tree.set_top(tree.add_xor("top", {a, b, c}));
  CompiledFaultTree compiled = compile(tree);
  // P(exactly one of three fair coins) = 3/8.
  fta::QuantificationInput input =
      fta::QuantificationInput::for_tree(tree, 0.5);
  EXPECT_NEAR(compiled.probability(input), 0.375, 1e-15);
}

TEST(CompileTest, InhibitBehavesAsAnd) {
  fta::FaultTree tree("inh");
  const auto pf = tree.add_basic_event("pf");
  const auto env = tree.add_condition("env");
  tree.set_top(tree.add_inhibit("top", pf, env));
  CompiledFaultTree compiled = compile(tree);
  fta::QuantificationInput input = fta::QuantificationInput::for_tree(tree, 0.0);
  input.set(tree, "pf", 0.3);
  input.set(tree, "env", 0.5);
  EXPECT_NEAR(compiled.probability(input), 0.15, 1e-15);
}

TEST(BddOptionsTest, ExplicitGeometryIsHonoredAndPowerOfTwo) {
  BddOptions options;
  options.initial_table_size = 1u << 8;
  options.cache_size = 1000;  // not a power of two: must round up
  BddManager m(4, options);
  const std::size_t slots = m.statistics().cache_slots;
  EXPECT_GE(slots, 1000u);
  EXPECT_EQ(slots & (slots - 1), 0u) << "cache_slots must be a power of two";
}

TEST(BddOptionsTest, StatisticsInvariantsHold) {
  // The documented no-GC contract: node_count counts the 2 terminals plus
  // every hash-consed decision node, and live == peak by construction.
  BddManager m(6);
  std::vector<BddRef> vars;
  for (std::uint32_t i = 0; i < 6; ++i) vars.push_back(m.variable(i));
  (void)m.at_least(vars, 3);
  const BddStatistics& stats = m.statistics();
  EXPECT_GE(stats.node_count, 2u);
  EXPECT_EQ(stats.peak_node_count, stats.node_count);
  EXPECT_EQ(stats.decision_node_count(), stats.node_count - 2);
  EXPECT_GE(stats.ite_calls, stats.cache_hits);
}

TEST(BddOptionsTest, CacheGeometryNeverChangesResults) {
  // The ITE cache only memoizes: a starved 16-slot cache and a huge one
  // must produce the bitwise-identical diagram and probability.
  const fta::FaultTree tree =
      testutil::random_tree(11, {.basic_events = 10, .gates = 9});
  const fta::QuantificationInput input =
      testutil::random_probabilities(tree, 11);

  BddOptions tiny;
  tiny.cache_size = 16;
  BddOptions huge;
  huge.cache_size = 1u << 20;
  CompiledFaultTree a = compile(tree, tiny);
  CompiledFaultTree b = compile(tree, huge);
  EXPECT_EQ(a.probability(input), b.probability(input));
  EXPECT_EQ(a.manager.statistics().decision_node_count(),
            b.manager.statistics().decision_node_count());
  EXPECT_GT(a.manager.statistics().cache_evictions,
            b.manager.statistics().cache_evictions);
}

TEST(BddOptionsTest, WeightOrderingAgreesWithDfsOnProbability) {
  // kWeight renumbers variables (small cones first) but compiles the same
  // function — probabilities agree to rounding across the two orders.
  for (std::uint64_t seed = 90; seed < 100; ++seed) {
    const fta::FaultTree tree =
        testutil::random_tree(seed, {.basic_events = 9, .gates = 8});
    const fta::QuantificationInput input =
        testutil::random_probabilities(tree, seed);
    BddOptions weight;
    weight.ordering = VariableOrdering::kWeight;
    CompiledFaultTree dfs = compile(tree);
    CompiledFaultTree weighted = compile(tree, weight);
    const double p_dfs = dfs.probability(input);
    EXPECT_NEAR(weighted.probability(input), p_dfs,
                1e-12 * std::max(p_dfs, 1e-300))
        << "seed " << seed;
  }
}

// --------------------------------------------------------------- properties

class BddVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BddVsBruteForce, ProbabilityMatchesEnumeration) {
  const fta::FaultTree tree = testutil::random_tree(
      GetParam(), {.basic_events = 7, .conditions = 1, .gates = 6});
  const fta::QuantificationInput input =
      testutil::random_probabilities(tree, GetParam());
  CompiledFaultTree compiled = compile(tree);
  EXPECT_NEAR(compiled.probability(input),
              fta::exact_probability_bruteforce(tree, input), 1e-12)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddVsBruteForce,
                         ::testing::Range<std::uint64_t>(0, 40));

class BddEvaluationAgreement : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BddEvaluationAgreement, StructureFunctionMatchesTree) {
  const fta::FaultTree tree = testutil::random_tree(
      GetParam(),
      {.basic_events = 5, .conditions = 1, .gates = 5, .allow_xor = true});
  CompiledFaultTree compiled = compile(tree);
  const std::size_t n_events = tree.basic_event_count();
  const std::size_t n_cond = tree.condition_count();
  for (std::uint32_t mask = 0; mask < (1u << (n_events + n_cond)); ++mask) {
    std::vector<bool> basic(n_events);
    std::vector<bool> cond(n_cond);
    std::vector<bool> bdd_assignment(compiled.manager.variable_count());
    for (std::size_t i = 0; i < n_events; ++i) {
      basic[i] = (mask & (1u << i)) != 0;
      bdd_assignment[compiled.var_of_basic_event[i]] = basic[i];
    }
    for (std::size_t i = 0; i < n_cond; ++i) {
      cond[i] = (mask & (1u << (n_events + i))) != 0;
      bdd_assignment[compiled.var_of_condition[i]] = cond[i];
    }
    EXPECT_EQ(compiled.manager.evaluate(compiled.root, bdd_assignment),
              tree.evaluate(basic, cond))
        << "seed " << GetParam() << " mask " << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddEvaluationAgreement,
                         ::testing::Range<std::uint64_t>(50, 80));

class RauzyVsMocus : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RauzyVsMocus, MinimalCutSetsAgree) {
  const fta::FaultTree tree = testutil::random_tree(
      GetParam(), {.basic_events = 7, .conditions = 2, .gates = 6});
  const fta::CutSetCollection mocus = fta::minimal_cut_sets(tree);
  const fta::CutSetCollection rauzy = minimal_cut_sets_bdd(tree);
  EXPECT_EQ(mocus.sets(), rauzy.sets()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RauzyVsMocus,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace safeopt::bdd
