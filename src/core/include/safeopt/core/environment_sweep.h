// Environment sweeps — the methodology behind the paper's Fig. 6 and the
// discovery of the ODfinal design flaw: "parameterized probabilities allow
// us to also examine the system in different working environments". A sweep
// varies one parameter over a range while holding the rest of a base
// configuration fixed, and tabulates a set of labelled expressions (hazard
// probabilities of design variants, usually) at each point.
#ifndef SAFEOPT_CORE_ENVIRONMENT_SWEEP_H
#define SAFEOPT_CORE_ENVIRONMENT_SWEEP_H

#include <string>
#include <vector>

#include "safeopt/expr/expr.h"

namespace safeopt {
class ThreadPool;
}

namespace safeopt::core {

/// One curve of a sweep: a label ("without_LB4") and the expression whose
/// value is plotted.
struct SweepSeries {
  std::string label;
  expr::Expr value;
};

/// Tabulated sweep: xs[k] is the swept parameter's value at step k,
/// values[s][k] the s-th series evaluated there.
struct SweepTable {
  std::string parameter;
  std::vector<double> xs;
  std::vector<std::string> labels;
  std::vector<std::vector<double>> values;  // [series][step]

  /// Renders a CSV with header "parameter,label1,label2,...".
  [[nodiscard]] std::string to_csv() const;
};

/// Evaluates `series` at `steps` evenly spaced values of `parameter` in
/// [lo, hi], all other parameters taken from `base`. Each series compiles
/// to a tape and its whole sweep runs through the lane-blocked batch
/// kernel (values identical to Expr::evaluate); the kernel's argument memo
/// makes the fixed-parameter subtrees nearly free across steps.
/// Precondition: steps >= 2, lo < hi.
[[nodiscard]] SweepTable sweep_parameter(
    const std::string& parameter, double lo, double hi, std::size_t steps,
    const expr::ParameterAssignment& base,
    const std::vector<SweepSeries>& series);

/// Same sweep with each series' step batch fanned out over `pool`.
/// Results are bitwise-identical to the sequential overload for any thread
/// count.
[[nodiscard]] SweepTable sweep_parameter(
    const std::string& parameter, double lo, double hi, std::size_t steps,
    const expr::ParameterAssignment& base,
    const std::vector<SweepSeries>& series, ThreadPool& pool);

}  // namespace safeopt::core

#endif  // SAFEOPT_CORE_ENVIRONMENT_SWEEP_H
