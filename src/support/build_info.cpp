#include "safeopt/support/build_info.h"

#include "safeopt/support/strings.h"
#include "safeopt_build_info_generated.h"

namespace safeopt {

const BuildInfo& build_info() noexcept {
  static const BuildInfo info{SAFEOPT_BUILD_VERSION, SAFEOPT_BUILD_COMPILER,
                              SAFEOPT_BUILD_TYPE, SAFEOPT_BUILD_FLAGS};
  return info;
}

std::string build_info_string() {
  const BuildInfo& info = build_info();
  std::string out = concat("safeopt ", info.version, " (", info.compiler, ", ",
                           info.build_type);
  if (!info.flags.empty()) {
    out += concat(", flags: ", info.flags);
  }
  out += ")";
  return out;
}

}  // namespace safeopt
