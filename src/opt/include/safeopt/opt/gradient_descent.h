// Projected gradient descent with Armijo backtracking — "the most simple one
// is the gradient method which finds local minima by calculating gradients
// iteratively and always following the steepest descent" (paper §III-B),
// made box-feasible by projecting each trial point onto the bounds.
// Uses the problem's exact gradient (autodiff from src/expr via src/core)
// when available, central finite differences otherwise.
#ifndef SAFEOPT_OPT_GRADIENT_DESCENT_H
#define SAFEOPT_OPT_GRADIENT_DESCENT_H

#include "safeopt/opt/problem.h"

namespace safeopt::opt {

class ProjectedGradientDescent final : public Optimizer {
 public:
  /// `initial` defaults to the box center. `initial_step` is relative to the
  /// largest box width.
  explicit ProjectedGradientDescent(StoppingCriteria stopping = {},
                                    std::vector<double> initial = {},
                                    double initial_step = 0.1);

  [[nodiscard]] OptimizationResult minimize(
      const Problem& problem) const override;
  [[nodiscard]] std::string name() const override {
    return "ProjectedGradientDescent";
  }

 private:
  StoppingCriteria stopping_;
  std::vector<double> initial_;
  double initial_step_;
};

}  // namespace safeopt::opt

#endif  // SAFEOPT_OPT_GRADIENT_DESCENT_H
