#include "safeopt/core/tradeoff.h"

#include <gtest/gtest.h>

#include <cmath>

namespace safeopt::core {
namespace {

using expr::parameter;

TEST(TradeoffCurveTest, TracesOpposedRisks) {
  // The paper's §IV-B.1 opposition in miniature: raising x lowers H1 and
  // raises H2; "it is not possible to minimize both risks at the same
  // time".
  CostModel model;
  model.add_hazard({"H1", expr::exp(-parameter("x")), 1.0});
  model.add_hazard({"H2", 0.05 * parameter("x"), 1.0});
  const ParameterSpace space{{"x", 0.1, 15.0, "", ""}};

  const auto curve =
      tradeoff_curve(model, space, "H1", "H2", 0.1, 1000.0, 9);
  ASSERT_EQ(curve.size(), 9u);

  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].cost_ratio, curve[i - 1].cost_ratio);
    // As H1 gets more expensive, its optimal probability can only fall and
    // the opposed H2's can only rise (weak monotonicity of the frontier).
    EXPECT_LE(curve[i].probability_a, curve[i - 1].probability_a + 1e-9);
    EXPECT_GE(curve[i].probability_b, curve[i - 1].probability_b - 1e-9);
  }
}

TEST(TradeoffCurveTest, RatiosAreLogSpaced) {
  CostModel model;
  model.add_hazard({"H1", expr::exp(-parameter("x")), 1.0});
  model.add_hazard({"H2", 0.05 * parameter("x"), 1.0});
  const ParameterSpace space{{"x", 0.1, 15.0, "", ""}};
  const auto curve = tradeoff_curve(model, space, "H1", "H2", 1.0, 100.0, 3);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_NEAR(curve[0].cost_ratio, 1.0, 1e-12);
  EXPECT_NEAR(curve[1].cost_ratio, 10.0, 1e-9);
  EXPECT_NEAR(curve[2].cost_ratio, 100.0, 1e-9);
}

TEST(TradeoffCurveTest, ParametersStayInBox) {
  CostModel model;
  model.add_hazard({"H1", expr::exp(-parameter("x")), 1.0});
  model.add_hazard({"H2", 0.05 * parameter("x"), 1.0});
  const ParameterSpace space{{"x", 0.5, 4.0, "", ""}};
  for (const auto& point :
       tradeoff_curve(model, space, "H1", "H2", 0.01, 1e4, 7)) {
    ASSERT_EQ(point.parameters.size(), 1u);
    EXPECT_GE(point.parameters[0], 0.5);
    EXPECT_LE(point.parameters[0], 4.0);
  }
}

}  // namespace
}  // namespace safeopt::core
