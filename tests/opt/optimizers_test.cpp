#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "safeopt/opt/coordinate_descent.h"
#include "safeopt/opt/differential_evolution.h"
#include "safeopt/opt/golden_section.h"
#include "safeopt/opt/gradient_descent.h"
#include "safeopt/opt/grid_search.h"
#include "safeopt/opt/hooke_jeeves.h"
#include "safeopt/opt/multi_start.h"
#include "safeopt/opt/nelder_mead.h"
#include "safeopt/opt/simulated_annealing.h"

namespace safeopt::opt {
namespace {

/// All solvers applicable to >= 2 dimensions, constructed fresh per test.
std::unique_ptr<Optimizer> make_solver(const std::string& name) {
  if (name == "GridSearch") return std::make_unique<GridSearch>(17, 5);
  if (name == "NelderMead") return std::make_unique<NelderMead>();
  if (name == "GradientDescent") {
    return std::make_unique<ProjectedGradientDescent>(
        StoppingCriteria{5000, 1e-12});
  }
  if (name == "HookeJeeves") return std::make_unique<HookeJeeves>();
  if (name == "CoordinateDescent") return std::make_unique<CoordinateDescent>();
  if (name == "SimulatedAnnealing") {
    SimulatedAnnealing::Schedule schedule;
    schedule.initial_temperature = 2.0;
    schedule.cooling_factor = 0.92;
    schedule.steps_per_epoch = 120;
    return std::make_unique<SimulatedAnnealing>(schedule);
  }
  if (name == "DifferentialEvolution") {
    DifferentialEvolution::Settings settings;
    settings.generations = 400;
    return std::make_unique<DifferentialEvolution>(settings);
  }
  if (name == "MultiStartNelderMead") {
    return std::make_unique<MultiStart>(
        [](std::vector<double> start) -> std::unique_ptr<Optimizer> {
          return std::make_unique<NelderMead>(StoppingCriteria{},
                                              std::move(start));
        },
        6);
  }
  return nullptr;
}

const std::string kAllSolvers[] = {
    "GridSearch",         "NelderMead",         "GradientDescent",
    "HookeJeeves",        "CoordinateDescent",  "SimulatedAnnealing",
    "DifferentialEvolution", "MultiStartNelderMead"};

class EverySolver : public ::testing::TestWithParam<std::string> {};

TEST_P(EverySolver, SolvesShiftedQuadratic) {
  // f(x, y) = (x − 0.7)² + 2(y + 1.2)², argmin (0.7, −1.2), min 0.
  Problem problem;
  problem.bounds = Box({-3.0, -3.0}, {3.0, 3.0});
  problem.objective = [](std::span<const double> x) {
    return (x[0] - 0.7) * (x[0] - 0.7) + 2.0 * (x[1] + 1.2) * (x[1] + 1.2);
  };
  const auto solver = make_solver(GetParam());
  ASSERT_NE(solver, nullptr);
  const OptimizationResult result = solver->minimize(problem);
  EXPECT_NEAR(result.argmin[0], 0.7, 2e-2) << solver->name();
  EXPECT_NEAR(result.argmin[1], -1.2, 2e-2) << solver->name();
  EXPECT_LT(result.value, 1e-3) << solver->name();
  EXPECT_GT(result.evaluations, 0u);
}

TEST_P(EverySolver, RespectsBoxWhenMinimumIsOutside) {
  // Unconstrained argmin at (5, 5) — outside the box: solution must be the
  // box corner (1, 1).
  Problem problem;
  problem.bounds = Box({-1.0, -1.0}, {1.0, 1.0});
  problem.objective = [](std::span<const double> x) {
    return (x[0] - 5.0) * (x[0] - 5.0) + (x[1] - 5.0) * (x[1] - 5.0);
  };
  const auto solver = make_solver(GetParam());
  const OptimizationResult result = solver->minimize(problem);
  EXPECT_TRUE(problem.bounds.contains(result.argmin)) << solver->name();
  EXPECT_NEAR(result.argmin[0], 1.0, 5e-2) << solver->name();
  EXPECT_NEAR(result.argmin[1], 1.0, 5e-2) << solver->name();
}

TEST_P(EverySolver, HandlesRosenbrockValley) {
  // Banana function in a box containing the optimum (1, 1).
  Problem problem;
  problem.bounds = Box({-2.0, -1.0}, {2.0, 3.0});
  problem.objective = [](std::span<const double> x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  const auto solver = make_solver(GetParam());
  const OptimizationResult result = solver->minimize(problem);
  // The curved valley is hard for coarse/annealing methods; accept any
  // point well inside the valley (f < 0.1 is far below typical plateaus),
  // and tight accuracy from the strong local methods.
  EXPECT_LT(result.value, 0.1) << solver->name() << ": " << result.message;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EverySolver, ::testing::ValuesIn(kAllSolvers),
                         [](const auto& param_info) { return param_info.param; });

// ------------------------------------------------------------- specifics

TEST(GoldenSectionTest, FindsUnimodalMinimum) {
  Problem problem;
  problem.bounds = Box::interval(0.0, 10.0);
  problem.objective = [](std::span<const double> x) {
    return (x[0] - 3.3) * (x[0] - 3.3) + 1.5;
  };
  const GoldenSection solver;
  const auto result = solver.minimize(problem);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.argmin[0], 3.3, 1e-7);
  EXPECT_NEAR(result.value, 1.5, 1e-10);
}

TEST(GoldenSectionTest, AsymmetricCostLikeAviationExample) {
  // The paper's §III pre-flight tolerance intuition: crash risk falls and
  // cancel risk rises with the tolerance; the optimum is interior.
  Problem problem;
  problem.bounds = Box::interval(0.01, 5.0);
  problem.objective = [](std::span<const double> x) {
    const double crash = 1000.0 * std::exp(-3.0 / x[0]);
    const double cancel = 2.0 / x[0];
    return crash + cancel;
  };
  const GoldenSection solver;
  const auto result = solver.minimize(problem);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.argmin[0], 0.02);
  EXPECT_LT(result.argmin[0], 4.9);
  // Interior stationarity: neighbours are worse.
  const double at = result.argmin[0];
  for (const double delta : {-1e-3, 1e-3}) {
    EXPECT_GE(problem.objective(std::vector<double>{at + delta}),
              result.value - 1e-12);
  }
}

TEST(GridSearchTest, TabulateMatchesObjective) {
  const Objective f = [](std::span<const double> x) {
    return x[0] * 10.0 + x[1];
  };
  const GridTable table = tabulate_2d(f, Box({0.0, 0.0}, {1.0, 1.0}), 3, 5);
  ASSERT_EQ(table.xs.size(), 3u);
  ASSERT_EQ(table.ys.size(), 5u);
  EXPECT_DOUBLE_EQ(table.value(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(table.value(2, 4), 11.0);
  EXPECT_DOUBLE_EQ(table.value(1, 2), 5.5);
  const auto [i, j] = table.argmin();
  EXPECT_EQ(i, 0u);
  EXPECT_EQ(j, 0u);
}

TEST(GridSearchTest, RefinementSharpensTheMinimum) {
  Problem problem;
  problem.bounds = Box({0.0}, {1.0});
  problem.objective = [](std::span<const double> x) {
    return std::abs(x[0] - 0.337);
  };
  const GridSearch coarse(11, 1);
  const GridSearch refined(11, 5);
  const double coarse_error =
      std::abs(coarse.minimize(problem).argmin[0] - 0.337);
  const double refined_error =
      std::abs(refined.minimize(problem).argmin[0] - 0.337);
  EXPECT_LT(refined_error, coarse_error);
  EXPECT_LT(refined_error, 1e-4);
}

TEST(GradientDescentTest, UsesProvidedExactGradient) {
  Problem problem;
  problem.bounds = Box({-5.0, -5.0}, {5.0, 5.0});
  problem.objective = [](std::span<const double> x) {
    return x[0] * x[0] + 4.0 * x[1] * x[1];
  };
  std::size_t gradient_calls = 0;
  problem.gradient = [&gradient_calls](std::span<const double> x) {
    ++gradient_calls;
    return std::vector<double>{2.0 * x[0], 8.0 * x[1]};
  };
  const ProjectedGradientDescent solver(StoppingCriteria{2000, 1e-12},
                                        {4.0, 4.0});
  const auto result = solver.minimize(problem);
  EXPECT_GT(gradient_calls, 0u);
  EXPECT_NEAR(result.argmin[0], 0.0, 1e-5);
  EXPECT_NEAR(result.argmin[1], 0.0, 1e-5);
}

TEST(StochasticSolversTest, AreDeterministicPerSeed) {
  Problem problem;
  problem.bounds = Box({-2.0, -2.0}, {2.0, 2.0});
  problem.objective = [](std::span<const double> x) {
    return std::cos(3.0 * x[0]) + x[0] * x[0] + std::sin(2.0 * x[1]) +
           x[1] * x[1];
  };
  const SimulatedAnnealing sa1(SimulatedAnnealing::Schedule{}, 1234);
  const SimulatedAnnealing sa2(SimulatedAnnealing::Schedule{}, 1234);
  const auto r1 = sa1.minimize(problem);
  const auto r2 = sa2.minimize(problem);
  EXPECT_EQ(r1.argmin, r2.argmin);
  EXPECT_EQ(r1.evaluations, r2.evaluations);

  const DifferentialEvolution de1(DifferentialEvolution::Settings{}, 99);
  const DifferentialEvolution de2(DifferentialEvolution::Settings{}, 99);
  EXPECT_EQ(de1.minimize(problem).argmin, de2.minimize(problem).argmin);
}

TEST(MultiStartTest, EscapesLocalMinimumThatTrapsSingleStart) {
  // Double well: local minimum near x=−1 (f=0.5), global near x=+1 (f=0).
  Problem problem;
  problem.bounds = Box({-2.0}, {2.0});
  problem.objective = [](std::span<const double> x) {
    const double left = (x[0] + 1.0) * (x[0] + 1.0) + 0.5;
    const double right = 4.0 * (x[0] - 1.0) * (x[0] - 1.0);
    return std::min(left, right);
  };
  // A single Nelder-Mead from −1.8 falls into the left well.
  const NelderMead single(StoppingCriteria{}, {-1.8});
  EXPECT_GT(single.minimize(problem).value, 0.4);
  // Multi-start finds the global one.
  const MultiStart multi(
      [](std::vector<double> start) -> std::unique_ptr<Optimizer> {
        return std::make_unique<NelderMead>(StoppingCriteria{},
                                            std::move(start));
      },
      12);
  EXPECT_LT(multi.minimize(problem).value, 1e-4);
}

TEST(EvaluationCountingTest, EvaluationsAreReported) {
  Problem problem;
  problem.bounds = Box({0.0}, {1.0});
  std::size_t actual_calls = 0;
  problem.objective = [&actual_calls](std::span<const double> x) {
    ++actual_calls;
    return x[0];
  };
  const GridSearch solver(11, 2);
  const auto result = solver.minimize(problem);
  EXPECT_EQ(result.evaluations, actual_calls);
  EXPECT_EQ(result.evaluations, 22u);
}

}  // namespace
}  // namespace safeopt::opt
