// Ablation A: minimal-cut-set generation — MOCUS (top-down expansion with
// absorption) vs Rauzy's BDD decomposition — on structures that stress them
// differently:
//   * k-of-n votes (combinatorial blow-up in MOCUS's expansion),
//   * random AND/OR/INHIBIT DAGs with shared subtrees (absorption load),
//   * deep OR/AND ladders (cheap for both; baseline overhead).
#include <benchmark/benchmark.h>

#include "../tests/testutil/random_tree.h"
#include "safeopt/bdd/bdd.h"
#include "safeopt/fta/cut_sets.h"

namespace {

using namespace safeopt;

fta::FaultTree vote_tree(std::uint32_t n, std::uint32_t k) {
  fta::FaultTree tree("vote");
  std::vector<fta::NodeId> leaves;
  leaves.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    leaves.push_back(tree.add_basic_event(concat("e", std::to_string(i))));
  }
  tree.set_top(tree.add_k_of_n("top", k, std::move(leaves)));
  return tree;
}

fta::FaultTree ladder_tree(std::uint32_t rungs) {
  fta::FaultTree tree("ladder");
  fta::NodeId previous = tree.add_basic_event("seed");
  for (std::uint32_t i = 0; i < rungs; ++i) {
    const auto a = tree.add_basic_event(concat("a", std::to_string(i)));
    const auto b = tree.add_basic_event(concat("b", std::to_string(i)));
    const auto pair = tree.add_and(concat("and", std::to_string(i)), {a, b});
    previous = tree.add_or(concat("or", std::to_string(i)), {previous, pair});
  }
  tree.set_top(previous);
  return tree;
}

void BM_MocusVote(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const fta::FaultTree tree = vote_tree(n, n / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fta::minimal_cut_sets(tree));
  }
  state.counters["cut_sets"] =
      static_cast<double>(fta::minimal_cut_sets(tree).size());
}
BENCHMARK(BM_MocusVote)->Arg(8)->Arg(12)->Arg(16);

void BM_BddVote(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const fta::FaultTree tree = vote_tree(n, n / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bdd::minimal_cut_sets_bdd(tree));
  }
  state.counters["cut_sets"] =
      static_cast<double>(bdd::minimal_cut_sets_bdd(tree).size());
}
BENCHMARK(BM_BddVote)->Arg(8)->Arg(12)->Arg(16);

void BM_MocusRandomDag(benchmark::State& state) {
  const fta::FaultTree tree = testutil::random_tree(
      static_cast<std::uint64_t>(state.range(0)),
      {.basic_events = 14, .conditions = 2, .gates = 12});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fta::minimal_cut_sets(tree));
  }
}
BENCHMARK(BM_MocusRandomDag)->Arg(1)->Arg(2)->Arg(3);

void BM_BddRandomDag(benchmark::State& state) {
  const fta::FaultTree tree = testutil::random_tree(
      static_cast<std::uint64_t>(state.range(0)),
      {.basic_events = 14, .conditions = 2, .gates = 12});
  for (auto _ : state) {
    benchmark::DoNotOptimize(bdd::minimal_cut_sets_bdd(tree));
  }
}
BENCHMARK(BM_BddRandomDag)->Arg(1)->Arg(2)->Arg(3);

void BM_MocusLadder(benchmark::State& state) {
  const fta::FaultTree tree =
      ladder_tree(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fta::minimal_cut_sets(tree));
  }
}
BENCHMARK(BM_MocusLadder)->Arg(8)->Arg(16)->Arg(32);

void BM_BddLadder(benchmark::State& state) {
  const fta::FaultTree tree =
      ladder_tree(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bdd::minimal_cut_sets_bdd(tree));
  }
}
BENCHMARK(BM_BddLadder)->Arg(8)->Arg(16)->Arg(32);

// BDD compilation alone (the fixed cost the exact method pays even when
// cut sets are never needed).
void BM_BddCompile(benchmark::State& state) {
  const fta::FaultTree tree =
      ladder_tree(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bdd::compile(tree));
  }
}
BENCHMARK(BM_BddCompile)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
