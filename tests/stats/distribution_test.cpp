#include "safeopt/stats/distribution.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "safeopt/stats/estimators.h"

namespace safeopt::stats {
namespace {

/// Factory so TEST_P suites can sweep across all distributions.
std::shared_ptr<const Distribution> make_distribution(int index) {
  switch (index) {
    case 0: return std::make_shared<Normal>(0.0, 1.0);
    case 1: return std::make_shared<Normal>(4.0, 2.0);
    case 2:
      return std::make_shared<TruncatedNormal>(
          TruncatedNormal::nonnegative(4.0, 2.0));
    case 3: return std::make_shared<TruncatedNormal>(0.0, 1.0, -1.0, 2.0);
    case 4: return std::make_shared<Exponential>(0.13);
    case 5: return std::make_shared<Weibull>(1.5, 2.0);
    case 6: return std::make_shared<LogNormal>(0.0, 0.5);
    case 7: return std::make_shared<Uniform>(-2.0, 5.0);
    case 8: return std::make_shared<Gamma>(3.0, 2.0);
    default: return nullptr;
  }
}
constexpr int kDistributionCount = 9;

class AllDistributions : public ::testing::TestWithParam<int> {
 protected:
  std::shared_ptr<const Distribution> dist_ = make_distribution(GetParam());
};

TEST_P(AllDistributions, CdfIsMonotoneNondecreasing) {
  const double lo = dist_->quantile(0.001);
  const double hi = dist_->quantile(0.999);
  double prev = -1.0;
  for (int i = 0; i <= 200; ++i) {
    const double x = lo + (hi - lo) * i / 200.0;
    const double f = dist_->cdf(x);
    EXPECT_GE(f, prev - 1e-12) << dist_->name() << " at x=" << x;
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST_P(AllDistributions, PdfIsNonnegative) {
  const double lo = dist_->quantile(0.001);
  const double hi = dist_->quantile(0.999);
  for (int i = 0; i <= 200; ++i) {
    const double x = lo + (hi - lo) * i / 200.0;
    EXPECT_GE(dist_->pdf(x), 0.0) << dist_->name() << " at x=" << x;
  }
}

TEST_P(AllDistributions, QuantileInvertsCdf) {
  for (const double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = dist_->quantile(p);
    EXPECT_NEAR(dist_->cdf(x), p, 1e-8)
        << dist_->name() << " at p=" << p;
  }
}

TEST_P(AllDistributions, PdfIntegratesToCdfDifferences) {
  // Trapezoid integral of pdf over [q(0.1), q(0.9)] ≈ 0.8.
  const double lo = dist_->quantile(0.1);
  const double hi = dist_->quantile(0.9);
  const int n = 4000;
  double integral = 0.0;
  for (int i = 0; i < n; ++i) {
    const double a = lo + (hi - lo) * i / n;
    const double b = lo + (hi - lo) * (i + 1) / n;
    integral += 0.5 * (dist_->pdf(a) + dist_->pdf(b)) * (b - a);
  }
  EXPECT_NEAR(integral, dist_->cdf(hi) - dist_->cdf(lo), 2e-4)
      << dist_->name();
}

TEST_P(AllDistributions, SampleMomentsMatchAnalytic) {
  Rng rng(0xd15 + static_cast<std::uint64_t>(GetParam()));
  RunningMoments moments;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) moments.add(dist_->sample(rng));
  const double sd = std::sqrt(dist_->variance());
  EXPECT_NEAR(moments.mean(), dist_->mean(), 5.0 * sd / std::sqrt(kSamples))
      << dist_->name();
  EXPECT_NEAR(moments.variance(), dist_->variance(),
              0.05 * dist_->variance() + 1e-12)
      << dist_->name();
}

TEST_P(AllDistributions, SurvivalComplementsCdf) {
  for (const double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double x = dist_->quantile(p);
    EXPECT_NEAR(dist_->survival(x), 1.0 - dist_->cdf(x), 1e-12)
        << dist_->name() << " at p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllDistributions,
                         ::testing::Range(0, kDistributionCount));

class KsDistributions : public ::testing::TestWithParam<int> {};

TEST_P(KsDistributions, SamplerMatchesCdf) {
  const auto dist = make_distribution(GetParam());
  Rng rng(0xabc + static_cast<std::uint64_t>(GetParam()));
  std::vector<double> sample(20000);
  for (double& x : sample) x = dist->sample(rng);
  EXPECT_LT(ks_statistic(sample, *dist),
            ks_critical_value_1pct(sample.size()))
      << dist->name();
}

INSTANTIATE_TEST_SUITE_P(Sweep, KsDistributions,
                         ::testing::Range(0, kDistributionCount));

// ---------------------------------------------------------------- specifics

TEST(NormalTest, StandardValues) {
  const Normal n(0.0, 1.0);
  EXPECT_NEAR(n.cdf(1.96), 0.975, 1e-3);
  EXPECT_DOUBLE_EQ(n.mean(), 0.0);
  EXPECT_DOUBLE_EQ(n.variance(), 1.0);
  EXPECT_EQ(n.name(), "Normal(0, 1)");
}

TEST(TruncatedNormalTest, MatchesPaperDrivingTimeModel) {
  // Paper §IV-C: driving time ~ Normal(µ=4, σ=2) renormalized over [0, ∞).
  const TruncatedNormal t = TruncatedNormal::nonnegative(4.0, 2.0);
  EXPECT_DOUBLE_EQ(t.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.cdf(-1.0), 0.0);
  // P(Time <= 4) = (Φ(0) − Φ(−2)) / (1 − Φ(−2)).
  const double phi_m2 = 0.022750131948179195;
  EXPECT_NEAR(t.cdf(4.0), (0.5 - phi_m2) / (1.0 - phi_m2), 1e-12);
  // The truncation shifts the mean above 4.
  EXPECT_GT(t.mean(), 4.0);
  EXPECT_LT(t.mean(), 4.12);
  // Deep overtime tail used by P(OT2): survival at 15.6 minutes.
  const double survival = 1.0 - t.cdf(15.6);
  EXPECT_GT(survival, 1e-9);
  EXPECT_LT(survival, 1e-8);
}

TEST(TruncatedNormalTest, SurvivalIsAccurateDeepInTheTail) {
  // P(OT)(T) at the engineers' 30-minute timers is a 13σ event. The naive
  // 1 − cdf() rounds to 0 there; survival() must not.
  const TruncatedNormal t = TruncatedNormal::nonnegative(4.0, 2.0);
  const double sf30 = t.survival(30.0);
  EXPECT_GT(sf30, 0.0);
  EXPECT_LT(sf30, 1e-37);
  EXPECT_GT(sf30, 1e-40);
  // Monotone decrease even far out.
  EXPECT_GT(t.survival(30.0), t.survival(35.0));
  EXPECT_GT(t.survival(35.0), 0.0);
  // Where both representations are exact, they agree.
  EXPECT_NEAR(t.survival(10.0), 1.0 - t.cdf(10.0), 1e-15);
}

TEST(NormalTest, SurvivalMatchesKnownTailValues) {
  const Normal n(0.0, 1.0);
  EXPECT_NEAR(n.survival(10.0), 7.619853024160495e-24, 1e-36);
  EXPECT_NEAR(n.survival(-10.0), 1.0, 1e-15);
}

TEST(TruncatedNormalTest, MeanVarianceAgainstSampling) {
  const TruncatedNormal t(1.0, 2.0, -0.5, 3.0);
  Rng rng(77);
  RunningMoments m;
  for (int i = 0; i < 300000; ++i) m.add(t.sample(rng));
  EXPECT_NEAR(m.mean(), t.mean(), 0.01);
  EXPECT_NEAR(m.variance(), t.variance(), 0.01);
  EXPECT_GE(m.min(), -0.5);
  EXPECT_LE(m.max(), 3.0);
}

TEST(ExponentialTest, MemorylessCdf) {
  const Exponential e(0.13);
  EXPECT_NEAR(e.cdf(15.6), 1.0 - std::exp(-0.13 * 15.6), 1e-12);
  EXPECT_DOUBLE_EQ(e.cdf(0.0), 0.0);
  EXPECT_NEAR(e.mean(), 1.0 / 0.13, 1e-12);
  EXPECT_NEAR(e.quantile(0.5), std::log(2.0) / 0.13, 1e-9);
}

TEST(WeibullTest, ShapeOneIsExponential) {
  const Weibull w(1.0, 2.0);
  const Exponential e(0.5);
  for (const double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12);
  }
}

TEST(WeibullTest, MeanUsesGamma) {
  const Weibull w(2.0, 1.0);
  // E = λ·Γ(1 + 1/2) = √π/2.
  EXPECT_NEAR(w.mean(), std::sqrt(M_PI) / 2.0, 1e-12);
}

TEST(LogNormalTest, MedianIsExpMu) {
  const LogNormal ln(1.0, 0.5);
  EXPECT_NEAR(ln.quantile(0.5), std::exp(1.0), 1e-9);
  EXPECT_DOUBLE_EQ(ln.cdf(0.0), 0.0);
}

TEST(UniformTest, LinearCdf) {
  const Uniform u(2.0, 6.0);
  EXPECT_DOUBLE_EQ(u.cdf(2.0), 0.0);
  EXPECT_DOUBLE_EQ(u.cdf(4.0), 0.5);
  EXPECT_DOUBLE_EQ(u.cdf(6.0), 1.0);
  EXPECT_DOUBLE_EQ(u.mean(), 4.0);
  EXPECT_NEAR(u.variance(), 16.0 / 12.0, 1e-12);
}

TEST(GammaTest, SumOfExponentialsCdf) {
  // Gamma(k=2, θ): cdf(x) = 1 − e^{−x/θ}(1 + x/θ).
  const Gamma g(2.0, 3.0);
  for (const double x : {0.5, 2.0, 7.0}) {
    const double z = x / 3.0;
    EXPECT_NEAR(g.cdf(x), 1.0 - std::exp(-z) * (1.0 + z), 1e-10);
  }
}

}  // namespace
}  // namespace safeopt::stats
