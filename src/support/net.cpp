#include "safeopt/support/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "safeopt/support/error.h"
#include "safeopt/support/strings.h"

namespace safeopt {
namespace {

[[noreturn]] void fail(std::string_view what) {
  throw Error(ErrorCategory::kInternal,
              concat("net: ", what, ": ", std::strerror(errno)));
}

sockaddr_in loopback_address(std::uint16_t port) noexcept {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return address;
}

}  // namespace

// ---------------------------------------------------------------- TcpSocket

TcpSocket::~TcpSocket() { close(); }

TcpSocket::TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

TcpSocket TcpSocket::connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  TcpSocket socket(fd);
  const sockaddr_in address = loopback_address(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    fail("connect");
  }
  return socket;
}

std::size_t TcpSocket::read_some(char* data, std::size_t size) {
  while (true) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw Error(ErrorCategory::kDeadlineExceeded,
                  "net: receive timed out");
    }
    fail("recv");
  }
}

void TcpSocket::write_all(std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send");
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

void TcpSocket::set_receive_timeout_ms(std::uint64_t ms) {
  timeval timeout{};
  timeout.tv_sec = static_cast<time_t>(ms / 1000);
  timeout.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
}

bool TcpSocket::peer_closed() const noexcept {
  if (fd_ < 0) return true;
  pollfd probe{};
  probe.fd = fd_;
  probe.events = POLLIN;
  const int ready = ::poll(&probe, 1, 0);
  if (ready <= 0) return false;  // no events (or transient poll failure)
  if ((probe.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) return true;
  if ((probe.revents & POLLIN) != 0) {
    // Readable: EOF means the client hung up; buffered bytes (an eager
    // pipelined request) mean it is still there.
    char byte = 0;
    const ssize_t n = ::recv(fd_, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
    if (n == 0) return true;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return true;  // ECONNRESET and friends
    }
  }
  return false;
}

void TcpSocket::close() noexcept {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

// -------------------------------------------------------------- TcpListener

TcpListener::~TcpListener() {
  if (fd_ >= 0) (void)::close(fd_);
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_),
      port_(other.port_),
      stop_(other.stop_.load(std::memory_order_acquire)) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) (void)::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    stop_.store(other.stop_.load(std::memory_order_acquire),
                std::memory_order_release);
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

TcpListener TcpListener::bind_loopback(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  TcpListener listener;
  listener.fd_ = fd;
  const int enable = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in address = loopback_address(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    fail("bind");
  }
  if (::listen(fd, backlog) != 0) fail("listen");
  socklen_t length = sizeof(address);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length) != 0) {
    fail("getsockname");
  }
  listener.port_ = ntohs(address.sin_port);
  return listener;
}

std::optional<TcpSocket> TcpListener::accept() {
  // Poll with a short timeout and re-check the stop flag: close() from
  // another thread then stops the loop without closing a descriptor a
  // blocking accept() still references.
  constexpr int kPollMs = 50;
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd waiter{};
    waiter.fd = fd_;
    waiter.events = POLLIN;
    const int ready = ::poll(&waiter, 1, kPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail("poll");
    }
    if (ready == 0) continue;
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      fail("accept");
    }
    return TcpSocket(client);
  }
  return std::nullopt;
}

void TcpListener::close() noexcept {
  stop_.store(true, std::memory_order_release);
}

}  // namespace safeopt
