// Adaptive + rare-event Monte Carlo: the stopping rule must hold what it
// promises (half-width at or below target when converged, budget respected
// when not), the degenerate leaves p = 0 / p = 1 must behave, importance
// sampling must stay consistent with the exact probability while using far
// fewer trials than crude sampling would need, and the whole trajectory —
// including the stopped trial count — must be bitwise thread-count-invariant
// at a fixed seed.
#include <gtest/gtest.h>

#include <cmath>

#include "safeopt/bdd/bdd.h"
#include "safeopt/mc/adaptive_monte_carlo.h"
#include "safeopt/support/thread_pool.h"
#include "testutil/random_tree.h"

namespace safeopt::mc {
namespace {

/// AND of three rare leaves under a rare demand condition: P(top) ~ 1e-7,
/// unresolvable by crude sampling at test-sized budgets.
struct RareSystem {
  fta::FaultTree tree{"Rupture"};
  fta::QuantificationInput input;

  RareSystem() {
    const auto valve = tree.add_basic_event("Valve");
    const auto disc = tree.add_basic_event("Disc");
    const auto plc = tree.add_basic_event("Plc");
    const auto demand = tree.add_condition("Demand");
    const auto lost = tree.add_and("ProtectionLost", {valve, disc, plc});
    tree.set_top(tree.add_inhibit("Rupture", lost, demand));

    input = fta::QuantificationInput::for_tree(tree, 0.0);
    input.set(tree, "Valve", 2e-2);
    input.set(tree, "Disc", 8e-3);
    input.set(tree, "Plc", 4e-3);
    input.set(tree, "Demand", 2e-2);
  }
};

TEST(AdaptiveMonteCarloTest, ConvergedRunMeetsTheAbsoluteTarget) {
  const fta::FaultTree tree = testutil::random_tree(31);
  const auto input = fta::QuantificationInput::for_tree(tree, 0.05);

  AdaptiveOptions options;
  options.target_halfwidth = 5e-3;
  options.relative = false;
  options.batch = 1 << 12;
  options.max_trials = 1 << 22;
  const auto result = AdaptiveMonteCarlo(options).estimate(tree, input);

  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.halfwidth(), options.target_halfwidth);
  EXPECT_LE(result.trials, options.max_trials);
  EXPECT_FALSE(result.importance);
  EXPECT_EQ(result.ess, static_cast<double>(result.trials));
  EXPECT_EQ(result.self_normalized, result.estimate);
}

TEST(AdaptiveMonteCarloTest, ConvergedRunMeetsTheRelativeTarget) {
  const fta::FaultTree tree = testutil::random_tree(32);
  const auto input = fta::QuantificationInput::for_tree(tree, 0.1);

  AdaptiveOptions options;
  options.target_halfwidth = 0.05;
  options.relative = true;
  options.batch = 1 << 12;
  options.max_trials = 1 << 22;
  const auto result = AdaptiveMonteCarlo(options).estimate(tree, input);

  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.estimate, 0.0);
  EXPECT_LE(result.halfwidth(), options.target_halfwidth * result.estimate);
}

TEST(AdaptiveMonteCarloTest, AbsoluteVsRelativeTargetsStopAtDifferentTimes) {
  // At p ~ 0.3, an absolute half-width of 0.03 is ten times looser than a
  // 1% relative target — the relative run must keep sampling after the
  // absolute run stopped.
  fta::FaultTree tree("Single");
  tree.set_top(tree.add_basic_event("E"));
  auto input = fta::QuantificationInput::for_tree(tree, 0.3);

  AdaptiveOptions loose;
  loose.target_halfwidth = 0.03;
  loose.relative = false;
  loose.batch = 1 << 12;
  AdaptiveOptions tight = loose;
  tight.target_halfwidth = 0.01;
  tight.relative = true;
  tight.max_trials = 1 << 24;

  const auto absolute = AdaptiveMonteCarlo(loose).estimate(tree, input);
  const auto relative = AdaptiveMonteCarlo(tight).estimate(tree, input);
  ASSERT_TRUE(absolute.converged);
  ASSERT_TRUE(relative.converged);
  EXPECT_LT(absolute.trials, relative.trials);
  EXPECT_LE(relative.halfwidth(), 0.01 * relative.estimate);
}

TEST(AdaptiveMonteCarloTest, ImpossibleEventConvergesOnAbsoluteTarget) {
  // Every leaf at p = 0: the event cannot occur, and the Wilson interval
  // around 0/n still shrinks below an absolute target.
  const fta::FaultTree tree = testutil::random_tree(33);
  const auto input = fta::QuantificationInput::for_tree(tree, 0.0);

  AdaptiveOptions options;
  options.target_halfwidth = 1e-4;
  options.relative = false;
  options.batch = 1 << 14;
  const auto result = AdaptiveMonteCarlo(options).estimate(tree, input);

  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.estimate, 0.0);
  EXPECT_EQ(result.occurrences, 0u);
  EXPECT_LE(result.halfwidth(), 1e-4);
}

TEST(AdaptiveMonteCarloTest, ImpossibleEventExhaustsBudgetOnRelativeTarget) {
  // A relative target against an estimate of 0 is unreachable by
  // construction; the loop must run to the budget and say so.
  const fta::FaultTree tree = testutil::random_tree(34);
  const auto input = fta::QuantificationInput::for_tree(tree, 0.0);

  AdaptiveOptions options;
  options.target_halfwidth = 0.1;
  options.relative = true;
  options.batch = 1 << 14;
  options.max_trials = 100000;
  const auto result = AdaptiveMonteCarlo(options).estimate(tree, input);

  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.trials, options.max_trials);
  EXPECT_EQ(result.estimate, 0.0);
}

TEST(AdaptiveMonteCarloTest, CertainEventConvergesInBothModes) {
  // Every leaf at p = 1 under an OR/AND tree: every trial hits.
  const fta::FaultTree tree = testutil::random_tree(35);
  const auto input = fta::QuantificationInput::for_tree(tree, 1.0);
  // random_tree conditions default to 1.0 already via for_tree.

  for (const bool relative : {false, true}) {
    AdaptiveOptions options;
    options.target_halfwidth = 1e-3;
    options.relative = relative;
    options.batch = 1 << 14;
    const auto result = AdaptiveMonteCarlo(options).estimate(tree, input);
    ASSERT_TRUE(result.converged) << "relative=" << relative;
    EXPECT_EQ(result.estimate, 1.0);
    EXPECT_EQ(result.occurrences, result.trials);
  }
}

TEST(AdaptiveMonteCarloTest, BudgetExhaustionReportsAchievedPrecision) {
  const fta::FaultTree tree = testutil::random_tree(36);
  const auto input = fta::QuantificationInput::for_tree(tree, 0.05);

  AdaptiveOptions options;
  options.target_halfwidth = 1e-6;  // unreachable inside the budget
  options.relative = false;
  options.batch = 1 << 12;
  options.max_trials = 50000;  // not a multiple of the batch
  const auto result = AdaptiveMonteCarlo(options).estimate(tree, input);

  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.trials, 50000u);  // the budget is exact, not rounded
  EXPECT_GT(result.halfwidth(), 1e-6);
  EXPECT_GT(result.ci95.width(), 0.0);
}

TEST(AdaptiveMonteCarloTest, StoppedTrialCountIsThreadCountInvariant) {
  const fta::FaultTree tree = testutil::random_tree(37);
  const auto input = fta::QuantificationInput::for_tree(tree, 0.03);

  AdaptiveOptions options;
  options.target_halfwidth = 0.05;
  options.relative = true;
  options.batch = 1 << 13;
  options.seed = 0xfeed;
  const auto reference = AdaptiveMonteCarlo(options).estimate(tree, input);

  for (const std::size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    AdaptiveOptions pooled = options;
    pooled.pool = &pool;
    const auto result = AdaptiveMonteCarlo(pooled).estimate(tree, input);
    EXPECT_EQ(result.trials, reference.trials) << threads << " threads";
    EXPECT_EQ(result.occurrences, reference.occurrences);
    EXPECT_EQ(result.estimate, reference.estimate);
    EXPECT_EQ(result.ci95.lo, reference.ci95.lo);
    EXPECT_EQ(result.ci95.hi, reference.ci95.hi);
  }
}

TEST(AdaptiveMonteCarloTest, ImportanceSamplingIsThreadCountInvariant) {
  const RareSystem system;

  AdaptiveOptions options;
  options.target_halfwidth = 0.1;
  options.relative = true;
  options.tilt = 20.0;
  options.batch = 1 << 14;
  options.seed = 0xbeef;
  const auto reference =
      AdaptiveMonteCarlo(options).estimate(system.tree, system.input);
  ASSERT_TRUE(reference.converged);

  for (const std::size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    AdaptiveOptions pooled = options;
    pooled.pool = &pool;
    const auto result =
        AdaptiveMonteCarlo(pooled).estimate(system.tree, system.input);
    EXPECT_EQ(result.trials, reference.trials) << threads << " threads";
    EXPECT_EQ(result.estimate, reference.estimate);
    EXPECT_EQ(result.ess, reference.ess);
    EXPECT_EQ(result.self_normalized, reference.self_normalized);
  }
}

TEST(AdaptiveMonteCarloTest, ImportanceSamplingResolvesTheRareEvent) {
  const RareSystem system;
  const double exact = bdd::compile(system.tree).probability(system.input);
  ASSERT_LT(exact, 1e-6);  // genuinely rare

  AdaptiveOptions options;
  options.target_halfwidth = 0.1;
  options.relative = true;
  options.tilt = 20.0;
  options.batch = 1 << 14;
  options.max_trials = 1 << 22;
  const auto result =
      AdaptiveMonteCarlo(options).estimate(system.tree, system.input);

  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(result.importance);
  EXPECT_TRUE(result.consistent_with(exact))
      << "estimate " << result.estimate << " vs exact " << exact;
  EXPECT_LE(result.halfwidth(), 0.1 * result.estimate);
  // Weighted-sample diagnostics: the ESS of a tilted proposal is genuinely
  // below the trial count, and the self-normalized estimate is in the same
  // ballpark as the unbiased one.
  EXPECT_LT(result.ess, static_cast<double>(result.trials));
  EXPECT_GT(result.ess, 0.0);
  EXPECT_NEAR(result.self_normalized, result.estimate,
              0.5 * result.estimate);

  // Crude sampling at the same budget cannot even see the event: the trials
  // the IS run needed are orders of magnitude below the ~1/p a single crude
  // hit needs in expectation.
  EXPECT_LT(static_cast<double>(result.trials), 0.1 / exact);
}

TEST(AdaptiveMonteCarloTest, ZeroProbabilityLeavesStayUntilted) {
  // p = 0 leaves cannot fire under the model; the proposal must keep them
  // at 0 (tilting them would only waste weight), so a tree whose only cut
  // sets need such a leaf still reports 0 under importance sampling.
  fta::FaultTree tree("Blocked");
  const auto dead = tree.add_basic_event("Dead");
  const auto live = tree.add_basic_event("Live");
  tree.set_top(tree.add_and("Top", {dead, live}));
  auto input = fta::QuantificationInput::for_tree(tree, 0.0);
  input.set(tree, "Live", 0.01);

  AdaptiveOptions options;
  options.target_halfwidth = 0.1;
  options.relative = true;
  options.tilt = 50.0;
  options.max_trials = 200000;
  const auto result = AdaptiveMonteCarlo(options).estimate(tree, input);

  EXPECT_FALSE(result.converged);  // relative target at estimate 0
  EXPECT_EQ(result.estimate, 0.0);
  EXPECT_EQ(result.occurrences, 0u);
  EXPECT_EQ(result.trials, 200000u);
}

TEST(AdaptiveMonteCarloTest, BatchEstimateMatchesSerialCalls) {
  const RareSystem system;
  // A second input at different leaf probabilities.
  fta::QuantificationInput other = system.input;
  other.set(system.tree, "Valve", 5e-2);
  other.set(system.tree, "Demand", 5e-2);

  AdaptiveOptions options;
  options.target_halfwidth = 0.15;
  options.relative = true;
  options.tilt = 20.0;
  options.batch = 1 << 14;
  ThreadPool pool(3);
  options.pool = &pool;
  const AdaptiveMonteCarlo sampler(options);

  const auto serial_a = sampler.estimate(system.tree, system.input);
  const auto serial_b = sampler.estimate(system.tree, other);
  const auto batch =
      sampler.estimate_batch(system.tree, {system.input, other});

  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].estimate, serial_a.estimate);
  EXPECT_EQ(batch[0].trials, serial_a.trials);
  EXPECT_EQ(batch[0].ess, serial_a.ess);
  EXPECT_EQ(batch[1].estimate, serial_b.estimate);
  EXPECT_EQ(batch[1].trials, serial_b.trials);
  EXPECT_EQ(batch[1].ess, serial_b.ess);
}

TEST(AdaptiveMonteCarloTest, SeedChangesTheSample) {
  const fta::FaultTree tree = testutil::random_tree(38);
  const auto input = fta::QuantificationInput::for_tree(tree, 0.05);

  AdaptiveOptions a;
  a.max_trials = 50000;
  a.target_halfwidth = 1e-9;
  a.relative = false;
  a.seed = 1;
  AdaptiveOptions b = a;
  b.seed = 2;
  const auto ra = AdaptiveMonteCarlo(a).estimate(tree, input);
  const auto rb = AdaptiveMonteCarlo(b).estimate(tree, input);
  EXPECT_NE(ra.occurrences, rb.occurrences);
}

}  // namespace
}  // namespace safeopt::mc
