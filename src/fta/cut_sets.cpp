#include "safeopt/fta/cut_sets.h"

#include <algorithm>
#include <set>

#include "safeopt/support/contracts.h"
#include "safeopt/support/strings.h"

namespace safeopt::fta {
namespace {

/// Inserts `value` into the sorted vector `sorted` if not already present.
void insert_sorted_unique(std::vector<NodeId>& sorted, NodeId value) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), value);
  if (it == sorted.end() || *it != value) sorted.insert(it, value);
}

/// Removes `value` from the sorted vector `sorted` (must be present).
void erase_sorted(std::vector<NodeId>& sorted, NodeId value) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), value);
  SAFEOPT_ASSERT(it != sorted.end() && *it == value);
  sorted.erase(it);
}

/// Enumerates all k-subsets of `items`, invoking `emit` with each subset.
template <typename Emit>
void for_each_k_subset(std::span<const NodeId> items, std::uint32_t k,
                       Emit emit) {
  std::vector<NodeId> chosen;
  chosen.reserve(k);
  const auto recurse = [&](auto&& self, std::size_t start) -> void {
    if (chosen.size() == k) {
      emit(std::span<const NodeId>(chosen));
      return;
    }
    const std::size_t still_needed = k - chosen.size();
    for (std::size_t i = start; i + still_needed <= items.size(); ++i) {
      chosen.push_back(items[i]);
      self(self, i + 1);
      chosen.pop_back();
    }
  };
  recurse(recurse, 0);
}

}  // namespace

bool CutSet::subsumes(const CutSet& other) const noexcept {
  return std::includes(other.events.begin(), other.events.end(),
                       events.begin(), events.end()) &&
         std::includes(other.conditions.begin(), other.conditions.end(),
                       conditions.begin(), conditions.end());
}

bool CutSet::less(const CutSet& a, const CutSet& b) noexcept {
  if (a.events.size() != b.events.size()) {
    return a.events.size() < b.events.size();
  }
  if (a.events != b.events) return a.events < b.events;
  return a.conditions < b.conditions;
}

CutSetCollection::CutSetCollection(std::vector<CutSet> sets)
    : sets_(std::move(sets)) {
  std::sort(sets_.begin(), sets_.end(), CutSet::less);
  sets_.erase(std::unique(sets_.begin(), sets_.end()), sets_.end());
}

const CutSet& CutSetCollection::operator[](std::size_t i) const {
  SAFEOPT_EXPECTS(i < sets_.size());
  return sets_[i];
}

std::size_t CutSetCollection::max_order() const noexcept {
  std::size_t max = 0;
  for (const CutSet& cs : sets_) max = std::max(max, cs.order());
  return max;
}

std::size_t CutSetCollection::count_of_order(std::size_t order) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(sets_.begin(), sets_.end(),
                    [order](const CutSet& cs) { return cs.order() == order; }));
}

std::vector<BasicEventOrdinal> CutSetCollection::single_points_of_failure()
    const {
  std::vector<BasicEventOrdinal> out;
  for (const CutSet& cs : sets_) {
    if (cs.is_single_point_of_failure()) out.push_back(cs.events.front());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void CutSetCollection::minimize() {
  std::sort(sets_.begin(), sets_.end(), CutSet::less);
  sets_.erase(std::unique(sets_.begin(), sets_.end()), sets_.end());
  std::vector<CutSet> minimal;
  minimal.reserve(sets_.size());
  for (CutSet& candidate : sets_) {
    const bool subsumed = std::any_of(
        minimal.begin(), minimal.end(),
        [&](const CutSet& kept) { return kept.subsumes(candidate); });
    if (!subsumed) minimal.push_back(std::move(candidate));
  }
  sets_ = std::move(minimal);
}

bool CutSetCollection::is_minimal() const noexcept {
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    for (std::size_t j = 0; j < sets_.size(); ++j) {
      if (i != j && sets_[i].subsumes(sets_[j])) return false;
    }
  }
  return true;
}

std::string CutSetCollection::to_string(const FaultTree& tree) const {
  std::string out;
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{";
    const CutSet& cs = sets_[i];
    for (std::size_t e = 0; e < cs.events.size(); ++e) {
      if (e > 0) out += ", ";
      out += tree.node_name(tree.basic_events()[cs.events[e]]);
    }
    if (!cs.conditions.empty()) {
      out += " | ";
      for (std::size_t c = 0; c < cs.conditions.size(); ++c) {
        if (c > 0) out += ", ";
        out += tree.node_name(tree.conditions()[cs.conditions[c]]);
      }
    }
    out += "}";
  }
  return out;
}

CutSetCollection minimal_cut_sets(const FaultTree& tree) {
  SAFEOPT_EXPECTS(tree.has_top());
  // MOCUS working state: each in-progress cut set is a sorted NodeId vector
  // that may still contain gates. The frontier is deduplicated to avoid
  // re-expanding identical intermediate sets in shared-subtree DAGs.
  std::set<std::vector<NodeId>> frontier;
  std::set<std::vector<NodeId>> expanded;
  frontier.insert({tree.top()});

  while (!frontier.empty()) {
    auto working = *frontier.begin();
    frontier.erase(frontier.begin());

    const auto gate_it =
        std::find_if(working.begin(), working.end(), [&](NodeId id) {
          return tree.kind(id) == NodeKind::kGate;
        });
    if (gate_it == working.end()) {
      expanded.insert(std::move(working));
      continue;
    }
    const NodeId gate = *gate_it;
    erase_sorted(working, gate);
    const std::span<const NodeId> children = tree.children(gate);

    switch (tree.gate_type(gate)) {
      case GateType::kAnd:
      case GateType::kInhibit: {
        // INHIBIT == AND(cause, condition): both join the working set; the
        // condition surfaces later in CutSet::conditions.
        for (const NodeId child : children) {
          insert_sorted_unique(working, child);
        }
        frontier.insert(std::move(working));
        break;
      }
      case GateType::kOr:
      case GateType::kXor: {
        // XOR is expanded as OR: the coherent hull, conservative for safety.
        for (const NodeId child : children) {
          auto branch = working;
          insert_sorted_unique(branch, child);
          frontier.insert(std::move(branch));
        }
        break;
      }
      case GateType::kKofN: {
        for_each_k_subset(
            children, tree.vote_threshold(gate),
            [&](std::span<const NodeId> subset) {
              auto branch = working;
              for (const NodeId child : subset) {
                insert_sorted_unique(branch, child);
              }
              frontier.insert(std::move(branch));
            });
        break;
      }
    }
  }

  std::vector<CutSet> sets;
  sets.reserve(expanded.size());
  for (const auto& nodes : expanded) {
    CutSet cs;
    for (const NodeId id : nodes) {
      if (tree.kind(id) == NodeKind::kBasicEvent) {
        cs.events.push_back(tree.basic_event_ordinal(id));
      } else {
        SAFEOPT_ASSERT(tree.kind(id) == NodeKind::kCondition);
        cs.conditions.push_back(tree.condition_ordinal(id));
      }
    }
    std::sort(cs.events.begin(), cs.events.end());
    std::sort(cs.conditions.begin(), cs.conditions.end());
    sets.push_back(std::move(cs));
  }

  CutSetCollection collection(std::move(sets));
  collection.minimize();
  SAFEOPT_ENSURES(collection.is_minimal());
  return collection;
}

namespace {

/// Structure-function evaluation over the *coherent hull*: XOR is treated as
/// OR, exactly as MOCUS expands it, so the brute-force oracle and MOCUS agree
/// by construction on non-coherent inputs.
bool evaluate_coherent_hull(const FaultTree& tree, NodeId id,
                            const std::vector<bool>& basic_state,
                            const std::vector<bool>& condition_state,
                            std::vector<signed char>& memo) {
  if (memo[id] >= 0) return memo[id] != 0;
  bool result = false;
  switch (tree.kind(id)) {
    case NodeKind::kBasicEvent:
      result = basic_state[tree.basic_event_ordinal(id)];
      break;
    case NodeKind::kCondition:
      result = condition_state[tree.condition_ordinal(id)];
      break;
    case NodeKind::kGate: {
      const auto children = tree.children(id);
      switch (tree.gate_type(id)) {
        case GateType::kAnd:
        case GateType::kInhibit: {
          result = true;
          for (const NodeId child : children) {
            result = result && evaluate_coherent_hull(tree, child, basic_state,
                                                      condition_state, memo);
          }
          break;
        }
        case GateType::kOr:
        case GateType::kXor: {
          result = false;
          for (const NodeId child : children) {
            result = result || evaluate_coherent_hull(tree, child, basic_state,
                                                      condition_state, memo);
          }
          break;
        }
        case GateType::kKofN: {
          std::uint32_t count = 0;
          for (const NodeId child : children) {
            if (evaluate_coherent_hull(tree, child, basic_state,
                                       condition_state, memo)) {
              ++count;
            }
          }
          result = count >= tree.vote_threshold(id);
          break;
        }
      }
      break;
    }
  }
  memo[id] = result ? 1 : 0;
  return result;
}

}  // namespace

CutSetCollection minimal_path_sets(const FaultTree& tree) {
  SAFEOPT_EXPECTS(tree.has_top());
  // Build the dual tree: same leaves, AND <-> OR, k-of-n -> (n−k+1)-of-n.
  // De Morgan: the dual's cut sets are the original's path sets. INHIBIT is
  // an AND of cause and condition, so it dualizes to an OR of the two.
  FaultTree dual(concat(tree.name(), ".dual"));
  std::vector<NodeId> mapped(tree.node_count());
  for (NodeId id = 0; id < tree.node_count(); ++id) {
    switch (tree.kind(id)) {
      case NodeKind::kBasicEvent:
        mapped[id] = dual.add_basic_event(tree.node_name(id));
        break;
      case NodeKind::kCondition:
        // A condition is an element of the cut sets it constrains, so
        // "prevent the condition" is a legitimate way to break them (shut
        // the process down and the cooling failure is harmless). In the
        // dual it participates like any leaf; the ordinal mapping below
        // routes it back into CutSet::conditions.
        mapped[id] = dual.add_basic_event(tree.node_name(id));
        break;
      case NodeKind::kGate: {
        SAFEOPT_EXPECTS(tree.gate_type(id) != GateType::kXor);
        std::vector<NodeId> children;
        for (const NodeId child : tree.children(id)) {
          children.push_back(mapped[child]);
        }
        const std::string& name = tree.node_name(id);
        switch (tree.gate_type(id)) {
          case GateType::kAnd:
          case GateType::kInhibit:
            mapped[id] = dual.add_or(name, std::move(children));
            break;
          case GateType::kOr:
            mapped[id] = dual.add_and(name, std::move(children));
            break;
          case GateType::kKofN: {
            const auto n = static_cast<std::uint32_t>(children.size());
            const std::uint32_t k = tree.vote_threshold(id);
            mapped[id] =
                dual.add_k_of_n(name, n - k + 1, std::move(children));
            break;
          }
          case GateType::kXor:
            SAFEOPT_ASSERT(false);
            break;
        }
        break;
      }
    }
  }
  dual.set_top(mapped[tree.top()]);
  CutSetCollection dual_cuts = minimal_cut_sets(dual);

  // Map the dual's basic-event ordinals back: conditions of the original
  // became trailing pseudo-events in the dual in id order; translate any
  // such ordinal into CutSet::conditions of the original numbering.
  std::vector<bool> is_condition(dual.basic_event_count(), false);
  std::vector<std::uint32_t> original_ordinal(dual.basic_event_count(), 0);
  for (NodeId id = 0; id < tree.node_count(); ++id) {
    if (tree.kind(id) == NodeKind::kBasicEvent) {
      const auto dual_ord = dual.basic_event_ordinal(mapped[id]);
      original_ordinal[dual_ord] = tree.basic_event_ordinal(id);
    } else if (tree.kind(id) == NodeKind::kCondition) {
      const auto dual_ord = dual.basic_event_ordinal(mapped[id]);
      is_condition[dual_ord] = true;
      original_ordinal[dual_ord] = tree.condition_ordinal(id);
    }
  }
  std::vector<CutSet> sets;
  sets.reserve(dual_cuts.size());
  for (const CutSet& dual_set : dual_cuts.sets()) {
    CutSet path;
    for (const BasicEventOrdinal e : dual_set.events) {
      if (is_condition[e]) {
        path.conditions.push_back(original_ordinal[e]);
      } else {
        path.events.push_back(original_ordinal[e]);
      }
    }
    std::sort(path.events.begin(), path.events.end());
    std::sort(path.conditions.begin(), path.conditions.end());
    sets.push_back(std::move(path));
  }
  return CutSetCollection(std::move(sets));
}

CutSetCollection minimal_cut_sets_bruteforce(const FaultTree& tree) {
  SAFEOPT_EXPECTS(tree.has_top());
  const std::size_t n_events = tree.basic_event_count();
  const std::size_t n_conditions = tree.condition_count();
  const std::size_t n_total = n_events + n_conditions;
  SAFEOPT_EXPECTS(n_total <= 24);

  const auto evaluate_mask = [&](std::uint64_t mask) {
    std::vector<bool> basic(n_events, false);
    std::vector<bool> cond(n_conditions, false);
    for (std::size_t i = 0; i < n_events; ++i) {
      basic[i] = (mask & (1ULL << i)) != 0;
    }
    for (std::size_t i = 0; i < n_conditions; ++i) {
      cond[i] = (mask & (1ULL << (n_events + i))) != 0;
    }
    std::vector<signed char> memo(tree.node_count(), -1);
    return evaluate_coherent_hull(tree, tree.top(), basic, cond, memo);
  };

  std::vector<CutSet> minimal;
  const std::uint64_t limit = 1ULL << n_total;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    if (!evaluate_mask(mask)) continue;
    // Coherent structure function: minimal iff flipping any single bit off
    // makes the hazard vanish.
    bool is_minimal = true;
    for (std::size_t bit = 0; bit < n_total && is_minimal; ++bit) {
      if ((mask & (1ULL << bit)) != 0 && evaluate_mask(mask ^ (1ULL << bit))) {
        is_minimal = false;
      }
    }
    if (!is_minimal) continue;
    CutSet cs;
    for (std::size_t i = 0; i < n_events; ++i) {
      if ((mask & (1ULL << i)) != 0) {
        cs.events.push_back(static_cast<BasicEventOrdinal>(i));
      }
    }
    for (std::size_t i = 0; i < n_conditions; ++i) {
      if ((mask & (1ULL << (n_events + i))) != 0) {
        cs.conditions.push_back(static_cast<ConditionOrdinal>(i));
      }
    }
    minimal.push_back(std::move(cs));
  }
  return CutSetCollection(std::move(minimal));
}

}  // namespace safeopt::fta
