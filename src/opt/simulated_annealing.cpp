#include "safeopt/opt/simulated_annealing.h"

#include "builtin_solvers.h"

#include <algorithm>
#include <cmath>

#include "safeopt/stats/special_functions.h"
#include "safeopt/support/contracts.h"
#include "safeopt/support/rng.h"

namespace safeopt::opt {

SimulatedAnnealing::SimulatedAnnealing(Schedule schedule, std::uint64_t seed,
                                       StoppingCriteria stopping)
    : schedule_(schedule), seed_(seed), stopping_(stopping) {
  SAFEOPT_EXPECTS(schedule.initial_temperature > 0.0);
  SAFEOPT_EXPECTS(schedule.cooling_factor > 0.0 &&
                  schedule.cooling_factor < 1.0);
  SAFEOPT_EXPECTS(schedule.steps_per_epoch >= 1);
}

OptimizationResult SimulatedAnnealing::minimize(const Problem& problem) const {
  const std::size_t dim = problem.bounds.dimension();
  SAFEOPT_EXPECTS(dim >= 1);

  OptimizationResult result;
  Rng rng(seed_);

  std::vector<double> current(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    current[i] =
        uniform(rng, problem.bounds.lower[i], problem.bounds.upper[i]);
  }
  double f_current = problem.objective(current);
  ++result.evaluations;
  std::vector<double> best = current;
  double f_best = f_current;

  double temperature = schedule_.initial_temperature;
  // Proposal scale shrinks with temperature: wide exploration early, local
  // refinement late.
  while (temperature > schedule_.final_temperature &&
         result.iterations < stopping_.max_iterations) {
    ++result.iterations;
    const double relative_scale =
        std::sqrt(temperature / schedule_.initial_temperature);
    for (std::size_t step = 0; step < schedule_.steps_per_epoch; ++step) {
      std::vector<double> proposal(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        const double sigma =
            0.25 * relative_scale * std::max(problem.bounds.width(i), 1e-12);
        // Box–Muller-free normal draw via the quantile of a uniform.
        const double u = std::clamp(uniform01(rng), 1e-15, 1.0 - 1e-15);
        proposal[i] = current[i] + sigma * stats::normal_quantile(u);
      }
      proposal = problem.bounds.project(proposal);
      const double f_proposal = problem.objective(proposal);
      ++result.evaluations;
      const double delta = f_proposal - f_current;
      if (delta <= 0.0 ||
          uniform01(rng) < std::exp(-delta / temperature)) {
        current = std::move(proposal);
        f_current = f_proposal;
        if (f_current < f_best) {
          best = current;
          f_best = f_current;
        }
      }
    }
    temperature *= schedule_.cooling_factor;
  }

  result.argmin = std::move(best);
  result.value = f_best;
  result.converged = temperature <= schedule_.final_temperature;
  result.message = result.converged ? "cooled to final temperature"
                                    : "iteration budget exhausted";
  return result;
}

// ---- registry adapter -------------------------------------------------------

namespace {

/// Extras: "initial_temperature", "cooling_factor", "steps_per_epoch",
/// "final_temperature" (defaults = Schedule{}). Honors config.seed.
class SimulatedAnnealingSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "simulated_annealing";
  }
  [[nodiscard]] SolverTraits traits() const noexcept override {
    return SolverTraits{.max_dimension = 0, .stochastic = true};
  }

 private:
  [[nodiscard]] OptimizationResult run(
      const Problem& problem, const SolverConfig& config) const override {
    SimulatedAnnealing::Schedule schedule;
    schedule.initial_temperature =
        config.number_or("initial_temperature", schedule.initial_temperature);
    schedule.cooling_factor =
        config.number_or("cooling_factor", schedule.cooling_factor);
    schedule.steps_per_epoch =
        config.count_or("steps_per_epoch", schedule.steps_per_epoch);
    schedule.final_temperature =
        config.number_or("final_temperature", schedule.final_temperature);
    return SimulatedAnnealing(schedule, config.seed.value_or(0x5afe0u),
                              config.stopping())
        .minimize(problem);
  }
};

}  // namespace

std::unique_ptr<Solver> detail::make_simulated_annealing_solver() {
  return std::make_unique<SimulatedAnnealingSolver>();
}

}  // namespace safeopt::opt
