#include "safeopt/support/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "safeopt/support/contracts.h"

namespace safeopt {

namespace {
thread_local bool t_inside_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  t_inside_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) lock.wait(work_available_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A task exception must not unwind the worker (std::terminate) — park
    // the first one for the next wait_idle() instead. parallel_for bodies
    // never reach this catch: its wrapper catches before the pool does.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const MutexLock lock(mutex_);
      if (error && !pending_error_) pending_error_ = std::move(error);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  SAFEOPT_EXPECTS(static_cast<bool>(task));
  {
    const MutexLock lock(mutex_);
    SAFEOPT_EXPECTS(!stopping_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    MutexLock lock(mutex_);
    while (in_flight_ != 0) lock.wait(idle_);
    error = std::exchange(pending_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  SAFEOPT_EXPECTS(static_cast<bool>(body));
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);

  // Chunk layout depends only on (n, grain, thread_count): ceil-divide into
  // at most thread_count chunks of at least `grain` indices each.
  const std::size_t max_chunks =
      std::min(thread_count(), (n + grain - 1) / grain);
  if (max_chunks <= 1 || thread_count() <= 1 || t_inside_worker) {
    body(0, n);
    return;
  }
  const std::size_t chunk = (n + max_chunks - 1) / max_chunks;

  // One mutex guards both the countdown and the first error, so the final
  // read of `first_error` on the issuing thread is ordered after every
  // chunk's write — not just "usually published in time".
  Mutex mutex;
  std::condition_variable done;
  std::size_t remaining = 0;    // guarded by `mutex` (local)
  std::exception_ptr first_error;  // guarded by `mutex` (local)

  for (std::size_t begin = 0; begin < n; begin += chunk) ++remaining;

  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    submit([&, begin, end] {
      std::exception_ptr error;
      try {
        body(begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      // Notify under the lock: the waiter below cannot finish its predicate
      // re-check and destroy `done` mid-notify.
      const MutexLock lock(mutex);
      if (error && !first_error) first_error = std::move(error);
      if (--remaining == 0) done.notify_all();
    });
  }

  std::exception_ptr error;
  {
    MutexLock lock(mutex);
    while (remaining != 0) lock.wait(done);
    error = first_error;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::inside_worker() noexcept { return t_inside_worker; }

}  // namespace safeopt
