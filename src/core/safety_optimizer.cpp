#include "safeopt/core/safety_optimizer.h"

#include <memory>

#include "safeopt/expr/compiled.h"
#include "safeopt/opt/coordinate_descent.h"
#include "safeopt/opt/differential_evolution.h"
#include "safeopt/opt/gradient_descent.h"
#include "safeopt/opt/grid_search.h"
#include "safeopt/opt/hooke_jeeves.h"
#include "safeopt/opt/multi_start.h"
#include "safeopt/opt/nelder_mead.h"
#include "safeopt/opt/simulated_annealing.h"
#include "safeopt/support/contracts.h"
#include "safeopt/support/thread_pool.h"

namespace safeopt::core {

std::string_view to_string(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kGridSearch: return "GridSearch";
    case Algorithm::kNelderMead: return "NelderMead";
    case Algorithm::kMultiStartNelderMead: return "MultiStart(NelderMead)";
    case Algorithm::kGradientDescent: return "ProjectedGradientDescent";
    case Algorithm::kHookeJeeves: return "HookeJeeves";
    case Algorithm::kCoordinateDescent: return "CoordinateDescent";
    case Algorithm::kSimulatedAnnealing: return "SimulatedAnnealing";
    case Algorithm::kDifferentialEvolution: return "DifferentialEvolution";
  }
  return "?";
}

SafetyOptimizer::SafetyOptimizer(CostModel model, ParameterSpace space)
    : model_(std::move(model)), space_(std::move(space)) {
  SAFEOPT_EXPECTS(model_.hazard_count() >= 1);
  SAFEOPT_EXPECTS(space_.size() >= 1);
  // Every parameter the cost expression mentions must be optimizable.
  for (const std::string& name : model_.cost_expression().parameters()) {
    SAFEOPT_EXPECTS(space_.index_of(name).has_value());
  }
}

opt::Problem SafetyOptimizer::problem() const {
  const expr::Expr cost = model_.cost_expression();
  const std::vector<std::string> names = space_.names();
  opt::Problem problem;
  problem.bounds = space_.box();
  // The scalar objective runs on the compiled tape — bitwise-identical to
  // cost.evaluate() (see compiled.h) and ~3× faster, so every solver in
  // src/opt gets the compiled path without knowing it exists. The exact
  // forward-mode dual gradient is kept as-is: reverse-over-tape gradients
  // are equal only up to rounding, and gradient descent trajectories should
  // not move under a performance change.
  const auto compiled = std::make_shared<const expr::CompiledExpr>(
      expr::CompiledExpr::compile(cost, names));
  problem.objective = [compiled](std::span<const double> x) {
    return compiled->evaluate(x);
  };
  // Capture the space by value: the returned Problem must stay valid after
  // this SafetyOptimizer is gone (e.g. when built from a temporary).
  const ParameterSpace space = space_;
  problem.gradient = [space, cost, names](std::span<const double> x) {
    return cost.evaluate_dual(space.assignment(x), names).grad();
  };
  // Large batches (grid rounds, synchronous DE generations) fan out over
  // the shared pool; each row writes only its own output slot, so results
  // do not depend on the thread count.
  problem.batch_objective = [compiled](std::span<const double> points,
                                       std::span<double> out) {
    constexpr std::size_t kParallelThreshold = 256;
    if (out.size() >= kParallelThreshold) {
      compiled->evaluate_batch(points, out, ThreadPool::shared());
    } else {
      compiled->evaluate_batch(points, out);
    }
  };
  // Population-shaped gradient consumers get lane-batched reverse-mode
  // sweeps (values bitwise-equal to the objective; gradients exact, equal
  // to the dual gradient up to reassociation of the chain rule).
  problem.batch_gradient = [compiled](std::span<const double> points,
                                      std::span<double> values_out,
                                      std::span<double> gradients_out) {
    constexpr std::size_t kParallelThreshold = 128;
    if (values_out.size() >= kParallelThreshold) {
      compiled->evaluate_batch_with_gradients(points, values_out,
                                              gradients_out,
                                              ThreadPool::shared());
    } else {
      compiled->evaluate_batch_with_gradients(points, values_out,
                                              gradients_out);
    }
  };
  return problem;
}

SafetyOptimizationResult SafetyOptimizer::optimize(Algorithm algorithm) const {
  const opt::Problem numeric = problem();

  std::unique_ptr<opt::Optimizer> solver;
  switch (algorithm) {
    case Algorithm::kGridSearch:
      solver = std::make_unique<opt::GridSearch>(33, 5);
      break;
    case Algorithm::kNelderMead:
      solver = std::make_unique<opt::NelderMead>();
      break;
    case Algorithm::kMultiStartNelderMead:
      solver = std::make_unique<opt::MultiStart>(
          [](std::vector<double> start) -> std::unique_ptr<opt::Optimizer> {
            return std::make_unique<opt::NelderMead>(opt::StoppingCriteria{},
                                                     std::move(start));
          },
          8);
      break;
    case Algorithm::kGradientDescent:
      solver = std::make_unique<opt::ProjectedGradientDescent>();
      break;
    case Algorithm::kHookeJeeves:
      solver = std::make_unique<opt::HookeJeeves>();
      break;
    case Algorithm::kCoordinateDescent:
      solver = std::make_unique<opt::CoordinateDescent>();
      break;
    case Algorithm::kSimulatedAnnealing:
      solver = std::make_unique<opt::SimulatedAnnealing>();
      break;
    case Algorithm::kDifferentialEvolution:
      solver = std::make_unique<opt::DifferentialEvolution>();
      break;
  }
  SAFEOPT_ASSERT(solver != nullptr);

  SafetyOptimizationResult result;
  result.optimization = solver->minimize(numeric);
  result.optimal_parameters = space_.assignment(result.optimization.argmin);
  result.hazard_probabilities =
      model_.hazard_probabilities(result.optimal_parameters);
  result.cost = result.optimization.value;
  return result;
}

SafetyOptimizationResult SafetyOptimizer::evaluate_at(
    const expr::ParameterAssignment& configuration) const {
  SafetyOptimizationResult result;
  result.optimal_parameters = configuration;
  result.hazard_probabilities = model_.hazard_probabilities(configuration);
  result.cost = model_.cost(configuration);
  result.optimization.argmin = space_.values(configuration);
  result.optimization.value = result.cost;
  result.optimization.converged = true;
  result.optimization.message = "direct evaluation";
  return result;
}

ComparisonReport SafetyOptimizer::compare(
    const expr::ParameterAssignment& baseline,
    const SafetyOptimizationResult& optimal) const {
  ComparisonReport report;
  report.baseline_cost = model_.cost(baseline);
  report.optimal_cost = optimal.cost;
  report.cost_relative_change =
      report.baseline_cost != 0.0
          ? (report.optimal_cost - report.baseline_cost) / report.baseline_cost
          : 0.0;
  const std::vector<double> base_probs =
      model_.hazard_probabilities(baseline);
  SAFEOPT_ASSERT(base_probs.size() == optimal.hazard_probabilities.size());
  for (std::size_t i = 0; i < base_probs.size(); ++i) {
    HazardComparison hc;
    hc.hazard = model_.hazard(i).name;
    hc.baseline_probability = base_probs[i];
    hc.optimal_probability = optimal.hazard_probabilities[i];
    hc.relative_change =
        hc.baseline_probability != 0.0
            ? (hc.optimal_probability - hc.baseline_probability) /
                  hc.baseline_probability
            : 0.0;
    report.hazards.push_back(std::move(hc));
  }
  return report;
}

}  // namespace safeopt::core
