#include "safeopt/core/cost_model.h"

#include <algorithm>

#include "safeopt/support/contracts.h"

namespace safeopt::core {

void CostModel::add_hazard(Hazard hazard) {
  SAFEOPT_EXPECTS(!hazard.name.empty());
  SAFEOPT_EXPECTS(hazard.cost >= 0.0);
  SAFEOPT_EXPECTS(std::none_of(hazards_.begin(), hazards_.end(),
                               [&](const Hazard& existing) {
                                 return existing.name == hazard.name;
                               }));
  hazards_.push_back(std::move(hazard));
}

const Hazard& CostModel::hazard(std::size_t i) const {
  SAFEOPT_EXPECTS(i < hazards_.size());
  return hazards_[i];
}

const Hazard& CostModel::hazard_by_name(std::string_view name) const {
  const auto it = std::find_if(
      hazards_.begin(), hazards_.end(),
      [&](const Hazard& h) { return h.name == name; });
  SAFEOPT_EXPECTS(it != hazards_.end());
  return *it;
}

expr::Expr CostModel::cost_expression() const {
  SAFEOPT_EXPECTS(!hazards_.empty());
  expr::Expr total = expr::constant(0.0);
  for (const Hazard& h : hazards_) {
    total = total + h.cost * h.probability;
  }
  return total;
}

double CostModel::cost(const expr::ParameterAssignment& at) const {
  return cost_expression().evaluate(at);
}

std::vector<double> CostModel::hazard_probabilities(
    const expr::ParameterAssignment& at) const {
  std::vector<double> out;
  out.reserve(hazards_.size());
  for (const Hazard& h : hazards_) out.push_back(h.probability.evaluate(at));
  return out;
}

}  // namespace safeopt::core
