// Compiled quantification of a parameterized fault tree — the performance
// twin of ParameterizedQuantification's symbolic construction.
//
// The symbolic path assembles P(H)(X) and I_B(e)(X) as expression trees
// (Eqs. 2–4) and walks them per evaluation. Optimizers, sweeps, and robust
// loops evaluate those expressions at thousands of parameter points, so this
// facility compiles everything exactly once into expr::CompiledExpr tapes:
//
//   * the assembled hazard expression (either HazardFormula),
//   * the Birnbaum importance expression of every basic event,
//   * every leaf/condition probability expression (for producing the
//     numeric QuantificationInput the classical fta/bdd/mc engines take —
//     the seam Monte Carlo cross-validation samples through).
//
// All tapes share one parameter order, so one optimizer vector serves every
// evaluation. Values are bitwise-identical to the corresponding
// Expr::evaluate tree walks (the CompiledExpr contract), and the batch
// entry points run the lane-blocked SoA kernel with its lane-count- and
// thread-count-invariance guarantees.
#ifndef SAFEOPT_CORE_COMPILED_QUANTIFICATION_H
#define SAFEOPT_CORE_COMPILED_QUANTIFICATION_H

#include <span>
#include <string>
#include <vector>

#include "safeopt/core/parameterized_fta.h"
#include "safeopt/expr/compiled.h"
#include "safeopt/fta/cut_sets.h"
#include "safeopt/fta/probability.h"

namespace safeopt {
class ThreadPool;
}

namespace safeopt::core {

class CompiledQuantification {
 public:
  /// Compiles the hazard, Birnbaum, and leaf tapes of `quantification` over
  /// `mcs`. Every parameter any leaf expression mentions must appear in
  /// `parameter_order` (extra names are allowed and ignored, matching
  /// CompiledExpr::compile).
  CompiledQuantification(const ParameterizedQuantification& quantification,
                         const fta::CutSetCollection& mcs,
                         std::vector<std::string> parameter_order,
                         HazardFormula formula = HazardFormula::kRareEvent);

  /// Convenience: runs MOCUS on the quantification's tree and orders the
  /// parameter slots alphabetically (the union of every leaf expression's
  /// parameters).
  explicit CompiledQuantification(
      const ParameterizedQuantification& quantification,
      HazardFormula formula = HazardFormula::kRareEvent);

  [[nodiscard]] const std::vector<std::string>& parameter_order()
      const noexcept {
    return parameter_order_;
  }
  [[nodiscard]] HazardFormula formula() const noexcept { return formula_; }

  // ---- evaluation backend -------------------------------------------------

  /// Pins every batch entry point below to `backend` (a registry pointer,
  /// valid for the process lifetime). Null restores runtime dispatch
  /// (expr::BackendRegistry::active()). This is how the `backend=` engine
  /// option flows Study → compiled tapes; results are bitwise-identical
  /// either way — the pin only selects which kernel produces them.
  void set_backend(const expr::EvalBackend* backend) noexcept {
    backend_ = backend;
  }
  [[nodiscard]] const expr::EvalBackend* backend() const noexcept {
    return backend_;
  }

  // ---- hazard probability P(H)(X) -----------------------------------------

  /// One point; bitwise-identical to hazard_expression(mcs, formula)
  /// .evaluate() at the same configuration.
  [[nodiscard]] double hazard(std::span<const double> parameters) const;

  /// Lane-batched evaluation over row-major `points` (one parameter vector
  /// per output element), optionally fanned out over `pool`.
  void hazard_batch(std::span<const double> points,
                    std::span<double> out) const;
  void hazard_batch(std::span<const double> points, std::span<double> out,
                    ThreadPool& pool) const;

  /// Lane-batched values + reverse-mode gradients of P(H)(X) — one forward
  /// and one adjoint sweep per lane block (see CompiledExpr).
  void hazard_batch_with_gradients(std::span<const double> points,
                                   std::span<double> values_out,
                                   std::span<double> gradients_out) const;

  // ---- Birnbaum importance I_B(e)(X) --------------------------------------

  /// Parameterized Birnbaum importance of one basic event;
  /// bitwise-identical to birnbaum_expression(mcs, event, formula)
  /// .evaluate() at the same configuration.
  [[nodiscard]] double birnbaum(fta::BasicEventOrdinal event,
                                std::span<const double> parameters) const;

  void birnbaum_batch(fta::BasicEventOrdinal event,
                      std::span<const double> points,
                      std::span<double> out) const;

  // ---- numeric quantification input ---------------------------------------

  /// Evaluates every leaf tape at `parameters`, producing the numeric input
  /// for the classical fta/bdd/mc engines. Identical (bitwise) to
  /// ParameterizedQuantification::evaluate at the same configuration.
  [[nodiscard]] fta::QuantificationInput input_at(
      std::span<const double> parameters) const;

  /// Name-based convenience; every slot must be bound in `at`.
  [[nodiscard]] fta::QuantificationInput input_at(
      const expr::ParameterAssignment& at) const;

  // ---- tape access (benches, custom solvers) ------------------------------

  [[nodiscard]] const expr::CompiledExpr& hazard_tape() const noexcept {
    return hazard_;
  }
  [[nodiscard]] const expr::CompiledExpr& birnbaum_tape(
      fta::BasicEventOrdinal event) const;

 private:
  std::vector<std::string> parameter_order_;
  HazardFormula formula_;
  const expr::EvalBackend* backend_ = nullptr;  // null → runtime dispatch
  expr::CompiledExpr hazard_;
  std::vector<expr::CompiledExpr> birnbaum_;     // by BasicEventOrdinal
  std::vector<expr::CompiledExpr> events_;       // leaf tapes, by ordinal
  std::vector<expr::CompiledExpr> conditions_;   // by ConditionOrdinal
};

}  // namespace safeopt::core

#endif  // SAFEOPT_CORE_COMPILED_QUANTIFICATION_H
