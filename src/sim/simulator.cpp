#include "safeopt/sim/simulator.h"

#include <utility>

#include "safeopt/support/contracts.h"

namespace safeopt::sim {

void Simulator::schedule_at(double time, Callback callback) {
  SAFEOPT_EXPECTS(time >= now_);
  SAFEOPT_EXPECTS(static_cast<bool>(callback));
  queue_.push(Event{time, sequence_++, std::move(callback)});
}

void Simulator::schedule_in(double delay, Callback callback) {
  SAFEOPT_EXPECTS(delay >= 0.0);
  schedule_at(now_ + delay, std::move(callback));
}

void Simulator::step() {
  // Move the event out of the queue before invoking: the callback may
  // schedule new events, invalidating the queue top.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.time;
  ++processed_;
  event.callback();
}

void Simulator::run() {
  while (!queue_.empty()) step();
}

void Simulator::run_until(double end_time) {
  SAFEOPT_EXPECTS(end_time >= now_);
  while (!queue_.empty() && queue_.top().time <= end_time) step();
  now_ = std::max(now_, end_time);
}

}  // namespace safeopt::sim
