// Blocking-socket helpers for the `safeopt serve` front end: a loopback TCP
// listener with a stoppable accept loop and a move-only connected-socket
// wrapper. Deliberately minimal and POSIX-only — the service is an embedded
// single-binary front end, not a general networking library.
//
// Concurrency model: TcpListener::accept is driven by poll() with a short
// timeout so close() from another thread stops the loop without racing the
// file descriptor; TcpSocket I/O is blocking with an optional receive
// timeout. All errors surface as safeopt::Error (kInternal for socket-layer
// failures, which a server maps to a dropped connection, never a crash).
#ifndef SAFEOPT_SUPPORT_NET_H
#define SAFEOPT_SUPPORT_NET_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace safeopt {

/// A connected TCP socket (server- or client-side). Move-only; the
/// destructor closes the descriptor.
class TcpSocket {
 public:
  TcpSocket() noexcept = default;
  explicit TcpSocket(int fd) noexcept : fd_(fd) {}
  ~TcpSocket();

  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Connects to 127.0.0.1:`port` (tests, bench, health probes). Throws
  /// Error(kInternal) when the connection is refused.
  [[nodiscard]] static TcpSocket connect_loopback(std::uint16_t port);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Reads up to `size` bytes; returns the count (0 = orderly peer close).
  /// With a receive timeout set, a timed-out read throws
  /// Error(kDeadlineExceeded). Other failures throw Error(kInternal).
  [[nodiscard]] std::size_t read_some(char* data, std::size_t size);

  /// Writes all of `data` (SIGPIPE suppressed); throws Error(kInternal)
  /// when the peer is gone. Best-effort senders catch and drop.
  void write_all(std::string_view data);

  /// Caps how long a single read_some may block (0 = forever). The
  /// slow-client guard for request reading.
  void set_receive_timeout_ms(std::uint64_t ms);

  /// True when the peer has closed or reset the connection — a zero-byte
  /// MSG_PEEK probe that never consumes request data. This is the client-
  /// disconnect signal the per-request cancellation probe polls.
  [[nodiscard]] bool peer_closed() const noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// A listening socket bound to 127.0.0.1. accept() can be unblocked from
/// another thread with close(): it polls with a short timeout and re-checks
/// a stop flag, so no descriptor is ever closed under a blocking syscall.
class TcpListener {
 public:
  TcpListener() noexcept = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on 127.0.0.1:`port`; port 0 picks an ephemeral port
  /// (read it back with port()). Throws Error(kInternal) when the bind
  /// fails (address in use, out of descriptors).
  [[nodiscard]] static TcpListener bind_loopback(std::uint16_t port,
                                                 int backlog = 64);

  /// The bound port (resolved after an ephemeral bind).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Blocks until a connection arrives or close() is called; nullopt means
  /// the listener was closed (the accept loop's exit signal). Transient
  /// per-connection failures (ECONNABORTED) retry internally.
  [[nodiscard]] std::optional<TcpSocket> accept();

  /// Stops accept() — callable from any thread, idempotent. The descriptor
  /// itself is released by the destructor after the accept loop has exited.
  void close() noexcept;

  [[nodiscard]] bool closed() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
};

}  // namespace safeopt

#endif  // SAFEOPT_SUPPORT_NET_H
