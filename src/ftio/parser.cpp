// ParseError rendering. The parsing machinery itself lives in study.cpp:
// grammar v1 (parse_fault_tree) runs on the grammar-v2 document parser, so
// there is exactly one lexer, one statement grammar, and one tree builder.
#include "safeopt/ftio/parser.h"

#include "safeopt/support/strings.h"

namespace safeopt::ftio {
namespace {

std::string render(std::string_view file, std::size_t line,
                   std::size_t column, const std::string& what) {
  const std::string position =
      concat(std::to_string(line), ":", std::to_string(column), ": ", what);
  return file.empty() ? position : concat(file, ":", position);
}

}  // namespace

ParseError::ParseError(std::size_t line, std::size_t column,
                       const std::string& what)
    : ParseError({}, line, column, what) {}

ParseError::ParseError(std::string_view file, std::size_t line,
                       std::size_t column, const std::string& what)
    : std::runtime_error(render(file, line, column, what)),
      file_(file),
      line_(line),
      column_(column) {}

}  // namespace safeopt::ftio
