// A minimal JSON value model for the service layer (serve request bodies,
// stats documents, bench report parsing). Deliberately small: strict RFC 8259
// subset — UTF-8 text, \uXXXX escapes decoded to UTF-8, objects preserve
// member order (so dumped documents are deterministic), numbers are doubles.
// Parse errors throw safeopt::Error(kInvalidInput) with offset context, so a
// malformed HTTP body maps straight onto the 400 branch of the error
// taxonomy without translation.
//
// This is infrastructure, not a serialization framework: handlers that must
// emit byte-exact CLI-schema documents (serve/response_json.h) build strings
// directly; JsonValue is for *reading* requests and for documents whose
// exact spelling is ours to choose (stats).
#ifndef SAFEOPT_SUPPORT_JSON_H
#define SAFEOPT_SUPPORT_JSON_H

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace safeopt {

class JsonValue {
 public:
  enum class Kind : unsigned char {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Members = std::vector<std::pair<std::string, JsonValue>>;
  using Items = std::vector<JsonValue>;

  JsonValue() noexcept : kind_(Kind::kNull) {}

  [[nodiscard]] static JsonValue null() { return JsonValue(); }
  [[nodiscard]] static JsonValue boolean(bool value) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = value;
    return v;
  }
  [[nodiscard]] static JsonValue number(double value) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = value;
    return v;
  }
  [[nodiscard]] static JsonValue string(std::string value) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(value);
    return v;
  }
  [[nodiscard]] static JsonValue array(Items items = {}) {
    JsonValue v;
    v.kind_ = Kind::kArray;
    v.items_ = std::move(items);
    return v;
  }
  [[nodiscard]] static JsonValue object(Members members = {}) {
    JsonValue v;
    v.kind_ = Kind::kObject;
    v.members_ = std::move(members);
    return v;
  }

  /// Parses one JSON document (and requires it to span the whole text).
  /// Throws Error(kInvalidInput) with a byte offset on any problem.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }

  /// Typed accessors; each throws Error(kInvalidInput) on a kind mismatch so
  /// request handlers get uniform "field X must be a string" diagnostics for
  /// free (the message names the expected kind).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Items& items() const;
  [[nodiscard]] const Members& members() const;

  /// Object member lookup (first match); nullptr when absent or not an
  /// object. The safe probe for optional request fields.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// In-place builders for handlers assembling documents.
  void set(std::string key, JsonValue value);
  void push_back(JsonValue value);

  /// Serializes canonically: no whitespace, members in insertion order,
  /// numbers via %.17g (integral values print without a trailing ".0"), and
  /// the escapes parse() understands. parse(dump(v)) reproduces v.
  [[nodiscard]] std::string dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Items items_;
  Members members_;
};

/// Escapes `text` for embedding inside a JSON string literal (quotes not
/// included): ", \, control characters. Shared by the hand-built CLI-schema
/// renderers, which must keep their historical byte-exact output.
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace safeopt

#endif  // SAFEOPT_SUPPORT_JSON_H
