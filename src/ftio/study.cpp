// Grammar v2 parser/writer (study_document.h) and the v1 entry point
// parse_fault_tree, which runs on the same machinery: one grammar, one
// lexer, one tree builder. The v1 dialect is the subset of v2 with a single
// tree and constant probabilities, and its diagnostics (messages and
// line:column positions) are pinned by tests/ftio/parser_test.cpp.
#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "safeopt/expr/parse.h"
#include "safeopt/ftio/parser.h"
#include "safeopt/ftio/study_document.h"
#include "safeopt/support/error.h"
#include "safeopt/support/strings.h"

namespace safeopt::ftio {
namespace {

// ------------------------------------------------------------------ lexer

struct Token {
  enum class Kind {
    kIdentifier,
    kNumber,
    kString,
    kEquals,
    kSemicolon,
    kLBracket,
    kRBracket,
    kComma,
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  double number = 0.0;
  std::size_t line = 1;
  std::size_t column = 1;
};

/// A captured raw expression slice: everything between '=' and ';', with
/// comments blanked to spaces so expr::ParseError offsets still map onto
/// document positions.
struct RawExpression {
  std::string text;
  std::size_t line = 1;
  std::size_t column = 1;
};

class Lexer {
 public:
  Lexer(std::string_view text, std::string_view source)
      : text_(text), source_(source) {}

  Token next() {
    skip_whitespace_and_comments();
    Token token;
    token.line = line_;
    token.column = column_;
    if (pos_ >= text_.size()) {
      token.kind = Token::Kind::kEnd;
      return token;
    }
    const char c = text_[pos_];
    const auto single = [&](Token::Kind kind) {
      advance();
      token.kind = kind;
      // Char assignment sidesteps gcc 12's -Wrestrict false positive on
      // basic_string::operator=(const char*) (PR105651 family).
      token.text = c;
      return token;
    };
    switch (c) {
      case ';': return single(Token::Kind::kSemicolon);
      case '=': return single(Token::Kind::kEquals);
      case '[': return single(Token::Kind::kLBracket);
      case ']': return single(Token::Kind::kRBracket);
      case ',': return single(Token::Kind::kComma);
      case '"': {
        advance();
        std::string contents;
        while (pos_ < text_.size() && text_[pos_] != '"' &&
               text_[pos_] != '\n') {
          // \" and \\ escapes, so the writer can round-trip arbitrary
          // unit/desc strings; any other backslash is literal.
          if (text_[pos_] == '\\' && pos_ + 1 < text_.size() &&
              (text_[pos_ + 1] == '"' || text_[pos_ + 1] == '\\')) {
            advance();
          }
          contents += text_[pos_];
          advance();
        }
        if (pos_ >= text_.size() || text_[pos_] != '"') {
          throw ParseError(source_, token.line, token.column,
                           "unterminated string literal");
        }
        token.kind = Token::Kind::kString;
        token.text = std::move(contents);
        advance();  // closing quote
        return token;
      }
      default: break;
    }
    if (is_word_char(c)) {
      // One maximal word of [A-Za-z0-9_.+-]; decide number vs identifier by
      // whether the whole word parses as a double. This keeps "1e-3" a
      // number while "2of3" (vote gates) and "timer-1" stay identifiers.
      const std::size_t start = pos_;
      while (pos_ < text_.size() && is_word_char(text_[pos_])) advance();
      const std::string_view slice = text_.substr(start, pos_ - start);
      token.text = std::string(slice);
      const auto [end, ec] = std::from_chars(
          slice.data(), slice.data() + slice.size(), token.number);
      if (ec == std::errc{} && end == slice.data() + slice.size()) {
        token.kind = Token::Kind::kNumber;
        return token;
      }
      if (is_identifier_start(slice.front()) ||
          std::isdigit(static_cast<unsigned char>(slice.front())) != 0) {
        token.kind = Token::Kind::kIdentifier;
        return token;
      }
      throw ParseError(source_, token.line, token.column,
                       concat("malformed token '", token.text, "'"));
    }
    throw ParseError(source_, line_, column_,
                     concat("unexpected character '", std::string(1, c), "'"));
  }

  /// Captures raw text up to (not including) the next ';' at the current
  /// position — called right after the '=' of "prob = <expression>", while
  /// no token has been lexed past it. Comments are blanked with spaces so
  /// the slice's character offsets still line up with the document.
  RawExpression capture_expression() {
    skip_whitespace_and_comments();
    RawExpression raw;
    raw.line = line_;
    raw.column = column_;
    while (pos_ < text_.size() && text_[pos_] != ';') {
      char c = text_[pos_];
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          raw.text += ' ';
          advance();
        }
        continue;
      }
      raw.text += c;
      advance();
    }
    return raw;
  }

 private:
  static bool is_identifier_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
  }
  static bool is_word_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
           c == '.' || c == '+' || c == '-';
  }

  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void skip_whitespace_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        advance();
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance();
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::string_view source_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

// ---------------------------------------------------- declaration capture

/// "2of3" -> (2, 3); anything else -> nullopt.
std::optional<std::pair<std::uint32_t, std::uint32_t>> parse_vote(
    std::string_view word) {
  const std::size_t of = word.find("of");
  if (of == std::string_view::npos || of == 0 || of + 2 >= word.size()) {
    return std::nullopt;
  }
  std::uint32_t k = 0;
  std::uint32_t n = 0;
  const auto head = word.substr(0, of);
  const auto tail = word.substr(of + 2);
  const auto r1 = std::from_chars(head.data(), head.data() + head.size(), k);
  const auto r2 = std::from_chars(tail.data(), tail.data() + tail.size(), n);
  if (r1.ec != std::errc{} || r1.ptr != head.data() + head.size() ||
      r2.ec != std::errc{} || r2.ptr != tail.data() + tail.size()) {
    return std::nullopt;
  }
  return std::pair{k, n};
}

struct GateDecl {
  fta::GateType type = fta::GateType::kOr;
  std::uint32_t k = 0;
  std::vector<std::string> children;
  std::size_t line = 0;
  std::size_t column = 0;
};

struct LeafDecl {
  bool is_condition = false;
  RawExpression probability;
  std::size_t line = 0;
  std::size_t column = 0;
};

/// One tree section's statement-level state.
struct SectionDecl {
  std::string name = "fault-tree";
  bool explicit_stmt = false;  // introduced by a `tree` statement
  std::size_t line = 1;
  std::size_t column = 1;
  std::string toplevel;
  std::size_t toplevel_line = 0;
  std::map<std::string, GateDecl> gates;
  std::map<std::string, LeafDecl> leaves;

  [[nodiscard]] bool has_declarations() const noexcept {
    return !toplevel.empty() || !gates.empty() || !leaves.empty();
  }
};

struct ParamRaw {
  ParameterDecl decl;
  std::size_t line = 0;
  std::size_t column = 0;
};

struct HazardRaw {
  HazardDecl decl;
  std::size_t line = 0;
  std::size_t column = 0;
};

/// Statement-level parse state gathered in the first pass.
struct Declarations {
  std::vector<ParamRaw> parameters;
  std::vector<SectionDecl> sections;
  std::vector<HazardRaw> hazards;
  std::optional<SelectionDecl> solver;
  std::optional<SelectionDecl> engine;
  std::optional<std::string> formula;
};

class DocumentParser {
 public:
  DocumentParser(std::string_view text, std::string_view source)
      : lexer_(text, source), source_(source) {
    consume();
  }

  Declarations parse() {
    decls_.sections.emplace_back();  // the implicit first section
    while (current_.kind != Token::Kind::kEnd) {
      parse_statement();
    }
    // An implicit section that never received a declaration is no tree at
    // all (e.g. a parameters-only document).
    auto& sections = decls_.sections;
    sections.erase(std::remove_if(sections.begin(), sections.end(),
                                  [](const SectionDecl& s) {
                                    return !s.explicit_stmt &&
                                           !s.has_declarations();
                                  }),
                   sections.end());
    return std::move(decls_);
  }

 private:
  [[noreturn]] void fail(std::size_t line, std::size_t column,
                         std::string message) const {
    throw ParseError(source_, line, column, message);
  }

  void consume() { current_ = lexer_.next(); }

  Token expect_identifier(const char* what) {
    if (current_.kind != Token::Kind::kIdentifier) {
      fail(current_.line, current_.column,
           concat("expected ", what, ", got '", current_.text, "'"));
    }
    Token token = current_;
    consume();
    return token;
  }

  Token expect_number(const char* what) {
    if (current_.kind != Token::Kind::kNumber) {
      fail(current_.line, current_.column,
           concat("expected ", what, ", got '", current_.text, "'"));
    }
    Token token = current_;
    consume();
    return token;
  }

  Token expect_string(const char* what) {
    if (current_.kind != Token::Kind::kString) {
      fail(current_.line, current_.column,
           concat("expected ", what, ", got '", current_.text, "'"));
    }
    Token token = current_;
    consume();
    return token;
  }

  void expect_semicolon() {
    if (current_.kind != Token::Kind::kSemicolon) {
      fail(current_.line, current_.column,
           concat("expected ';' before '", current_.text, "'"));
    }
    consume();
  }

  void expect_token(Token::Kind kind, const char* what) {
    if (current_.kind != kind) {
      fail(current_.line, current_.column,
           concat("expected ", what, ", got '", current_.text, "'"));
    }
    consume();
  }

  SectionDecl& section() { return decls_.sections.back(); }

  void parse_statement() {
    const Token head = expect_identifier("a statement");
    if (head.text == "tree") {
      const Token name = expect_identifier("the tree name");
      expect_semicolon();
      if (section().has_declarations() || section().explicit_stmt) {
        decls_.sections.emplace_back();  // a new tree section begins
      }
      section().name = name.text;
      section().explicit_stmt = true;
      section().line = head.line;
      section().column = head.column;
      return;
    }
    if (head.text == "toplevel") {
      if (!section().toplevel.empty()) {
        fail(head.line, head.column, "duplicate 'toplevel' declaration");
      }
      const Token top = expect_identifier("the toplevel node name");
      section().toplevel = top.text;
      section().toplevel_line = top.line;
      expect_semicolon();
      return;
    }
    if (head.text == "param") {
      parse_param();
      return;
    }
    if (head.text == "hazard") {
      parse_hazard();
      return;
    }
    if (head.text == "solver" || head.text == "engine") {
      parse_selection(head);
      return;
    }
    if (head.text == "formula") {
      if (decls_.formula.has_value()) {
        fail(head.line, head.column, "duplicate 'formula' declaration");
      }
      const Token name = expect_identifier("a formula name");
      if (name.text != "rare_event" && name.text != "min_cut_upper_bound") {
        fail(name.line, name.column,
             concat("unknown formula '", name.text,
                    "' (expected rare_event or min_cut_upper_bound)"));
      }
      decls_.formula = name.text;
      expect_semicolon();
      return;
    }

    // "<name> <kind> ...": gate definition or leaf declaration.
    const Token kind = expect_identifier("a gate kind or 'prob'/'condition'");
    if (kind.text == "prob") {
      declare_leaf(head, /*is_condition=*/false);
      return;
    }
    if (kind.text == "condition") {
      const Token prob_kw = expect_identifier("'prob'");
      if (prob_kw.text != "prob") {
        fail(prob_kw.line, prob_kw.column,
             "expected 'prob' after 'condition'");
      }
      declare_leaf(head, /*is_condition=*/true);
      return;
    }

    GateDecl gate;
    gate.line = head.line;
    gate.column = head.column;
    if (kind.text == "or") {
      gate.type = fta::GateType::kOr;
    } else if (kind.text == "and") {
      gate.type = fta::GateType::kAnd;
    } else if (kind.text == "xor") {
      gate.type = fta::GateType::kXor;
    } else if (kind.text == "inhibit") {
      gate.type = fta::GateType::kInhibit;
    } else if (const auto vote = parse_vote(kind.text)) {
      gate.type = fta::GateType::kKofN;
      gate.k = vote->first;
      if (vote->first < 1) {
        fail(kind.line, kind.column, "vote threshold must be >= 1");
      }
    } else {
      fail(kind.line, kind.column,
           concat("unknown gate kind '", kind.text, "'"));
    }
    while (current_.kind == Token::Kind::kIdentifier) {
      gate.children.push_back(current_.text);
      consume();
    }
    expect_semicolon();
    if (gate.children.empty()) {
      fail(kind.line, kind.column,
           concat("gate '", head.text, "' has no children"));
    }
    if (gate.type == fta::GateType::kInhibit && gate.children.size() != 2) {
      fail(kind.line, kind.column,
           concat("inhibit gate '", head.text,
                  "' needs exactly two operands (cause, condition)"));
    }
    if (gate.type == fta::GateType::kKofN &&
        gate.k > gate.children.size()) {
      fail(kind.line, kind.column,
           concat("vote gate '", head.text,
                  "' has fewer children than its threshold"));
    }
    if (!section().gates.emplace(head.text, std::move(gate)).second) {
      fail(head.line, head.column,
           concat("duplicate definition of gate '", head.text, "'"));
    }
  }

  void declare_leaf(const Token& name, bool is_condition) {
    LeafDecl leaf;
    leaf.is_condition = is_condition;
    leaf.line = name.line;
    leaf.column = name.column;
    if (current_.kind != Token::Kind::kEquals) {
      fail(current_.line, current_.column, "expected '=' after 'prob'");
    }
    // The expression is captured raw (to the terminating ';') and parsed in
    // the semantic pass, once every `param` of the document is known.
    leaf.probability = lexer_.capture_expression();
    consume();
    expect_semicolon();
    if (!section().leaves.emplace(name.text, std::move(leaf)).second) {
      fail(name.line, name.column,
           concat("duplicate declaration of leaf '", name.text, "'"));
    }
  }

  void parse_param() {
    ParamRaw param;
    const Token name = expect_identifier("the parameter name");
    param.decl.name = name.text;
    param.line = name.line;
    param.column = name.column;
    const Token in = expect_identifier("'in' after the parameter name");
    if (in.text != "in") {
      fail(in.line, in.column, "expected 'in' after the parameter name");
    }
    expect_token(Token::Kind::kLBracket, "'[' before the parameter domain");
    const Token lower = expect_number("the lower bound");
    expect_token(Token::Kind::kComma, "','");
    const Token upper = expect_number("the upper bound");
    expect_token(Token::Kind::kRBracket, "']' after the parameter domain");
    param.decl.lower = lower.number;
    param.decl.upper = upper.number;
    if (!std::isfinite(param.decl.lower) || !std::isfinite(param.decl.upper) ||
        param.decl.lower > param.decl.upper) {
      fail(lower.line, lower.column,
           concat("parameter '", param.decl.name,
                  "' needs a finite domain with lower <= upper"));
    }
    while (current_.kind == Token::Kind::kIdentifier) {
      const Token clause = current_;
      consume();
      if (clause.text == "unit") {
        param.decl.unit = expect_string("a quoted unit").text;
      } else if (clause.text == "desc") {
        param.decl.description = expect_string("a quoted description").text;
      } else {
        fail(clause.line, clause.column,
             concat("unknown parameter clause '", clause.text,
                    "' (expected unit or desc)"));
      }
    }
    expect_semicolon();
    for (const ParamRaw& existing : decls_.parameters) {
      if (existing.decl.name == param.decl.name) {
        fail(param.line, param.column,
             concat("duplicate declaration of parameter '", param.decl.name, "'"));
      }
    }
    decls_.parameters.push_back(std::move(param));
  }

  void parse_hazard() {
    HazardRaw hazard;
    const Token tree = expect_identifier("the hazard's tree name");
    hazard.decl.tree = tree.text;
    hazard.line = tree.line;
    hazard.column = tree.column;
    const Token cost = expect_identifier("'cost' after the tree name");
    if (cost.text != "cost") {
      fail(cost.line, cost.column, "expected 'cost' after the tree name");
    }
    if (current_.kind != Token::Kind::kEquals) {
      fail(current_.line, current_.column, "expected '=' after 'cost'");
    }
    consume();
    const Token value = expect_number("the hazard cost");
    if (!std::isfinite(value.number) || value.number < 0.0) {
      fail(value.line, value.column,
           concat("hazard cost must be a finite non-negative number, got ",
                  value.text));
    }
    hazard.decl.cost = value.number;
    expect_semicolon();
    for (const HazardRaw& existing : decls_.hazards) {
      if (existing.decl.tree == hazard.decl.tree) {
        fail(hazard.line, hazard.column,
             concat("duplicate hazard for tree '", hazard.decl.tree, "'"));
      }
    }
    decls_.hazards.push_back(std::move(hazard));
  }

  void parse_selection(const Token& head) {
    auto& slot = head.text == "solver" ? decls_.solver : decls_.engine;
    if (slot.has_value()) {
      fail(head.line, head.column,
           concat("duplicate '", head.text, "' declaration"));
    }
    SelectionDecl selection;
    selection.name = expect_identifier("a registry name").text;
    while (current_.kind == Token::Kind::kIdentifier) {
      const Token key = current_;
      consume();
      if (current_.kind != Token::Kind::kEquals) {
        fail(current_.line, current_.column,
             concat("expected '=' after option '", key.text, "'"));
      }
      consume();
      OptionValue value;
      if (current_.kind == Token::Kind::kNumber) {
        value = OptionValue::of(current_.number);
      } else if (current_.kind == Token::Kind::kIdentifier) {
        value = OptionValue::of(current_.text);
      } else if (current_.kind == Token::Kind::kString) {
        value = OptionValue::of(current_.text, /*quoted=*/true);
      } else {
        fail(current_.line, current_.column,
             concat("expected a value for option '", key.text, "', got '",
                    current_.text, "'"));
      }
      consume();
      if (selection.find_option(key.text) != nullptr) {
        fail(key.line, key.column,
             concat("duplicate option '", key.text, "'"));
      }
      selection.options.emplace_back(key.text, std::move(value));
    }
    expect_semicolon();
    slot = std::move(selection);
  }

  Lexer lexer_;
  std::string_view source_;
  Token current_;
  Declarations decls_;
};

// ------------------------------------------------------------ tree builder

/// Second pass: build the FaultTree bottom-up from one section's
/// declarations, detecting cycles and undefined references.
class TreeBuilder {
 public:
  TreeBuilder(const SectionDecl& section, std::string_view source)
      : section_(section), source_(source), tree_(section.name) {}

  fta::FaultTree build() {
    const fta::NodeId top =
        build_node(section_.toplevel, section_.toplevel_line);
    tree_.set_top(top);
    for (const auto& [name, leaf] : section_.leaves) {
      if (!tree_.find(name).has_value()) {
        throw ParseError(source_, leaf.line, leaf.column,
                         concat("leaf '", name,
                                "' is declared but not reachable from "
                                "toplevel"));
      }
    }
    return std::move(tree_);
  }

 private:
  /// Gate-nesting cap: build_node recurses once per gate level, so a
  /// linear 10k-deep chain of gates would otherwise overflow the stack
  /// before the cycle check can help. Real trees nest a few dozen levels;
  /// anything past this bound is an adversarial or corrupted document.
  static constexpr std::size_t kMaxGateDepth = 512;

  fta::NodeId build_node(const std::string& name, std::size_t ref_line) {
    if (const auto existing = tree_.find(name)) return *existing;
    if (in_progress_.contains(name)) {
      throw ParseError(source_, ref_line, 1,
                       concat("cycle through node '", name, "'"));
    }

    const auto gate_it = section_.gates.find(name);
    if (gate_it != section_.gates.end()) {
      const GateDecl& gate = gate_it->second;
      if (in_progress_.size() >= kMaxGateDepth) {
        throw ParseError(source_, gate.line, gate.column,
                         concat("gate nesting exceeds the supported depth (",
                                std::to_string(kMaxGateDepth),
                                ") at gate '", name, "'"));
      }
      in_progress_.insert(name);
      std::vector<fta::NodeId> children;
      children.reserve(gate.children.size());
      for (const std::string& child : gate.children) {
        children.push_back(build_node(child, gate.line));
      }
      in_progress_.erase(name);
      switch (gate.type) {
        case fta::GateType::kOr:
          return tree_.add_or(name, std::move(children));
        case fta::GateType::kAnd:
          return tree_.add_and(name, std::move(children));
        case fta::GateType::kXor:
          return tree_.add_xor(name, std::move(children));
        case fta::GateType::kKofN:
          return tree_.add_k_of_n(name, gate.k, std::move(children));
        case fta::GateType::kInhibit: {
          const fta::NodeId cause = children[0];
          const fta::NodeId condition = children[1];
          if (tree_.kind(condition) != fta::NodeKind::kCondition) {
            throw ParseError(source_, gate.line, gate.column,
                             concat("second operand of inhibit gate '", name,
                                    "' must be a condition leaf"));
          }
          return tree_.add_inhibit(name, cause, condition);
        }
      }
      throw ParseError(source_, gate.line, gate.column,
                       "unreachable gate kind");
    }

    const auto leaf_it = section_.leaves.find(name);
    if (leaf_it != section_.leaves.end()) {
      return leaf_it->second.is_condition ? tree_.add_condition(name)
                                          : tree_.add_basic_event(name);
    }
    throw ParseError(source_, ref_line, 1, concat("undefined node '", name, "'"));
  }

  const SectionDecl& section_;
  std::string_view source_;
  fta::FaultTree tree_;
  std::set<std::string> in_progress_;
};

// --------------------------------------------------------- semantic pass

/// Maps an expr::ParseError offset (into the captured slice, comments
/// blanked) back onto document line:column.
std::pair<std::size_t, std::size_t> position_at_offset(
    const RawExpression& raw, std::size_t offset) {
  std::size_t line = raw.line;
  std::size_t column = raw.column;
  const std::size_t end = std::min(offset, raw.text.size());
  for (std::size_t i = 0; i < end; ++i) {
    if (raw.text[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return {line, column};
}

expr::Expr parse_leaf_expression(const RawExpression& raw,
                                 const expr::SymbolTable& symbols,
                                 std::string_view source) {
  const std::string_view trimmed = trim(raw.text);
  if (trimmed.empty()) {
    throw ParseError(source, raw.line, raw.column,
                     "expected a probability expression");
  }
  try {
    return expr::parse(raw.text, symbols);
  } catch (const expr::ParseError& error) {
    const auto [line, column] = position_at_offset(raw, error.offset());
    throw ParseError(source, line, column, error.what());
  }
}

/// Leaf-expression parsing, the constant [0, 1] range check, and the
/// ordinal-ordered LeafProbability list for one built tree.
std::vector<LeafProbability> resolve_leaves(const SectionDecl& section,
                                            const fta::FaultTree& tree,
                                            const expr::SymbolTable& symbols,
                                            std::string_view source) {
  std::map<std::string, expr::Expr> parsed;
  for (const auto& [name, leaf] : section.leaves) {
    expr::Expr probability =
        parse_leaf_expression(leaf.probability, symbols, source);
    if (probability.is_constant()) {
      const double p = probability.evaluate({});
      if (!(p >= 0.0 && p <= 1.0)) {
        throw ParseError(
            source, leaf.probability.line, leaf.probability.column,
            concat("probability must lie in [0, 1], got ",
                   trim(leaf.probability.text)));
      }
    }
    parsed.emplace(name, std::move(probability));
  }
  std::vector<LeafProbability> leaves;
  leaves.reserve(parsed.size());
  const auto append = [&](fta::NodeId id, bool is_condition) {
    const std::string& name = tree.node_name(id);
    leaves.push_back(
        LeafProbability{name, is_condition, parsed.at(name)});
  };
  for (const fta::NodeId id : tree.basic_events()) append(id, false);
  for (const fta::NodeId id : tree.conditions()) append(id, true);
  return leaves;
}

StudyDocument build_document(Declarations decls, std::string_view source) {
  StudyDocument doc;
  doc.source = std::string(source);

  expr::SymbolTable symbols;
  for (ParamRaw& param : decls.parameters) {
    symbols.add(param.decl.name);
    doc.parameters.push_back(std::move(param.decl));
  }

  for (const SectionDecl& section : decls.sections) {
    if (section.toplevel.empty()) {
      // An explicit `tree` statement anchors the error; a v1 document
      // without one reports at the document head, as the v1 parser did.
      if (section.explicit_stmt) {
        throw ParseError(source, section.line, section.column,
                         concat("missing 'toplevel' declaration for tree '",
                                section.name, "'"));
      }
      throw ParseError(source, 1, 1, "missing 'toplevel' declaration");
    }
    for (const TreeModel& existing : doc.trees) {
      if (existing.tree.name() == section.name) {
        throw ParseError(source, section.line, section.column,
                         concat("duplicate tree '", section.name, "'"));
      }
    }
    TreeModel model{TreeBuilder(section, source).build(), {}};
    model.leaves = resolve_leaves(section, model.tree, symbols, source);
    doc.trees.push_back(std::move(model));
  }

  for (HazardRaw& hazard : decls.hazards) {
    if (doc.find_tree(hazard.decl.tree) == nullptr) {
      throw ParseError(source, hazard.line, hazard.column,
                       concat("hazard names unknown tree '", hazard.decl.tree,
                              "'"));
    }
    doc.hazards.push_back(std::move(hazard.decl));
  }

  doc.solver = std::move(decls.solver);
  doc.engine = std::move(decls.engine);
  doc.formula = std::move(decls.formula);
  return doc;
}

StudyDocument parse_document(std::string_view text,
                             std::string_view source_name) {
  DocumentParser parser(text, source_name);
  return build_document(parser.parse(), source_name);
}

}  // namespace

// ------------------------------------------------------------- public API

const LeafProbability* TreeModel::find_leaf(
    std::string_view name) const noexcept {
  for (const LeafProbability& leaf : leaves) {
    if (leaf.name == name) return &leaf;
  }
  return nullptr;
}

const OptionValue* SelectionDecl::find_option(
    std::string_view key) const noexcept {
  for (const auto& [name, value] : options) {
    if (name == key) return &value;
  }
  return nullptr;
}

const TreeModel* StudyDocument::find_tree(
    std::string_view name) const noexcept {
  for (const TreeModel& model : trees) {
    if (model.tree.name() == name) return &model;
  }
  return nullptr;
}

const ParameterDecl* StudyDocument::find_parameter(
    std::string_view name) const noexcept {
  for (const ParameterDecl& parameter : parameters) {
    if (parameter.name == name) return &parameter;
  }
  return nullptr;
}

std::vector<std::string> StudyDocument::parameter_names() const {
  std::vector<std::string> names;
  names.reserve(parameters.size());
  for (const ParameterDecl& parameter : parameters) {
    names.push_back(parameter.name);
  }
  return names;
}

StudyDocument parse_study(std::string_view text,
                          std::string_view source_name) {
  return parse_document(text, source_name);
}

StudyDocument load_study(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw Error(ErrorCategory::kInvalidInput,
                concat("cannot read model file '", path, "'"));
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return parse_document(contents.str(), path);
}

ParsedFaultTree parse_fault_tree(std::string_view text) {
  StudyDocument doc = parse_document(text, {});
  if (doc.trees.empty()) {
    throw ParseError(1, 1, "missing 'toplevel' declaration");
  }
  if (doc.trees.size() > 1) {
    throw ParseError(1, 1,
                     "document declares multiple trees; load it with "
                     "parse_study");
  }
  TreeModel& model = doc.trees.front();
  fta::QuantificationInput input =
      fta::QuantificationInput::for_tree(model.tree, 0.0);
  for (const LeafProbability& leaf : model.leaves) {
    if (!leaf.probability.is_constant()) {
      throw ParseError(1, 1,
                       concat("leaf '", leaf.name,
                              "' has a parameterized probability; load the "
                              "document with parse_study"));
    }
    input.set(model.tree, leaf.name, leaf.probability.evaluate({}));
  }
  return ParsedFaultTree{std::move(model.tree), std::move(input)};
}

namespace {

/// Inverse of the lexer's \" / \\ escapes.
std::string quote_string(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string write_study(const StudyDocument& doc) {
  std::string out;
  for (const ParameterDecl& parameter : doc.parameters) {
    out += concat("param ", parameter.name, " in [",
                  format_double(parameter.lower), ", ",
                  format_double(parameter.upper), "]");
    if (!parameter.unit.empty()) {
      out += concat(" unit ", quote_string(parameter.unit));
    }
    if (!parameter.description.empty()) {
      out += concat(" desc ", quote_string(parameter.description));
    }
    out += ";\n";
  }
  if (!doc.parameters.empty()) out += "\n";

  for (const TreeModel& model : doc.trees) {
    const fta::FaultTree& tree = model.tree;
    out += concat("tree ", tree.name(), ";\n");
    out += concat("toplevel ", tree.node_name(tree.top()), ";\n");
    for (fta::NodeId id = 0; id < tree.node_count(); ++id) {
      if (tree.kind(id) != fta::NodeKind::kGate) continue;
      out += tree.node_name(id);
      switch (tree.gate_type(id)) {
        case fta::GateType::kAnd: out += " and"; break;
        case fta::GateType::kOr: out += " or"; break;
        case fta::GateType::kXor: out += " xor"; break;
        case fta::GateType::kInhibit: out += " inhibit"; break;
        case fta::GateType::kKofN:
          out += concat(" ", std::to_string(tree.vote_threshold(id)), "of",
                        std::to_string(tree.children(id).size()));
          break;
      }
      for (const fta::NodeId child : tree.children(id)) {
        out += concat(" ", tree.node_name(child));
      }
      out += ";\n";
    }
    for (const LeafProbability& leaf : model.leaves) {
      out += concat(leaf.name, leaf.is_condition ? " condition prob = "
                                                 : " prob = ",
                    leaf.probability.to_string(), ";\n");
    }
    out += "\n";
  }

  for (const HazardDecl& hazard : doc.hazards) {
    out += concat("hazard ", hazard.tree, " cost = ",
                  format_double(hazard.cost), ";\n");
  }
  const auto write_selection = [&out](const char* keyword,
                                      const SelectionDecl& selection) {
    out += concat(keyword, " ", selection.name);
    for (const auto& [key, value] : selection.options) {
      out += concat(" ", key, " = ");
      if (value.kind == OptionValue::Kind::kNumber) {
        out += format_double(value.number);
      } else if (value.quoted) {
        out += quote_string(value.text);
      } else {
        out += value.text;
      }
    }
    out += ";\n";
  };
  if (doc.solver.has_value()) write_selection("solver", *doc.solver);
  if (doc.engine.has_value()) write_selection("engine", *doc.engine);
  if (doc.formula.has_value()) {
    out += concat("formula ", *doc.formula, ";\n");
  }
  return out;
}

}  // namespace safeopt::ftio
