// Fixture: backend code asks the cached probe; mentioning the feature
// struct or pragma-allowed interop must not trip.
#include "safeopt/expr/cpu_features.h"

bool wants_avx2() {
  const safeopt::expr::CpuFeatures& features = safeopt::expr::cpu_features();
  return features.avx2;
}

// safeopt-lint: allow(cpu-detect) — documented interop in a comment example
int legacy() { return __builtin_cpu_supports("sse2"); }
