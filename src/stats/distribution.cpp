#include "safeopt/stats/distribution.h"

#include <cmath>
#include <limits>

#include "safeopt/stats/special_functions.h"
#include "safeopt/support/contracts.h"
#include "safeopt/support/strings.h"

namespace safeopt::stats {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Generic monotone-cdf inversion: bisection to ~1e-13 relative width.
/// Used when no closed-form quantile exists (Gamma, TruncatedNormal interior).
double invert_cdf(const Distribution& dist, double p, double lo,
                  double hi) noexcept {
  // Expand brackets if the support is unbounded.
  if (!std::isfinite(lo)) {
    lo = dist.mean() - 2.0 * std::sqrt(dist.variance()) - 1.0;
    while (dist.cdf(lo) > p) lo = lo * 2.0 - 1.0;
  }
  if (!std::isfinite(hi)) {
    hi = dist.mean() + 2.0 * std::sqrt(dist.variance()) + 1.0;
    while (dist.cdf(hi) < p) hi = hi * 2.0 + 1.0;
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;
    if (dist.cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double Distribution::quantile(double p) const noexcept {
  SAFEOPT_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return support_lower();
  if (p >= 1.0) return support_upper();
  return invert_cdf(*this, p, support_lower(), support_upper());
}

double Distribution::sample(Rng& rng) const noexcept {
  // Inverse transform: one uniform draw per variate, fully reproducible.
  double u = uniform01(rng);
  if (u <= 0.0) u = std::numeric_limits<double>::min();
  return quantile(u);
}

double Distribution::survival(double x) const noexcept {
  return 1.0 - cdf(x);
}

double Distribution::support_lower() const noexcept { return -kInf; }
double Distribution::support_upper() const noexcept { return kInf; }

// ---------------------------------------------------------------- Normal

Normal::Normal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  SAFEOPT_EXPECTS(sigma > 0.0);
}

double Normal::pdf(double x) const noexcept {
  return normal_pdf((x - mu_) / sigma_) / sigma_;
}

double Normal::cdf(double x) const noexcept {
  return normal_cdf((x - mu_) / sigma_);
}

double Normal::survival(double x) const noexcept {
  return normal_survival((x - mu_) / sigma_);
}

double Normal::quantile(double p) const noexcept {
  SAFEOPT_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return -kInf;
  if (p >= 1.0) return kInf;
  return mu_ + sigma_ * normal_quantile(p);
}

std::string Normal::name() const {
  return concat("Normal(", format_double(mu_), ", ", format_double(sigma_),
                ")");
}

// ------------------------------------------------------- TruncatedNormal

TruncatedNormal::TruncatedNormal(double mu, double sigma, double lo, double hi)
    : mu_(mu), sigma_(sigma), lo_(lo), hi_(hi) {
  SAFEOPT_EXPECTS(sigma > 0.0);
  SAFEOPT_EXPECTS(lo < hi);
  cdf_lo_ = std::isfinite(lo) ? normal_cdf((lo - mu) / sigma) : 0.0;
  const double cdf_hi =
      std::isfinite(hi) ? normal_cdf((hi - mu) / sigma) : 1.0;
  mass_ = cdf_hi - cdf_lo_;
  SAFEOPT_ENSURES(mass_ > 0.0);
}

TruncatedNormal TruncatedNormal::nonnegative(double mu, double sigma) {
  return TruncatedNormal(mu, sigma, 0.0, kInf);
}

double TruncatedNormal::pdf(double x) const noexcept {
  if (x < lo_ || x > hi_) return 0.0;
  return normal_pdf((x - mu_) / sigma_) / (sigma_ * mass_);
}

double TruncatedNormal::cdf(double x) const noexcept {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (normal_cdf((x - mu_) / sigma_) - cdf_lo_) / mass_;
}

double TruncatedNormal::survival(double x) const noexcept {
  if (x <= lo_) return 1.0;
  if (x >= hi_) return 0.0;
  // (Φc(z) − Φc(β)) / mass, computed tail-to-tail so no cancellation: this
  // is what keeps P(OT)(T) meaningful at 30-minute timers (≈ 13σ).
  const double sf_x = normal_survival((x - mu_) / sigma_);
  const double sf_hi =
      std::isfinite(hi_) ? normal_survival((hi_ - mu_) / sigma_) : 0.0;
  return (sf_x - sf_hi) / mass_;
}

double TruncatedNormal::quantile(double p) const noexcept {
  SAFEOPT_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return lo_;
  if (p >= 1.0) return hi_;
  return mu_ + sigma_ * normal_quantile(cdf_lo_ + p * mass_);
}

double TruncatedNormal::mean() const noexcept {
  const double alpha = std::isfinite(lo_) ? (lo_ - mu_) / sigma_ : -kInf;
  const double beta = std::isfinite(hi_) ? (hi_ - mu_) / sigma_ : kInf;
  const double phi_a = std::isfinite(alpha) ? normal_pdf(alpha) : 0.0;
  const double phi_b = std::isfinite(beta) ? normal_pdf(beta) : 0.0;
  return mu_ + sigma_ * (phi_a - phi_b) / mass_;
}

double TruncatedNormal::variance() const noexcept {
  const double alpha = std::isfinite(lo_) ? (lo_ - mu_) / sigma_ : -kInf;
  const double beta = std::isfinite(hi_) ? (hi_ - mu_) / sigma_ : kInf;
  const double phi_a = std::isfinite(alpha) ? normal_pdf(alpha) : 0.0;
  const double phi_b = std::isfinite(beta) ? normal_pdf(beta) : 0.0;
  const double a_phi_a = std::isfinite(alpha) ? alpha * phi_a : 0.0;
  const double b_phi_b = std::isfinite(beta) ? beta * phi_b : 0.0;
  const double z = mass_;
  const double delta = (phi_a - phi_b) / z;
  return sigma_ * sigma_ * (1.0 + (a_phi_a - b_phi_b) / z - delta * delta);
}

std::string TruncatedNormal::name() const {
  return concat("TruncatedNormal(", format_double(mu_), ", ",
                format_double(sigma_), ", [", format_double(lo_), ", ",
                format_double(hi_), "])");
}

// ----------------------------------------------------------- Exponential

Exponential::Exponential(double rate) : rate_(rate) {
  SAFEOPT_EXPECTS(rate > 0.0);
}

double Exponential::pdf(double x) const noexcept {
  if (x < 0.0) return 0.0;
  return rate_ * std::exp(-rate_ * x);
}

double Exponential::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-rate_ * x);
}

double Exponential::survival(double x) const noexcept {
  if (x <= 0.0) return 1.0;
  return std::exp(-rate_ * x);
}

double Exponential::quantile(double p) const noexcept {
  SAFEOPT_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return kInf;
  return -std::log1p(-p) / rate_;
}

std::string Exponential::name() const {
  return concat("Exponential(", format_double(rate_), ")");
}

// --------------------------------------------------------------- Weibull

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  SAFEOPT_EXPECTS(shape > 0.0 && scale > 0.0);
}

double Weibull::pdf(double x) const noexcept {
  if (x < 0.0) return 0.0;
  if (x == 0.0) return shape_ >= 1.0 ? (shape_ == 1.0 ? 1.0 / scale_ : 0.0)
                                     : kInf;
  const double z = x / scale_;
  return (shape_ / scale_) * std::pow(z, shape_ - 1.0) *
         std::exp(-std::pow(z, shape_));
}

double Weibull::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-std::pow(x / scale_, shape_));
}

double Weibull::survival(double x) const noexcept {
  if (x <= 0.0) return 1.0;
  return std::exp(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const noexcept {
  SAFEOPT_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return kInf;
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double Weibull::mean() const noexcept {
  return scale_ * std::exp(log_gamma(1.0 + 1.0 / shape_));
}

double Weibull::variance() const noexcept {
  const double g1 = std::exp(log_gamma(1.0 + 1.0 / shape_));
  const double g2 = std::exp(log_gamma(1.0 + 2.0 / shape_));
  return scale_ * scale_ * (g2 - g1 * g1);
}

std::string Weibull::name() const {
  return concat("Weibull(", format_double(shape_), ", ",
                format_double(scale_), ")");
}

// ------------------------------------------------------------- LogNormal

LogNormal::LogNormal(double mu_log, double sigma_log)
    : mu_log_(mu_log), sigma_log_(sigma_log) {
  SAFEOPT_EXPECTS(sigma_log > 0.0);
}

double LogNormal::pdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  return normal_pdf((std::log(x) - mu_log_) / sigma_log_) / (x * sigma_log_);
}

double LogNormal::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu_log_) / sigma_log_);
}

double LogNormal::survival(double x) const noexcept {
  if (x <= 0.0) return 1.0;
  return normal_survival((std::log(x) - mu_log_) / sigma_log_);
}

double LogNormal::quantile(double p) const noexcept {
  SAFEOPT_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return kInf;
  return std::exp(mu_log_ + sigma_log_ * normal_quantile(p));
}

double LogNormal::mean() const noexcept {
  return std::exp(mu_log_ + 0.5 * sigma_log_ * sigma_log_);
}

double LogNormal::variance() const noexcept {
  const double s2 = sigma_log_ * sigma_log_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_log_ + s2);
}

std::string LogNormal::name() const {
  return concat("LogNormal(", format_double(mu_log_), ", ",
                format_double(sigma_log_), ")");
}

// --------------------------------------------------------------- Uniform

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  SAFEOPT_EXPECTS(lo < hi);
}

double Uniform::pdf(double x) const noexcept {
  if (x < lo_ || x > hi_) return 0.0;
  return 1.0 / (hi_ - lo_);
}

double Uniform::cdf(double x) const noexcept {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double Uniform::quantile(double p) const noexcept {
  SAFEOPT_EXPECTS(p >= 0.0 && p <= 1.0);
  return lo_ + p * (hi_ - lo_);
}

double Uniform::variance() const noexcept {
  const double w = hi_ - lo_;
  return w * w / 12.0;
}

std::string Uniform::name() const {
  return concat("Uniform(", format_double(lo_), ", ", format_double(hi_),
                ")");
}

// ----------------------------------------------------------------- Gamma

Gamma::Gamma(double shape, double scale) : shape_(shape), scale_(scale) {
  SAFEOPT_EXPECTS(shape > 0.0 && scale > 0.0);
}

double Gamma::pdf(double x) const noexcept {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (shape_ > 1.0) return 0.0;
    if (shape_ == 1.0) return 1.0 / scale_;
    return kInf;
  }
  const double log_p = (shape_ - 1.0) * std::log(x / scale_) - x / scale_ -
                       log_gamma(shape_) - std::log(scale_);
  return std::exp(log_p);
}

double Gamma::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(shape_, x / scale_);
}

std::string Gamma::name() const {
  return concat("Gamma(", format_double(shape_), ", ",
                format_double(scale_), ")");
}

}  // namespace safeopt::stats
