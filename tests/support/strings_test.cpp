#include "safeopt/support/strings.h"

#include <gtest/gtest.h>

namespace safeopt {
namespace {

TEST(JoinTest, EmptyListYieldsEmptyString) {
  EXPECT_EQ(join({}, ", "), "");
}

TEST(JoinTest, SingleElementHasNoSeparator) {
  EXPECT_EQ(join({"a"}, ", "), "a");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(TrimTest, KeepsInteriorWhitespace) {
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(SplitTest, SplitsOnSeparator) {
  const auto fields = split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto fields = split(",a,,b,", ',');
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[4], "");
}

TEST(SplitTest, NoSeparatorYieldsWholeString) {
  const auto fields = split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(starts_with("toplevel X", "toplevel"));
  EXPECT_FALSE(starts_with("top", "toplevel"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(FormatDoubleTest, RoundTripsExactly) {
  for (const double value : {0.25, 1.0, -3.75, 1e-9, 19.212, 0.0046118}) {
    const std::string text = format_double(value);
    EXPECT_EQ(std::stod(text), value) << text;
  }
}

TEST(FormatDoubleTest, IntegersStayCompact) {
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(-2.0), "-2");
}

}  // namespace
}  // namespace safeopt
