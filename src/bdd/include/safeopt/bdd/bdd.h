// Reduced ordered binary decision diagrams (ROBDDs) for exact fault-tree
// analysis. Complements the cut-set engine of src/fta:
//
//   * exact top-event probability by Shannon decomposition — no rare-event
//     approximation, no inclusion-exclusion blow-up (linear in BDD nodes);
//   * minimal cut sets by Rauzy's decomposition, independent of MOCUS (each
//     validates the other in the test suite);
//   * scales to trees whose MOCUS expansion would be infeasible (the
//     `mcs_algorithms` ablation bench measures the crossover).
//
// The manager owns a unique table (hash-consing guarantees canonicity: two
// equivalent functions share one node) and a memoized ITE cache. Functions
// are referenced by index; no reference counting or garbage collection is
// performed — managers are intended to live for one analysis.
#ifndef SAFEOPT_BDD_BDD_H
#define SAFEOPT_BDD_BDD_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "safeopt/fta/cut_sets.h"
#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/probability.h"

namespace safeopt::bdd {

/// Index of a BDD node within its manager. 0 and 1 are the terminals.
using BddRef = std::uint32_t;

inline constexpr BddRef kFalse = 0;
inline constexpr BddRef kTrue = 1;

/// BDD node and operation counters for the ablation benches.
struct BddStatistics {
  std::size_t node_count = 0;       // live unique nodes incl. terminals
  std::size_t ite_calls = 0;        // total ITE invocations
  std::size_t cache_hits = 0;       // ITE results served from cache
};

class BddManager {
 public:
  /// Creates a manager for `variable_count` variables; variable i is tested
  /// before variable j iff i < j (the order is fixed at construction).
  explicit BddManager(std::uint32_t variable_count);

  [[nodiscard]] std::uint32_t variable_count() const noexcept {
    return variable_count_;
  }

  /// The projection function x_var.
  [[nodiscard]] BddRef variable(std::uint32_t var);

  // Boolean operations (memoized, canonical).
  [[nodiscard]] BddRef ite(BddRef f, BddRef g, BddRef h);
  [[nodiscard]] BddRef apply_and(BddRef f, BddRef g);
  [[nodiscard]] BddRef apply_or(BddRef f, BddRef g);
  [[nodiscard]] BddRef apply_xor(BddRef f, BddRef g);
  [[nodiscard]] BddRef apply_not(BddRef f);
  /// At least `k` of `items` true.
  [[nodiscard]] BddRef at_least(std::vector<BddRef> items, std::uint32_t k);

  /// Evaluates f under a full variable assignment.
  [[nodiscard]] bool evaluate(BddRef f,
                              const std::vector<bool>& assignment) const;

  /// Exact P(f = 1) given independent per-variable probabilities
  /// (probabilities.size() == variable_count()). Linear in node count.
  [[nodiscard]] double probability(BddRef f,
                                   const std::vector<double>& probabilities);

  /// Number of unique nodes reachable from f (including terminals).
  [[nodiscard]] std::size_t size(BddRef f) const;

  [[nodiscard]] const BddStatistics& statistics() const noexcept {
    return stats_;
  }

  /// Structural access for algorithms layered on top (Rauzy MCS).
  [[nodiscard]] std::uint32_t node_var(BddRef f) const;
  [[nodiscard]] BddRef node_low(BddRef f) const;
  [[nodiscard]] BddRef node_high(BddRef f) const;
  [[nodiscard]] bool is_terminal(BddRef f) const noexcept {
    return f <= kTrue;
  }

 private:
  struct Node {
    std::uint32_t var;
    BddRef low;
    BddRef high;
  };
  struct NodeKey {
    std::uint32_t var;
    BddRef low;
    BddRef high;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const noexcept;
  };
  struct IteKey {
    BddRef f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const noexcept;
  };

  /// Hash-consing constructor: returns the canonical node for (var,low,high).
  [[nodiscard]] BddRef make_node(std::uint32_t var, BddRef low, BddRef high);
  [[nodiscard]] std::uint32_t top_var(BddRef f, BddRef g, BddRef h) const;
  /// Cofactor of f with respect to var = value.
  [[nodiscard]] BddRef cofactor(BddRef f, std::uint32_t var, bool value) const;

  std::uint32_t variable_count_;
  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, BddRef, NodeKeyHash> unique_table_;
  std::unordered_map<IteKey, BddRef, IteKeyHash> ite_cache_;
  BddStatistics stats_;
};

/// A fault tree compiled to a BDD: the manager, the root function, and the
/// mapping from tree leaves to BDD variables (assigned in DFS first-visit
/// order from the top event).
struct CompiledFaultTree {
  BddManager manager;
  BddRef root = kFalse;
  std::uint32_t basic_event_count = 0;
  std::uint32_t condition_count = 0;
  /// BDD variable index of each basic event, by BasicEventOrdinal.
  std::vector<std::uint32_t> var_of_basic_event;
  /// BDD variable index of each condition, by ConditionOrdinal.
  std::vector<std::uint32_t> var_of_condition;

  /// Exact top-event probability under a QuantificationInput — the
  /// no-approximation counterpart of fta::top_event_probability.
  [[nodiscard]] double probability(const fta::QuantificationInput& input);
};

/// Compiles the tree bottom-up (variable order: leaves by DFS-first-visit,
/// a classical heuristic that keeps related leaves adjacent).
/// XOR gates compile exactly (true XOR, not the coherent hull).
/// Precondition: tree.has_top().
[[nodiscard]] CompiledFaultTree compile(const fta::FaultTree& tree);

/// Minimal cut sets via Rauzy's BDD decomposition. Requires a *coherent*
/// tree (no XOR gates): for non-coherent functions prime implicants with
/// negated literals exist, which CutSet cannot represent.
/// Agrees with fta::minimal_cut_sets on every coherent tree.
[[nodiscard]] fta::CutSetCollection minimal_cut_sets_bdd(
    const fta::FaultTree& tree);

}  // namespace safeopt::bdd

#endif  // SAFEOPT_BDD_BDD_H
