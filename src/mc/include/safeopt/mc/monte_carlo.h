// Monte Carlo estimation of hazard probabilities directly from the fault
// tree's structure function. This is the model-free cross-check for the
// analytic pipeline: the paper's Eq. 1/2 rest on independence assumptions and
// a rare-event approximation, and MC sampling validates both (the
// `montecarlo_validation` bench and the property tests use it as an oracle).
//
// Each trial samples every basic event and INHIBIT condition as an
// independent Bernoulli draw and evaluates the tree once. Estimates come
// with Wilson confidence intervals, which stay meaningful when zero or very
// few hazard trials are observed — the common case for safety systems.
#ifndef SAFEOPT_MC_MONTE_CARLO_H
#define SAFEOPT_MC_MONTE_CARLO_H

#include <cstdint>

#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/probability.h"
#include "safeopt/stats/estimators.h"

namespace safeopt {
class ThreadPool;
}

namespace safeopt::mc {

/// Result of a Monte Carlo hazard estimation.
struct MonteCarloResult {
  double estimate = 0.0;
  stats::ConfidenceInterval ci95;
  std::uint64_t trials = 0;
  std::uint64_t occurrences = 0;

  /// True if the analytic value is inside the 95% interval — the assertion
  /// the validation harness makes against exact BDD probabilities.
  [[nodiscard]] bool consistent_with(double analytic) const noexcept {
    return ci95.contains(analytic);
  }
};

/// Fixed-budget estimation: `trials` independent evaluations.
/// Precondition: input.is_valid_for(tree), trials >= 1.
[[nodiscard]] MonteCarloResult estimate_hazard_probability(
    const fta::FaultTree& tree, const fta::QuantificationInput& input,
    std::uint64_t trials, std::uint64_t seed = 0x5a4e0u);

/// Parallel fixed-budget estimation. Trials are partitioned into fixed-size
/// chunks, each driven by its own xoshiro256++ stream derived from `seed`
/// by repeated jump() (2^128 steps apart, so streams never overlap), and
/// chunk counts are summed afterwards. The chunk layout depends only on
/// `trials`, so the result is identical for every thread count — including
/// a single-threaded pool — though it differs from the single-stream
/// sequential function above. Precondition: input.is_valid_for(tree),
/// trials >= 1.
[[nodiscard]] MonteCarloResult estimate_hazard_probability(
    const fta::FaultTree& tree, const fta::QuantificationInput& input,
    std::uint64_t trials, ThreadPool& pool, std::uint64_t seed = 0x5a4e0u);

/// Adaptive estimation: runs until the 95% Wilson interval half-width drops
/// below `relative_halfwidth · estimate` (or `max_trials` is reached, in
/// which case the result reports whatever precision was achieved).
/// Precondition: 0 < relative_halfwidth < 1.
[[nodiscard]] MonteCarloResult estimate_until(
    const fta::FaultTree& tree, const fta::QuantificationInput& input,
    double relative_halfwidth, std::uint64_t max_trials,
    std::uint64_t seed = 0x5a4e0u);

}  // namespace safeopt::mc

#endif  // SAFEOPT_MC_MONTE_CARLO_H
