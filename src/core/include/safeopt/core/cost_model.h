// The cost function of paper §III-A:
//
//   f_cost(X) = Σ_i Cost_{H_i} · P(H_i)(X)            (Eqs. 5–6)
//
// Each hazard contributes its parameterized probability weighted by the
// (monetary) cost of one occurrence — "it is common practice ... to do this
// in cash". The model stays symbolic: the total cost is an expression over
// the free parameters, evaluable and exactly differentiable.
#ifndef SAFEOPT_CORE_COST_MODEL_H
#define SAFEOPT_CORE_COST_MODEL_H

#include <string>
#include <string_view>
#include <vector>

#include "safeopt/expr/expr.h"

namespace safeopt::core {

/// One hazard H_i: its parameterized probability P(H_i)(X) and its cost.
struct Hazard {
  std::string name;
  expr::Expr probability;
  double cost = 1.0;
};

class CostModel {
 public:
  CostModel() = default;

  /// Precondition: cost >= 0, name unique and non-empty.
  void add_hazard(Hazard hazard);

  [[nodiscard]] std::size_t hazard_count() const noexcept {
    return hazards_.size();
  }
  [[nodiscard]] const Hazard& hazard(std::size_t i) const;
  [[nodiscard]] const std::vector<Hazard>& hazards() const noexcept {
    return hazards_;
  }
  [[nodiscard]] const Hazard& hazard_by_name(std::string_view name) const;

  /// The symbolic cost function f_cost(X) — Eq. 6.
  [[nodiscard]] expr::Expr cost_expression() const;

  /// f_cost at a parameter assignment.
  [[nodiscard]] double cost(const expr::ParameterAssignment& at) const;

  /// Every hazard's probability at `at`, in hazard order.
  [[nodiscard]] std::vector<double> hazard_probabilities(
      const expr::ParameterAssignment& at) const;

 private:
  std::vector<Hazard> hazards_;
};

}  // namespace safeopt::core

#endif  // SAFEOPT_CORE_COST_MODEL_H
