#include "safeopt/core/safety_optimizer.h"

#include <memory>
#include <mutex>
#include <utility>

#include "safeopt/expr/compiled.h"
#include "safeopt/support/contracts.h"
#include "safeopt/support/thread_pool.h"

namespace safeopt::core {

std::string_view to_string(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kGridSearch: return "GridSearch";
    case Algorithm::kNelderMead: return "NelderMead";
    case Algorithm::kMultiStartNelderMead: return "MultiStart(NelderMead)";
    case Algorithm::kGradientDescent: return "ProjectedGradientDescent";
    case Algorithm::kHookeJeeves: return "HookeJeeves";
    case Algorithm::kCoordinateDescent: return "CoordinateDescent";
    case Algorithm::kSimulatedAnnealing: return "SimulatedAnnealing";
    case Algorithm::kDifferentialEvolution: return "DifferentialEvolution";
  }
  return "?";
}

std::string_view algorithm_registry_name(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kGridSearch: return "grid_search";
    case Algorithm::kNelderMead: return "nelder_mead";
    case Algorithm::kMultiStartNelderMead: return "multi_start";
    case Algorithm::kGradientDescent: return "gradient_descent";
    case Algorithm::kHookeJeeves: return "hooke_jeeves";
    case Algorithm::kCoordinateDescent: return "coordinate_descent";
    case Algorithm::kSimulatedAnnealing: return "simulated_annealing";
    case Algorithm::kDifferentialEvolution: return "differential_evolution";
  }
  return "?";
}

opt::SolverConfig algorithm_solver_config(Algorithm algorithm) {
  opt::SolverConfig config;
  switch (algorithm) {
    case Algorithm::kGridSearch:
      // The historic enum switch ran a finer grid than the class default.
      config.set("points_per_dimension", 33).set("refinement_rounds", 5);
      break;
    case Algorithm::kMultiStartNelderMead:
      config.set("inner", "nelder_mead").set("starts", 8);
      break;
    default:
      break;  // class defaults already match the enum path
  }
  return config;
}

std::optional<Algorithm> parse_algorithm(std::string_view name) noexcept {
  constexpr Algorithm kAll[] = {
      Algorithm::kGridSearch,       Algorithm::kNelderMead,
      Algorithm::kMultiStartNelderMead, Algorithm::kGradientDescent,
      Algorithm::kHookeJeeves,      Algorithm::kCoordinateDescent,
      Algorithm::kSimulatedAnnealing,
      Algorithm::kDifferentialEvolution,
  };
  for (const Algorithm algorithm : kAll) {
    if (name == to_string(algorithm) ||
        name == algorithm_registry_name(algorithm)) {
      return algorithm;
    }
  }
  return std::nullopt;
}

std::optional<SolverSelection> resolve_solver(std::string_view argument) {
  if (const auto algorithm = parse_algorithm(argument)) {
    return SolverSelection{std::string(algorithm_registry_name(*algorithm)),
                           algorithm_solver_config(*algorithm)};
  }
  if (opt::SolverRegistry::contains(argument)) {
    return SolverSelection{std::string(argument), opt::SolverConfig{}};
  }
  return std::nullopt;
}

struct SafetyOptimizer::ProblemCache {
  std::once_flag once;
  opt::Problem problem;
};

SafetyOptimizer::SafetyOptimizer(CostModel model, ParameterSpace space)
    : model_(std::move(model)),
      space_(std::move(space)),
      cache_(std::make_shared<ProblemCache>()) {
  SAFEOPT_EXPECTS(model_.hazard_count() >= 1);
  SAFEOPT_EXPECTS(space_.size() >= 1);
  // Every parameter the cost expression mentions must be optimizable.
  for (const std::string& name : model_.cost_expression().parameters()) {
    SAFEOPT_EXPECTS(space_.index_of(name).has_value());
  }
}

opt::Problem SafetyOptimizer::problem() const&& {
  return problem();  // *this is an lvalue here: builds, then copies out
}

const opt::Problem& SafetyOptimizer::problem() const& {
  std::call_once(cache_->once, [this] {
    const expr::Expr cost = model_.cost_expression();
    const std::vector<std::string> names = space_.names();
    opt::Problem problem;
    problem.bounds = space_.box();
    // The scalar objective runs on the compiled tape — bitwise-identical to
    // cost.evaluate() (see compiled.h) and ~3× faster, so every solver in
    // src/opt gets the compiled path without knowing it exists. The tape is
    // compiled exactly once per SafetyOptimizer (and shared by copies):
    // repeated optimize()/run() calls reuse it. The exact forward-mode dual
    // gradient is kept as-is: reverse-over-tape gradients are equal only up
    // to rounding, and gradient descent trajectories should not move under
    // a performance change.
    const auto compiled = std::make_shared<const expr::CompiledExpr>(
        expr::CompiledExpr::compile(cost, names));
    problem.objective = [compiled](std::span<const double> x) {
      return compiled->evaluate(x);
    };
    // Capture the space by value: callers may *copy* the returned Problem
    // and keep using it after this SafetyOptimizer is gone (benches do).
    // The reference problem() hands out is only valid while an optimizer
    // sharing this cache lives — copy before the optimizer dies.
    const ParameterSpace space = space_;
    problem.gradient = [space, cost, names](std::span<const double> x) {
      return cost.evaluate_dual(space.assignment(x), names).grad();
    };
    // Large batches (grid rounds, synchronous DE generations) fan out over
    // the shared pool; each row writes only its own output slot, so results
    // do not depend on the thread count.
    problem.batch_objective = [compiled](std::span<const double> points,
                                         std::span<double> out) {
      constexpr std::size_t kParallelThreshold = 256;
      expr::BatchRequest request{.points = points, .values = out};
      if (out.size() >= kParallelThreshold) {
        request.pool = &ThreadPool::shared();
      }
      compiled->evaluate_batch(request);
    };
    // Population-shaped gradient consumers get lane-batched reverse-mode
    // sweeps (values bitwise-equal to the objective; gradients exact, equal
    // to the dual gradient up to reassociation of the chain rule).
    problem.batch_gradient = [compiled](std::span<const double> points,
                                        std::span<double> values_out,
                                        std::span<double> gradients_out) {
      constexpr std::size_t kParallelThreshold = 128;
      expr::BatchRequest request{.points = points, .values = values_out,
                                 .gradients = gradients_out};
      if (values_out.size() >= kParallelThreshold) {
        request.pool = &ThreadPool::shared();
      }
      compiled->evaluate_batch(request);
    };
    cache_->problem = std::move(problem);
  });
  return cache_->problem;
}

SafetyOptimizationResult SafetyOptimizer::optimize(
    std::string_view solver, const opt::SolverConfig& config) const {
  const opt::Problem& numeric = problem();

  SafetyOptimizationResult result;
  result.optimization =
      opt::SolverRegistry::create(solver)->solve(numeric, config);
  result.optimal_parameters = space_.assignment(result.optimization.argmin);
  result.hazard_probabilities =
      model_.hazard_probabilities(result.optimal_parameters);
  result.cost = result.optimization.value;
  return result;
}

SafetyOptimizationResult SafetyOptimizer::optimize(Algorithm algorithm) const {
  return optimize(algorithm_registry_name(algorithm),
                  algorithm_solver_config(algorithm));
}

SafetyOptimizationResult SafetyOptimizer::evaluate_at(
    const expr::ParameterAssignment& configuration) const {
  SafetyOptimizationResult result;
  result.optimal_parameters = configuration;
  result.hazard_probabilities = model_.hazard_probabilities(configuration);
  result.cost = model_.cost(configuration);
  result.optimization.argmin = space_.values(configuration);
  result.optimization.value = result.cost;
  result.optimization.converged = true;
  result.optimization.message = "direct evaluation";
  return result;
}

ComparisonReport SafetyOptimizer::compare(
    const expr::ParameterAssignment& baseline,
    const SafetyOptimizationResult& optimal) const {
  ComparisonReport report;
  report.baseline_cost = model_.cost(baseline);
  report.optimal_cost = optimal.cost;
  report.cost_relative_change =
      report.baseline_cost != 0.0
          ? (report.optimal_cost - report.baseline_cost) / report.baseline_cost
          : 0.0;
  const std::vector<double> base_probs =
      model_.hazard_probabilities(baseline);
  SAFEOPT_ASSERT(base_probs.size() == optimal.hazard_probabilities.size());
  for (std::size_t i = 0; i < base_probs.size(); ++i) {
    HazardComparison hc;
    hc.hazard = model_.hazard(i).name;
    hc.baseline_probability = base_probs[i];
    hc.optimal_probability = optimal.hazard_probabilities[i];
    hc.relative_change =
        hc.baseline_probability != 0.0
            ? (hc.optimal_probability - hc.baseline_probability) /
                  hc.baseline_probability
            : 0.0;
    report.hazards.push_back(std::move(hc));
  }
  return report;
}

}  // namespace safeopt::core
