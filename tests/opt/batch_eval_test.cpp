// Batched evaluation through opt::Problem: the fallback loop, the GridSearch
// block path, synchronous differential evolution, and parallel multi-start
// must all produce results that are bitwise-independent of how (and whether)
// evaluation is batched or threaded.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <vector>

#include "safeopt/opt/differential_evolution.h"
#include "safeopt/opt/grid_search.h"
#include "safeopt/opt/multi_start.h"
#include "safeopt/opt/nelder_mead.h"
#include "safeopt/opt/problem.h"
#include "safeopt/support/thread_pool.h"

namespace safeopt::opt {
namespace {

double himmelblau(std::span<const double> x) {
  const double a = x[0] * x[0] + x[1] - 11.0;
  const double b = x[0] + x[1] * x[1] - 7.0;
  return a * a + b * b;
}

Problem himmelblau_problem() {
  Problem problem;
  problem.objective = himmelblau;
  problem.bounds = Box({-5.0, -5.0}, {5.0, 5.0});
  return problem;
}

TEST(ProblemBatchTest, FallbackLoopMatchesObjective) {
  const Problem problem = himmelblau_problem();
  ASSERT_FALSE(problem.has_batch_objective());
  std::vector<double> points{1.0, 2.0, -3.0, 0.5, 4.0, -4.0};
  std::vector<double> out(3);
  problem.evaluate_batch(points, out);
  for (std::size_t r = 0; r < out.size(); ++r) {
    EXPECT_EQ(out[r], himmelblau(std::span<const double>(&points[r * 2], 2)));
  }
}

TEST(ProblemBatchTest, BatchObjectiveIsPreferred) {
  Problem problem = himmelblau_problem();
  std::atomic<int> batch_calls{0};
  problem.batch_objective = [&batch_calls](std::span<const double> points,
                                           std::span<double> out) {
    ++batch_calls;
    for (std::size_t r = 0; r < out.size(); ++r) {
      out[r] = himmelblau(points.subspan(r * 2, 2));
    }
  };
  std::vector<double> points{0.0, 0.0, 3.0, 2.0};
  std::vector<double> out(2);
  problem.evaluate_batch(points, out);
  EXPECT_EQ(batch_calls.load(), 1);
  EXPECT_EQ(out[1], 0.0);  // (3, 2) is a Himmelblau minimum
}

TEST(GridSearchBatchTest, BatchedProblemGivesIdenticalResult) {
  const Problem scalar = himmelblau_problem();
  Problem batched = himmelblau_problem();
  ThreadPool pool(3);
  batched.batch_objective = [&pool](std::span<const double> points,
                                    std::span<double> out) {
    pool.parallel_for(out.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t r = begin; r < end; ++r) {
        out[r] = himmelblau(points.subspan(r * 2, 2));
      }
    });
  };

  const GridSearch search(41, 4);
  const OptimizationResult a = search.minimize(scalar);
  const OptimizationResult b = search.minimize(batched);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.argmin, b.argmin);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(GridSearchBatchTest, BlockedScanKeepsFirstOfTiedMinima) {
  // A constant objective ties everywhere; the incumbent must be the first
  // enumerated grid point (axis 0 fastest from the lower corner), exactly
  // as the pre-batching scalar loop behaved.
  Problem problem;
  problem.objective = [](std::span<const double>) { return 1.0; };
  problem.bounds = Box({0.0, 0.0}, {1.0, 1.0});
  const OptimizationResult result = GridSearch(5, 1).minimize(problem);
  EXPECT_EQ(result.argmin, (std::vector<double>{0.0, 0.0}));
}

TEST(DifferentialEvolutionBatchTest, SynchronousModeIsDeterministic) {
  DifferentialEvolution::Settings settings;
  settings.generations = 40;
  settings.synchronous_batch = true;
  const DifferentialEvolution solver(settings, 0xfeed);

  const Problem scalar = himmelblau_problem();
  const OptimizationResult reference = solver.minimize(scalar);

  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    Problem batched = himmelblau_problem();
    batched.batch_objective = [&pool](std::span<const double> points,
                                      std::span<double> out) {
      pool.parallel_for(out.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          out[r] = himmelblau(points.subspan(r * 2, 2));
        }
      });
    };
    const OptimizationResult result = solver.minimize(batched);
    EXPECT_EQ(result.value, reference.value) << threads << " threads";
    EXPECT_EQ(result.argmin, reference.argmin) << threads << " threads";
  }
}

TEST(DifferentialEvolutionBatchTest, SynchronousModeFindsTheMinimum) {
  DifferentialEvolution::Settings settings;
  settings.synchronous_batch = true;
  const OptimizationResult result =
      DifferentialEvolution(settings).minimize(himmelblau_problem());
  EXPECT_NEAR(result.value, 0.0, 1e-8);
}

double himmelblau_dx(std::span<const double> x) {
  const double a = x[0] * x[0] + x[1] - 11.0;
  const double b = x[0] + x[1] * x[1] - 7.0;
  return 4.0 * a * x[0] + 2.0 * b;
}

double himmelblau_dy(std::span<const double> x) {
  const double a = x[0] * x[0] + x[1] - 11.0;
  const double b = x[0] + x[1] * x[1] - 7.0;
  return 2.0 * a + 4.0 * b * x[1];
}

TEST(ProblemBatchGradientTest, FallbackUsesObjectiveAndGradient) {
  Problem problem = himmelblau_problem();
  problem.gradient = [](std::span<const double> x) {
    return std::vector<double>{himmelblau_dx(x), himmelblau_dy(x)};
  };
  ASSERT_FALSE(problem.has_batch_gradient());
  const std::vector<double> points{1.0, 2.0, -3.0, 0.5, 4.0, -4.0};
  std::vector<double> values(3);
  std::vector<double> gradients(6);
  problem.evaluate_batch_with_gradients(points, values, gradients);
  for (std::size_t r = 0; r < 3; ++r) {
    const auto x = std::span<const double>(&points[r * 2], 2);
    EXPECT_EQ(values[r], himmelblau(x));
    EXPECT_EQ(gradients[r * 2], himmelblau_dx(x));
    EXPECT_EQ(gradients[r * 2 + 1], himmelblau_dy(x));
  }
}

TEST(ProblemBatchGradientTest, BatchGradientIsPreferred) {
  Problem problem = himmelblau_problem();
  std::atomic<int> calls{0};
  problem.batch_gradient = [&calls](std::span<const double> points,
                                    std::span<double> values,
                                    std::span<double> gradients) {
    ++calls;
    for (std::size_t r = 0; r < values.size(); ++r) {
      const auto x = points.subspan(r * 2, 2);
      values[r] = himmelblau(x);
      gradients[r * 2] = himmelblau_dx(x);
      gradients[r * 2 + 1] = himmelblau_dy(x);
    }
  };
  const std::vector<double> points{0.5, -1.5, 3.0, 2.0};
  std::vector<double> values(2);
  std::vector<double> gradients(4);
  problem.evaluate_batch_with_gradients(points, values, gradients);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(values[1], 0.0);
  EXPECT_EQ(gradients[2], 0.0);  // (3, 2) is a stationary minimum
  EXPECT_EQ(gradients[3], 0.0);
}

TEST(ProblemBatchGradientTest, BatchedFiniteDifferencesMatchScalarStencil) {
  // The Problem overload evaluates its whole 2·dim stencil through
  // evaluate_batch; values and hence the gradient must be bitwise-equal to
  // the per-point Objective overload.
  const Problem problem = himmelblau_problem();
  const std::vector<double> x{1.3, -2.1};
  std::size_t scalar_evals = 0;
  std::size_t batch_evals = 0;
  const std::vector<double> scalar = finite_difference_gradient(
      problem.objective, problem.bounds, x, &scalar_evals);
  const std::vector<double> batched =
      finite_difference_gradient(problem, x, &batch_evals);
  EXPECT_EQ(scalar, batched);
  EXPECT_EQ(scalar_evals, batch_evals);
}

TEST(MultiStartParallelTest, PoolGivesIdenticalResultToSequential) {
  const Problem problem = himmelblau_problem();
  const auto factory = [](std::vector<double> start) {
    return std::make_unique<NelderMead>(StoppingCriteria{}, std::move(start));
  };

  const MultiStart sequential(factory, 8, 0xabc);
  const OptimizationResult reference = sequential.minimize(problem);

  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const MultiStart parallel(factory, 8, 0xabc, &pool);
    const OptimizationResult result = parallel.minimize(problem);
    EXPECT_EQ(result.value, reference.value) << threads << " threads";
    EXPECT_EQ(result.argmin, reference.argmin) << threads << " threads";
    EXPECT_EQ(result.evaluations, reference.evaluations)
        << threads << " threads";
    EXPECT_EQ(result.message, reference.message) << threads << " threads";
  }
}

}  // namespace
}  // namespace safeopt::opt
