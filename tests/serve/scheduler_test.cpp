// AdmissionScheduler contract tests: start-time fair queuing dispatch
// ratios, bounded-queue shedding with the PR 7 error taxonomy, and the
// drain/stats surface the server builds on. Determinism comes from
// start_paused + max_concurrent=1: a whole scenario is enqueued against a
// known backlog, then released and observed in dispatch order.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <string>
#include <vector>

#include "safeopt/serve/scheduler.h"
#include "safeopt/support/error.h"
#include "safeopt/support/thread_pool.h"

namespace safeopt::serve {
namespace {

/// Enqueues `per_tenant` no-op jobs for each named tenant while paused,
/// releases, and returns tenant names in dispatch order.
std::vector<std::string> dispatch_order(
    const std::vector<std::pair<std::string, double>>& weights,
    const std::vector<std::string>& tenants, int per_tenant) {
  ThreadPool pool(1);
  SchedulerOptions options;
  options.pool = &pool;
  options.max_concurrent = 1;
  options.tenant_weights = weights;
  options.start_paused = true;
  AdmissionScheduler scheduler(options);

  std::mutex mutex;
  std::vector<std::string> order;
  for (int i = 0; i < per_tenant; ++i) {
    for (const std::string& tenant : tenants) {
      scheduler.submit(tenant, [&mutex, &order, tenant] {
        std::lock_guard<std::mutex> lock(mutex);
        order.push_back(tenant);
      });
    }
  }
  scheduler.resume();
  scheduler.drain();
  return order;
}

TEST(AdmissionSchedulerTest, EqualWeightsInterleaveFairly) {
  const auto order = dispatch_order({}, {"a", "b"}, 8);
  ASSERT_EQ(order.size(), 16u);
  // Any 4-job window contains both tenants (no starvation burst).
  for (std::size_t i = 0; i + 4 <= order.size(); ++i) {
    int a = 0;
    for (std::size_t j = i; j < i + 4; ++j) a += order[j] == "a" ? 1 : 0;
    EXPECT_GE(a, 1) << "tenant a starved in window " << i;
    EXPECT_LE(a, 3) << "tenant b starved in window " << i;
  }
}

TEST(AdmissionSchedulerTest, WeightedTenantsDispatchInWeightRatio) {
  // heavy:light = 3:1 — over any aligned window of 4 dispatches from a
  // backlogged start, SFQ gives heavy exactly 3 slots.
  const auto order =
      dispatch_order({{"heavy", 3.0}, {"light", 1.0}}, {"heavy", "light"}, 12);
  ASSERT_EQ(order.size(), 24u);
  // Count the prefix ratio after every 4 dispatches: 3:1 within ±1 slot.
  int heavy = 0;
  int seen = 0;
  for (const std::string& name : order) {
    heavy += name == "heavy" ? 1 : 0;
    ++seen;
    if (seen % 4 == 0 && seen <= 16) {
      const double expected = 0.75 * seen;
      EXPECT_NEAR(heavy, expected, 1.0)
          << "after " << seen << " dispatches";
    }
  }
  // The full run completes everything from both tenants.
  EXPECT_EQ(heavy, 12);
}

TEST(AdmissionSchedulerTest, ShedsSynchronouslyWhenTheTenantQueueIsFull) {
  ThreadPool pool(1);
  SchedulerOptions options;
  options.pool = &pool;
  options.max_queue_per_tenant = 2;
  options.max_concurrent = 1;
  options.start_paused = true;
  AdmissionScheduler scheduler(options);

  scheduler.submit("t", [] {});
  scheduler.submit("t", [] {});
  try {
    scheduler.submit("t", [] {});
    FAIL() << "third submit must shed";
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kResourceExhausted);
  }
  // Other tenants are unaffected by t's full queue.
  scheduler.submit("other", [] {});

  const SchedulerStats before = scheduler.stats();
  EXPECT_EQ(before.shed, 1u);
  EXPECT_EQ(before.queued, 3u);
  EXPECT_EQ(before.tenants.at("t").shed, 1u);

  scheduler.resume();
  scheduler.drain();
  const SchedulerStats after = scheduler.stats();
  EXPECT_EQ(after.completed, 3u);
  EXPECT_EQ(after.queued, 0u);
  EXPECT_EQ(after.running, 0u);
}

TEST(AdmissionSchedulerTest, UnknownTenantsBeyondTheCapShareOneBucket) {
  ThreadPool pool(1);
  SchedulerOptions options;
  options.pool = &pool;
  options.max_tenants = 2;
  AdmissionScheduler scheduler(options);
  // Tenant names are client-controlled: the first two are tracked by name,
  // every later unknown name lands in the shared overflow bucket instead of
  // growing the map.
  for (const char* name : {"a", "b", "c", "d", "e"}) {
    scheduler.submit(name, [] {});
  }
  scheduler.drain();
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.tenants.size(), 3u);
  EXPECT_EQ(stats.tenants.at("a").submitted, 1u);
  EXPECT_EQ(stats.tenants.at("b").submitted, 1u);
  ASSERT_EQ(stats.tenants.count(std::string(kOverflowTenant)), 1u);
  EXPECT_EQ(stats.tenants.at(std::string(kOverflowTenant)).submitted, 3u);
  EXPECT_EQ(stats.completed, 5u);
  // The overflow bucket is a tenant like any other: its queue bound and
  // fair-queuing weight apply to everything folded into it.
  EXPECT_EQ(stats.tenants.at(std::string(kOverflowTenant)).weight, 1.0);
}

TEST(AdmissionSchedulerTest, VirtualTimeTracksStartTagsForWeightedTenants) {
  ThreadPool pool(1);
  SchedulerOptions options;
  options.pool = &pool;
  options.max_concurrent = 1;
  options.tenant_weights = {{"heavy", 4.0}};
  options.start_paused = true;
  AdmissionScheduler scheduler(options);

  std::mutex mutex;
  std::vector<std::string> order;
  const auto record = [&mutex, &order](const char* name) {
    std::lock_guard<std::mutex> lock(mutex);
    order.emplace_back(name);
  };
  // 8 heavy jobs (finish tags 0.25 .. 2.0); the 4th activates a light
  // tenant mid-backlog. Its virtual start must be the global virtual time
  // at that moment — the 4th dispatch's start tag 0.75, finish 1.75 — so at
  // least two more heavy jobs (finish 1.25, 1.5) dispatch first. The old
  // `finish_tag - 1.0` advance left virtual time at 0 for weight > 1 and
  // let the light job jump most of the heavy backlog.
  for (int i = 0; i < 8; ++i) {
    const bool activates_light = i == 3;
    scheduler.submit("heavy", [&scheduler, &record, activates_light] {
      record("heavy");
      if (activates_light) {
        scheduler.submit("light", [&record] { record("light"); });
      }
    });
  }
  scheduler.resume();
  scheduler.drain();

  ASSERT_EQ(order.size(), 9u);
  const auto light = std::find(order.begin(), order.end(), "light");
  ASSERT_NE(light, order.end());
  EXPECT_GE(light - order.begin(), 6)
      << "a newly active tenant must not replay the past against a heavy "
         "tenant's backlog";
}

TEST(AdmissionSchedulerTest, JobExceptionsAreContained) {
  ThreadPool pool(1);
  SchedulerOptions options;
  options.pool = &pool;
  AdmissionScheduler scheduler(options);
  scheduler.submit("t", [] { throw std::runtime_error("handler bug"); });
  scheduler.submit("t", [] {});
  scheduler.drain();
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 2u) << "a throwing job must not kill dispatch";
}

TEST(AdmissionSchedulerTest, StatsTrackPerTenantCounters) {
  ThreadPool pool(1);
  SchedulerOptions options;
  options.pool = &pool;
  options.tenant_weights = {{"a", 2.0}};
  AdmissionScheduler scheduler(options);
  scheduler.submit("a", [] {});
  scheduler.submit("b", [] {});
  scheduler.drain();
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.tenants.at("a").submitted, 1u);
  EXPECT_EQ(stats.tenants.at("a").weight, 2.0);
  EXPECT_EQ(stats.tenants.at("b").weight, 1.0);
}

}  // namespace
}  // namespace safeopt::serve
