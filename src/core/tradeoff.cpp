#include "safeopt/core/tradeoff.h"

#include <cmath>

#include "safeopt/support/contracts.h"

namespace safeopt::core {

std::vector<TradeoffPoint> tradeoff_curve(const CostModel& model,
                                          const ParameterSpace& space,
                                          std::string_view hazard_a,
                                          std::string_view hazard_b,
                                          double ratio_lo, double ratio_hi,
                                          std::size_t steps,
                                          Algorithm algorithm) {
  return tradeoff_curve(model, space, hazard_a, hazard_b, ratio_lo, ratio_hi,
                        steps, algorithm_registry_name(algorithm),
                        algorithm_solver_config(algorithm));
}

std::vector<TradeoffPoint> tradeoff_curve(
    const CostModel& model, const ParameterSpace& space,
    std::string_view hazard_a, std::string_view hazard_b, double ratio_lo,
    double ratio_hi, std::size_t steps, std::string_view solver,
    const opt::SolverConfig& config) {
  SAFEOPT_EXPECTS(ratio_lo > 0.0 && ratio_lo < ratio_hi);
  SAFEOPT_EXPECTS(steps >= 2);
  const Hazard& a = model.hazard_by_name(hazard_a);
  const Hazard& b = model.hazard_by_name(hazard_b);

  std::vector<TradeoffPoint> curve;
  curve.reserve(steps);
  const double log_lo = std::log(ratio_lo);
  const double log_hi = std::log(ratio_hi);
  for (std::size_t k = 0; k < steps; ++k) {
    const double t = static_cast<double>(k) / static_cast<double>(steps - 1);
    const double ratio = std::exp(log_lo + t * (log_hi - log_lo));

    CostModel weighted;
    weighted.add_hazard(Hazard{a.name, a.probability, ratio});
    weighted.add_hazard(Hazard{b.name, b.probability, 1.0});
    const SafetyOptimizer optimizer(std::move(weighted), space);
    const SafetyOptimizationResult result = optimizer.optimize(solver, config);

    TradeoffPoint point;
    point.cost_ratio = ratio;
    point.parameters = result.optimization.argmin;
    point.probability_a = result.hazard_probabilities[0];
    point.probability_b = result.hazard_probabilities[1];
    curve.push_back(std::move(point));
  }
  return curve;
}

}  // namespace safeopt::core
