#include "safeopt/sim/traffic.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "safeopt/sim/simulator.h"
#include "safeopt/stats/distribution.h"
#include "safeopt/support/contracts.h"
#include "safeopt/support/rng.h"

namespace safeopt::sim {

double TrafficStatistics::correct_ohv_alarm_fraction() const noexcept {
  return correct_ohvs == 0 ? 0.0
                           : static_cast<double>(correct_ohvs_alarmed) /
                                 static_cast<double>(correct_ohvs);
}

double TrafficStatistics::overtime1_fraction() const noexcept {
  return ohv_arrivals == 0 ? 0.0
                           : static_cast<double>(overtime1) /
                                 static_cast<double>(ohv_arrivals);
}

double TrafficStatistics::overtime2_fraction() const noexcept {
  return ohv_arrivals == 0 ? 0.0
                           : static_cast<double>(overtime2) /
                                 static_cast<double>(ohv_arrivals);
}

namespace {

/// The whole simulated world: control state, statistics, and the stochastic
/// processes, wired into the DES kernel via self-rescheduling callbacks.
class HeightControlWorld {
 public:
  HeightControlWorld(const TrafficConfig& config, std::uint64_t seed)
      : config_(config),
        rng_(seed),
        transit_(stats::TruncatedNormal::nonnegative(
            config.zone_transit_mean_min, config.zone_transit_sigma_min)) {
    SAFEOPT_EXPECTS(config.horizon_minutes > 0.0);
    SAFEOPT_EXPECTS(config.ohv_arrival_rate_per_min > 0.0);
    SAFEOPT_EXPECTS(config.ohv_wrong_route_fraction >= 0.0 &&
                    config.ohv_wrong_route_fraction <= 1.0);
    SAFEOPT_EXPECTS(config.timer1_min > 0.0 && config.timer2_min > 0.0);
  }

  TrafficStatistics run() {
    schedule_next_ohv();
    if (config_.hv_left_lane_rate_per_min > 0.0) schedule_next_hv();
    if (config_.lb_false_detection_rate_per_min > 0.0) {
      schedule_next_lbpre_fd();
      schedule_next_lbpost_fd();
    }
    simulator_.run_until(config_.horizon_minutes);
    return stats_;
  }

 private:
  struct OdWindow {
    double close_time = 0.0;
    // Index into correct_ohv_alarmed_, or SIZE_MAX for windows opened by
    // wrong OHVs / false detections (nobody to attribute a false alarm to).
    std::size_t owner = SIZE_MAX;
  };

  double exponential_delay(double rate) {
    SAFEOPT_ASSERT(rate > 0.0);
    double u = uniform01(rng_);
    if (u <= 0.0) u = 1e-300;
    return -std::log(u) / rate;
  }

  void schedule_next_ohv() {
    simulator_.schedule_in(
        exponential_delay(config_.ohv_arrival_rate_per_min),
        [this] {
          ohv_enters_zone1();
          schedule_next_ohv();
        });
  }

  void schedule_next_hv() {
    simulator_.schedule_in(
        exponential_delay(config_.hv_left_lane_rate_per_min), [this] {
          hv_passes_odfinal();
          schedule_next_hv();
        });
  }

  void schedule_next_lbpre_fd() {
    simulator_.schedule_in(
        exponential_delay(config_.lb_false_detection_rate_per_min), [this] {
          // Spurious LBpre trigger arms LBpost, exactly like a real OHV.
          arm_lbpost();
          schedule_next_lbpre_fd();
        });
  }

  void schedule_next_lbpost_fd() {
    simulator_.schedule_in(
        exponential_delay(config_.lb_false_detection_rate_per_min), [this] {
          // A spurious LBpost trigger only matters while LBpost is armed;
          // then it arms ODfinal with no owner (paper's FDpre·FDpost path).
          if (lbpost_armed_count_ > 0) {
            open_od_window(simulator_.now() + config_.timer2_min, SIZE_MAX);
          }
          schedule_next_lbpost_fd();
        });
  }

  void arm_lbpost() {
    ++lbpost_armed_count_;
    simulator_.schedule_in(config_.timer1_min,
                           [this] { --lbpost_armed_count_; });
  }

  void open_od_window(double close_time, std::size_t owner) {
    od_windows_.push_back(OdWindow{close_time, owner});
  }

  void prune_od_windows() {
    const double now = simulator_.now();
    std::erase_if(od_windows_,
                  [now](const OdWindow& w) { return w.close_time <= now; });
  }

  [[nodiscard]] bool od_armed() {
    prune_od_windows();
    return !od_windows_.empty();
  }

  void ohv_enters_zone1() {
    ++stats_.ohv_arrivals;
    const bool correct =
        !bernoulli(rng_, config_.ohv_wrong_route_fraction);
    std::size_t owner = SIZE_MAX;
    if (correct) {
      ++stats_.correct_ohvs;
      owner = correct_ohv_alarmed_.size();
      correct_ohv_alarmed_.push_back(false);
    } else {
      ++stats_.wrong_ohvs;
    }

    arm_lbpost();
    const double d1 = transit_.sample(rng_);
    if (d1 > config_.timer1_min) ++stats_.overtime1;
    const double d2 = transit_.sample(rng_);
    if (d2 > config_.timer2_min) ++stats_.overtime2;

    simulator_.schedule_in(
        d1, [this, correct, owner, d2] { ohv_at_lbpost(correct, owner, d2); });
  }

  void ohv_at_lbpost(bool correct, std::size_t owner, double d2) {
    const bool armed = lbpost_armed_count_ > 0;
    if (!armed) {
      ++stats_.unprotected_at_lbpost;
      // ODfinal is never armed for this OHV: a wrong-headed one proceeds
      // towards the old tubes unprotected (the OT1 cut set).
      simulator_.schedule_in(
          d2, [this, correct] { ohv_at_odfinal(correct, false); });
      return;
    }
    const double now = simulator_.now();
    switch (config_.variant) {
      case DesignVariant::kBaseline:
        open_od_window(now + config_.timer2_min, owner);
        break;
      case DesignVariant::kWithLB4:
        // The new light barrier at the tube-4 entrance stops timer 2 when
        // the OHV leaves zone 2; a wrong OHV never crosses it, so its
        // window runs the full timer2.
        open_od_window(
            correct ? now + std::min(d2, config_.timer2_min)
                    : now + config_.timer2_min,
            owner);
        break;
      case DesignVariant::kLightBarrierAtODfinal:
        // ODfinal is consulted only while an OHV occupies the barrier at
        // its location: the window opens when this OHV arrives there.
        open_od_window(now + d2 + config_.lb_passage_window_min, owner,
                       /*defer_open=*/now + d2);
        break;
    }
    simulator_.schedule_in(
        d2, [this, correct] { ohv_at_odfinal(correct, true); });
  }

  /// Overload used by the deferred-window variant.
  void open_od_window(double close_time, std::size_t owner,
                      double open_time) {
    simulator_.schedule_at(open_time, [this, close_time, owner] {
      open_od_window(close_time, owner);
    });
  }

  void ohv_at_odfinal(bool correct, bool was_armed_at_lbpost) {
    if (correct) return;  // right lane into tube 4; ODfinal does not see it
    // Wrong-headed OHV on a left lane under ODfinal.
    const bool detected =
        od_armed() && !bernoulli(rng_, config_.od_miss_detection_prob);
    if (detected) {
      ++stats_.wrong_ohvs_stopped;
    } else {
      ++stats_.collision_possible;
      (void)was_armed_at_lbpost;
    }
  }

  void hv_passes_odfinal() {
    ++stats_.hv_left_lane_passages;
    prune_od_windows();
    if (od_windows_.empty()) return;
    if (bernoulli(rng_, config_.od_miss_detection_prob)) return;
    ++stats_.false_alarms;
    for (const OdWindow& window : od_windows_) {
      if (window.owner != SIZE_MAX && !correct_ohv_alarmed_[window.owner]) {
        correct_ohv_alarmed_[window.owner] = true;
        ++stats_.correct_ohvs_alarmed;
      }
    }
  }

  TrafficConfig config_;
  Rng rng_;
  stats::TruncatedNormal transit_;
  Simulator simulator_;
  TrafficStatistics stats_;

  int lbpost_armed_count_ = 0;
  std::vector<OdWindow> od_windows_;
  std::vector<bool> correct_ohv_alarmed_;
};

}  // namespace

TrafficStatistics simulate_height_control(const TrafficConfig& config,
                                          std::uint64_t seed) {
  HeightControlWorld world(config, seed);
  return world.run();
}

}  // namespace safeopt::sim
