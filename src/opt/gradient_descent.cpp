#include "safeopt/opt/gradient_descent.h"

#include "builtin_solvers.h"

#include <algorithm>
#include <cmath>

#include "safeopt/support/contracts.h"

namespace safeopt::opt {

ProjectedGradientDescent::ProjectedGradientDescent(StoppingCriteria stopping,
                                                   std::vector<double> initial,
                                                   double initial_step)
    : stopping_(stopping),
      initial_(std::move(initial)),
      initial_step_(initial_step) {
  SAFEOPT_EXPECTS(initial_step > 0.0);
}

OptimizationResult ProjectedGradientDescent::minimize(
    const Problem& problem) const {
  const std::size_t dim = problem.bounds.dimension();
  SAFEOPT_EXPECTS(dim >= 1);
  SAFEOPT_EXPECTS(initial_.empty() || initial_.size() == dim);

  OptimizationResult result;
  std::vector<double> x = initial_.empty() ? problem.bounds.center()
                                           : problem.bounds.project(initial_);
  double fx = problem.objective(x);
  ++result.evaluations;

  double max_width = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    max_width = std::max(max_width, problem.bounds.width(i));
  }
  const double step0 = initial_step_ * std::max(max_width, 1e-9);

  constexpr double kArmijoSlope = 1e-4;
  constexpr double kBacktrack = 0.5;
  constexpr int kMaxBacktracks = 40;

  while (result.iterations < stopping_.max_iterations) {
    ++result.iterations;
    // The finite-difference fallback evaluates its whole 2·dim stencil in
    // one batch call, so compiled lane-batched objectives serve it without
    // per-point traversals; values (and hence the trajectory) are identical
    // to the per-point loop by the BatchObjective contract.
    const std::vector<double> grad =
        problem.has_gradient()
            ? problem.gradient(x)
            : finite_difference_gradient(problem, x, &result.evaluations);
    SAFEOPT_ASSERT(grad.size() == dim);

    double grad_norm = 0.0;
    for (const double g : grad) grad_norm += g * g;
    grad_norm = std::sqrt(grad_norm);

    // Projected-gradient stationarity: measure the step the projection
    // actually allows (zero at a constrained optimum even with grad != 0).
    double step = step0;
    std::vector<double> candidate(dim);
    bool accepted = false;
    double f_candidate = fx;
    double moved = 0.0;
    for (int bt = 0; bt < kMaxBacktracks; ++bt) {
      for (std::size_t i = 0; i < dim; ++i) {
        candidate[i] = x[i] - step * grad[i];
      }
      candidate = problem.bounds.project(candidate);
      moved = 0.0;
      for (std::size_t i = 0; i < dim; ++i) {
        const double d = candidate[i] - x[i];
        moved += d * d;
      }
      moved = std::sqrt(moved);
      if (moved == 0.0) break;  // pinned to the boundary
      f_candidate = problem.objective(candidate);
      ++result.evaluations;
      // Armijo condition adapted to the projected step length.
      if (f_candidate <= fx - kArmijoSlope * grad_norm * moved) {
        accepted = true;
        break;
      }
      step *= kBacktrack;
    }

    if (!accepted || moved <= stopping_.tolerance) {
      result.converged = true;
      result.message = accepted ? "projected step below tolerance"
                                : "no descent step found (stationary)";
      if (accepted && f_candidate < fx) {
        x = candidate;
        fx = f_candidate;
      }
      break;
    }
    x = candidate;
    fx = f_candidate;
  }

  if (!result.converged) result.message = "iteration budget exhausted";
  result.argmin = std::move(x);
  result.value = fx;
  return result;
}

// ---- registry adapter -------------------------------------------------------

namespace {

/// Extras: "initial_step" (default 0.1, relative to the largest box width).
class GradientDescentSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "gradient_descent";
  }

 private:
  [[nodiscard]] OptimizationResult run(
      const Problem& problem, const SolverConfig& config) const override {
    return ProjectedGradientDescent(config.stopping(), config.initial,
                                    config.number_or("initial_step", 0.1))
        .minimize(problem);
  }
};

}  // namespace

std::unique_ptr<Solver> detail::make_gradient_descent_solver() {
  return std::make_unique<GradientDescentSolver>();
}

}  // namespace safeopt::opt
