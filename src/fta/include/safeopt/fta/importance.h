// Importance measures rank how much each primary failure contributes to a
// hazard — the quantitative complement to the paper's observation that
// "quantitative safety analysis showed the importance of different failure
// modes". All measures are computed from the minimal cut sets under a chosen
// probability method:
//
//   Birnbaum          I_B(i)  = P(H | p_i = 1) − P(H | p_i = 0)
//   Criticality       I_C(i)  = I_B(i) · p_i / P(H)
//   Fussell-Vesely    I_FV(i) = Σ_{MCS ∋ i} P(MCS) / P(H)
//   RAW               RAW(i)  = P(H | p_i = 1) / P(H)   (risk achievement)
//   RRW               RRW(i)  = P(H) / P(H | p_i = 0)   (risk reduction)
#ifndef SAFEOPT_FTA_IMPORTANCE_H
#define SAFEOPT_FTA_IMPORTANCE_H

#include <string>
#include <vector>

#include "safeopt/fta/probability.h"

namespace safeopt::fta {

/// All importance measures for one basic event.
struct ImportanceMeasures {
  BasicEventOrdinal event = 0;
  std::string event_name;
  double birnbaum = 0.0;
  double criticality = 0.0;
  double fussell_vesely = 0.0;
  double risk_achievement_worth = 1.0;
  double risk_reduction_worth = 1.0;
};

/// Computes all measures for every basic event of `tree`.
/// Precondition: top_event_probability(mcs, input, method) > 0.
[[nodiscard]] std::vector<ImportanceMeasures> importance_measures(
    const FaultTree& tree, const CutSetCollection& mcs,
    const QuantificationInput& input,
    ProbabilityMethod method = ProbabilityMethod::kRareEvent);

/// The same list sorted by descending Fussell-Vesely importance — the usual
/// report order ("which failures dominate the hazard?").
[[nodiscard]] std::vector<ImportanceMeasures> importance_ranking(
    const FaultTree& tree, const CutSetCollection& mcs,
    const QuantificationInput& input,
    ProbabilityMethod method = ProbabilityMethod::kRareEvent);

}  // namespace safeopt::fta

#endif  // SAFEOPT_FTA_IMPORTANCE_H
