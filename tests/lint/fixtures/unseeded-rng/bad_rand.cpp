// Fixture: unseeded / global randomness.
#include <cstdlib>
#include <random>

double f() {
  srand(42);                       // global seed state
  const int die = rand() % 6;      // C global RNG
  std::random_device entropy;      // non-reproducible hardware entropy
  return die + entropy();
}
