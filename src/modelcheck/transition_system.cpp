#include "safeopt/modelcheck/transition_system.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "safeopt/support/contracts.h"
#include "safeopt/support/strings.h"

namespace safeopt::modelcheck {
namespace {

struct StateHash {
  std::size_t operator()(const State& state) const noexcept {
    // FNV-1a over the int32 words.
    std::uint64_t h = 1469598103934665603ULL;
    for (const std::int32_t v : state) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

CheckResult check_invariant(const TransitionSystem& system,
                            const std::function<bool(const State&)>& invariant,
                            std::size_t max_states) {
  SAFEOPT_EXPECTS(static_cast<bool>(invariant));
  SAFEOPT_EXPECTS(max_states >= 1);

  CheckResult result;
  // parent map doubles as the visited set; the initial state's parent is
  // itself (detected when rebuilding the trace).
  std::unordered_map<State, State, StateHash> parent;
  std::deque<State> frontier;

  const State init = system.initial();
  parent.emplace(init, init);
  frontier.push_back(init);

  const auto build_trace = [&](const State& violating) {
    std::vector<State> trace{violating};
    State current = violating;
    while (true) {
      const State& up = parent.at(current);
      if (up == current) break;
      trace.push_back(up);
      current = up;
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  };

  while (!frontier.empty()) {
    const State state = frontier.front();
    frontier.pop_front();
    ++result.states_explored;

    if (!invariant(state)) {
      result.holds = false;
      result.counterexample = build_trace(state);
      return result;
    }
    if (result.states_explored >= max_states) {
      result.holds = true;
      result.exhausted_budget = true;
      return result;
    }
    for (State& next : system.successors(state)) {
      if (parent.emplace(next, state).second) {
        frontier.push_back(std::move(next));
      }
    }
  }
  result.holds = true;
  return result;
}

std::string format_trace(const TransitionSystem& system,
                         const std::vector<State>& trace) {
  std::string out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    out += concat("  step ", std::to_string(i), ": ",
                  system.describe(trace[i]), "\n");
  }
  return out;
}

}  // namespace safeopt::modelcheck
