// Acceptance tests for the compiled-evaluation path on the paper's own
// optimization problem: running a solver against the compiled tape must give
// exactly (bitwise) the optimum the recursive expression walk gives.
#include <gtest/gtest.h>

#include <vector>

#include "safeopt/core/compiled_quantification.h"
#include "safeopt/core/safety_optimizer.h"
#include "safeopt/elbtunnel/elbtunnel_model.h"
#include "safeopt/expr/compiled.h"
#include "safeopt/fta/cut_sets.h"
#include "safeopt/opt/differential_evolution.h"
#include "safeopt/opt/grid_search.h"

namespace safeopt::elbtunnel {
namespace {

/// The pre-compilation objective: assignment construction + tree walk.
opt::Problem tree_walk_problem(const core::SafetyOptimizer& optimizer) {
  opt::Problem problem;
  problem.bounds = optimizer.space().box();
  const core::ParameterSpace space = optimizer.space();
  const expr::Expr cost = optimizer.model().cost_expression();
  problem.objective = [space, cost](std::span<const double> x) {
    return cost.evaluate(space.assignment(x));
  };
  return problem;
}

TEST(CompiledPathTest, CompiledCostMatchesTreeWalkAcrossTheBox) {
  const ElbtunnelModel model;
  const expr::Expr cost = model.cost_model().cost_expression();
  const auto compiled = expr::CompiledExpr::compile(cost, {"T1", "T2"});
  for (double t1 = 5.0; t1 <= 40.0; t1 += 1.7) {
    for (double t2 = 5.0; t2 <= 40.0; t2 += 2.3) {
      const double tree = cost.evaluate({{"T1", t1}, {"T2", t2}});
      EXPECT_EQ(tree, compiled.evaluate(std::vector<double>{t1, t2}));
    }
  }
}

TEST(CompiledPathTest, GridSearchOptimumIsBitwiseIdentical) {
  const ElbtunnelModel model;
  const core::SafetyOptimizer optimizer = model.optimizer();
  const opt::GridSearch search(33, 5);

  const opt::OptimizationResult tree =
      search.minimize(tree_walk_problem(optimizer));
  // optimizer.problem() carries the compiled scalar + batch objectives.
  const opt::OptimizationResult compiled =
      search.minimize(optimizer.problem());

  EXPECT_EQ(tree.value, compiled.value);
  EXPECT_EQ(tree.argmin, compiled.argmin);
  EXPECT_EQ(tree.evaluations, compiled.evaluations);
}

TEST(CompiledPathTest, DifferentialEvolutionOptimumIsBitwiseIdentical) {
  const ElbtunnelModel model;
  const core::SafetyOptimizer optimizer = model.optimizer();
  opt::DifferentialEvolution::Settings settings;
  settings.generations = 60;
  const opt::DifferentialEvolution solver(settings, 0xd1ffe);

  const opt::OptimizationResult tree =
      solver.minimize(tree_walk_problem(optimizer));
  const opt::OptimizationResult compiled =
      solver.minimize(optimizer.problem());

  EXPECT_EQ(tree.value, compiled.value);
  EXPECT_EQ(tree.argmin, compiled.argmin);
}

/// Both Elbtunnel fault trees, both hazard-assembly formulas: the compiled
/// quantification's hazard and Birnbaum tapes must reproduce the symbolic
/// expression walks bit for bit across the timer box.
TEST(CompiledPathTest, CompiledQuantificationMatchesSymbolicWalk) {
  const ElbtunnelModel model;
  const fta::FaultTree collision = model.collision_tree();
  const fta::FaultTree alarm = model.false_alarm_tree();
  const std::vector<
      std::pair<const fta::FaultTree*, core::ParameterizedQuantification>>
      cases = {{&collision, model.collision_quantification(collision)},
               {&alarm, model.false_alarm_quantification(alarm)}};

  for (const auto& [tree, quantification] : cases) {
    const fta::CutSetCollection mcs = fta::minimal_cut_sets(*tree);
    for (const core::HazardFormula formula :
         {core::HazardFormula::kRareEvent,
          core::HazardFormula::kMinCutUpperBound}) {
      const core::CompiledQuantification compiled(quantification, mcs,
                                                  {"T1", "T2"}, formula);
      const expr::Expr hazard =
          quantification.hazard_expression(mcs, formula);
      for (double t1 = 15.0; t1 <= 30.0; t1 += 3.7) {
        for (double t2 = 15.0; t2 <= 30.0; t2 += 4.3) {
          const expr::ParameterAssignment env{{"T1", t1}, {"T2", t2}};
          EXPECT_EQ(hazard.evaluate(env),
                    compiled.hazard(std::vector<double>{t1, t2}))
              << tree->name() << " T1=" << t1 << " T2=" << t2;
        }
      }
      for (std::size_t e = 0; e < tree->basic_event_count(); ++e) {
        const auto ordinal = static_cast<fta::BasicEventOrdinal>(e);
        const expr::Expr birnbaum =
            quantification.birnbaum_expression(mcs, ordinal, formula);
        const expr::ParameterAssignment env{{"T1", 19.0}, {"T2", 15.6}};
        EXPECT_EQ(birnbaum.evaluate(env),
                  compiled.birnbaum(ordinal, std::vector<double>{19.0, 15.6}))
            << tree->name() << " event " << e;
      }
    }
  }
}

/// The compiled leaf tapes must produce the same numeric quantification
/// input the symbolic walk produces — the seam Monte Carlo validation and
/// the classical fta/bdd engines consume.
TEST(CompiledPathTest, CompiledInputMatchesSymbolicEvaluate) {
  const ElbtunnelModel model;
  const fta::FaultTree alarm = model.false_alarm_tree();
  const core::ParameterizedQuantification quantification =
      model.false_alarm_quantification(alarm);
  const core::CompiledQuantification compiled(quantification);
  for (double t2 = 5.0; t2 <= 30.0; t2 += 4.9) {
    const expr::ParameterAssignment env{{"T1", 30.0}, {"T2", t2}};
    const fta::QuantificationInput symbolic = quantification.evaluate(env);
    const fta::QuantificationInput tape = compiled.input_at(env);
    EXPECT_EQ(symbolic.basic_event_probability, tape.basic_event_probability);
    EXPECT_EQ(symbolic.condition_probability, tape.condition_probability);
  }
}

TEST(CompiledPathTest, BatchedTabulationMatchesScalarSurface) {
  const ElbtunnelModel model;
  const core::SafetyOptimizer optimizer = model.optimizer();
  const opt::Problem problem = optimizer.problem();

  // The Fig. 5 plotting box.
  opt::Problem figure = problem;
  figure.bounds = opt::Box({15.0, 15.0}, {20.0, 18.0});
  const opt::GridTable batched = opt::tabulate_2d(figure, 21, 25);
  const opt::GridTable scalar =
      opt::tabulate_2d(problem.objective, figure.bounds, 21, 25);
  EXPECT_EQ(batched.xs, scalar.xs);
  EXPECT_EQ(batched.ys, scalar.ys);
  EXPECT_EQ(batched.values, scalar.values);
}

}  // namespace
}  // namespace safeopt::elbtunnel
