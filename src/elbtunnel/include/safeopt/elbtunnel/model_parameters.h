// Calibrated parameters of the Elbtunnel height-control statistical model
// (paper §IV-B/C). The paper states the model *structure* and a handful of
// numbers; the remaining constants are calibrated so that every number the
// paper does report is reproduced. Derivation:
//
//  Stated by the paper and taken verbatim:
//   * zone transit times: Normal(µ = 4 min, σ = 2 min) renormalized over
//     [0, ∞)  (§IV-C)                          -> transit_mean/sigma
//   * cost ratio collision : false alarm = 100000 : 1  (§IV-C.1)
//   * engineers' initial guess T1 = T2 = 30 min
//
//  Calibrated against reported results:
//   * hv_left_rate = 0.13/min: high vehicles illegally on a left lane under
//     ODfinal. Pins the Fig. 6 sigmoid 1 − exp(−0.13·T2):
//       T2 = 15.6 -> 86.8% (paper: "more than 80%"),
//       T2 = 30   -> 98.0% (paper: "more than 95%"),
//     and the two design fixes:
//       with LB4:      E[1 − exp(−0.13·min(T2,D))] ≈ 0.39 (paper ≈ 40%),
//       LB at ODfinal: 1 − exp(−0.13·0.3) ≈ 3.8%   (paper ≈ 4%).
//   * p_ohv = 4.2e-4: probability an OHV has ODfinal armed at a random moment.
//     Sets the false-alarm level and hence the optimal T2: the cost slope
//     balance 10^5·p_ohv_critical·φ((T2−4)/2)/(2·0.97725) =
//     p_ohv·0.13·e^(−0.13·T2) holds at T2 ≈ 15.6 together with
//   * p_ohv_critical = 0.011: fraction of OHV passages illegally heading
//     towards the west/mid tubes. Also keeps the collision-risk change from
//     optimizing at p_ohv_critical·P(OT2)(T2*)/p_const1 ≈ 0.06 % (paper:
//     "less than 0.1%").
//   * p_fd_lbpre = 1e-4 and fd_lbpost_rate = 1.68e-6/min: the spurious
//     arming path FDLBpre·FDLBpost(T1). Balances the T1 cost slope at
//     T1 ≈ 19 (paper: "optimal values ... approximately 19 resp. 15.6").
//   * p_const1 = 4.19e-8, p_const2 = 6e-5: the residual cut sets the paper
//     accumulates into Pconst1/Pconst2. p_const1 puts the cost surface in
//     Fig. 5's 0.0046..0.0047 band and dominates collision risk, making the
//     false-alarm improvement ≈ 9.9% (paper: "about 10%").
//
// Every relation above is asserted by tests/elbtunnel/.
#ifndef SAFEOPT_ELBTUNNEL_MODEL_PARAMETERS_H
#define SAFEOPT_ELBTUNNEL_MODEL_PARAMETERS_H

namespace safeopt::elbtunnel {

struct ModelParameters {
  // --- stated by the paper -------------------------------------------------
  double transit_mean_min = 4.0;   // zone transit mean (both zones)
  double transit_sigma_min = 2.0;  // zone transit standard deviation
  double cost_collision = 100000.0;
  double cost_false_alarm = 1.0;
  double engineers_timer_guess_min = 30.0;

  // --- calibrated (see file comment) --------------------------------------
  double hv_left_rate_per_min = 0.13;
  double p_ohv = 4.2e-4;
  double p_ohv_critical = 0.011;
  double p_fd_lbpre = 1e-4;
  double fd_lbpost_rate_per_min = 1.68e-6;
  double p_const1 = 4.19e-8;
  double p_const2 = 6e-5;
  /// OHV occupancy of the ODfinal light barrier (LB-at-ODfinal variant).
  double lb_passage_window_min = 0.3;
  /// Overhead-detector miss probability; enters the residual constants in
  /// the analytic model and the simulator's sensor fault injection.
  double p_od_miss = 1e-3;

  // --- optimization domain (compact intervals, paper §III-B) --------------
  double timer_lower_min = 5.0;
  double timer_upper_min = 40.0;
};

}  // namespace safeopt::elbtunnel

#endif  // SAFEOPT_ELBTUNNEL_MODEL_PARAMETERS_H
