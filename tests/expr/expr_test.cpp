#include "safeopt/expr/expr.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "safeopt/stats/distribution.h"

namespace safeopt::expr {
namespace {

TEST(ParameterAssignmentTest, SetGetContains) {
  ParameterAssignment env;
  EXPECT_FALSE(env.contains("T1"));
  env.set("T1", 19.0);
  env.set("T2", 15.6);
  EXPECT_TRUE(env.contains("T1"));
  EXPECT_DOUBLE_EQ(env.get("T1"), 19.0);
  EXPECT_DOUBLE_EQ(env.get("T2"), 15.6);
  env.set("T1", 30.0);  // overwrite
  EXPECT_DOUBLE_EQ(env.get("T1"), 30.0);
  EXPECT_EQ(env.size(), 2u);
}

TEST(ParameterAssignmentTest, InitializerList) {
  const ParameterAssignment env{{"a", 1.0}, {"b", 2.0}};
  EXPECT_DOUBLE_EQ(env.get("a"), 1.0);
  EXPECT_DOUBLE_EQ(env.get("b"), 2.0);
}

TEST(ExprTest, ConstantEvaluates) {
  EXPECT_DOUBLE_EQ(constant(3.5).evaluate({}), 3.5);
  EXPECT_TRUE(constant(1.0).is_constant());
}

TEST(ExprTest, DefaultIsZero) {
  EXPECT_DOUBLE_EQ(Expr().evaluate({}), 0.0);
}

TEST(ExprTest, ParameterEvaluates) {
  const Expr x = parameter("x");
  EXPECT_DOUBLE_EQ(x.evaluate({{"x", 7.0}}), 7.0);
  EXPECT_FALSE(x.is_constant());
}

TEST(ExprTest, ArithmeticWorks) {
  const Expr x = parameter("x");
  const Expr y = parameter("y");
  const ParameterAssignment env{{"x", 3.0}, {"y", 4.0}};
  EXPECT_DOUBLE_EQ((x + y).evaluate(env), 7.0);
  EXPECT_DOUBLE_EQ((x - y).evaluate(env), -1.0);
  EXPECT_DOUBLE_EQ((x * y).evaluate(env), 12.0);
  EXPECT_DOUBLE_EQ((x / y).evaluate(env), 0.75);
  EXPECT_DOUBLE_EQ((-x).evaluate(env), -3.0);
  EXPECT_DOUBLE_EQ((2.0 * x + 1.0).evaluate(env), 7.0);
  EXPECT_DOUBLE_EQ((1.0 - x).evaluate(env), -2.0);
  EXPECT_DOUBLE_EQ((12.0 / y).evaluate(env), 3.0);
}

TEST(ExprTest, FunctionsWork) {
  const Expr x = parameter("x");
  const ParameterAssignment env{{"x", 2.0}};
  EXPECT_NEAR(exp(x).evaluate(env), std::exp(2.0), 1e-15);
  EXPECT_NEAR(log(x).evaluate(env), std::log(2.0), 1e-15);
  EXPECT_NEAR(sqrt(x).evaluate(env), std::sqrt(2.0), 1e-15);
  EXPECT_NEAR(pow(x, 3.0).evaluate(env), 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(min(x, constant(1.5)).evaluate(env), 1.5);
  EXPECT_DOUBLE_EQ(max(x, constant(1.5)).evaluate(env), 2.0);
  EXPECT_DOUBLE_EQ(clamp(x, 0.0, 1.0).evaluate(env), 1.0);
  EXPECT_DOUBLE_EQ(clamp(x, 0.0, 5.0).evaluate(env), 2.0);
}

TEST(ExprTest, ConstantFoldingCollapsesPureConstants) {
  const Expr folded = constant(2.0) * constant(3.0) + constant(1.0);
  EXPECT_TRUE(folded.is_constant());
  EXPECT_DOUBLE_EQ(folded.evaluate({}), 7.0);
}

TEST(ExprTest, ParameterCollection) {
  const Expr e = parameter("T1") * parameter("T2") + parameter("T1");
  const auto params = e.parameters();
  EXPECT_EQ(params.size(), 2u);
  EXPECT_TRUE(params.contains("T1"));
  EXPECT_TRUE(params.contains("T2"));
}

TEST(ExprTest, CdfAndSurvivalNodes) {
  const auto dist = std::make_shared<stats::TruncatedNormal>(
      stats::TruncatedNormal::nonnegative(4.0, 2.0));
  const Expr t = parameter("T");
  const Expr below = cdf(dist, t);
  const Expr above = survival(dist, t);
  const ParameterAssignment env{{"T", 15.6}};
  EXPECT_NEAR(below.evaluate(env), dist->cdf(15.6), 1e-15);
  EXPECT_NEAR(above.evaluate(env), 1.0 - dist->cdf(15.6), 1e-15);
  EXPECT_NEAR((below + above).evaluate(env), 1.0, 1e-15);
}

TEST(ExprTest, PoissonExposureMatchesClosedForm) {
  const Expr p = poisson_exposure(0.13, parameter("T2"));
  const ParameterAssignment env{{"T2", 15.6}};
  EXPECT_NEAR(p.evaluate(env), 1.0 - std::exp(-0.13 * 15.6), 1e-15);
  // The paper's Fig. 6 value: >80% of correct OHVs alarm at T2 = 15.6.
  EXPECT_GT(p.evaluate(env), 0.8);
}

TEST(ExprTest, Function1EvaluatesAndPrints) {
  const Expr f = function1(
      "square", [](double x) { return x * x; },
      [](double x) { return 2.0 * x; }, parameter("x"));
  EXPECT_DOUBLE_EQ(f.evaluate({{"x", 5.0}}), 25.0);
  EXPECT_EQ(f.to_string(), "square(x)");
}

TEST(ExprTest, ToStringIsReadable) {
  const Expr e = parameter("a") + constant(2.0) * parameter("b");
  EXPECT_EQ(e.to_string(), "(a + (2 * b))");
}

TEST(ExprTest, SharedSubexpressionsEvaluateConsistently) {
  const Expr x = parameter("x");
  const Expr shared = x * x;
  const Expr e = shared + shared;
  EXPECT_DOUBLE_EQ(e.evaluate({{"x", 3.0}}), 18.0);
}

// The paper's Eq. 4 shape: P(H)(X) = Σ ∏ P(PF)(X).
TEST(ExprTest, HazardShapedExpression) {
  const Expr p1 = poisson_exposure(0.1, parameter("T1"));
  const Expr p2 = poisson_exposure(0.2, parameter("T2"));
  const Expr hazard = p1 * p2 + 0.5 * p1;
  const ParameterAssignment env{{"T1", 2.0}, {"T2", 3.0}};
  const double v1 = 1.0 - std::exp(-0.2);
  const double v2 = 1.0 - std::exp(-0.6);
  EXPECT_NEAR(hazard.evaluate(env), v1 * v2 + 0.5 * v1, 1e-14);
}

}  // namespace
}  // namespace safeopt::expr
