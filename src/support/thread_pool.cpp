#include "safeopt/support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "safeopt/support/contracts.h"

namespace safeopt {

namespace {
thread_local bool t_inside_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  t_inside_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A task exception must not unwind the worker (std::terminate) — park
    // the first one for the next wait_idle() instead. parallel_for bodies
    // never reach this catch: its wrapper catches before the pool does.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error && !pending_error_) pending_error_ = std::move(error);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  SAFEOPT_EXPECTS(static_cast<bool>(task));
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    SAFEOPT_EXPECTS(!stopping_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (pending_error_) {
    std::exception_ptr error = std::exchange(pending_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  SAFEOPT_EXPECTS(static_cast<bool>(body));
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);

  // Chunk layout depends only on (n, grain, thread_count): ceil-divide into
  // at most thread_count chunks of at least `grain` indices each.
  const std::size_t max_chunks =
      std::min(thread_count(), (n + grain - 1) / grain);
  if (max_chunks <= 1 || thread_count() <= 1 || t_inside_worker) {
    body(0, n);
    return;
  }
  const std::size_t chunk = (n + max_chunks - 1) / max_chunks;

  std::atomic<std::size_t> remaining{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done;

  std::size_t chunks = 0;
  for (std::size_t begin = 0; begin < n; begin += chunk) ++chunks;
  remaining.store(chunks, std::memory_order_relaxed);

  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    submit([&, begin, end] {
      try {
        body(begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard<std::mutex> lock(done_mutex);
        done.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lock(done_mutex);
  done.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::inside_worker() noexcept { return t_inside_worker; }

}  // namespace safeopt
