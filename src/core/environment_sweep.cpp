#include "safeopt/core/environment_sweep.h"

#include <optional>

#include "safeopt/expr/compiled.h"
#include "safeopt/support/contracts.h"
#include "safeopt/support/strings.h"
#include "safeopt/support/thread_pool.h"

namespace safeopt::core {

std::string SweepTable::to_csv() const {
  std::string out = parameter;
  for (const std::string& label : labels) {
    out += ",";
    out += label;
  }
  out += "\n";
  for (std::size_t k = 0; k < xs.size(); ++k) {
    out += format_double(xs[k]);
    for (const std::vector<double>& series : values) {
      out += ",";
      out += format_double(series[k]);
    }
    out += "\n";
  }
  return out;
}

namespace {

SweepTable sweep_impl(const std::string& parameter, double lo, double hi,
                      std::size_t steps,
                      const expr::ParameterAssignment& base,
                      const std::vector<SweepSeries>& series,
                      ThreadPool* pool) {
  SAFEOPT_EXPECTS(steps >= 2);
  SAFEOPT_EXPECTS(lo < hi);
  SAFEOPT_EXPECTS(!series.empty());

  SweepTable table;
  table.parameter = parameter;
  table.xs.resize(steps);
  table.values.assign(series.size(), std::vector<double>(steps, 0.0));
  for (const SweepSeries& s : series) table.labels.push_back(s.label);
  for (std::size_t k = 0; k < steps; ++k) {
    const double t = static_cast<double>(k) / static_cast<double>(steps - 1);
    table.xs[k] = lo + t * (hi - lo);
  }

  // One compiled tape per series; the swept parameter mutates in place in a
  // prebuilt slot vector (a series need not mention it — e.g. a baseline
  // curve — in which case its row is constant over the sweep).
  struct CompiledSeries {
    expr::CompiledExpr tape;
    std::vector<double> slots;
    std::optional<std::size_t> swept_slot;
  };
  std::vector<CompiledSeries> compiled;
  compiled.reserve(series.size());
  for (const SweepSeries& s : series) {
    CompiledSeries cs{expr::CompiledExpr::compile(s.value), {}, {}};
    const std::vector<std::string>& order = cs.tape.parameter_order();
    cs.slots.resize(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == parameter) {
        cs.swept_slot = i;
      } else {
        cs.slots[i] = base.get(order[i]);
      }
    }
    compiled.push_back(std::move(cs));
  }

  const auto run_series = [&](std::size_t begin, std::size_t end) {
    // parallel_for hands each series index to exactly one chunk, so
    // mutating compiled[s] in place is race-free.
    for (std::size_t s = begin; s < end; ++s) {
      CompiledSeries& cs = compiled[s];
      expr::CompiledExpr::Workspace workspace;
      for (std::size_t k = 0; k < steps; ++k) {
        if (cs.swept_slot.has_value()) cs.slots[*cs.swept_slot] = table.xs[k];
        table.values[s][k] = cs.tape.evaluate(cs.slots, workspace);
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(series.size(), run_series);
  } else {
    run_series(0, series.size());
  }
  return table;
}

}  // namespace

SweepTable sweep_parameter(const std::string& parameter, double lo, double hi,
                           std::size_t steps,
                           const expr::ParameterAssignment& base,
                           const std::vector<SweepSeries>& series) {
  return sweep_impl(parameter, lo, hi, steps, base, series, nullptr);
}

SweepTable sweep_parameter(const std::string& parameter, double lo, double hi,
                           std::size_t steps,
                           const expr::ParameterAssignment& base,
                           const std::vector<SweepSeries>& series,
                           ThreadPool& pool) {
  return sweep_impl(parameter, lo, hi, steps, base, series, &pool);
}

}  // namespace safeopt::core
