#include "safeopt/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace safeopt::sim {
namespace {

TEST(SimulatorTest, ProcessesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.processed_events(), 3u);
}

TEST(SimulatorTest, SameTimeEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(7.5, [&] { seen = sim.now(); });
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
  EXPECT_DOUBLE_EQ(sim.now(), 7.5);
}

TEST(SimulatorTest, CallbacksCanScheduleFollowUps) {
  Simulator sim;
  int chain = 0;
  // A self-rescheduling process: the standard DES idiom.
  std::function<void()> process = [&] {
    ++chain;
    if (chain < 5) sim.schedule_in(1.0, process);
  };
  sim.schedule_at(0.0, process);
  sim.run();
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(SimulatorTest, RunUntilLeavesFutureEventsQueued) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilProcessesBoundaryEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(5.0);  // inclusive horizon
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, ScheduleInIsRelative) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(2.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(3.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 2.0);
  EXPECT_DOUBLE_EQ(times[1], 5.0);
}

TEST(SimulatorDeathTest, RefusesSchedulingIntoThePast) {
  Simulator sim;
  sim.schedule_at(5.0, [&] {
    // now() == 5; scheduling at 3 must violate the precondition.
  });
  sim.run();
  EXPECT_DEATH(sim.schedule_at(3.0, [] {}), "precondition");
}

}  // namespace
}  // namespace safeopt::sim
