#include "safeopt/core/safety_optimizer.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <string>

namespace safeopt::core {
namespace {

using expr::constant;
using expr::parameter;

/// A synthetic two-hazard system with a known interior optimum:
///   P(H1)(x) = e^{-x}        (risk falls with the free parameter)
///   P(H2)(x) = 0.01·x        (nuisance rises with it)
///   f_cost   = A·e^{-x} + B·0.01·x, argmin x* = ln(A / (0.01·B)).
struct SyntheticSystem {
  double a = 50.0;
  double b = 1.0;

  [[nodiscard]] SafetyOptimizer make() const {
    CostModel model;
    model.add_hazard({"H1", expr::exp(-parameter("x")), a});
    model.add_hazard({"H2", 0.01 * parameter("x"), b});
    ParameterSpace space{{"x", 0.1, 20.0, "", "free parameter"}};
    return SafetyOptimizer(std::move(model), std::move(space));
  }

  [[nodiscard]] double analytic_optimum() const {
    return std::log(a / (0.01 * b));
  }
};

class EveryAlgorithm : public ::testing::TestWithParam<Algorithm> {};

TEST_P(EveryAlgorithm, FindsTheAnalyticOptimum) {
  const SyntheticSystem system;
  const SafetyOptimizer optimizer = system.make();
  const SafetyOptimizationResult result = optimizer.optimize(GetParam());
  EXPECT_NEAR(result.optimization.argmin[0], system.analytic_optimum(), 0.05)
      << to_string(GetParam());
  EXPECT_EQ(result.hazard_probabilities.size(), 2u);
  EXPECT_NEAR(result.cost, result.optimization.value, 1e-15);
  EXPECT_NEAR(result.optimal_parameters.get("x"),
              result.optimization.argmin[0], 1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EveryAlgorithm,
    ::testing::Values(Algorithm::kGridSearch, Algorithm::kNelderMead,
                      Algorithm::kMultiStartNelderMead,
                      Algorithm::kGradientDescent, Algorithm::kHookeJeeves,
                      Algorithm::kCoordinateDescent,
                      Algorithm::kSimulatedAnnealing,
                      Algorithm::kDifferentialEvolution),
    [](const auto& param_info) {
      // Gtest test names must be alphanumeric: strip "()" etc.
      std::string name(to_string(param_info.param));
      std::erase_if(name, [](char c) {
        return (std::isalnum(static_cast<unsigned char>(c)) == 0);
      });
      return name;
    });

TEST(SafetyOptimizerTest, EvaluateAtReportsConfiguration) {
  const SyntheticSystem system;
  const SafetyOptimizer optimizer = system.make();
  const auto at = optimizer.evaluate_at({{"x", 2.0}});
  EXPECT_NEAR(at.hazard_probabilities[0], std::exp(-2.0), 1e-12);
  EXPECT_NEAR(at.hazard_probabilities[1], 0.02, 1e-12);
  EXPECT_NEAR(at.cost, 50.0 * std::exp(-2.0) + 0.02, 1e-12);
}

TEST(SafetyOptimizerTest, CompareReportsRelativeChanges) {
  const SyntheticSystem system;
  const SafetyOptimizer optimizer = system.make();
  const auto optimal = optimizer.optimize(Algorithm::kNelderMead);
  const expr::ParameterAssignment baseline{{"x", 2.0}};
  const ComparisonReport report = optimizer.compare(baseline, optimal);
  EXPECT_GT(report.baseline_cost, report.optimal_cost);
  EXPECT_LT(report.cost_relative_change, 0.0);
  ASSERT_EQ(report.hazards.size(), 2u);
  // Moving from x=2 to x*≈8.5: H1 falls, H2 rises.
  EXPECT_LT(report.hazards[0].relative_change, 0.0);
  EXPECT_GT(report.hazards[1].relative_change, 0.0);
  EXPECT_NEAR(report.hazards[0].baseline_probability, std::exp(-2.0), 1e-12);
}

TEST(SafetyOptimizerTest, ProblemExposesExactGradient) {
  const SyntheticSystem system;
  const SafetyOptimizer optimizer = system.make();
  const opt::Problem problem = optimizer.problem();
  ASSERT_TRUE(problem.has_gradient());
  const std::vector<double> at{3.0};
  const auto grad = problem.gradient(at);
  // d/dx [50 e^{-x} + 0.01x] = −50 e^{-x} + 0.01.
  EXPECT_NEAR(grad[0], -50.0 * std::exp(-3.0) + 0.01, 1e-10);
  EXPECT_NEAR(problem.objective(at), 50.0 * std::exp(-3.0) + 0.03, 1e-12);
}

TEST(SafetyOptimizerTest, TwoParameterSeparableSystem) {
  // Two parameters controlling two separate hazards; both optima are known.
  CostModel model;
  model.add_hazard({"A", expr::exp(-parameter("x")), 100.0});
  model.add_hazard({"A_nuisance", 0.1 * parameter("x"), 1.0});
  model.add_hazard({"B", expr::exp(-2.0 * parameter("y")), 100.0});
  model.add_hazard({"B_nuisance", 0.1 * parameter("y"), 1.0});
  ParameterSpace space{{"x", 0.1, 20.0, "", ""}, {"y", 0.1, 20.0, "", ""}};
  const SafetyOptimizer optimizer(std::move(model), std::move(space));
  const auto result = optimizer.optimize(Algorithm::kMultiStartNelderMead);
  EXPECT_NEAR(result.optimization.argmin[0], std::log(1000.0), 0.05);
  EXPECT_NEAR(result.optimization.argmin[1], 0.5 * std::log(2000.0), 0.05);
}

TEST(SafetyOptimizerDeathTest, RejectsUnknownParameters) {
  CostModel model;
  model.add_hazard({"H", parameter("unknown"), 1.0});
  ParameterSpace space{{"x", 0.0, 1.0, "", ""}};
  EXPECT_DEATH(SafetyOptimizer(std::move(model), std::move(space)),
               "precondition");
}

TEST(AlgorithmTest, ToStringNames) {
  EXPECT_EQ(to_string(Algorithm::kGridSearch), "GridSearch");
  EXPECT_EQ(to_string(Algorithm::kMultiStartNelderMead),
            "MultiStart(NelderMead)");
  EXPECT_EQ(to_string(Algorithm::kDifferentialEvolution),
            "DifferentialEvolution");
}

}  // namespace
}  // namespace safeopt::core
