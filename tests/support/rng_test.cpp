#include "safeopt/support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace safeopt {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a(), b());
}

TEST(Xoshiro256ppTest, IsDeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256ppTest, MatchesReferenceFirstOutputs) {
  // Fixed regression values: the exact stream matters for experiment
  // reproducibility, so any change to seeding or the generator must be
  // deliberate and visible here.
  Rng rng(0);
  const std::uint64_t first = rng();
  Rng rng2(0);
  EXPECT_EQ(first, rng2());
  EXPECT_NE(first, rng());  // stream advances
}

TEST(Xoshiro256ppTest, JumpCreatesNonOverlappingStream) {
  Rng base(7);
  Rng jumped(7);
  jumped.jump();
  std::set<std::uint64_t> first_stream;
  for (int i = 0; i < 1000; ++i) first_stream.insert(base());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(first_stream.contains(jumped()));
  }
}

TEST(Uniform01Test, StaysInHalfOpenUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 100000; ++i) {
    const double u = uniform01(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Uniform01Test, MeanIsNearOneHalf) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += uniform01(rng);
  EXPECT_NEAR(sum / kSamples, 0.5, 0.005);
}

TEST(UniformTest, RespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = uniform(rng, -3.0, 7.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.5);
  }
}

TEST(BernoulliTest, EdgeProbabilitiesAreDegenerate) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(bernoulli(rng, 0.0));
    EXPECT_TRUE(bernoulli(rng, 1.0));
    EXPECT_FALSE(bernoulli(rng, -0.5));
    EXPECT_TRUE(bernoulli(rng, 1.5));
  }
}

TEST(BernoulliTest, FrequencyMatchesProbability) {
  Rng rng(17);
  constexpr int kTrials = 100000;
  int hits = 0;
  for (int i = 0; i < kTrials; ++i) hits += bernoulli(rng, 0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(UniformIndexTest, CoversFullRangeWithoutOverflow) {
  Rng rng(23);
  std::array<int, 7> counts{};
  constexpr int kTrials = 70000;
  for (int i = 0; i < kTrials; ++i) {
    const std::uint64_t idx = uniform_index(rng, counts.size());
    ASSERT_LT(idx, counts.size());
    ++counts[idx];
  }
  // Each bucket should get roughly 1/7th.
  for (const int count : counts) {
    EXPECT_NEAR(static_cast<double>(count) / kTrials, 1.0 / 7.0, 0.01);
  }
}

TEST(UniformIndexTest, SingleBucketAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_index(rng, 1), 0u);
}

}  // namespace
}  // namespace safeopt
