// core::Study — the front door of the library (ROADMAP: "multi-model
// quantification service layer").
//
// The paper's core idea is that safety optimization is a *combination*: any
// fault-tree quantification backend glued to any numeric solver over the
// free parameters X_1..X_l (§III). Study makes the combination explicit and
// swappable at runtime:
//
//   core::Study study(model.cost_model(), model.parameter_space());
//   const auto result = study.solver("multi_start", config)
//                            .observe(progress_callback)
//                            .run();
//
// and, when hazards carry their fault-tree derivations, quantification by
// any registered engine on the compiled-tape hot path:
//
//   study.hazard_tree("HCol", tree, quantification)
//        .engine("bdd");
//   const auto exact = study.quantify("HCol", result.optimal_parameters);
//
// Study subsumes SafetyOptimizer::optimize/evaluate_at/compare (it wraps a
// SafetyOptimizer and shares its once-compiled problem, so repeated run()
// calls reuse one tape) and produces bit-identical results to the legacy
// enum path for equivalent solver selections.
#ifndef SAFEOPT_CORE_STUDY_H
#define SAFEOPT_CORE_STUDY_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "safeopt/core/compiled_quantification.h"
#include "safeopt/core/parameterized_fta.h"
#include "safeopt/core/quantification_engine.h"
#include "safeopt/core/safety_optimizer.h"
#include "safeopt/opt/solver.h"

namespace safeopt::core {

class Study {
 public:
  /// The cost model's expressions may only mention parameters of `space`.
  Study(CostModel model, ParameterSpace space);

  // ---- fluent configuration (each returns *this) ---------------------------

  /// Selects the numeric solver by registry name. Unknown names surface as
  /// std::invalid_argument from run(). Default: "multi_start" (the legacy
  /// default, multi-start Nelder–Mead).
  Study& solver(std::string name, opt::SolverConfig config = {});

  /// Deprecated-enum convenience: equivalent to solver() with the shim
  /// mapping of safety_optimizer.h.
  Study& algorithm(Algorithm algorithm);

  /// Progress observer for run(); overridden by an observer already present
  /// in the solver config.
  Study& observe(opt::ProgressObserver observer);

  /// Selects the quantification engine (by registry name) used by
  /// quantify(). Default: "fta". Resets engines already built for attached
  /// hazard trees.
  Study& engine(std::string name, EngineConfig config = {});

  /// Attaches the fault-tree derivation of the named hazard so engines can
  /// quantify it. `tree` and `quantification` are referenced, not copied —
  /// they must outlive the Study. The leaf tapes are compiled once (shared
  /// CompiledQuantification) so every engine evaluates parameter points on
  /// the compiled hot path.
  Study& hazard_tree(std::string hazard, const fta::FaultTree& tree,
                     const ParameterizedQuantification& quantification);

  // ---- execution -----------------------------------------------------------

  /// Minimizes f_cost over the parameter box with the configured solver.
  [[nodiscard]] SafetyOptimizationResult run() const;

  /// Evaluates cost and hazard probabilities at a configuration.
  [[nodiscard]] SafetyOptimizationResult evaluate_at(
      const expr::ParameterAssignment& configuration) const;

  /// Baseline-vs-optimum comparison (paper §IV-C.2 reporting).
  [[nodiscard]] ComparisonReport compare(
      const expr::ParameterAssignment& baseline,
      const SafetyOptimizationResult& optimal) const;

  /// Quantifies the named hazard at `at` with the configured engine: leaf
  /// probabilities come off the compiled tapes (CompiledQuantification::
  /// input_at), the engine turns them into a top-event probability. The
  /// hazard must have been attached via hazard_tree() (throws
  /// std::invalid_argument otherwise). Not thread-safe: engines and tapes
  /// are built lazily per Study.
  [[nodiscard]] QuantificationResult quantify(
      std::string_view hazard, const expr::ParameterAssignment& at) const;

  // ---- access --------------------------------------------------------------

  /// The compiled numeric problem; one tape per Study, address-stable.
  /// The rvalue overload returns a copy so a temporary Study cannot hand
  /// out a dangling reference.
  [[nodiscard]] const opt::Problem& problem() const& {
    return optimizer_.problem();
  }
  [[nodiscard]] opt::Problem problem() const&& { return problem(); }
  [[nodiscard]] const CostModel& model() const noexcept {
    return optimizer_.model();
  }
  [[nodiscard]] const ParameterSpace& space() const noexcept {
    return optimizer_.space();
  }
  [[nodiscard]] const std::string& solver_name() const noexcept {
    return solver_name_;
  }
  [[nodiscard]] const std::string& engine_name() const noexcept {
    return engine_name_;
  }

 private:
  struct TreeHazard {
    std::string hazard;
    const fta::FaultTree* tree = nullptr;
    const ParameterizedQuantification* quantification = nullptr;
    // Lazily built; mutable state of the (single-threaded) quantify path.
    mutable std::unique_ptr<CompiledQuantification> compiled;
    mutable std::unique_ptr<QuantificationEngine> engine;
  };

  SafetyOptimizer optimizer_;
  std::string solver_name_ = "multi_start";
  opt::SolverConfig solver_config_ =
      algorithm_solver_config(Algorithm::kMultiStartNelderMead);
  std::string engine_name_ = "fta";
  EngineConfig engine_config_;
  opt::ProgressObserver observer_;
  std::vector<TreeHazard> tree_hazards_;
};

}  // namespace safeopt::core

#endif  // SAFEOPT_CORE_STUDY_H
