// The backend registry and runtime dispatch policy (see eval_backend.h).
#include "safeopt/expr/eval_backend.h"

#include <cstdlib>
#include <utility>

#include "backend_factories.h"
#include "safeopt/support/contracts.h"
#include "safeopt/support/mutex.h"
#include "safeopt/support/strings.h"

namespace safeopt::expr {

namespace {

struct RegistryState {
  Mutex mutex;
  // Registration order. Entries are never destroyed: a replaced backend
  // moves to `retired`, so pointers handed out by find()/active() stay
  // valid for the process lifetime.
  std::vector<std::unique_ptr<EvalBackend>> backends;
  std::vector<std::unique_ptr<EvalBackend>> retired;
  std::string override_name;
  std::string env_name;

  RegistryState() {
    for (auto* make : {detail::make_generic_backend, detail::make_avx2_backend,
                       detail::make_avx512_backend}) {
      if (std::unique_ptr<EvalBackend> backend = make()) {
        backends.push_back(std::move(backend));
      }
    }
    read_environment();
  }

  void read_environment() {
    const char* env = std::getenv("SAFEOPT_BACKEND");
    env_name = env != nullptr ? env : "";
  }

  [[nodiscard]] const EvalBackend* find_locked(
      std::string_view name) const noexcept {
    for (const auto& backend : backends) {
      if (backend->name() == name) return backend.get();
    }
    return nullptr;
  }

  /// The runtime-dispatch pick: highest priority among available backends
  /// (first registration wins ties). "generic" is always available, so
  /// this never returns null.
  [[nodiscard]] const EvalBackend* best_available_locked() const noexcept {
    const EvalBackend* best = nullptr;
    for (const auto& backend : backends) {
      if (!backend->available()) continue;
      if (best == nullptr || backend->priority() > best->priority()) {
        best = backend.get();
      }
    }
    return best;
  }

  [[nodiscard]] std::string names_locked() const {
    std::string names;
    for (const auto& backend : backends) {
      if (!names.empty()) names += ", ";
      names += backend->name();
    }
    return names;
  }
};

RegistryState& state() {
  static RegistryState instance;
  return instance;
}

}  // namespace

bool BackendRegistry::add(std::unique_ptr<EvalBackend> backend) {
  SAFEOPT_EXPECTS(backend != nullptr && !backend->name().empty());
  RegistryState& registry = state();
  const MutexLock lock(registry.mutex);
  for (auto& existing : registry.backends) {
    if (existing->name() == backend->name()) {
      registry.retired.push_back(
          std::exchange(existing, std::move(backend)));
      return false;
    }
  }
  registry.backends.push_back(std::move(backend));
  return true;
}

const EvalBackend* BackendRegistry::find(std::string_view name) {
  RegistryState& registry = state();
  const MutexLock lock(registry.mutex);
  return registry.find_locked(name);
}

std::vector<std::string> BackendRegistry::registered() {
  RegistryState& registry = state();
  const MutexLock lock(registry.mutex);
  std::vector<std::string> names;
  names.reserve(registry.backends.size());
  for (const auto& backend : registry.backends) {
    names.emplace_back(backend->name());
  }
  return names;
}

const EvalBackend& BackendRegistry::generic() {
  RegistryState& registry = state();
  const MutexLock lock(registry.mutex);
  const EvalBackend* backend = registry.find_locked("generic");
  SAFEOPT_ASSERT(backend != nullptr);
  return *backend;
}

const EvalBackend& BackendRegistry::active() {
  return *resolve({}).backend;
}

BackendRegistry::Selection BackendRegistry::resolve(
    std::string_view requested) {
  RegistryState& registry = state();
  const MutexLock lock(registry.mutex);
  Selection selection;
  std::string name{requested};
  std::string source = "requested backend";
  if (name.empty() && !registry.override_name.empty()) {
    name = registry.override_name;
    source = "backend override";
  }
  if (name.empty() && !registry.env_name.empty()) {
    name = registry.env_name;
    source = "SAFEOPT_BACKEND";
  }
  selection.requested = name;
  const EvalBackend* best = registry.best_available_locked();
  SAFEOPT_ASSERT(best != nullptr);
  if (name.empty()) {
    selection.backend = best;
    return selection;
  }
  const EvalBackend* found = registry.find_locked(name);
  if (found == nullptr) {
    selection.backend = best;
    selection.diagnostic =
        concat(source, " \"", name, "\" is not registered (registered: ",
               registry.names_locked(), "); using \"", best->name(), "\"");
    return selection;
  }
  if (!found->available()) {
    selection.backend = best;
    selection.diagnostic =
        concat(source, " \"", name,
               "\" is not available on this cpu; using \"", best->name(),
               "\"");
    return selection;
  }
  selection.backend = found;
  return selection;
}

void BackendRegistry::set_override(std::string name) {
  RegistryState& registry = state();
  const MutexLock lock(registry.mutex);
  registry.override_name = std::move(name);
}

std::string BackendRegistry::override_name() {
  RegistryState& registry = state();
  const MutexLock lock(registry.mutex);
  return registry.override_name;
}

void BackendRegistry::refresh_environment() {
  RegistryState& registry = state();
  const MutexLock lock(registry.mutex);
  registry.read_environment();
}

}  // namespace safeopt::expr
