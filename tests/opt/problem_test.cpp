#include "safeopt/opt/problem.h"

#include <gtest/gtest.h>

#include <cmath>

namespace safeopt::opt {
namespace {

TEST(BoxTest, ConstructionAndQueries) {
  const Box box({0.0, -1.0}, {2.0, 1.0});
  EXPECT_EQ(box.dimension(), 2u);
  EXPECT_DOUBLE_EQ(box.width(0), 2.0);
  EXPECT_DOUBLE_EQ(box.width(1), 2.0);
  const auto center = box.center();
  EXPECT_DOUBLE_EQ(center[0], 1.0);
  EXPECT_DOUBLE_EQ(center[1], 0.0);
}

TEST(BoxTest, ContainsChecksAllAxes) {
  const Box box({0.0, 0.0}, {1.0, 1.0});
  EXPECT_TRUE(box.contains(std::vector<double>{0.5, 0.5}));
  EXPECT_TRUE(box.contains(std::vector<double>{0.0, 1.0}));
  EXPECT_FALSE(box.contains(std::vector<double>{-0.1, 0.5}));
  EXPECT_FALSE(box.contains(std::vector<double>{0.5, 1.1}));
  EXPECT_FALSE(box.contains(std::vector<double>{0.5}));  // wrong dimension
}

TEST(BoxTest, ProjectClampsComponentwise) {
  const Box box({0.0, 0.0}, {1.0, 1.0});
  const auto projected = box.project(std::vector<double>{-3.0, 0.4});
  EXPECT_DOUBLE_EQ(projected[0], 0.0);
  EXPECT_DOUBLE_EQ(projected[1], 0.4);
}

TEST(BoxTest, IntervalFactory) {
  const Box box = Box::interval(5.0, 40.0);
  EXPECT_EQ(box.dimension(), 1u);
  EXPECT_DOUBLE_EQ(box.lower[0], 5.0);
  EXPECT_DOUBLE_EQ(box.upper[0], 40.0);
}

TEST(BoxTest, DegenerateIntervalAllowed) {
  const Box box({1.0}, {1.0});
  EXPECT_TRUE(box.contains(std::vector<double>{1.0}));
  EXPECT_DOUBLE_EQ(box.width(0), 0.0);
}

TEST(FiniteDifferenceGradientTest, MatchesAnalyticOnQuadratic) {
  const Box box({-10.0, -10.0}, {10.0, 10.0});
  const Objective f = [](std::span<const double> x) {
    return 2.0 * x[0] * x[0] + 3.0 * x[1] * x[1] + x[0] * x[1];
  };
  const std::vector<double> at{1.5, -2.0};
  std::size_t evals = 0;
  const auto grad = finite_difference_gradient(f, box, at, &evals);
  EXPECT_NEAR(grad[0], 4.0 * 1.5 + (-2.0), 1e-4);
  EXPECT_NEAR(grad[1], 6.0 * (-2.0) + 1.5, 1e-4);
  EXPECT_EQ(evals, 4u);
}

TEST(FiniteDifferenceGradientTest, OneSidedAtTheBoundary) {
  const Box box({0.0}, {1.0});
  const Objective f = [](std::span<const double> x) { return x[0] * x[0]; };
  // At the boundary the scheme must not step outside the box.
  const auto grad = finite_difference_gradient(f, box, std::vector<double>{0.0});
  EXPECT_NEAR(grad[0], 0.0, 1e-4);
  const auto grad_hi =
      finite_difference_gradient(f, box, std::vector<double>{1.0});
  EXPECT_NEAR(grad_hi[0], 2.0, 1e-4);
}

TEST(ProblemTest, HasGradientReflectsAssignment) {
  Problem p;
  EXPECT_FALSE(p.has_gradient());
  p.gradient = [](std::span<const double> x) {
    return std::vector<double>(x.size(), 0.0);
  };
  EXPECT_TRUE(p.has_gradient());
}

}  // namespace
}  // namespace safeopt::opt
