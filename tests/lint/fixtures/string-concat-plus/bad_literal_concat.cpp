// Fixture: every form of literal operator+ the rule must catch.
#include <string>

std::string f(const std::string& name, int n) {
  std::string message = "prefix " + name;              // literal on the left
  message = name + " suffix";                          // literal on the right
  message += "count=" + std::to_string(n);             // rvalue chain
  throw_away("tree \"" + name + "\" malformed");       // both sides
  return message;
}
