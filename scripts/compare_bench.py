#!/usr/bin/env python3
"""CI gate for bench_compiled_eval: fail on performance or contract regressions.

Usage: compare_bench.py BASELINE.json FRESH.json [--overhead OVERHEAD.json]

Compares the fresh benchmark JSON against the committed baseline
(BENCH_compiled_eval.json). Two kinds of checks:

  * contracts — every bitwise-identity boolean in the fresh run must be
    true (lane/thread invariance, gradient identity, identical optima), and
    the 8-lane kernel must keep its >= 2x speedup over the single-lane
    batch path;
  * throughput — each ns/eval metric, *normalized by the same run's
    tree-walk ns/eval*, must not regress more than REGRESSION_LIMIT versus
    the baseline. Normalizing by the tree walk (a fixed workload measured
    in the same process) calibrates away machine-speed differences between
    the baseline host and the CI runner, so the gate measures the compiled
    engine's speedup, not the runner's clock.

With --overhead, additionally gates the solver-registry report written by
`bench_optimizers --overhead-json`: every solver's registry-dispatched solve
must produce bit-identical results to the direct construction and add less
than OVERHEAD_LIMIT wall-clock overhead. Both paths are timed in the same
process on the same problem, so no normalization is needed.

Exit status: 0 clean, 1 regression or violated contract, 2 usage error.
"""

import json
import sys

REGRESSION_LIMIT = 0.25  # fail when normalized ns/eval grows by more than 25%
OVERHEAD_LIMIT = 0.05  # registry dispatch may cost at most 5% per solve

CONTRACT_FLAGS = [
    "surfaces_identical",
    "lanes_invariant",
    "gradients_identical",
    "grid_search_identical",
    "de_identical",
]

# Gated metrics (ns/eval, lower is better). The threaded batch is reported
# but not gated: CI runner core counts vary run to run.
GATED_METRICS = [
    "tape_ns_per_eval",
    "lane1_ns_per_eval",
    "lane4_ns_per_eval",
    "lane8_ns_per_eval",
    "grad_point_ns_per_eval",
    "grad_lane_ns_per_eval",
]
REPORT_ONLY_METRICS = ["batchn_ns_per_eval"]

# One-shot latencies (not per-eval): reported raw, never normalized or
# gated. load_to_first_eval_ns tracks the declarative pipeline — document
# parse + Study::from_document + first compiled evaluation.
RAW_REPORT_METRICS = ["load_to_first_eval_ns"]

MIN_LANE8_SPEEDUP = 2.0  # acceptance criterion: 8 lanes vs single-lane batch


def check_overhead(path, failures):
    with open(path) as f:
        report = json.load(f)
    print(f"\n{'solver':<26}{'direct ns':>14}{'registry ns':>14}{'overhead':>10}  gate")
    for row in report["solvers"]:
        overhead = row["registry_ns_per_solve"] / row["direct_ns_per_solve"] - 1.0
        verdict = "ok"
        if not row["identical"]:
            verdict = "FAIL"
            failures.append(
                f"{row['name']}: registry path result differs from direct call"
            )
        if overhead > OVERHEAD_LIMIT:
            verdict = "FAIL"
            failures.append(
                f"{row['name']}: registry dispatch adds {overhead:+.1%} "
                f"(limit {OVERHEAD_LIMIT:+.0%})"
            )
        print(
            f"{row['name']:<26}{row['direct_ns_per_solve']:>14.0f}"
            f"{row['registry_ns_per_solve']:>14.0f}{overhead:>+9.1%}  {verdict}"
        )


def main(argv):
    overhead_path = None
    if len(argv) >= 3 and argv[-2] == "--overhead":
        overhead_path = argv[-1]
        argv = argv[:-2]
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        baseline = json.load(f)
    with open(argv[2]) as f:
        fresh = json.load(f)

    failures = []

    for flag in CONTRACT_FLAGS:
        if fresh.get(flag) is not True:
            failures.append(f"contract violated: {flag} = {fresh.get(flag)}")

    lane8_speedup = fresh.get("speedup_lane8_vs_lane1", 0.0)
    if lane8_speedup < MIN_LANE8_SPEEDUP:
        failures.append(
            f"8-lane kernel speedup over single-lane batch fell to "
            f"{lane8_speedup:.2f}x (minimum {MIN_LANE8_SPEEDUP:.1f}x)"
        )

    base_tree = baseline["tree_ns_per_eval"]
    fresh_tree = fresh["tree_ns_per_eval"]
    print(f"{'metric':<28}{'baseline':>12}{'fresh':>12}{'norm Δ':>10}  gate")
    for metric in GATED_METRICS + REPORT_ONLY_METRICS:
        base_norm = baseline[metric] / base_tree
        fresh_norm = fresh[metric] / fresh_tree
        delta = fresh_norm / base_norm - 1.0
        gated = metric in GATED_METRICS
        verdict = "ok"
        if gated and delta > REGRESSION_LIMIT:
            verdict = "FAIL"
            failures.append(
                f"{metric}: normalized ns/eval regressed {delta:+.1%} "
                f"(limit {REGRESSION_LIMIT:+.0%})"
            )
        elif not gated:
            verdict = "info"
        print(
            f"{metric:<28}{baseline[metric]:>12.1f}{fresh[metric]:>12.1f}"
            f"{delta:>+9.1%}  {verdict}"
        )
    for metric in RAW_REPORT_METRICS:
        base_value = baseline.get(metric)
        fresh_value = fresh.get(metric)
        if not base_value or not fresh_value:
            continue  # absent (older JSON) or 0 (skipped: model not found)
        delta = fresh_value / base_value - 1.0
        print(
            f"{metric:<28}{base_value:>12.1f}{fresh_value:>12.1f}"
            f"{delta:>+9.1%}  info"
        )

    if overhead_path is not None:
        check_overhead(overhead_path, failures)

    if failures:
        print("\nbenchmark gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nbenchmark gate passed (lane8 {lane8_speedup:.2f}x vs lane1)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
