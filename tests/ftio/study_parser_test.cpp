#include "safeopt/ftio/study_document.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "safeopt/expr/parse.h"
#include "safeopt/fta/cut_sets.h"
#include "safeopt/ftio/parser.h"

namespace safeopt::ftio {
namespace {

constexpr const char* kElbtunnelStudy = R"(
# Elbtunnel height control (paper SIV), as a study document.
param T1 in [5, 40] unit "min" desc "runtime of timer 1";
param T2 in [5, 40] unit "min";

tree HCol;
toplevel Collision;
Collision or OtherCollisionCauses OT1_critical OT2_critical;
OT1_critical inhibit OT1 OHVcritical;
OT2_critical inhibit OT2 OHVcritical;
OtherCollisionCauses prob = 4.19e-08;
OT1 prob = survival[TruncatedNormal(4, 2, [0, inf])](T1);
OT2 prob = survival[TruncatedNormal(4, 2, [0, inf])](T2);
OHVcritical condition prob = 0.011;

tree HAlr;
toplevel FalseAlarm;
FalseAlarm or OtherFalseAlarmCauses HVODfinal_whileArmed;
HVODfinal_whileArmed inhibit HVODfinal ODfinalArmed;
OtherFalseAlarmCauses prob = 6e-05;
HVODfinal prob = 1 - exp(-0.13 * T2);
ODfinalArmed condition prob = 0.00042 + 9.9958e-05 * (1 - exp(-1.68e-06 * T1));

hazard HCol cost = 100000;
hazard HAlr cost = 1;
solver multi_start starts = 8 inner = nelder_mead;
engine fta method = rare_event;
formula rare_event;
)";

TEST(StudyParserTest, ParsesACompleteStudyDocument) {
  const StudyDocument doc = parse_study(kElbtunnelStudy);

  ASSERT_EQ(doc.parameters.size(), 2u);
  EXPECT_EQ(doc.parameters[0].name, "T1");
  EXPECT_EQ(doc.parameters[0].lower, 5.0);
  EXPECT_EQ(doc.parameters[0].upper, 40.0);
  EXPECT_EQ(doc.parameters[0].unit, "min");
  EXPECT_EQ(doc.parameters[0].description, "runtime of timer 1");
  EXPECT_EQ(doc.parameter_names(),
            (std::vector<std::string>{"T1", "T2"}));

  ASSERT_EQ(doc.trees.size(), 2u);
  const TreeModel* hcol = doc.find_tree("HCol");
  ASSERT_NE(hcol, nullptr);
  EXPECT_EQ(hcol->tree.basic_event_count(), 3u);
  EXPECT_EQ(hcol->tree.condition_count(), 1u);
  EXPECT_TRUE(hcol->tree.validate().empty());

  const LeafProbability* ot1 = hcol->find_leaf("OT1");
  ASSERT_NE(ot1, nullptr);
  EXPECT_FALSE(ot1->is_condition);
  EXPECT_EQ(ot1->probability.parameters(),
            (std::set<std::string>{"T1"}));

  const TreeModel* halr = doc.find_tree("HAlr");
  ASSERT_NE(halr, nullptr);
  const LeafProbability* armed = halr->find_leaf("ODfinalArmed");
  ASSERT_NE(armed, nullptr);
  EXPECT_TRUE(armed->is_condition);

  ASSERT_EQ(doc.hazards.size(), 2u);
  EXPECT_EQ(doc.hazards[0].tree, "HCol");
  EXPECT_EQ(doc.hazards[0].cost, 100000.0);

  ASSERT_TRUE(doc.solver.has_value());
  EXPECT_EQ(doc.solver->name, "multi_start");
  const OptionValue* starts = doc.solver->find_option("starts");
  ASSERT_NE(starts, nullptr);
  EXPECT_EQ(starts->kind, OptionValue::Kind::kNumber);
  EXPECT_EQ(starts->number, 8.0);
  const OptionValue* inner = doc.solver->find_option("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->text, "nelder_mead");

  ASSERT_TRUE(doc.engine.has_value());
  EXPECT_EQ(doc.engine->name, "fta");
  EXPECT_EQ(doc.formula.value_or(""), "rare_event");
}

TEST(StudyParserTest, V1DocumentsParseUnchanged) {
  // The v1 dialect is a subset: one tree, constant probabilities, no
  // sections. Both entry points must agree on it.
  constexpr const char* kV1 = R"(
tree Overheat;
toplevel Overheat_top;
Overheat_top or CoolingLost SensorBlind;
CoolingLost  2of3 PumpA PumpB PumpC;
SensorBlind  and TempSensor1 TempSensor2;
PumpA prob = 0.02;
PumpB prob = 0.02;
PumpC prob = 0.02;
TempSensor1 prob = 0.001;
TempSensor2 prob = 0.001;
)";
  const StudyDocument doc = parse_study(kV1);
  ASSERT_EQ(doc.trees.size(), 1u);
  EXPECT_EQ(doc.trees[0].tree.name(), "Overheat");
  EXPECT_TRUE(doc.hazards.empty());
  EXPECT_FALSE(doc.solver.has_value());

  const ParsedFaultTree v1 = parse_fault_tree(kV1);
  EXPECT_EQ(v1.tree.basic_event_count(),
            doc.trees[0].tree.basic_event_count());
  const auto id = v1.tree.find("PumpA");
  ASSERT_TRUE(id.has_value());
  EXPECT_DOUBLE_EQ(
      v1.probabilities.basic_event_probability[v1.tree.basic_event_ordinal(
          *id)],
      0.02);
}

TEST(StudyParserTest, ParseFaultTreeRejectsParameterizedDocuments) {
  try {
    (void)parse_fault_tree(kElbtunnelStudy);
    FAIL();
  } catch (const ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("parse_study"),
              std::string::npos)
        << error.what();
  }
}

TEST(StudyParserTest, LeafExpressionsShareSubexpressionsAcrossTrees) {
  // The same parameter may appear in several trees; each leaf expression is
  // parsed against the full document symbol table.
  const StudyDocument doc = parse_study(kElbtunnelStudy);
  const expr::ParameterAssignment at{{"T1", 19.0}, {"T2", 15.6}};
  const double p_ot1 =
      doc.find_tree("HCol")->find_leaf("OT1")->probability.evaluate(at);
  EXPECT_GT(p_ot1, 0.0);
  EXPECT_LT(p_ot1, 1.0);
  const double p_hv =
      doc.find_tree("HAlr")->find_leaf("HVODfinal")->probability.evaluate(at);
  EXPECT_NEAR(p_hv, 1.0 - std::exp(-0.13 * 15.6), 1e-15);
}

TEST(StudyParserTest, MinimalCutSetsOfParsedTreesAreSane) {
  const StudyDocument doc = parse_study(kElbtunnelStudy);
  const auto mcs = fta::minimal_cut_sets(doc.find_tree("HCol")->tree);
  EXPECT_EQ(mcs.size(), 3u);  // residual, OT1|crit, OT2|crit
}

struct ErrorCase {
  std::string name;
  std::string input;
  std::string fragment;
  std::size_t line;
};

class StudyParserErrors : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(StudyParserErrors, ReportsPositionAndReason) {
  const ErrorCase& c = GetParam();
  try {
    (void)parse_study(c.input);
    FAIL() << "expected ParseError for " << c.name;
  } catch (const ParseError& error) {
    EXPECT_EQ(error.line(), c.line) << error.what();
    EXPECT_NE(std::string(error.what()).find(c.fragment), std::string::npos)
        << error.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, StudyParserErrors,
    ::testing::Values(
        ErrorCase{"unknown_parameter_in_expression",
                  "param T1 in [5, 40];\ntoplevel t;\nt or a;\n"
                  "a prob = 1 - exp(-0.1 * T9);\n",
                  "unknown parameter 'T9'", 4},
        ErrorCase{"expression_syntax_error",
                  "param T1 in [5, 40];\ntoplevel t;\nt or a;\n"
                  "a prob = 1 +\n;\n",
                  "unexpected end", 5},
        ErrorCase{"constant_out_of_range",
                  "toplevel t;\nt or a;\na prob = 2 * 0.8;\n",
                  "must lie in [0, 1]", 3},
        ErrorCase{"duplicate_param",
                  "param T1 in [0, 1];\nparam T1 in [2, 3];\ntoplevel t;\n"
                  "t or a;\na prob = 0.1;\n",
                  "duplicate declaration of parameter 'T1'", 2},
        ErrorCase{"bad_param_bounds",
                  "param T1 in [9, 2];\ntoplevel t;\nt or a;\na prob = 0.1;\n",
                  "lower <= upper", 1},
        ErrorCase{"param_missing_in",
                  "param T1 [5, 40];\n", "expected 'in'", 1},
        ErrorCase{"unknown_param_clause",
                  "param T1 in [5, 40] frob \"x\";\n",
                  "unknown parameter clause 'frob'", 1},
        ErrorCase{"hazard_unknown_tree",
                  "toplevel t;\nt or a;\na prob = 0.1;\n"
                  "hazard Ghost cost = 5;\n",
                  "unknown tree 'Ghost'", 4},
        ErrorCase{"hazard_negative_cost",
                  "toplevel t;\nt or a;\na prob = 0.1;\n"
                  "hazard fault-tree cost = -2;\n",
                  "non-negative", 4},
        ErrorCase{"duplicate_hazard",
                  "toplevel t;\nt or a;\na prob = 0.1;\n"
                  "hazard fault-tree cost = 1;\nhazard fault-tree cost = 2;\n",
                  "duplicate hazard", 5},
        ErrorCase{"duplicate_solver",
                  "toplevel t;\nt or a;\na prob = 0.1;\n"
                  "solver nelder_mead;\nsolver grid_search;\n",
                  "duplicate 'solver'", 5},
        ErrorCase{"duplicate_solver_option",
                  "toplevel t;\nt or a;\na prob = 0.1;\n"
                  "solver multi_start starts = 8 starts = 9;\n",
                  "duplicate option 'starts'", 4},
        ErrorCase{"unknown_formula",
                  "toplevel t;\nt or a;\na prob = 0.1;\nformula exact;\n",
                  "unknown formula 'exact'", 4},
        ErrorCase{"duplicate_tree_name",
                  "tree A;\ntoplevel t;\nt or a;\na prob = 0.1;\n"
                  "tree A;\ntoplevel s;\ns or b;\nb prob = 0.1;\n",
                  "duplicate tree 'A'", 5},
        ErrorCase{"tree_without_toplevel",
                  "tree A;\na prob = 0.1;\n",
                  "missing 'toplevel' declaration for tree 'A'", 1},
        ErrorCase{"unterminated_string",
                  "param T1 in [5, 40] unit \"min;\n",
                  "unterminated string", 1}),
    [](const auto& info) { return info.param.name; });

TEST(StudyParserTest, LoadStudyPutsTheFileNameIntoErrors) {
  const std::string path = ::testing::TempDir() + "broken_model.ft";
  {
    std::ofstream file(path);
    file << "toplevel t;\nt or ghost;\n";
  }
  try {
    (void)load_study(path);
    FAIL();
  } catch (const ParseError& error) {
    EXPECT_EQ(error.file(), path);
    EXPECT_EQ(error.line(), 2u);
    // The rendered message leads with file:line:column, verbatim enough for
    // the CLI to print error.what() as-is.
    EXPECT_NE(std::string(error.what()).find(path + ":2:"),
              std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("undefined node 'ghost'"),
              std::string::npos)
        << error.what();
  }
  std::remove(path.c_str());
}

TEST(StudyParserTest, LoadStudyReadsAndRecordsTheSource) {
  const std::string path = ::testing::TempDir() + "mini_model.ft";
  {
    std::ofstream file(path);
    file << "toplevel t;\nt or a b;\na prob = 0.1;\nb prob = 0.2;\n";
  }
  const StudyDocument doc = load_study(path);
  EXPECT_EQ(doc.source, path);
  ASSERT_EQ(doc.trees.size(), 1u);
  EXPECT_EQ(doc.trees[0].tree.basic_event_count(), 2u);
  std::remove(path.c_str());

  EXPECT_THROW((void)load_study(path + ".does-not-exist"),
               std::runtime_error);
}

TEST(StudyParserTest, StringsWithQuotesAndBackslashesRoundTrip) {
  StudyDocument doc = parse_study(
      "param T in [0, 1] unit \"m/s\" desc \"say \\\"hi\\\" \\\\ there\";\n"
      "toplevel t;\nt or a;\na prob = 0.1;\n");
  ASSERT_EQ(doc.parameters.size(), 1u);
  EXPECT_EQ(doc.parameters[0].description, "say \"hi\" \\ there");
  const StudyDocument reparsed = parse_study(write_study(doc));
  EXPECT_EQ(reparsed.parameters[0].unit, doc.parameters[0].unit);
  EXPECT_EQ(reparsed.parameters[0].description,
            doc.parameters[0].description);
}

TEST(StudyParserTest, CommentsInsideExpressionsAreBlanked) {
  const StudyDocument doc = parse_study(
      "param T1 in [0, 10];\ntoplevel t;\nt or a;\n"
      "a prob = 0.5 # half\n * (T1 / 10);\n");
  const expr::ParameterAssignment at{{"T1", 4.0}};
  EXPECT_DOUBLE_EQ(doc.trees[0].find_leaf("a")->probability.evaluate(at),
                   0.2);
}

}  // namespace
}  // namespace safeopt::ftio
