#include "safeopt/ftio/parser.h"

#include <cctype>
#include <charconv>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace safeopt::ftio {
namespace {

struct Token {
  enum class Kind { kIdentifier, kNumber, kEquals, kSemicolon, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  double number = 0.0;
  std::size_t line = 1;
  std::size_t column = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_whitespace_and_comments();
    Token token;
    token.line = line_;
    token.column = column_;
    if (pos_ >= text_.size()) {
      token.kind = Token::Kind::kEnd;
      return token;
    }
    const char c = text_[pos_];
    if (c == ';') {
      advance();
      token.kind = Token::Kind::kSemicolon;
      // Char assignment sidesteps gcc 12's -Wrestrict false positive on
      // basic_string::operator=(const char*) (PR105651 family).
      token.text = ';';
      return token;
    }
    if (c == '=') {
      advance();
      token.kind = Token::Kind::kEquals;
      token.text = '=';
      return token;
    }
    if (is_word_char(c)) {
      // One maximal word of [A-Za-z0-9_.+-]; decide number vs identifier by
      // whether the whole word parses as a double. This keeps "1e-3" a
      // number while "2of3" (vote gates) and "timer-1" stay identifiers.
      const std::size_t start = pos_;
      while (pos_ < text_.size() && is_word_char(text_[pos_])) advance();
      const std::string_view slice = text_.substr(start, pos_ - start);
      token.text = std::string(slice);
      const auto [end, ec] = std::from_chars(
          slice.data(), slice.data() + slice.size(), token.number);
      if (ec == std::errc{} && end == slice.data() + slice.size()) {
        token.kind = Token::Kind::kNumber;
        return token;
      }
      if (is_identifier_start(slice.front()) ||
          std::isdigit(static_cast<unsigned char>(slice.front())) != 0) {
        token.kind = Token::Kind::kIdentifier;
        return token;
      }
      throw ParseError(token.line, token.column,
                       "malformed token '" + token.text + "'");
    }
    throw ParseError(line_, column_,
                     std::string("unexpected character '") + c + "'");
  }

 private:
  static bool is_identifier_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
  }
  static bool is_word_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
           c == '.' || c == '+' || c == '-';
  }

  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void skip_whitespace_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        advance();
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance();
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

/// "2of3" -> (2, 3); anything else -> nullopt.
std::optional<std::pair<std::uint32_t, std::uint32_t>> parse_vote(
    std::string_view word) {
  const std::size_t of = word.find("of");
  if (of == std::string_view::npos || of == 0 ||
      of + 2 >= word.size()) {
    return std::nullopt;
  }
  std::uint32_t k = 0;
  std::uint32_t n = 0;
  const auto head = word.substr(0, of);
  const auto tail = word.substr(of + 2);
  const auto r1 = std::from_chars(head.data(), head.data() + head.size(), k);
  const auto r2 = std::from_chars(tail.data(), tail.data() + tail.size(), n);
  if (r1.ec != std::errc{} || r1.ptr != head.data() + head.size() ||
      r2.ec != std::errc{} || r2.ptr != tail.data() + tail.size()) {
    return std::nullopt;
  }
  return std::pair{k, n};
}

struct GateDecl {
  fta::GateType type = fta::GateType::kOr;
  std::uint32_t k = 0;
  std::vector<std::string> children;
  std::size_t line = 0;
  std::size_t column = 0;
};

struct LeafDecl {
  bool is_condition = false;
  double probability = 0.0;
  std::size_t line = 0;
  std::size_t column = 0;
};

/// Statement-level parse state gathered in the first pass.
struct Declarations {
  std::string tree_name = "fault-tree";
  std::string toplevel;
  std::size_t toplevel_line = 0;
  std::map<std::string, GateDecl> gates;
  std::map<std::string, LeafDecl> leaves;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { consume(); }

  Declarations parse() {
    Declarations decls;
    while (current_.kind != Token::Kind::kEnd) {
      parse_statement(decls);
    }
    if (decls.toplevel.empty()) {
      throw ParseError(1, 1, "missing 'toplevel' declaration");
    }
    return decls;
  }

 private:
  void consume() { current_ = lexer_.next(); }

  Token expect_identifier(const char* what) {
    if (current_.kind != Token::Kind::kIdentifier) {
      throw ParseError(current_.line, current_.column,
                       std::string("expected ") + what + ", got '" +
                           current_.text + "'");
    }
    Token token = current_;
    consume();
    return token;
  }

  void expect_semicolon() {
    if (current_.kind != Token::Kind::kSemicolon) {
      throw ParseError(current_.line, current_.column,
                       "expected ';' before '" + current_.text + "'");
    }
    consume();
  }

  double expect_probability() {
    if (current_.kind != Token::Kind::kEquals) {
      throw ParseError(current_.line, current_.column,
                       "expected '=' after 'prob'");
    }
    consume();
    if (current_.kind != Token::Kind::kNumber) {
      throw ParseError(current_.line, current_.column,
                       "expected a probability value");
    }
    const double p = current_.number;
    if (p < 0.0 || p > 1.0) {
      throw ParseError(current_.line, current_.column,
                       "probability must lie in [0, 1], got " +
                           current_.text);
    }
    consume();
    return p;
  }

  void parse_statement(Declarations& decls) {
    const Token head = expect_identifier("a statement");
    if (head.text == "tree") {
      decls.tree_name = expect_identifier("the tree name").text;
      expect_semicolon();
      return;
    }
    if (head.text == "toplevel") {
      if (!decls.toplevel.empty()) {
        throw ParseError(head.line, head.column,
                         "duplicate 'toplevel' declaration");
      }
      const Token top = expect_identifier("the toplevel node name");
      decls.toplevel = top.text;
      decls.toplevel_line = top.line;
      expect_semicolon();
      return;
    }

    // "<name> <kind> ...": gate definition or leaf declaration.
    const Token kind = expect_identifier("a gate kind or 'prob'/'condition'");
    if (kind.text == "prob") {
      declare_leaf(decls, head, /*is_condition=*/false);
      return;
    }
    if (kind.text == "condition") {
      const Token prob_kw = expect_identifier("'prob'");
      if (prob_kw.text != "prob") {
        throw ParseError(prob_kw.line, prob_kw.column,
                         "expected 'prob' after 'condition'");
      }
      declare_leaf(decls, head, /*is_condition=*/true);
      return;
    }

    GateDecl gate;
    gate.line = head.line;
    gate.column = head.column;
    if (kind.text == "or") {
      gate.type = fta::GateType::kOr;
    } else if (kind.text == "and") {
      gate.type = fta::GateType::kAnd;
    } else if (kind.text == "xor") {
      gate.type = fta::GateType::kXor;
    } else if (kind.text == "inhibit") {
      gate.type = fta::GateType::kInhibit;
    } else if (const auto vote = parse_vote(kind.text)) {
      gate.type = fta::GateType::kKofN;
      gate.k = vote->first;
      if (vote->first < 1) {
        throw ParseError(kind.line, kind.column,
                         "vote threshold must be >= 1");
      }
    } else {
      throw ParseError(kind.line, kind.column,
                       "unknown gate kind '" + kind.text + "'");
    }
    while (current_.kind == Token::Kind::kIdentifier) {
      gate.children.push_back(current_.text);
      consume();
    }
    expect_semicolon();
    if (gate.children.empty()) {
      throw ParseError(kind.line, kind.column,
                       "gate '" + head.text + "' has no children");
    }
    if (gate.type == fta::GateType::kInhibit && gate.children.size() != 2) {
      throw ParseError(kind.line, kind.column,
                       "inhibit gate '" + head.text +
                           "' needs exactly two operands (cause, condition)");
    }
    if (gate.type == fta::GateType::kKofN &&
        gate.k > gate.children.size()) {
      throw ParseError(kind.line, kind.column,
                       "vote gate '" + head.text +
                           "' has fewer children than its threshold");
    }
    if (!decls.gates.emplace(head.text, std::move(gate)).second) {
      throw ParseError(head.line, head.column,
                       "duplicate definition of gate '" + head.text + "'");
    }
  }

  void declare_leaf(Declarations& decls, const Token& name,
                    bool is_condition) {
    LeafDecl leaf;
    leaf.is_condition = is_condition;
    leaf.probability = expect_probability();
    leaf.line = name.line;
    leaf.column = name.column;
    expect_semicolon();
    if (!decls.leaves.emplace(name.text, leaf).second) {
      throw ParseError(name.line, name.column,
                       "duplicate declaration of leaf '" + name.text + "'");
    }
  }

  Lexer lexer_;
  Token current_;
};

/// Second pass: build the FaultTree bottom-up from the declarations,
/// detecting cycles and undefined references.
class TreeBuilder {
 public:
  explicit TreeBuilder(const Declarations& decls)
      : decls_(decls), tree_(decls.tree_name) {}

  ParsedFaultTree build() {
    const fta::NodeId top = build_node(decls_.toplevel, decls_.toplevel_line);
    tree_.set_top(top);
    fta::QuantificationInput input =
        fta::QuantificationInput::for_tree(tree_, 0.0);
    for (const auto& [name, leaf] : decls_.leaves) {
      if (!tree_.find(name).has_value()) {
        throw ParseError(leaf.line, leaf.column,
                         "leaf '" + name +
                             "' is declared but not reachable from toplevel");
      }
      input.set(tree_, name, leaf.probability);
    }
    return ParsedFaultTree{std::move(tree_), std::move(input)};
  }

 private:
  fta::NodeId build_node(const std::string& name, std::size_t ref_line) {
    if (const auto existing = tree_.find(name)) return *existing;
    if (in_progress_.contains(name)) {
      throw ParseError(ref_line, 1,
                       "cycle through node '" + name + "'");
    }

    const auto gate_it = decls_.gates.find(name);
    if (gate_it != decls_.gates.end()) {
      const GateDecl& gate = gate_it->second;
      in_progress_.insert(name);
      std::vector<fta::NodeId> children;
      children.reserve(gate.children.size());
      for (const std::string& child : gate.children) {
        children.push_back(build_node(child, gate.line));
      }
      in_progress_.erase(name);
      switch (gate.type) {
        case fta::GateType::kOr:
          return tree_.add_or(name, std::move(children));
        case fta::GateType::kAnd:
          return tree_.add_and(name, std::move(children));
        case fta::GateType::kXor:
          return tree_.add_xor(name, std::move(children));
        case fta::GateType::kKofN:
          return tree_.add_k_of_n(name, gate.k, std::move(children));
        case fta::GateType::kInhibit: {
          const fta::NodeId cause = children[0];
          const fta::NodeId condition = children[1];
          if (tree_.kind(condition) != fta::NodeKind::kCondition) {
            throw ParseError(gate.line, gate.column,
                             "second operand of inhibit gate '" + name +
                                 "' must be a condition leaf");
          }
          return tree_.add_inhibit(name, cause, condition);
        }
      }
      throw ParseError(gate.line, gate.column, "unreachable gate kind");
    }

    const auto leaf_it = decls_.leaves.find(name);
    if (leaf_it != decls_.leaves.end()) {
      return leaf_it->second.is_condition
                 ? tree_.add_condition(name)
                 : tree_.add_basic_event(name);
    }
    throw ParseError(ref_line, 1, "undefined node '" + name + "'");
  }

  const Declarations& decls_;
  fta::FaultTree tree_;
  std::set<std::string> in_progress_;
};

}  // namespace

ParseError::ParseError(std::size_t line, std::size_t column,
                       const std::string& what)
    : std::runtime_error(std::to_string(line) + ":" + std::to_string(column) +
                         ": " + what),
      line_(line),
      column_(column) {}

ParsedFaultTree parse_fault_tree(std::string_view text) {
  Parser parser(text);
  const Declarations decls = parser.parse();
  TreeBuilder builder(decls);
  return builder.build();
}

}  // namespace safeopt::ftio
