#include "safeopt/support/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace safeopt {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value) {
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc{}) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
  }
  return std::string(buffer, end);
}

}  // namespace safeopt
