// Clang Thread Safety Analysis annotations (-Wthread-safety), wrapped so the
// rest of the tree can annotate lock discipline without caring about the
// compiler: under clang every macro expands to the corresponding attribute
// and the CI thread-safety leg enforces the declared discipline at compile
// time; under gcc (and anything else) they all expand to nothing.
//
// Conventions (docs/static_analysis.md has the full story):
//   * Guarded state is declared at the member:  int count_ GUARDED_BY(mutex_);
//   * Internal helpers that assume the lock is held carry
//     SAFEOPT_REQUIRES(mutex_) instead of taking a lock object parameter.
//   * Condition-variable waits are written as explicit `while (!pred)`
//     loops in the annotated function, never as predicate lambdas — clang
//     analyzes a lambda body as a separate function that does not hold the
//     capability, so a predicate lambda reading guarded members would warn.
//
// The macro set mirrors the reference mutex.h from the clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with a SAFEOPT_
// prefix on the macros that take effect on user code.
#ifndef SAFEOPT_SUPPORT_THREAD_ANNOTATIONS_H
#define SAFEOPT_SUPPORT_THREAD_ANNOTATIONS_H

#if defined(__clang__) && !defined(SAFEOPT_DISABLE_THREAD_ANNOTATIONS)
#define SAFEOPT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SAFEOPT_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Declares a class to be a capability ("mutex" for lockable types).
#define SAFEOPT_CAPABILITY(x) SAFEOPT_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability.
#define SAFEOPT_SCOPED_CAPABILITY SAFEOPT_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define SAFEOPT_GUARDED_BY(x) SAFEOPT_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define SAFEOPT_PT_GUARDED_BY(x) SAFEOPT_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function acquires the capability (and did not hold it on entry).
#define SAFEOPT_ACQUIRE(...) \
  SAFEOPT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define SAFEOPT_ACQUIRE_SHARED(...) \
  SAFEOPT_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define SAFEOPT_RELEASE(...) \
  SAFEOPT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define SAFEOPT_RELEASE_SHARED(...) \
  SAFEOPT_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function attempts to acquire; the first argument is the success value.
#define SAFEOPT_TRY_ACQUIRE(...) \
  SAFEOPT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability for the function's whole duration.
#define SAFEOPT_REQUIRES(...) \
  SAFEOPT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define SAFEOPT_REQUIRES_SHARED(...) \
  SAFEOPT_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (guards against self-deadlock).
#define SAFEOPT_EXCLUDES(...) \
  SAFEOPT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations.
#define SAFEOPT_ACQUIRED_BEFORE(...) \
  SAFEOPT_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define SAFEOPT_ACQUIRED_AFTER(...) \
  SAFEOPT_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define SAFEOPT_RETURN_CAPABILITY(x) \
  SAFEOPT_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the calling thread holds the capability.
#define SAFEOPT_ASSERT_CAPABILITY(x) \
  SAFEOPT_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch: the function's locking is intentionally invisible to the
/// analysis. Use sparingly and say why at the site.
#define SAFEOPT_NO_THREAD_SAFETY_ANALYSIS \
  SAFEOPT_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // SAFEOPT_SUPPORT_THREAD_ANNOTATIONS_H
