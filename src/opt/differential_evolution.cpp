#include "safeopt/opt/differential_evolution.h"

#include "builtin_solvers.h"

#include <algorithm>
#include <cmath>

#include "safeopt/support/contracts.h"
#include "safeopt/support/rng.h"

namespace safeopt::opt {

DifferentialEvolution::DifferentialEvolution(Settings settings,
                                             std::uint64_t seed)
    : settings_(settings), seed_(seed) {
  SAFEOPT_EXPECTS(settings.differential_weight > 0.0 &&
                  settings.differential_weight <= 2.0);
  SAFEOPT_EXPECTS(settings.crossover_rate >= 0.0 &&
                  settings.crossover_rate <= 1.0);
  SAFEOPT_EXPECTS(settings.generations >= 1);
}

OptimizationResult DifferentialEvolution::minimize(
    const Problem& problem) const {
  const std::size_t dim = problem.bounds.dimension();
  SAFEOPT_EXPECTS(dim >= 1);
  const std::size_t population_size =
      settings_.population != 0 ? settings_.population
                                : std::max<std::size_t>(15, 10 * dim);
  SAFEOPT_EXPECTS(population_size >= 4);

  OptimizationResult result;
  Rng rng(seed_);

  std::vector<std::vector<double>> population(population_size,
                                              std::vector<double>(dim));
  std::vector<double> fitness(population_size);
  if (settings_.synchronous_batch) {
    // Same RNG draw order as the scalar loop (draws happen point by point,
    // evaluation consumes no randomness), one batched evaluation.
    std::vector<double> flat(population_size * dim);
    for (std::size_t p = 0; p < population_size; ++p) {
      for (std::size_t i = 0; i < dim; ++i) {
        population[p][i] =
            uniform(rng, problem.bounds.lower[i], problem.bounds.upper[i]);
        flat[p * dim + i] = population[p][i];
      }
    }
    problem.evaluate_batch(flat, fitness);
    result.evaluations += population_size;
  } else {
    for (std::size_t p = 0; p < population_size; ++p) {
      for (std::size_t i = 0; i < dim; ++i) {
        population[p][i] =
            uniform(rng, problem.bounds.lower[i], problem.bounds.upper[i]);
      }
      fitness[p] = problem.objective(population[p]);
      ++result.evaluations;
    }
  }

  const auto spread = [&] {
    const auto [lo, hi] = std::minmax_element(fitness.begin(), fitness.end());
    return std::abs(*hi - *lo);
  };

  std::vector<double> trial(dim);
  std::vector<double> trials_flat(settings_.synchronous_batch
                                      ? population_size * dim
                                      : 0);
  std::vector<double> trial_fitness(
      settings_.synchronous_batch ? population_size : 0);
  for (std::size_t generation = 0; generation < settings_.generations;
       ++generation) {
    ++result.iterations;
    if (spread() < settings_.spread_tolerance) {
      result.converged = true;
      result.message = "population collapsed";
      break;
    }
    for (std::size_t p = 0; p < population_size; ++p) {
      // Pick three distinct agents a, b, c, all different from p.
      std::size_t a = 0;
      std::size_t b = 0;
      std::size_t c = 0;
      do {
        a = static_cast<std::size_t>(uniform_index(rng, population_size));
      } while (a == p);
      do {
        b = static_cast<std::size_t>(uniform_index(rng, population_size));
      } while (b == p || b == a);
      do {
        c = static_cast<std::size_t>(uniform_index(rng, population_size));
      } while (c == p || c == a || c == b);

      const std::size_t forced_axis =
          static_cast<std::size_t>(uniform_index(rng, dim));
      for (std::size_t i = 0; i < dim; ++i) {
        if (i == forced_axis || uniform01(rng) < settings_.crossover_rate) {
          trial[i] = population[a][i] +
                     settings_.differential_weight *
                         (population[b][i] - population[c][i]);
        } else {
          trial[i] = population[p][i];
        }
        trial[i] =
            std::clamp(trial[i], problem.bounds.lower[i],
                       problem.bounds.upper[i]);
      }
      if (settings_.synchronous_batch) {
        // Stash the trial; the whole generation evaluates at once below.
        std::copy(trial.begin(), trial.end(),
                  trials_flat.begin() + static_cast<std::ptrdiff_t>(p * dim));
        continue;
      }
      const double f_trial = problem.objective(trial);
      ++result.evaluations;
      if (f_trial <= fitness[p]) {
        population[p] = trial;
        fitness[p] = f_trial;
      }
    }
    if (settings_.synchronous_batch) {
      problem.evaluate_batch(trials_flat, trial_fitness);
      result.evaluations += population_size;
      for (std::size_t p = 0; p < population_size; ++p) {
        if (trial_fitness[p] <= fitness[p]) {
          const auto* begin = trials_flat.data() + p * dim;
          population[p].assign(begin, begin + dim);
          fitness[p] = trial_fitness[p];
        }
      }
    }
  }

  const auto best =
      std::min_element(fitness.begin(), fitness.end()) - fitness.begin();
  result.argmin = population[static_cast<std::size_t>(best)];
  result.value = fitness[static_cast<std::size_t>(best)];
  if (!result.converged) {
    result.converged = true;  // DE always returns its incumbent
    result.message = "generation budget exhausted";
  }
  return result;
}

// ---- registry adapter -------------------------------------------------------

namespace {

/// Extras: "population" (0 = auto), "differential_weight", "crossover_rate",
/// "generations", "spread_tolerance", "synchronous_batch" (0/1; nonzero
/// selects the generation-synchronous batched variant — see Settings).
/// Honors config.seed.
class DifferentialEvolutionSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "differential_evolution";
  }
  [[nodiscard]] SolverTraits traits() const noexcept override {
    return SolverTraits{.max_dimension = 0, .stochastic = true};
  }

 private:
  [[nodiscard]] OptimizationResult run(
      const Problem& problem, const SolverConfig& config) const override {
    DifferentialEvolution::Settings settings;
    settings.population = config.count_or("population", settings.population);
    settings.differential_weight =
        config.number_or("differential_weight", settings.differential_weight);
    settings.crossover_rate =
        config.number_or("crossover_rate", settings.crossover_rate);
    settings.generations =
        config.count_or("generations", settings.generations);
    settings.spread_tolerance =
        config.number_or("spread_tolerance", settings.spread_tolerance);
    settings.synchronous_batch =
        config.number_or("synchronous_batch", 0.0) != 0.0;
    return DifferentialEvolution(settings, config.seed.value_or(0xd1ffe))
        .minimize(problem);
  }
};

}  // namespace

std::unique_ptr<Solver> detail::make_differential_evolution_solver() {
  return std::make_unique<DifferentialEvolutionSolver>();
}

}  // namespace safeopt::opt
