// safeopt — drive the whole optimization pipeline from the shell.
//
//   safeopt validate <model.ft>               parse + semantic summary
//   safeopt quantify <model.ft> [options]     quantify hazards at a point
//   safeopt run      <model.ft> [options]     optimize, report the optimum
//   safeopt serve    [options]                multi-tenant HTTP service
//   safeopt backends [--json]                 evaluation backends + dispatch
//   safeopt --version                         build identity, one line
//
// The --json schemas are rendered by serve/response_json.h — the same
// renderer the HTTP service uses, so `safeopt quantify --json` and
// POST /v1/quantify produce byte-identical documents.
//
// Options (run/quantify):
//   --solver NAME     override the document's solver (registry name)
//   --engine NAME     override the document's engine (fta | bdd | mc | ...)
//   --extra K=V       solver extra (repeatable; e.g. --extra starts=16)
//   --engine-opt K=V  engine option (repeatable; e.g. --engine-opt tilt=25),
//                     layered on top of the document's engine section
//   --seed N          solver seed (shorthand for a reserved extra)
//   --at NAME=VALUE   evaluation point (repeatable; quantify defaults to
//                     the box center, run evaluates at the found optimum)
//   --json            machine-readable output on stdout
//
// Every engine × solver × model combination the registries know is
// reachable from here; models are files, not binaries (docs/model_format.md).
//
// Exit codes (scriptable failure triage, see docs/robustness.md):
//   0  success
//   2  usage / parse error (bad arguments, or the model failed to parse)
//   3  validation error (the model parsed but is structurally wrong, or a
//      selection/option is invalid)
//   4  resource budget, deadline, or cancellation aborted the run
//   5  internal error
// With --json, failures also emit {"error": {"category", "message"}} on
// stdout so machine consumers need not scrape stderr.
#include <atomic>
#include <charconv>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "safeopt/core/quantification_engine.h"
#include "safeopt/core/study.h"
#include "safeopt/expr/eval_backend.h"
#include "safeopt/fta/cut_sets.h"
#include "safeopt/ftio/parser.h"
#include "safeopt/ftio/study_document.h"
#include "safeopt/opt/solver.h"
#include "safeopt/serve/analysis_graph.h"
#include "safeopt/serve/response_json.h"
#include "safeopt/serve/server.h"
#include "safeopt/support/build_info.h"
#include "safeopt/support/error.h"
#include "safeopt/support/json.h"
#include "safeopt/support/strings.h"

namespace {

using namespace safeopt;

struct Options {
  std::string command;
  std::string model;
  std::optional<std::string> solver;
  std::optional<std::string> engine;
  std::optional<std::string> backend;
  std::vector<std::string> extras;          // key=value
  std::vector<std::string> engine_options;  // key=value
  std::optional<std::uint64_t> seed;
  std::vector<std::pair<std::string, double>> at;
  bool json = false;
};

int usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "safeopt: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: safeopt <command> <model.ft> [options]\n"
      "\n"
      "commands:\n"
      "  validate   parse the model and report its structure\n"
      "  quantify   quantify every hazard at a parameter point\n"
      "  run        minimize the cost function, report the optimum\n"
      "  serve      multi-tenant quantification service (docs/service.md)\n"
      "  backends   list evaluation backends and the dispatch pick "
      "(no model)\n"
      "\n"
      "serve options:\n"
      "  --port N --threads N --cache-mb N --max-queue N --max-concurrent N\n"
      "  --tenant-weight NAME=W --max-tenants N --default-deadline-ms N\n"
      "  --max-requests N\n"
      "\n"
      "options:\n"
      "  --solver NAME     solver registry name (overrides the document)\n"
      "  --engine NAME     quantification engine (overrides the document)\n"
      "  --backend NAME    compiled-tape evaluation backend override\n"
      "                    (see `safeopt backends`; unavailable backends\n"
      "                    degrade to the best available with a note)\n"
      "  --extra K=V       solver extra, repeatable (e.g. starts=16)\n"
      "  --engine-opt K=V  engine option, repeatable (e.g. tilt=25)\n"
      "  --seed N          solver seed\n"
      "  --at NAME=VALUE   evaluation point component, repeatable\n"
      "  --json            machine-readable output\n"
      "\n"
      "engine options (--engine-opt, one typed schema for documents and "
      "CLI):\n");
  for (const core::EngineOptionDoc& doc : core::engine_option_docs()) {
    std::fprintf(stderr, "  %-18s %-6s %s\n",
                 std::string(doc.name).c_str(), std::string(doc.type).c_str(),
                 std::string(doc.doc).c_str());
  }
  return 2;
}

std::optional<Options> parse_arguments(int argc, char** argv) {
  if (argc < 3) return std::nullopt;
  Options options;
  options.command = argv[1];
  options.model = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        throw std::invalid_argument(concat(arg, " expects a value"));
      }
      return argv[++i];
    };
    if (arg == "--solver") {
      options.solver = value();
    } else if (arg == "--engine") {
      options.engine = value();
    } else if (arg == "--backend") {
      options.backend = value();
    } else if (arg == "--extra") {
      options.extras.emplace_back(value());
    } else if (arg == "--engine-opt") {
      options.engine_options.emplace_back(value());
    } else if (arg == "--seed") {
      // std::from_chars, not strtoull: strtoull silently negates "-1" and
      // clamps overflow to ULLONG_MAX, so the reported-reproducible seed
      // would not be the one the user passed.
      const std::string_view text = value();
      std::uint64_t seed = 0;
      const auto [end, ec] =
          std::from_chars(text.data(), text.data() + text.size(), seed);
      if (ec != std::errc{} || end != text.data() + text.size()) {
        throw std::invalid_argument(
            concat("--seed expects a non-negative 64-bit integer, got \"",
                   text, "\""));
      }
      options.seed = seed;
    } else if (arg == "--at") {
      const std::string_view pair = value();
      const std::size_t equals = pair.find('=');
      if (equals == std::string_view::npos || equals == 0 ||
          equals + 1 == pair.size()) {
        throw std::invalid_argument(
            concat("--at expects NAME=VALUE, got \"", pair, "\""));
      }
      char* end = nullptr;
      const std::string value_text(pair.substr(equals + 1));
      const double v = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() || *end != '\0') {
        throw std::invalid_argument(
            concat("--at expects a numeric value, got \"", pair, "\""));
      }
      options.at.emplace_back(std::string(pair.substr(0, equals)), v);
    } else if (arg == "--json") {
      options.json = true;
    } else {
      throw std::invalid_argument(concat("unknown option \"", arg, "\""));
    }
  }
  return options;
}

/// Applies --solver/--extra/--seed on top of the document's selections.
core::Study configure_study(const ftio::StudyDocument& doc,
                            const Options& options) {
  core::Study study = core::Study::from_document(doc);
  if (options.solver.has_value() || !options.extras.empty() ||
      options.seed.has_value()) {
    std::string name;
    opt::SolverConfig config;
    if (options.solver.has_value()) {
      // A fresh solver choice starts from that solver's legacy-equivalent
      // defaults, not from another solver's document options.
      const auto resolved = core::resolve_solver(*options.solver);
      if (!resolved.has_value()) {
        throw std::invalid_argument(
            concat("unknown solver \"", *options.solver, "\"; available: ",
                   join(opt::SolverRegistry::available(), ", ")));
      }
      name = resolved->name;
      config = resolved->config;
    } else {
      // Only extras/seed given: layer them on the document's selection.
      name = study.solver_name();
      config = study.solver_config();
    }
    for (const std::string& extra : options.extras) {
      config.set_extra_argument(extra);
    }
    if (options.seed.has_value()) config.seed = *options.seed;
    study.solver(std::move(name), std::move(config));
  }
  if (options.engine.has_value() || !options.engine_options.empty()) {
    if (options.engine.has_value() &&
        !core::EngineRegistry::contains(*options.engine)) {
      throw std::invalid_argument(
          concat("unknown engine \"", *options.engine, "\"; available: ",
                 join(core::EngineRegistry::available(), ", ")));
    }
    // Keep the document's engine options (trials, seed, formula-derived
    // method); --engine only changes the backend, --engine-opt layers on
    // individual options.
    core::EngineConfig config = study.engine_config();
    for (const std::string& option : options.engine_options) {
      core::set_engine_argument(config, option);
    }
    study.engine(options.engine.value_or(study.engine_name()), config);
  }
  return study;
}

expr::ParameterAssignment evaluation_point(const core::Study& study,
                                           const Options& options) {
  // Default: the box center; --at components override per axis.
  expr::ParameterAssignment at;
  for (std::size_t i = 0; i < study.space().size(); ++i) {
    const auto& parameter = study.space()[i];
    at.set(parameter.name, 0.5 * (parameter.lower + parameter.upper));
  }
  for (const auto& [name, value] : options.at) {
    if (!study.space().index_of(name).has_value()) {
      throw std::invalid_argument(
          concat("--at names unknown parameter \"", name, "\" (declared: ",
                 join(study.space().names(), ", "), ")"));
    }
    at.set(name, value);
  }
  return at;
}

// JSON output comes from the shared serve renderers (byte-identical to the
// HTTP service); this prints the human-readable form only.
using HazardResults = serve::HazardResults;

void print_hazard_results_text(const HazardResults& results,
                               std::string_view engine_name) {
  for (const auto& [hazard, result] : results) {
    // Estimator diagnostics are reported uniformly for every sampled
    // engine: trials drawn, the achieved 95% CI half-width, the effective
    // sample size (== trials unless importance-sampled), and — for
    // adaptive engines — whether the target precision was reached.
    std::printf("  P(%s) = %.6e", hazard.c_str(), result.probability);
    if (result.ci95.has_value()) {
      std::printf("   95%% CI [%.6e, %.6e] (±%.2e), %" PRIu64 " trials",
                  result.ci95->lo, result.ci95->hi, result.halfwidth(),
                  result.trials);
      if (result.ess.has_value()) {
        std::printf(", ESS %.3g", *result.ess);
      }
      if (result.aborted.value_or(false)) {
        std::printf(" [aborted]");
      } else if (result.converged.has_value() && !*result.converged) {
        std::printf(" [budget exhausted]");
      }
    }
    if (result.backend.empty()) {
      std::printf("   (engine %s)\n", std::string(engine_name).c_str());
    } else {
      std::printf("   (engine %s, backend %s)\n",
                  std::string(engine_name).c_str(), result.backend.c_str());
    }
    for (const std::string& diagnostic : result.diagnostics) {
      std::printf("    note: %s\n", diagnostic.c_str());
    }
    if (result.preprocess.has_value()) {
      const core::PreprocessSummary& pre = *result.preprocess;
      std::printf("    preprocessed: %zu module(s), %zu -> %zu events, "
                  "%zu -> %zu gates, passes:",
                  pre.modules, pre.events_before, pre.events_after,
                  pre.gates_before, pre.gates_after);
      for (const std::string& pass : pre.passes) {
        std::printf(" %s", pass.c_str());
      }
      std::printf("\n");
    }
  }
}

HazardResults quantify_hazards(const core::Study& study,
                               const ftio::StudyDocument& doc,
                               const expr::ParameterAssignment& at) {
  HazardResults results;
  for (const ftio::HazardDecl& hazard : doc.hazards) {
    results.emplace_back(hazard.tree, study.quantify(hazard.tree, at));
  }
  return results;
}

/// Quantification for a constant (parameter-less, v1-style) model: no
/// Study, just the engines on the numeric leaf probabilities.
int quantify_constant_model(const ftio::StudyDocument& doc,
                            const Options& options) {
  if (!options.at.empty()) {
    throw std::invalid_argument(
        "--at given, but the model declares no free parameters");
  }
  if (options.solver.has_value() || !options.extras.empty() ||
      options.seed.has_value()) {
    throw std::invalid_argument(
        "--solver/--extra/--seed have no effect when quantifying a "
        "constant model (no free parameters, nothing to optimize)");
  }
  auto [engine_name, engine_config] = core::document_engine_selection(doc);
  if (options.engine.has_value()) {
    if (!core::EngineRegistry::contains(*options.engine)) {
      throw std::invalid_argument(
          concat("unknown engine \"", *options.engine, "\"; available: ",
                 join(core::EngineRegistry::available(), ", ")));
    }
    engine_name = *options.engine;
  }
  for (const std::string& option : options.engine_options) {
    core::set_engine_argument(engine_config, option);
  }
  HazardResults results;
  double cost = 0.0;
  for (const ftio::HazardDecl& hazard : doc.hazards) {
    const ftio::TreeModel* model = doc.find_tree(hazard.tree);
    fta::QuantificationInput input =
        fta::QuantificationInput::for_tree(model->tree, 0.0);
    for (const ftio::LeafProbability& leaf : model->leaves) {
      input.set(model->tree, leaf.name, leaf.probability.evaluate({}));
    }
    std::string degradation;
    const auto engine = core::create_engine_with_fallback(
        engine_name, model->tree, engine_config, &degradation);
    core::QuantificationResult result = engine->quantify(input);
    if (!degradation.empty()) result.diagnostics.push_back(degradation);
    results.emplace_back(hazard.tree, std::move(result));
    cost += hazard.cost * results.back().second.probability;
  }
  if (options.json) {
    std::fputs(serve::render_constant_quantify_response(
                   doc.source, engine_name, results, cost)
                   .c_str(),
               stdout);
  } else {
    std::printf("%s (constant model):\n",
                doc.source.empty() ? "<memory>" : doc.source.c_str());
    print_hazard_results_text(results, engine_name);
    std::printf("  expected cost = %.6e\n", cost);
  }
  return 0;
}

int run_validate(const ftio::StudyDocument& doc, const Options& options) {
  // Structural validation beyond the parser's own checks — the problems
  // list is serve::validate_problems, shared with POST /v1/validate. The
  // assembly checks it runs mean a validated parameterized model cannot
  // fail to load in `safeopt run`. A constant model (no params) is valid
  // for `quantify` only; that limitation is a note here, not a failure.
  const std::vector<std::string> problems = serve::validate_problems(doc);
  std::vector<std::string> notes;
  if (doc.parameters.empty() && !doc.hazards.empty()) {
    try {
      (void)core::document_solver_selection(doc);
      (void)core::document_engine_selection(doc);
      notes.emplace_back(
          "constant model (no `param` declarations): `safeopt quantify` "
          "works, `safeopt run` needs free parameters");
    } catch (const std::invalid_argument&) {
      // Already reported through validate_problems.
    }
  }
  if (options.json) {
    std::fputs(serve::render_validate_response(doc.source,
                                               doc.parameters.size(),
                                               doc.trees.size(),
                                               doc.hazards.size(), problems)
                   .c_str(),
               stdout);
  } else {
    std::printf("%s: %zu parameter(s), %zu tree(s), %zu hazard(s)\n",
                doc.source.empty() ? "<memory>" : doc.source.c_str(),
                doc.parameters.size(), doc.trees.size(), doc.hazards.size());
    for (const ftio::ParameterDecl& parameter : doc.parameters) {
      std::printf("  param %s in [%g, %g]%s%s\n", parameter.name.c_str(),
                  parameter.lower, parameter.upper,
                  parameter.unit.empty() ? "" : " ",
                  parameter.unit.c_str());
    }
    for (const ftio::TreeModel& model : doc.trees) {
      const auto mcs = fta::minimal_cut_sets(model.tree);
      std::printf("  tree %s: %zu nodes, %zu minimal cut sets\n",
                  model.tree.name().c_str(), model.tree.node_count(),
                  mcs.size());
    }
    for (const ftio::HazardDecl& hazard : doc.hazards) {
      std::printf("  hazard %s cost = %g\n", hazard.tree.c_str(),
                  hazard.cost);
    }
    if (doc.solver.has_value()) {
      std::printf("  solver %s\n", doc.solver->name.c_str());
    }
    if (doc.engine.has_value()) {
      std::printf("  engine %s\n", doc.engine->name.c_str());
    }
    for (const std::string& note : notes) {
      std::printf("  note: %s\n", note.c_str());
    }
    for (const std::string& problem : problems) {
      std::printf("  PROBLEM: %s\n", problem.c_str());
    }
    std::printf(problems.empty() ? "OK\n" : "INVALID\n");
  }
  return problems.empty() ? 0 : 3;  // 3 = validation failure, like main()
}

int run_quantify(const ftio::StudyDocument& doc, const Options& options) {
  if (doc.hazards.empty()) {
    throw std::invalid_argument(
        "document declares no hazards; nothing to quantify");
  }
  if (doc.parameters.empty()) return quantify_constant_model(doc, options);
  const core::Study study = configure_study(doc, options);
  const expr::ParameterAssignment at = evaluation_point(study, options);
  const auto evaluation = study.evaluate_at(at);
  const HazardResults results = quantify_hazards(study, doc, at);
  if (options.json) {
    std::fputs(serve::render_quantify_response(doc.source,
                                               study.engine_name(), at,
                                               results, evaluation.cost)
                   .c_str(),
               stdout);
  } else {
    std::printf("%s at", doc.source.empty() ? "<memory>" : doc.source.c_str());
    for (const auto& [name, value] : at.entries()) {
      std::printf(" %s=%g", name.c_str(), value);
    }
    std::printf(":\n");
    print_hazard_results_text(results, study.engine_name());
    std::printf("  f_cost = %.6e\n", evaluation.cost);
  }
  return 0;
}

int run_optimize(const ftio::StudyDocument& doc, const Options& options) {
  const core::Study study = configure_study(doc, options);
  const auto result = study.run();
  const expr::ParameterAssignment& optimum = result.optimal_parameters;
  if (options.json) {
    std::fputs(serve::render_optimize_response(
                   doc.source, study.solver_name(), study.engine_name(),
                   result.optimization.converged,
                   result.optimization.evaluations, optimum,
                   quantify_hazards(study, doc, optimum), result.cost)
                   .c_str(),
               stdout);
  } else {
    std::printf("model  %s\n",
                doc.source.empty() ? "<memory>" : doc.source.c_str());
    std::printf("solver %s   engine %s\n", study.solver_name().c_str(),
                study.engine_name().c_str());
    std::printf("optimum:");
    for (const auto& [name, value] : optimum.entries()) {
      std::printf("  %s = %.6f", name.c_str(), value);
    }
    std::printf("\n");
    std::printf("f_cost = %.10g  (%s after %zu evaluations)\n", result.cost,
                result.optimization.converged ? "converged" : "budget hit",
                result.optimization.evaluations);
    print_hazard_results_text(quantify_hazards(study, doc, optimum),
                              study.engine_name());
  }
  return 0;
}

// ----------------------------------------------------------------- serve

volatile std::sig_atomic_t g_stop_requested = 0;

void handle_stop_signal(int) { g_stop_requested = 1; }

/// `safeopt serve`: bind, announce the port on stdout (scripts parse this
/// line), then run until SIGINT/SIGTERM or --max-requests connections.
int run_serve(int argc, char** argv) {
  serve::ServerOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        throw std::invalid_argument(concat(arg, " expects a value"));
      }
      return argv[++i];
    };
    const auto numeric = [&](std::uint64_t& out) {
      const std::string_view text = value();
      const auto [end, ec] =
          std::from_chars(text.data(), text.data() + text.size(), out);
      if (ec != std::errc{} || end != text.data() + text.size()) {
        throw std::invalid_argument(
            concat(arg, " expects a non-negative integer, got \"", text,
                   "\""));
      }
    };
    std::uint64_t number = 0;
    if (arg == "--port") {
      numeric(number);
      if (number > 65535) {
        throw std::invalid_argument("--port must be <= 65535");
      }
      options.port = static_cast<std::uint16_t>(number);
    } else if (arg == "--threads") {
      numeric(number);
      options.threads = static_cast<std::size_t>(number);
    } else if (arg == "--cache-mb") {
      numeric(number);
      options.cache_bytes = static_cast<std::size_t>(number) * 1024 * 1024;
    } else if (arg == "--max-queue") {
      numeric(number);
      options.max_queue = static_cast<std::size_t>(number);
    } else if (arg == "--max-concurrent") {
      numeric(number);
      options.max_concurrent = static_cast<std::size_t>(number);
    } else if (arg == "--max-tenants") {
      numeric(number);
      options.max_tenants = static_cast<std::size_t>(number);
    } else if (arg == "--default-deadline-ms") {
      numeric(number);
      options.default_deadline_ms = number;
    } else if (arg == "--max-requests") {
      numeric(number);
      options.max_requests = number;
    } else if (arg == "--tenant-weight") {
      const std::string_view pair = value();
      const std::size_t equals = pair.find('=');
      if (equals == std::string_view::npos || equals == 0 ||
          equals + 1 == pair.size()) {
        throw std::invalid_argument(
            concat("--tenant-weight expects NAME=WEIGHT, got \"", pair,
                   "\""));
      }
      char* end = nullptr;
      const std::string weight_text(pair.substr(equals + 1));
      const double weight = std::strtod(weight_text.c_str(), &end);
      if (end == weight_text.c_str() || *end != '\0' || !(weight > 0)) {
        throw std::invalid_argument(
            concat("--tenant-weight expects a positive weight, got \"", pair,
                   "\""));
      }
      options.tenant_weights.emplace_back(std::string(pair.substr(0, equals)),
                                          weight);
    } else {
      throw std::invalid_argument(concat("unknown serve option \"", arg,
                                         "\""));
    }
  }
  serve::Server server(options);
  server.start();
  std::printf("safeopt serve listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  while (g_stop_requested == 0 && !server.finished()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();
  const serve::ServerStats stats = server.stats();
  std::fprintf(stderr,
               "safeopt serve: %" PRIu64 " accepted, %" PRIu64 " ok, %" PRIu64
               " shed, %" PRIu64 " deadline, %" PRIu64 " cancelled\n",
               stats.accepted, stats.ok, stats.shed, stats.deadline,
               stats.cancelled);
  return 0;
}

// -------------------------------------------------------------- backends

/// `safeopt backends`: the registered evaluation backends, their hardware
/// availability, and which one runtime dispatch picks on this machine.
/// No model needed — this is a host-capability probe, like --version.
int run_backends(int argc, char** argv) {
  bool json = false;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else {
      throw std::invalid_argument(
          concat("unknown backends option \"", arg, "\""));
    }
  }
  const expr::EvalBackend& active = expr::BackendRegistry::active();
  // Probe the small power-of-two range the lane kernels use; anything a
  // backend supports outside it would be a registry contract violation.
  constexpr std::size_t kProbeWidths[] = {2, 4, 8, 16, 32};
  if (json) {
    JsonValue backends = JsonValue::array();
    for (const std::string& name : expr::BackendRegistry::registered()) {
      const expr::EvalBackend* backend = expr::BackendRegistry::find(name);
      JsonValue entry = JsonValue::object();
      entry.set("name", JsonValue::string(name));
      entry.set("available", JsonValue::boolean(backend->available()));
      entry.set("priority",
                JsonValue::number(static_cast<double>(backend->priority())));
      entry.set("default_lane_width",
                JsonValue::number(
                    static_cast<double>(backend->default_lane_width())));
      JsonValue widths = JsonValue::array();
      for (const std::size_t width : kProbeWidths) {
        if (backend->supports_lane_width(width)) {
          widths.push_back(JsonValue::number(static_cast<double>(width)));
        }
      }
      entry.set("lane_widths", std::move(widths));
      backends.push_back(std::move(entry));
    }
    JsonValue root = JsonValue::object();
    root.set("backends", std::move(backends));
    root.set("active", JsonValue::string(std::string(active.name())));
    const char* env = std::getenv("SAFEOPT_BACKEND");
    root.set("env_override",
             JsonValue::string(env != nullptr ? env : ""));
    std::printf("%s\n", root.dump().c_str());
  } else {
    for (const std::string& name : expr::BackendRegistry::registered()) {
      const expr::EvalBackend* backend = expr::BackendRegistry::find(name);
      std::string widths;
      for (const std::size_t width : kProbeWidths) {
        if (!backend->supports_lane_width(width)) continue;
        if (!widths.empty()) widths += ",";
        widths += std::to_string(width);
      }
      std::printf("%-10s %-13s priority %d  lanes %s (default %zu)%s\n",
                  name.c_str(),
                  backend->available() ? "available" : "unavailable",
                  backend->priority(), widths.c_str(),
                  backend->default_lane_width(),
                  backend == &active ? "  [active]" : "");
    }
  }
  return 0;
}

/// Reports one failure on stderr (and, with --json, as a structured error
/// object on stdout) and returns the exit code to use.
int report_error(bool json, std::string_view category,
                 const std::string& message, int code) {
  if (json) {
    std::fputs(serve::render_error_response(category, message).c_str(),
               stdout);
  }
  std::fprintf(stderr, "safeopt: %s\n", message.c_str());
  return code;
}

/// Exit code for a safeopt::Error by category (see the header comment).
int exit_code_for(ErrorCategory category) noexcept {
  switch (category) {
    case ErrorCategory::kInvalidInput:
      return 3;
    case ErrorCategory::kResourceExhausted:
    case ErrorCategory::kDeadlineExceeded:
    case ErrorCategory::kCancelled:
      return 4;
    case ErrorCategory::kInternal:
      return 5;
  }
  return 5;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--version") == 0 ||
                    std::strcmp(argv[1], "version") == 0)) {
    std::printf("%s\n", build_info_string().c_str());
    return 0;
  }
  if (argc >= 2 && std::strcmp(argv[1], "backends") == 0) {
    try {
      return run_backends(argc, argv);
    } catch (const std::invalid_argument& error) {
      return usage(error.what());
    }
  }
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    try {
      return run_serve(argc, argv);
    } catch (const std::invalid_argument& error) {
      return usage(error.what());
    } catch (const Error& error) {
      std::fprintf(stderr, "safeopt serve: %s\n", error.what());
      return exit_code_for(error.category());
    }
  }
  std::optional<Options> options;
  try {
    options = parse_arguments(argc, argv);
  } catch (const std::invalid_argument& error) {
    return usage(error.what());
  }
  if (!options.has_value()) return usage();
  if (options->command != "validate" && options->command != "quantify" &&
      options->command != "run") {
    return usage(concat("unknown command \"", options->command, "\"").c_str());
  }
  try {
    if (options->backend.has_value()) {
      // A process-wide override, one layer below an explicit per-request
      // backend and one above SAFEOPT_BACKEND (see BackendRegistry::
      // resolve). Unknown/unavailable names degrade with a diagnostic in
      // the results rather than failing the run.
      expr::BackendRegistry::set_override(*options->backend);
    }
    const ftio::StudyDocument doc = ftio::load_study(options->model);
    if (options->command == "validate") {
      return run_validate(doc, *options);
    }
    if (options->command == "quantify") {
      return run_quantify(doc, *options);
    }
    return run_optimize(doc, *options);
  } catch (const ftio::ParseError& error) {
    if (options->json) {
      std::fputs(
          serve::render_error_response("invalid_input", error.what()).c_str(),
          stdout);
    }
    // Verbatim on stderr: the message already leads with file:line:column.
    std::fprintf(stderr, "%s\n", error.what());
    return 2;
  } catch (const Error& error) {
    return report_error(options->json, category_name(error.category()),
                        error.what(), exit_code_for(error.category()));
  } catch (const std::invalid_argument& error) {
    return report_error(options->json, "invalid_input", error.what(), 3);
  } catch (const std::exception& error) {
    return report_error(options->json, "internal", error.what(), 5);
  }
}
