// Declarative study documents — ftio grammar v2.
//
// Grammar v1 (parser.h) describes one fault tree with constant
// probabilities. A *study document* describes everything the optimization
// pipeline needs, so a complete §III study is data, not C++:
//
//   # Elbtunnel height control (paper §IV)
//   param T1 in [5, 40] unit "min" desc "runtime of timer 1";
//   param T2 in [5, 40] unit "min";
//
//   tree HCol;
//   toplevel Collision;
//   Collision or OtherCollisionCauses OT1_critical OT2_critical;
//   OT1_critical inhibit OT1 OHVcritical;
//   OT2_critical inhibit OT2 OHVcritical;
//   OtherCollisionCauses prob = 4.19e-08;
//   OT1 prob = survival[TruncatedNormal(4, 2, [0, inf])](T1);
//   OT2 prob = survival[TruncatedNormal(4, 2, [0, inf])](T2);
//   OHVcritical condition prob = 0.011;
//
//   hazard HCol cost = 100000;
//   solver multi_start starts = 8 inner = nelder_mead;
//   engine fta;
//   formula rare_event;
//
// New over v1 (v1 documents stay valid, with one caveat: the statement
// heads listed at the end of this comment are now reserved words, so a v1
// tree whose *node* is named e.g. "hazard" must be renamed):
//   * `param` declarations — the compact box of §III-B, with optional
//     unit/description metadata;
//   * leaf probabilities are *expressions* over the declared parameters
//     (expr/parse.h dialect), not just constants — §II-D.2;
//   * multiple `tree` sections per document (node names scoped per tree);
//   * `hazard <tree> cost = <c>;` — the Eq. 5/6 cost weights;
//   * optional `solver` / `engine` selections with key = value options, and
//     a `formula` choice (rare_event | min_cut_upper_bound).
//
// `core::Study::from_document` turns the parsed document into a runnable
// study on the compiled-tape hot path; `write_study` is the inverse of
// `parse_study` (round trip: parse(write(doc)) reproduces doc).
//
// Reserved statement heads: tree, toplevel, param, hazard, solver, engine,
// formula — fault-tree nodes cannot use these names.
#ifndef SAFEOPT_FTIO_STUDY_DOCUMENT_H
#define SAFEOPT_FTIO_STUDY_DOCUMENT_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "safeopt/expr/expr.h"
#include "safeopt/fta/fault_tree.h"

namespace safeopt::ftio {

/// One `param` declaration: a free parameter with its compact domain.
struct ParameterDecl {
  std::string name;
  double lower = 0.0;
  double upper = 1.0;
  std::string unit;         // optional ("" when absent)
  std::string description;  // optional
};

/// The probability expression of one leaf (basic event or condition).
struct LeafProbability {
  std::string name;
  bool is_condition = false;
  expr::Expr probability;
};

/// One `tree` section: the structure plus every leaf's expression
/// (basic events first, then conditions, each in ordinal order).
struct TreeModel {
  fta::FaultTree tree;
  std::vector<LeafProbability> leaves;

  [[nodiscard]] const LeafProbability* find_leaf(
      std::string_view name) const noexcept;
};

/// `hazard <tree> cost = <c>;` — one Eq. 5 term Cost_Hi · P(Hi)(X).
struct HazardDecl {
  std::string tree;  // names a TreeModel; the hazard is named after it
  double cost = 1.0;
};

/// One `key = value` option of a solver/engine selection.
struct OptionValue {
  enum class Kind { kNumber, kText };
  Kind kind = Kind::kNumber;
  double number = 0.0;
  std::string text;
  bool quoted = false;  // writer detail: re-emit text values with quotes

  [[nodiscard]] static OptionValue of(double value) {
    OptionValue v;
    v.kind = Kind::kNumber;
    v.number = value;
    return v;
  }
  [[nodiscard]] static OptionValue of(std::string value, bool quoted = false) {
    OptionValue v;
    v.kind = Kind::kText;
    v.text = std::move(value);
    v.quoted = quoted;
    return v;
  }
  friend bool operator==(const OptionValue&, const OptionValue&) = default;
};

/// `solver <name> [key = value ...];` (and identically `engine ...;`).
struct SelectionDecl {
  std::string name;
  std::vector<std::pair<std::string, OptionValue>> options;  // in order

  [[nodiscard]] const OptionValue* find_option(
      std::string_view key) const noexcept;
};

/// A parsed study document. Every field mirrors one statement form.
struct StudyDocument {
  /// The path the document was loaded from; "" for in-memory text. Parse
  /// errors repeat it ("models/elbtunnel.ft:12:3: ...").
  std::string source;

  std::vector<ParameterDecl> parameters;
  std::vector<TreeModel> trees;
  std::vector<HazardDecl> hazards;
  std::optional<SelectionDecl> solver;
  std::optional<SelectionDecl> engine;
  /// "rare_event" or "min_cut_upper_bound"; nullopt = the default.
  std::optional<std::string> formula;

  [[nodiscard]] const TreeModel* find_tree(
      std::string_view name) const noexcept;
  [[nodiscard]] const ParameterDecl* find_parameter(
      std::string_view name) const noexcept;
  /// Parameter names in declaration order (the optimizer's axis order).
  [[nodiscard]] std::vector<std::string> parameter_names() const;
};

/// Parses a study document (grammar v2; accepts every v1 document). Throws
/// ParseError — with `source_name` in the message when provided — on any
/// lexical, syntactic, or semantic problem: unknown parameters in a leaf
/// expression, constant probabilities outside [0, 1], a hazard naming an
/// unknown tree, cycles, duplicate declarations, ...
[[nodiscard]] StudyDocument parse_study(std::string_view text,
                                        std::string_view source_name = {});

/// Reads `path` and parses it; the file name lands in StudyDocument::source
/// and in every ParseError. Throws std::runtime_error when the file cannot
/// be read.
[[nodiscard]] StudyDocument load_study(const std::string& path);

/// Writes the v2 dialect. parse_study(write_study(doc)) reproduces the
/// document: equal parameters/hazards/selections and structurally identical
/// trees and leaf expressions (expr::structurally_equal).
[[nodiscard]] std::string write_study(const StudyDocument& doc);

/// Content hash of the *canonical form* of a document: FNV-1a 64 over
/// write_study(doc). Two documents that differ only in whitespace,
/// comments, or source path hash equal; any semantic difference (a
/// parameter bound, a gate input, a solver option) changes the hash. The
/// serve subsystem keys its artifact cache on this.
[[nodiscard]] std::uint64_t canonical_hash(const StudyDocument& doc);

/// canonical_hash rendered as 16 lowercase hex digits (cache keys, logs).
[[nodiscard]] std::string canonical_hash_hex(const StudyDocument& doc);

}  // namespace safeopt::ftio

#endif  // SAFEOPT_FTIO_STUDY_DOCUMENT_H
