#include "safeopt/expr/parse.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "node.h"
#include "safeopt/stats/distribution.h"
#include "safeopt/support/strings.h"

namespace safeopt::expr {

ParseError::ParseError(std::size_t offset, const std::string& what)
    : std::runtime_error(what), offset_(offset) {}

// -------------------------------------------------------------- SymbolTable

SymbolTable::SymbolTable(std::initializer_list<std::string> names) {
  for (const std::string& name : names) add(name);
}

SymbolTable::SymbolTable(std::vector<std::string> names) {
  for (std::string& name : names) add(std::move(name));
}

void SymbolTable::add(std::string name) {
  const auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it == names_.end() || *it != name) names_.insert(it, std::move(name));
}

bool SymbolTable::contains(std::string_view name) const noexcept {
  return std::binary_search(names_.begin(), names_.end(), name);
}

// ------------------------------------------------------------------- Lexer

namespace {

struct Token {
  enum class Kind {
    kNumber,
    kIdentifier,
    kLParen,
    kRParen,
    kLBracket,
    kRBracket,
    kComma,
    kPlus,
    kMinus,
    kStar,
    kSlash,
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string_view text;
  double number = 0.0;
  std::size_t offset = 0;
};

[[nodiscard]] bool is_identifier_start(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

[[nodiscard]] bool is_identifier_char(char c) noexcept {
  return is_identifier_start(c) || (c >= '0' && c <= '9');
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
    Token token;
    token.offset = pos_;
    if (pos_ >= text_.size()) return token;
    const char c = text_[pos_];
    const auto single = [&](Token::Kind kind) {
      token.kind = kind;
      token.text = text_.substr(pos_, 1);
      ++pos_;
      return token;
    };
    switch (c) {
      case '(': return single(Token::Kind::kLParen);
      case ')': return single(Token::Kind::kRParen);
      case '[': return single(Token::Kind::kLBracket);
      case ']': return single(Token::Kind::kRBracket);
      case ',': return single(Token::Kind::kComma);
      case '+': return single(Token::Kind::kPlus);
      case '-': return single(Token::Kind::kMinus);
      case '*': return single(Token::Kind::kStar);
      case '/': return single(Token::Kind::kSlash);
      default: break;
    }
    if ((c >= '0' && c <= '9') || c == '.') {
      // std::from_chars consumes the maximal valid double, which keeps
      // scientific forms ("1e-06", "1e+05") one token while stopping at
      // operators ("2*T1" -> "2", '*', "T1").
      const char* begin = text_.data() + pos_;
      const char* end = text_.data() + text_.size();
      double value = 0.0;
      const auto result = std::from_chars(begin, end, value);
      if (result.ec != std::errc{}) {
        throw ParseError(pos_, concat("malformed number starting at '",
                                      text_.substr(pos_, 8), "'"));
      }
      token.kind = Token::Kind::kNumber;
      token.number = value;
      token.text =
          text_.substr(pos_, static_cast<std::size_t>(result.ptr - begin));
      pos_ += token.text.size();
      return token;
    }
    if (is_identifier_start(c)) {
      const std::size_t start = pos_;
      while (pos_ < text_.size() && is_identifier_char(text_[pos_])) ++pos_;
      token.kind = Token::Kind::kIdentifier;
      token.text = text_.substr(start, pos_ - start);
      return token;
    }
    throw ParseError(pos_, concat("unexpected character '",
                                  std::string_view(&text_[pos_], 1),
                                  "' in expression"));
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------------ Parser

class Parser {
 public:
  Parser(std::string_view text, const SymbolTable& symbols)
      : lexer_(text), symbols_(symbols) {
    consume();
  }

  Expr parse_all() {
    if (current_.kind == Token::Kind::kEnd) {
      throw ParseError(current_.offset, "empty expression");
    }
    Expr result = parse_expression();
    if (current_.kind != Token::Kind::kEnd) {
      throw ParseError(current_.offset,
                       concat("unexpected trailing input at '", current_.text,
                              "'"));
    }
    return result;
  }

 private:
  void consume() { current_ = lexer_.next(); }

  [[nodiscard]] bool accept(Token::Kind kind) {
    if (current_.kind != kind) return false;
    consume();
    return true;
  }

  void expect(Token::Kind kind, const char* what) {
    if (current_.kind == kind) {
      consume();
      return;
    }
    if (current_.kind == Token::Kind::kEnd) {
      throw ParseError(current_.offset,
                       concat("expected ", what, " at end of expression"));
    }
    throw ParseError(current_.offset, concat("expected ", what, ", got '",
                                             current_.text, "'"));
  }

  Expr parse_expression() {
    Expr left = parse_term();
    while (true) {
      if (accept(Token::Kind::kPlus)) {
        left = std::move(left) + parse_term();
      } else if (accept(Token::Kind::kMinus)) {
        left = std::move(left) - parse_term();
      } else {
        return left;
      }
    }
  }

  Expr parse_term() {
    Expr left = parse_factor();
    while (true) {
      if (accept(Token::Kind::kStar)) {
        left = std::move(left) * parse_factor();
      } else if (accept(Token::Kind::kSlash)) {
        left = std::move(left) / parse_factor();
      } else {
        return left;
      }
    }
  }

  Expr parse_factor() {
    // Recursion guard: every nesting construct (parentheses, unary minus,
    // function arguments) re-enters the grammar through parse_factor, so
    // bounding it here caps total parser stack depth — a pathological
    // "((((...1...))))" or "----...-1" raises ParseError instead of
    // overflowing the stack. 256 is far beyond any legitimate formula.
    if (++depth_ > kMaxDepth) {
      throw ParseError(current_.offset,
                       concat("expression nesting exceeds the supported "
                              "depth (", std::to_string(kMaxDepth), ")"));
    }
    struct DepthGuard {
      std::size_t& depth;
      ~DepthGuard() { --depth; }
    } guard{depth_};
    if (accept(Token::Kind::kMinus)) {
      // "-2" is the constant -2, not neg(2): the printer renders negative
      // ConstNodes as signed literals, and round-tripping them back into
      // constants keeps parse ∘ print structure-preserving.
      if (current_.kind == Token::Kind::kNumber) {
        const double value = current_.number;
        consume();
        return constant(-value);
      }
      if (current_.kind == Token::Kind::kIdentifier &&
          current_.text == "inf") {
        consume();
        return constant(-std::numeric_limits<double>::infinity());
      }
      return -parse_factor();
    }
    return parse_primary();
  }

  Expr parse_primary() {
    if (current_.kind == Token::Kind::kNumber) {
      const double value = current_.number;
      consume();
      return constant(value);
    }
    if (accept(Token::Kind::kLParen)) {
      Expr inner = parse_expression();
      expect(Token::Kind::kRParen, "')'");
      return inner;
    }
    if (current_.kind != Token::Kind::kIdentifier) {
      throw ParseError(current_.offset,
                       current_.kind == Token::Kind::kEnd
                           ? std::string("unexpected end of expression")
                           : concat("unexpected '", current_.text,
                                    "' in expression"));
    }
    const Token name = current_;
    consume();
    if (current_.kind == Token::Kind::kLParen) return parse_call(name);
    if (current_.kind == Token::Kind::kLBracket) {
      return parse_distribution_call(name);
    }
    if (name.text == "inf") {
      return constant(std::numeric_limits<double>::infinity());
    }
    if (name.text == "nan") {
      return constant(std::numeric_limits<double>::quiet_NaN());
    }
    if (!symbols_.contains(name.text)) {
      throw ParseError(
          name.offset,
          concat("unknown parameter '", name.text, "' (declared: ",
                 symbols_.names().empty() ? "none"
                                          : join(symbols_.names(), ", "),
                 ")"));
    }
    return parameter(std::string(name.text));
  }

  Expr parse_call(const Token& name) {
    expect(Token::Kind::kLParen, "'('");
    if (name.text == "exp" || name.text == "log" || name.text == "sqrt") {
      Expr arg = parse_expression();
      expect(Token::Kind::kRParen, "')'");
      if (name.text == "exp") return exp(std::move(arg));
      if (name.text == "log") return log(std::move(arg));
      return sqrt(std::move(arg));
    }
    if (name.text == "min" || name.text == "max") {
      Expr a = parse_expression();
      expect(Token::Kind::kComma, "','");
      Expr b = parse_expression();
      expect(Token::Kind::kRParen, "')'");
      return name.text == "min" ? min(std::move(a), std::move(b))
                                : max(std::move(a), std::move(b));
    }
    if (name.text == "pow") {
      Expr base = parse_expression();
      expect(Token::Kind::kComma, "','");
      const double exponent = parse_constant_argument("pow exponent");
      expect(Token::Kind::kRParen, "')'");
      return pow(std::move(base), exponent);
    }
    if (name.text == "clamp") {
      Expr arg = parse_expression();
      expect(Token::Kind::kComma, "','");
      const double lo = parse_constant_argument("clamp lower bound");
      expect(Token::Kind::kComma, "','");
      const double hi = parse_constant_argument("clamp upper bound");
      expect(Token::Kind::kRParen, "')'");
      if (!(lo <= hi)) {
        throw ParseError(name.offset,
                         "clamp bounds must satisfy lower <= upper");
      }
      return clamp(std::move(arg), lo, hi);
    }
    if (name.text == "cdf" || name.text == "survival") {
      throw ParseError(name.offset,
                       concat(name.text,
                              " takes a distribution in brackets: ",
                              name.text, "[Normal(4, 2)](T1)"));
    }
    throw ParseError(
        name.offset,
        concat("unknown function '", name.text,
               "' (supported: exp, log, sqrt, pow, min, max, clamp, "
               "cdf[...], survival[...]; opaque function1 nodes cannot be "
               "written in text)"));
  }

  /// A constant argument slot (pow exponent, clamp bound): any constant
  /// subexpression works, a parameterized one is rejected.
  double parse_constant_argument(const char* what) {
    const std::size_t offset = current_.offset;
    const Expr value = parse_expression();
    if (!value.is_constant()) {
      throw ParseError(offset, concat(what, " must be a constant"));
    }
    return value.evaluate({});
  }

  /// A signed numeric literal inside distribution arguments.
  double parse_signed_number(const char* what) {
    const bool negative = accept(Token::Kind::kMinus);
    if (current_.kind == Token::Kind::kNumber) {
      const double value = current_.number;
      consume();
      return negative ? -value : value;
    }
    if (current_.kind == Token::Kind::kIdentifier && current_.text == "inf") {
      consume();
      const double inf = std::numeric_limits<double>::infinity();
      return negative ? -inf : inf;
    }
    throw ParseError(current_.offset,
                     concat("expected a number for ", what, ", got '",
                            current_.text, "'"));
  }

  Expr parse_distribution_call(const Token& name) {
    expect(Token::Kind::kLBracket, "'['");
    if (name.text != "cdf" && name.text != "survival") {
      throw ParseError(name.offset,
                       concat("unknown function '", name.text,
                              "'; only cdf[...] and survival[...] take a "
                              "distribution"));
    }
    const bool survival_call = name.text == "survival";
    std::shared_ptr<const stats::Distribution> dist = parse_distribution();
    expect(Token::Kind::kRBracket, "']'");
    expect(Token::Kind::kLParen, "'('");
    Expr arg = parse_expression();
    expect(Token::Kind::kRParen, "')'");
    return survival_call ? survival(std::move(dist), std::move(arg))
                         : cdf(std::move(dist), std::move(arg));
  }

  std::shared_ptr<const stats::Distribution> parse_distribution() {
    if (current_.kind != Token::Kind::kIdentifier) {
      throw ParseError(current_.offset, "expected a distribution name");
    }
    const Token name = current_;
    consume();
    expect(Token::Kind::kLParen, "'(' after the distribution name");

    const auto check = [&](bool ok, const char* message) {
      if (!ok) {
        throw ParseError(name.offset,
                         concat(name.text, ": ", message));
      }
    };

    std::shared_ptr<const stats::Distribution> dist;
    if (name.text == "Normal" || name.text == "LogNormal") {
      const double mu = parse_signed_number("mu");
      expect(Token::Kind::kComma, "','");
      const double sigma = parse_signed_number("sigma");
      check(std::isfinite(mu), "mu must be finite");
      check(std::isfinite(sigma) && sigma > 0.0, "sigma must be > 0");
      if (name.text == "Normal") {
        dist = std::make_shared<stats::Normal>(mu, sigma);
      } else {
        dist = std::make_shared<stats::LogNormal>(mu, sigma);
      }
    } else if (name.text == "TruncatedNormal") {
      const double mu = parse_signed_number("mu");
      expect(Token::Kind::kComma, "','");
      const double sigma = parse_signed_number("sigma");
      expect(Token::Kind::kComma, "','");
      expect(Token::Kind::kLBracket, "'[' before the truncation bounds");
      const double lo = parse_signed_number("the lower bound");
      expect(Token::Kind::kComma, "','");
      const double hi = parse_signed_number("the upper bound");
      expect(Token::Kind::kRBracket, "']' after the truncation bounds");
      check(std::isfinite(mu), "mu must be finite");
      check(std::isfinite(sigma) && sigma > 0.0, "sigma must be > 0");
      check(lo < hi, "truncation requires lower < upper");
      dist = std::make_shared<stats::TruncatedNormal>(mu, sigma, lo, hi);
    } else if (name.text == "Exponential") {
      const double rate = parse_signed_number("rate");
      check(std::isfinite(rate) && rate > 0.0, "rate must be > 0");
      dist = std::make_shared<stats::Exponential>(rate);
    } else if (name.text == "Weibull" || name.text == "Gamma") {
      const double shape = parse_signed_number("shape");
      expect(Token::Kind::kComma, "','");
      const double scale = parse_signed_number("scale");
      check(std::isfinite(shape) && shape > 0.0, "shape must be > 0");
      check(std::isfinite(scale) && scale > 0.0, "scale must be > 0");
      if (name.text == "Weibull") {
        dist = std::make_shared<stats::Weibull>(shape, scale);
      } else {
        dist = std::make_shared<stats::Gamma>(shape, scale);
      }
    } else if (name.text == "Uniform") {
      const double lo = parse_signed_number("the lower bound");
      expect(Token::Kind::kComma, "','");
      const double hi = parse_signed_number("the upper bound");
      check(std::isfinite(lo) && std::isfinite(hi) && lo < hi,
            "requires finite lower < upper");
      dist = std::make_shared<stats::Uniform>(lo, hi);
    } else {
      throw ParseError(
          name.offset,
          concat("unknown distribution '", name.text,
                 "' (supported: Normal, TruncatedNormal, Exponential, "
                 "Weibull, LogNormal, Uniform, Gamma)"));
    }
    expect(Token::Kind::kRParen, "')' after the distribution parameters");
    return dist;
  }

  static constexpr std::size_t kMaxDepth = 256;

  Lexer lexer_;
  Token current_;
  const SymbolTable& symbols_;
  std::size_t depth_ = 0;  // live parse_factor frames (see the guard there)
};

// ------------------------------------------------------ structural equality

using detail::Node;
using detail::NodeKind;

bool nodes_equal(const Node* a, const Node* b) noexcept {
  if (a == b) return true;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case NodeKind::kConst: {
      const auto* ca = static_cast<const detail::ConstNode*>(a);
      const auto* cb = static_cast<const detail::ConstNode*>(b);
      // Bit comparison: -0.0 != 0.0 and NaN == NaN here, which is what
      // "same tape, same bits" requires.
      const double x = ca->constant();
      const double y = cb->constant();
      return std::memcmp(&x, &y, sizeof(double)) == 0;
    }
    case NodeKind::kParam: {
      return static_cast<const detail::ParamNode*>(a)->name() ==
             static_cast<const detail::ParamNode*>(b)->name();
    }
    case NodeKind::kBinary: {
      const auto* ba = static_cast<const detail::BinaryNode*>(a);
      const auto* bb = static_cast<const detail::BinaryNode*>(b);
      return ba->op() == bb->op() &&
             nodes_equal(ba->lhs().get(), bb->lhs().get()) &&
             nodes_equal(ba->rhs().get(), bb->rhs().get());
    }
    case NodeKind::kUnary: {
      const auto* ua = static_cast<const detail::UnaryNode*>(a);
      const auto* ub = static_cast<const detail::UnaryNode*>(b);
      return ua->op() == ub->op() &&
             nodes_equal(ua->operand().get(), ub->operand().get());
    }
    case NodeKind::kPow: {
      const auto* pa = static_cast<const detail::PowNode*>(a);
      const auto* pb = static_cast<const detail::PowNode*>(b);
      const double x = pa->exponent();
      const double y = pb->exponent();
      return std::memcmp(&x, &y, sizeof(double)) == 0 &&
             nodes_equal(pa->operand().get(), pb->operand().get());
    }
    case NodeKind::kCdf: {
      const auto* ca = static_cast<const detail::CdfNode*>(a);
      const auto* cb = static_cast<const detail::CdfNode*>(b);
      return ca->is_survival() == cb->is_survival() &&
             ca->distribution()->name() == cb->distribution()->name() &&
             nodes_equal(ca->operand().get(), cb->operand().get());
    }
    case NodeKind::kFunction: {
      const auto* fa = static_cast<const detail::FunctionNode*>(a);
      const auto* fb = static_cast<const detail::FunctionNode*>(b);
      return fa->name() == fb->name() &&
             nodes_equal(fa->operand().get(), fb->operand().get());
    }
  }
  return false;
}

}  // namespace

Expr parse(std::string_view text, const SymbolTable& symbols) {
  Parser parser(text, symbols);
  return parser.parse_all();
}

bool structurally_equal(const Expr& a, const Expr& b) noexcept {
  return nodes_equal(a.node().get(), b.node().get());
}

}  // namespace safeopt::expr
