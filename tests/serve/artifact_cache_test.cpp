// ArtifactCache contract tests: byte-budget LRU, single-flight dedup, the
// store=false escape hatch, and per-pass hit/miss accounting — the policies
// every analysis pass relies on without re-implementing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "safeopt/serve/artifact_cache.h"
#include "safeopt/support/error.h"

namespace safeopt::serve {
namespace {

CacheEntry int_entry(int value, std::size_t bytes, bool store = true) {
  return CacheEntry{std::make_shared<const int>(value), bytes, store};
}

TEST(ArtifactCacheTest, HitReturnsTheStoredValueWithoutRerunningTheFactory) {
  ArtifactCache cache(1024);
  int runs = 0;
  const auto make = [&] {
    ++runs;
    return int_entry(41, 100);
  };
  EXPECT_EQ(*cache.get_as<int>("parse:a", make), 41);
  EXPECT_EQ(*cache.get_as<int>("parse:a", make), 41);
  EXPECT_EQ(runs, 1);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes_in_use, 100u);
}

TEST(ArtifactCacheTest, EvictsLeastRecentlyUsedPastTheByteBudget) {
  ArtifactCache cache(300);
  (void)cache.get_as<int>("compile:a", [] { return int_entry(1, 100); });
  (void)cache.get_as<int>("compile:b", [] { return int_entry(2, 100); });
  (void)cache.get_as<int>("compile:c", [] { return int_entry(3, 100); });
  // Touch `a` so `b` is the least recently used.
  (void)cache.get_as<int>("compile:a", [] { return int_entry(-1, 100); });

  // Inserting d (100 bytes) pushes past 300 → evicts exactly `b`.
  (void)cache.get_as<int>("compile:d", [] { return int_entry(4, 100); });
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.bytes_in_use, 300u);

  // a, c, d must all still be present (hits never evict, so probe them
  // before re-inserting anything).
  int rebuilds = 0;
  for (const char* key : {"compile:a", "compile:c", "compile:d"}) {
    (void)cache.get_as<int>(key, [&] {
      ++rebuilds;
      return int_entry(0, 100);
    });
  }
  EXPECT_EQ(rebuilds, 0) << "only `b` should have been evicted";
  EXPECT_EQ(*cache.get_as<int>("compile:b",
                               [&] {
                                 ++rebuilds;
                                 return int_entry(2, 100);
                               }),
            2);
  EXPECT_EQ(rebuilds, 1) << "evicted entry must be recomputed";
}

TEST(ArtifactCacheTest, NeverEvictsTheEntryJustInserted) {
  ArtifactCache cache(100);
  // 100-byte artifact exactly fills the budget; inserting another evicts
  // the first, not the newcomer.
  (void)cache.get_as<int>("bdd:a", [] { return int_entry(1, 100); });
  (void)cache.get_as<int>("bdd:b", [] { return int_entry(2, 100); });
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  int runs = 0;
  EXPECT_EQ(*cache.get_as<int>("bdd:b",
                               [&] {
                                 ++runs;
                                 return int_entry(2, 100);
                               }),
            2);
  EXPECT_EQ(runs, 0) << "the newest entry must have survived";
}

TEST(ArtifactCacheTest, ArtifactsLargerThanTheBudgetAreReturnedNotStored) {
  ArtifactCache cache(100);
  EXPECT_EQ(*cache.get_as<int>("parse:big", [] { return int_entry(7, 500); }),
            7);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes_in_use, 0u);
}

TEST(ArtifactCacheTest, StoreFalseEntriesAreNotCached) {
  ArtifactCache cache(1024);
  int runs = 0;
  const auto make = [&] {
    ++runs;
    return int_entry(9, 10, /*store=*/false);
  };
  EXPECT_EQ(*cache.get_as<int>("quantify:aborted", make), 9);
  EXPECT_EQ(*cache.get_as<int>("quantify:aborted", make), 9);
  EXPECT_EQ(runs, 2) << "non-reusable outcomes must be recomputed";
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ArtifactCacheTest, SingleFlightRunsOneFactoryForConcurrentRequests) {
  ArtifactCache cache(1 << 20);
  constexpr int kThreads = 8;

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  int arrived = 0;
  std::atomic<int> factory_runs{0};

  // The factory blocks until every thread has called get_or_compute, so all
  // non-leaders must take the single-flight wait path.
  const auto make = [&] {
    factory_runs.fetch_add(1);
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait_for(lock, std::chrono::seconds(5),
                     [&] { return arrived == kThreads; });
    return int_entry(123, 64);
  };

  std::vector<std::thread> threads;
  std::vector<int> results(kThreads, 0);
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      {
        std::unique_lock<std::mutex> lock(gate_mutex);
        ++arrived;
      }
      gate_cv.notify_all();
      results[i] = *cache.get_as<int>("compile:shared", make);
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(factory_runs.load(), 1);
  for (const int value : results) EXPECT_EQ(value, 123);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.single_flight_waits, static_cast<std::uint64_t>(kThreads - 1));
}

/// Spins inside a factory until another request has joined the flight (so
/// the single-flight wait path is actually taken), bounded at 5 s.
void await_a_waiter(const ArtifactCache& cache) {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (cache.stats().single_flight_waits == 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(ArtifactCacheTest, WaitersDoNotInheritTheLeadersDeadlineFailure) {
  ArtifactCache cache(1024);
  std::atomic<int> runs{0};

  std::thread leader([&] {
    try {
      (void)cache.get_or_compute("quantify:k", [&]() -> CacheEntry {
        runs.fetch_add(1);
        await_a_waiter(cache);
        throw Error(ErrorCategory::kDeadlineExceeded,
                    "the leader's own deadline fired");
      });
      ADD_FAILURE() << "the leader must see its own deadline error";
    } catch (const Error& error) {
      EXPECT_EQ(error.category(), ErrorCategory::kDeadlineExceeded);
    }
  });

  // Join the leader's flight, then — because its failure is specific to its
  // own request control — rerun the computation instead of adopting it.
  while (runs.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto value = cache.get_as<int>("quantify:k", [&] {
    runs.fetch_add(1);
    return int_entry(7, 8);
  });
  leader.join();

  EXPECT_EQ(*value, 7) << "the waiter must get a cleanly computed value";
  EXPECT_EQ(runs.load(), 2);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.single_flight_waits, 1u);
  EXPECT_EQ(stats.single_flight_reruns, 1u);
}

TEST(ArtifactCacheTest, WaitersDoNotAdoptShareFalseOutcomes) {
  ArtifactCache cache(1024);
  std::atomic<int> runs{0};

  std::thread leader([&] {
    const auto value = cache.get_as<int>("optimize:k", [&] {
      runs.fetch_add(1);
      await_a_waiter(cache);
      // An aborted best-so-far outcome: valid for the leader, nobody else.
      CacheEntry entry = int_entry(1, 8, /*store=*/false);
      entry.share = false;
      return entry;
    });
    EXPECT_EQ(*value, 1) << "the leader still gets its own outcome";
  });

  while (runs.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto value = cache.get_as<int>("optimize:k", [&] {
    runs.fetch_add(1);
    return int_entry(2, 8);
  });
  leader.join();

  EXPECT_EQ(*value, 2) << "the waiter must recompute under its own control";
  EXPECT_EQ(runs.load(), 2);
  EXPECT_EQ(cache.stats().single_flight_reruns, 1u);
}

TEST(ArtifactCacheTest, FactoryFailurePropagatesToWaitersAndCachesNothing) {
  ArtifactCache cache(1024);
  EXPECT_THROW((void)cache.get_or_compute(
                   "compile:boom",
                   []() -> CacheEntry {
                     throw std::runtime_error("factory exploded");
                   }),
               std::runtime_error);
  // The key is not poisoned: a later, working factory runs fine.
  EXPECT_EQ(*cache.get_as<int>("compile:boom", [] { return int_entry(5, 8); }),
            5);
}

TEST(ArtifactCacheTest, TracksHitsAndMissesPerPassPrefix) {
  ArtifactCache cache(1 << 20);
  (void)cache.get_as<int>("parse:x", [] { return int_entry(1, 8); });
  (void)cache.get_as<int>("parse:x", [] { return int_entry(1, 8); });
  (void)cache.get_as<int>("compile:x:fp", [] { return int_entry(2, 8); });
  const CacheStats stats = cache.stats();
  ASSERT_EQ(stats.passes.count("parse"), 1u);
  ASSERT_EQ(stats.passes.count("compile"), 1u);
  EXPECT_EQ(stats.passes.at("parse").hits, 1u);
  EXPECT_EQ(stats.passes.at("parse").misses, 1u);
  EXPECT_EQ(stats.passes.at("compile").hits, 0u);
  EXPECT_EQ(stats.passes.at("compile").misses, 1u);
}

TEST(ArtifactCacheTest, ClearDropsEverythingButKeepsCounters) {
  ArtifactCache cache(1024);
  (void)cache.get_as<int>("parse:x", [] { return int_entry(1, 8); });
  cache.clear();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes_in_use, 0u);
  EXPECT_EQ(stats.misses, 1u);
}

}  // namespace
}  // namespace safeopt::serve
