#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "safeopt/core/study.h"
#include "safeopt/ftio/study_document.h"

namespace safeopt::core {
namespace {

constexpr const char* kDocument = R"(
param M in [4, 52] unit "weeks";
param S in [1, 26] unit "weeks";

tree Overheat;
toplevel Overheat_top;
Overheat_top or CoolingLost Sensors;
CoolingLost inhibit CoolingFailed ProcessRunning;
CoolingFailed 2of3 PumpA PumpB PumpC;
Sensors and TempSensor1 TempSensor2;
PumpA prob = cdf[Weibull(2, 60)](M);
PumpB prob = cdf[Weibull(2, 60)](M);
PumpC prob = cdf[Weibull(2, 60)](M);
TempSensor1 prob = cdf[Weibull(1.5, 80)](S);
TempSensor2 prob = cdf[Weibull(1.5, 80)](S);
ProcessRunning condition prob = 0.7;

tree Shutdown;
toplevel Shutdown_top;
Shutdown_top or MaintenanceTrip TestTrip;
MaintenanceTrip prob = 1 - exp(-0.4 / M);
TestTrip prob = 1 - exp(-0.1 / S);

hazard Overheat cost = 25e6;
hazard Shutdown cost = 150000;
solver differential_evolution seed = 7 max_iterations = 60;
engine fta method = min_cut_upper_bound;
formula rare_event;
)";

TEST(StudyDocumentTest, AssemblesSpaceCostModelAndSelections) {
  const ftio::StudyDocument doc = ftio::parse_study(kDocument);
  const Study study = Study::from_document(doc);

  ASSERT_EQ(study.space().size(), 2u);
  EXPECT_EQ(study.space()[0].name, "M");
  EXPECT_EQ(study.space()[0].lower, 4.0);
  EXPECT_EQ(study.space()[0].upper, 52.0);
  EXPECT_EQ(study.space()[0].unit, "weeks");
  EXPECT_EQ(study.space()[1].name, "S");

  ASSERT_EQ(study.model().hazard_count(), 2u);
  EXPECT_EQ(study.model().hazard(0).name, "Overheat");
  EXPECT_EQ(study.model().hazard(0).cost, 25e6);
  EXPECT_EQ(study.model().hazard(1).name, "Shutdown");

  EXPECT_EQ(study.solver_name(), "differential_evolution");
  EXPECT_EQ(study.engine_name(), "fta");
}

TEST(StudyDocumentTest, CostModelMatchesTheDocumentExpressions) {
  // The cost model's hazard probabilities must equal the hazard expression
  // assembled from the document's own trees and leaves.
  const ftio::StudyDocument doc = ftio::parse_study(kDocument);
  const Study study = Study::from_document(doc);

  const expr::ParameterAssignment at{{"M", 26.0}, {"S", 8.0}};
  const ftio::TreeModel* shutdown = doc.find_tree("Shutdown");
  ASSERT_NE(shutdown, nullptr);
  // Shutdown is a pure OR of two events: rare-event P = p1 + p2.
  const double p1 =
      shutdown->find_leaf("MaintenanceTrip")->probability.evaluate(at);
  const double p2 = shutdown->find_leaf("TestTrip")->probability.evaluate(at);
  EXPECT_DOUBLE_EQ(
      study.model().hazard_by_name("Shutdown").probability.evaluate(at),
      p1 + p2);

  const auto result = study.evaluate_at(at);
  EXPECT_EQ(result.hazard_probabilities.size(), 2u);
  EXPECT_DOUBLE_EQ(result.cost,
                   study.model().cost_expression().evaluate(at));
}

TEST(StudyDocumentTest, QuantifyWorksOutOfTheBoxOnEveryEngine) {
  const ftio::StudyDocument doc = ftio::parse_study(kDocument);
  const expr::ParameterAssignment at{{"M", 20.0}, {"S", 5.0}};

  // The document selects "fta" with the min-cut upper bound.
  Study study = Study::from_document(doc);
  const double expression_value =
      study.model().hazard_by_name("Overheat").probability.evaluate(at);
  const auto fta = study.quantify("Overheat", at);
  EXPECT_GT(fta.probability, 0.0);

  // Swap to the exact BDD engine — same attached trees, no re-assembly.
  study.engine("bdd");
  const auto bdd = study.quantify("Overheat", at);
  // Rare-event expression vs exact Shannon: close but not equal (the
  // rare-event sum overestimates; at these leaf probabilities by a few %).
  EXPECT_NEAR(bdd.probability, expression_value, 0.1 * expression_value);
  EXPECT_LE(bdd.probability, fta.probability);
}

TEST(StudyDocumentTest, CopiesShareTheOwnedModel) {
  std::optional<Study> copy;
  {
    const ftio::StudyDocument doc = ftio::parse_study(kDocument);
    const Study original = Study::from_document(doc);
    copy = original;
    // `doc` and `original` die here; the copy must keep the trees alive.
  }
  const auto q =
      copy->quantify("Shutdown", {{"M", 10.0}, {"S", 4.0}});
  EXPECT_GT(q.probability, 0.0);
  EXPECT_LT(q.probability, 1.0);
}

TEST(StudyDocumentTest, RunUsesTheDocumentSolver) {
  const ftio::StudyDocument doc = ftio::parse_study(kDocument);
  const Study study = Study::from_document(doc);
  const auto result = study.run();
  // DE with seed 7, 60 generations: an interior optimum exists (wear-out
  // risk grows with the intervals, trip risk shrinks).
  EXPECT_GT(result.optimal_parameters.get("M"), 4.0);
  EXPECT_LT(result.optimal_parameters.get("M"), 52.0);
  EXPECT_GT(result.cost, 0.0);
  EXPECT_EQ(result.hazard_probabilities.size(), 2u);
}

TEST(StudyDocumentTest, MinCutFormulaChangesTheAssembledExpression) {
  std::string text(kDocument);
  const auto pos = text.find("formula rare_event");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("formula rare_event").size(),
               "formula min_cut_upper_bound");
  const Study rare = Study::from_document(ftio::parse_study(kDocument));
  const Study mcub = Study::from_document(ftio::parse_study(text));
  const expr::ParameterAssignment at{{"M", 40.0}, {"S", 20.0}};
  const double p_rare =
      rare.model().hazard_by_name("Overheat").probability.evaluate(at);
  const double p_mcub =
      mcub.model().hazard_by_name("Overheat").probability.evaluate(at);
  // Rare-event sums cut probabilities; the min-cut bound is tighter.
  EXPECT_LT(p_mcub, p_rare);
  EXPECT_NEAR(p_mcub, p_rare, 0.15 * p_rare);
}

TEST(StudyDocumentTest, RejectsDocumentsWithoutHazards) {
  const ftio::StudyDocument doc = ftio::parse_study(
      "toplevel t;\nt or a;\na prob = 0.1;\n");
  try {
    (void)Study::from_document(doc);
    FAIL();
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("no hazards"),
              std::string::npos)
        << error.what();
  }
}

TEST(StudyDocumentTest, DocumentOptionsSurviveInTheStudyConfigs) {
  // The CLI layers --extra/--seed/--engine overrides on top of
  // solver_config()/engine_config(); the document's options must be
  // visible there.
  const ftio::StudyDocument doc = ftio::parse_study(kDocument);
  const Study study = Study::from_document(doc);
  EXPECT_EQ(study.solver_config().seed.value_or(0), 7u);
  EXPECT_EQ(study.solver_config().max_iterations, 60u);
  EXPECT_EQ(study.engine_config().method,
            fta::ProbabilityMethod::kMinCutUpperBound);
}

TEST(StudyDocumentTest, FormulaSeedsTheEngineMethodWithoutAnEngineSection) {
  // `formula min_cut_upper_bound;` with no engine section: quantify()
  // must use the same bound the cost model was assembled with.
  const std::string text =
      "param X in [0, 1];\ntoplevel t;\nt or a b;\n"
      "a prob = 0.3 * X;\nb prob = 0.4 * X;\n"
      "hazard fault-tree cost = 1;\nformula min_cut_upper_bound;\n";
  const Study study = Study::from_document(ftio::parse_study(text));
  EXPECT_EQ(study.engine_config().method,
            fta::ProbabilityMethod::kMinCutUpperBound);
  const expr::ParameterAssignment at{{"X", 1.0}};
  // fta engine with MCUB on {a}, {b}: 1 - (1-0.3)(1-0.4) = 0.58 — equal to
  // the document's own cost-model expression, not the rare-event 0.7.
  const auto q = study.quantify("fault-tree", at);
  EXPECT_DOUBLE_EQ(q.probability,
                   study.model().hazard(0).probability.evaluate(at));
  EXPECT_DOUBLE_EQ(q.probability, 1.0 - 0.7 * 0.6);
}

TEST(StudyDocumentTest, RejectsDocumentsWithoutParameters) {
  const ftio::StudyDocument doc = ftio::parse_study(
      "toplevel t;\nt or a;\na prob = 0.1;\nhazard fault-tree cost = 1;\n");
  try {
    (void)Study::from_document(doc);
    FAIL();
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("no free parameters"),
              std::string::npos)
        << error.what();
  }
}

TEST(StudyDocumentTest, RejectsUnknownSolverAndEngine) {
  const std::string base =
      "param X in [0, 1];\ntoplevel t;\nt or a;\na prob = 0.1 * X;\n"
      "hazard fault-tree cost = 1;\n";
  EXPECT_THROW((void)Study::from_document(
                   ftio::parse_study(base + "solver warp_drive;\n")),
               std::invalid_argument);
  EXPECT_THROW((void)Study::from_document(
                   ftio::parse_study(base + "engine quantum;\n")),
               std::invalid_argument);
  EXPECT_THROW((void)Study::from_document(ftio::parse_study(
                   base + "engine fta method = exact;\n")),
               std::invalid_argument);
  EXPECT_THROW((void)Study::from_document(ftio::parse_study(
                   base + "engine mc trials = 3.5;\n")),
               std::invalid_argument);
  EXPECT_THROW((void)Study::from_document(ftio::parse_study(
                   base + "solver nelder_mead seed = -1;\n")),
               std::invalid_argument);
  // A numeric-looking typo must not silently become an ignored string
  // extra ("8x" lexes as an identifier in the document grammar).
  EXPECT_THROW((void)Study::from_document(ftio::parse_study(
                   base + "solver multi_start starts = 8x;\n")),
               std::invalid_argument);
}

TEST(StudyDocumentTest, SelectionHelpersMirrorFromDocument) {
  const ftio::StudyDocument doc = ftio::parse_study(kDocument);
  const auto solver = document_solver_selection(doc);
  ASSERT_TRUE(solver.has_value());
  EXPECT_EQ(solver->name, "differential_evolution");
  EXPECT_EQ(solver->config.seed.value_or(0), 7u);
  const auto [engine_name, engine_config] = document_engine_selection(doc);
  EXPECT_EQ(engine_name, "fta");
  EXPECT_EQ(engine_config.method,
            fta::ProbabilityMethod::kMinCutUpperBound);

  // No sections at all: nullopt solver, default engine with the formula-
  // derived method — usable by engine-only callers (constant models).
  const ftio::StudyDocument bare = ftio::parse_study(
      "toplevel t;\nt or a;\na prob = 0.1;\nformula min_cut_upper_bound;\n");
  EXPECT_FALSE(document_solver_selection(bare).has_value());
  const auto [bare_name, bare_config] = document_engine_selection(bare);
  EXPECT_EQ(bare_name, "fta");
  EXPECT_EQ(bare_config.method,
            fta::ProbabilityMethod::kMinCutUpperBound);
}

TEST(StudyDocumentTest, AdaptiveEngineOptionsMapOntoEngineConfig) {
  const std::string base =
      "param X in [0, 1];\ntoplevel t;\nt or a;\na prob = 0.1 * X;\n"
      "hazard fault-tree cost = 1;\n";
  const auto [name, config] = document_engine_selection(ftio::parse_study(
      base +
      "engine mc_adaptive target_halfwidth = 0.02 relative = 1 "
      "batch = 8192 tilt = 25 budget = 4000000 seed = 5;\n"));
  EXPECT_EQ(name, "mc_adaptive");
  EXPECT_EQ(config.target_halfwidth, 0.02);
  EXPECT_TRUE(config.relative);
  EXPECT_EQ(config.batch, 8192u);
  EXPECT_EQ(config.tilt, 25.0);
  EXPECT_EQ(config.mc_trials, 4000000u);  // `budget` aliases the cap
  EXPECT_EQ(config.seed, 5u);

  // relative accepts the words too.
  const auto [_, words] = document_engine_selection(ftio::parse_study(
      base + "engine mc_adaptive relative = false;\n"));
  EXPECT_FALSE(words.relative);

  // Malformed adaptive options are rejected at load, not at quantify.
  EXPECT_THROW((void)document_engine_selection(ftio::parse_study(
                   base + "engine mc_adaptive target_halfwidth = 0;\n")),
               std::invalid_argument);
  EXPECT_THROW((void)document_engine_selection(ftio::parse_study(
                   base + "engine mc_adaptive relative = maybe;\n")),
               std::invalid_argument);
  EXPECT_THROW((void)document_engine_selection(ftio::parse_study(
                   base + "engine mc_adaptive batch = 0;\n")),
               std::invalid_argument);
  EXPECT_THROW((void)document_engine_selection(ftio::parse_study(
                   base + "engine mc_adaptive tilt = -2;\n")),
               std::invalid_argument);
}

TEST(StudyDocumentTest, SetEngineArgumentMirrorsTheDocumentMapping) {
  // The CLI's --engine-opt K=V surface: typed like document options.
  EngineConfig config;
  set_engine_argument(config, "tilt=25");
  set_engine_argument(config, "target_halfwidth=0.02");
  set_engine_argument(config, "relative=false");
  set_engine_argument(config, "budget=1000000");
  set_engine_argument(config, "method=inclusion_exclusion");
  EXPECT_EQ(config.tilt, 25.0);
  EXPECT_EQ(config.target_halfwidth, 0.02);
  EXPECT_FALSE(config.relative);
  EXPECT_EQ(config.mc_trials, 1000000u);
  EXPECT_EQ(config.method, fta::ProbabilityMethod::kInclusionExclusion);

  EXPECT_THROW(set_engine_argument(config, "tilt"), std::invalid_argument);
  EXPECT_THROW(set_engine_argument(config, "warp=9"), std::invalid_argument);
  EXPECT_THROW(set_engine_argument(config, "batch=8x"),
               std::invalid_argument);
}

TEST(StudyDocumentTest, PreprocessOptionsMapOntoTypedConfigFields) {
  EngineConfig config;
  set_engine_argument(config, "preprocess=true");
  set_engine_argument(config, "modularize=false");
  set_engine_argument(config, "module_min_leaves=8");
  set_engine_argument(config, "ordering=weight");
  set_engine_argument(config, "table_size=65536");
  set_engine_argument(config, "cache_size=262144");
  EXPECT_TRUE(config.preprocess);
  EXPECT_FALSE(config.modularize);
  EXPECT_EQ(config.module_min_leaves, 8u);
  EXPECT_EQ(config.ordering, bdd::VariableOrdering::kWeight);
  EXPECT_EQ(config.bdd_table_size, 65536u);
  EXPECT_EQ(config.bdd_cache_size, 262144u);
  // bdd_options() is the slice the bdd engine compiles with.
  const bdd::BddOptions options = config.bdd_options();
  EXPECT_EQ(options.ordering, bdd::VariableOrdering::kWeight);
  EXPECT_EQ(options.initial_table_size, 65536u);
  EXPECT_EQ(options.cache_size, 262144u);

  EXPECT_THROW(set_engine_argument(config, "ordering=random"),
               std::invalid_argument);
  EXPECT_THROW(set_engine_argument(config, "module_min_leaves=0"),
               std::invalid_argument);
}

TEST(StudyDocumentTest, UnknownOptionsSuggestTheNearestSchemaKey) {
  // The "did you mean" diagnostic resolves through the typed schema, so a
  // one-edit typo names the intended key in the error message.
  EngineConfig config;
  try {
    set_engine_argument(config, "preproces=true");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("did you mean \"preprocess\""),
              std::string::npos)
        << error.what();
  }
  try {
    set_engine_argument(config, "modularise=true");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("did you mean \"modularize\""),
              std::string::npos)
        << error.what();
  }
}

TEST(StudyDocumentTest, EngineOptionDocsCoverThePreprocessSchema) {
  // engine_option_docs() is the single source of truth the CLI help prints;
  // every preprocessing/BDD key must be listed with its type.
  const std::vector<EngineOptionDoc> docs = engine_option_docs();
  const auto type_of = [&](std::string_view name) -> std::string_view {
    for (const EngineOptionDoc& doc : docs) {
      if (doc.name == name) return doc.type;
    }
    return "";
  };
  EXPECT_EQ(type_of("preprocess"), "flag");
  EXPECT_EQ(type_of("modularize"), "flag");
  EXPECT_EQ(type_of("module_min_leaves"), "count");
  EXPECT_EQ(type_of("ordering"), "enum");
  EXPECT_EQ(type_of("table_size"), "count");
  EXPECT_EQ(type_of("cache_size"), "count");
}

TEST(StudyDocumentTest, SolverOptionsMapOntoTypedConfigFields) {
  // Reserved keys land in the typed fields (seed consumed by DE), extras
  // in the typed extras (starts consumed by multi_start).
  const std::string base =
      "param X in [0, 1];\ntoplevel t;\nt or a;\na prob = 0.2 * X;\n"
      "hazard fault-tree cost = 1;\n";
  const Study a = Study::from_document(
      ftio::parse_study(base + "solver differential_evolution seed = 3;\n"));
  const Study b = Study::from_document(
      ftio::parse_study(base + "solver differential_evolution seed = 4;\n"));
  const auto result_a = a.run();
  const auto result_a2 = a.run();
  const auto result_b = b.run();
  // Same seed: identical trajectory; both find the boundary optimum X = 0.
  EXPECT_EQ(result_a.optimization.value, result_a2.optimization.value);
  EXPECT_NEAR(result_a.optimal_parameters.get("X"),
              result_b.optimal_parameters.get("X"), 1e-6);
}

}  // namespace
}  // namespace safeopt::core
