// Expression layer for *parameterized probabilities* (paper §II-D.2).
//
// A parameterized failure probability P(PF)(X) is represented as a small
// immutable expression DAG over named free parameters. The same expression
// can be
//   * evaluated numerically against a ParameterAssignment,
//   * differentiated exactly (forward-mode autodiff, see dual.h) — which the
//     gradient-based optimizers of src/opt consume,
//   * printed symbolically for reports, and
//   * queried for the set of parameters it mentions (used to implement the
//     paper's footnote 2: each hazard depends only on a subset X_{i,1..n_i}).
//
// Distribution CDF / survival nodes make the paper's constructions direct:
//   P(OT1)(T1) = 1 − P_OHV(Time <= T1)  ==>  survival(driving_time, param("T1"))
#ifndef SAFEOPT_EXPR_EXPR_H
#define SAFEOPT_EXPR_EXPR_H

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "safeopt/expr/dual.h"
#include "safeopt/stats/distribution.h"

namespace safeopt::expr {

/// Name -> value binding for the free parameters of a system.
class ParameterAssignment {
 public:
  ParameterAssignment() = default;
  /// Convenience: build from {{"T1", 19.0}, {"T2", 15.6}}.
  ParameterAssignment(
      std::initializer_list<std::pair<std::string, double>> entries);

  void set(std::string name, double value);
  /// Precondition: contains(name).
  [[nodiscard]] double get(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& entries()
      const noexcept {
    return entries_;
  }

 private:
  // Sorted by name; linear scan is fine for the handful of parameters real
  // systems have, binary search keeps it honest for generated sweeps.
  std::vector<std::pair<std::string, double>> entries_;
};

namespace detail {
class Node;
}

/// Immutable expression handle (cheap to copy; shares the underlying DAG).
class Expr {
 public:
  /// Default-constructed Expr is the constant 0.
  Expr();
  explicit Expr(std::shared_ptr<const detail::Node> node);

  /// Numeric evaluation. Every parameter mentioned must be bound.
  [[nodiscard]] double evaluate(const ParameterAssignment& env) const;

  /// Value + exact gradient with respect to `wrt` (order defines gradient
  /// component order). Parameters not in `wrt` are treated as constants.
  [[nodiscard]] Dual evaluate_dual(const ParameterAssignment& env,
                                   const std::vector<std::string>& wrt) const;

  /// All parameter names mentioned anywhere in the expression.
  [[nodiscard]] std::set<std::string> parameters() const;

  /// Symbolic rendering, e.g. "(1 - cdf[TruncatedNormal(4, 2, [0, inf])](T1))".
  [[nodiscard]] std::string to_string() const;

  /// True if the expression contains no parameters (is a constant fold).
  [[nodiscard]] bool is_constant() const;

  [[nodiscard]] const std::shared_ptr<const detail::Node>& node()
      const noexcept {
    return node_;
  }

 private:
  std::shared_ptr<const detail::Node> node_;
};

// ----- Constructors ---------------------------------------------------------

/// The constant c.
[[nodiscard]] Expr constant(double c);
/// A named free parameter.
[[nodiscard]] Expr parameter(std::string name);
/// F(arg) for a distribution F — P(X <= arg).
[[nodiscard]] Expr cdf(std::shared_ptr<const stats::Distribution> dist,
                       Expr arg);
/// 1 − F(arg) — P(X > arg); its own node for accuracy near F ≈ 1.
[[nodiscard]] Expr survival(std::shared_ptr<const stats::Distribution> dist,
                            Expr arg);

// ----- Operators (constant-folding where both sides are constants) ----------

[[nodiscard]] Expr operator+(Expr a, Expr b);
[[nodiscard]] Expr operator-(Expr a, Expr b);
[[nodiscard]] Expr operator*(Expr a, Expr b);
[[nodiscard]] Expr operator/(Expr a, Expr b);
[[nodiscard]] Expr operator-(Expr a);
[[nodiscard]] Expr operator+(double a, Expr b);
[[nodiscard]] Expr operator+(Expr a, double b);
[[nodiscard]] Expr operator-(double a, Expr b);
[[nodiscard]] Expr operator-(Expr a, double b);
[[nodiscard]] Expr operator*(double a, Expr b);
[[nodiscard]] Expr operator*(Expr a, double b);
[[nodiscard]] Expr operator/(double a, Expr b);
[[nodiscard]] Expr operator/(Expr a, double b);

// ----- Functions -------------------------------------------------------------

[[nodiscard]] Expr exp(Expr a);
[[nodiscard]] Expr log(Expr a);
[[nodiscard]] Expr sqrt(Expr a);
[[nodiscard]] Expr pow(Expr a, double p);
[[nodiscard]] Expr min(Expr a, Expr b);
[[nodiscard]] Expr max(Expr a, Expr b);
/// Clamps into [lo, hi]; probabilities are clamped into [0,1] with this.
[[nodiscard]] Expr clamp(Expr a, double lo, double hi);

/// P(at least one arrival in window `w`) for a Poisson process with the given
/// rate: 1 − exp(−rate·w). The workhorse for exposure-window failure
/// probabilities (paper §IV-C: P(FDLBpost)(T1), P(HVODfinal)(T2)).
[[nodiscard]] Expr poisson_exposure(double rate, Expr window);

/// An opaque user function f(arg) with optional analytic derivative df.
/// When `derivative` is empty, autodiff falls back to a central finite
/// difference of `fn` (step 1e-6 · max(1, |x|)). Used for model terms that
/// only exist as numeric procedures, e.g. expectations evaluated by
/// quadrature. `name` appears in to_string() as "name(arg)".
[[nodiscard]] Expr function1(std::string name, std::function<double(double)> fn,
                             std::function<double(double)> derivative,
                             Expr arg);

}  // namespace safeopt::expr

#endif  // SAFEOPT_EXPR_EXPR_H
