#include "safeopt/opt/hooke_jeeves.h"

#include "builtin_solvers.h"

#include <algorithm>
#include <cmath>

#include "safeopt/support/contracts.h"

namespace safeopt::opt {

HookeJeeves::HookeJeeves(StoppingCriteria stopping,
                         std::vector<double> initial, double initial_step)
    : stopping_(stopping),
      initial_(std::move(initial)),
      initial_step_(initial_step) {
  SAFEOPT_EXPECTS(initial_step > 0.0 && initial_step <= 1.0);
}

OptimizationResult HookeJeeves::minimize(const Problem& problem) const {
  const std::size_t dim = problem.bounds.dimension();
  SAFEOPT_EXPECTS(dim >= 1);
  SAFEOPT_EXPECTS(initial_.empty() || initial_.size() == dim);

  OptimizationResult result;
  const auto eval = [&](const std::vector<double>& p) {
    ++result.evaluations;
    return problem.objective(p);
  };

  std::vector<double> steps(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    steps[i] = initial_step_ * std::max(problem.bounds.width(i), 1e-9);
  }

  std::vector<double> base = initial_.empty()
                                 ? problem.bounds.center()
                                 : problem.bounds.project(initial_);
  double f_base = eval(base);

  // Exploratory move around `point`: probe ±step along each axis, keep
  // improvements greedily.
  const auto explore = [&](std::vector<double> point, double f_point) {
    for (std::size_t i = 0; i < dim; ++i) {
      for (const double direction : {+1.0, -1.0}) {
        std::vector<double> trial = point;
        trial[i] = std::clamp(trial[i] + direction * steps[i],
                              problem.bounds.lower[i],
                              problem.bounds.upper[i]);
        if (trial[i] == point[i]) continue;
        const double f_trial = eval(trial);
        if (f_trial < f_point) {
          point = std::move(trial);
          f_point = f_trial;
          break;  // accept the first improving direction on this axis
        }
      }
    }
    return std::pair{point, f_point};
  };

  const auto max_step = [&] {
    return *std::max_element(steps.begin(), steps.end());
  };

  while (result.iterations < stopping_.max_iterations &&
         max_step() > stopping_.tolerance) {
    ++result.iterations;
    auto [explored, f_explored] = explore(base, f_base);
    if (f_explored < f_base) {
      // Pattern move: leap along (explored − base), then explore again.
      std::vector<double> pattern(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        pattern[i] = explored[i] + (explored[i] - base[i]);
      }
      pattern = problem.bounds.project(pattern);
      const double f_pattern = eval(pattern);
      auto [pattern_explored, f_pattern_explored] =
          explore(pattern, f_pattern);
      base = std::move(explored);
      f_base = f_explored;
      if (f_pattern_explored < f_base) {
        base = std::move(pattern_explored);
        f_base = f_pattern_explored;
      }
    } else {
      for (double& s : steps) s *= 0.5;
    }
  }

  result.argmin = std::move(base);
  result.value = f_base;
  result.converged = max_step() <= stopping_.tolerance;
  result.message = result.converged ? "pattern step below tolerance"
                                    : "iteration budget exhausted";
  return result;
}

// ---- registry adapter -------------------------------------------------------

namespace {

/// Extras: "initial_step" (default 0.25, relative to each axis' box width).
class HookeJeevesSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "hooke_jeeves";
  }

 private:
  [[nodiscard]] OptimizationResult run(
      const Problem& problem, const SolverConfig& config) const override {
    return HookeJeeves(config.stopping(), config.initial,
                       config.number_or("initial_step", 0.25))
        .minimize(problem);
  }
};

}  // namespace

std::unique_ptr<Solver> detail::make_hooke_jeeves_solver() {
  return std::make_unique<HookeJeevesSolver>();
}

}  // namespace safeopt::opt
