// Compiled evaluation of expression DAGs.
//
// Expr::evaluate() walks the shared-pointer DAG with one virtual dispatch,
// one ParameterAssignment binary search per parameter mention, and repeated
// recomputation of structurally identical subtrees. That is fine for a
// report; it is not fine for optimizers that call the cost function tens of
// thousands of times per solve.
//
// CompiledExpr flattens the DAG once into a postorder instruction tape:
//   * common subexpressions are shared (structural hashing — two calls to
//     ElbtunnelModel::p_overtime1() build distinct nodes but compile to one
//     tape slot, so the expensive truncated-normal survival runs once),
//   * constant subtrees are folded at compile time,
//   * parameters become slot loads from a flat vector (no name lookups),
//   * evaluation is a tight loop over plain structs — no virtual calls.
//
// The tape supports three access patterns:
//   value     — evaluate(parameters)
//   gradient  — evaluate_with_gradient(): one reverse (adjoint) sweep over
//               the tape, O(tape) regardless of dimension count
//   batch     — evaluate_batch(BatchRequest): many parameter vectors (and
//               optionally their gradients) in one call. The request names
//               everything about the evaluation in one struct — points,
//               values, gradients, lane width, thread pool, and the
//               hardware backend — so every caller, from opt::Problem to
//               the sweep tables to `safeopt serve`, hops backends through
//               a single call shape. Batches run on lane-blocked
//               structure-of-arrays kernels: L points advance through every
//               instruction together, so interpreter dispatch amortizes
//               L-fold. *Which* kernel runs is an expr::EvalBackend picked
//               from the BackendRegistry ("generic" is the portable
//               interpreter; "avx2"/"avx512" are explicit intrinsic
//               kernels), selected at runtime by CPUID dispatch unless the
//               request, the SAFEOPT_BACKEND env var, or the --backend CLI
//               override pins one. The scalar loop remains the tail
//               handler, the lane_width == 1 path, and the bitwise-identity
//               oracle on every backend.
//
// Evaluation is bitwise-identical to Expr::evaluate(): the tape performs the
// same floating-point operations on the same values (sharing only removes
// *re*-computation, immediate fusion only changes where an operand is loaded
// from, and the algebraic identities x+0 / x−0 / x·1 / x/1 / x^1 are exact
// in IEEE arithmetic), which is what lets optimizers switch paths without
// perturbing results. That identity extends across the backend seam: every
// registered backend must produce results bitwise-identical to "generic"
// for every lane width, batch split, and thread count (see
// eval_backend.h). The single caveat: an identity can surface a −0.0
// where the tree produced +0.0 (−0.0 + 0 rounds to +0.0); the two compare
// equal, so optima remain ==-comparable. Opaque function1 nodes are assumed
// pure (same input, same output) — the same contract the tree walk's
// memo-free recursion already implies for shared subtrees.
#ifndef SAFEOPT_EXPR_COMPILED_H
#define SAFEOPT_EXPR_COMPILED_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "safeopt/expr/expr.h"

namespace safeopt {
class ThreadPool;
}

namespace safeopt::expr {

class EvalBackend;

/// One batched evaluation, described in full. The single argument of
/// CompiledExpr::evaluate_batch — aggregate-initialize the fields you need
/// and leave the rest defaulted:
///
///   compiled.evaluate_batch({.points = points, .values = out});
///   compiled.evaluate_batch({.points = points, .values = out,
///                            .gradients = grads, .pool = &pool});
struct BatchRequest {
  /// Row-major parameter vectors, one row of length parameter_order().size()
  /// per output value: points.size() == values.size() * dim.
  std::span<const double> points;
  /// One output value per row; its size is the row count.
  std::span<double> values;
  /// Empty = values only. Otherwise one row-major gradient vector per row
  /// (gradients.size() == values.size() * dim), produced by a fused
  /// forward + adjoint lane sweep.
  std::span<double> gradients = {};
  /// Points per lane block. 0 = the backend's default width; 1 = the scalar
  /// reference loop (the bitwise oracle, identical on every backend); any
  /// other value must satisfy backend->supports_lane_width(). Results are
  /// bitwise-identical for every choice.
  std::size_t lane_width = 0;
  /// Fan rows out over this pool (nullptr = evaluate on this thread). Each
  /// row depends only on itself, so results are bitwise-independent of the
  /// thread count.
  ThreadPool* pool = nullptr;
  /// Evaluate on this specific backend (nullptr = BackendRegistry::active(),
  /// the runtime CPUID dispatch honoring SAFEOPT_BACKEND / --backend).
  const EvalBackend* backend = nullptr;
};

class CompiledExpr {
 public:
  /// Reusable per-thread evaluation state: the value slots plus a
  /// last-argument memo for the expensive distribution instructions (cdf /
  /// survival). Sweep- and grid-shaped workloads repeat arguments along
  /// axes, and a memo hit replays the bitwise-identical previous result, so
  /// caching never perturbs values. A Workspace binds to the CompiledExpr it
  /// first evaluates; handing it to a different one resets it.
  class Workspace {
   public:
    Workspace() = default;

   private:
    friend class CompiledExpr;
    // Identity of the bound tape — a process-unique compilation serial, not
    // an address (a recompiled CompiledExpr at a reused address must not
    // look bound, or stale undersized buffers would be reused).
    std::uint64_t bound_id = 0;
    std::vector<double> slots;
    std::vector<double> memo_arg;
    std::vector<double> memo_val;
  };

  /// Compiles `source` with the parameter slots ordered alphabetically
  /// (== the iteration order of source.parameters()).
  [[nodiscard]] static CompiledExpr compile(const Expr& source);

  /// Compiles with an explicit slot order — the order optimizer vectors use.
  /// Every parameter the expression mentions must appear in
  /// `parameter_order`; extra names are allowed (their slots are ignored).
  [[nodiscard]] static CompiledExpr compile(
      const Expr& source, std::vector<std::string> parameter_order);

  /// The names bound to evaluation slots, in slot order.
  [[nodiscard]] const std::vector<std::string>& parameter_order()
      const noexcept {
    return parameter_order_;
  }
  /// Number of tape instructions (== value slots used by one evaluation).
  [[nodiscard]] std::size_t tape_size() const noexcept { return tape_.size(); }

  /// Evaluates at one point. Precondition: parameters.size() ==
  /// parameter_order().size(). Thread-safe: concurrent calls on the same
  /// CompiledExpr are fine (scratch is per-call / per-thread).
  [[nodiscard]] double evaluate(std::span<const double> parameters) const;

  /// Same, with caller-owned state: the workspace's memo carries over
  /// between calls, which is the fast path for sweeps that hold some
  /// parameters fixed. One workspace per thread.
  [[nodiscard]] double evaluate(std::span<const double> parameters,
                                Workspace& workspace) const;

  /// Name-based convenience; every parameter slot must be bound in `env`.
  [[nodiscard]] double evaluate(const ParameterAssignment& env) const;

  /// Value plus d(value)/d(parameter_i) for every slot, via one reverse
  /// sweep over the tape. `gradient_out.size()` must equal the slot count;
  /// it is overwritten. Agrees with Expr::evaluate_dual up to floating-point
  /// reassociation of the chain rule.
  double evaluate_with_gradient(std::span<const double> parameters,
                                std::span<double> gradient_out) const;

  /// Default lane width of the generic SoA kernel (points per instruction).
  static constexpr std::size_t kDefaultLaneWidth = 8;

  /// Evaluates `request.values.size()` rows (and, when request.gradients is
  /// non-empty, their gradients) in one call on the lane-block kernels of
  /// the requested backend. See BatchRequest for the full shape; value and
  /// gradient rows are bitwise-identical to per-row evaluate() /
  /// evaluate_with_gradient() calls for every backend, lane width, batch
  /// split, and thread count.
  void evaluate_batch(const BatchRequest& request) const;

  // Legacy call shapes, kept as thin wrappers during the BatchRequest
  // migration. Each forwards to evaluate_batch(BatchRequest); the
  // lane_width overload pins the "generic" backend, whose supported widths
  // {1, 4, 8, 16} predate the registry.
  [[deprecated("describe the batch with a BatchRequest")]] void
  evaluate_batch(std::span<const double> points, std::span<double> out) const;
  [[deprecated("describe the batch with a BatchRequest")]] void
  evaluate_batch(std::span<const double> points, std::span<double> out,
                 std::size_t lane_width) const;
  [[deprecated("describe the batch with a BatchRequest")]] void
  evaluate_batch(std::span<const double> points, std::span<double> out,
                 ThreadPool& pool) const;
  [[deprecated("describe the batch with a BatchRequest")]] void
  evaluate_batch_with_gradients(std::span<const double> points,
                                std::span<double> values_out,
                                std::span<double> gradients_out) const;
  [[deprecated("describe the batch with a BatchRequest")]] void
  evaluate_batch_with_gradients(std::span<const double> points,
                                std::span<double> values_out,
                                std::span<double> gradients_out,
                                ThreadPool& pool) const;

  /// Human-readable tape listing, one instruction per line (debugging aid).
  [[nodiscard]] std::string disassemble() const;

  // ------------------------------------------------------------------ SPI
  // The backend service-provider interface: everything an EvalBackend's
  // kernels need to interpret the tape. Stable for in-tree backends and the
  // docs/extending.md recipe; ordinary callers never touch it.

  enum class OpCode : std::uint8_t {
    kConst,     // imm
    kParam,     // parameter slot a
    kAdd, kSub, kMul, kDiv, kMin, kMax,  // value slots a, b
    // Immediate-fused binaries: one operand was a compile-time constant.
    // Same floating-point operation, one slot load and one instruction less.
    kAddImm,    // slot a + imm
    kSubImm,    // slot a - imm
    kRsubImm,   // imm - slot a
    kMulImm,    // slot a * imm
    kDivImm,    // slot a / imm
    kRdivImm,   // imm / slot a
    kNeg, kExp, kLog, kSqrt,             // value slot a
    kPow,       // value slot a, exponent imm
    kCdf,       // value slot a, distribution table index b
    kSurvival,  // value slot a, distribution table index b
    kCall,      // value slot a, function table index b
  };

  struct Instruction {
    OpCode op;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t c = 0;  // memo index (kCdf / kSurvival only)
    double imm = 0.0;
  };

  /// Per-call state of the lane kernels: the SoA value/adjoint slabs
  /// (tape_size() × L doubles, slot-major so each instruction's lanes are
  /// contiguous) plus the distribution-argument memo tables. Where the
  /// scalar Workspace memo remembers only the *last* argument of each cdf /
  /// survival site, the lane kernels keep a small direct-mapped table per
  /// site (kMemoEntries (argument, result) pairs hashed on the argument's
  /// bit pattern). Grid- and sweep-shaped batches revisit the same argument
  /// values row after row, and a table hit replays the bitwise-identical
  /// stored result — so the memo, like the scalar one, can never perturb a
  /// value, only skip recomputing it.
  struct LaneScratch {
    std::vector<double> slab;
    std::vector<double> adjoint;
    std::vector<double> memo_arg;
    std::vector<double> memo_val;
  };
  static constexpr std::size_t kMemoEntries = 2048;  // per cdf/survival site

  /// The instruction tape, postorder; the final instruction is the root.
  [[nodiscard]] std::span<const Instruction> tape() const noexcept {
    return tape_;
  }
  /// Number of cdf/survival memo sites on the tape.
  [[nodiscard]] std::uint32_t memo_count() const noexcept {
    return memo_count_;
  }
  /// The distribution behind a kCdf/kSurvival instruction's `b` index.
  [[nodiscard]] const stats::Distribution& distribution_at(
      std::uint32_t index) const noexcept {
    return *distributions_[index];
  }
  /// Invokes / differentiates the opaque function behind a kCall
  /// instruction's `b` index (backends keep kCall loops scalar so the
  /// callback sees the exact per-row invocation pattern of evaluate()).
  [[nodiscard]] double apply_call(std::uint32_t index, double x) const;
  [[nodiscard]] double call_derivative_at(std::uint32_t index,
                                          double x) const;

  /// Sizes `scratch` for this tape (cold memo) and L lanes.
  void bind_lanes(LaneScratch& scratch, std::size_t lanes,
                  bool with_adjoint) const;

  /// The "generic" kernels, callable from any backend: the portable
  /// lane-block forward sweep (width ∈ {4, 8, 16}) and the adjoint sweep
  /// over a slab the forward sweep filled. Intrinsic backends reuse the
  /// adjoint sweep (plain +,*,/ loops the compiler vectorizes) and replace
  /// only the forward kernel; a custom backend can delegate entire blocks
  /// here for tape features it does not accelerate.
  void run_generic_block(const double* points, std::size_t dim,
                         std::size_t width, double* out,
                         LaneScratch& scratch) const;
  void run_generic_adjoint_block(std::size_t dim, std::size_t width,
                                 double* gradients,
                                 LaneScratch& scratch) const;

 private:
  class Builder;

  CompiledExpr() = default;

  /// Executes the tape over `slots` (length >= tape_size()) and returns the
  /// final slot's value. `memo_arg` / `memo_val` (length memo_count_, NaN
  /// args == empty) cache the last (argument, result) pair of each cdf /
  /// survival instruction.
  double run(std::span<const double> parameters, double* slots,
             double* memo_arg, double* memo_val) const;

  /// Points `workspace`'s buffers at this tape, resetting stale state.
  void bind(Workspace& workspace) const;

  /// Evaluates one block of exactly L rows through the SoA kernel;
  /// `points` holds L row-major parameter vectors, `out` L values.
  template <std::size_t L>
  void run_lane_block(const double* points, std::size_t dim, double* out,
                      LaneScratch& scratch) const;

  /// Adjoint sweep over the slab run_lane_block<L> filled; `gradients`
  /// receives L row-major gradient vectors of length dim.
  template <std::size_t L>
  void run_lane_adjoint(std::size_t dim, double* gradients,
                        LaneScratch& scratch) const;

  // Scalar op semantics shared by run() and compile-time constant folding,
  // so folding is guaranteed bit-identical to deferred evaluation.
  static double apply_binary(OpCode op, double x, double y);
  static double apply_unary(OpCode op, double x, double imm);

  /// Mark-and-sweep from `root`: drops instructions whose value cannot reach
  /// the root (constants orphaned by immediate fusion, mostly) and compacts
  /// slot numbering so the root ends up in the final slot.
  void eliminate_dead_code(std::uint32_t root);

  std::vector<std::string> parameter_order_;
  std::vector<Instruction> tape_;
  std::uint32_t memo_count_ = 0;
  std::uint64_t id_ = 0;  // process-unique per compile(); copies share it
  std::vector<std::shared_ptr<const stats::Distribution>> distributions_;
  // FunctionNode handles (opaque std::function payloads), kept alive here.
  std::vector<std::shared_ptr<const detail::Node>> calls_;
};

}  // namespace safeopt::expr

#endif  // SAFEOPT_EXPR_COMPILED_H
