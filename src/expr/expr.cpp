#include "safeopt/expr/expr.h"

#include <algorithm>
#include <cmath>

#include "node.h"
#include "safeopt/support/contracts.h"

namespace safeopt::expr {

// --------------------------------------------------- ParameterAssignment

ParameterAssignment::ParameterAssignment(
    std::initializer_list<std::pair<std::string, double>> entries) {
  for (const auto& [name, value] : entries) set(name, value);
}

void ParameterAssignment::set(std::string name, double value) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it != entries_.end() && it->first == name) {
    it->second = value;
  } else {
    entries_.insert(it, {std::move(name), value});
  }
}

double ParameterAssignment::get(std::string_view name) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, std::string_view key) {
        return entry.first < key;
      });
  SAFEOPT_EXPECTS(it != entries_.end() && it->first == name);
  return it->second;
}

bool ParameterAssignment::contains(std::string_view name) const noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, std::string_view key) {
        return entry.first < key;
      });
  return it != entries_.end() && it->first == name;
}

// ------------------------------------------------------------------ Nodes
//
// The node classes themselves live in node.h so the tape compiler
// (compiled.cpp) can flatten the DAG; this file keeps construction.

namespace detail {
namespace {

/// Returns the folded constant if the node is a ConstNode, else nullptr.
const ConstNode* as_constant(const std::shared_ptr<const Node>& node) {
  return node->kind() == NodeKind::kConst
             ? static_cast<const ConstNode*>(node.get())
             : nullptr;
}

Expr make_binary(BinaryOp op, Expr a, Expr b) {
  const ConstNode* ca = as_constant(a.node());
  const ConstNode* cb = as_constant(b.node());
  if (ca != nullptr && cb != nullptr) {
    const ParameterAssignment empty;
    const auto node =
        std::make_shared<BinaryNode>(op, a.node(), b.node());
    return constant(node->value(empty));
  }
  return Expr(std::make_shared<BinaryNode>(op, a.node(), b.node()));
}

}  // namespace
}  // namespace detail

// ------------------------------------------------------------------- Expr

Expr::Expr() : node_(std::make_shared<detail::ConstNode>(0.0)) {}

Expr::Expr(std::shared_ptr<const detail::Node> node)
    : node_(std::move(node)) {
  SAFEOPT_EXPECTS(node_ != nullptr);
}

double Expr::evaluate(const ParameterAssignment& env) const {
  return node_->value(env);
}

Dual Expr::evaluate_dual(const ParameterAssignment& env,
                         const std::vector<std::string>& wrt) const {
  return node_->dual(env, wrt);
}

std::set<std::string> Expr::parameters() const {
  std::set<std::string> out;
  node_->collect_parameters(out);
  return out;
}

std::string Expr::to_string() const { return node_->print(); }

bool Expr::is_constant() const { return parameters().empty(); }

// ----------------------------------------------------------- constructors

Expr constant(double c) {
  return Expr(std::make_shared<detail::ConstNode>(c));
}

Expr parameter(std::string name) {
  SAFEOPT_EXPECTS(!name.empty());
  return Expr(std::make_shared<detail::ParamNode>(std::move(name)));
}

Expr cdf(std::shared_ptr<const stats::Distribution> dist, Expr arg) {
  return Expr(
      std::make_shared<detail::CdfNode>(std::move(dist), arg.node(), false));
}

Expr survival(std::shared_ptr<const stats::Distribution> dist, Expr arg) {
  return Expr(
      std::make_shared<detail::CdfNode>(std::move(dist), arg.node(), true));
}

// -------------------------------------------------------------- operators

using detail::BinaryOp;
using detail::UnaryOp;

Expr operator+(Expr a, Expr b) {
  return detail::make_binary(BinaryOp::kAdd, std::move(a), std::move(b));
}
Expr operator-(Expr a, Expr b) {
  return detail::make_binary(BinaryOp::kSub, std::move(a), std::move(b));
}
Expr operator*(Expr a, Expr b) {
  return detail::make_binary(BinaryOp::kMul, std::move(a), std::move(b));
}
Expr operator/(Expr a, Expr b) {
  return detail::make_binary(BinaryOp::kDiv, std::move(a), std::move(b));
}
Expr operator-(Expr a) {
  return Expr(std::make_shared<detail::UnaryNode>(UnaryOp::kNeg, a.node()));
}

Expr operator+(double a, Expr b) { return constant(a) + std::move(b); }
Expr operator+(Expr a, double b) { return std::move(a) + constant(b); }
Expr operator-(double a, Expr b) { return constant(a) - std::move(b); }
Expr operator-(Expr a, double b) { return std::move(a) - constant(b); }
Expr operator*(double a, Expr b) { return constant(a) * std::move(b); }
Expr operator*(Expr a, double b) { return std::move(a) * constant(b); }
Expr operator/(double a, Expr b) { return constant(a) / std::move(b); }
Expr operator/(Expr a, double b) { return std::move(a) / constant(b); }

// -------------------------------------------------------------- functions

Expr exp(Expr a) {
  return Expr(std::make_shared<detail::UnaryNode>(UnaryOp::kExp, a.node()));
}
Expr log(Expr a) {
  return Expr(std::make_shared<detail::UnaryNode>(UnaryOp::kLog, a.node()));
}
Expr sqrt(Expr a) {
  return Expr(std::make_shared<detail::UnaryNode>(UnaryOp::kSqrt, a.node()));
}
Expr pow(Expr a, double p) {
  return Expr(std::make_shared<detail::PowNode>(a.node(), p));
}
Expr min(Expr a, Expr b) {
  return detail::make_binary(BinaryOp::kMin, std::move(a), std::move(b));
}
Expr max(Expr a, Expr b) {
  return detail::make_binary(BinaryOp::kMax, std::move(a), std::move(b));
}
Expr clamp(Expr a, double lo, double hi) {
  SAFEOPT_EXPECTS(lo <= hi);
  return min(max(std::move(a), constant(lo)), constant(hi));
}

Expr poisson_exposure(double rate, Expr window) {
  SAFEOPT_EXPECTS(rate >= 0.0);
  return 1.0 - exp(constant(-rate) * std::move(window));
}

Expr function1(std::string name, std::function<double(double)> fn,
               std::function<double(double)> derivative, Expr arg) {
  return Expr(std::make_shared<detail::FunctionNode>(
      std::move(name), std::move(fn), std::move(derivative), arg.node()));
}

}  // namespace safeopt::expr
