#include "safeopt/support/execution.h"

#include "safeopt/support/contracts.h"
#include "safeopt/support/error.h"
#include "safeopt/support/strings.h"

namespace safeopt {

std::string_view status_reason(ExecutionStatus status) noexcept {
  switch (status) {
    case ExecutionStatus::kRunning: return "running";
    case ExecutionStatus::kCancelled: return "cancelled";
    case ExecutionStatus::kDeadlineExceeded: return "deadline exceeded";
  }
  return "running";
}

ExecutionStatus ExecutionControl::status() const {
  if (token.cancelled()) return ExecutionStatus::kCancelled;
  if (deadline.expired()) return ExecutionStatus::kDeadlineExceeded;
  if (parent != nullptr) {
    const ExecutionStatus inherited = parent->status();
    if (inherited != ExecutionStatus::kRunning) return inherited;
  }
  if (probe) {
    const ExecutionStatus injected = probe();
    if (injected != ExecutionStatus::kRunning) return injected;
  }
  return ExecutionStatus::kRunning;
}

void ExecutionControl::check(std::string_view operation) const {
  const ExecutionStatus now = status();
  if (now != ExecutionStatus::kRunning) raise(now, operation);
}

void ExecutionControl::raise(ExecutionStatus status,
                             std::string_view operation) {
  SAFEOPT_EXPECTS(status != ExecutionStatus::kRunning);
  const ErrorCategory category = status == ExecutionStatus::kCancelled
                                     ? ErrorCategory::kCancelled
                                     : ErrorCategory::kDeadlineExceeded;
  throw Error(category,
              concat(operation, " aborted: ", status_reason(status)));
}

}  // namespace safeopt
