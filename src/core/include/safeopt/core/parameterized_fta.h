// Parameterized quantitative FTA — the bridge between the fault-tree layer
// and the expression layer, implementing the paper's generalizations:
//
//   §II-D.1 constraint probabilities: INHIBIT conditions carry their own
//           probability expressions, multiplied into each cut set (Eq. 2);
//   §II-D.2 parameterized probabilities: every leaf probability may be an
//           expression over the system's free parameters, so hazard
//           probabilities become functions P(H)(X) (Eqs. 3–4).
//
// The symbolic construction matters: hazard probabilities are *expressions*,
// so the cost model can be assembled and differentiated exactly (autodiff)
// before any number is plugged in — the same way the paper manipulates the
// formulas of §IV-B/C before optimizing.
#ifndef SAFEOPT_CORE_PARAMETERIZED_FTA_H
#define SAFEOPT_CORE_PARAMETERIZED_FTA_H

#include <string_view>
#include <vector>

#include "safeopt/expr/expr.h"
#include "safeopt/fta/cut_sets.h"
#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/probability.h"

namespace safeopt::core {

/// How a hazard-probability expression is assembled from minimal cut sets.
enum class HazardFormula {
  /// Σ P(MCS) — the paper's Eq. 1/3 (rare-event approximation).
  kRareEvent,
  /// 1 − ∏(1 − P(MCS)) — min-cut upper bound; tighter for larger
  /// probabilities, identical in the limit of rare events.
  kMinCutUpperBound,
};

/// Leaf-probability expressions for one fault tree.
class ParameterizedQuantification {
 public:
  /// Every basic event starts at the constant 0, every condition at the
  /// constant 1 (classical worst-case FTA until told otherwise). The tree
  /// must outlive this object.
  explicit ParameterizedQuantification(const fta::FaultTree& tree);

  /// Sets P(PF)(X) for the named basic event.
  void set_event_probability(std::string_view name, expr::Expr probability);
  /// Sets the constraint probability for the named INHIBIT condition.
  void set_condition_probability(std::string_view name,
                                 expr::Expr probability);

  [[nodiscard]] const expr::Expr& event_probability(
      fta::BasicEventOrdinal ordinal) const;
  [[nodiscard]] const expr::Expr& condition_probability(
      fta::ConditionOrdinal ordinal) const;

  /// P(CS)(X) = ∏ conditions · ∏ events — the parameterized Eq. 2.
  [[nodiscard]] expr::Expr cut_set_expression(const fta::CutSet& cut_set) const;

  /// P(H)(X) assembled from the minimal cut sets — Eqs. 3–4.
  [[nodiscard]] expr::Expr hazard_expression(
      const fta::CutSetCollection& mcs,
      HazardFormula formula = HazardFormula::kRareEvent) const;

  /// Convenience: runs MOCUS on the tree, then hazard_expression.
  [[nodiscard]] expr::Expr hazard_expression(
      HazardFormula formula = HazardFormula::kRareEvent) const;

  /// Evaluates every leaf expression at `at`, producing the numeric input
  /// for the classical fta/bdd quantification engines (cross-validation).
  [[nodiscard]] fta::QuantificationInput evaluate(
      const expr::ParameterAssignment& at) const;

  /// *Parameterized* Birnbaum importance of one basic event:
  /// I_B(e)(X) = P(H | e certain)(X) − P(H | e impossible)(X), assembled
  /// symbolically from the cut sets. Where classical importance ranks
  /// failures at one configuration, this expression shows how the ranking
  /// itself moves with the free parameters (e.g. which failure dominates
  /// at short vs long timer runtimes).
  [[nodiscard]] expr::Expr birnbaum_expression(
      const fta::CutSetCollection& mcs, fta::BasicEventOrdinal event,
      HazardFormula formula = HazardFormula::kRareEvent) const;

  [[nodiscard]] const fta::FaultTree& tree() const noexcept { return tree_; }

 private:
  const fta::FaultTree& tree_;
  std::vector<expr::Expr> event_exprs_;      // by BasicEventOrdinal
  std::vector<expr::Expr> condition_exprs_;  // by ConditionOrdinal
};

}  // namespace safeopt::core

#endif  // SAFEOPT_CORE_PARAMETERIZED_FTA_H
