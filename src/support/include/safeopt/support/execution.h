// Cooperative execution control: a wall-clock Deadline plus a shared
// CancellationToken, bundled as an ExecutionControl that long-running code
// polls at coarse checkpoints — BDD node allocation batches, Monte Carlo
// round boundaries, solver evaluations, preprocessing pass boundaries. The
// discipline is cooperative on purpose: checks sit at granularities where a
// branch-plus-clock-read is invisible (<2% on the bench gates) and where
// aborting leaves a well-formed partial result, never a torn one.
//
// Ownership: ExecutionControl is passed by raw const pointer (nullptr = run
// unbounded) and must outlive the operation it governs; the token inside is
// shared_ptr-backed, so a caller can keep a copy and cancel from any thread.
#ifndef SAFEOPT_SUPPORT_EXECUTION_H
#define SAFEOPT_SUPPORT_EXECUTION_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

namespace safeopt {

/// A point on the steady clock after which an operation should abort.
/// Default-constructed deadlines never expire.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() noexcept : when_(Clock::time_point::max()) {}

  /// A deadline `ms` milliseconds from now.
  [[nodiscard]] static Deadline after_ms(std::uint64_t ms) noexcept {
    Deadline deadline;
    deadline.when_ = Clock::now() + std::chrono::milliseconds(ms);
    return deadline;
  }

  /// A deadline that has already passed — deterministic fault injection.
  [[nodiscard]] static Deadline already_expired() noexcept {
    Deadline deadline;
    deadline.when_ = Clock::time_point::min();
    return deadline;
  }

  [[nodiscard]] static Deadline never() noexcept { return Deadline(); }

  [[nodiscard]] bool unbounded() const noexcept {
    return when_ == Clock::time_point::max();
  }

  [[nodiscard]] bool expired() const noexcept {
    return !unbounded() && Clock::now() >= when_;
  }

 private:
  Clock::time_point when_;
};

/// A shared cancel flag. Copies observe the same flag; request_cancel() from
/// any thread is visible to every holder (release/acquire ordering).
class CancellationToken {
 public:
  CancellationToken() : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() const noexcept {
    cancelled_->store(true, std::memory_order_release);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

/// Why an operation should (or should not) keep running.
enum class ExecutionStatus : unsigned char {
  kRunning,
  kCancelled,
  kDeadlineExceeded,
};

/// Deadline + token + optional parent, polled by the engines. Parents chain
/// request-level control through operation-level control: an engine derives
/// a per-operation deadline while still honouring the caller's token.
struct ExecutionControl {
  Deadline deadline;
  CancellationToken token;
  const ExecutionControl* parent = nullptr;
  /// Test seam: when set, consulted after deadline/token/parent. The
  /// FaultInjector uses it to fire deterministic "expiry after N checks"
  /// faults; production code never sets it. Must be thread-safe if the
  /// control is polled from multiple threads.
  std::function<ExecutionStatus()> probe;

  ExecutionControl() = default;
  explicit ExecutionControl(Deadline deadline_,
                            const ExecutionControl* parent_ = nullptr)
      : deadline(deadline_), parent(parent_) {}

  /// Cancellation wins over deadline expiry: both mean "stop", but a caller
  /// that cancelled should not be told the operation timed out.
  [[nodiscard]] ExecutionStatus status() const;

  [[nodiscard]] bool should_abort() const {
    return status() != ExecutionStatus::kRunning;
  }

  /// Polls and throws Error(kCancelled / kDeadlineExceeded) with a message
  /// of the form "<operation> aborted: <reason>" when the operation should
  /// stop. The single checkpoint helper for code without a partial result
  /// to hand back (BDD compilation, preprocessing).
  void check(std::string_view operation) const;

  /// Throws the Error that `status` (which must not be kRunning) maps to.
  [[noreturn]] static void raise(ExecutionStatus status,
                                 std::string_view operation);
};

/// Human-readable abort reason ("cancelled", "deadline exceeded").
[[nodiscard]] std::string_view status_reason(ExecutionStatus status) noexcept;

}  // namespace safeopt

#endif  // SAFEOPT_SUPPORT_EXECUTION_H
