#include "safeopt/ftio/parser.h"

#include <gtest/gtest.h>

#include <string>

#include "../testutil/random_tree.h"
#include "safeopt/fta/cut_sets.h"
#include "safeopt/ftio/writer.h"

namespace safeopt::ftio {
namespace {

constexpr const char* kFig2Model = R"(
# Elbtunnel collision tree (paper Fig. 2)
tree Collision;
toplevel Collision_top;
Collision_top or OHVIgnoresSignal SignalNotOn;
SignalNotOn   or SignalOutOfOrder SignalNotActivated;
OHVIgnoresSignal   prob = 1e-3;
SignalOutOfOrder   prob = 1e-4;
SignalNotActivated prob = 5e-4;
)";

TEST(ParserTest, ParsesFig2Model) {
  const ParsedFaultTree parsed = parse_fault_tree(kFig2Model);
  EXPECT_EQ(parsed.tree.name(), "Collision");
  EXPECT_EQ(parsed.tree.basic_event_count(), 3u);
  EXPECT_EQ(parsed.tree.gate_count(), 2u);
  EXPECT_EQ(parsed.tree.node_name(parsed.tree.top()), "Collision_top");
  EXPECT_TRUE(parsed.tree.validate().empty());
  EXPECT_TRUE(parsed.probabilities.is_valid_for(parsed.tree));
  const auto id = parsed.tree.find("OHVIgnoresSignal");
  ASSERT_TRUE(id.has_value());
  EXPECT_DOUBLE_EQ(parsed.probabilities
                       .basic_event_probability[parsed.tree
                                                    .basic_event_ordinal(*id)],
                   1e-3);
}

TEST(ParserTest, ParsesAllGateKinds) {
  const ParsedFaultTree parsed = parse_fault_tree(R"(
toplevel top;
top or g_and g_vote g_xor g_inh;
g_and and a b;
g_vote 2of3 a b c;
g_xor xor a b;
g_inh inhibit a cond;
a prob = 0.1;
b prob = 0.2;
c prob = 0.3;
cond condition prob = 0.5;
)");
  const auto& tree = parsed.tree;
  EXPECT_EQ(tree.gate_type(*tree.find("g_and")), fta::GateType::kAnd);
  EXPECT_EQ(tree.gate_type(*tree.find("g_vote")), fta::GateType::kKofN);
  EXPECT_EQ(tree.vote_threshold(*tree.find("g_vote")), 2u);
  EXPECT_EQ(tree.gate_type(*tree.find("g_xor")), fta::GateType::kXor);
  EXPECT_EQ(tree.gate_type(*tree.find("g_inh")), fta::GateType::kInhibit);
  EXPECT_EQ(tree.condition_count(), 1u);
  EXPECT_DOUBLE_EQ(parsed.probabilities.condition_probability[0], 0.5);
}

TEST(ParserTest, SharedSubtreesAreSingleNodes) {
  const ParsedFaultTree parsed = parse_fault_tree(R"(
toplevel top;
top and left right;
left or shared a;
right or shared b;
shared prob = 0.01;
a prob = 0.1;
b prob = 0.2;
)");
  // "shared" appears twice as a child but is one node; MCS must absorb.
  const auto mcs = fta::minimal_cut_sets(parsed.tree);
  EXPECT_EQ(mcs.size(), 2u);  // {shared}, {a, b}
}

struct ErrorCase {
  std::string name;
  std::string input;
  std::string message_fragment;
  std::size_t line;
};

class ParserErrors : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(ParserErrors, ReportsPositionAndReason) {
  const ErrorCase& c = GetParam();
  try {
    (void)parse_fault_tree(c.input);
    FAIL() << "expected ParseError for " << c.name;
  } catch (const ParseError& error) {
    EXPECT_EQ(error.line(), c.line) << error.what();
    EXPECT_NE(std::string(error.what()).find(c.message_fragment),
              std::string::npos)
        << error.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrors,
    ::testing::Values(
        ErrorCase{"missing_toplevel", "a prob = 0.1;\n", "missing 'toplevel'",
                  1},
        ErrorCase{"missing_semicolon", "toplevel top\ntop or a b;\n",
                  "expected ';'", 2},
        ErrorCase{"unknown_gate_kind",
                  "toplevel t;\nt frobnicate a b;\na prob = 0.1;\n",
                  "unknown gate kind", 2},
        ErrorCase{"undefined_node", "toplevel t;\nt or a ghost;\na prob = 0.1;\n",
                  "undefined node 'ghost'", 2},
        ErrorCase{"probability_out_of_range",
                  "toplevel t;\nt or a;\na prob = 1.5;\n",
                  "must lie in [0, 1]", 3},
        ErrorCase{"duplicate_gate",
                  "toplevel t;\nt or a;\nt or a;\na prob = 0.1;\n",
                  "duplicate definition", 3},
        ErrorCase{"duplicate_leaf",
                  "toplevel t;\nt or a;\na prob = 0.1;\na prob = 0.2;\n",
                  "duplicate declaration", 4},
        ErrorCase{"inhibit_arity",
                  "toplevel t;\nt inhibit a;\na prob = 0.1;\n",
                  "exactly two operands", 2},
        ErrorCase{"inhibit_condition_kind",
                  "toplevel t;\nt inhibit a b;\na prob = 0.1;\nb prob = 0.2;\n",
                  "must be a condition leaf", 2},
        ErrorCase{"vote_too_few_children",
                  "toplevel t;\nt 3of2 a b;\na prob = 0.1;\nb prob = 0.1;\n",
                  "fewer children", 2},
        // The cycle is detected while expanding gate b (line 3), whose
        // child refers back to a.
        ErrorCase{"cycle", "toplevel a;\na or b;\nb or a;\n", "cycle", 3},
        ErrorCase{"bad_character", "toplevel t;\nt or a$;\n", "unexpected",
                  2},
        ErrorCase{"unreachable_leaf",
                  "toplevel t;\nt or a;\na prob = 0.1;\nzombie prob = 0.5;\n",
                  "not reachable", 4}),
    [](const auto& info) { return info.param.name; });

TEST(ParserTest, CommentsAndWhitespaceAreIgnored) {
  const ParsedFaultTree parsed = parse_fault_tree(
      "# leading comment\n  toplevel   t ; # trailing\n\tt or a b;# x\n"
      "a prob = 0.1;\nb prob=0.2;\n");
  EXPECT_EQ(parsed.tree.basic_event_count(), 2u);
}

class RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTrip, WriteThenParsePreservesSemantics) {
  const fta::FaultTree original = testutil::random_tree(
      GetParam(), {.basic_events = 6, .conditions = 2, .gates = 5});
  const fta::QuantificationInput probabilities =
      testutil::random_probabilities(original, GetParam());

  const std::string text = write_fault_tree(original, probabilities);
  const ParsedFaultTree reparsed = parse_fault_tree(text);

  EXPECT_EQ(reparsed.tree.basic_event_count(), original.basic_event_count());
  EXPECT_EQ(reparsed.tree.condition_count(), original.condition_count());
  EXPECT_EQ(reparsed.tree.gate_count(), original.gate_count());

  // Same minimal cut sets under the same event names, and same quantified
  // top probability: node ordinals may permute, so compare by name through
  // the cut-set string rendering and by probability.
  const auto mcs_a = fta::minimal_cut_sets(original);
  const auto mcs_b = fta::minimal_cut_sets(reparsed.tree);
  EXPECT_EQ(mcs_a.size(), mcs_b.size());
  const double p_a = fta::top_event_probability(mcs_a, probabilities);
  const double p_b =
      fta::top_event_probability(mcs_b, reparsed.probabilities);
  EXPECT_NEAR(p_a, p_b, 1e-12) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace safeopt::ftio
