// Experiment: the §IV-C.2 results table — the paper's reported outcomes of
// safety optimization on the Elbtunnel height control, paper value against
// measured value:
//   * optimal timer runtimes               ~19 / ~15.6 min
//   * false-alarm risk improvement         about 10%
//   * collision risk change                less than 0.1%
//   * timer 1 more conservative than timer 2 (flat cost along T1)
//
// Usage: bench_optimum_results [SOLVER]
//   SOLVER is a registry name or legacy display name for the headline
//   optimization (default multi_start); the agreement table below always
//   sweeps every registered solver.
#include <cmath>
#include <cstdio>
#include <exception>
#include <string>

#include "safeopt/core/sensitivity.h"
#include "safeopt/core/study.h"
#include "safeopt/elbtunnel/elbtunnel_model.h"

int main(int argc, char** argv) {
  using namespace safeopt;
  const elbtunnel::ElbtunnelModel model;

  core::SolverSelection selection =
      *core::resolve_solver("MultiStart(NelderMead)");
  if (argc > 1) {
    const auto chosen = core::resolve_solver(argv[1]);
    if (!chosen.has_value()) {
      std::fprintf(stderr, "unknown solver \"%s\"; available:", argv[1]);
      for (const std::string& known : opt::SolverRegistry::available()) {
        std::fprintf(stderr, " %s", known.c_str());
      }
      std::fprintf(stderr, "\n");
      return 1;
    }
    selection = *chosen;
  }
  const std::string& solver_name = selection.name;

  core::Study study(model.cost_model(), model.parameter_space());
  core::SafetyOptimizationResult optimal;
  try {
    optimal = study.solver(selection.name, selection.config).run();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cannot optimize with %s: %s\n", solver_name.c_str(),
                 error.what());
    return 1;
  }
  const auto report = study.compare(model.engineers_guess(), optimal);

  std::printf("=== §IV-C.2: safety-optimization results (%s) ===\n\n",
              solver_name.c_str());
  std::printf("%-34s %14s %14s\n", "quantity", "paper", "measured");
  std::printf("%-34s %14s %14.2f\n", "optimal T1 [min]", "~19",
              optimal.optimization.argmin[0]);
  std::printf("%-34s %14s %14.2f\n", "optimal T2 [min]", "~15.6",
              optimal.optimization.argmin[1]);
  std::printf("%-34s %14s %14.5f\n", "cost at optimum",
              "0.0046..0.0047", optimal.cost);
  std::printf("%-34s %14s %13.2f%%\n", "false-alarm risk change", "~-10%",
              100.0 * report.hazards[1].relative_change);
  std::printf("%-34s %14s %13.4f%%\n", "collision risk change", "< 0.1%",
              100.0 * report.hazards[0].relative_change);

  // Flatness asymmetry: cost increase for +5 min on each timer.
  const auto cost = model.cost_model().cost_expression();
  const auto at = optimal.optimal_parameters;
  auto t1_up = at;
  t1_up.set("T1", at.get("T1") + 5.0);
  auto t2_up = at;
  t2_up.set("T2", at.get("T2") + 5.0);
  const double base = cost.evaluate(at);
  std::printf("%-34s %14s %14.3e\n", "cost(+5 min on T1) - cost*", "~0",
              cost.evaluate(t1_up) - base);
  std::printf("%-34s %14s %14.3e\n", "cost(+5 min on T2) - cost*",
              "dominant", cost.evaluate(t2_up) - base);

  std::printf("\nabsolute risks:\n");
  for (const auto& hazard : report.hazards) {
    std::printf("  %-5s baseline %.6e  ->  optimal %.6e\n",
                hazard.hazard.c_str(), hazard.baseline_probability,
                hazard.optimal_probability);
  }

  std::printf("\nper-parameter sensitivities at the optimum:\n");
  for (const auto& s : core::sensitivity_analysis(
           model.cost_model(), model.parameter_space(),
           optimal.optimal_parameters)) {
    std::printf("  d(cost)/d%-3s = %+12.4e   dP(HCol)/d%-3s = %+12.4e   "
                "dP(HAlr)/d%-3s = %+12.4e\n",
                s.parameter.c_str(), s.cost_gradient, s.parameter.c_str(),
                s.hazard_gradients[0], s.parameter.c_str(),
                s.hazard_gradients[1]);
  }

  // Every registered solver on the same study — one compiled tape, solvers
  // hopping on by name. golden_section correctly refuses the 2-D box.
  std::printf("\nsolver agreement on the optimum (full registry):\n");
  std::printf("%-26s %8s %8s %12s %12s\n", "solver", "T1*", "T2*", "cost",
              "evaluations");
  for (const std::string& name : opt::SolverRegistry::available()) {
    opt::SolverConfig config;
    if (const auto algorithm = core::parse_algorithm(name)) {
      config = core::algorithm_solver_config(*algorithm);
    }
    try {
      const auto result = study.solver(name, config).run();
      std::printf("%-26s %8.2f %8.2f %12.7f %12zu\n", name.c_str(),
                  result.optimization.argmin[0],
                  result.optimization.argmin[1], result.cost,
                  result.optimization.evaluations);
    } catch (const std::exception& error) {
      std::printf("%-26s %s\n", name.c_str(), error.what());
    }
  }
  return 0;
}
