// Quickstart: build a fault tree, generate minimal cut sets, quantify the
// hazard three ways, rank failure importances, and export the tree.
//
// The system: a pump train whose hazard is "loss of coolant flow". Two
// redundant pumps feed a common discharge valve; a control-room operator can
// also trip the system by mistake, but only while maintenance is in progress
// (an INHIBIT condition — paper §II-D.1).
#include <cstdio>

#include "safeopt/fta/cut_sets.h"
#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/importance.h"
#include "safeopt/fta/probability.h"
#include "safeopt/ftio/writer.h"

int main() {
  using namespace safeopt;

  // 1. Build the tree bottom-up: leaves first, gates over them.
  fta::FaultTree tree("LossOfCoolantFlow");
  const auto pump_a = tree.add_basic_event("PumpA_fails");
  const auto pump_b = tree.add_basic_event("PumpB_fails");
  const auto valve = tree.add_basic_event("DischargeValve_stuck");
  const auto trip = tree.add_basic_event("OperatorTrip");
  const auto maintenance = tree.add_condition(
      "MaintenanceInProgress", "trip switch exposed only during maintenance");

  const auto both_pumps = tree.add_and("BothPumpsFail", {pump_a, pump_b});
  const auto spurious_trip =
      tree.add_inhibit("SpuriousTrip", trip, maintenance);
  const auto top = tree.add_or("LossOfFlow", {both_pumps, valve,
                                              spurious_trip});
  tree.set_top(top);

  for (const auto& problem : tree.validate()) {
    std::printf("validation problem: %s\n", problem.c_str());
  }

  // 2. Minimal cut sets (paper §II-B) via MOCUS.
  const fta::CutSetCollection mcs = fta::minimal_cut_sets(tree);
  std::printf("minimal cut sets: %s\n", mcs.to_string(tree).c_str());
  std::printf("single points of failure: %zu of %zu cut sets\n",
              mcs.single_points_of_failure().size(), mcs.size());
  // The dual view: keeping any one of these sets healthy keeps the system
  // safe (success-tree / minimal path sets).
  std::printf("minimal path sets: %s\n",
              fta::minimal_path_sets(tree).to_string(tree).c_str());

  // 3. Quantify (paper §II-C): probabilities per demand.
  fta::QuantificationInput input = fta::QuantificationInput::for_tree(tree, 0.0);
  input.set(tree, "PumpA_fails", 3e-3);
  input.set(tree, "PumpB_fails", 3e-3);
  input.set(tree, "DischargeValve_stuck", 1e-4);
  input.set(tree, "OperatorTrip", 2e-3);
  input.set(tree, "MaintenanceInProgress", 0.05);  // constraint probability

  std::printf("P(hazard), rare event approx. (Eq. 1/2): %.6e\n",
              fta::top_event_probability(
                  mcs, input, fta::ProbabilityMethod::kRareEvent));
  std::printf("P(hazard), min-cut upper bound:          %.6e\n",
              fta::top_event_probability(
                  mcs, input, fta::ProbabilityMethod::kMinCutUpperBound));
  std::printf("P(hazard), exact (inclusion-exclusion):  %.6e\n",
              fta::top_event_probability(
                  mcs, input, fta::ProbabilityMethod::kInclusionExclusion));

  // 4. Which failure dominates? (Fussell-Vesely ranking.)
  std::printf("\nimportance ranking (Fussell-Vesely):\n");
  for (const auto& m : fta::importance_ranking(tree, mcs, input)) {
    std::printf("  %-22s FV=%.4f  Birnbaum=%.4e  RAW=%8.2f\n",
                m.event_name.c_str(), m.fussell_vesely, m.birnbaum,
                m.risk_achievement_worth);
  }

  // 5. Export: the textual model format and GraphViz DOT.
  std::printf("\n--- model file ---\n%s",
              ftio::write_fault_tree(tree, input).c_str());
  std::printf("\n--- GraphViz (render with: dot -Tsvg) ---\n%s",
              ftio::to_dot(tree, &input).c_str());
  return 0;
}
