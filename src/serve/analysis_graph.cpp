#include "safeopt/serve/analysis_graph.h"

#include <cstdio>
#include <stdexcept>

#include "safeopt/core/quantification_engine.h"
#include "safeopt/core/study.h"
#include "safeopt/ftio/study_document.h"
#include "safeopt/opt/solver.h"
#include "safeopt/support/error.h"
#include "safeopt/support/mutex.h"
#include "safeopt/support/strings.h"

namespace safeopt::serve {
namespace {

// FNV-1a 64 over arbitrary request text — key material for the raw-text
// parse key and option fingerprints. Documents themselves are keyed on
// ftio::canonical_hash (semantic identity); this is only for strings that
// are already canonical (option lists render deterministically).
std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char byte : text) {
    hash ^= static_cast<unsigned char>(byte);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char digits[17];
  std::snprintf(digits, sizeof(digits), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(digits, 16);
}

void append_fingerprint_field(std::string& out, std::string_view name,
                              std::string_view value) {
  out += name;
  out += '=';
  out += std::to_string(value.size());
  out += ':';
  out += value;
  out += ';';
}

void append_optional_fingerprint_field(std::string& out, std::string_view name,
                                       const std::optional<std::string>& value) {
  // "-" vs "+<value>" keeps an absent option distinct from an empty string.
  append_fingerprint_field(out, name,
                           value.has_value() ? concat("+", *value) : "-");
}

/// Restores the slot to "no request" on every exit path; the caller holds
/// the artifact mutex for the guard's whole lifetime.
class SlotGuard {
 public:
  SlotGuard(RequestControlSlot& slot, const ExecutionControl* control) noexcept
      : slot_(slot) {
    slot_.set(control);
  }
  ~SlotGuard() { slot_.clear(); }
  SlotGuard(const SlotGuard&) = delete;
  SlotGuard& operator=(const SlotGuard&) = delete;

 private:
  RequestControlSlot& slot_;
};

bool control_fired(const ExecutionControl* control) {
  return control != nullptr && control->should_abort();
}

/// A quantification outcome is reusable only when nothing request-specific
/// leaked into it: no abort mid-estimate, no degradation note, and the
/// request's own control never fired.
bool reusable(const HazardResults& results, const ExecutionControl* control) {
  if (control_fired(control)) return false;
  for (const auto& [hazard, result] : results) {
    (void)hazard;
    if (result.aborted.value_or(false)) return false;
    if (!result.diagnostics.empty()) return false;
  }
  return true;
}

}  // namespace

std::string option_fingerprint(const AnalysisOptions& options) {
  // Every component is length-prefixed, so option values containing the
  // joining punctuation cannot alias two distinct configurations onto one
  // compile/quantify cache key (["a=1,b=2"] != ["a=1", "b=2"]).
  std::string out;
  append_optional_fingerprint_field(out, "engine", options.engine);
  for (const std::string& option : options.engine_options) {
    append_fingerprint_field(out, "engine_option", option);
  }
  append_optional_fingerprint_field(out, "solver", options.solver);
  for (const std::string& extra : options.extras) {
    append_fingerprint_field(out, "extra", extra);
  }
  append_optional_fingerprint_field(
      out, "seed",
      options.seed.has_value()
          ? std::optional<std::string>(std::to_string(*options.seed))
          : std::nullopt);
  return out;
}

RequestControlSlot::RequestControlSlot() {
  control_.probe = [this]() -> ExecutionStatus {
    const ExecutionControl* request =
        request_.load(std::memory_order_acquire);
    return request == nullptr ? ExecutionStatus::kRunning : request->status();
  };
}

const std::vector<PassDesc>& analysis_passes() {
  static const std::vector<PassDesc> passes = {
      {"parse", "study document + canonical hash", ""},
      {"validate", "structural problem list", "parse"},
      {"compile", "core::Study with compiled leaf tapes", "parse"},
      {"preprocess", "normalized/modularized trees (inside compile's study)",
       "compile"},
      {"mcs", "minimal cut sets (inside compile's study)", "preprocess"},
      {"bdd", "BDD / engine state (inside compile's study)", "mcs"},
      {"quantify", "hazard probabilities + cost at a point", "bdd"},
      {"optimize", "optimum + quantification at the optimum", "quantify"},
  };
  return passes;
}

// ----------------------------------------------------------------- artifacts

struct AnalysisGraph::ParsedArtifact {
  ftio::StudyDocument doc;
  std::string canonical_hex;
  std::size_t text_bytes = 0;
};

struct AnalysisGraph::CompiledArtifact {
  // The study's quantify path is documented single-threaded (lazy engines,
  // mutable tape caches): requests serialize on this mutex. Different
  // documents — different artifacts — still run concurrently. `study` is
  // deliberately not GUARDED_BY(mutex): the guarded state is the Study's
  // *internal* mutable caches, touched only by the mutating entry points
  // (quantify/run/evaluate_at) below; the name/config accessors read
  // members immutable after compile and stay lock-free.
  mutable Mutex mutex;
  mutable RequestControlSlot slot;
  std::shared_ptr<const ParsedArtifact> parsed;  // hazard order, model shape
  std::optional<core::Study> study;
};

struct AnalysisGraph::QuantifyOutcome {
  expr::ParameterAssignment at;
  HazardResults results;
  double cost = 0.0;
  std::string engine_name;
};

struct AnalysisGraph::OptimizeOutcome {
  bool converged = false;
  std::size_t evaluations = 0;
  expr::ParameterAssignment optimum;
  HazardResults results;
  double cost = 0.0;
};

struct AnalysisGraph::ValidateOutcome {
  std::size_t parameters = 0;
  std::size_t trees = 0;
  std::size_t hazards = 0;
  std::vector<std::string> problems;
};

// -------------------------------------------------------------------- passes

AnalysisGraph::AnalysisGraph(std::size_t cache_bytes)
    : cache_(cache_bytes) {}

std::shared_ptr<const AnalysisGraph::ParsedArtifact> AnalysisGraph::parse_pass(
    const std::string& document_text) {
  const std::string key = concat("parse:", hex64(fnv1a(document_text)));
  return cache_.get_as<ParsedArtifact>(key, [&] {
    auto artifact = std::make_shared<ParsedArtifact>();
    artifact->doc = ftio::parse_study(document_text, "request");
    artifact->canonical_hex = ftio::canonical_hash_hex(artifact->doc);
    artifact->text_bytes = document_text.size();
    CacheEntry entry;
    entry.value = artifact;
    entry.bytes = document_text.size() * 4 + 1024;
    return entry;
  });
}

std::shared_ptr<const AnalysisGraph::CompiledArtifact>
AnalysisGraph::compile_pass(
    const std::shared_ptr<const ParsedArtifact>& parsed,
    const AnalysisOptions& options, std::string* key_fingerprint) {
  const std::string fingerprint =
      concat(parsed->canonical_hex, ":",
             hex64(fnv1a(option_fingerprint(options))));
  if (key_fingerprint != nullptr) *key_fingerprint = fingerprint;
  const std::string key = concat("compile:", fingerprint);
  return cache_.get_as<CompiledArtifact>(key, [&] {
    auto artifact = std::make_shared<CompiledArtifact>();
    artifact->parsed = parsed;
    core::Study study = core::Study::from_document(parsed->doc);
    // Request overrides layer exactly like the CLI's --solver/--extra/
    // --seed/--engine/--engine-opt (configure_study in safeopt_cli.cpp):
    // a fresh solver name restarts from that solver's defaults, extras and
    // engine options layer on whatever is selected.
    if (options.solver.has_value() || !options.extras.empty() ||
        options.seed.has_value()) {
      std::string name;
      opt::SolverConfig config;
      if (options.solver.has_value()) {
        const auto resolved = core::resolve_solver(*options.solver);
        if (!resolved.has_value()) {
          throw std::invalid_argument(
              concat("unknown solver \"", *options.solver, "\"; available: ",
                     join(opt::SolverRegistry::available(), ", ")));
        }
        name = resolved->name;
        config = resolved->config;
      } else {
        name = study.solver_name();
        config = study.solver_config();
      }
      for (const std::string& extra : options.extras) {
        config.set_extra_argument(extra);
      }
      if (options.seed.has_value()) config.seed = *options.seed;
      study.solver(std::move(name), std::move(config));
    }
    if (options.engine.has_value() || !options.engine_options.empty()) {
      if (options.engine.has_value() &&
          !core::EngineRegistry::contains(*options.engine)) {
        throw std::invalid_argument(
            concat("unknown engine \"", *options.engine, "\"; available: ",
                   join(core::EngineRegistry::available(), ", ")));
      }
      core::EngineConfig config = study.engine_config();
      for (const std::string& option : options.engine_options) {
        core::set_engine_argument(config, option);
      }
      study.engine(options.engine.value_or(study.engine_name()),
                   std::move(config));
    }
    // Bake the slot's stable control into both configs. Engines and solver
    // instrumentation capture this pointer once; the slot forwards to
    // whichever request currently holds the artifact mutex.
    {
      opt::SolverConfig config = study.solver_config();
      config.control = artifact->slot.control();
      std::string name = study.solver_name();
      study.solver(std::move(name), std::move(config));
      core::EngineConfig engine_config = study.engine_config();
      engine_config.control = artifact->slot.control();
      std::string engine_name = study.engine_name();
      study.engine(std::move(engine_name), std::move(engine_config));
    }
    artifact->study.emplace(std::move(study));
    CacheEntry entry;
    entry.value = artifact;
    // The compiled tapes + lazily built engine state dominate; scale the
    // estimate off the document size (engines grow it further, but the
    // budget is a shedding threshold, not an accounting ledger).
    entry.bytes = parsed->text_bytes * 16 + 8192;
    return entry;
  });
}

// ------------------------------------------------------------------ quantify

std::string AnalysisGraph::quantify(const std::string& document_text,
                                    const AnalysisOptions& options,
                                    const ExecutionControl* control) {
  const auto parsed = parse_pass(document_text);
  const ftio::StudyDocument& doc = parsed->doc;
  if (doc.hazards.empty()) {
    throw std::invalid_argument(
        "document declares no hazards; nothing to quantify");
  }

  if (doc.parameters.empty()) {
    // Constant (parameter-less) model: no study, engines straight on the
    // numeric leaves — the CLI's quantify_constant_model path. Engines are
    // per-computation here, so the request control wires in directly.
    if (!options.at.empty()) {
      throw std::invalid_argument(
          "evaluation point given, but the model declares no free "
          "parameters");
    }
    if (options.solver.has_value() || !options.extras.empty() ||
        options.seed.has_value()) {
      throw std::invalid_argument(
          "solver options have no effect when quantifying a constant model "
          "(no free parameters, nothing to optimize)");
    }
    const std::string key =
        concat("quantify:const:", parsed->canonical_hex, ":",
               hex64(fnv1a(option_fingerprint(options))));
    const auto outcome = cache_.get_as<QuantifyOutcome>(key, [&] {
      auto [engine_name, engine_config] =
          core::document_engine_selection(doc);
      if (options.engine.has_value()) {
        if (!core::EngineRegistry::contains(*options.engine)) {
          throw std::invalid_argument(
              concat("unknown engine \"", *options.engine, "\"; available: ",
                     join(core::EngineRegistry::available(), ", ")));
        }
        engine_name = *options.engine;
      }
      for (const std::string& option : options.engine_options) {
        core::set_engine_argument(engine_config, option);
      }
      engine_config.control = control;
      auto computed = std::make_shared<QuantifyOutcome>();
      computed->engine_name = engine_name;
      for (const ftio::HazardDecl& hazard : doc.hazards) {
        const ftio::TreeModel* model = doc.find_tree(hazard.tree);
        fta::QuantificationInput input =
            fta::QuantificationInput::for_tree(model->tree, 0.0);
        for (const ftio::LeafProbability& leaf : model->leaves) {
          input.set(model->tree, leaf.name, leaf.probability.evaluate({}));
        }
        std::string degradation;
        const auto engine = core::create_engine_with_fallback(
            engine_name, model->tree, engine_config, &degradation);
        core::QuantificationResult result = engine->quantify(input);
        if (!degradation.empty()) {
          result.diagnostics.push_back(degradation);
        }
        computed->results.emplace_back(hazard.tree, std::move(result));
        computed->cost +=
            hazard.cost * computed->results.back().second.probability;
      }
      CacheEntry entry;
      entry.value = computed;
      entry.bytes = 512 + computed->results.size() * 512;
      entry.store = reusable(computed->results, control);
      // An outcome computed under a fired control (aborted mid-estimate) is
      // this request's alone; single-flight waiters must recompute.
      entry.share = !control_fired(control);
      return entry;
    });
    return render_constant_quantify_response(options.model,
                                             outcome->engine_name,
                                             outcome->results, outcome->cost);
  }

  std::string fingerprint;
  const auto compiled = compile_pass(parsed, options, &fingerprint);
  const core::Study& study = *compiled->study;

  // Evaluation point: box center, request components override per axis
  // (the CLI's default for quantify).
  expr::ParameterAssignment at;
  for (std::size_t i = 0; i < study.space().size(); ++i) {
    const auto& parameter = study.space()[i];
    at.set(parameter.name, 0.5 * (parameter.lower + parameter.upper));
  }
  for (const auto& [name, value] : options.at) {
    if (!study.space().index_of(name).has_value()) {
      throw std::invalid_argument(
          concat("evaluation point names unknown parameter \"", name,
                 "\" (declared: ", join(study.space().names(), ", "), ")"));
    }
    at.set(name, value);
  }
  std::string at_fingerprint;
  for (const auto& [name, value] : at.entries()) {
    char number[48];
    std::snprintf(number, sizeof(number), "%.17g", value);
    at_fingerprint += concat(name, "=", number, ";");
  }

  const std::string key =
      concat("quantify:", fingerprint, ":", hex64(fnv1a(at_fingerprint)));
  const auto outcome = cache_.get_as<QuantifyOutcome>(key, [&] {
    const MutexLock lock(compiled->mutex);
    SlotGuard guard(compiled->slot, control);
    auto computed = std::make_shared<QuantifyOutcome>();
    computed->at = at;
    computed->engine_name = study.engine_name();
    computed->cost = study.evaluate_at(at).cost;
    for (const ftio::HazardDecl& hazard : compiled->parsed->doc.hazards) {
      computed->results.emplace_back(hazard.tree,
                                     study.quantify(hazard.tree, at));
    }
    CacheEntry entry;
    entry.value = computed;
    entry.bytes = 512 + computed->results.size() * 512;
    entry.store = reusable(computed->results, control);
    entry.share = !control_fired(control);
    return entry;
  });
  return render_quantify_response(options.model, outcome->engine_name,
                                  outcome->at, outcome->results,
                                  outcome->cost);
}

// ------------------------------------------------------------------ optimize

std::string AnalysisGraph::optimize(const std::string& document_text,
                                    const AnalysisOptions& options,
                                    const ExecutionControl* control) {
  const auto parsed = parse_pass(document_text);
  std::string fingerprint;
  const auto compiled = compile_pass(parsed, options, &fingerprint);
  const core::Study& study = *compiled->study;

  const std::string key = concat("optimize:", fingerprint);
  const auto outcome = cache_.get_as<OptimizeOutcome>(key, [&] {
    const MutexLock lock(compiled->mutex);
    SlotGuard guard(compiled->slot, control);
    const auto result = study.run();
    auto computed = std::make_shared<OptimizeOutcome>();
    computed->converged = result.optimization.converged;
    computed->evaluations = result.optimization.evaluations;
    computed->optimum = result.optimal_parameters;
    computed->cost = result.cost;
    for (const ftio::HazardDecl& hazard : compiled->parsed->doc.hazards) {
      computed->results.emplace_back(
          hazard.tree, study.quantify(hazard.tree, computed->optimum));
    }
    CacheEntry entry;
    entry.value = computed;
    entry.bytes = 1024 + computed->results.size() * 512;
    // Seeded solvers are deterministic, so a clean run is reusable; an
    // aborted one (deadline/cancel returns best-so-far, converged=false)
    // is request-specific and must not be served to others — neither from
    // the cache nor through a single-flight join.
    entry.store =
        reusable(computed->results, control) && !control_fired(control);
    entry.share = !control_fired(control);
    return entry;
  });
  return render_optimize_response(
      options.model, study.solver_name(), study.engine_name(),
      outcome->converged, outcome->evaluations, outcome->optimum,
      outcome->results, outcome->cost);
}

// ------------------------------------------------------------------ validate

std::vector<std::string> validate_problems(const ftio::StudyDocument& doc) {
  std::vector<std::string> problems;
  for (const ftio::TreeModel& model : doc.trees) {
    for (const std::string& problem : model.tree.validate()) {
      problems.push_back(concat("tree ", model.tree.name(), ": ", problem));
    }
  }
  if (doc.hazards.empty()) {
    problems.emplace_back(
        "no hazards declared; `safeopt run` needs at least one "
        "\"hazard <tree> cost = <c>;\"");
  }
  try {
    (void)core::document_solver_selection(doc);
    (void)core::document_engine_selection(doc);
    if (!doc.parameters.empty() && !doc.hazards.empty()) {
      (void)core::Study::from_document(doc);
    }
  } catch (const std::invalid_argument& error) {
    problems.emplace_back(error.what());
  }
  return problems;
}

std::string AnalysisGraph::validate(const std::string& document_text,
                                    const AnalysisOptions& options) {
  const auto parsed = parse_pass(document_text);
  const std::string key = concat("validate:", parsed->canonical_hex);
  const auto outcome = cache_.get_as<ValidateOutcome>(key, [&] {
    auto computed = std::make_shared<ValidateOutcome>();
    computed->parameters = parsed->doc.parameters.size();
    computed->trees = parsed->doc.trees.size();
    computed->hazards = parsed->doc.hazards.size();
    computed->problems = validate_problems(parsed->doc);
    CacheEntry entry;
    entry.value = computed;
    entry.bytes = 256;
    for (const std::string& problem : computed->problems) {
      entry.bytes += problem.size();
    }
    return entry;
  });
  return render_validate_response(options.model, outcome->parameters,
                                  outcome->trees, outcome->hazards,
                                  outcome->problems);
}

}  // namespace safeopt::serve
