// Compiled evaluation of expression DAGs.
//
// Expr::evaluate() walks the shared-pointer DAG with one virtual dispatch,
// one ParameterAssignment binary search per parameter mention, and repeated
// recomputation of structurally identical subtrees. That is fine for a
// report; it is not fine for optimizers that call the cost function tens of
// thousands of times per solve.
//
// CompiledExpr flattens the DAG once into a postorder instruction tape:
//   * common subexpressions are shared (structural hashing — two calls to
//     ElbtunnelModel::p_overtime1() build distinct nodes but compile to one
//     tape slot, so the expensive truncated-normal survival runs once),
//   * constant subtrees are folded at compile time,
//   * parameters become slot loads from a flat vector (no name lookups),
//   * evaluation is a tight loop over plain structs — no virtual calls.
//
// The tape supports four access patterns:
//   value     — evaluate(parameters)
//   gradient  — evaluate_with_gradient(): one reverse (adjoint) sweep over
//               the tape, O(tape) regardless of dimension count
//   batch     — evaluate_batch(): many parameter vectors in one call,
//               optionally fanned out over a support ThreadPool. Batches run
//               on a lane-blocked structure-of-arrays kernel: L = 4 or 8
//               points advance through every instruction together, so the
//               interpreter dispatch amortizes L-fold and the per-lane
//               arithmetic loops are plain fixed-size arrays the compiler
//               auto-vectorizes. The scalar loop remains the tail handler,
//               the lane_width == 1 path, and the bitwise-identity oracle.
//   gradient batch — evaluate_batch_with_gradients(): one forward + one
//               adjoint lane sweep yields L values *and* L gradients per
//               pass, feeding population-based solvers without per-point
//               tape traversals.
//
// Evaluation is bitwise-identical to Expr::evaluate(): the tape performs the
// same floating-point operations on the same values (sharing only removes
// *re*-computation, immediate fusion only changes where an operand is loaded
// from, and the algebraic identities x+0 / x−0 / x·1 / x/1 / x^1 are exact
// in IEEE arithmetic), which is what lets optimizers switch paths without
// perturbing results. The single caveat: an identity can surface a −0.0
// where the tree produced +0.0 (−0.0 + 0 rounds to +0.0); the two compare
// equal, so optima remain ==-comparable. Opaque function1 nodes are assumed
// pure (same input, same output) — the same contract the tree walk's
// memo-free recursion already implies for shared subtrees.
#ifndef SAFEOPT_EXPR_COMPILED_H
#define SAFEOPT_EXPR_COMPILED_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "safeopt/expr/expr.h"

namespace safeopt {
class ThreadPool;
}

namespace safeopt::expr {

class CompiledExpr {
 public:
  /// Reusable per-thread evaluation state: the value slots plus a
  /// last-argument memo for the expensive distribution instructions (cdf /
  /// survival). Sweep- and grid-shaped workloads repeat arguments along
  /// axes, and a memo hit replays the bitwise-identical previous result, so
  /// caching never perturbs values. A Workspace binds to the CompiledExpr it
  /// first evaluates; handing it to a different one resets it.
  class Workspace {
   public:
    Workspace() = default;

   private:
    friend class CompiledExpr;
    // Identity of the bound tape — a process-unique compilation serial, not
    // an address (a recompiled CompiledExpr at a reused address must not
    // look bound, or stale undersized buffers would be reused).
    std::uint64_t bound_id = 0;
    std::vector<double> slots;
    std::vector<double> memo_arg;
    std::vector<double> memo_val;
  };

  /// Compiles `source` with the parameter slots ordered alphabetically
  /// (== the iteration order of source.parameters()).
  [[nodiscard]] static CompiledExpr compile(const Expr& source);

  /// Compiles with an explicit slot order — the order optimizer vectors use.
  /// Every parameter the expression mentions must appear in
  /// `parameter_order`; extra names are allowed (their slots are ignored).
  [[nodiscard]] static CompiledExpr compile(
      const Expr& source, std::vector<std::string> parameter_order);

  /// The names bound to evaluation slots, in slot order.
  [[nodiscard]] const std::vector<std::string>& parameter_order()
      const noexcept {
    return parameter_order_;
  }
  /// Number of tape instructions (== value slots used by one evaluation).
  [[nodiscard]] std::size_t tape_size() const noexcept { return tape_.size(); }

  /// Evaluates at one point. Precondition: parameters.size() ==
  /// parameter_order().size(). Thread-safe: concurrent calls on the same
  /// CompiledExpr are fine (scratch is per-call / per-thread).
  [[nodiscard]] double evaluate(std::span<const double> parameters) const;

  /// Same, with caller-owned state: the workspace's memo carries over
  /// between calls, which is the fast path for sweeps that hold some
  /// parameters fixed. One workspace per thread.
  [[nodiscard]] double evaluate(std::span<const double> parameters,
                                Workspace& workspace) const;

  /// Name-based convenience; every parameter slot must be bound in `env`.
  [[nodiscard]] double evaluate(const ParameterAssignment& env) const;

  /// Value plus d(value)/d(parameter_i) for every slot, via one reverse
  /// sweep over the tape. `gradient_out.size()` must equal the slot count;
  /// it is overwritten. Agrees with Expr::evaluate_dual up to floating-point
  /// reassociation of the chain rule.
  double evaluate_with_gradient(std::span<const double> parameters,
                                std::span<double> gradient_out) const;

  /// Default lane width of the SoA batch kernel (points per instruction).
  static constexpr std::size_t kDefaultLaneWidth = 8;

  /// Evaluates `out.size()` points in one call on the lane-blocked SoA
  /// kernel (kDefaultLaneWidth lanes). `points` is row-major with one
  /// parameter vector of length parameter_order().size() per row:
  /// points.size() == out.size() * parameter_order().size().
  void evaluate_batch(std::span<const double> points,
                      std::span<double> out) const;

  /// Same with an explicit lane width. Supported widths: 1 (the scalar
  /// reference loop — the oracle the lane kernel is tested against), 4, 8.
  /// Lane-invariance contract: results are bitwise-identical for every
  /// supported width and any batch size (each row's value is the exact
  /// operation sequence of evaluate(); the lane memo only ever *replays*
  /// bit-identical results, see below).
  void evaluate_batch(std::span<const double> points, std::span<double> out,
                      std::size_t lane_width) const;

  /// Same, with rows fanned out over `pool`. Each output element depends
  /// only on its own row, so results are bitwise-independent of the thread
  /// count (and, per the contract above, of the lane width).
  void evaluate_batch(std::span<const double> points, std::span<double> out,
                      ThreadPool& pool) const;

  /// Lane-batched value + gradient: one forward and one adjoint SoA sweep
  /// yield values_out.size() rows at once. `gradients_out` is row-major,
  /// gradients_out.size() == values_out.size() * parameter_order().size().
  /// Each row is bitwise-identical to a evaluate_with_gradient() call on
  /// that row (the lane kernel performs the same per-point operation
  /// sequence); like evaluate_with_gradient it agrees with
  /// Expr::evaluate_dual up to floating-point reassociation.
  void evaluate_batch_with_gradients(std::span<const double> points,
                                     std::span<double> values_out,
                                     std::span<double> gradients_out) const;

  /// Same, fanned out over `pool`; results are thread-count-invariant.
  void evaluate_batch_with_gradients(std::span<const double> points,
                                     std::span<double> values_out,
                                     std::span<double> gradients_out,
                                     ThreadPool& pool) const;

  /// Human-readable tape listing, one instruction per line (debugging aid).
  [[nodiscard]] std::string disassemble() const;

 private:
  enum class OpCode : std::uint8_t {
    kConst,     // imm
    kParam,     // parameter slot a
    kAdd, kSub, kMul, kDiv, kMin, kMax,  // value slots a, b
    // Immediate-fused binaries: one operand was a compile-time constant.
    // Same floating-point operation, one slot load and one instruction less.
    kAddImm,    // slot a + imm
    kSubImm,    // slot a - imm
    kRsubImm,   // imm - slot a
    kMulImm,    // slot a * imm
    kDivImm,    // slot a / imm
    kRdivImm,   // imm / slot a
    kNeg, kExp, kLog, kSqrt,             // value slot a
    kPow,       // value slot a, exponent imm
    kCdf,       // value slot a, distribution table index b
    kSurvival,  // value slot a, distribution table index b
    kCall,      // value slot a, function table index b
  };

  struct Instruction {
    OpCode op;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t c = 0;  // memo index (kCdf / kSurvival only)
    double imm = 0.0;
  };

  class Builder;

  /// Per-call state of the lane kernel: the SoA value/adjoint slabs
  /// (tape_size() × L doubles, slot-major so each instruction's lanes are
  /// contiguous) plus the distribution-argument memo tables. Where the
  /// scalar Workspace memo remembers only the *last* argument of each cdf /
  /// survival site, the lane kernel keeps a small direct-mapped table per
  /// site (kMemoEntries (argument, result) pairs hashed on the argument's
  /// bit pattern). Grid- and sweep-shaped batches revisit the same argument
  /// values row after row, and a table hit replays the bitwise-identical
  /// stored result — so the memo, like the scalar one, can never perturb a
  /// value, only skip recomputing it.
  struct LaneScratch {
    std::vector<double> slab;
    std::vector<double> adjoint;
    std::vector<double> memo_arg;
    std::vector<double> memo_val;
  };
  static constexpr std::size_t kMemoEntries = 2048;  // per cdf/survival site

  CompiledExpr() = default;

  /// Executes the tape over `slots` (length >= tape_size()) and returns the
  /// final slot's value. `memo_arg` / `memo_val` (length memo_count_, NaN
  /// args == empty) cache the last (argument, result) pair of each cdf /
  /// survival instruction.
  double run(std::span<const double> parameters, double* slots,
             double* memo_arg, double* memo_val) const;

  /// Points `workspace`'s buffers at this tape, resetting stale state.
  void bind(Workspace& workspace) const;

  /// Sizes `scratch` for this tape (cold memo) and L lanes.
  void bind_lanes(LaneScratch& scratch, std::size_t lanes,
                  bool with_adjoint) const;

  /// Evaluates one block of exactly L rows through the SoA kernel;
  /// `points` holds L row-major parameter vectors, `out` L values.
  template <std::size_t L>
  void run_lane_block(const double* points, std::size_t dim, double* out,
                      LaneScratch& scratch) const;

  /// Forward + adjoint lane sweep over one block of exactly L rows;
  /// `gradients` receives L row-major gradient vectors of length dim.
  template <std::size_t L>
  void run_lane_block_with_gradients(const double* points, std::size_t dim,
                                     double* values, double* gradients,
                                     LaneScratch& scratch) const;

  /// Lane-blocked batch over `rows` rows with width L (scalar tail).
  template <std::size_t L>
  void evaluate_batch_lanes(std::span<const double> points,
                            std::span<double> out) const;

  // Scalar op semantics shared by run() and compile-time constant folding,
  // so folding is guaranteed bit-identical to deferred evaluation.
  static double apply_binary(OpCode op, double x, double y);
  static double apply_unary(OpCode op, double x, double imm);

  /// Mark-and-sweep from `root`: drops instructions whose value cannot reach
  /// the root (constants orphaned by immediate fusion, mostly) and compacts
  /// slot numbering so the root ends up in the final slot.
  void eliminate_dead_code(std::uint32_t root);

  std::vector<std::string> parameter_order_;
  std::vector<Instruction> tape_;
  std::uint32_t memo_count_ = 0;
  std::uint64_t id_ = 0;  // process-unique per compile(); copies share it
  std::vector<std::shared_ptr<const stats::Distribution>> distributions_;
  // FunctionNode handles (opaque std::function payloads), kept alive here.
  std::vector<std::shared_ptr<const detail::Node>> calls_;
};

}  // namespace safeopt::expr

#endif  // SAFEOPT_EXPR_COMPILED_H
