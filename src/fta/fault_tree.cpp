#include "safeopt/fta/fault_tree.h"

#include <algorithm>

#include "safeopt/support/contracts.h"
#include "safeopt/support/strings.h"

namespace safeopt::fta {

std::string_view to_string(GateType type) noexcept {
  switch (type) {
    case GateType::kAnd: return "AND";
    case GateType::kOr: return "OR";
    case GateType::kKofN: return "KOFN";
    case GateType::kXor: return "XOR";
    case GateType::kInhibit: return "INHIBIT";
  }
  return "?";
}

FaultTree::FaultTree(std::string name) : name_(std::move(name)) {}

NodeId FaultTree::add_node(Node node) {
  SAFEOPT_EXPECTS(!node.name.empty());
  SAFEOPT_EXPECTS(by_name_.find(node.name) == by_name_.end());
  const auto id = static_cast<NodeId>(nodes_.size());
  by_name_.emplace(node.name, id);
  nodes_.push_back(std::move(node));
  return id;
}

NodeId FaultTree::add_basic_event(std::string name, std::string description) {
  Node node;
  node.node_kind = NodeKind::kBasicEvent;
  node.name = std::move(name);
  node.description = std::move(description);
  const NodeId id = add_node(std::move(node));
  basic_events_.push_back(id);
  return id;
}

NodeId FaultTree::add_condition(std::string name, std::string description) {
  Node node;
  node.node_kind = NodeKind::kCondition;
  node.name = std::move(name);
  node.description = std::move(description);
  const NodeId id = add_node(std::move(node));
  conditions_.push_back(id);
  return id;
}

void FaultTree::check_child_ids(std::span<const NodeId> children) const {
  SAFEOPT_EXPECTS(!children.empty());
  for (const NodeId child : children) {
    SAFEOPT_EXPECTS(child < nodes_.size());
  }
}

NodeId FaultTree::add_gate(std::string name, GateType type, std::uint32_t k,
                           std::vector<NodeId> children) {
  check_child_ids(children);
  Node node;
  node.node_kind = NodeKind::kGate;
  node.gate = type;
  node.k = k;
  node.name = std::move(name);
  node.children = std::move(children);
  return add_node(std::move(node));
}

NodeId FaultTree::add_and(std::string name, std::vector<NodeId> children) {
  return add_gate(std::move(name), GateType::kAnd, 0, std::move(children));
}

NodeId FaultTree::add_or(std::string name, std::vector<NodeId> children) {
  return add_gate(std::move(name), GateType::kOr, 0, std::move(children));
}

NodeId FaultTree::add_k_of_n(std::string name, std::uint32_t k,
                             std::vector<NodeId> children) {
  SAFEOPT_EXPECTS(k >= 1 && k <= children.size());
  return add_gate(std::move(name), GateType::kKofN, k, std::move(children));
}

NodeId FaultTree::add_xor(std::string name, std::vector<NodeId> children) {
  return add_gate(std::move(name), GateType::kXor, 0, std::move(children));
}

NodeId FaultTree::add_inhibit(std::string name, NodeId cause,
                              NodeId condition) {
  SAFEOPT_EXPECTS(cause < nodes_.size());
  SAFEOPT_EXPECTS(condition < nodes_.size());
  SAFEOPT_EXPECTS(nodes_[condition].node_kind == NodeKind::kCondition);
  return add_gate(std::move(name), GateType::kInhibit, 0, {cause, condition});
}

void FaultTree::set_top(NodeId top) {
  SAFEOPT_EXPECTS(top < nodes_.size());
  SAFEOPT_EXPECTS(nodes_[top].node_kind != NodeKind::kCondition);
  SAFEOPT_EXPECTS(!top_.has_value());
  top_ = top;
}

NodeId FaultTree::top() const {
  SAFEOPT_EXPECTS(top_.has_value());
  return *top_;
}

std::size_t FaultTree::gate_count() const noexcept {
  return nodes_.size() - basic_events_.size() - conditions_.size();
}

NodeKind FaultTree::kind(NodeId id) const {
  SAFEOPT_EXPECTS(id < nodes_.size());
  return nodes_[id].node_kind;
}

const std::string& FaultTree::node_name(NodeId id) const {
  SAFEOPT_EXPECTS(id < nodes_.size());
  return nodes_[id].name;
}

const std::string& FaultTree::description(NodeId id) const {
  SAFEOPT_EXPECTS(id < nodes_.size());
  return nodes_[id].description;
}

GateType FaultTree::gate_type(NodeId id) const {
  SAFEOPT_EXPECTS(kind(id) == NodeKind::kGate);
  return nodes_[id].gate;
}

std::span<const NodeId> FaultTree::children(NodeId id) const {
  SAFEOPT_EXPECTS(kind(id) == NodeKind::kGate);
  return nodes_[id].children;
}

std::uint32_t FaultTree::vote_threshold(NodeId id) const {
  SAFEOPT_EXPECTS(gate_type(id) == GateType::kKofN);
  return nodes_[id].k;
}

std::optional<NodeId> FaultTree::find(std::string_view name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

BasicEventOrdinal FaultTree::basic_event_ordinal(NodeId id) const {
  SAFEOPT_EXPECTS(kind(id) == NodeKind::kBasicEvent);
  const auto it =
      std::find(basic_events_.begin(), basic_events_.end(), id);
  SAFEOPT_ASSERT(it != basic_events_.end());
  return static_cast<BasicEventOrdinal>(it - basic_events_.begin());
}

ConditionOrdinal FaultTree::condition_ordinal(NodeId id) const {
  SAFEOPT_EXPECTS(kind(id) == NodeKind::kCondition);
  const auto it = std::find(conditions_.begin(), conditions_.end(), id);
  SAFEOPT_ASSERT(it != conditions_.end());
  return static_cast<ConditionOrdinal>(it - conditions_.begin());
}

bool FaultTree::evaluate_node(NodeId id, const std::vector<bool>& basic_state,
                              const std::vector<bool>& condition_state,
                              std::vector<signed char>& memo) const {
  if (memo[id] >= 0) return memo[id] != 0;
  const Node& node = nodes_[id];
  bool result = false;
  switch (node.node_kind) {
    case NodeKind::kBasicEvent:
      result = basic_state[basic_event_ordinal(id)];
      break;
    case NodeKind::kCondition:
      result = condition_state[condition_ordinal(id)];
      break;
    case NodeKind::kGate: {
      switch (node.gate) {
        case GateType::kAnd: {
          result = true;
          for (const NodeId child : node.children) {
            result = result && evaluate_node(child, basic_state,
                                             condition_state, memo);
          }
          break;
        }
        case GateType::kOr: {
          result = false;
          for (const NodeId child : node.children) {
            result = result || evaluate_node(child, basic_state,
                                             condition_state, memo);
          }
          break;
        }
        case GateType::kKofN: {
          std::uint32_t count = 0;
          for (const NodeId child : node.children) {
            if (evaluate_node(child, basic_state, condition_state, memo)) {
              ++count;
            }
          }
          result = count >= node.k;
          break;
        }
        case GateType::kXor: {
          std::uint32_t count = 0;
          for (const NodeId child : node.children) {
            if (evaluate_node(child, basic_state, condition_state, memo)) {
              ++count;
            }
          }
          result = count == 1;
          break;
        }
        case GateType::kInhibit: {
          const bool cause = evaluate_node(node.children[0], basic_state,
                                           condition_state, memo);
          const bool cond = evaluate_node(node.children[1], basic_state,
                                          condition_state, memo);
          result = cause && cond;
          break;
        }
      }
      break;
    }
  }
  memo[id] = result ? 1 : 0;
  return result;
}

bool FaultTree::evaluate(const std::vector<bool>& basic_state,
                         const std::vector<bool>& condition_state) const {
  SAFEOPT_EXPECTS(top_.has_value());
  SAFEOPT_EXPECTS(basic_state.size() == basic_events_.size());
  SAFEOPT_EXPECTS(condition_state.size() == conditions_.size());
  std::vector<signed char> memo(nodes_.size(), -1);
  return evaluate_node(*top_, basic_state, condition_state, memo);
}

bool FaultTree::evaluate(const std::vector<bool>& basic_state) const {
  SAFEOPT_EXPECTS(conditions_.empty());
  return evaluate(basic_state, {});
}

std::vector<std::string> FaultTree::validate() const {
  std::vector<std::string> problems;
  if (!top_.has_value()) {
    problems.emplace_back("no top event set");
    return problems;
  }
  // Reachability from the top event.
  std::vector<bool> reachable(nodes_.size(), false);
  std::vector<NodeId> stack{*top_};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (reachable[id]) continue;
    reachable[id] = true;
    if (nodes_[id].node_kind == NodeKind::kGate) {
      for (const NodeId child : nodes_[id].children) stack.push_back(child);
    }
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!reachable[id]) {
      problems.push_back(concat("node '", nodes_[id].name,
                                "' is not reachable from the top event"));
    }
  }
  // Conditions may only appear as the second child of INHIBIT gates.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (node.node_kind != NodeKind::kGate) continue;
    for (std::size_t c = 0; c < node.children.size(); ++c) {
      const Node& child = nodes_[node.children[c]];
      if (child.node_kind == NodeKind::kCondition &&
          !(node.gate == GateType::kInhibit && c == 1)) {
        problems.push_back(
            concat("condition '", child.name,
                   "' used outside an INHIBIT gate (in gate '", node.name,
                   "')"));
      }
    }
    if (node.gate == GateType::kInhibit) {
      if (nodes_[node.children[0]].node_kind == NodeKind::kCondition) {
        problems.push_back(concat("INHIBIT gate '", node.name,
                                  "' has a condition as its cause"));
      }
    }
  }
  if (nodes_[*top_].node_kind == NodeKind::kCondition) {
    problems.emplace_back("top event is a condition");
  }
  return problems;
}

}  // namespace safeopt::fta
