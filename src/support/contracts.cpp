#include "safeopt/support/contracts.h"

#include <cstdio>
#include <cstdlib>

namespace safeopt {

void contract_violation(const char* kind, const char* condition,
                        const char* file, int line) noexcept {
  std::fprintf(stderr, "%s:%d: safeopt %s violation: %s\n", file, line, kind,
               condition);
  std::fflush(stderr);
  std::abort();
}

}  // namespace safeopt
