// Hunting the two height-control design flaws with two different tools,
// mirroring the paper's methodology mix:
//
//   1. The *logical* flaw (§IV-A): two OHVs entering zone 1 concurrently
//      defeat the original control. The paper found it with the SMV model
//      checker; here the explicit-state checker produces the same
//      counterexample and proves the revised design safe.
//
//   2. The *quantitative* flaw (§IV-C.2): even the revised, optimized
//      design alarms on >80% of correctly driving OHVs once an OHV is
//      present. The paper found it through parameterized probabilities;
//      here the discrete-event traffic simulation measures it directly and
//      evaluates both proposed fixes.
#include <cstdio>

#include "safeopt/elbtunnel/elbtunnel_model.h"
#include "safeopt/modelcheck/height_control_model.h"
#include "safeopt/sim/traffic.h"

int main() {
  using namespace safeopt;

  std::printf("== 1. model checking the control logic ==\n\n");
  for (const auto design : {modelcheck::ControlDesign::kOriginal,
                            modelcheck::ControlDesign::kRevised}) {
    const bool original = design == modelcheck::ControlDesign::kOriginal;
    const modelcheck::HeightControlModel model(design, 2);
    const modelcheck::CheckResult result = model.verify();
    std::printf("%s design, two OHVs: %s (%zu states explored)\n",
                original ? "original" : "revised",
                result.holds ? "collision unreachable"
                             : "COLLISION REACHABLE",
                result.states_explored);
    if (!result.holds) {
      std::printf("shortest counterexample:\n%s",
                  modelcheck::format_trace(model, result.counterexample)
                      .c_str());
    }
    std::printf("\n");
  }

  std::printf("== 2. simulating the revised design's false alarms ==\n\n");
  const elbtunnel::ElbtunnelModel model;
  std::printf("30 days of traffic, optimized timers (19 / 15.6 min), an OHV\n"
              "stream plus left-lane high vehicles:\n\n");
  std::printf("%-16s %10s %12s %18s\n", "design", "OHVs", "false alarms",
              "correct-OHV alarm%");
  for (const auto design : {elbtunnel::Design::kBaseline,
                            elbtunnel::Design::kWithLB4,
                            elbtunnel::Design::kLightBarrierAtODfinal}) {
    sim::TrafficConfig config = model.traffic_config(19.0, 15.6, design);
    config.ohv_arrival_rate_per_min = 0.02;  // scaled-up OHV traffic
    const sim::TrafficStatistics stats =
        sim::simulate_height_control(config, 2026);
    const char* name =
        design == elbtunnel::Design::kBaseline
            ? "baseline"
            : (design == elbtunnel::Design::kWithLB4 ? "with LB4"
                                                     : "LB at ODfinal");
    std::printf("%-16s %10llu %12llu %17.1f%%\n", name,
                static_cast<unsigned long long>(stats.ohv_arrivals),
                static_cast<unsigned long long>(stats.false_alarms),
                100.0 * stats.correct_ohv_alarm_fraction());
  }
  std::printf(
      "\nthe simulation reproduces the paper's verdict: the deployed design\n"
      "is 'almost obsolete' under OHV traffic; the ODfinal barrier fix is\n"
      "the effective one.\n");
  return 0;
}
