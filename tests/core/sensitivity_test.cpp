#include "safeopt/core/sensitivity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace safeopt::core {
namespace {

using expr::constant;
using expr::parameter;

TEST(SensitivityTest, GradientsMatchAnalytic) {
  CostModel model;
  model.add_hazard({"H1", expr::exp(-parameter("x")), 10.0});
  model.add_hazard({"H2", 0.5 * parameter("y"), 2.0});
  const ParameterSpace space{{"x", 0.0, 10.0, "", ""},
                             {"y", 0.0, 10.0, "", ""}};
  const expr::ParameterAssignment at{{"x", 1.0}, {"y", 3.0}};

  const auto report = sensitivity_analysis(model, space, at);
  ASSERT_EQ(report.size(), 2u);

  // ∂f/∂x = −10 e^{−x}; ∂f/∂y = 1.
  EXPECT_EQ(report[0].parameter, "x");
  EXPECT_NEAR(report[0].cost_gradient, -10.0 * std::exp(-1.0), 1e-12);
  EXPECT_EQ(report[1].parameter, "y");
  EXPECT_NEAR(report[1].cost_gradient, 1.0, 1e-12);

  // Per-hazard gradients.
  ASSERT_EQ(report[0].hazard_gradients.size(), 2u);
  EXPECT_NEAR(report[0].hazard_gradients[0], -std::exp(-1.0), 1e-12);
  EXPECT_NEAR(report[0].hazard_gradients[1], 0.0, 1e-12);
  EXPECT_NEAR(report[1].hazard_gradients[0], 0.0, 1e-12);
  EXPECT_NEAR(report[1].hazard_gradients[1], 0.5, 1e-12);
}

TEST(SensitivityTest, ElasticityIsDimensionless) {
  CostModel model;
  // f = 4·x² — elasticity (x/f)·f' = x·8x/(4x²) = 2 for every x.
  model.add_hazard({"H", parameter("x") * parameter("x"), 4.0});
  const ParameterSpace space{{"x", 0.0, 10.0, "", ""}};
  for (const double x : {0.5, 1.0, 3.0, 7.0}) {
    const auto report =
        sensitivity_analysis(model, space, {{"x", x}});
    EXPECT_NEAR(report[0].cost_elasticity, 2.0, 1e-10) << "x=" << x;
  }
}

TEST(SensitivityTest, AsymmetryDetectsLessCriticalParameter) {
  // The paper's §IV-C.2 observation: "the dependency of the risk is not
  // symmetric in the free parameters ... timer 1 may be chosen more
  // conservatively than timer 2". Model that asymmetry directly.
  CostModel model;
  model.add_hazard(
      {"H", expr::exp(-5.0 * parameter("T1")) + expr::exp(-parameter("T2")),
       1.0});
  const ParameterSpace space{{"T1", 0.0, 10.0, "", ""},
                             {"T2", 0.0, 10.0, "", ""}};
  const auto report =
      sensitivity_analysis(model, space, {{"T1", 1.0}, {"T2", 1.0}});
  // T1's hazard term has already decayed (factor 5 in the exponent), so the
  // cost is much flatter along T1: |∂f/∂T1| << |∂f/∂T2|.
  EXPECT_LT(10.0 * std::abs(report[0].cost_gradient),
            std::abs(report[1].cost_gradient));
}

TEST(SensitivityTest, ZeroCostGuardsElasticity) {
  CostModel model;
  model.add_hazard({"H", constant(0.0) * parameter("x"), 1.0});
  const ParameterSpace space{{"x", 0.0, 1.0, "", ""}};
  const auto report = sensitivity_analysis(model, space, {{"x", 0.5}});
  EXPECT_DOUBLE_EQ(report[0].cost_elasticity, 0.0);
}

}  // namespace
}  // namespace safeopt::core
