// Cyclic coordinate descent: golden-section line searches along one axis at
// a time. Simple, derivative-free, and effective on the separable-ish cost
// functions safety optimization tends to produce (each timer mostly controls
// its own hazard term).
#ifndef SAFEOPT_OPT_COORDINATE_DESCENT_H
#define SAFEOPT_OPT_COORDINATE_DESCENT_H

#include "safeopt/opt/problem.h"

namespace safeopt::opt {

class CoordinateDescent final : public Optimizer {
 public:
  explicit CoordinateDescent(StoppingCriteria stopping = {},
                             std::vector<double> initial = {},
                             std::size_t line_search_iterations = 60);

  [[nodiscard]] OptimizationResult minimize(
      const Problem& problem) const override;
  [[nodiscard]] std::string name() const override {
    return "CoordinateDescent";
  }

 private:
  StoppingCriteria stopping_;
  std::vector<double> initial_;
  std::size_t line_search_iterations_;
};

}  // namespace safeopt::opt

#endif  // SAFEOPT_OPT_COORDINATE_DESCENT_H
