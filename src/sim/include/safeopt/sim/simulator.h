// Generic discrete-event simulation kernel: a simulated clock and a
// time-ordered event queue with FIFO tie-breaking. Deliberately minimal —
// processes are plain callbacks that reschedule themselves — which keeps
// runs bit-for-bit reproducible under a fixed RNG seed (no wall-clock, no
// thread scheduling).
#ifndef SAFEOPT_SIM_SIMULATOR_H
#define SAFEOPT_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace safeopt::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Schedules `callback` at absolute simulated time `time`.
  /// Precondition: time >= now() (no scheduling into the past).
  void schedule_at(double time, Callback callback);

  /// Schedules `callback` `delay` time units from now. Precondition:
  /// delay >= 0.
  void schedule_in(double delay, Callback callback);

  /// Current simulated time (0 before the first event).
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Processes events in time order until the queue is empty.
  void run();

  /// Processes events with time <= end_time; the clock ends at
  /// max(now, end_time). Events beyond the horizon stay queued.
  void run_until(double end_time);

  [[nodiscard]] std::uint64_t processed_events() const noexcept {
    return processed_;
  }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }

 private:
  struct Event {
    double time = 0.0;
    std::uint64_t sequence = 0;  // FIFO among same-time events
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  void step();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t sequence_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace safeopt::sim

#endif  // SAFEOPT_SIM_SIMULATOR_H
