#include "safeopt/core/robust_optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace safeopt::core {
namespace {

using expr::parameter;

/// Scenario family: cost_k(x) = a_k·e^{−x} + 0.01·x with uncertain a_k.
/// Each scenario's own optimum is x_k* = ln(100·a_k).
expr::Expr scenario_cost(double a) {
  return a * expr::exp(-parameter("x")) + 0.01 * parameter("x");
}

ParameterSpace x_space() {
  return ParameterSpace{{"x", 0.1, 20.0, "", ""}};
}

TEST(ScenarioSetTest, ExpectedCostAveragesScenarios) {
  const ScenarioSet set(
      std::vector<expr::Expr>{scenario_cost(10.0), scenario_cost(30.0)});
  const expr::ParameterAssignment at{{"x", 2.0}};
  const double expected =
      0.5 * (10.0 + 30.0) * std::exp(-2.0) + 0.01 * 2.0;
  EXPECT_NEAR(set.expected_cost().evaluate(at), expected, 1e-12);
}

TEST(ScenarioSetTest, WorstCasePicksTheMaximum) {
  const ScenarioSet set(
      std::vector<expr::Expr>{scenario_cost(10.0), scenario_cost(30.0)});
  const expr::ParameterAssignment at{{"x", 2.0}};
  EXPECT_NEAR(set.worst_case_cost().evaluate(at),
              30.0 * std::exp(-2.0) + 0.02, 1e-12);
}

TEST(ScenarioSetTest, GeneratorIsDeterministicPerSeed) {
  const auto generator = [](Rng& rng) {
    return scenario_cost(uniform(rng, 10.0, 50.0));
  };
  const ScenarioSet a(5, generator, 7);
  const ScenarioSet b(5, generator, 7);
  const expr::ParameterAssignment at{{"x", 1.0}};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(a[i].evaluate(at), b[i].evaluate(at));
  }
}

TEST(RobustOptimizerTest, ExpectedValueMatchesAnalyticOptimum) {
  // E[cost](x) = ā·e^{−x} + 0.01·x with ā = 20 -> x* = ln(2000).
  const ScenarioSet set(
      std::vector<expr::Expr>{scenario_cost(10.0), scenario_cost(30.0)});
  const RobustSafetyOptimizer optimizer(set, x_space());
  const auto result = optimizer.optimize(RobustCriterion::kExpectedValue);
  EXPECT_NEAR(result.optimization.argmin[0], std::log(2000.0), 0.05);
  ASSERT_EQ(result.scenario_costs.size(), 2u);
  EXPECT_LT(result.scenario_costs[0], result.scenario_costs[1]);
  EXPECT_NEAR(result.expected_cost,
              0.5 * (result.scenario_costs[0] + result.scenario_costs[1]),
              1e-12);
}

TEST(RobustOptimizerTest, WorstCaseHedgesAgainstTheBadScenario) {
  // Minimax follows the worst (a = 30) scenario: x* = ln(3000).
  const ScenarioSet set(
      std::vector<expr::Expr>{scenario_cost(10.0), scenario_cost(30.0)});
  const RobustSafetyOptimizer optimizer(set, x_space());
  const auto expected =
      optimizer.optimize(RobustCriterion::kExpectedValue);
  const auto worst = optimizer.optimize(RobustCriterion::kWorstCase);
  EXPECT_NEAR(worst.optimization.argmin[0], std::log(3000.0), 0.05);
  // The hedge costs something in expectation but buys worst-case safety.
  EXPECT_LE(worst.worst_case_cost, expected.worst_case_cost + 1e-9);
  EXPECT_GE(worst.expected_cost, expected.expected_cost - 1e-9);
}

TEST(RobustOptimizerTest, MaxRegretIsNonnegativeAndZeroForSoleScenario) {
  const ScenarioSet solo(std::vector<expr::Expr>{scenario_cost(20.0)});
  const RobustSafetyOptimizer optimizer(solo, x_space());
  // At the scenario's own optimum the regret vanishes.
  const expr::ParameterAssignment at{{"x", std::log(2000.0)}};
  EXPECT_NEAR(optimizer.max_regret(at), 0.0, 1e-4);
  // Away from it, regret is positive.
  const expr::ParameterAssignment off{{"x", 1.0}};
  EXPECT_GT(optimizer.max_regret(off), 0.1);
}

TEST(RobustOptimizerTest, RegretOfRobustSolutionBeatsNaiveSolution) {
  const auto generator = [](Rng& rng) {
    return scenario_cost(uniform(rng, 5.0, 60.0));
  };
  const ScenarioSet set(8, generator, 11);
  const RobustSafetyOptimizer optimizer(set, x_space());
  const auto robust = optimizer.optimize(RobustCriterion::kExpectedValue);
  // A naive configuration optimized for the most optimistic scenario.
  const expr::ParameterAssignment naive{{"x", std::log(100.0 * 5.0)}};
  EXPECT_LT(optimizer.max_regret(robust.optimal_parameters),
            optimizer.max_regret(naive));
}

}  // namespace
}  // namespace safeopt::core
