// Build identity, configured once by CMake (src/support/build_info.h.in ->
// a generated header private to the support library). Everything that
// reports a version — `safeopt --version`, the service's `GET /v1/stats`,
// bench JSON headers — reads these accessors, so the string cannot drift
// between surfaces.
#ifndef SAFEOPT_SUPPORT_BUILD_INFO_H
#define SAFEOPT_SUPPORT_BUILD_INFO_H

#include <string>
#include <string_view>

namespace safeopt {

/// The build-time identity of this binary.
struct BuildInfo {
  std::string_view version;     // "0.8.0"
  std::string_view compiler;    // "GNU 12.2.0"
  std::string_view build_type;  // "Release" (or "multi-config")
  std::string_view flags;       // the effective CMAKE_CXX_FLAGS
};

[[nodiscard]] const BuildInfo& build_info() noexcept;

/// One human-readable line:
///   "safeopt 0.8.0 (GNU 12.2.0, Release, flags: -O3 -DNDEBUG)"
/// The `safeopt --version` output and the stats endpoint's "build" field.
[[nodiscard]] std::string build_info_string();

}  // namespace safeopt

#endif  // SAFEOPT_SUPPORT_BUILD_INFO_H
