// CompiledQuantification vs the symbolic ParameterizedQuantification walk
// on the paper's Fig. 2 collision-tree shape: hazard and Birnbaum tapes
// must reproduce the hazard_expression / birnbaum_expression tree walks bit
// for bit under both HazardFormula variants, and input_at must match
// evaluate().
#include "safeopt/core/compiled_quantification.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "safeopt/core/parameterized_fta.h"
#include "safeopt/fta/cut_sets.h"
#include "safeopt/fta/fault_tree.h"
#include "safeopt/stats/distribution.h"
#include "safeopt/support/thread_pool.h"

namespace safeopt::core {
namespace {

using expr::constant;
using expr::parameter;
using expr::ParameterAssignment;

/// The paper's §IV-B.2 collision shape: OR(residual, INHIBIT(OT1|crit),
/// INHIBIT(OT2|crit)) with parameterized overtime probabilities.
struct Fig2Fixture {
  Fig2Fixture() : tree(make_tree()), quantification(tree) {
    const auto transit = std::make_shared<stats::TruncatedNormal>(
        stats::TruncatedNormal::nonnegative(4.0, 2.0));
    quantification.set_event_probability("residual", constant(4.19e-8));
    quantification.set_event_probability(
        "OT1", expr::survival(transit, parameter("T1")));
    quantification.set_event_probability(
        "OT2", expr::survival(transit, parameter("T2")) *
                   (1.0 - expr::survival(transit, parameter("T1"))));
    quantification.set_condition_probability("OHVcritical", constant(0.011));
  }

  static fta::FaultTree make_tree() {
    fta::FaultTree tree("HCol");
    const auto residual = tree.add_basic_event("residual");
    const auto ot1 = tree.add_basic_event("OT1");
    const auto ot2 = tree.add_basic_event("OT2");
    const auto crit = tree.add_condition("OHVcritical");
    const auto g1 = tree.add_inhibit("g1", ot1, crit);
    const auto g2 = tree.add_inhibit("g2", ot2, crit);
    tree.set_top(tree.add_or("top", {residual, g1, g2}));
    return tree;
  }

  fta::FaultTree tree;
  ParameterizedQuantification quantification;
};

const std::vector<std::pair<double, double>> kProbePoints = {
    {15.0, 15.0}, {17.3, 16.1}, {19.0, 15.6}, {20.0, 18.0}, {30.0, 30.0}};

TEST(CompiledQuantificationTest, HazardTapeMatchesSymbolicWalkBothFormulas) {
  const Fig2Fixture f;
  const fta::CutSetCollection mcs = fta::minimal_cut_sets(f.tree);
  for (const HazardFormula formula :
       {HazardFormula::kRareEvent, HazardFormula::kMinCutUpperBound}) {
    const CompiledQuantification compiled(f.quantification, mcs,
                                          {"T1", "T2"}, formula);
    const expr::Expr symbolic =
        f.quantification.hazard_expression(mcs, formula);
    for (const auto& [t1, t2] : kProbePoints) {
      const double tree_walk =
          symbolic.evaluate(ParameterAssignment{{"T1", t1}, {"T2", t2}});
      EXPECT_EQ(tree_walk, compiled.hazard(std::vector<double>{t1, t2}))
          << "T1=" << t1 << " T2=" << t2;
    }
  }
}

TEST(CompiledQuantificationTest, BirnbaumTapesMatchSymbolicWalkBothFormulas) {
  const Fig2Fixture f;
  const fta::CutSetCollection mcs = fta::minimal_cut_sets(f.tree);
  for (const HazardFormula formula :
       {HazardFormula::kRareEvent, HazardFormula::kMinCutUpperBound}) {
    const CompiledQuantification compiled(f.quantification, mcs,
                                          {"T1", "T2"}, formula);
    for (std::size_t e = 0; e < f.tree.basic_event_count(); ++e) {
      const auto ordinal = static_cast<fta::BasicEventOrdinal>(e);
      const expr::Expr symbolic =
          f.quantification.birnbaum_expression(mcs, ordinal, formula);
      for (const auto& [t1, t2] : kProbePoints) {
        const double tree_walk =
            symbolic.evaluate(ParameterAssignment{{"T1", t1}, {"T2", t2}});
        EXPECT_EQ(tree_walk,
                  compiled.birnbaum(ordinal, std::vector<double>{t1, t2}))
            << "event " << e << " T1=" << t1 << " T2=" << t2;
      }
    }
  }
}

TEST(CompiledQuantificationTest, InputAtMatchesSymbolicEvaluate) {
  const Fig2Fixture f;
  const CompiledQuantification compiled(f.quantification);
  ASSERT_EQ(compiled.parameter_order(),
            (std::vector<std::string>{"T1", "T2"}));
  for (const auto& [t1, t2] : kProbePoints) {
    const ParameterAssignment env{{"T1", t1}, {"T2", t2}};
    const fta::QuantificationInput symbolic = f.quantification.evaluate(env);
    const fta::QuantificationInput tape = compiled.input_at(env);
    EXPECT_EQ(symbolic.basic_event_probability,
              tape.basic_event_probability);
    EXPECT_EQ(symbolic.condition_probability, tape.condition_probability);
    EXPECT_TRUE(tape.is_valid_for(f.tree));
  }
}

TEST(CompiledQuantificationTest, HazardBatchIsLaneAndThreadInvariant) {
  const Fig2Fixture f;
  const CompiledQuantification compiled(f.quantification);
  const std::size_t nx = 23;
  const std::size_t ny = 9;
  std::vector<double> points(nx * ny * 2);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      points[2 * (j * nx + i)] = 15.0 + 0.2 * static_cast<double>(i);
      points[2 * (j * nx + i) + 1] = 15.0 + 0.3 * static_cast<double>(j);
    }
  }
  std::vector<double> batch(nx * ny);
  compiled.hazard_batch(points, batch);
  for (std::size_t r = 0; r < batch.size(); ++r) {
    EXPECT_EQ(batch[r], compiled.hazard(std::span<const double>(
                            &points[2 * r], 2)));
  }
  ThreadPool pool(3);
  std::vector<double> parallel(nx * ny);
  compiled.hazard_batch(points, parallel, pool);
  EXPECT_EQ(batch, parallel);
}

TEST(CompiledQuantificationTest, HazardGradientsMatchSymbolicDual) {
  const Fig2Fixture f;
  const CompiledQuantification compiled(f.quantification);
  const expr::Expr symbolic = f.quantification.hazard_expression();
  const std::vector<std::string> order = {"T1", "T2"};
  std::vector<double> points;
  for (const auto& [t1, t2] : kProbePoints) {
    points.push_back(t1);
    points.push_back(t2);
  }
  const std::size_t rows = kProbePoints.size();
  std::vector<double> values(rows);
  std::vector<double> gradients(rows * 2);
  compiled.hazard_batch_with_gradients(points, values, gradients);
  for (std::size_t r = 0; r < rows; ++r) {
    const ParameterAssignment env{{"T1", points[2 * r]},
                                  {"T2", points[2 * r + 1]}};
    const expr::Dual dual = symbolic.evaluate_dual(env, order);
    EXPECT_EQ(values[r], symbolic.evaluate(env));
    for (std::size_t i = 0; i < 2; ++i) {
      const double scale = std::max(1.0, std::abs(dual.grad(i)));
      EXPECT_NEAR(gradients[r * 2 + i], dual.grad(i), 1e-9 * scale);
    }
  }
}

}  // namespace
}  // namespace safeopt::core
