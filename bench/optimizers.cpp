// Ablation C: solver shoot-out on the paper's actual optimization problem —
// the Elbtunnel cost function over the timer box — plus the Rosenbrock
// valley as a hard reference. Reports both solution quality (cost gap to
// the best known optimum, argmin error) and runtime per solve.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "safeopt/elbtunnel/elbtunnel_model.h"
#include "safeopt/opt/coordinate_descent.h"
#include "safeopt/opt/differential_evolution.h"
#include "safeopt/opt/gradient_descent.h"
#include "safeopt/opt/grid_search.h"
#include "safeopt/opt/hooke_jeeves.h"
#include "safeopt/opt/multi_start.h"
#include "safeopt/opt/nelder_mead.h"
#include "safeopt/opt/simulated_annealing.h"

namespace {

using namespace safeopt;

std::unique_ptr<opt::Optimizer> make(const std::string& name) {
  if (name == "GridSearch") return std::make_unique<opt::GridSearch>(33, 5);
  if (name == "NelderMead") return std::make_unique<opt::NelderMead>();
  if (name == "MultiStartNM") {
    return std::make_unique<opt::MultiStart>(
        [](std::vector<double> start) -> std::unique_ptr<opt::Optimizer> {
          return std::make_unique<opt::NelderMead>(opt::StoppingCriteria{},
                                                   std::move(start));
        },
        8);
  }
  if (name == "GradientDescent") {
    return std::make_unique<opt::ProjectedGradientDescent>();
  }
  if (name == "HookeJeeves") return std::make_unique<opt::HookeJeeves>();
  if (name == "CoordinateDescent") {
    return std::make_unique<opt::CoordinateDescent>();
  }
  if (name == "SimulatedAnnealing") {
    return std::make_unique<opt::SimulatedAnnealing>();
  }
  if (name == "DifferentialEvolution") {
    return std::make_unique<opt::DifferentialEvolution>();
  }
  return nullptr;
}

const char* kSolvers[] = {"GridSearch",         "NelderMead",
                          "MultiStartNM",       "GradientDescent",
                          "HookeJeeves",        "CoordinateDescent",
                          "SimulatedAnnealing", "DifferentialEvolution"};

void quality_table() {
  const elbtunnel::ElbtunnelModel model;
  const opt::Problem problem = model.optimizer().problem();

  // Best-known optimum from a fine multi-start run.
  const auto reference = make("MultiStartNM")->minimize(problem);

  std::printf(
      "\n=== solution quality on the Elbtunnel cost function ===\n"
      "%-22s %9s %9s %13s %12s %12s\n",
      "solver", "T1*", "T2*", "cost", "cost gap", "evaluations");
  for (const char* name : kSolvers) {
    const auto result = make(name)->minimize(problem);
    std::printf("%-22s %9.3f %9.3f %13.8f %12.2e %12zu\n", name,
                result.argmin[0], result.argmin[1], result.value,
                result.value - reference.value, result.evaluations);
  }
  std::printf("(paper optimum: T1 ~ 19, T2 ~ 15.6)\n\n");
}

void BM_ElbtunnelSolve(benchmark::State& state, const std::string& solver) {
  const elbtunnel::ElbtunnelModel model;
  const opt::Problem problem = model.optimizer().problem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(make(solver)->minimize(problem));
  }
}

void BM_RosenbrockSolve(benchmark::State& state, const std::string& solver) {
  opt::Problem problem;
  problem.bounds = opt::Box({-2.0, -1.0}, {2.0, 3.0});
  problem.objective = [](std::span<const double> x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(make(solver)->minimize(problem));
  }
}

}  // namespace

int main(int argc, char** argv) {
  quality_table();
  for (const char* solver : kSolvers) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Elbtunnel/") + solver).c_str(),
        [solver](benchmark::State& state) {
          BM_ElbtunnelSolve(state, solver);
        });
    benchmark::RegisterBenchmark(
        (std::string("BM_Rosenbrock/") + solver).c_str(),
        [solver](benchmark::State& state) {
          BM_RosenbrockSolve(state, solver);
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
