// Reduced ordered binary decision diagrams (ROBDDs) for exact fault-tree
// analysis. Complements the cut-set engine of src/fta:
//
//   * exact top-event probability by Shannon decomposition — no rare-event
//     approximation, no inclusion-exclusion blow-up (linear in BDD nodes);
//   * minimal cut sets by Rauzy's decomposition, independent of MOCUS (each
//     validates the other in the test suite);
//   * scales to trees whose MOCUS expansion would be infeasible (the
//     `mcs_algorithms` ablation bench measures the crossover).
//
// The manager owns a unique table (hash-consing guarantees canonicity: two
// equivalent functions share one node) and a direct-mapped ITE result cache
// whose geometry is tunable through BddOptions. Functions are referenced by
// index; no reference counting or garbage collection is performed — managers
// are intended to live for one analysis, so *live* node counts equal *peak*
// node counts (BddStatistics documents and asserts that invariant).
#ifndef SAFEOPT_BDD_BDD_H
#define SAFEOPT_BDD_BDD_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "safeopt/fta/cut_sets.h"
#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/probability.h"

namespace safeopt {
class ExecutionControl;  // support/execution.h
}

namespace safeopt::bdd {

/// Index of a BDD node within its manager. 0 and 1 are the terminals.
using BddRef = std::uint32_t;

inline constexpr BddRef kFalse = 0;
inline constexpr BddRef kTrue = 1;

/// How compile() numbers the tree's leaves as BDD variables. The order is
/// the single biggest lever on BDD size; both heuristics are structural
/// (no dynamic reordering), so compilation stays deterministic.
enum class VariableOrdering : std::uint8_t {
  /// DFS first-visit order from the top event — keeps structurally related
  /// leaves adjacent (the classical default; bounds growth on
  /// series-parallel trees).
  kDfs,
  /// Weight-guided DFS: at every gate the children are *visited* in
  /// ascending subtree-leaf-count order (smallest cone first), so tightly
  /// coupled small clusters get contiguous low variable indices before wide
  /// subtrees spread out. Gate compilation order is unchanged — only the
  /// variable numbering moves.
  kWeight,
};

/// Tuning knobs for one BddManager / one compile() call.
struct BddOptions {
  /// Leaf -> variable numbering used by compile(). Ignored by a raw
  /// BddManager (its callers assign variables themselves).
  VariableOrdering ordering = VariableOrdering::kDfs;
  /// Buckets reserved in the unique (hash-consing) table up front; sized
  /// to the expected node count it avoids rehash stalls on big trees.
  std::size_t initial_table_size = 1u << 12;
  /// Entries in the direct-mapped ITE result cache; rounded up to a power
  /// of two. Bigger caches trade memory for fewer recomputations — results
  /// are bitwise identical at any size (ITE is deterministic; the cache
  /// only memoizes).
  std::size_t cache_size = 1u << 16;
  /// Maximum unique *decision* nodes the manager may create; exceeding it
  /// throws Error(kResourceExhausted) from the allocating operation, with
  /// the partial counters in the message and the manager still consistent
  /// (statistics() remains valid). 0 = unlimited.
  std::size_t node_budget = 0;
  /// Cooperative deadline/cancellation, polled every ~1k ITE calls and at
  /// every gate during compile(); an abort throws Error(kDeadlineExceeded /
  /// kCancelled). Not owned; must outlive the manager. nullptr = unbounded.
  const ExecutionControl* control = nullptr;
};

/// BDD node and operation counters for the ablation benches.
///
/// Invariants (asserted by the manager): `node_count` counts *unique nodes
/// ever created including the 2 terminals*, so `node_count >= 2` always and
/// `decision_node_count() == node_count - 2`. Because the manager performs
/// no garbage collection, live nodes equal peak nodes: `peak_node_count ==
/// node_count`. Bench gates that aggregate across managers (per-module
/// compilation) must sum `decision_node_count()` so terminals are not
/// counted once per manager — that is the "live vs peak, like with like"
/// contract of BENCH_large_trees.json.
struct BddStatistics {
  std::size_t node_count = 0;       // live unique nodes incl. 2 terminals
  std::size_t peak_node_count = 0;  // high-water mark; == node_count (no GC)
  std::size_t ite_calls = 0;        // total ITE invocations
  std::size_t cache_hits = 0;       // ITE results served from cache
  std::size_t cache_evictions = 0;  // direct-mapped slots overwritten
  std::size_t cache_slots = 0;      // configured ITE cache geometry

  /// Unique decision (non-terminal) nodes — the machine-independent size
  /// measure the large-tree bench gates on.
  [[nodiscard]] std::size_t decision_node_count() const noexcept {
    return node_count >= 2 ? node_count - 2 : 0;
  }
};

class BddManager {
 public:
  /// Creates a manager for `variable_count` variables; variable i is tested
  /// before variable j iff i < j (the order is fixed at construction).
  /// Delegates to the BddOptions overload with default geometry.
  explicit BddManager(std::uint32_t variable_count);

  /// Creates a manager with explicit table/cache geometry. `options.ordering`
  /// is compile()'s concern and ignored here.
  BddManager(std::uint32_t variable_count, const BddOptions& options);

  [[nodiscard]] std::uint32_t variable_count() const noexcept {
    return variable_count_;
  }

  /// The projection function x_var.
  [[nodiscard]] BddRef variable(std::uint32_t var);

  // Boolean operations (memoized, canonical).
  [[nodiscard]] BddRef ite(BddRef f, BddRef g, BddRef h);
  [[nodiscard]] BddRef apply_and(BddRef f, BddRef g);
  [[nodiscard]] BddRef apply_or(BddRef f, BddRef g);
  [[nodiscard]] BddRef apply_xor(BddRef f, BddRef g);
  [[nodiscard]] BddRef apply_not(BddRef f);
  /// At least `k` of `items` true.
  [[nodiscard]] BddRef at_least(std::vector<BddRef> items, std::uint32_t k);

  /// Evaluates f under a full variable assignment.
  [[nodiscard]] bool evaluate(BddRef f,
                              const std::vector<bool>& assignment) const;

  /// Exact P(f = 1) given independent per-variable probabilities
  /// (probabilities.size() == variable_count()). Linear in node count.
  [[nodiscard]] double probability(BddRef f,
                                   const std::vector<double>& probabilities);

  /// Number of unique nodes reachable from f (including terminals).
  [[nodiscard]] std::size_t size(BddRef f) const;

  /// Counter snapshot. Asserts the documented no-GC invariant
  /// (peak_node_count == node_count, both including the 2 terminals).
  [[nodiscard]] const BddStatistics& statistics() const noexcept;

  /// Structural access for algorithms layered on top (Rauzy MCS).
  [[nodiscard]] std::uint32_t node_var(BddRef f) const;
  [[nodiscard]] BddRef node_low(BddRef f) const;
  [[nodiscard]] BddRef node_high(BddRef f) const;
  [[nodiscard]] bool is_terminal(BddRef f) const noexcept {
    return f <= kTrue;
  }

 private:
  struct Node {
    std::uint32_t var;
    BddRef low;
    BddRef high;
  };
  struct NodeKey {
    std::uint32_t var;
    BddRef low;
    BddRef high;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const noexcept;
  };
  /// One direct-mapped ITE cache slot; kEmpty marks a never-written slot
  /// (no valid BddRef is UINT32_MAX — the node vector cannot grow there).
  struct IteSlot {
    static constexpr BddRef kEmpty = UINT32_MAX;
    BddRef f = kEmpty;
    BddRef g = 0;
    BddRef h = 0;
    BddRef result = 0;
  };

  /// Hash-consing constructor: returns the canonical node for (var,low,high).
  [[nodiscard]] BddRef make_node(std::uint32_t var, BddRef low, BddRef high);
  [[nodiscard]] std::uint32_t top_var(BddRef f, BddRef g, BddRef h) const;
  /// Cofactor of f with respect to var = value.
  [[nodiscard]] BddRef cofactor(BddRef f, std::uint32_t var, bool value) const;

  std::uint32_t variable_count_;
  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, BddRef, NodeKeyHash> unique_table_;
  std::vector<IteSlot> ite_cache_;
  std::size_t ite_mask_ = 0;
  std::size_t node_budget_ = 0;               // decision nodes; 0 = unlimited
  const ExecutionControl* control_ = nullptr;  // not owned
  mutable BddStatistics stats_;
};

/// A fault tree compiled to a BDD: the manager, the root function, and the
/// mapping from tree leaves to BDD variables (assigned by the compile-time
/// VariableOrdering heuristic).
struct CompiledFaultTree {
  BddManager manager;
  BddRef root = kFalse;
  std::uint32_t basic_event_count = 0;
  std::uint32_t condition_count = 0;
  /// BDD variable index of each basic event, by BasicEventOrdinal.
  std::vector<std::uint32_t> var_of_basic_event;
  /// BDD variable index of each condition, by ConditionOrdinal.
  std::vector<std::uint32_t> var_of_condition;

  /// Exact top-event probability under a QuantificationInput — the
  /// no-approximation counterpart of fta::top_event_probability.
  [[nodiscard]] double probability(const fta::QuantificationInput& input);
};

/// Compiles the tree bottom-up under `options` (variable ordering heuristic,
/// table/cache geometry). XOR gates compile exactly (true XOR, not the
/// coherent hull). Precondition: tree.has_top().
[[nodiscard]] CompiledFaultTree compile(const fta::FaultTree& tree,
                                        const BddOptions& options = {});

/// Minimal cut sets via Rauzy's BDD decomposition. Requires a *coherent*
/// tree (no XOR gates): for non-coherent functions prime implicants with
/// negated literals exist, which CutSet cannot represent.
/// Agrees with fta::minimal_cut_sets on every coherent tree.
[[nodiscard]] fta::CutSetCollection minimal_cut_sets_bdd(
    const fta::FaultTree& tree);

}  // namespace safeopt::bdd

#endif  // SAFEOPT_BDD_BDD_H
