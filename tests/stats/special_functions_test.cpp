#include "safeopt/stats/special_functions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace safeopt::stats {
namespace {

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145705, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(normal_cdf(-3.0), 0.0013498980316300933, 1e-14);
}

TEST(NormalCdfTest, DeepTailStaysPositive) {
  // Rare-event analysis needs tail probabilities far beyond double's naive
  // reach of 1 − Φ; erfc keeps them meaningful.
  EXPECT_GT(normal_cdf(-8.0), 0.0);
  EXPECT_NEAR(normal_cdf(-8.0), 6.22096057427178e-16, 1e-20);
  EXPECT_LT(normal_cdf(-8.0), 1e-15);
}

TEST(NormalPdfTest, KnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-15);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-18);
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-9);
}

class NormalQuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(NormalQuantileRoundTrip, InvertsCdf) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(ProbabilityGrid, NormalQuantileRoundTrip,
                         ::testing::Values(1e-10, 1e-6, 0.01, 0.1, 0.25, 0.5,
                                           0.75, 0.9, 0.99, 1.0 - 1e-6,
                                           1.0 - 1e-10));

TEST(LogGammaTest, MatchesFactorials) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-14);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-14);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-12);
}

TEST(RegularizedGammaTest, ComplementarityHolds) {
  for (const double a : {0.5, 1.0, 2.5, 10.0}) {
    for (const double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 − e^{−x}.
  for (const double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(RegularizedGammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_gamma_q(2.0, 0.0), 1.0);
  EXPECT_NEAR(regularized_gamma_p(3.0, 1e3), 1.0, 1e-12);
}

TEST(RegularizedBetaTest, SymmetryAndKnownValues) {
  // I_x(a, b) = 1 − I_{1−x}(b, a).
  for (const double x : {0.1, 0.3, 0.5, 0.8}) {
    EXPECT_NEAR(regularized_beta(2.0, 3.0, x),
                1.0 - regularized_beta(3.0, 2.0, 1.0 - x), 1e-12);
  }
  // I_x(1, 1) = x (uniform cdf).
  EXPECT_NEAR(regularized_beta(1.0, 1.0, 0.42), 0.42, 1e-12);
  // I_x(1, b) = 1 − (1 − x)^b.
  EXPECT_NEAR(regularized_beta(1.0, 4.0, 0.25),
              1.0 - std::pow(0.75, 4.0), 1e-12);
}

TEST(RegularizedBetaTest, Boundaries) {
  EXPECT_DOUBLE_EQ(regularized_beta(2.0, 2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_beta(2.0, 2.0, 1.0), 1.0);
}

}  // namespace
}  // namespace safeopt::stats
