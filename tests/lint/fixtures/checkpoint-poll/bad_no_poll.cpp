// safeopt-lint: checkpointed
// Fixture: declared checkpointed but the loop never polls its control.
#include <cstddef>

double sum(const double* values, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += values[i];  // long-running loop with no ExecutionControl poll
  }
  return total;
}
