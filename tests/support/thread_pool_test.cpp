#include "safeopt/support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace safeopt {
namespace {

TEST(ThreadPoolTest, SpawnsRequestedWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, SubmitAndWaitIdleRunsEverything) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<int> hits(3, 0);
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 3);
}

TEST(ThreadPoolTest, GrainLowerBoundsChunkSize) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.parallel_for(
      100,
      [&](std::size_t begin, std::size_t end) {
        ++chunks;
        EXPECT_GE(end - begin, 1u);
      },
      64);
  // 100 indices with grain 64 allow at most two chunks.
  EXPECT_LE(chunks.load(), 2);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // Same pool from inside a worker: must not enqueue-and-wait.
      pool.parallel_for(10, [&](std::size_t b, std::size_t e) {
        inner_total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 40);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t begin, std::size_t) {
                          if (begin > 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SubmitExceptionRethrownOnWaitIdle) {
  // Regression: an exception escaping a bare submit() task used to unwind
  // the worker loop, killing the worker for the pool's remaining lifetime.
  // The contract now matches parallel_for: the first exception is captured
  // and rethrown on the submitting thread at the next wait_idle().
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("poisoned task"); });
  for (int i = 0; i < 50; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  try {
    pool.wait_idle();
    FAIL() << "wait_idle must rethrow the poisoned task's exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "poisoned task");
  }
  EXPECT_EQ(ran.load(), 50);  // other tasks still ran to completion

  // The pool (and all of its workers) must remain fully usable: the error
  // slot was drained by the rethrow, so a clean follow-up batch succeeds.
  std::atomic<int> again{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&again] { again.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(again.load(), 50);
}

TEST(ThreadPoolTest, OnlyFirstSubmitExceptionIsKept) {
  ThreadPool pool(1);  // single worker: deterministic execution order
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle must rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "first");
  }
  pool.wait_idle();  // the second exception was dropped by contract
}

TEST(ThreadPoolTest, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

TEST(ThreadPoolTest, InsideWorkerReflectsContext) {
  EXPECT_FALSE(ThreadPool::inside_worker());
  ThreadPool pool(1);
  std::atomic<bool> seen{false};
  pool.parallel_for(4, [&](std::size_t, std::size_t) {
    // With a single worker the chunk may run inline in the caller; either
    // way the flag must be consistent with the executing thread.
    seen.store(true);
  });
  EXPECT_TRUE(seen.load());
}

}  // namespace
}  // namespace safeopt
