// Ablation C: solver shoot-out on the paper's actual optimization problem —
// the Elbtunnel cost function over the timer box — plus the Rosenbrock
// valley as a hard reference. Reports both solution quality (cost gap to
// the best known optimum, argmin error) and runtime per solve.
//
// Second mode, the registry-overhead gate consumed by CI:
//   bench_optimizers --overhead-json OUT.json
// times every registered solver through SolverRegistry::create(...)->solve()
// against the equivalent direct construction + minimize() on the same
// problem, verifies the two paths produce bit-identical results, and writes
// a JSON report scripts/compare_bench.py checks (< 5% overhead).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "safeopt/elbtunnel/elbtunnel_model.h"
#include "safeopt/opt/coordinate_descent.h"
#include "safeopt/opt/differential_evolution.h"
#include "safeopt/opt/golden_section.h"
#include "safeopt/opt/gradient_descent.h"
#include "safeopt/opt/grid_search.h"
#include "safeopt/opt/hooke_jeeves.h"
#include "safeopt/opt/multi_start.h"
#include "safeopt/opt/nelder_mead.h"
#include "safeopt/opt/simulated_annealing.h"
#include "safeopt/opt/solver.h"

namespace {

using namespace safeopt;

std::unique_ptr<opt::Optimizer> make(const std::string& name) {
  if (name == "GridSearch") return std::make_unique<opt::GridSearch>(33, 5);
  if (name == "NelderMead") return std::make_unique<opt::NelderMead>();
  if (name == "MultiStartNM") {
    return std::make_unique<opt::MultiStart>(
        [](std::vector<double> start) -> std::unique_ptr<opt::Optimizer> {
          return std::make_unique<opt::NelderMead>(opt::StoppingCriteria{},
                                                   std::move(start));
        },
        8);
  }
  if (name == "GradientDescent") {
    return std::make_unique<opt::ProjectedGradientDescent>();
  }
  if (name == "HookeJeeves") return std::make_unique<opt::HookeJeeves>();
  if (name == "CoordinateDescent") {
    return std::make_unique<opt::CoordinateDescent>();
  }
  if (name == "SimulatedAnnealing") {
    return std::make_unique<opt::SimulatedAnnealing>();
  }
  if (name == "DifferentialEvolution") {
    return std::make_unique<opt::DifferentialEvolution>();
  }
  return nullptr;
}

const char* kSolvers[] = {"GridSearch",         "NelderMead",
                          "MultiStartNM",       "GradientDescent",
                          "HookeJeeves",        "CoordinateDescent",
                          "SimulatedAnnealing", "DifferentialEvolution"};

void quality_table() {
  const elbtunnel::ElbtunnelModel model;
  const opt::Problem problem = model.optimizer().problem();

  // Best-known optimum from a fine multi-start run.
  const auto reference = make("MultiStartNM")->minimize(problem);

  std::printf(
      "\n=== solution quality on the Elbtunnel cost function ===\n"
      "%-22s %9s %9s %13s %12s %12s\n",
      "solver", "T1*", "T2*", "cost", "cost gap", "evaluations");
  for (const char* name : kSolvers) {
    const auto result = make(name)->minimize(problem);
    std::printf("%-22s %9.3f %9.3f %13.8f %12.2e %12zu\n", name,
                result.argmin[0], result.argmin[1], result.value,
                result.value - reference.value, result.evaluations);
  }
  std::printf("(paper optimum: T1 ~ 19, T2 ~ 15.6)\n\n");
}

void BM_ElbtunnelSolve(benchmark::State& state, const std::string& solver) {
  const elbtunnel::ElbtunnelModel model;
  const opt::Problem problem = model.optimizer().problem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(make(solver)->minimize(problem));
  }
}

void BM_RosenbrockSolve(benchmark::State& state, const std::string& solver) {
  opt::Problem problem;
  problem.bounds = opt::Box({-2.0, -1.0}, {2.0, 3.0});
  problem.objective = [](std::span<const double> x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(make(solver)->minimize(problem));
  }
}

// ---- registry overhead gate -------------------------------------------------

/// Direct (enum-era) construction equivalent to each registry name under a
/// default SolverConfig — the baseline the registry path is timed against.
std::unique_ptr<opt::Optimizer> make_direct(const std::string& name) {
  if (name == "grid_search") return std::make_unique<opt::GridSearch>(21, 4);
  if (name == "golden_section") return std::make_unique<opt::GoldenSection>();
  if (name == "multi_start") {
    return std::make_unique<opt::MultiStart>(
        [](std::vector<double> start) -> std::unique_ptr<opt::Optimizer> {
          return std::make_unique<opt::NelderMead>(opt::StoppingCriteria{},
                                                   std::move(start));
        },
        8);
  }
  if (name == "nelder_mead") return std::make_unique<opt::NelderMead>();
  if (name == "gradient_descent") {
    return std::make_unique<opt::ProjectedGradientDescent>();
  }
  if (name == "hooke_jeeves") return std::make_unique<opt::HookeJeeves>();
  if (name == "coordinate_descent") {
    return std::make_unique<opt::CoordinateDescent>();
  }
  if (name == "simulated_annealing") {
    return std::make_unique<opt::SimulatedAnnealing>();
  }
  if (name == "differential_evolution") {
    return std::make_unique<opt::DifferentialEvolution>();
  }
  return nullptr;
}

/// Wall-clock ns per run() call for one batch of `runs`.
template <typename Run>
double time_batch_ns(const Run& run, std::size_t runs) {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  for (std::size_t i = 0; i < runs; ++i) run();
  const auto stop = clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                 .count()) /
         static_cast<double>(runs);
}

/// Times two equivalent workloads by alternating their batches — a machine
/// transient (frequency step, cache eviction, scheduler blip) then hits
/// both paths instead of skewing one — and reports each path's minimum.
template <typename RunA, typename RunB>
std::pair<double, double> time_interleaved_ns(const RunA& a, const RunB& b,
                                              std::size_t runs,
                                              std::size_t repeats) {
  double best_a = std::numeric_limits<double>::infinity();
  double best_b = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < repeats; ++r) {
    best_a = std::min(best_a, time_batch_ns(a, runs));
    best_b = std::min(best_b, time_batch_ns(b, runs));
  }
  return {best_a, best_b};
}

int overhead_report(const char* path) {
  const elbtunnel::ElbtunnelModel model;
  const opt::Problem problem = model.optimizer().problem();
  // golden_section is 1-D only: give it the T2 axis of the same cost
  // surface with T1 pinned at the paper's optimum.
  opt::Problem line;
  line.bounds = opt::Box({problem.bounds.lower[1]}, {problem.bounds.upper[1]});
  line.objective = [&problem](std::span<const double> x) {
    const double point[2] = {19.0, x[0]};
    return problem.objective(point);
  };

  struct Row {
    std::string name;
    double direct_ns = 0.0;
    double registry_ns = 0.0;
    bool identical = false;
  };
  std::vector<Row> rows;
  for (const std::string& name : opt::SolverRegistry::available()) {
    const opt::Problem& target =
        name == "golden_section" ? line : problem;
    const auto direct = make_direct(name);
    if (direct == nullptr) continue;  // external registration; no baseline
    const auto solver = opt::SolverRegistry::create(name);
    const opt::SolverConfig config;  // defaults == direct construction

    const auto direct_result = direct->minimize(target);
    const auto registry_result = solver->solve(target, config);

    Row row;
    row.name = name;
    row.identical =
        direct_result.argmin == registry_result.argmin &&
        direct_result.value == registry_result.value &&
        direct_result.evaluations == registry_result.evaluations;
    // Calibrate the run count so each timed batch is long enough to swamp
    // timer noise, then interleave the two paths over 7 batches each and
    // keep the per-path minimum. Both paths construct their solver per
    // run — the registry path necessarily does, and that is how the direct
    // path is used at real call sites too.
    const double once = time_batch_ns(
        [&] { benchmark::DoNotOptimize(direct->minimize(target)); }, 1);
    const std::size_t runs = std::max<std::size_t>(
        1, static_cast<std::size_t>(2e7 / std::max(once, 1.0)));
    std::tie(row.direct_ns, row.registry_ns) = time_interleaved_ns(
        [&] { benchmark::DoNotOptimize(make_direct(name)->minimize(target)); },
        [&] {
          benchmark::DoNotOptimize(
              opt::SolverRegistry::create(name)->solve(target, config));
        },
        runs, 7);
    rows.push_back(std::move(row));
  }

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out, "{\n  \"solvers\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"direct_ns_per_solve\": %.1f, "
                 "\"registry_ns_per_solve\": %.1f, \"overhead\": %.4f, "
                 "\"identical\": %s}%s\n",
                 row.name.c_str(), row.direct_ns, row.registry_ns,
                 row.registry_ns / row.direct_ns - 1.0,
                 row.identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
    std::printf("%-24s direct %12.0f ns/solve   registry %12.0f ns/solve "
                "(%+.2f%%)%s\n",
                row.name.c_str(), row.direct_ns, row.registry_ns,
                100.0 * (row.registry_ns / row.direct_ns - 1.0),
                row.identical ? "" : "  RESULTS DIFFER");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--overhead-json") {
    return overhead_report(argv[2]);
  }
  quality_table();
  for (const char* solver : kSolvers) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Elbtunnel/") + solver).c_str(),
        [solver](benchmark::State& state) {
          BM_ElbtunnelSolve(state, solver);
        });
    benchmark::RegisterBenchmark(
        (std::string("BM_Rosenbrock/") + solver).c_str(),
        [solver](benchmark::State& state) {
          BM_RosenbrockSolve(state, solver);
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
