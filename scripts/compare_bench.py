#!/usr/bin/env python3
"""CI gate for bench_compiled_eval: fail on performance or contract regressions.

Usage: compare_bench.py BASELINE.json FRESH.json [--overhead OVERHEAD.json]
                        [--mc MC_BASELINE.json MC_FRESH.json]
                        [--large-trees LT_BASELINE.json LT_FRESH.json]
                        [--serve SV_BASELINE.json SV_FRESH.json]
                        [--summary SUMMARY.md]

Compares the fresh benchmark JSON against the committed baseline
(BENCH_compiled_eval.json). Two kinds of checks:

  * contracts — every bitwise-identity boolean in the fresh run must be
    true (lane/thread invariance, gradient identity, identical optima, and
    every available evaluation backend bitwise-identical to generic), the
    8-lane kernel must keep its >= 2x speedup over the single-lane batch
    path, and — on hardware where the avx2 backend runs — avx2 must beat
    the generic 8-lane kernel by >= 1.3x (per-backend ns/eval entries are
    reported, not gated: availability depends on the runner CPU);
  * throughput — each ns/eval metric, *normalized by the same run's
    tree-walk ns/eval*, must not regress more than REGRESSION_LIMIT versus
    the baseline. Normalizing by the tree walk (a fixed workload measured
    in the same process) calibrates away machine-speed differences between
    the baseline host and the CI runner, so the gate measures the compiled
    engine's speedup, not the runner's clock.

With --overhead, additionally gates the solver-registry report written by
`bench_optimizers --overhead-json`: every solver's registry-dispatched solve
must produce bit-identical results to the direct construction and add less
than OVERHEAD_LIMIT wall-clock overhead. Both paths are timed in the same
process on the same problem, so no normalization is needed.

With --mc, additionally gates the adaptive Monte Carlo report written by
`bench_mc_adaptive --json` against the committed BENCH_mc_adaptive.json:
the determinism flags (thread_invariant, seed_reproducible) and the
exact-within-CI check must hold, the adaptive run must converge, it must
need at least MIN_IS_TRIALS_RATIO times fewer trials than crude fixed-N
sampling would for the same CI at the reference point, and the stopped
trial count must not regress more than REGRESSION_LIMIT vs the baseline
(the run is seeded and thread-count-invariant, so growth means the
estimator got worse, not the machine).

With --large-trees, additionally gates the scaling-corpus ablation written
by `bench_large_trees --json` against the committed BENCH_large_trees.json:
plain and preprocessed probabilities must agree (1e-9 relative), the
preprocessed result must be bitwise invariant under ITE-cache shrinking,
the best tier must keep at least a MIN_NODE_REDUCTION x decision-node
reduction, and — the corpus being seeded and the algorithms deterministic —
every tier's decision-node counts must match the baseline *exactly* on any
machine. Wall-clock columns are reported but never gated.

With --serve, additionally gates the service report written by
`bench_serve --json` against the committed BENCH_serve.json: the
parity flag (HTTP body byte-identical to the offline render, and
therefore to `safeopt quantify --json`) and the single-flight flag
(8 concurrent cold requests -> exactly one compile) must hold, compile
amortization over the repeated-document run must stay >= the
MIN_COMPILE_AMORTIZATION acceptance bar, and the weighted-fairness ratio
must sit inside FAIRNESS_BAND around the configured 3:1 weights. The
cached-quantify latency percentiles are reported but never gated.

With --summary, appends a GitHub-flavored markdown digest of every table to
the given file (use $GITHUB_STEP_SUMMARY in CI).

Exit status: 0 clean, 1 regression or violated contract, 2 usage error.
"""

import json
import sys

REGRESSION_LIMIT = 0.25  # fail when normalized ns/eval grows by more than 25%
OVERHEAD_LIMIT = 0.05  # registry dispatch may cost at most 5% per solve

CONTRACT_FLAGS = [
    "surfaces_identical",
    "lanes_invariant",
    "gradients_identical",
    "grid_search_identical",
    "de_identical",
    "backends_identical",
]

# Gated metrics (ns/eval, lower is better). The threaded batch is reported
# but not gated: CI runner core counts vary run to run.
GATED_METRICS = [
    "tape_ns_per_eval",
    "lane1_ns_per_eval",
    "lane4_ns_per_eval",
    "lane8_ns_per_eval",
    "grad_point_ns_per_eval",
    "grad_lane_ns_per_eval",
]
REPORT_ONLY_METRICS = ["batchn_ns_per_eval"]

# One-shot latencies (not per-eval): reported raw, never normalized or
# gated. load_to_first_eval_ns tracks the declarative pipeline — document
# parse + Study::from_document + first compiled evaluation.
RAW_REPORT_METRICS = ["load_to_first_eval_ns"]

MIN_LANE8_SPEEDUP = 2.0  # acceptance criterion: 8 lanes vs single-lane batch

# Acceptance criterion for the SIMD backend registry: on hardware where the
# avx2 backend is available (ns/eval > 0 in the fresh JSON — the bench
# writes 0 for unavailable backends), its 8-lane kernel must beat the
# generic 8-lane kernel by at least this factor on the Fig. 5 surface.
# Skipped, not failed, on runners without AVX2.
MIN_AVX2_SPEEDUP = 1.3

# Acceptance criterion for the adaptive MC engine: importance sampling must
# beat crude fixed-N sampling by at least this factor (trials for equal CI
# half-width at the rare-event reference point).
MIN_IS_TRIALS_RATIO = 10.0

MC_CONTRACT_FLAGS = [
    "thread_invariant",
    "seed_reproducible",
    "exact_within_ci",
    "adaptive_converged",
]

# Acceptance criterion for the preprocessing pipeline: the best scaling-
# corpus tier must shrink the BDD by at least this factor vs the monolithic
# compile (decision nodes, machine-independent).
MIN_NODE_REDUCTION = 10.0

SERVE_CONTRACT_FLAGS = [
    "parity_with_cli",
    "single_flight_dedup",
]

# Acceptance criterion for the serve subsystem: repeated requests over the
# same document must be served from cached compile artifacts at least this
# often (the ">= 99% amortization" bar from the service design).
MIN_COMPILE_AMORTIZATION = 0.99

# The bench runs a 3:1 tenant pair; SFQ dispatch granularity makes the
# measured ratio land within half a slot of the weights.
FAIRNESS_BAND = (2.5, 3.5)

# Markdown lines collected for --summary ($GITHUB_STEP_SUMMARY).
summary_lines = []


def check_overhead(path, failures):
    with open(path) as f:
        report = json.load(f)
    print(f"\n{'solver':<26}{'direct ns':>14}{'registry ns':>14}{'overhead':>10}  gate")
    summary_lines.append("\n#### Solver-registry dispatch overhead\n")
    summary_lines.append("| solver | direct ns | registry ns | overhead | gate |")
    summary_lines.append("|---|---:|---:|---:|---|")
    for row in report["solvers"]:
        overhead = row["registry_ns_per_solve"] / row["direct_ns_per_solve"] - 1.0
        verdict = "ok"
        if not row["identical"]:
            verdict = "FAIL"
            failures.append(
                f"{row['name']}: registry path result differs from direct call"
            )
        if overhead > OVERHEAD_LIMIT:
            verdict = "FAIL"
            failures.append(
                f"{row['name']}: registry dispatch adds {overhead:+.1%} "
                f"(limit {OVERHEAD_LIMIT:+.0%})"
            )
        print(
            f"{row['name']:<26}{row['direct_ns_per_solve']:>14.0f}"
            f"{row['registry_ns_per_solve']:>14.0f}{overhead:>+9.1%}  {verdict}"
        )
        summary_lines.append(
            f"| {row['name']} | {row['direct_ns_per_solve']:.0f} "
            f"| {row['registry_ns_per_solve']:.0f} | {overhead:+.1%} "
            f"| {verdict} |"
        )


def check_mc(baseline_path, fresh_path, failures):
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)

    for flag in MC_CONTRACT_FLAGS:
        if fresh.get(flag) is not True:
            failures.append(f"mc_adaptive contract violated: {flag} = {fresh.get(flag)}")

    ratio = fresh.get("trials_ratio_vs_crude", 0.0)
    if ratio < MIN_IS_TRIALS_RATIO:
        failures.append(
            f"mc_adaptive importance sampling beats crude fixed-N by only "
            f"{ratio:.1f}x (minimum {MIN_IS_TRIALS_RATIO:.0f}x for equal CI)"
        )

    # Seeded + thread-count-invariant: the stopped trial count only moves
    # when the estimator itself changes. Small drift can come from libm
    # differences shifting leaf probabilities by an ulp; growth beyond the
    # regression limit means the proposal or stopping rule got worse.
    base_trials = baseline.get("adaptive_trials", 0)
    fresh_trials = fresh.get("adaptive_trials", 0)
    if base_trials and fresh_trials > base_trials * (1.0 + REGRESSION_LIMIT):
        failures.append(
            f"mc_adaptive trials-to-target-CI regressed: {fresh_trials} vs "
            f"baseline {base_trials} (limit {REGRESSION_LIMIT:+.0%}); "
            f"regenerate BENCH_mc_adaptive.json if intentional"
        )

    print(f"\n{'mc_adaptive metric':<28}{'baseline':>14}{'fresh':>14}")
    summary_lines.append("\n#### Adaptive Monte Carlo (rare-event gate)\n")
    summary_lines.append("| metric | baseline | fresh |")
    summary_lines.append("|---|---:|---:|")
    for metric in [
        "adaptive_trials",
        "adaptive_halfwidth",
        "adaptive_ess",
        "trials_ratio_vs_crude",
    ]:
        base_value = baseline.get(metric, 0)
        fresh_value = fresh.get(metric, 0)
        print(f"{metric:<28}{base_value:>14.4g}{fresh_value:>14.4g}")
        summary_lines.append(f"| {metric} | {base_value:.4g} | {fresh_value:.4g} |")
    flags = ", ".join(
        f"{flag}={'ok' if fresh.get(flag) is True else 'FAIL'}"
        for flag in MC_CONTRACT_FLAGS
    )
    print(f"  {flags}")
    summary_lines.append(f"\nContracts: {flags}")


def check_large_trees(baseline_path, fresh_path, failures):
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)

    for flag in ["all_agree", "cache_geometry_invariant"]:
        if fresh.get(flag) is not True:
            failures.append(f"large-trees contract violated: {flag} = {fresh.get(flag)}")

    reduction = fresh.get("max_node_reduction", 0.0)
    if reduction < MIN_NODE_REDUCTION:
        failures.append(
            f"preprocessing node reduction fell to {reduction:.1f}x on the "
            f"best tier (minimum {MIN_NODE_REDUCTION:.0f}x)"
        )

    base_tiers = {t["name"]: t for t in baseline.get("tiers", [])}
    print(f"\n{'tier':<7}{'events':>9}{'modules':>9}{'plain nodes':>13}"
          f"{'prep nodes':>12}{'reduction':>11}{'time':>8}  gate")
    summary_lines.append("\n#### Scaling corpus: preprocessing ablation\n")
    summary_lines.append(
        "| tier | events | modules | plain nodes | prep nodes "
        "| node reduction | time ratio | gate |"
    )
    summary_lines.append("|---|---:|---:|---:|---:|---:|---:|---|")
    for tier in fresh.get("tiers", []):
        name = tier["name"]
        base = base_tiers.get(name)
        verdict = "ok"
        # Seeded corpus + deterministic algorithms: node counts must match
        # the committed baseline exactly, on any machine.
        for metric in ["prep_decision_nodes", "plain_decision_nodes"]:
            if base is None or metric not in base or metric not in tier:
                continue
            if tier[metric] != base[metric]:
                verdict = "FAIL"
                failures.append(
                    f"tier {name}: {metric} changed {base[metric]} -> "
                    f"{tier[metric]} (must match the committed baseline "
                    f"exactly; regenerate BENCH_large_trees.json if "
                    f"intentional)"
                )
        plain_nodes = (
            f"{tier['plain_decision_nodes']}" if tier.get("plain_measured")
            else "(skipped)"
        )
        reduction_text = (
            f"{tier['node_reduction']:.1f}x" if tier.get("plain_measured")
            else "-"
        )
        time_text = (
            f"{tier['time_ratio']:.1f}x" if tier.get("plain_measured") else "-"
        )
        print(
            f"{name:<7}{tier['events']:>9}{tier['modules']:>9}"
            f"{plain_nodes:>13}{tier['prep_decision_nodes']:>12}"
            f"{reduction_text:>11}{time_text:>8}  {verdict}"
        )
        summary_lines.append(
            f"| {name} | {tier['events']} | {tier['modules']} "
            f"| {plain_nodes} | {tier['prep_decision_nodes']} "
            f"| {reduction_text} | {time_text} | {verdict} |"
        )
    print(
        f"  agreement={'ok' if fresh.get('all_agree') else 'FAIL'}, "
        f"cache_geometry_invariant="
        f"{'ok' if fresh.get('cache_geometry_invariant') else 'FAIL'}, "
        f"max reduction {reduction:.1f}x"
    )
    summary_lines.append(
        f"\nContracts: agreement="
        f"{'ok' if fresh.get('all_agree') else 'FAIL'}, "
        f"cache_geometry_invariant="
        f"{'ok' if fresh.get('cache_geometry_invariant') else 'FAIL'}; "
        f"max node reduction {reduction:.1f}x"
    )


def check_serve(baseline_path, fresh_path, failures):
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)

    for flag in SERVE_CONTRACT_FLAGS:
        if fresh.get(flag) is not True:
            failures.append(f"serve contract violated: {flag} = {fresh.get(flag)}")

    amortization = fresh.get("compile_amortization", 0.0)
    if amortization < MIN_COMPILE_AMORTIZATION:
        failures.append(
            f"serve compile amortization fell to {amortization:.4f} "
            f"(minimum {MIN_COMPILE_AMORTIZATION:.2f})"
        )

    ratio = fresh.get("fairness_ratio", 0.0)
    if not (FAIRNESS_BAND[0] <= ratio <= FAIRNESS_BAND[1]):
        failures.append(
            f"serve fairness ratio {ratio:.2f} outside "
            f"[{FAIRNESS_BAND[0]:.1f}, {FAIRNESS_BAND[1]:.1f}] for 3:1 weights"
        )

    print(f"\n{'serve metric':<28}{'baseline':>14}{'fresh':>14}")
    summary_lines.append("\n#### Serve subsystem (cache + fairness gate)\n")
    summary_lines.append("| metric | baseline | fresh |")
    summary_lines.append("|---|---:|---:|")
    for metric in [
        "cached_quantify_p50_us",
        "cached_quantify_p99_us",
        "compile_amortization",
        "fairness_ratio",
    ]:
        base_value = baseline.get(metric, 0)
        fresh_value = fresh.get(metric, 0)
        print(f"{metric:<28}{base_value:>14.4g}{fresh_value:>14.4g}")
        summary_lines.append(f"| {metric} | {base_value:.4g} | {fresh_value:.4g} |")
    flags = ", ".join(
        f"{flag}={'ok' if fresh.get(flag) is True else 'FAIL'}"
        for flag in SERVE_CONTRACT_FLAGS
    )
    print(f"  {flags} (latency columns report-only)")
    summary_lines.append(f"\nContracts: {flags}")


def main(argv):
    overhead_path = None
    mc_paths = None
    large_trees_paths = None
    serve_paths = None
    summary_path = None
    args = argv[1:]
    positional = []
    i = 0
    while i < len(args):
        if args[i] == "--overhead" and i + 1 < len(args):
            overhead_path = args[i + 1]
            i += 2
        elif args[i] == "--mc" and i + 2 < len(args):
            mc_paths = (args[i + 1], args[i + 2])
            i += 3
        elif args[i] == "--large-trees" and i + 2 < len(args):
            large_trees_paths = (args[i + 1], args[i + 2])
            i += 3
        elif args[i] == "--serve" and i + 2 < len(args):
            serve_paths = (args[i + 1], args[i + 2])
            i += 3
        elif args[i] == "--summary" and i + 1 < len(args):
            summary_path = args[i + 1]
            i += 2
        else:
            positional.append(args[i])
            i += 1
    if len(positional) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(positional[0]) as f:
        baseline = json.load(f)
    with open(positional[1]) as f:
        fresh = json.load(f)

    failures = []

    for flag in CONTRACT_FLAGS:
        if fresh.get(flag) is not True:
            failures.append(f"contract violated: {flag} = {fresh.get(flag)}")

    lane8_speedup = fresh.get("speedup_lane8_vs_lane1", 0.0)
    if lane8_speedup < MIN_LANE8_SPEEDUP:
        failures.append(
            f"8-lane kernel speedup over single-lane batch fell to "
            f"{lane8_speedup:.2f}x (minimum {MIN_LANE8_SPEEDUP:.1f}x)"
        )

    # The avx2 gate only applies where the backend ran (the bench writes
    # speedup 0 when the CPU lacks AVX2); the bitwise contract itself is
    # covered by the backends_identical flag above for every backend.
    avx2_speedup = fresh.get("speedup_avx2_vs_generic", 0.0)
    if avx2_speedup > 0.0 and avx2_speedup < MIN_AVX2_SPEEDUP:
        failures.append(
            f"avx2 backend speedup over the generic 8-lane kernel fell to "
            f"{avx2_speedup:.2f}x (minimum {MIN_AVX2_SPEEDUP:.1f}x)"
        )

    base_tree = baseline["tree_ns_per_eval"]
    fresh_tree = fresh["tree_ns_per_eval"]
    print(f"{'metric':<28}{'baseline':>12}{'fresh':>12}{'norm Δ':>10}  gate")
    summary_lines.append("#### Compiled-evaluation kernel\n")
    summary_lines.append("| metric | baseline ns/eval | fresh ns/eval | norm Δ | gate |")
    summary_lines.append("|---|---:|---:|---:|---|")
    for metric in GATED_METRICS + REPORT_ONLY_METRICS:
        base_norm = baseline[metric] / base_tree
        fresh_norm = fresh[metric] / fresh_tree
        delta = fresh_norm / base_norm - 1.0
        gated = metric in GATED_METRICS
        verdict = "ok"
        if gated and delta > REGRESSION_LIMIT:
            verdict = "FAIL"
            failures.append(
                f"{metric}: normalized ns/eval regressed {delta:+.1%} "
                f"(limit {REGRESSION_LIMIT:+.0%})"
            )
        elif not gated:
            verdict = "info"
        print(
            f"{metric:<28}{baseline[metric]:>12.1f}{fresh[metric]:>12.1f}"
            f"{delta:>+9.1%}  {verdict}"
        )
        summary_lines.append(
            f"| {metric} | {baseline[metric]:.1f} | {fresh[metric]:.1f} "
            f"| {delta:+.1%} | {verdict} |"
        )
    for metric in RAW_REPORT_METRICS:
        base_value = baseline.get(metric)
        fresh_value = fresh.get(metric)
        if not base_value or not fresh_value:
            continue  # absent (older JSON) or 0 (skipped: model not found)
        delta = fresh_value / base_value - 1.0
        print(
            f"{metric:<28}{base_value:>12.1f}{fresh_value:>12.1f}"
            f"{delta:>+9.1%}  info"
        )
        summary_lines.append(
            f"| {metric} | {base_value:.1f} | {fresh_value:.1f} "
            f"| {delta:+.1%} | info |"
        )

    # Per-backend 8-lane timings (backend_<name>_ns_per_eval). Report-only:
    # backend availability depends on the runner CPU, so a cross-machine
    # delta is not a regression signal — the gated quantities are the
    # bitwise contract and the avx2-vs-generic speedup measured in-process.
    for metric in sorted(fresh):
        if not (metric.startswith("backend_") and metric.endswith("_ns_per_eval")):
            continue
        fresh_value = fresh[metric]
        if not fresh_value:
            continue  # 0 = backend unavailable on this runner
        base_value = baseline.get(metric, 0)
        base_text = f"{base_value:>12.1f}" if base_value else f"{'-':>12}"
        delta_text = (
            f"{fresh_value / base_value - 1.0:>+9.1%}" if base_value
            else f"{'-':>9}"
        )
        print(f"{metric:<28}{base_text}{fresh_value:>12.1f}{delta_text}  info")
        summary_lines.append(
            f"| {metric} | {base_value:.1f} | {fresh_value:.1f} "
            f"| - | info |"
        )
    if fresh.get("active_backend"):
        avx2_text = (
            f"{avx2_speedup:.2f}x (gated >= {MIN_AVX2_SPEEDUP:.1f}x)"
            if avx2_speedup > 0.0 else "n/a (no AVX2 on this runner)"
        )
        print(
            f"  dispatch picked '{fresh['active_backend']}'; "
            f"avx2 vs generic lane8: {avx2_text}"
        )
        summary_lines.append(
            f"\nDispatch picked `{fresh['active_backend']}`; "
            f"avx2 vs generic lane8: {avx2_text}"
        )

    if overhead_path is not None:
        check_overhead(overhead_path, failures)
    if mc_paths is not None:
        check_mc(mc_paths[0], mc_paths[1], failures)
    if large_trees_paths is not None:
        check_large_trees(large_trees_paths[0], large_trees_paths[1], failures)
    if serve_paths is not None:
        check_serve(serve_paths[0], serve_paths[1], failures)

    if failures:
        print("\nbenchmark gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        summary_lines.append("\n**benchmark gate FAILED:**\n")
        summary_lines.extend(f"- {failure}" for failure in failures)
    else:
        print(f"\nbenchmark gate passed (lane8 {lane8_speedup:.2f}x vs lane1)")
        summary_lines.append(
            f"\nbenchmark gate **passed** (lane8 {lane8_speedup:.2f}x vs lane1)"
        )
    if summary_path is not None:
        with open(summary_path, "a") as f:
            f.write("\n".join(summary_lines) + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
