#include "safeopt/modelcheck/height_control_model.h"

#include "safeopt/support/contracts.h"
#include "safeopt/support/strings.h"

namespace safeopt::modelcheck {
namespace {

// Vehicle positions (see header).
constexpr std::int32_t kApproach = 0;
constexpr std::int32_t kZone1 = 1;
constexpr std::int32_t kZone2Right = 2;
constexpr std::int32_t kLeftAtLbpost = 3;
constexpr std::int32_t kTube4 = 4;
constexpr std::int32_t kCollision = 5;
constexpr std::int32_t kStopped = 6;

}  // namespace

HeightControlModel::HeightControlModel(ControlDesign design, int ohv_count)
    : design_(design), ohv_count_(ohv_count) {
  SAFEOPT_EXPECTS(ohv_count >= 1 && ohv_count <= 3);
}

int HeightControlModel::ohv_position(const State& s, int vehicle) const {
  SAFEOPT_EXPECTS(vehicle >= 0 && vehicle < ohv_count_);
  return s[static_cast<std::size_t>(vehicle)];
}

bool HeightControlModel::lbpost_armed(const State& s) const {
  return s[static_cast<std::size_t>(ohv_count_)] != 0;
}

bool HeightControlModel::odfinal_armed(const State& s) const {
  return s[static_cast<std::size_t>(ohv_count_) + 1] != 0;
}

State HeightControlModel::initial() const {
  State s(static_cast<std::size_t>(ohv_count_) + 2, 0);
  for (int v = 0; v < ohv_count_; ++v) {
    s[static_cast<std::size_t>(v)] = kApproach;
  }
  return s;
}

std::vector<State> HeightControlModel::successors(const State& state) const {
  std::vector<State> next;
  const auto armed_index = static_cast<std::size_t>(ohv_count_);
  const auto od_index = armed_index + 1;

  for (int v = 0; v < ohv_count_; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const std::int32_t pos = state[vi];
    switch (pos) {
      case kApproach: {
        // Passing LBpre arms LBpost. Simultaneous passages produce one
        // signal, so re-arming an armed barrier changes nothing — which is
        // precisely why the original design cannot count vehicles.
        State s = state;
        s[vi] = kZone1;
        s[armed_index] = 1;
        next.push_back(std::move(s));
        break;
      }
      case kZone1: {
        const bool armed = state[armed_index] != 0;
        // Choice 1: proceed on the right lane through LBpost towards
        // tube 4 (the legal route).
        {
          State s = state;
          s[vi] = kZone2Right;
          if (armed) {
            s[od_index] = 1;  // LBpost passage activates ODfinal
            if (design_ == ControlDesign::kOriginal) {
              // Flaw: the control assumes one OHV and switches the
              // detection off after the first passage.
              s[armed_index] = 0;
            }
          }
          next.push_back(std::move(s));
        }
        // Choice 2: drive on a left lane towards the west tube. With
        // LBpost armed the LBpost+ODleft combination triggers the
        // emergency stop; disarmed, the vehicle passes unnoticed.
        {
          State s = state;
          if (armed) {
            s[vi] = kStopped;
            if (design_ == ControlDesign::kOriginal) s[armed_index] = 0;
          } else {
            s[vi] = kLeftAtLbpost;
          }
          next.push_back(std::move(s));
        }
        break;
      }
      case kLeftAtLbpost: {
        // Unprotected west-tube approach: nothing can stop it any more.
        State s = state;
        s[vi] = kCollision;
        next.push_back(std::move(s));
        break;
      }
      case kZone2Right: {
        // Choice 1: enter tube 4 (safe).
        {
          State s = state;
          s[vi] = kTube4;
          next.push_back(std::move(s));
        }
        // Choice 2: switch to the left lanes inside zone 2 towards the
        // west/mid tubes — the situation ODfinal exists to catch.
        {
          State s = state;
          s[vi] = odfinal_armed(state) ? kStopped : kCollision;
          next.push_back(std::move(s));
        }
        break;
      }
      case kTube4:
      case kCollision:
      case kStopped:
        break;  // terminal
      default:
        SAFEOPT_ASSERT(false);
    }
  }
  return next;
}

std::string HeightControlModel::describe(const State& state) const {
  static constexpr const char* kPositionNames[] = {
      "approach", "zone1",     "zone2-right", "left-at-LBpost",
      "tube4",    "COLLISION", "stopped"};
  std::string out = "{";
  for (int v = 0; v < ohv_count_; ++v) {
    if (v > 0) out += ", ";
    out += concat("OHV", std::to_string(v), "=",
                  kPositionNames[ohv_position(state, v)]);
  }
  out += lbpost_armed(state) ? ", LBpost:armed" : ", LBpost:off";
  out += odfinal_armed(state) ? ", ODfinal:armed" : ", ODfinal:off";
  out += "}";
  return out;
}

bool HeightControlModel::no_collision(const State& state) {
  for (const std::int32_t v : state) {
    if (v == kCollision) return false;
  }
  return true;
}

CheckResult HeightControlModel::verify() const {
  return check_invariant(*this, no_collision);
}

}  // namespace safeopt::modelcheck
