#include "safeopt/core/quantification_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "safeopt/fta/cut_sets.h"
#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/probability.h"

namespace safeopt::core {
namespace {

/// The quickstart pump train: redundancy, a single point of failure, and an
/// INHIBIT condition — exercises every leaf kind an engine must handle.
struct PumpSystem {
  fta::FaultTree tree{"LossOfCoolantFlow"};
  fta::QuantificationInput input;

  PumpSystem() {
    const auto pump_a = tree.add_basic_event("PumpA");
    const auto pump_b = tree.add_basic_event("PumpB");
    const auto valve = tree.add_basic_event("Valve");
    const auto trip = tree.add_basic_event("Trip");
    const auto maintenance = tree.add_condition("Maintenance", "");
    const auto both = tree.add_and("BothPumps", {pump_a, pump_b});
    const auto spurious = tree.add_inhibit("Spurious", trip, maintenance);
    tree.set_top(tree.add_or("Loss", {both, valve, spurious}));

    input = fta::QuantificationInput::for_tree(tree, 0.0);
    input.set(tree, "PumpA", 3e-3);
    input.set(tree, "PumpB", 3e-3);
    input.set(tree, "Valve", 1e-4);
    input.set(tree, "Trip", 2e-3);
    input.set(tree, "Maintenance", 0.05);
  }
};

TEST(EngineRegistryTest, ListsTheBuiltinEngines) {
  for (const char* name : {"fta", "bdd", "mc", "mc_adaptive"}) {
    EXPECT_TRUE(EngineRegistry::contains(name)) << name;
  }
  const auto available = EngineRegistry::available();
  EXPECT_GE(available.size(), 4u);
}

TEST(EngineRegistryTest, UnknownEngineNamesThrow) {
  const PumpSystem system;
  try {
    (void)EngineRegistry::create("no_such_engine", system.tree);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("available"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("bdd"), std::string::npos);
  }
}

TEST(EngineRegistryTest, CapabilityFlagsDescribeTheBackends) {
  const PumpSystem system;
  const auto fta_engine = EngineRegistry::create("fta", system.tree);
  EXPECT_FALSE(fta_engine->capabilities().exact);  // rare-event default
  EXPECT_TRUE(fta_engine->capabilities().importance);
  EXPECT_FALSE(fta_engine->capabilities().sampled);

  EngineConfig exact_config;
  exact_config.method = fta::ProbabilityMethod::kInclusionExclusion;
  EXPECT_TRUE(EngineRegistry::create("fta", system.tree, exact_config)
                  ->capabilities()
                  .exact);

  const auto bdd_engine = EngineRegistry::create("bdd", system.tree);
  EXPECT_TRUE(bdd_engine->capabilities().exact);
  EXPECT_FALSE(bdd_engine->capabilities().sampled);

  const auto mc_engine = EngineRegistry::create("mc", system.tree);
  EXPECT_TRUE(mc_engine->capabilities().sampled);
  EXPECT_FALSE(mc_engine->capabilities().exact);

  const auto adaptive = EngineRegistry::create("mc_adaptive", system.tree);
  EXPECT_TRUE(adaptive->capabilities().sampled);
  EXPECT_TRUE(adaptive->capabilities().batch);
  EXPECT_FALSE(adaptive->capabilities().exact);
  EXPECT_FALSE(adaptive->capabilities().importance_sampling);  // tilt unset

  EngineConfig tilted;
  tilted.tilt = 25.0;
  EXPECT_TRUE(EngineRegistry::create("mc_adaptive", system.tree, tilted)
                  ->capabilities()
                  .importance_sampling);
}

TEST(EngineConformanceTest, EnginesAgreeOnThePumpSystem) {
  const PumpSystem system;
  // Oracle: exact integration of the structure function.
  const double oracle =
      fta::exact_probability_bruteforce(system.tree, system.input);

  // The exact engines reproduce the oracle to rounding.
  EngineConfig exact_config;
  exact_config.method = fta::ProbabilityMethod::kInclusionExclusion;
  const double via_ie =
      EngineRegistry::create("fta", system.tree, exact_config)
          ->quantify(system.input)
          .probability;
  const double via_bdd = EngineRegistry::create("bdd", system.tree)
                             ->quantify(system.input)
                             .probability;
  EXPECT_NEAR(via_ie, oracle, 1e-15);
  EXPECT_NEAR(via_bdd, oracle, 1e-15);

  // The bounding methods bound from above.
  const double rare_event = EngineRegistry::create("fta", system.tree)
                                ->quantify(system.input)
                                .probability;
  EXPECT_GE(rare_event, oracle);
  EXPECT_NEAR(rare_event, oracle, 1e-6);  // rare events: bound is tight

  // Monte Carlo brackets the exact value in its confidence interval.
  EngineConfig mc_config;
  mc_config.mc_trials = 400000;
  const auto sampled = EngineRegistry::create("mc", system.tree, mc_config)
                           ->quantify(system.input);
  ASSERT_TRUE(sampled.ci95.has_value());
  EXPECT_TRUE(sampled.ci95->contains(oracle))
      << "estimate " << sampled.probability << " CI [" << sampled.ci95->lo
      << ", " << sampled.ci95->hi << "] oracle " << oracle;
  EXPECT_EQ(sampled.trials, mc_config.mc_trials);
}

TEST(EngineConformanceTest, PreprocessedEnginesMatchAndReportDiagnostics) {
  const PumpSystem system;
  const double oracle =
      fta::exact_probability_bruteforce(system.tree, system.input);

  EngineConfig config;
  config.preprocess = true;
  config.module_min_leaves = 2;

  // Without preprocessing the result carries no summary...
  const QuantificationResult plain =
      EngineRegistry::create("bdd", system.tree)->quantify(system.input);
  EXPECT_FALSE(plain.preprocess.has_value());

  // ...with it, both tree engines quantify through the pass pipeline,
  // agree with the oracle, and report what the passes did.
  for (const char* name : {"fta", "bdd"}) {
    EngineConfig engine_config = config;
    if (std::string(name) == "fta") {
      engine_config.method = fta::ProbabilityMethod::kInclusionExclusion;
    }
    const QuantificationResult result =
        EngineRegistry::create(name, system.tree, engine_config)
            ->quantify(system.input);
    EXPECT_NEAR(result.probability, oracle, 1e-15) << name;
    ASSERT_TRUE(result.preprocess.has_value()) << name;
    const PreprocessSummary& summary = *result.preprocess;
    EXPECT_EQ(summary.events_before,
              system.tree.basic_event_count() + system.tree.condition_count())
        << name;
    EXPECT_GT(summary.gates_before, 0u) << name;
    ASSERT_FALSE(summary.passes.empty()) << name;
    EXPECT_EQ(summary.passes.front(), "propagate") << name;
  }

  // The bdd engine's preprocessed path is *bitwise* equal to the plain
  // path when modularization is off (structure passes preserve the DFS
  // leaf order, and the ROBDD is canonical).
  EngineConfig no_modules = config;
  no_modules.modularize = false;
  const QuantificationResult structured =
      EngineRegistry::create("bdd", system.tree, no_modules)
          ->quantify(system.input);
  EXPECT_EQ(structured.probability, plain.probability);
  ASSERT_TRUE(structured.preprocess.has_value());
  EXPECT_EQ(structured.preprocess->modules, 0u);
}

TEST(EngineConformanceTest, AdaptiveEngineReportsUniformDiagnostics) {
  const PumpSystem system;
  const double oracle =
      fta::exact_probability_bruteforce(system.tree, system.input);

  EngineConfig config;
  config.target_halfwidth = 0.1;
  config.relative = true;
  config.mc_trials = 1u << 22;
  config.seed = 1;  // a 95% interval misses 5% of seeds; this one covers
  const auto result = EngineRegistry::create("mc_adaptive", system.tree, config)
                          ->quantify(system.input);

  ASSERT_TRUE(result.ci95.has_value());
  ASSERT_TRUE(result.ess.has_value());
  ASSERT_TRUE(result.converged.has_value());
  EXPECT_TRUE(*result.converged);
  EXPECT_EQ(*result.ess, static_cast<double>(result.trials));  // crude mode
  EXPECT_LE(result.halfwidth(), 0.1 * result.probability);
  EXPECT_TRUE(result.ci95->contains(oracle))
      << result.probability << " vs " << oracle;

  // The fixed-budget engine reports the same diagnostic surface (ESS ==
  // trials; no convergence notion).
  const auto fixed =
      EngineRegistry::create("mc", system.tree)->quantify(system.input);
  ASSERT_TRUE(fixed.ess.has_value());
  EXPECT_EQ(*fixed.ess, static_cast<double>(fixed.trials));
  EXPECT_FALSE(fixed.converged.has_value());
}

TEST(EngineConformanceTest, AdaptiveBatchMatchesSerialQuantify) {
  const PumpSystem system;
  EngineConfig config;
  config.target_halfwidth = 0.1;
  config.relative = true;
  config.batch = 1u << 14;
  const auto engine =
      EngineRegistry::create("mc_adaptive", system.tree, config);

  std::vector<fta::QuantificationInput> inputs(3, system.input);
  inputs[1].set(system.tree, "Valve", 5e-3);
  inputs[2].set(system.tree, "Maintenance", 0.5);
  const auto batch = engine->quantify_batch(inputs);
  ASSERT_EQ(batch.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto serial = engine->quantify(inputs[i]);
    EXPECT_EQ(batch[i].probability, serial.probability);
    EXPECT_EQ(batch[i].trials, serial.trials);
    EXPECT_EQ(*batch[i].ess, *serial.ess);
  }
}

TEST(EngineConformanceTest, McIsDeterministicUnderAFixedSeed) {
  const PumpSystem system;
  EngineConfig config;
  config.mc_trials = 20000;
  config.seed = 123;
  const auto first = EngineRegistry::create("mc", system.tree, config)
                         ->quantify(system.input);
  const auto again = EngineRegistry::create("mc", system.tree, config)
                         ->quantify(system.input);
  EXPECT_EQ(first.probability, again.probability);
}

TEST(EngineConformanceTest, QuantifyBatchMatchesPerPointQuantify) {
  const PumpSystem system;
  const auto engine = EngineRegistry::create("bdd", system.tree);
  std::vector<fta::QuantificationInput> inputs(3, system.input);
  inputs[1].set(system.tree, "Valve", 5e-4);
  inputs[2].set(system.tree, "Maintenance", 0.5);
  const auto batch = engine->quantify_batch(inputs);
  ASSERT_EQ(batch.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(batch[i].probability,
              engine->quantify(inputs[i]).probability);
  }
}

TEST(EngineRegistryTest, RegistrarRegistersACustomEngine) {
  // A "pessimist" engine that always reports certainty — 30 lines in user
  // code buy a fully pluggable backend (see docs/extending.md).
  class PessimistEngine final : public QuantificationEngine {
   public:
    explicit PessimistEngine(const fta::FaultTree& tree) : tree_(tree) {}
    [[nodiscard]] std::string_view name() const noexcept override {
      return "test_pessimist";
    }
    [[nodiscard]] EngineCapabilities capabilities() const noexcept override {
      return {};
    }
    [[nodiscard]] const fta::FaultTree& tree() const noexcept override {
      return tree_;
    }
    [[nodiscard]] QuantificationResult quantify(
        const fta::QuantificationInput&) override {
      QuantificationResult result;
      result.probability = 1.0;
      return result;
    }

   private:
    const fta::FaultTree& tree_;
  };
  const EngineRegistrar registrar(
      "test_pessimist",
      [](const fta::FaultTree& tree, const EngineConfig&) {
        return std::make_unique<PessimistEngine>(tree);
      });
  ASSERT_TRUE(EngineRegistry::contains("test_pessimist"));
  const PumpSystem system;
  EXPECT_EQ(EngineRegistry::create("test_pessimist", system.tree)
                ->quantify(system.input)
                .probability,
            1.0);
}

}  // namespace
}  // namespace safeopt::core
