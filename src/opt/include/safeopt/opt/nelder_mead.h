// Nelder–Mead downhill simplex with box projection: the workhorse
// derivative-free solver for the smooth low-dimensional cost functions that
// safety optimization produces (2 free parameters in the Elbtunnel study).
#ifndef SAFEOPT_OPT_NELDER_MEAD_H
#define SAFEOPT_OPT_NELDER_MEAD_H

#include "safeopt/opt/problem.h"

namespace safeopt::opt {

class NelderMead final : public Optimizer {
 public:
  /// `initial` seeds the first simplex vertex; defaults to the box center.
  explicit NelderMead(StoppingCriteria stopping = {},
                      std::vector<double> initial = {});

  [[nodiscard]] OptimizationResult minimize(
      const Problem& problem) const override;
  [[nodiscard]] std::string name() const override { return "NelderMead"; }

 private:
  StoppingCriteria stopping_;
  std::vector<double> initial_;
};

}  // namespace safeopt::opt

#endif  // SAFEOPT_OPT_NELDER_MEAD_H
