#include "safeopt/expr/parse.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "safeopt/expr/compiled.h"
#include "safeopt/expr/eval_backend.h"
#include "safeopt/expr/expr.h"
#include "safeopt/stats/distribution.h"

namespace safeopt::expr {
namespace {

const SymbolTable kTimers{"T1", "T2"};

TEST(ExprParseTest, NumbersParametersAndPrecedence) {
  const ParameterAssignment at{{"T1", 3.0}, {"T2", 5.0}};
  EXPECT_DOUBLE_EQ(parse("2 + 3 * T1", kTimers).evaluate(at), 11.0);
  EXPECT_DOUBLE_EQ(parse("(2 + 3) * T1", kTimers).evaluate(at), 15.0);
  EXPECT_DOUBLE_EQ(parse("T2 - T1 - 1", kTimers).evaluate(at), 1.0);
  EXPECT_DOUBLE_EQ(parse("12 / T1 / 2", kTimers).evaluate(at), 2.0);
  EXPECT_DOUBLE_EQ(parse("-T1 + 4", kTimers).evaluate(at), 1.0);
  EXPECT_DOUBLE_EQ(parse("1e-3", kTimers).evaluate(at), 1e-3);
  EXPECT_DOUBLE_EQ(parse("1e+05", kTimers).evaluate(at), 1e5);
  EXPECT_DOUBLE_EQ(parse("min(T1, T2) + max(T1, 4)", kTimers).evaluate(at),
                   7.0);
  EXPECT_DOUBLE_EQ(parse("pow(T1, 2)", kTimers).evaluate(at), 9.0);
  EXPECT_DOUBLE_EQ(parse("clamp(T2, 0, 4)", kTimers).evaluate(at), 4.0);
  EXPECT_DOUBLE_EQ(parse("exp(log(T1))", kTimers).evaluate(at), 3.0);
  EXPECT_DOUBLE_EQ(parse("sqrt(T1 * T1)", kTimers).evaluate(at), 3.0);
}

TEST(ExprParseTest, ConstantFoldingMatchesOperatorOverloads) {
  // Public-API construction folds constant subtrees; the parser must build
  // through the same constructors so tapes come out identical.
  EXPECT_TRUE(structurally_equal(parse("1 - 0.25", kTimers), constant(0.75)));
  EXPECT_TRUE(structurally_equal(parse("2 * 3 + T1", kTimers),
                                 constant(6.0) + parameter("T1")));
}

TEST(ExprParseTest, DistributionCalls) {
  const ParameterAssignment at{{"T1", 19.0}, {"T2", 15.6}};
  const auto transit = std::make_shared<stats::TruncatedNormal>(
      stats::TruncatedNormal::nonnegative(4.0, 2.0));
  const Expr direct = survival(transit, parameter("T1"));
  const Expr parsed =
      parse("survival[TruncatedNormal(4, 2, [0, inf])](T1)", kTimers);
  EXPECT_TRUE(structurally_equal(direct, parsed));
  EXPECT_EQ(direct.evaluate(at), parsed.evaluate(at));  // bitwise

  const Expr exp_cdf = parse("cdf[Exponential(0.13)](T2)", kTimers);
  EXPECT_DOUBLE_EQ(exp_cdf.evaluate(at), 1.0 - std::exp(-0.13 * 15.6));
}

struct RoundTripCase {
  std::string name;
  Expr expression;
};

class ParsePrintRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(ParsePrintRoundTrip, ParseOfPrintIsStructurallyIdentical) {
  const Expr& original = GetParam().expression;
  const Expr reparsed = parse(original.to_string(), kTimers);
  EXPECT_TRUE(structurally_equal(original, reparsed))
      << "printed: " << original.to_string()
      << "\nreparsed: " << reparsed.to_string();
  // And the reparsed DAG prints the same text again (printer fixed point).
  EXPECT_EQ(original.to_string(), reparsed.to_string());
}

std::vector<RoundTripCase> round_trip_cases() {
  const Expr t1 = parameter("T1");
  const Expr t2 = parameter("T2");
  const auto transit = std::make_shared<stats::TruncatedNormal>(
      stats::TruncatedNormal::nonnegative(4.0, 2.0));
  const auto normal = std::make_shared<stats::Normal>(4.0, 2.0);
  const auto weibull = std::make_shared<stats::Weibull>(1.5, 8.0);
  const auto gamma = std::make_shared<stats::Gamma>(2.0, 3.0);
  const auto lognormal = std::make_shared<stats::LogNormal>(0.5, 0.25);
  const auto uniform = std::make_shared<stats::Uniform>(-1.0, 2.5);
  return {
      {"constant", constant(0.25)},
      {"tiny_constant", constant(1.68e-6)},
      {"parameter", t1},
      {"arithmetic", (t1 + 2.0) * (t2 - 0.5) / (t1 * t2)},
      {"negation", -(t1 + t2)},
      {"unaries", expr::exp(t1) + expr::log(t2) + expr::sqrt(t1 * t2)},
      {"pow", expr::pow(t1 / 40.0, 2.5)},
      {"min_max", expr::min(t1, t2) * expr::max(t1, constant(7.0))},
      {"clamp", expr::clamp(t1 - t2, 0.0, 1.0)},
      {"poisson", poisson_exposure(0.13, t2)},
      {"survival_truncnorm", survival(transit, t1)},
      {"cdf_normal", cdf(normal, t2)},
      {"cdf_weibull", cdf(weibull, t1)},
      {"survival_gamma", survival(gamma, t2)},
      {"cdf_lognormal", cdf(lognormal, t1)},
      {"survival_uniform", survival(uniform, t2 / 16.0)},
      {"elbtunnel_collision",
       constant(4.19e-8) + 0.011 * (survival(transit, t1) +
                                    (1.0 - survival(transit, t1)) *
                                        survival(transit, t2))},
      {"elbtunnel_armed",
       constant(4.2e-4) + 9.9958e-05 * poisson_exposure(1.68e-6, t1)},
  };
}

INSTANTIATE_TEST_SUITE_P(Cases, ParsePrintRoundTrip,
                         ::testing::ValuesIn(round_trip_cases()),
                         [](const auto& info) { return info.param.name; });

TEST(ExprParseTest, ParsedExpressionsCompileToEquivalentTapes) {
  // The compiled-path contract extends to parsed expressions: the tape must
  // reproduce the tree walk bitwise at every lane width.
  const Expr parsed = parse(
      "4.19e-08 + 0.011 * (survival[TruncatedNormal(4, 2, [0, inf])](T1)"
      " + (1 - survival[TruncatedNormal(4, 2, [0, inf])](T1))"
      " * survival[TruncatedNormal(4, 2, [0, inf])](T2))",
      kTimers);
  const std::vector<std::string> order = {"T1", "T2"};
  const CompiledExpr compiled = CompiledExpr::compile(parsed, order);

  std::vector<double> points;
  for (double t1 = 5.0; t1 <= 40.0; t1 += 2.5) {
    for (double t2 = 5.0; t2 <= 40.0; t2 += 2.5) {
      points.push_back(t1);
      points.push_back(t2);
    }
  }
  const std::size_t rows = points.size() / 2;
  std::vector<double> walk(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    walk[r] = parsed.evaluate(
        {{"T1", points[2 * r]}, {"T2", points[2 * r + 1]}});
  }
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{4},
                                  std::size_t{8}}) {
    std::vector<double> batch(rows);
    compiled.evaluate_batch({.points = points, .values = batch,
                             .lane_width = lanes,
                             .backend = &BackendRegistry::generic()});
    EXPECT_EQ(walk, batch) << "lane width " << lanes;
  }
}

struct ErrorCase {
  std::string name;
  std::string input;
  std::string fragment;
};

class ParseErrors : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(ParseErrors, RejectsWithPositionAndReason) {
  const ErrorCase& c = GetParam();
  try {
    (void)parse(c.input, kTimers);
    FAIL() << "expected ParseError for: " << c.input;
  } catch (const ParseError& error) {
    EXPECT_NE(std::string(error.what()).find(c.fragment), std::string::npos)
        << error.what();
    EXPECT_LE(error.offset(), c.input.size()) << error.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParseErrors,
    ::testing::Values(
        ErrorCase{"empty", "", "empty expression"},
        ErrorCase{"unknown_parameter", "T1 + T3", "unknown parameter 'T3'"},
        ErrorCase{"unknown_function", "frob(T1)", "unknown function 'frob'"},
        ErrorCase{"unknown_distribution", "cdf[Cauchy(0, 1)](T1)",
                  "unknown distribution 'Cauchy'"},
        ErrorCase{"bad_sigma", "cdf[Normal(4, 0)](T1)", "sigma must be > 0"},
        ErrorCase{"bad_truncation", "cdf[TruncatedNormal(4, 2, [5, 5])](T1)",
                  "lower < upper"},
        ErrorCase{"trailing", "T1 + 1 T2", "trailing input"},
        ErrorCase{"unbalanced", "(T1 + 1", "expected ')'"},
        ErrorCase{"missing_operand", "T1 + ", "unexpected end"},
        ErrorCase{"parameterized_pow", "pow(T1, T2)",
                  "pow exponent must be a constant"},
        ErrorCase{"cdf_without_brackets", "cdf(T1)",
                  "distribution in brackets"},
        ErrorCase{"stray_character", "T1 $ 2", "unexpected character '$'"}),
    [](const auto& info) { return info.param.name; });

TEST(ExprParseTest, ErrorOffsetsPointAtTheProblem) {
  try {
    (void)parse("T1 + frob(T2)", kTimers);
    FAIL();
  } catch (const ParseError& error) {
    EXPECT_EQ(error.offset(), 5u);  // the 'f' of frob
  }
}

TEST(ExprParseTest, InfAndNanLiterals) {
  EXPECT_TRUE(std::isinf(parse("inf", kTimers).evaluate({})));
  EXPECT_TRUE(std::isinf(parse("-inf", kTimers).evaluate({})));
  EXPECT_TRUE(std::isnan(parse("nan", kTimers).evaluate({})));
}

TEST(ExprParseTest, SymbolTableFromVectorAndContains) {
  SymbolTable symbols(std::vector<std::string>{"b", "a", "b"});
  EXPECT_TRUE(symbols.contains("a"));
  EXPECT_TRUE(symbols.contains("b"));
  EXPECT_FALSE(symbols.contains("c"));
  EXPECT_EQ(symbols.names().size(), 2u);  // deduplicated
}

}  // namespace
}  // namespace safeopt::expr
