// safeopt-lint: checkpointed
// Fixture: declared checkpointed and polling its ExecutionControl.
#include <cstddef>

#include "safeopt/support/execution_control.h"

double sum(const double* values, std::size_t n,
           safeopt::ExecutionControl& control) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if ((i & 0x3ff) == 0) control.check("sum");
    total += values[i];
  }
  return total;
}
