#include "safeopt/core/parameterized_fta.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "safeopt/stats/distribution.h"

namespace safeopt::core {
namespace {

using expr::constant;
using expr::parameter;
using expr::ParameterAssignment;

/// The paper's §IV-B.2 collision shape: OR(residual, INHIBIT(OT1|crit),
/// INHIBIT(OT2|crit)) with parameterized overtime probabilities.
struct CollisionFixture {
  CollisionFixture() : tree("HCol") {
    const auto residual = tree.add_basic_event("residual");
    const auto ot1 = tree.add_basic_event("OT1");
    const auto ot2 = tree.add_basic_event("OT2");
    const auto crit = tree.add_condition("OHVcritical");
    const auto g1 = tree.add_inhibit("g1", ot1, crit);
    const auto g2 = tree.add_inhibit("g2", ot2, crit);
    tree.set_top(tree.add_or("top", {residual, g1, g2}));
  }
  fta::FaultTree tree;
};

TEST(ParameterizedQuantificationTest, DefaultsAreWorstCase) {
  const CollisionFixture f;
  const ParameterizedQuantification q(f.tree);
  // Events default to probability 0, conditions to 1 (classical FTA).
  EXPECT_DOUBLE_EQ(q.event_probability(0).evaluate({}), 0.0);
  EXPECT_DOUBLE_EQ(q.condition_probability(0).evaluate({}), 1.0);
}

TEST(ParameterizedQuantificationTest, CutSetExpressionIsEq2) {
  const CollisionFixture f;
  ParameterizedQuantification q(f.tree);
  const auto transit = std::make_shared<stats::TruncatedNormal>(
      stats::TruncatedNormal::nonnegative(4.0, 2.0));
  q.set_event_probability("OT1", expr::survival(transit, parameter("T1")));
  q.set_condition_probability("OHVcritical", constant(0.011));

  const fta::CutSetCollection mcs = fta::minimal_cut_sets(f.tree);
  // Find the {OT1 | crit} cut set (order 1, with a condition).
  const fta::CutSet* ot1_cs = nullptr;
  for (const auto& cs : mcs.sets()) {
    if (!cs.conditions.empty() &&
        cs.events == std::vector<fta::BasicEventOrdinal>{1}) {
      ot1_cs = &cs;
    }
  }
  ASSERT_NE(ot1_cs, nullptr);
  const expr::Expr p = q.cut_set_expression(*ot1_cs);
  const ParameterAssignment env{{"T1", 19.0}};
  // Eq. 2: P(CS) = P(Constraints)·∏P(PF).
  EXPECT_NEAR(p.evaluate(env), 0.011 * (1.0 - transit->cdf(19.0)), 1e-15);
}

TEST(ParameterizedQuantificationTest, HazardExpressionRareEventIsSum) {
  const CollisionFixture f;
  ParameterizedQuantification q(f.tree);
  q.set_event_probability("residual", constant(1e-4));
  q.set_event_probability("OT1", parameter("p1"));
  q.set_event_probability("OT2", parameter("p2"));
  q.set_condition_probability("OHVcritical", constant(0.5));
  const expr::Expr hazard = q.hazard_expression(HazardFormula::kRareEvent);
  const ParameterAssignment env{{"p1", 0.01}, {"p2", 0.02}};
  EXPECT_NEAR(hazard.evaluate(env), 1e-4 + 0.5 * 0.01 + 0.5 * 0.02, 1e-15);
}

TEST(ParameterizedQuantificationTest, McubIsOneMinusProduct) {
  const CollisionFixture f;
  ParameterizedQuantification q(f.tree);
  q.set_event_probability("residual", constant(0.1));
  q.set_event_probability("OT1", constant(0.2));
  q.set_event_probability("OT2", constant(0.3));
  q.set_condition_probability("OHVcritical", constant(1.0));
  const expr::Expr hazard =
      q.hazard_expression(HazardFormula::kMinCutUpperBound);
  EXPECT_NEAR(hazard.evaluate({}), 1.0 - 0.9 * 0.8 * 0.7, 1e-15);
}

TEST(ParameterizedQuantificationTest, RareEventClampsToOne) {
  const CollisionFixture f;
  ParameterizedQuantification q(f.tree);
  q.set_event_probability("residual", constant(0.9));
  q.set_event_probability("OT1", constant(0.9));
  q.set_event_probability("OT2", constant(0.9));
  const expr::Expr hazard = q.hazard_expression(HazardFormula::kRareEvent);
  EXPECT_DOUBLE_EQ(hazard.evaluate({}), 1.0);
}

TEST(ParameterizedQuantificationTest, EvaluateBridgesToNumericEngine) {
  // Symbolic-then-evaluate must equal evaluate-then-numeric (Eqs. 3-4
  // commute with substitution).
  const CollisionFixture f;
  ParameterizedQuantification q(f.tree);
  const auto transit = std::make_shared<stats::TruncatedNormal>(
      stats::TruncatedNormal::nonnegative(4.0, 2.0));
  q.set_event_probability("residual", constant(1e-4));
  q.set_event_probability("OT1", expr::survival(transit, parameter("T1")));
  q.set_event_probability("OT2", expr::survival(transit, parameter("T2")));
  q.set_condition_probability("OHVcritical", constant(0.011));

  const ParameterAssignment env{{"T1", 12.0}, {"T2", 9.0}};
  const fta::CutSetCollection mcs = fta::minimal_cut_sets(f.tree);

  const double symbolic = q.hazard_expression(mcs).evaluate(env);
  const fta::QuantificationInput numeric_input = q.evaluate(env);
  const double numeric = fta::top_event_probability(
      mcs, numeric_input, fta::ProbabilityMethod::kRareEvent);
  EXPECT_NEAR(symbolic, numeric, 1e-14);
}

TEST(ParameterizedQuantificationTest, BirnbaumExpressionMatchesNumeric) {
  const CollisionFixture f;
  ParameterizedQuantification q(f.tree);
  const auto transit = std::make_shared<stats::TruncatedNormal>(
      stats::TruncatedNormal::nonnegative(4.0, 2.0));
  q.set_event_probability("residual", constant(1e-4));
  q.set_event_probability("OT1", expr::survival(transit, parameter("T1")));
  q.set_event_probability("OT2", expr::survival(transit, parameter("T2")));
  q.set_condition_probability("OHVcritical", constant(0.011));
  const fta::CutSetCollection mcs = fta::minimal_cut_sets(f.tree);
  const ParameterAssignment at{{"T1", 8.0}, {"T2", 12.0}};

  // OT1 is basic-event ordinal 1 in the fixture.
  const expr::Expr symbolic = q.birnbaum_expression(mcs, 1);
  // Numeric reference via the classical definition on the evaluated input.
  fta::QuantificationInput with = q.evaluate(at);
  with.basic_event_probability[1] = 1.0;
  fta::QuantificationInput without = q.evaluate(at);
  without.basic_event_probability[1] = 0.0;
  const double numeric = fta::top_event_probability(mcs, with) -
                         fta::top_event_probability(mcs, without);
  EXPECT_NEAR(symbolic.evaluate(at), numeric, 1e-14);
  // For the single-point-of-failure cut set {OT1 | crit}, Birnbaum is just
  // the constraint probability.
  EXPECT_NEAR(symbolic.evaluate(at), 0.011, 1e-12);
}

TEST(ParameterizedQuantificationTest, BirnbaumRankingCanFlipWithParameters) {
  // Two hazard paths: e0 constant, e1 scaling with x; the dominant failure
  // depends on x — visible only with parameterized importance.
  fta::FaultTree tree("flip");
  const auto e0 = tree.add_basic_event("e0");
  const auto e1 = tree.add_basic_event("e1");
  const auto shared = tree.add_basic_event("shared");
  const auto g0 = tree.add_and("g0", {e0, shared});
  const auto g1 = tree.add_and("g1", {e1, shared});
  tree.set_top(tree.add_or("top", {g0, g1}));
  ParameterizedQuantification q(tree);
  q.set_event_probability("e0", constant(0.05));
  q.set_event_probability("e1", 0.01 * parameter("x"));
  q.set_event_probability("shared", constant(0.5));
  const fta::CutSetCollection mcs = fta::minimal_cut_sets(tree);
  const expr::Expr b0 = q.birnbaum_expression(mcs, 0);
  const expr::Expr b1 = q.birnbaum_expression(mcs, 1);
  // Birnbaum of e0 and e1 is P(shared) regardless (symmetric structure);
  // the *shared* event's importance grows with x.
  const expr::Expr b_shared = q.birnbaum_expression(mcs, 2);
  EXPECT_NEAR(b0.evaluate({{"x", 1.0}}), b1.evaluate({{"x", 1.0}}), 1e-12);
  EXPECT_LT(b_shared.evaluate({{"x", 1.0}}),
            b_shared.evaluate({{"x", 8.0}}));
}

TEST(ParameterizedQuantificationTest, HazardDependsOnlyOnItsParameters) {
  // Paper footnote 2: each hazard depends only on a subset of X_1..X_l.
  const CollisionFixture f;
  ParameterizedQuantification q(f.tree);
  q.set_event_probability("OT1", parameter("T1"));
  const auto params = q.hazard_expression().parameters();
  EXPECT_TRUE(params.contains("T1"));
  EXPECT_FALSE(params.contains("T2"));
}

}  // namespace
}  // namespace safeopt::core
