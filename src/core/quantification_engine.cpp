#include "safeopt/core/quantification_engine.h"

#include <utility>

#include "safeopt/bdd/bdd.h"
#include "safeopt/fta/cut_sets.h"
#include "safeopt/mc/monte_carlo.h"
#include "safeopt/support/contracts.h"
#include "safeopt/support/registry.h"

namespace safeopt::core {

std::vector<QuantificationResult> QuantificationEngine::quantify_batch(
    const std::vector<fta::QuantificationInput>& inputs) {
  std::vector<QuantificationResult> results;
  results.reserve(inputs.size());
  for (const fta::QuantificationInput& input : inputs) {
    results.push_back(quantify(input));
  }
  return results;
}

namespace {

/// "fta": the paper's own engine — minimal cut sets (MOCUS, run once at
/// construction) evaluated by the configured probability method. Exact only
/// for inclusion-exclusion under leaf independence; the two bounding methods
/// overestimate (Eq. 1/2 is the first Bonferroni bound).
class CutSetEngine final : public QuantificationEngine {
 public:
  CutSetEngine(const fta::FaultTree& tree, const EngineConfig& config)
      : tree_(tree), config_(config), mcs_(fta::minimal_cut_sets(tree)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "fta";
  }
  [[nodiscard]] EngineCapabilities capabilities() const noexcept override {
    EngineCapabilities caps;
    caps.exact =
        config_.method == fta::ProbabilityMethod::kInclusionExclusion;
    caps.importance = true;
    return caps;
  }
  [[nodiscard]] const fta::FaultTree& tree() const noexcept override {
    return tree_;
  }

  [[nodiscard]] QuantificationResult quantify(
      const fta::QuantificationInput& input) override {
    SAFEOPT_EXPECTS(input.is_valid_for(tree_));
    QuantificationResult result;
    result.probability = fta::top_event_probability(
        mcs_, input, config_.method, config_.combination);
    return result;
  }

  [[nodiscard]] const fta::CutSetCollection& cut_sets() const noexcept {
    return mcs_;
  }

 private:
  const fta::FaultTree& tree_;
  EngineConfig config_;
  fta::CutSetCollection mcs_;
};

/// "bdd": exact Shannon decomposition over the ROBDD compiled once at
/// construction. No approximation and no cut-set blow-up — the
/// linear-in-nodes oracle the other engines are validated against.
class BddEngine final : public QuantificationEngine {
 public:
  BddEngine(const fta::FaultTree& tree, const EngineConfig& /*config*/)
      : tree_(tree), compiled_(bdd::compile(tree)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "bdd";
  }
  [[nodiscard]] EngineCapabilities capabilities() const noexcept override {
    EngineCapabilities caps;
    caps.exact = true;
    return caps;
  }
  [[nodiscard]] const fta::FaultTree& tree() const noexcept override {
    return tree_;
  }

  [[nodiscard]] QuantificationResult quantify(
      const fta::QuantificationInput& input) override {
    SAFEOPT_EXPECTS(input.is_valid_for(tree_));
    QuantificationResult result;
    result.probability = compiled_.probability(input);
    return result;
  }

 private:
  const fta::FaultTree& tree_;
  bdd::CompiledFaultTree compiled_;
};

/// "mc": Monte Carlo estimation straight off the structure function —
/// the model-free cross-check. Deterministic for a fixed config seed; with
/// a pool, trials run as per-chunk jump() streams whose result is
/// independent of the thread count.
class MonteCarloEngine final : public QuantificationEngine {
 public:
  MonteCarloEngine(const fta::FaultTree& tree, const EngineConfig& config)
      : tree_(tree), config_(config) {
    SAFEOPT_EXPECTS(config_.mc_trials >= 1);
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "mc";
  }
  [[nodiscard]] EngineCapabilities capabilities() const noexcept override {
    EngineCapabilities caps;
    caps.sampled = true;
    return caps;
  }
  [[nodiscard]] const fta::FaultTree& tree() const noexcept override {
    return tree_;
  }

  [[nodiscard]] QuantificationResult quantify(
      const fta::QuantificationInput& input) override {
    SAFEOPT_EXPECTS(input.is_valid_for(tree_));
    const mc::MonteCarloResult estimate =
        config_.pool != nullptr
            ? mc::estimate_hazard_probability(tree_, input, config_.mc_trials,
                                              *config_.pool, config_.seed)
            : mc::estimate_hazard_probability(tree_, input, config_.mc_trials,
                                              config_.seed);
    QuantificationResult result;
    result.probability = estimate.estimate;
    result.ci95 = estimate.ci95;
    result.trials = estimate.trials;
    return result;
  }

 private:
  const fta::FaultTree& tree_;
  EngineConfig config_;
};

/// The shared registry scaffolding (support/registry.h), seeded with the
/// three built-in engines on first use.
NameRegistry<EngineRegistry::Factory>& registry() {
  static NameRegistry<EngineRegistry::Factory> instance(
      "quantification engine",
      {{"fta",
        [](const fta::FaultTree& tree, const EngineConfig& config) {
          return std::make_unique<CutSetEngine>(tree, config);
        }},
       {"bdd",
        [](const fta::FaultTree& tree, const EngineConfig& config) {
          return std::make_unique<BddEngine>(tree, config);
        }},
       {"mc", [](const fta::FaultTree& tree, const EngineConfig& config) {
          return std::make_unique<MonteCarloEngine>(tree, config);
        }}});
  return instance;
}

}  // namespace

bool EngineRegistry::add(std::string name, Factory factory) {
  return registry().add(std::move(name), std::move(factory));
}

std::unique_ptr<QuantificationEngine> EngineRegistry::create(
    std::string_view name, const fta::FaultTree& tree,
    const EngineConfig& config) {
  std::unique_ptr<QuantificationEngine> engine =
      registry().find(name)(tree, config);
  SAFEOPT_ENSURES(engine != nullptr);
  return engine;
}

bool EngineRegistry::contains(std::string_view name) {
  return registry().contains(name);
}

std::vector<std::string> EngineRegistry::available() {
  return registry().available();
}

}  // namespace safeopt::core
