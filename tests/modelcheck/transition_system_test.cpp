#include "safeopt/modelcheck/transition_system.h"

#include <gtest/gtest.h>

namespace safeopt::modelcheck {
namespace {

/// A counter that increments by 1 or 2 up to a cap — simple, fully known
/// reachability structure for exercising the checker.
class Counter final : public TransitionSystem {
 public:
  explicit Counter(int cap) : cap_(cap) {}
  State initial() const override { return {0}; }
  std::vector<State> successors(const State& s) const override {
    std::vector<State> next;
    if (s[0] + 1 <= cap_) next.push_back({s[0] + 1});
    if (s[0] + 2 <= cap_) next.push_back({s[0] + 2});
    return next;
  }
  std::string describe(const State& s) const override {
    return "count=" + std::to_string(s[0]);
  }

 private:
  int cap_;
};

TEST(CheckInvariantTest, HoldsOnSafeSystem) {
  const Counter system(10);
  const CheckResult result =
      check_invariant(system, [](const State& s) { return s[0] <= 10; });
  EXPECT_TRUE(result.holds);
  EXPECT_FALSE(result.exhausted_budget);
  EXPECT_EQ(result.states_explored, 11u);  // 0..10
  EXPECT_TRUE(result.counterexample.empty());
}

TEST(CheckInvariantTest, FindsViolationWithTrace) {
  const Counter system(10);
  const CheckResult result =
      check_invariant(system, [](const State& s) { return s[0] != 7; });
  EXPECT_FALSE(result.holds);
  ASSERT_FALSE(result.counterexample.empty());
  EXPECT_EQ(result.counterexample.front()[0], 0);
  EXPECT_EQ(result.counterexample.back()[0], 7);
  // Every step is a real transition (increment by 1 or 2).
  for (std::size_t i = 1; i < result.counterexample.size(); ++i) {
    const int delta =
        result.counterexample[i][0] - result.counterexample[i - 1][0];
    EXPECT_TRUE(delta == 1 || delta == 2);
  }
}

TEST(CheckInvariantTest, BfsFindsShortestCounterexample) {
  const Counter system(10);
  const CheckResult result =
      check_invariant(system, [](const State& s) { return s[0] != 8; });
  // Shortest path to 8 uses four +2 steps: trace length 5 (incl. initial).
  ASSERT_FALSE(result.holds);
  EXPECT_EQ(result.counterexample.size(), 5u);
}

TEST(CheckInvariantTest, ViolatedInitialStateGivesLengthOneTrace) {
  const Counter system(3);
  const CheckResult result =
      check_invariant(system, [](const State& s) { return s[0] != 0; });
  ASSERT_FALSE(result.holds);
  EXPECT_EQ(result.counterexample.size(), 1u);
}

TEST(CheckInvariantTest, BudgetCutoffIsReported) {
  const Counter system(1000000);
  const CheckResult result = check_invariant(
      system, [](const State& s) { return s[0] >= 0; }, 100);
  EXPECT_TRUE(result.holds);  // no violation found...
  EXPECT_TRUE(result.exhausted_budget);  // ...but exploration was cut off
  EXPECT_EQ(result.states_explored, 100u);
}

TEST(FormatTraceTest, RendersOneLinePerStep) {
  const Counter system(4);
  const CheckResult result =
      check_invariant(system, [](const State& s) { return s[0] != 2; });
  const std::string text = format_trace(system, result.counterexample);
  EXPECT_NE(text.find("step 0: count=0"), std::string::npos);
  EXPECT_NE(text.find("count=2"), std::string::npos);
}

}  // namespace
}  // namespace safeopt::modelcheck
