#include "safeopt/opt/multi_start.h"

#include "safeopt/support/contracts.h"
#include "safeopt/support/rng.h"

namespace safeopt::opt {

MultiStart::MultiStart(LocalSolverFactory factory, std::size_t starts,
                       std::uint64_t seed)
    : factory_(std::move(factory)), starts_(starts), seed_(seed) {
  SAFEOPT_EXPECTS(starts >= 1);
  SAFEOPT_EXPECTS(static_cast<bool>(factory_));
}

OptimizationResult MultiStart::minimize(const Problem& problem) const {
  const std::size_t dim = problem.bounds.dimension();
  SAFEOPT_EXPECTS(dim >= 1);
  Rng rng(seed_);

  OptimizationResult best;
  bool first = true;
  for (std::size_t s = 0; s < starts_; ++s) {
    // Start 0 is the box center (the "engineer's default"); the rest are
    // uniform random points in the box.
    std::vector<double> start(dim);
    if (s == 0) {
      start = problem.bounds.center();
    } else {
      for (std::size_t i = 0; i < dim; ++i) {
        start[i] =
            uniform(rng, problem.bounds.lower[i], problem.bounds.upper[i]);
      }
    }
    const std::unique_ptr<Optimizer> solver = factory_(std::move(start));
    SAFEOPT_ASSERT(solver != nullptr);
    OptimizationResult result = solver->minimize(problem);
    const std::size_t combined_evals = best.evaluations + result.evaluations;
    const std::size_t combined_iters = best.iterations + result.iterations;
    if (first || result.value < best.value) {
      best = std::move(result);
      first = false;
    }
    best.evaluations = combined_evals;
    best.iterations = combined_iters;
  }
  best.message = "best of " + std::to_string(starts_) + " starts: " +
                 best.message;
  return best;
}

}  // namespace safeopt::opt
