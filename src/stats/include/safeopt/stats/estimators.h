// Statistical estimators used by the Monte Carlo engine and the discrete-event
// simulator: numerically stable online moments (Welford), confidence intervals
// for means and proportions, and empirical-cdf goodness-of-fit utilities used
// in tests to validate samplers against their analytic distributions.
#ifndef SAFEOPT_STATS_ESTIMATORS_H
#define SAFEOPT_STATS_ESTIMATORS_H

#include <cstdint>
#include <span>
#include <vector>

namespace safeopt::stats {

class Distribution;

/// A two-sided confidence interval [lo, hi] around a point estimate.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  [[nodiscard]] double width() const noexcept { return hi - lo; }
  [[nodiscard]] bool contains(double x) const noexcept {
    return lo <= x && x <= hi;
  }
};

/// Welford's online algorithm for mean and variance; O(1) memory, stable for
/// billions of observations.
class RunningMoments {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance. Precondition: count() >= 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean. Precondition: count() >= 2.
  [[nodiscard]] double standard_error() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Normal-approximation CI for the mean at the given confidence level.
  [[nodiscard]] ConfidenceInterval mean_confidence(double level = 0.95) const;

  /// Merges another accumulator (parallel reduction), Chan et al. formula.
  void merge(const RunningMoments& other) noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Counts Bernoulli successes; provides Wald and Wilson interval estimates.
/// Wilson is preferred for the rare-event probabilities FTA deals in.
class ProportionEstimator {
 public:
  void add(bool success) noexcept;
  /// Folds in a pre-counted batch (e.g. one Monte Carlo chunk evaluated on
  /// another thread). Precondition: successes <= trials.
  void add_batch(std::uint64_t trials, std::uint64_t successes) noexcept {
    n_ += trials;
    k_ += successes;
  }
  [[nodiscard]] std::uint64_t trials() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t successes() const noexcept { return k_; }
  /// Point estimate k/n. Precondition: trials() > 0.
  [[nodiscard]] double estimate() const noexcept;
  /// Wilson score interval; well-behaved even when k is 0 or n.
  [[nodiscard]] ConfidenceInterval wilson(double level = 0.95) const;
  /// Classical Wald interval (for comparison / large-sample use).
  [[nodiscard]] ConfidenceInterval wald(double level = 0.95) const;

 private:
  std::uint64_t n_ = 0;
  std::uint64_t k_ = 0;
};

/// Kolmogorov–Smirnov statistic sup_x |F_empirical(x) − F(x)| of a sample
/// against a reference distribution. The sample is copied and sorted.
[[nodiscard]] double ks_statistic(std::span<const double> sample,
                                  const Distribution& reference);

/// Critical KS value at ~1% significance for sample size n (asymptotic
/// 1.63/sqrt(n)); samples from the correct distribution exceed it with
/// probability ~0.01.
[[nodiscard]] double ks_critical_value_1pct(std::size_t n) noexcept;

}  // namespace safeopt::stats

#endif  // SAFEOPT_STATS_ESTIMATORS_H
