// Constraint probabilities on INHIBIT gates (paper §II-D.1): "the failure of
// a critical cooling unit is only dangerous if the system which has to be
// cooled is working". This example models a reactor cooling train from a
// model file (the ftio text format), shows how the duty-cycle constraint
// changes the quantified risk, and cross-checks the analytics with Monte
// Carlo sampling.
#include <cstdio>

#include "safeopt/fta/cut_sets.h"
#include "safeopt/fta/probability.h"
#include "safeopt/ftio/parser.h"
#include "safeopt/mc/monte_carlo.h"

namespace {

constexpr const char* kModel = R"(
# Overheating of a process unit: cooling failures only matter while the
# process is running (INHIBIT condition 'ProcessRunning').
tree Overheat;
toplevel Overheat_top;
Overheat_top  or CoolingLost SensorBlind;
CoolingLost   inhibit CoolingFailed ProcessRunning;
CoolingFailed 2of3 PumpA PumpB PumpC;   # 2-of-3 redundant pump train
SensorBlind   and TempSensor1 TempSensor2;
PumpA prob = 0.02;
PumpB prob = 0.02;
PumpC prob = 0.02;
TempSensor1 prob = 0.001;
TempSensor2 prob = 0.001;
ProcessRunning condition prob = 0.6;    # duty cycle of the cooled process
)";

}  // namespace

int main() {
  using namespace safeopt;

  const ftio::ParsedFaultTree model = ftio::parse_fault_tree(kModel);
  const fta::FaultTree& tree = model.tree;
  const fta::CutSetCollection mcs = fta::minimal_cut_sets(tree);
  std::printf("minimal cut sets: %s\n\n", mcs.to_string(tree).c_str());

  // Worst case (classical quantitative FTA): constraint forced to 1.
  fta::QuantificationInput worst = model.probabilities;
  worst.set(tree, "ProcessRunning", 1.0);
  const double p_worst = fta::top_event_probability(mcs, worst);

  // With the §II-D.1 refinement: Eq. 2 multiplies the duty cycle in.
  const double p_constrained =
      fta::top_event_probability(mcs, model.probabilities);

  std::printf("P(overheat), worst-case environment:   %.6e\n", p_worst);
  std::printf("P(overheat), 60%% duty-cycle constraint: %.6e\n",
              p_constrained);
  std::printf("  -> the constraint removes %.1f%% of the assessed risk\n\n",
              100.0 * (1.0 - p_constrained / p_worst));

  // Environment scaling: how does risk grow if the process runs more?
  std::printf("duty cycle -> hazard probability (rare-event):\n");
  for (double duty = 0.2; duty <= 1.0; duty += 0.2) {
    fta::QuantificationInput input = model.probabilities;
    input.set(tree, "ProcessRunning", duty);
    std::printf("  %3.0f%%  %.6e\n", 100.0 * duty,
                fta::top_event_probability(mcs, input));
  }

  // Monte Carlo cross-check of the analytic number.
  const auto estimate =
      mc::estimate_hazard_probability(tree, model.probabilities, 2'000'000);
  std::printf(
      "\nMonte Carlo (%llu trials): %.6e, 95%% CI [%.6e, %.6e]\n",
      static_cast<unsigned long long>(estimate.trials), estimate.estimate,
      estimate.ci95.lo, estimate.ci95.hi);
  std::printf("analytic value %s the confidence interval\n",
              estimate.consistent_with(p_constrained) ? "inside" : "OUTSIDE");
  return 0;
}
