// Internal expression-DAG node hierarchy shared by the recursive evaluator
// (expr.cpp) and the tape compiler (compiled.cpp). Not part of the public
// API: the public header only forward-declares detail::Node.
//
// Every concrete node exposes read accessors so the compiler can flatten the
// DAG without widening the virtual interface; the virtual methods implement
// the recursive tree-walk paths (value / forward-mode dual / print).
#ifndef SAFEOPT_EXPR_NODE_H
#define SAFEOPT_EXPR_NODE_H

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "safeopt/expr/expr.h"
#include "safeopt/stats/distribution.h"
#include "safeopt/support/contracts.h"
#include "safeopt/support/strings.h"

namespace safeopt::expr::detail {

enum class NodeKind { kConst, kParam, kBinary, kUnary, kPow, kCdf, kFunction };
enum class BinaryOp { kAdd, kSub, kMul, kDiv, kMin, kMax };
enum class UnaryOp { kNeg, kExp, kLog, kSqrt };

class Node {
 public:
  explicit Node(NodeKind kind) : kind_(kind) {}
  virtual ~Node() = default;
  [[nodiscard]] NodeKind kind() const noexcept { return kind_; }
  [[nodiscard]] virtual double value(const ParameterAssignment& env) const = 0;
  [[nodiscard]] virtual Dual dual(const ParameterAssignment& env,
                                  const std::vector<std::string>& wrt)
      const = 0;
  virtual void collect_parameters(std::set<std::string>& out) const = 0;
  [[nodiscard]] virtual std::string print() const = 0;

 private:
  NodeKind kind_;
};

class ConstNode final : public Node {
 public:
  explicit ConstNode(double c) : Node(NodeKind::kConst), c_(c) {}
  double value(const ParameterAssignment&) const override { return c_; }
  Dual dual(const ParameterAssignment&,
            const std::vector<std::string>& wrt) const override {
    return Dual(c_, wrt.size());
  }
  void collect_parameters(std::set<std::string>&) const override {}
  std::string print() const override { return format_double(c_); }
  [[nodiscard]] double constant() const noexcept { return c_; }

 private:
  double c_;
};

class ParamNode final : public Node {
 public:
  explicit ParamNode(std::string name)
      : Node(NodeKind::kParam), name_(std::move(name)) {}
  double value(const ParameterAssignment& env) const override {
    return env.get(name_);
  }
  Dual dual(const ParameterAssignment& env,
            const std::vector<std::string>& wrt) const override {
    const double v = env.get(name_);
    const auto it = std::find(wrt.begin(), wrt.end(), name_);
    if (it == wrt.end()) return Dual(v, wrt.size());
    return Dual::variable(v, wrt.size(),
                          static_cast<std::size_t>(it - wrt.begin()));
  }
  void collect_parameters(std::set<std::string>& out) const override {
    out.insert(name_);
  }
  std::string print() const override { return name_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

class BinaryNode final : public Node {
 public:
  BinaryNode(BinaryOp op, std::shared_ptr<const Node> a,
             std::shared_ptr<const Node> b)
      : Node(NodeKind::kBinary), op_(op), a_(std::move(a)), b_(std::move(b)) {}

  double value(const ParameterAssignment& env) const override {
    const double x = a_->value(env);
    const double y = b_->value(env);
    switch (op_) {
      case BinaryOp::kAdd: return x + y;
      case BinaryOp::kSub: return x - y;
      case BinaryOp::kMul: return x * y;
      case BinaryOp::kDiv: return x / y;
      case BinaryOp::kMin: return std::min(x, y);
      case BinaryOp::kMax: return std::max(x, y);
    }
    SAFEOPT_ASSERT(false);
    return 0.0;
  }

  Dual dual(const ParameterAssignment& env,
            const std::vector<std::string>& wrt) const override {
    const Dual x = a_->dual(env, wrt);
    const Dual y = b_->dual(env, wrt);
    switch (op_) {
      case BinaryOp::kAdd: return x + y;
      case BinaryOp::kSub: return x - y;
      case BinaryOp::kMul: return x * y;
      case BinaryOp::kDiv: return x / y;
      case BinaryOp::kMin: return min(x, y);
      case BinaryOp::kMax: return max(x, y);
    }
    SAFEOPT_ASSERT(false);
    return Dual(0.0, wrt.size());
  }

  void collect_parameters(std::set<std::string>& out) const override {
    a_->collect_parameters(out);
    b_->collect_parameters(out);
  }

  std::string print() const override {
    switch (op_) {
      case BinaryOp::kAdd: return concat("(", a_->print(), " + ", b_->print(), ")");
      case BinaryOp::kSub: return concat("(", a_->print(), " - ", b_->print(), ")");
      case BinaryOp::kMul: return concat("(", a_->print(), " * ", b_->print(), ")");
      case BinaryOp::kDiv: return concat("(", a_->print(), " / ", b_->print(), ")");
      case BinaryOp::kMin: return concat("min(", a_->print(), ", ", b_->print(), ")");
      case BinaryOp::kMax: return concat("max(", a_->print(), ", ", b_->print(), ")");
    }
    SAFEOPT_ASSERT(false);
    return {};
  }

  [[nodiscard]] BinaryOp op() const noexcept { return op_; }
  [[nodiscard]] const std::shared_ptr<const Node>& lhs() const noexcept {
    return a_;
  }
  [[nodiscard]] const std::shared_ptr<const Node>& rhs() const noexcept {
    return b_;
  }

 private:
  BinaryOp op_;
  std::shared_ptr<const Node> a_;
  std::shared_ptr<const Node> b_;
};

class UnaryNode final : public Node {
 public:
  UnaryNode(UnaryOp op, std::shared_ptr<const Node> a)
      : Node(NodeKind::kUnary), op_(op), a_(std::move(a)) {}

  double value(const ParameterAssignment& env) const override {
    const double x = a_->value(env);
    switch (op_) {
      case UnaryOp::kNeg: return -x;
      case UnaryOp::kExp: return std::exp(x);
      case UnaryOp::kLog: return std::log(x);
      case UnaryOp::kSqrt: return std::sqrt(x);
    }
    SAFEOPT_ASSERT(false);
    return 0.0;
  }

  Dual dual(const ParameterAssignment& env,
            const std::vector<std::string>& wrt) const override {
    const Dual x = a_->dual(env, wrt);
    switch (op_) {
      case UnaryOp::kNeg: return -x;
      case UnaryOp::kExp: return exp(x);
      case UnaryOp::kLog: return log(x);
      case UnaryOp::kSqrt: return sqrt(x);
    }
    SAFEOPT_ASSERT(false);
    return Dual(0.0, wrt.size());
  }

  void collect_parameters(std::set<std::string>& out) const override {
    a_->collect_parameters(out);
  }

  std::string print() const override {
    switch (op_) {
      case UnaryOp::kNeg: return concat("(-", a_->print(), ")");
      case UnaryOp::kExp: return concat("exp(", a_->print(), ")");
      case UnaryOp::kLog: return concat("log(", a_->print(), ")");
      case UnaryOp::kSqrt: return concat("sqrt(", a_->print(), ")");
    }
    SAFEOPT_ASSERT(false);
    return {};
  }

  [[nodiscard]] UnaryOp op() const noexcept { return op_; }
  [[nodiscard]] const std::shared_ptr<const Node>& operand() const noexcept {
    return a_;
  }

 private:
  UnaryOp op_;
  std::shared_ptr<const Node> a_;
};

class PowNode final : public Node {
 public:
  PowNode(std::shared_ptr<const Node> a, double p)
      : Node(NodeKind::kPow), a_(std::move(a)), p_(p) {}
  double value(const ParameterAssignment& env) const override {
    return std::pow(a_->value(env), p_);
  }
  Dual dual(const ParameterAssignment& env,
            const std::vector<std::string>& wrt) const override {
    return pow(a_->dual(env, wrt), p_);
  }
  void collect_parameters(std::set<std::string>& out) const override {
    a_->collect_parameters(out);
  }
  std::string print() const override {
    return concat("pow(", a_->print(), ", ", format_double(p_), ")");
  }

  [[nodiscard]] const std::shared_ptr<const Node>& operand() const noexcept {
    return a_;
  }
  [[nodiscard]] double exponent() const noexcept { return p_; }

 private:
  std::shared_ptr<const Node> a_;
  double p_;
};

/// F(arg) or 1 − F(arg) for a distribution F; derivative is ±pdf(arg).
class CdfNode final : public Node {
 public:
  CdfNode(std::shared_ptr<const stats::Distribution> dist,
          std::shared_ptr<const Node> arg, bool survival)
      : Node(NodeKind::kCdf),
        dist_(std::move(dist)),
        arg_(std::move(arg)),
        survival_(survival) {
    SAFEOPT_EXPECTS(dist_ != nullptr);
  }

  double value(const ParameterAssignment& env) const override {
    const double x = arg_->value(env);
    // survival() is cancellation-free deep in the tail, where 1 − cdf()
    // would round to zero — the regime hazard probabilities live in.
    return survival_ ? dist_->survival(x) : dist_->cdf(x);
  }

  Dual dual(const ParameterAssignment& env,
            const std::vector<std::string>& wrt) const override {
    const Dual x = arg_->dual(env, wrt);
    const double density = dist_->pdf(x.value());
    return survival_ ? x.chain(dist_->survival(x.value()), -density)
                     : x.chain(dist_->cdf(x.value()), density);
  }

  void collect_parameters(std::set<std::string>& out) const override {
    arg_->collect_parameters(out);
  }

  std::string print() const override {
    const std::string fn = survival_ ? "survival" : "cdf";
    return concat(fn, "[", dist_->name(), "](", arg_->print(), ")");
  }

  [[nodiscard]] const std::shared_ptr<const stats::Distribution>& distribution()
      const noexcept {
    return dist_;
  }
  [[nodiscard]] const std::shared_ptr<const Node>& operand() const noexcept {
    return arg_;
  }
  [[nodiscard]] bool is_survival() const noexcept { return survival_; }

 private:
  std::shared_ptr<const stats::Distribution> dist_;
  std::shared_ptr<const Node> arg_;
  bool survival_;
};

/// Opaque numeric function with optional analytic derivative.
class FunctionNode final : public Node {
 public:
  FunctionNode(std::string name, std::function<double(double)> fn,
               std::function<double(double)> derivative,
               std::shared_ptr<const Node> arg)
      : Node(NodeKind::kFunction),
        name_(std::move(name)),
        fn_(std::move(fn)),
        derivative_(std::move(derivative)),
        arg_(std::move(arg)) {
    SAFEOPT_EXPECTS(static_cast<bool>(fn_));
  }

  double value(const ParameterAssignment& env) const override {
    return fn_(arg_->value(env));
  }

  Dual dual(const ParameterAssignment& env,
            const std::vector<std::string>& wrt) const override {
    const Dual x = arg_->dual(env, wrt);
    const double f = fn_(x.value());
    return x.chain(f, derivative_at(x.value()));
  }

  void collect_parameters(std::set<std::string>& out) const override {
    arg_->collect_parameters(out);
  }

  std::string print() const override {
    return concat(name_, "(", arg_->print(), ")");
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::function<double(double)>& fn() const noexcept {
    return fn_;
  }
  [[nodiscard]] const std::shared_ptr<const Node>& operand() const noexcept {
    return arg_;
  }
  /// Analytic derivative when provided, otherwise the same central finite
  /// difference the dual path uses — so tape gradients match tree gradients.
  [[nodiscard]] double derivative_at(double x) const {
    if (derivative_) return derivative_(x);
    const double h = 1e-6 * std::max(1.0, std::abs(x));
    return (fn_(x + h) - fn_(x - h)) / (2.0 * h);
  }

 private:
  std::string name_;
  std::function<double(double)> fn_;
  std::function<double(double)> derivative_;
  std::shared_ptr<const Node> arg_;
};

}  // namespace safeopt::expr::detail

#endif  // SAFEOPT_EXPR_NODE_H
