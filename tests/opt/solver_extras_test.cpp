// CLI-style extras parsing: `--extra starts=16` maps onto the typed
// SolverConfig extras, and count_or-grade validation rejects bad values
// (negative / NaN / fractional) with messages naming the key.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "safeopt/opt/solver.h"

namespace safeopt::opt {
namespace {

TEST(SolverExtrasTest, NumericValuesBecomeNumericExtras) {
  SolverConfig config;
  config.set_extra_argument("starts=16")
      .set_extra_argument("tolerance_scale=1e-3")
      .set_extra_argument("offset=-4");
  EXPECT_EQ(config.count_or("starts", 0), 16u);
  EXPECT_DOUBLE_EQ(config.number_or("tolerance_scale", 0.0), 1e-3);
  EXPECT_DOUBLE_EQ(config.number_or("offset", 0.0), -4.0);
}

TEST(SolverExtrasTest, NonNumericValuesBecomeStringExtras) {
  SolverConfig config;
  config.set_extra_argument("inner=nelder_mead");
  EXPECT_EQ(config.string_or("inner", ""), "nelder_mead");
  // And the key is visible through has() like any set() extra.
  EXPECT_TRUE(config.has("inner"));
}

TEST(SolverExtrasTest, NumericLookingTyposAreRejectedNotStored) {
  // "4x" must not silently become a string extra that count_or ignores.
  SolverConfig config;
  for (const char* bad : {"starts=4x", "starts=1_000", "starts=1O",
                          "offset=-4q", "scale=.5.5"}) {
    try {
      config.set_extra_argument(bad);
      FAIL() << "expected rejection of \"" << bad << "\"";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("malformed numeric value"),
                std::string::npos)
          << error.what();
    }
  }
  EXPECT_FALSE(config.has("starts"));
}

TEST(SolverExtrasTest, MalformedArgumentsAreRejected) {
  SolverConfig config;
  for (const char* bad : {"starts", "=16", "starts=", ""}) {
    try {
      config.set_extra_argument(bad);
      FAIL() << "expected rejection of \"" << bad << "\"";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("key=value"),
                std::string::npos)
          << error.what();
    }
  }
}

struct BadCountCase {
  const char* argument;
  const char* key;
};

class SolverExtrasBadCounts : public ::testing::TestWithParam<BadCountCase> {};

TEST_P(SolverExtrasBadCounts, CountConsumptionRejectsWithTheKeyName) {
  // The value parses as a double, so it is *stored*; the count_or
  // consumption contract rejects it where a solver would read it.
  SolverConfig config;
  config.set_extra_argument(GetParam().argument);
  try {
    (void)config.count_or(GetParam().key, 1);
    FAIL() << GetParam().argument;
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(GetParam().key), std::string::npos) << what;
    EXPECT_NE(what.find("non-negative integer"), std::string::npos) << what;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SolverExtrasBadCounts,
    ::testing::Values(BadCountCase{"starts=-3", "starts"},
                      BadCountCase{"starts=2.5", "starts"},
                      BadCountCase{"starts=nan", "starts"},
                      BadCountCase{"starts=inf", "starts"},
                      BadCountCase{"generations=1e300", "generations"}));

TEST(SolverExtrasTest, RejectedCountsFailTheSolveWithAClearMessage) {
  // End to end: multi_start consumes "starts" via count_or, so a bad CLI
  // flag surfaces from solve() with the key in the message.
  Problem problem;
  problem.bounds = Box::interval(0.0, 1.0);
  problem.objective = [](std::span<const double> x) { return x[0] * x[0]; };
  SolverConfig config;
  config.set_extra_argument("starts=-3");
  const auto solver = SolverRegistry::create("multi_start");
  try {
    (void)solver->solve(problem, config);
    FAIL();
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("starts"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace safeopt::opt
