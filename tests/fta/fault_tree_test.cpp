#include "safeopt/fta/fault_tree.h"

#include <gtest/gtest.h>

namespace safeopt::fta {
namespace {

/// The paper's Fig. 2 fragment: Collision <- OR(driver ignores signal,
/// Signal not on <- OR(signal out of order, signal not activated)).
FaultTree fig2_tree() {
  FaultTree tree("Collision");
  const NodeId ignores = tree.add_basic_event("OHVIgnoresSignal");
  const NodeId out_of_order = tree.add_basic_event("SignalOutOfOrder");
  const NodeId not_activated = tree.add_basic_event("SignalNotActivated");
  const NodeId not_on =
      tree.add_or("SignalNotOn", {out_of_order, not_activated});
  const NodeId top = tree.add_or("Collision_top", {ignores, not_on});
  tree.set_top(top);
  return tree;
}

TEST(FaultTreeTest, BuildsFig2Structure) {
  const FaultTree tree = fig2_tree();
  EXPECT_EQ(tree.name(), "Collision");
  EXPECT_EQ(tree.basic_event_count(), 3u);
  EXPECT_EQ(tree.condition_count(), 0u);
  EXPECT_EQ(tree.gate_count(), 2u);
  EXPECT_EQ(tree.node_count(), 5u);
  EXPECT_TRUE(tree.has_top());
  EXPECT_EQ(tree.node_name(tree.top()), "Collision_top");
  EXPECT_TRUE(tree.validate().empty());
}

TEST(FaultTreeTest, FindByName) {
  const FaultTree tree = fig2_tree();
  ASSERT_TRUE(tree.find("SignalNotOn").has_value());
  EXPECT_EQ(tree.kind(*tree.find("SignalNotOn")), NodeKind::kGate);
  EXPECT_EQ(tree.gate_type(*tree.find("SignalNotOn")), GateType::kOr);
  EXPECT_FALSE(tree.find("NoSuchNode").has_value());
}

TEST(FaultTreeTest, OrdinalsFollowCreationOrder) {
  const FaultTree tree = fig2_tree();
  EXPECT_EQ(tree.basic_event_ordinal(*tree.find("OHVIgnoresSignal")), 0u);
  EXPECT_EQ(tree.basic_event_ordinal(*tree.find("SignalOutOfOrder")), 1u);
  EXPECT_EQ(tree.basic_event_ordinal(*tree.find("SignalNotActivated")), 2u);
}

TEST(FaultTreeEvaluateTest, OrGate) {
  const FaultTree tree = fig2_tree();
  EXPECT_FALSE(tree.evaluate({false, false, false}));
  EXPECT_TRUE(tree.evaluate({true, false, false}));
  EXPECT_TRUE(tree.evaluate({false, true, false}));
  EXPECT_TRUE(tree.evaluate({false, false, true}));
  EXPECT_TRUE(tree.evaluate({true, true, true}));
}

TEST(FaultTreeEvaluateTest, AndGate) {
  FaultTree tree("and");
  const NodeId a = tree.add_basic_event("a");
  const NodeId b = tree.add_basic_event("b");
  tree.set_top(tree.add_and("top", {a, b}));
  EXPECT_FALSE(tree.evaluate({false, false}));
  EXPECT_FALSE(tree.evaluate({true, false}));
  EXPECT_FALSE(tree.evaluate({false, true}));
  EXPECT_TRUE(tree.evaluate({true, true}));
}

TEST(FaultTreeEvaluateTest, KofNGate) {
  FaultTree tree("vote");
  const NodeId a = tree.add_basic_event("a");
  const NodeId b = tree.add_basic_event("b");
  const NodeId c = tree.add_basic_event("c");
  tree.set_top(tree.add_k_of_n("top", 2, {a, b, c}));
  EXPECT_FALSE(tree.evaluate({true, false, false}));
  EXPECT_TRUE(tree.evaluate({true, true, false}));
  EXPECT_TRUE(tree.evaluate({true, false, true}));
  EXPECT_TRUE(tree.evaluate({true, true, true}));
  EXPECT_FALSE(tree.evaluate({false, false, false}));
}

TEST(FaultTreeEvaluateTest, XorGateIsExactlyOne) {
  FaultTree tree("xor");
  const NodeId a = tree.add_basic_event("a");
  const NodeId b = tree.add_basic_event("b");
  const NodeId c = tree.add_basic_event("c");
  tree.set_top(tree.add_xor("top", {a, b, c}));
  EXPECT_TRUE(tree.evaluate({true, false, false}));
  EXPECT_FALSE(tree.evaluate({true, true, false}));
  EXPECT_FALSE(tree.evaluate({true, true, true}));
  EXPECT_FALSE(tree.evaluate({false, false, false}));
}

TEST(FaultTreeEvaluateTest, InhibitGateRequiresCondition) {
  FaultTree tree("inhibit");
  const NodeId cause = tree.add_basic_event("cooling_failure");
  const NodeId condition = tree.add_condition("system_running");
  tree.set_top(tree.add_inhibit("top", cause, condition));
  EXPECT_FALSE(tree.evaluate({false}, {false}));
  EXPECT_FALSE(tree.evaluate({true}, {false}));
  EXPECT_FALSE(tree.evaluate({false}, {true}));
  EXPECT_TRUE(tree.evaluate({true}, {true}));
}

TEST(FaultTreeEvaluateTest, SharedSubtreeEvaluatesOnce) {
  // Diamond: top = AND(or1, or2), both ORs share event s.
  FaultTree tree("diamond");
  const NodeId s = tree.add_basic_event("shared");
  const NodeId a = tree.add_basic_event("a");
  const NodeId b = tree.add_basic_event("b");
  const NodeId or1 = tree.add_or("or1", {s, a});
  const NodeId or2 = tree.add_or("or2", {s, b});
  tree.set_top(tree.add_and("top", {or1, or2}));
  EXPECT_TRUE(tree.evaluate({true, false, false}));   // shared alone suffices
  EXPECT_FALSE(tree.evaluate({false, true, false}));  // a alone does not
  EXPECT_TRUE(tree.evaluate({false, true, true}));
}

TEST(FaultTreeValidateTest, ReportsMissingTop) {
  FaultTree tree("no-top");
  tree.add_basic_event("a");
  const auto problems = tree.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("no top event"), std::string::npos);
}

TEST(FaultTreeValidateTest, ReportsUnreachableNodes) {
  FaultTree tree("unreachable");
  const NodeId a = tree.add_basic_event("a");
  tree.add_basic_event("orphan");
  tree.set_top(a);
  const auto problems = tree.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("orphan"), std::string::npos);
}

TEST(FaultTreeValidateTest, ReportsConditionOutsideInhibit) {
  FaultTree tree("bad-cond");
  const NodeId a = tree.add_basic_event("a");
  const NodeId c = tree.add_condition("c");
  tree.set_top(tree.add_or("top", {a, c}));
  const auto problems = tree.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("outside an INHIBIT"), std::string::npos);
}

TEST(FaultTreeValidateTest, CleanTreeHasNoProblems) {
  FaultTree tree("clean");
  const NodeId a = tree.add_basic_event("a");
  const NodeId c = tree.add_condition("c");
  tree.set_top(tree.add_inhibit("top", a, c));
  EXPECT_TRUE(tree.validate().empty());
}

TEST(GateTypeTest, ToString) {
  EXPECT_EQ(to_string(GateType::kAnd), "AND");
  EXPECT_EQ(to_string(GateType::kOr), "OR");
  EXPECT_EQ(to_string(GateType::kKofN), "KOFN");
  EXPECT_EQ(to_string(GateType::kXor), "XOR");
  EXPECT_EQ(to_string(GateType::kInhibit), "INHIBIT");
}

TEST(FaultTreeDeathTest, DuplicateNamesAreRejected) {
  FaultTree tree("dup");
  tree.add_basic_event("a");
  EXPECT_DEATH(tree.add_basic_event("a"), "precondition");
}

TEST(FaultTreeDeathTest, TopMustNotBeCondition) {
  FaultTree tree("cond-top");
  const NodeId c = tree.add_condition("c");
  EXPECT_DEATH(tree.set_top(c), "precondition");
}

TEST(FaultTreeDeathTest, InhibitConditionMustBeConditionLeaf) {
  FaultTree tree("bad-inhibit");
  const NodeId a = tree.add_basic_event("a");
  const NodeId b = tree.add_basic_event("b");
  EXPECT_DEATH(tree.add_inhibit("g", a, b), "precondition");
}

}  // namespace
}  // namespace safeopt::fta
