#include "safeopt/core/parameter_space.h"

#include <gtest/gtest.h>

namespace safeopt::core {
namespace {

ParameterSpace timers() {
  return ParameterSpace{
      {"T1", 5.0, 40.0, "min", "runtime of timer 1"},
      {"T2", 5.0, 40.0, "min", "runtime of timer 2"}};
}

TEST(ParameterSpaceTest, SizeAndAccess) {
  const ParameterSpace space = timers();
  ASSERT_EQ(space.size(), 2u);
  EXPECT_EQ(space[0].name, "T1");
  EXPECT_EQ(space[1].name, "T2");
  EXPECT_DOUBLE_EQ(space[0].lower, 5.0);
  EXPECT_DOUBLE_EQ(space[1].upper, 40.0);
  EXPECT_EQ(space[0].unit, "min");
}

TEST(ParameterSpaceTest, IndexOf) {
  const ParameterSpace space = timers();
  EXPECT_EQ(space.index_of("T1"), 0u);
  EXPECT_EQ(space.index_of("T2"), 1u);
  EXPECT_FALSE(space.index_of("T3").has_value());
}

TEST(ParameterSpaceTest, NamesInOrder) {
  const auto names = timers().names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "T1");
  EXPECT_EQ(names[1], "T2");
}

TEST(ParameterSpaceTest, BoxMatchesIntervals) {
  const opt::Box box = timers().box();
  ASSERT_EQ(box.dimension(), 2u);
  EXPECT_DOUBLE_EQ(box.lower[0], 5.0);
  EXPECT_DOUBLE_EQ(box.upper[0], 40.0);
  EXPECT_DOUBLE_EQ(box.lower[1], 5.0);
  EXPECT_DOUBLE_EQ(box.upper[1], 40.0);
}

TEST(ParameterSpaceTest, AssignmentRoundTrip) {
  const ParameterSpace space = timers();
  const std::vector<double> values{19.0, 15.6};
  const expr::ParameterAssignment assignment = space.assignment(values);
  EXPECT_DOUBLE_EQ(assignment.get("T1"), 19.0);
  EXPECT_DOUBLE_EQ(assignment.get("T2"), 15.6);
  EXPECT_EQ(space.values(assignment), values);
}

TEST(ParameterSpaceDeathTest, RejectsDuplicates) {
  ParameterSpace space;
  space.add({"T1", 0.0, 1.0, "", ""});
  EXPECT_DEATH(space.add({"T1", 0.0, 2.0, "", ""}), "precondition");
}

TEST(ParameterSpaceDeathTest, RejectsInvertedBounds) {
  ParameterSpace space;
  EXPECT_DEATH(space.add({"bad", 2.0, 1.0, "", ""}), "precondition");
}

}  // namespace
}  // namespace safeopt::core
