// AnalysisGraph — the explicit pass dependency graph behind the service
// (ROADMAP: "shared BDD/MCS artifacts ... cached and reused"):
//
//   parse ──► compile ──► [preprocess ─► MCS ─► BDD] ──► quantify ──► optimize
//     │                                                      ▲
//     └──────────────────► validate                          │
//                                            (same compiled study artifact)
//
// Each named pass produces an immutable artifact stored in an ArtifactCache
// under a content-derived key:
//
//   parse:<raw-text hash>                 → ParsedArtifact (document +
//                                           canonical hash)
//   compile:<canonical>:<option fp>      → CompiledArtifact (core::Study
//                                           with compiled tapes; the
//                                           preprocess/MCS/BDD sub-passes
//                                           live inside its lazily built
//                                           engines, so their results are
//                                           owned by — and amortized with —
//                                           this artifact)
//   quantify:<compile key fp>:<at fp>    → QuantifyOutcome
//   optimize:<compile key fp>            → OptimizeOutcome
//   validate:<canonical>                 → ValidateOutcome
//
// Keying on ftio::canonical_hash means whitespace/comment/path variants of
// one document share every artifact; any semantic change invalidates from
// `compile` down while `parse` of the identical raw text still hits.
//
// Concurrency: a CompiledArtifact's study is single-threaded by contract
// (lazy engines, mutable tape caches), so each artifact carries a mutex and
// requests serialize per artifact while different documents run in
// parallel. Per-request deadline/cancellation flows through the artifact's
// RequestControlSlot: the study is built once against the slot's stable
// ExecutionControl, and each request swaps its own control in for the
// duration of its (mutex-held) turn.
#ifndef SAFEOPT_SERVE_ANALYSIS_GRAPH_H
#define SAFEOPT_SERVE_ANALYSIS_GRAPH_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "safeopt/ftio/study_document.h"
#include "safeopt/serve/artifact_cache.h"
#include "safeopt/serve/response_json.h"
#include "safeopt/support/execution.h"

namespace safeopt::serve {

/// Per-request analysis options — the HTTP mirror of the CLI's
/// --solver/--engine/--extra/--engine-opt/--seed/--at surface, layered on
/// top of the document's own selections with identical semantics.
struct AnalysisOptions {
  /// Reported as the response's "model" field (the CLI prints the file
  /// path here); not part of any cache key.
  std::string model;
  std::optional<std::string> engine;
  std::vector<std::string> engine_options;  // KEY=VALUE
  std::optional<std::string> solver;
  std::vector<std::string> extras;  // KEY=VALUE solver extras
  std::optional<std::uint64_t> seed;
  std::vector<std::pair<std::string, double>> at;
};

/// A stable ExecutionControl that forwards to the *current request's*
/// control. Engines capture `config.control` when the compiled study is
/// built — once, at artifact creation — while requests come and go; the
/// slot is the indirection that keeps the captured pointer valid forever
/// and still lets every request bring its own deadline and disconnect
/// probe. set()/clear() happen under the owning artifact's mutex, so at
/// most one request occupies the slot at a time.
class RequestControlSlot {
 public:
  RequestControlSlot();
  RequestControlSlot(const RequestControlSlot&) = delete;
  RequestControlSlot& operator=(const RequestControlSlot&) = delete;

  /// The stable control to bake into engine/solver configs.
  [[nodiscard]] const ExecutionControl* control() const noexcept {
    return &control_;
  }

  void set(const ExecutionControl* request) noexcept {
    request_.store(request, std::memory_order_release);
  }
  void clear() noexcept { set(nullptr); }

 private:
  ExecutionControl control_;
  std::atomic<const ExecutionControl*> request_{nullptr};
};

/// One row of the pass-graph description (introspection, /v1/stats, docs).
struct PassDesc {
  std::string_view name;
  std::string_view produces;
  std::string_view depends_on;  // comma-separated upstream passes
};

/// The graph's pass list in topological order.
[[nodiscard]] const std::vector<PassDesc>& analysis_passes();

/// The deterministic, injective rendering of the options that change what
/// `compile` produces — part of the compile/quantify cache keys. Every
/// component is length-prefixed so delimiter-containing option values can
/// never alias two distinct configurations to one key.
[[nodiscard]] std::string option_fingerprint(const AnalysisOptions& options);

/// Structural validation beyond the parser's checks — the single problems
/// list behind both `safeopt validate` and POST /v1/validate: per-tree
/// structural issues, a missing-hazards check, and a dry assembly of the
/// document's selections (and, for parameterized documents, the Study).
[[nodiscard]] std::vector<std::string> validate_problems(
    const ftio::StudyDocument& doc);

class AnalysisGraph {
 public:
  explicit AnalysisGraph(std::size_t cache_bytes);

  /// Quantifies every hazard of `document_text` at the requested point
  /// (default: the box center, exactly like the CLI) and returns the
  /// response body — byte-identical to `safeopt quantify --json`. Throws
  /// ftio::ParseError / std::invalid_argument / safeopt::Error; the server
  /// maps those onto HTTP statuses.
  [[nodiscard]] std::string quantify(const std::string& document_text,
                                     const AnalysisOptions& options,
                                     const ExecutionControl* control);

  /// Runs the document's optimization study; body matches
  /// `safeopt run --json`.
  [[nodiscard]] std::string optimize(const std::string& document_text,
                                     const AnalysisOptions& options,
                                     const ExecutionControl* control);

  /// Structural validation; body matches `safeopt validate --json`.
  [[nodiscard]] std::string validate(const std::string& document_text,
                                     const AnalysisOptions& options);

  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }

 private:
  struct ParsedArtifact;
  struct CompiledArtifact;
  struct QuantifyOutcome;
  struct OptimizeOutcome;
  struct ValidateOutcome;

  std::shared_ptr<const ParsedArtifact> parse_pass(
      const std::string& document_text);
  std::shared_ptr<const CompiledArtifact> compile_pass(
      const std::shared_ptr<const ParsedArtifact>& parsed,
      const AnalysisOptions& options, std::string* key_fingerprint);

  ArtifactCache cache_;
};

}  // namespace safeopt::serve

#endif  // SAFEOPT_SERVE_ANALYSIS_GRAPH_H
