// Test-only helper: deterministic fault injection for the cooperative
// execution-control layer (support/execution.h). Real deadlines depend on
// the wall clock and scheduler; these controls instead fire on the Nth
// status poll (via the ExecutionControl::probe test seam), immediately
// (already-expired deadline, pre-cancelled token), or never — so the abort
// paths of the BDD compiler, the adaptive Monte Carlo loop, the solvers and
// the preprocessing pipeline can be pinned down to the exact checkpoint
// without sleeping or racing in tests.
#ifndef SAFEOPT_TESTS_TESTUTIL_FAULT_INJECTOR_H
#define SAFEOPT_TESTS_TESTUTIL_FAULT_INJECTOR_H

#include <atomic>
#include <cstddef>
#include <memory>

#include "safeopt/support/execution.h"

namespace safeopt::testutil {

/// Factory for ExecutionControls with scripted failure behaviour. The
/// injector tracks how often its scripted controls were polled, so a test
/// can also assert that a checkpoint is actually reached (or reached the
/// expected number of times).
class FaultInjector {
 public:
  /// A control whose status() reports `status` from the (polls+1)-th poll
  /// on: polls == 0 fires immediately, polls == 2 lets exactly two
  /// checkpoints pass. Poll counting is atomic — safe to poll from pool
  /// workers.
  [[nodiscard]] ExecutionControl fire_after_polls(std::size_t polls,
                                                  ExecutionStatus status) {
    auto counter = polls_;
    ExecutionControl control;
    control.probe = [counter, polls, status] {
      return counter->fetch_add(1, std::memory_order_relaxed) >= polls
                 ? status
                 : ExecutionStatus::kRunning;
    };
    return control;
  }

  /// A control that is polled (and counted) but never fires.
  [[nodiscard]] ExecutionControl never_fires() {
    auto counter = polls_;
    ExecutionControl control;
    control.probe = [counter] {
      counter->fetch_add(1, std::memory_order_relaxed);
      return ExecutionStatus::kRunning;
    };
    return control;
  }

  /// Total status() polls observed across every control this injector made.
  [[nodiscard]] std::size_t polls() const noexcept {
    return polls_->load(std::memory_order_relaxed);
  }

  /// A control whose deadline lies in the past — every poll reports
  /// kDeadlineExceeded from the start.
  [[nodiscard]] static ExecutionControl expired_deadline() {
    return ExecutionControl(Deadline::already_expired());
  }

  /// A control whose token is already cancelled. The token inside the
  /// returned control is live: copies share it, late request_cancel() on a
  /// copy is visible everywhere.
  [[nodiscard]] static ExecutionControl cancelled() {
    ExecutionControl control;
    control.token.request_cancel();
    return control;
  }

 private:
  std::shared_ptr<std::atomic<std::size_t>> polls_ =
      std::make_shared<std::atomic<std::size_t>>(0);
};

}  // namespace safeopt::testutil

#endif  // SAFEOPT_TESTS_TESTUTIL_FAULT_INJECTOR_H
