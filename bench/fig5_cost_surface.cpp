// Experiment: paper Fig. 5 — "The cost function around its minimum".
// Regenerates the surface f_cost(T1, T2) over T1 ∈ [15, 20] × T2 ∈ [15, 18]
// (the exact axes of the figure), prints it as CSV and as an ASCII relief,
// and reports the argmin found by grid zoom and by Nelder-Mead.
//
// Paper values to compare against: surface band ≈ 0.0046 .. 0.0047,
// minimum near (19, 15.6).
#include <cstdio>

#include "safeopt/elbtunnel/elbtunnel_model.h"
#include "safeopt/opt/grid_search.h"

int main() {
  using namespace safeopt;
  const elbtunnel::ElbtunnelModel model;
  const core::SafetyOptimizer optimizer = model.optimizer();
  const opt::Problem problem = optimizer.problem();

  std::printf("=== Fig. 5: cost surface around the minimum ===\n\n");

  // The figure's plotting box, tabulated through the batched compiled path
  // (bitwise-identical to per-point recursive evaluation).
  opt::Problem figure_problem = problem;
  figure_problem.bounds = opt::Box({15.0, 15.0}, {20.0, 18.0});
  constexpr std::size_t kNx = 11;  // T1 axis
  constexpr std::size_t kNy = 13;  // T2 axis
  const opt::GridTable table = opt::tabulate_2d(figure_problem, kNx, kNy);

  std::printf("--- surface CSV (rows: T1, columns: T2) ---\nT1\\T2");
  for (std::size_t j = 0; j < table.ys.size(); ++j) {
    std::printf(",%.2f", table.ys[j]);
  }
  std::printf("\n");
  for (std::size_t i = 0; i < table.xs.size(); ++i) {
    std::printf("%.1f", table.xs[i]);
    for (std::size_t j = 0; j < table.ys.size(); ++j) {
      std::printf(",%.7f", table.value(i, j));
    }
    std::printf("\n");
  }

  // ASCII relief: darker = cheaper.
  double lo = table.values[0];
  double hi = table.values[0];
  for (const double v : table.values) {
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
  }
  std::printf("\n--- relief (#=minimum band, .=maximum band) ---\n");
  static constexpr char kShades[] = "#@*+=-:. ";
  for (std::size_t i = 0; i < table.xs.size(); ++i) {
    std::printf("T1=%4.1f | ", table.xs[i]);
    for (std::size_t j = 0; j < table.ys.size(); ++j) {
      const double t = (table.value(i, j) - lo) / (hi - lo);
      const auto shade = static_cast<std::size_t>(t * 8.0);
      std::putchar(kShades[shade > 8 ? 8 : shade]);
    }
    std::printf("\n");
  }
  std::printf("          T2 = %.1f .. %.1f ->\n\n", table.ys.front(),
              table.ys.back());

  const auto [gi, gj] = table.argmin();
  std::printf("grid argmin inside the figure box: T1=%.2f T2=%.2f cost=%.7f\n",
              table.xs[gi], table.ys[gj], table.value(gi, gj));
  std::printf("surface band: %.7f .. %.7f  (paper: ~0.0046 .. 0.0047)\n\n",
              lo, hi);

  const auto zoomed = optimizer.optimize(core::Algorithm::kGridSearch);
  const auto simplex =
      optimizer.optimize(core::Algorithm::kMultiStartNelderMead);
  std::printf("full-box grid zoom:   T1=%.2f T2=%.2f cost=%.7f\n",
              zoomed.optimization.argmin[0], zoomed.optimization.argmin[1],
              zoomed.cost);
  std::printf("multi-start simplex:  T1=%.2f T2=%.2f cost=%.7f\n",
              simplex.optimization.argmin[0], simplex.optimization.argmin[1],
              simplex.cost);
  std::printf("paper:                T1=19    T2=15.6\n");
  return 0;
}
