#include "safeopt/support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "safeopt/support/error.h"
#include "safeopt/support/strings.h"

namespace safeopt {
namespace {

[[noreturn]] void fail(std::string_view what, std::size_t offset) {
  throw Error(ErrorCategory::kInvalidInput,
              concat("json: ", what, " at offset ", std::to_string(offset)));
}

constexpr std::string_view kind_name(JsonValue::Kind kind) noexcept {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "a boolean";
    case JsonValue::Kind::kNumber: return "a number";
    case JsonValue::Kind::kString: return "a string";
    case JsonValue::Kind::kArray: return "an array";
    case JsonValue::Kind::kObject: return "an object";
  }
  return "a value";
}

/// Recursive-descent parser over the whole text; depth-guarded like the
/// study-document parser so adversarial bodies cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing data", pos_);
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 128;

  void skip_whitespace() noexcept {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  bool consume_literal(std::string_view literal) noexcept {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep", pos_);
    skip_whitespace();
    const char c = peek();
    JsonValue value;
    switch (c) {
      case '{': value = parse_object(); break;
      case '[': value = parse_array(); break;
      case '"': value = JsonValue::string(parse_string()); break;
      case 't':
        if (!consume_literal("true")) fail("invalid literal", pos_);
        value = JsonValue::boolean(true);
        break;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal", pos_);
        value = JsonValue::boolean(false);
        break;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal", pos_);
        value = JsonValue::null();
        break;
      default: value = parse_number(); break;
    }
    --depth_;
    return value;
  }

  JsonValue parse_object() {
    ++pos_;  // '{'
    JsonValue object = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected a member name", pos_);
      std::string key = parse_string();
      skip_whitespace();
      if (peek() != ':') fail("expected ':'", pos_);
      ++pos_;
      object.set(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return object;
      }
      fail("expected ',' or '}'", pos_);
    }
  }

  JsonValue parse_array() {
    ++pos_;  // '['
    JsonValue array = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return array;
      }
      fail("expected ',' or ']'", pos_);
    }
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) fail("unescaped control character", pos_);
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;
      const char escape = peek();
      ++pos_;
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_utf8(out, parse_hex4()); break;
        default: fail("unknown escape", pos_ - 1);
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape", pos_ - 1);
      }
    }
    return value;
  }

  /// Encodes one BMP code point (surrogate pairs combined when both halves
  /// are present) as UTF-8.
  void append_utf8(std::string& out, unsigned code) {
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: a \uXXXX low surrogate must follow.
      if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
          text_[pos_ + 1] == 'u') {
        pos_ += 2;
        const unsigned low = parse_hex4();
        if (low < 0xDC00 || low > 0xDFFF) fail("invalid surrogate pair", pos_);
        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
      } else {
        fail("lone surrogate", pos_);
      }
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("lone surrogate", pos_);
    }
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value", start);
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number", start);
    return JsonValue::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

void dump_value(const JsonValue& value, std::string& out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull: out += "null"; return;
    case JsonValue::Kind::kBool: out += value.as_bool() ? "true" : "false"; return;
    case JsonValue::Kind::kNumber: {
      const double number = value.as_number();
      if (!std::isfinite(number)) {
        // JSON has no inf/nan; null is the least-wrong spelling.
        out += "null";
        return;
      }
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.17g", number);
      out += buffer;
      return;
    }
    case JsonValue::Kind::kString:
      out += '"';
      out += json_escape(value.as_string());
      out += '"';
      return;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) out += ',';
        first = false;
        dump_value(item, out);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(key);
        out += "\":";
        dump_value(member, out);
      }
      out += '}';
      return;
    }
  }
}

[[noreturn]] void wrong_kind(JsonValue::Kind expected, JsonValue::Kind got) {
  throw Error(ErrorCategory::kInvalidInput,
              concat("json: expected ", kind_name(expected), ", got ",
                     kind_name(got)));
}

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) wrong_kind(Kind::kBool, kind_);
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) wrong_kind(Kind::kNumber, kind_);
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) wrong_kind(Kind::kString, kind_);
  return string_;
}

const JsonValue::Items& JsonValue::items() const {
  if (kind_ != Kind::kArray) wrong_kind(Kind::kArray, kind_);
  return items_;
}

const JsonValue::Members& JsonValue::members() const {
  if (kind_ != Kind::kObject) wrong_kind(Kind::kObject, kind_);
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  if (kind_ != Kind::kObject) wrong_kind(Kind::kObject, kind_);
  members_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::push_back(JsonValue value) {
  if (kind_ != Kind::kArray) wrong_kind(Kind::kArray, kind_);
  items_.push_back(std::move(value));
}

std::string JsonValue::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace safeopt
