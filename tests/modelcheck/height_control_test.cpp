#include "safeopt/modelcheck/height_control_model.h"

#include <gtest/gtest.h>

namespace safeopt::modelcheck {
namespace {

TEST(HeightControlTest, OriginalDesignSafeWithSingleOhv) {
  // The paper's flaw needs *two* OHVs: with one vehicle the original
  // control is logically sound.
  const HeightControlModel model(ControlDesign::kOriginal, 1);
  const CheckResult result = model.verify();
  EXPECT_TRUE(result.holds);
  EXPECT_FALSE(result.exhausted_budget);
}

TEST(HeightControlTest, OriginalDesignFailsWithTwoOhvs) {
  // Paper §IV-A: "a design flaw, which resulted in a possible hazard if
  // two OHVs passed LBpre simultaneously" — found here by explicit BFS
  // instead of SMV.
  const HeightControlModel model(ControlDesign::kOriginal, 2);
  const CheckResult result = model.verify();
  EXPECT_FALSE(result.holds);
  ASSERT_FALSE(result.counterexample.empty());
  // The violating state has a vehicle inside an old tube.
  EXPECT_FALSE(
      HeightControlModel::no_collision(result.counterexample.back()));
  // The trace is genuinely a two-vehicle interleaving: both vehicles must
  // have left the approach position by the end.
  const State& final = result.counterexample.back();
  EXPECT_NE(final[0], 0);
  EXPECT_NE(final[1], 0);
}

TEST(HeightControlTest, CounterexampleIsTheDocumentedScenario) {
  const HeightControlModel model(ControlDesign::kOriginal, 2);
  const CheckResult result = model.verify();
  ASSERT_FALSE(result.holds);
  const std::string trace = format_trace(model, result.counterexample);
  // The rendered trace must show the collision.
  EXPECT_NE(trace.find("COLLISION"), std::string::npos);
  // BFS gives a shortest trace; the documented scenario needs 6 steps
  // (two LBpre passages, the first LBpost passage that disarms, the
  // second vehicle slipping through, then the collision).
  EXPECT_LE(result.counterexample.size(), 7u);
}

TEST(HeightControlTest, RevisedDesignSafeWithTwoOhvs) {
  // Paper §IV-A: "After presenting solutions to this problem, we could
  // proof functional correctness for the collision hazards."
  const HeightControlModel model(ControlDesign::kRevised, 2);
  const CheckResult result = model.verify();
  EXPECT_TRUE(result.holds);
  EXPECT_FALSE(result.exhausted_budget);
}

TEST(HeightControlTest, RevisedDesignSafeWithThreeOhvs) {
  const HeightControlModel model(ControlDesign::kRevised, 3);
  const CheckResult result = model.verify();
  EXPECT_TRUE(result.holds);
}

TEST(HeightControlTest, OriginalDesignStillFailsWithThreeOhvs) {
  // More vehicles cannot mask the flaw.
  const HeightControlModel model(ControlDesign::kOriginal, 3);
  EXPECT_FALSE(model.verify().holds);
}

TEST(HeightControlTest, DescribeRendersControlState) {
  const HeightControlModel model(ControlDesign::kRevised, 2);
  const std::string text = model.describe(model.initial());
  EXPECT_NE(text.find("OHV0=approach"), std::string::npos);
  EXPECT_NE(text.find("OHV1=approach"), std::string::npos);
  EXPECT_NE(text.find("LBpost:off"), std::string::npos);
  EXPECT_NE(text.find("ODfinal:off"), std::string::npos);
}

TEST(HeightControlTest, StateSpaceIsSmall) {
  // Sanity bound: the models stay well within explicit-state reach.
  const HeightControlModel model(ControlDesign::kRevised, 3);
  const CheckResult result = model.verify();
  EXPECT_LT(result.states_explored, 100000u);
}

}  // namespace
}  // namespace safeopt::modelcheck
