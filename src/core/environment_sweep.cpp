#include "safeopt/core/environment_sweep.h"

#include "safeopt/support/contracts.h"
#include "safeopt/support/strings.h"

namespace safeopt::core {

std::string SweepTable::to_csv() const {
  std::string out = parameter;
  for (const std::string& label : labels) {
    out += ",";
    out += label;
  }
  out += "\n";
  for (std::size_t k = 0; k < xs.size(); ++k) {
    out += format_double(xs[k]);
    for (const std::vector<double>& series : values) {
      out += ",";
      out += format_double(series[k]);
    }
    out += "\n";
  }
  return out;
}

SweepTable sweep_parameter(const std::string& parameter, double lo, double hi,
                           std::size_t steps,
                           const expr::ParameterAssignment& base,
                           const std::vector<SweepSeries>& series) {
  SAFEOPT_EXPECTS(steps >= 2);
  SAFEOPT_EXPECTS(lo < hi);
  SAFEOPT_EXPECTS(!series.empty());

  SweepTable table;
  table.parameter = parameter;
  table.xs.resize(steps);
  table.values.assign(series.size(), std::vector<double>(steps, 0.0));
  for (const SweepSeries& s : series) table.labels.push_back(s.label);

  expr::ParameterAssignment at = base;
  for (std::size_t k = 0; k < steps; ++k) {
    const double t = static_cast<double>(k) / static_cast<double>(steps - 1);
    const double x = lo + t * (hi - lo);
    table.xs[k] = x;
    at.set(parameter, x);
    for (std::size_t s = 0; s < series.size(); ++s) {
      table.values[s][k] = series[s].value.evaluate(at);
    }
  }
  return table;
}

}  // namespace safeopt::core
