#include "safeopt/opt/grid_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "safeopt/support/contracts.h"

namespace safeopt::opt {

GridSearch::GridSearch(std::size_t points_per_dimension,
                       std::size_t refinement_rounds)
    : points_per_dimension_(points_per_dimension),
      refinement_rounds_(refinement_rounds) {
  SAFEOPT_EXPECTS(points_per_dimension >= 2);
  SAFEOPT_EXPECTS(refinement_rounds >= 1);
}

OptimizationResult GridSearch::minimize(const Problem& problem) const {
  SAFEOPT_EXPECTS(problem.bounds.dimension() >= 1);
  const std::size_t dim = problem.bounds.dimension();
  Box box = problem.bounds;
  OptimizationResult result;
  result.value = std::numeric_limits<double>::infinity();

  for (std::size_t round = 0; round < refinement_rounds_; ++round) {
    // Enumerate the full cartesian grid with an odometer counter.
    std::vector<std::size_t> index(dim, 0);
    std::vector<double> point(dim, 0.0);
    bool done = false;
    while (!done) {
      for (std::size_t i = 0; i < dim; ++i) {
        const double t = static_cast<double>(index[i]) /
                         static_cast<double>(points_per_dimension_ - 1);
        point[i] = box.lower[i] + t * (box.upper[i] - box.lower[i]);
      }
      const double value = problem.objective(point);
      ++result.evaluations;
      if (value < result.value) {
        result.value = value;
        result.argmin = point;
      }
      // Advance the odometer.
      std::size_t axis = 0;
      for (; axis < dim; ++axis) {
        if (++index[axis] < points_per_dimension_) break;
        index[axis] = 0;
      }
      done = axis == dim;
    }
    ++result.iterations;

    // Zoom: new box is one grid-cell half-width around the incumbent,
    // clipped to the original feasible box.
    Box next = box;
    for (std::size_t i = 0; i < dim; ++i) {
      const double cell =
          (box.upper[i] - box.lower[i]) /
          static_cast<double>(points_per_dimension_ - 1);
      next.lower[i] =
          std::max(problem.bounds.lower[i], result.argmin[i] - cell);
      next.upper[i] =
          std::min(problem.bounds.upper[i], result.argmin[i] + cell);
    }
    box = next;
  }
  result.converged = true;
  result.message = "grid refinement exhausted";
  return result;
}

double GridTable::value(std::size_t i, std::size_t j) const {
  SAFEOPT_EXPECTS(i < xs.size() && j < ys.size());
  return values[i * ys.size() + j];
}

std::pair<std::size_t, std::size_t> GridTable::argmin() const {
  SAFEOPT_EXPECTS(!values.empty());
  const auto it = std::min_element(values.begin(), values.end());
  const auto flat = static_cast<std::size_t>(it - values.begin());
  return {flat / ys.size(), flat % ys.size()};
}

GridTable tabulate_2d(const Objective& objective, const Box& bounds,
                      std::size_t nx, std::size_t ny) {
  SAFEOPT_EXPECTS(bounds.dimension() == 2);
  SAFEOPT_EXPECTS(nx >= 2 && ny >= 2);
  GridTable table;
  table.xs.resize(nx);
  table.ys.resize(ny);
  table.values.resize(nx * ny);
  for (std::size_t i = 0; i < nx; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(nx - 1);
    table.xs[i] = bounds.lower[0] + t * (bounds.upper[0] - bounds.lower[0]);
  }
  for (std::size_t j = 0; j < ny; ++j) {
    const double t = static_cast<double>(j) / static_cast<double>(ny - 1);
    table.ys[j] = bounds.lower[1] + t * (bounds.upper[1] - bounds.lower[1]);
  }
  std::vector<double> point(2);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) {
      point[0] = table.xs[i];
      point[1] = table.ys[j];
      table.values[i * ny + j] = objective(point);
    }
  }
  return table;
}

}  // namespace safeopt::opt
