// The full Elbtunnel case study (paper §IV), end to end:
//   1. evaluate the engineers' initial 30/30-minute configuration,
//   2. optimize the timer runtimes against the 100000:1 cost function,
//   3. compare risks before/after (§IV-C.2),
//   4. cross-check the optimum's hazard probabilities with the
//      quantification engines (fta / bdd / mc) on the fault-tree derivation,
//   5. run the sensitivity analysis at the optimum,
//   6. sweep the "OHV present" environment to expose the ODfinal design
//      flaw and evaluate both fixes (Fig. 6 methodology).
//
// Usage: example_elbtunnel_optimization [SOLVER]
//   SOLVER is a registry name (nelder_mead, multi_start, grid_search, ...)
//   or a legacy display name ("MultiStart(NelderMead)"). Default:
//   multi_start. Run with an unknown name to list what is available.
#include <cstdio>
#include <exception>
#include <string>

#include "safeopt/core/environment_sweep.h"
#include "safeopt/core/sensitivity.h"
#include "safeopt/core/study.h"
#include "safeopt/elbtunnel/elbtunnel_model.h"

int main(int argc, char** argv) {
  using namespace safeopt;
  const elbtunnel::ElbtunnelModel model;

  // argv -> (registry name, config): registry names and legacy display
  // names both resolve; enum-equivalent names keep their legacy knobs.
  core::SolverSelection selection =
      *core::resolve_solver("MultiStart(NelderMead)");
  if (argc > 1) {
    const auto chosen = core::resolve_solver(argv[1]);
    if (!chosen.has_value()) {
      std::fprintf(stderr, "unknown solver \"%s\"; available:", argv[1]);
      for (const std::string& known : opt::SolverRegistry::available()) {
        std::fprintf(stderr, " %s", known.c_str());
      }
      std::fprintf(stderr, "\n");
      return 1;
    }
    selection = *chosen;
  }
  const std::string& solver_name = selection.name;

  // The study: one compiled problem, solver and engine chosen by name.
  core::Study study(model.cost_model(), model.parameter_space());
  study.solver(selection.name, selection.config);

  // 1. The engineers' guess.
  const auto baseline = study.evaluate_at(model.engineers_guess());
  std::printf("engineers' configuration: T1 = T2 = 30 min\n");
  std::printf("  P(HCol) = %.4e, P(HAlr) = %.4e, cost = %.7f\n\n",
              baseline.hazard_probabilities[0],
              baseline.hazard_probabilities[1], baseline.cost);

  // 2. Safety optimization (paper §III). Solver/problem mismatches (e.g.
  // golden_section on the 2-D timer box) surface as std::invalid_argument.
  core::SafetyOptimizationResult optimal;
  try {
    optimal = study.run();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cannot optimize: %s\n", error.what());
    return 1;
  }
  std::printf("optimized configuration (%s; %s, %zu evaluations):\n",
              solver_name.c_str(), optimal.optimization.message.c_str(),
              optimal.optimization.evaluations);
  std::printf("  T1* = %.2f min, T2* = %.2f min, cost = %.7f\n",
              optimal.optimization.argmin[0], optimal.optimization.argmin[1],
              optimal.cost);
  std::printf("  (paper: approximately 19 resp. 15.6 minutes)\n\n");

  // 3. Risk comparison (§IV-C.2's reported improvements).
  const auto report = study.compare(model.engineers_guess(), optimal);
  for (const auto& hazard : report.hazards) {
    std::printf("  %-5s %.6e -> %.6e  (%+.3f%%)\n", hazard.hazard.c_str(),
                hazard.baseline_probability, hazard.optimal_probability,
                100.0 * hazard.relative_change);
  }
  std::printf("  total mean cost %.7f -> %.7f (%+.2f%%)\n\n",
              report.baseline_cost, report.optimal_cost,
              100.0 * report.cost_relative_change);

  // 4. Cross-check P(HCol)(T1*,T2*) on the fault-tree derivation with every
  // registered quantification engine — the closed form above and the three
  // backends must agree (rare-event within its bound, bdd exactly, mc
  // within its confidence interval).
  const fta::FaultTree collision_tree = model.collision_tree();
  const core::ParameterizedQuantification collision_quant =
      model.collision_quantification(collision_tree);
  study.hazard_tree("HCol", collision_tree, collision_quant);
  std::printf("P(HCol) at the optimum, by quantification engine:\n");
  for (const std::string& engine : core::EngineRegistry::available()) {
    study.engine(engine);
    try {
      const auto q = study.quantify("HCol", optimal.optimal_parameters);
      if (q.ci95.has_value()) {
        std::printf("  %-4s %.6e  (95%% CI [%.3e, %.3e], %llu trials)\n",
                    engine.c_str(), q.probability, q.ci95->lo, q.ci95->hi,
                    static_cast<unsigned long long>(q.trials));
      } else {
        std::printf("  %-4s %.6e\n", engine.c_str(), q.probability);
      }
    } catch (const std::exception& error) {
      std::printf("  %-4s unavailable: %s\n", engine.c_str(), error.what());
    }
  }

  // 5. Sensitivity at the optimum: which timer is critical?
  std::printf("\nsensitivity at the optimum:\n");
  for (const auto& s : core::sensitivity_analysis(
           model.cost_model(), model.parameter_space(),
           optimal.optimal_parameters)) {
    std::printf("  d(cost)/d%s = %+.3e (elasticity %+.3e)\n",
                s.parameter.c_str(), s.cost_gradient, s.cost_elasticity);
  }

  // 6. The Fig. 6 environment study: how does the design behave when an
  // OHV is actually present in the controlled area?
  std::printf("\nP(false alarm | correct OHV present), by design:\n");
  const core::SweepTable sweep = core::sweep_parameter(
      "T2", 5.0, 25.0, 9, {},
      {{"baseline", model.false_alarm_given_ohv(elbtunnel::Design::kBaseline)},
       {"with_LB4", model.false_alarm_given_ohv(elbtunnel::Design::kWithLB4)},
       {"LB_at_ODfinal",
        model.false_alarm_given_ohv(
            elbtunnel::Design::kLightBarrierAtODfinal)}});
  std::printf("%s", sweep.to_csv().c_str());
  std::printf(
      "\nconclusion: even at the optimized T2, %.0f%% of correctly driving\n"
      "OHVs trigger an alarm in the deployed design — the flaw the paper\n"
      "reports. The LB4 fix cuts it to %.0f%%, a barrier at ODfinal to "
      "%.0f%%.\n",
      100.0 * sweep.values[0][4], 100.0 * sweep.values[1][4],
      100.0 * sweep.values[2][4]);
  return 0;
}
