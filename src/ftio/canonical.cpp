// Canonical content hashing for study documents (study_document.h).
//
// The canonical form IS write_study's output: the writer already normalizes
// whitespace, drops comments, ignores StudyDocument::source, and renders
// numbers through format_double, so hashing its text gives a content
// identity that survives any formatting of the input. FNV-1a (64-bit) is
// deliberate: tiny, dependency-free, stable across platforms — and the
// artifact cache only needs collision *rarity*, not adversarial resistance
// (keys also carry pass options, and a collision costs a wrong cache hit
// on attacker-chosen input we don't serve).
#include <cinttypes>
#include <cstdio>

#include "safeopt/ftio/study_document.h"

namespace safeopt::ftio {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

constexpr std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = kFnvOffset;
  for (const char byte : text) {
    hash ^= static_cast<unsigned char>(byte);
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

std::uint64_t canonical_hash(const StudyDocument& doc) {
  return fnv1a(write_study(doc));
}

std::string canonical_hash_hex(const StudyDocument& doc) {
  char digits[17];
  std::snprintf(digits, sizeof(digits), "%016" PRIx64, canonical_hash(doc));
  return std::string(digits, 16);
}

}  // namespace safeopt::ftio
