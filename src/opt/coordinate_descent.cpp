#include "safeopt/opt/coordinate_descent.h"

#include "builtin_solvers.h"

#include <cmath>

#include "safeopt/support/contracts.h"

namespace safeopt::opt {

CoordinateDescent::CoordinateDescent(StoppingCriteria stopping,
                                     std::vector<double> initial,
                                     std::size_t line_search_iterations)
    : stopping_(stopping),
      initial_(std::move(initial)),
      line_search_iterations_(line_search_iterations) {
  SAFEOPT_EXPECTS(line_search_iterations >= 8);
}

OptimizationResult CoordinateDescent::minimize(const Problem& problem) const {
  const std::size_t dim = problem.bounds.dimension();
  SAFEOPT_EXPECTS(dim >= 1);
  SAFEOPT_EXPECTS(initial_.empty() || initial_.size() == dim);
  constexpr double kInvPhi = 0.6180339887498948482;

  OptimizationResult result;
  std::vector<double> x = initial_.empty() ? problem.bounds.center()
                                           : problem.bounds.project(initial_);
  double fx = problem.objective(x);
  ++result.evaluations;

  // Golden-section along axis `i` over the full box extent of that axis.
  const auto line_minimize = [&](std::size_t i) {
    double a = problem.bounds.lower[i];
    double b = problem.bounds.upper[i];
    const auto eval_at = [&](double value) {
      const double saved = x[i];
      x[i] = value;
      const double f = problem.objective(x);
      ++result.evaluations;
      x[i] = saved;
      return f;
    };
    double c = b - kInvPhi * (b - a);
    double d = a + kInvPhi * (b - a);
    double fc = eval_at(c);
    double fd = eval_at(d);
    for (std::size_t it = 0; it < line_search_iterations_; ++it) {
      if (fc < fd) {
        b = d;
        d = c;
        fd = fc;
        c = b - kInvPhi * (b - a);
        fc = eval_at(c);
      } else {
        a = c;
        c = d;
        fc = fd;
        d = a + kInvPhi * (b - a);
        fd = eval_at(d);
      }
    }
    const double best = 0.5 * (a + b);
    const double f_best = eval_at(best);
    if (f_best < fx) {
      x[i] = best;
      fx = f_best;
    }
  };

  while (result.iterations < stopping_.max_iterations) {
    ++result.iterations;
    const std::vector<double> previous = x;
    const double f_previous = fx;
    for (std::size_t i = 0; i < dim; ++i) line_minimize(i);
    double moved = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = x[i] - previous[i];
      moved += d * d;
    }
    if (std::sqrt(moved) <= stopping_.tolerance &&
        f_previous - fx <= stopping_.tolerance) {
      result.converged = true;
      result.message = "coordinate sweep made no progress";
      break;
    }
  }
  if (!result.converged) result.message = "iteration budget exhausted";
  result.argmin = std::move(x);
  result.value = fx;
  return result;
}

// ---- registry adapter -------------------------------------------------------

namespace {

/// Extras: "line_search_iterations" (default 60) per golden-section sweep.
class CoordinateDescentSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "coordinate_descent";
  }

 private:
  [[nodiscard]] OptimizationResult run(
      const Problem& problem, const SolverConfig& config) const override {
    return CoordinateDescent(config.stopping(), config.initial,
                             config.count_or("line_search_iterations", 60))
        .minimize(problem);
  }
};

}  // namespace

std::unique_ptr<Solver> detail::make_coordinate_descent_solver() {
  return std::make_unique<CoordinateDescentSolver>();
}

}  // namespace safeopt::opt
