// treegen — writes the deterministic scaling-corpus tiers (tools/corpus.h)
// as study documents the CLI and the tests can load.
//
// Usage:
//   treegen --list                      print the known tiers
//   treegen --tier 1k [--out PATH]      write one tier (default: stdout)
//
// The emitted document carries the full tree, every leaf probability, a
// unit-cost hazard and an `engine bdd preprocess = true;` selection, so
//   safeopt quantify examples/corpus/corpus_1k.ft
// works out of the box. Output is bit-identical across machines for a
// given tier (seeded xoshiro256++, format_double round-trip) — CI diffs
// the committed 1k document against a fresh run.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "safeopt/ftio/writer.h"
#include "tools/corpus.h"

namespace {

void print_tiers() {
  std::printf("%-6s %10s %10s %8s %8s\n", "tier", "clusters", "leaves/cl",
              "vote", "events");
  for (const safeopt::corpus::CorpusSpec& spec :
       safeopt::corpus::corpus_tiers()) {
    std::printf("%-6s %10zu %10zu %8u %8zu\n", spec.name.c_str(),
                spec.clusters, spec.cluster_leaves, spec.vote_k,
                spec.events());
  }
}

std::string render(const safeopt::corpus::CorpusSpec& spec) {
  const safeopt::corpus::CorpusModel model = safeopt::corpus::make_corpus(spec);
  std::string out;
  out += "# corpus_" + spec.name +
         " -- deterministic scaling-corpus tier (tools/corpus.h).\n";
  out += "# " + std::to_string(spec.clusters) + " clusters x " +
         std::to_string(spec.cluster_leaves) + " leaves, top " +
         std::to_string(spec.vote_k) + "-of-" +
         std::to_string(spec.clusters) + " vote, seed " +
         std::to_string(spec.seed) + ".\n";
  out += "# Regenerate: treegen --tier " + spec.name + " --out <this file>\n";
  out += safeopt::ftio::write_fault_tree(model.tree, model.input);
  out += "hazard " + model.tree.name() + " cost = 1;\n";
  // The only engine that survives this scale; MOCUS on a wide vote gate
  // would enumerate C(n, k) cut sets.
  out += "engine bdd preprocess = true;\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string tier;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) {
      print_tiers();
      return 0;
    }
    if (std::strcmp(argv[i], "--tier") == 0 && i + 1 < argc) {
      tier = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: treegen --list | --tier NAME [--out PATH]\n");
      return 2;
    }
  }
  if (tier.empty()) {
    std::fprintf(stderr, "usage: treegen --list | --tier NAME [--out PATH]\n");
    return 2;
  }
  bool known = false;
  for (const safeopt::corpus::CorpusSpec& spec :
       safeopt::corpus::corpus_tiers()) {
    known = known || spec.name == tier;
  }
  if (!known) {
    std::fprintf(stderr, "unknown tier \"%s\"; known tiers:\n", tier.c_str());
    print_tiers();
    return 2;
  }

  const std::string document = render(safeopt::corpus::tier_by_name(tier));
  if (out_path.empty()) {
    std::fwrite(document.data(), 1, document.size(), stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out.write(document.data(),
            static_cast<std::streamsize>(document.size()));
  return out.good() ? 0 : 1;
}
