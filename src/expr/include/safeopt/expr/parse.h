// Textual expression parsing — the inverse of Expr::to_string().
//
// The printer (node.h print()) emits a fully parenthesized arithmetic
// dialect: "(0.00042 + (9.9958e-05 * (1 - exp((-1.68e-06 * T1)))))",
// "survival[TruncatedNormal(4, 2, [0, inf])](T1)". `parse` turns that text
// (and the natural hand-written forms: precedence without forced parens,
// min/max/pow/clamp calls) back into an expression DAG, so parameterized
// models can live in files instead of C++ (ftio grammar v2, §II-D.2).
//
// Round trip: for every expression built from constants, parameters,
// arithmetic, exp/log/sqrt/pow/min/max and distribution cdf/survival nodes,
// parse(e.to_string(), symbols) is structurally identical to e (see
// structurally_equal). Two deliberate normalizations: a constant
// subexpression folds exactly as the Expr operator overloads fold it, and a
// printed negated constant "(-c)" parses as the constant -c. function1
// nodes are opaque numeric procedures and cannot be parsed back; parse
// reports an unknown function instead.
#ifndef SAFEOPT_EXPR_PARSE_H
#define SAFEOPT_EXPR_PARSE_H

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "safeopt/expr/expr.h"

namespace safeopt::expr {

/// Expression-parse failure. `offset` is the 0-based character offset into
/// the parsed text where the problem was detected; embedding parsers (the
/// ftio study parser) map it back onto document line:column positions.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t offset, const std::string& what);

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// The free parameters an expression may mention — a name set, typically
/// built from core::ParameterSpace::names(). Unknown identifiers surface as
/// ParseError rather than silently becoming new parameters, so a model-file
/// typo ("T3" for "T2") fails at load, not at evaluation.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(std::initializer_list<std::string> names);
  explicit SymbolTable(std::vector<std::string> names);

  void add(std::string name);
  [[nodiscard]] bool contains(std::string_view name) const noexcept;
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }

 private:
  std::vector<std::string> names_;  // sorted, unique
};

/// Parses the printer dialect plus the obvious hand-written relaxations:
///
///   expression := term (('+' | '-') term)*
///   term       := factor (('*' | '/') factor)*
///   factor     := '-' factor | primary
///   primary    := NUMBER | 'inf' | 'nan' | parameter
///               | '(' expression ')'
///               | ('exp'|'log'|'sqrt') '(' expression ')'
///               | ('min'|'max') '(' expression ',' expression ')'
///               | 'pow' '(' expression ',' constant-expression ')'
///               | 'clamp' '(' expression ',' const ',' const ')'
///               | ('cdf'|'survival') '[' distribution ']' '(' expression ')'
///   distribution := Name '(' args ')' with the stats constructors:
///       Normal(mu, sigma)            TruncatedNormal(mu, sigma, [lo, hi])
///       Exponential(rate)            Weibull(shape, scale)
///       LogNormal(mu, sigma)         Uniform(lo, hi)
///       Gamma(shape, scale)
///
/// Constant folding matches the Expr operator overloads, so expressions
/// built through this function compile to the same tapes as the equivalent
/// C++ construction. Throws ParseError on any lexical, syntactic, or
/// semantic problem (unknown parameter/function/distribution, invalid
/// distribution parameters, trailing input).
[[nodiscard]] Expr parse(std::string_view text, const SymbolTable& symbols);

/// Structural identity of two expression DAGs: same node kinds, operators,
/// bit-identical constants, equal parameter names, and distributions with
/// equal name() renderings (which embed their parameters). function1 nodes
/// compare by name and operand only (the procedures are opaque). This is
/// the "parse ∘ print = id" relation the round-trip tests assert; it is
/// stronger than numeric equivalence.
[[nodiscard]] bool structurally_equal(const Expr& a, const Expr& b) noexcept;

}  // namespace safeopt::expr

#endif  // SAFEOPT_EXPR_PARSE_H
