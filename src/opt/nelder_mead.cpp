#include "safeopt/opt/nelder_mead.h"

#include "builtin_solvers.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "safeopt/support/contracts.h"

namespace safeopt::opt {
namespace {

// Standard Nelder-Mead coefficients.
constexpr double kReflection = 1.0;
constexpr double kExpansion = 2.0;
constexpr double kContraction = 0.5;
constexpr double kShrink = 0.5;

}  // namespace

NelderMead::NelderMead(StoppingCriteria stopping, std::vector<double> initial)
    : stopping_(stopping), initial_(std::move(initial)) {}

OptimizationResult NelderMead::minimize(const Problem& problem) const {
  const std::size_t dim = problem.bounds.dimension();
  SAFEOPT_EXPECTS(dim >= 1);
  SAFEOPT_EXPECTS(initial_.empty() || initial_.size() == dim);

  OptimizationResult result;
  const auto eval = [&](const std::vector<double>& x) {
    ++result.evaluations;
    return problem.objective(x);
  };

  // Initial simplex: start point plus one vertex displaced 5% of the box
  // width along each axis (projected back into the box).
  std::vector<std::vector<double>> simplex;
  std::vector<double> values;
  std::vector<double> start =
      initial_.empty() ? problem.bounds.center()
                       : problem.bounds.project(initial_);
  simplex.push_back(start);
  values.push_back(eval(start));
  for (std::size_t i = 0; i < dim; ++i) {
    std::vector<double> vertex = start;
    const double step = 0.05 * std::max(problem.bounds.width(i), 1e-9);
    vertex[i] = vertex[i] + step <= problem.bounds.upper[i]
                    ? vertex[i] + step
                    : vertex[i] - step;
    vertex = problem.bounds.project(vertex);
    simplex.push_back(vertex);
    values.push_back(eval(vertex));
  }

  std::vector<std::size_t> order(simplex.size());
  const auto sort_simplex = [&] {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return values[a] < values[b];
    });
  };

  const auto spread = [&] {
    const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
    return std::abs(*hi - *lo);
  };

  while (result.iterations < stopping_.max_iterations &&
         spread() > stopping_.tolerance) {
    ++result.iterations;
    sort_simplex();
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[order.size() - 2];

    // Centroid of all vertices except the worst.
    std::vector<double> centroid(dim, 0.0);
    for (std::size_t v = 0; v < simplex.size(); ++v) {
      if (v == worst) continue;
      for (std::size_t i = 0; i < dim; ++i) centroid[i] += simplex[v][i];
    }
    for (double& c : centroid) c /= static_cast<double>(dim);

    const auto move = [&](double coefficient) {
      std::vector<double> point(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        point[i] =
            centroid[i] + coefficient * (centroid[i] - simplex[worst][i]);
      }
      return problem.bounds.project(point);
    };

    const std::vector<double> reflected = move(kReflection);
    const double f_reflected = eval(reflected);

    if (f_reflected < values[best]) {
      const std::vector<double> expanded = move(kExpansion);
      const double f_expanded = eval(expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = expanded;
        values[worst] = f_expanded;
      } else {
        simplex[worst] = reflected;
        values[worst] = f_reflected;
      }
      continue;
    }
    if (f_reflected < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = f_reflected;
      continue;
    }
    const std::vector<double> contracted = move(-kContraction);
    const double f_contracted = eval(contracted);
    if (f_contracted < values[worst]) {
      simplex[worst] = contracted;
      values[worst] = f_contracted;
      continue;
    }
    // Shrink towards the best vertex.
    for (std::size_t v = 0; v < simplex.size(); ++v) {
      if (v == best) continue;
      for (std::size_t i = 0; i < dim; ++i) {
        simplex[v][i] =
            simplex[best][i] + kShrink * (simplex[v][i] - simplex[best][i]);
      }
      values[v] = eval(simplex[v]);
    }
  }

  sort_simplex();
  result.argmin = simplex[order.front()];
  result.value = values[order.front()];
  result.converged = spread() <= stopping_.tolerance;
  result.message = result.converged ? "simplex spread below tolerance"
                                    : "iteration budget exhausted";
  return result;
}

// ---- registry adapter -------------------------------------------------------

namespace {

class NelderMeadSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "nelder_mead";
  }

 private:
  [[nodiscard]] OptimizationResult run(
      const Problem& problem, const SolverConfig& config) const override {
    return NelderMead(config.stopping(), config.initial).minimize(problem);
  }
};

}  // namespace

std::unique_ptr<Solver> detail::make_nelder_mead_solver() {
  return std::make_unique<NelderMeadSolver>();
}

}  // namespace safeopt::opt
