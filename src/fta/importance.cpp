#include "safeopt/fta/importance.h"

#include <algorithm>
#include <limits>

#include "safeopt/support/contracts.h"

namespace safeopt::fta {

std::vector<ImportanceMeasures> importance_measures(
    const FaultTree& tree, const CutSetCollection& mcs,
    const QuantificationInput& input, ProbabilityMethod method) {
  SAFEOPT_EXPECTS(input.is_valid_for(tree));
  const double p_top = top_event_probability(mcs, input, method);
  SAFEOPT_EXPECTS(p_top > 0.0);

  std::vector<ImportanceMeasures> out;
  out.reserve(tree.basic_event_count());
  for (BasicEventOrdinal i = 0; i < tree.basic_event_count(); ++i) {
    ImportanceMeasures m;
    m.event = i;
    m.event_name = tree.node_name(tree.basic_events()[i]);
    const double p_i = input.basic_event_probability[i];

    QuantificationInput with = input;
    with.basic_event_probability[i] = 1.0;
    QuantificationInput without = input;
    without.basic_event_probability[i] = 0.0;
    const double p_with = top_event_probability(mcs, with, method);
    const double p_without = top_event_probability(mcs, without, method);

    m.birnbaum = p_with - p_without;
    m.criticality = m.birnbaum * p_i / p_top;
    m.risk_achievement_worth = p_with / p_top;
    m.risk_reduction_worth =
        p_without > 0.0 ? p_top / p_without
                        : std::numeric_limits<double>::infinity();

    double fv_sum = 0.0;
    for (const CutSet& cs : mcs) {
      if (std::binary_search(cs.events.begin(), cs.events.end(), i)) {
        fv_sum += cut_set_probability(cs, input);
      }
    }
    m.fussell_vesely = std::min(1.0, fv_sum / p_top);
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<ImportanceMeasures> importance_ranking(
    const FaultTree& tree, const CutSetCollection& mcs,
    const QuantificationInput& input, ProbabilityMethod method) {
  auto measures = importance_measures(tree, mcs, input, method);
  std::stable_sort(measures.begin(), measures.end(),
                   [](const ImportanceMeasures& a, const ImportanceMeasures& b) {
                     return a.fussell_vesely > b.fussell_vesely;
                   });
  return measures;
}

}  // namespace safeopt::fta
