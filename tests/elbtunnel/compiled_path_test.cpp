// Acceptance tests for the compiled-evaluation path on the paper's own
// optimization problem: running a solver against the compiled tape must give
// exactly (bitwise) the optimum the recursive expression walk gives.
#include <gtest/gtest.h>

#include <vector>

#include "safeopt/core/safety_optimizer.h"
#include "safeopt/elbtunnel/elbtunnel_model.h"
#include "safeopt/expr/compiled.h"
#include "safeopt/opt/differential_evolution.h"
#include "safeopt/opt/grid_search.h"

namespace safeopt::elbtunnel {
namespace {

/// The pre-compilation objective: assignment construction + tree walk.
opt::Problem tree_walk_problem(const core::SafetyOptimizer& optimizer) {
  opt::Problem problem;
  problem.bounds = optimizer.space().box();
  const core::ParameterSpace space = optimizer.space();
  const expr::Expr cost = optimizer.model().cost_expression();
  problem.objective = [space, cost](std::span<const double> x) {
    return cost.evaluate(space.assignment(x));
  };
  return problem;
}

TEST(CompiledPathTest, CompiledCostMatchesTreeWalkAcrossTheBox) {
  const ElbtunnelModel model;
  const expr::Expr cost = model.cost_model().cost_expression();
  const auto compiled = expr::CompiledExpr::compile(cost, {"T1", "T2"});
  for (double t1 = 5.0; t1 <= 40.0; t1 += 1.7) {
    for (double t2 = 5.0; t2 <= 40.0; t2 += 2.3) {
      const double tree = cost.evaluate({{"T1", t1}, {"T2", t2}});
      EXPECT_EQ(tree, compiled.evaluate(std::vector<double>{t1, t2}));
    }
  }
}

TEST(CompiledPathTest, GridSearchOptimumIsBitwiseIdentical) {
  const ElbtunnelModel model;
  const core::SafetyOptimizer optimizer = model.optimizer();
  const opt::GridSearch search(33, 5);

  const opt::OptimizationResult tree =
      search.minimize(tree_walk_problem(optimizer));
  // optimizer.problem() carries the compiled scalar + batch objectives.
  const opt::OptimizationResult compiled =
      search.minimize(optimizer.problem());

  EXPECT_EQ(tree.value, compiled.value);
  EXPECT_EQ(tree.argmin, compiled.argmin);
  EXPECT_EQ(tree.evaluations, compiled.evaluations);
}

TEST(CompiledPathTest, DifferentialEvolutionOptimumIsBitwiseIdentical) {
  const ElbtunnelModel model;
  const core::SafetyOptimizer optimizer = model.optimizer();
  opt::DifferentialEvolution::Settings settings;
  settings.generations = 60;
  const opt::DifferentialEvolution solver(settings, 0xd1ffe);

  const opt::OptimizationResult tree =
      solver.minimize(tree_walk_problem(optimizer));
  const opt::OptimizationResult compiled =
      solver.minimize(optimizer.problem());

  EXPECT_EQ(tree.value, compiled.value);
  EXPECT_EQ(tree.argmin, compiled.argmin);
}

TEST(CompiledPathTest, BatchedTabulationMatchesScalarSurface) {
  const ElbtunnelModel model;
  const core::SafetyOptimizer optimizer = model.optimizer();
  const opt::Problem problem = optimizer.problem();

  // The Fig. 5 plotting box.
  opt::Problem figure = problem;
  figure.bounds = opt::Box({15.0, 15.0}, {20.0, 18.0});
  const opt::GridTable batched = opt::tabulate_2d(figure, 21, 25);
  const opt::GridTable scalar =
      opt::tabulate_2d(problem.objective, figure.bounds, 21, 25);
  EXPECT_EQ(batched.xs, scalar.xs);
  EXPECT_EQ(batched.ys, scalar.ys);
  EXPECT_EQ(batched.values, scalar.values);
}

}  // namespace
}  // namespace safeopt::elbtunnel
