// The hardware backend seam of the batch evaluator.
//
// Every layer above expr — opt::Problem batch closures, the engines'
// compiled quantification, sweeps, DE populations, the service — funnels
// through CompiledExpr::evaluate_batch(BatchRequest). This header is the
// seam those requests cross: an `EvalBackend` is one implementation of the
// lane-block kernels (the per-instruction loops over L points), and the
// `BackendRegistry` is the name -> backend table that runtime dispatch
// picks from. Three backends are built in:
//
//   "generic"  the portable lane-blocked interpreter (compiled.cpp) — the
//              bitwise oracle every other backend is tested against
//   "avx2"     explicit 256-bit intrinsic kernels (backend_avx2.cpp)
//   "avx512"   explicit 512-bit intrinsic kernels (backend_avx512.cpp)
//
// Dispatch picks the highest-priority backend whose `available()` CPUID
// probe passes; `SAFEOPT_BACKEND`, the `--backend` CLI flag (a process-wide
// override) or an explicit BatchRequest::backend pointer pin a specific
// one. A requested backend that is unknown or unavailable on this CPU
// *degrades* to the best available backend with a recorded diagnostic —
// never a crash, and dispatch never selects an unavailable backend.
//
// The contract a backend must keep (docs/extending.md "Adding an
// evaluation backend"): for every supported lane width, every batch split
// and every thread count, its results are bitwise-identical to "generic" —
// which is itself bitwise-identical to the scalar Expr::evaluate(). The
// practical rules: IEEE-exact ops (+,-,*,/,sqrt, the operand-swapped
// min/max) may vectorize freely; transcendentals and distribution calls
// stay scalar calls to the exact same functions; the per-site argument
// memo only ever replays bit-identical stored results; and the kernel TU
// is compiled with -ffp-contract=off so no a*b+c is contracted to an FMA.
#ifndef SAFEOPT_EXPR_EVAL_BACKEND_H
#define SAFEOPT_EXPR_EVAL_BACKEND_H

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "safeopt/expr/compiled.h"

namespace safeopt::expr {

/// One implementation of the lane-block kernels. Stateless and thread-safe:
/// all per-call state lives in the caller's LaneScratch, so one registered
/// instance serves every thread. Backends are registered once and live for
/// the process (BackendRegistry never destroys a handed-out backend).
class EvalBackend {
 public:
  virtual ~EvalBackend() = default;

  /// Registry key and the name surfaced in diagnostics ("generic", ...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Can this backend run on this machine? (CPUID probe via
  /// expr::cpu_features() — the registry consults this before every
  /// dispatch, so an unavailable backend is never selected.)
  [[nodiscard]] virtual bool available() const noexcept = 0;

  /// Dispatch rank among available backends; highest wins ("generic" is 0).
  [[nodiscard]] virtual int priority() const noexcept = 0;

  /// The lane width evaluate_batch uses when BatchRequest::lane_width == 0.
  [[nodiscard]] virtual std::size_t default_lane_width() const noexcept = 0;

  /// Block widths the kernels accept. Width 1 (the scalar reference loop)
  /// is handled by CompiledExpr itself and is identical on every backend.
  [[nodiscard]] virtual bool supports_lane_width(
      std::size_t width) const noexcept = 0;

  /// Evaluates one block of exactly `width` rows (a supported width).
  /// `points` holds `width` row-major parameter vectors of length `dim`,
  /// `out` receives `width` values; `scratch` was sized by
  /// CompiledExpr::bind_lanes(scratch, width, ...).
  virtual void run_block(const CompiledExpr& expr, const double* points,
                         std::size_t dim, std::size_t width, double* out,
                         CompiledExpr::LaneScratch& scratch) const = 0;

  /// Forward + adjoint sweep over one block: `width` values and `width`
  /// row-major gradient vectors of length `dim`.
  virtual void run_block_with_gradients(
      const CompiledExpr& expr, const double* points, std::size_t dim,
      std::size_t width, double* values, double* gradients,
      CompiledExpr::LaneScratch& scratch) const = 0;
};

/// Process-wide name -> backend table plus the runtime dispatch policy.
/// "generic" is always registered; "avx2" / "avx512" are registered
/// whenever their kernel TUs were compiled in (their `available()` probes
/// still gate dispatch at runtime). All methods are thread-safe.
class BackendRegistry {
 public:
  /// The outcome of resolving a backend request.
  struct Selection {
    /// The backend evaluation will run on; always available(), never null.
    const EvalBackend* backend = nullptr;
    /// What was asked for (explicit name, process override, or
    /// SAFEOPT_BACKEND), empty for pure runtime dispatch.
    std::string requested;
    /// Non-empty when the request degraded: the human-readable record of
    /// why (unknown name / unavailable on this CPU) and what was used
    /// instead. Callers surface it next to their other diagnostics.
    std::string diagnostic;
  };

  /// Registers `backend` under backend->name(); returns false when it
  /// replaced an existing registration (the replaced backend stays alive —
  /// outstanding pointers keep working — but is no longer selectable).
  static bool add(std::unique_ptr<EvalBackend> backend);

  /// The named backend, or nullptr when unknown. The pointer stays valid
  /// for the process lifetime.
  [[nodiscard]] static const EvalBackend* find(std::string_view name);

  /// Registration-ordered names of every registered backend (available on
  /// this CPU or not — pair with find()->available() for the distinction).
  [[nodiscard]] static std::vector<std::string> registered();

  /// The bitwise oracle; always registered and always available.
  [[nodiscard]] static const EvalBackend& generic();

  /// What runtime dispatch selects right now: the process override
  /// (set_override), else SAFEOPT_BACKEND, else the highest-priority
  /// available backend. Never returns an unavailable backend.
  [[nodiscard]] static const EvalBackend& active();

  /// Resolves `requested` ("" = dispatch) with graceful degradation; see
  /// Selection. This is the one place override/env/dispatch policy lives.
  [[nodiscard]] static Selection resolve(std::string_view requested);

  /// Process-wide override, layered above SAFEOPT_BACKEND (the CLI's
  /// --backend flag). Empty clears it. Unknown/unavailable names degrade
  /// at resolve() time with a diagnostic rather than failing here.
  static void set_override(std::string name);
  [[nodiscard]] static std::string override_name();

  /// Re-reads SAFEOPT_BACKEND (captured once at first use). Test hook.
  static void refresh_environment();
};

}  // namespace safeopt::expr

#endif  // SAFEOPT_EXPR_EVAL_BACKEND_H
