// Golden-section search: derivative-free 1-D minimization over an interval.
// Guaranteed to bracket the minimum of a unimodal function; the right tool
// for single-free-parameter systems such as the pre-flight-check tolerance
// example of the paper's §III introduction.
#ifndef SAFEOPT_OPT_GOLDEN_SECTION_H
#define SAFEOPT_OPT_GOLDEN_SECTION_H

#include "safeopt/opt/problem.h"

namespace safeopt::opt {

class GoldenSection final : public Optimizer {
 public:
  explicit GoldenSection(StoppingCriteria stopping = {});

  /// Precondition: problem.bounds.dimension() == 1.
  [[nodiscard]] OptimizationResult minimize(
      const Problem& problem) const override;
  [[nodiscard]] std::string name() const override { return "GoldenSection"; }

 private:
  StoppingCriteria stopping_;
};

}  // namespace safeopt::opt

#endif  // SAFEOPT_OPT_GOLDEN_SECTION_H
