// Runtime CPU feature probe backing backend dispatch.
//
// This is deliberately the *only* doorway to `__builtin_cpu_supports`: the
// detection lives in one TU (src/expr/cpu_features.cpp, enforced by the
// safeopt-lint `cpu-detect` rule), every backend's `available()` reads the
// cached result, and non-x86 / non-GNU builds get all-false answers instead
// of ifdef soup at each call site.
#ifndef SAFEOPT_EXPR_CPU_FEATURES_H
#define SAFEOPT_EXPR_CPU_FEATURES_H

namespace safeopt::expr {

/// The instruction-set extensions the built-in backends care about, probed
/// once per process. All false on non-x86-64 targets.
struct CpuFeatures {
  bool avx2 = false;
  bool avx512f = false;
  bool avx512dq = false;
  bool avx512vl = false;
};

[[nodiscard]] const CpuFeatures& cpu_features() noexcept;

}  // namespace safeopt::expr

#endif  // SAFEOPT_EXPR_CPU_FEATURES_H
