// Explicit-state model checking substrate. The paper's prior work (§IV-A)
// used the SMV symbolic model checker to find the two-OHV design flaw and
// prove the fixed design correct; this module provides the equivalent
// capability for finite models: BFS reachability over a TransitionSystem,
// invariant checking, and shortest counterexample extraction.
#ifndef SAFEOPT_MODELCHECK_TRANSITION_SYSTEM_H
#define SAFEOPT_MODELCHECK_TRANSITION_SYSTEM_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace safeopt::modelcheck {

/// A state is a fixed-length vector of small integers; the interpretation
/// belongs to the concrete model.
using State = std::vector<std::int32_t>;

/// A finite transition system with one initial state and nondeterministic
/// successors.
class TransitionSystem {
 public:
  virtual ~TransitionSystem() = default;
  [[nodiscard]] virtual State initial() const = 0;
  /// All successor states of `state`; empty for deadlock states.
  [[nodiscard]] virtual std::vector<State> successors(
      const State& state) const = 0;
  /// Human-readable rendering for counterexample traces.
  [[nodiscard]] virtual std::string describe(const State& state) const = 0;

 protected:
  TransitionSystem() = default;
  TransitionSystem(const TransitionSystem&) = default;
  TransitionSystem& operator=(const TransitionSystem&) = default;
};

/// Outcome of an invariant check.
struct CheckResult {
  /// True if the invariant holds in every reachable state.
  bool holds = false;
  /// True if exploration was cut off by max_states before exhausting the
  /// reachable set (holds is then only "no violation found so far").
  bool exhausted_budget = false;
  std::size_t states_explored = 0;
  /// On violation: a shortest path initial -> violating state.
  std::vector<State> counterexample;
};

/// Breadth-first invariant check: explores reachable states until a
/// violation is found, the state space is exhausted, or `max_states` states
/// have been expanded. BFS guarantees the counterexample is shortest.
[[nodiscard]] CheckResult check_invariant(
    const TransitionSystem& system,
    const std::function<bool(const State&)>& invariant,
    std::size_t max_states = 1'000'000);

/// Renders a counterexample as one describe() line per step.
[[nodiscard]] std::string format_trace(const TransitionSystem& system,
                                       const std::vector<State>& trace);

}  // namespace safeopt::modelcheck

#endif  // SAFEOPT_MODELCHECK_TRANSITION_SYSTEM_H
