// Safety optimization (paper §III): "choose the free parameters X_1..X_l
// such that the cost function is minimized". Glues the symbolic cost model
// to the numeric solvers of src/opt; the exact autodiff gradient of the cost
// expression is handed to gradient-based methods.
#ifndef SAFEOPT_CORE_SAFETY_OPTIMIZER_H
#define SAFEOPT_CORE_SAFETY_OPTIMIZER_H

#include <string>
#include <vector>

#include "safeopt/core/cost_model.h"
#include "safeopt/core/parameter_space.h"
#include "safeopt/opt/problem.h"

namespace safeopt::core {

/// Solver selection. All methods honour the parameter box.
enum class Algorithm {
  kGridSearch,
  kNelderMead,
  kMultiStartNelderMead,
  kGradientDescent,
  kHookeJeeves,
  kCoordinateDescent,
  kSimulatedAnnealing,
  kDifferentialEvolution,
};

[[nodiscard]] std::string_view to_string(Algorithm algorithm) noexcept;

/// Result of a safety optimization run: the solver outcome plus the
/// safety-level interpretation (per-hazard probabilities at the optimum).
struct SafetyOptimizationResult {
  opt::OptimizationResult optimization;
  expr::ParameterAssignment optimal_parameters;
  std::vector<double> hazard_probabilities;  // hazard order of the CostModel
  double cost = 0.0;                         // == optimization.value
};

/// Per-hazard baseline-vs-optimum comparison; `relative_change` is
/// (optimal − baseline) / baseline (e.g. −0.10 == 10% risk reduction).
struct HazardComparison {
  std::string hazard;
  double baseline_probability = 0.0;
  double optimal_probability = 0.0;
  double relative_change = 0.0;
};

struct ComparisonReport {
  double baseline_cost = 0.0;
  double optimal_cost = 0.0;
  double cost_relative_change = 0.0;
  std::vector<HazardComparison> hazards;
};

class SafetyOptimizer {
 public:
  /// The cost model's expressions may only mention parameters of `space`.
  SafetyOptimizer(CostModel model, ParameterSpace space);

  /// Minimizes f_cost over the parameter box.
  [[nodiscard]] SafetyOptimizationResult optimize(
      Algorithm algorithm = Algorithm::kMultiStartNelderMead) const;

  /// Evaluates cost and hazard probabilities at a given configuration
  /// (e.g. the engineers' initial guess).
  [[nodiscard]] SafetyOptimizationResult evaluate_at(
      const expr::ParameterAssignment& configuration) const;

  /// Compares a baseline configuration against an optimization result —
  /// the paper's §IV-C.2 reporting (risk improvement per hazard).
  [[nodiscard]] ComparisonReport compare(
      const expr::ParameterAssignment& baseline,
      const SafetyOptimizationResult& optimal) const;

  /// The underlying numeric problem (objective + box + exact gradient);
  /// exposed for benches and custom solvers.
  [[nodiscard]] opt::Problem problem() const;

  [[nodiscard]] const CostModel& model() const noexcept { return model_; }
  [[nodiscard]] const ParameterSpace& space() const noexcept { return space_; }

 private:
  CostModel model_;
  ParameterSpace space_;
};

}  // namespace safeopt::core

#endif  // SAFEOPT_CORE_SAFETY_OPTIMIZER_H
