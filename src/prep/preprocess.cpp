#include "safeopt/prep/preprocess.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "safeopt/support/contracts.h"
#include "safeopt/support/execution.h"
#include "safeopt/support/strings.h"

namespace safeopt::prep {
namespace {

// ---------------------------------------------------------------- the IR
//
// Passes rewrite a small mutable mirror of the FaultTree rather than the
// tree itself (FaultTree is append-only by design). Items are created
// children-first; rewrites alias an item to its replacement instead of
// erasing it, so ids stay stable and every pass resolves through the alias
// chain. TRUE/FALSE constant items exist so constant propagation has
// something to propagate (no source tree contains them, but a pass — or a
// future pass, see docs/extending.md — may introduce them).

enum class ItemKind : std::uint8_t {
  kBasic,
  kCondition,
  kGate,
  kTrue,
  kFalse,
};

struct Item {
  ItemKind kind = ItemKind::kBasic;
  fta::GateType gate = fta::GateType::kAnd;
  std::uint32_t k = 0;        // vote threshold for kKofN
  std::uint32_t ordinal = 0;  // original leaf ordinal (leaves only)
  std::vector<std::uint32_t> children;
  std::string name;
  std::string description;  // leaves only; gates are rebuilt bare
};

struct Ir {
  std::vector<Item> items;
  std::vector<std::uint32_t> alias;  // alias[i] == i when canonical
  std::uint32_t root = 0;
  std::unordered_set<std::string> names;

  std::uint32_t add(Item item) {
    const auto id = static_cast<std::uint32_t>(items.size());
    names.insert(item.name);
    items.push_back(std::move(item));
    alias.push_back(id);
    return id;
  }

  [[nodiscard]] std::uint32_t resolve(std::uint32_t id) {
    while (alias[id] != id) {
      alias[id] = alias[alias[id]];  // path halving
      id = alias[id];
    }
    return id;
  }

  /// A name not used by any existing node; `base` itself when free,
  /// otherwise base.2, base.3, ... (dots are legal ftio identifier chars).
  [[nodiscard]] std::string fresh_name(const std::string& base) {
    if (!names.contains(base)) return base;
    for (std::uint32_t suffix = 2;; ++suffix) {
      std::string candidate = concat(base, ".", std::to_string(suffix));
      if (!names.contains(candidate)) return candidate;
    }
  }

  /// Number of items reachable from the root through resolved edges.
  [[nodiscard]] std::size_t reachable_count() {
    std::vector<bool> seen(items.size(), false);
    std::vector<std::uint32_t> stack{resolve(root)};
    std::size_t count = 0;
    while (!stack.empty()) {
      const std::uint32_t id = stack.back();
      stack.pop_back();
      if (seen[id]) continue;
      seen[id] = true;
      ++count;
      for (const std::uint32_t child : items[id].children) {
        stack.push_back(resolve(child));
      }
    }
    return count;
  }
};

Ir build_ir(const fta::FaultTree& tree) {
  Ir ir;
  ir.items.reserve(tree.node_count());
  for (fta::NodeId id = 0; id < tree.node_count(); ++id) {
    Item item;
    item.name = tree.node_name(id);
    switch (tree.kind(id)) {
      case fta::NodeKind::kBasicEvent:
        item.kind = ItemKind::kBasic;
        item.ordinal = tree.basic_event_ordinal(id);
        item.description = tree.description(id);
        break;
      case fta::NodeKind::kCondition:
        item.kind = ItemKind::kCondition;
        item.ordinal = tree.condition_ordinal(id);
        item.description = tree.description(id);
        break;
      case fta::NodeKind::kGate:
        item.kind = ItemKind::kGate;
        item.gate = tree.gate_type(id);
        if (item.gate == fta::GateType::kKofN) item.k = tree.vote_threshold(id);
        item.children.assign(tree.children(id).begin(),
                             tree.children(id).end());
        break;
    }
    ir.add(std::move(item));
  }
  ir.root = tree.top();
  return ir;
}

[[nodiscard]] bool is_constant(const Item& item) {
  return item.kind == ItemKind::kTrue || item.kind == ItemKind::kFalse;
}

std::uint32_t constant(Ir& ir, bool value) {
  Item item;
  item.kind = value ? ItemKind::kTrue : ItemKind::kFalse;
  item.name = ir.fresh_name(value ? "const.true" : "const.false");
  return ir.add(std::move(item));
}

// ------------------------------------------------ redundancy/constants
//
// Bottom-up: duplicate AND/OR children collapse to the first occurrence,
// single-child AND/OR/XOR gates alias to their child, degenerate k-of-n
// becomes AND or OR, and TRUE/FALSE children short-circuit. INHIBIT is
// opaque (its condition leaf must stay under it — a validate() invariant).
// Every rewrite keeps the first DFS visit of every remaining leaf in place,
// which is what makes the pass bitwise probability-preserving.
PassStats run_propagate(Ir& ir) {
  PassStats stats{.name = "propagate", .nodes_before = ir.reachable_count()};
  for (std::uint32_t id = 0; id < ir.items.size(); ++id) {
    Item& item = ir.items[id];
    if (item.kind != ItemKind::kGate ||
        item.gate == fta::GateType::kInhibit) {
      continue;
    }
    std::vector<std::uint32_t> children;
    children.reserve(item.children.size());
    for (const std::uint32_t child : item.children) {
      children.push_back(ir.resolve(child));
    }

    if (item.gate == fta::GateType::kKofN) {
      // Fold constants into the threshold, then degrade to AND/OR.
      std::vector<std::uint32_t> kept;
      std::int64_t k = item.k;
      for (const std::uint32_t child : children) {
        if (ir.items[child].kind == ItemKind::kTrue) {
          --k;
          ++stats.rewrites;
        } else if (ir.items[child].kind == ItemKind::kFalse) {
          ++stats.rewrites;
        } else {
          kept.push_back(child);
        }
      }
      children = std::move(kept);
      if (k <= 0) {
        ir.alias[id] = constant(ir, true);
        ++stats.rewrites;
        continue;
      }
      if (std::cmp_greater(k, children.size())) {
        ir.alias[id] = constant(ir, false);
        ++stats.rewrites;
        continue;
      }
      if (std::cmp_equal(k, children.size())) {
        item.gate = fta::GateType::kAnd;
        item.k = 0;
        ++stats.rewrites;
      } else if (k == 1) {
        item.gate = fta::GateType::kOr;
        item.k = 0;
        ++stats.rewrites;
      } else {
        item.k = static_cast<std::uint32_t>(k);
        item.children = std::move(children);
        continue;
      }
    }

    if (item.gate == fta::GateType::kAnd || item.gate == fta::GateType::kOr) {
      const bool is_and = item.gate == fta::GateType::kAnd;
      std::vector<std::uint32_t> kept;
      bool short_circuit = false;
      for (const std::uint32_t child : children) {
        const Item& c = ir.items[child];
        if (is_constant(c)) {
          // AND absorbs TRUE / dies on FALSE; OR dually.
          if ((c.kind == ItemKind::kFalse) == is_and) short_circuit = true;
          ++stats.rewrites;
          continue;
        }
        if (std::find(kept.begin(), kept.end(), child) != kept.end()) {
          ++stats.rewrites;  // idempotence: x AND x = x OR x = x
          continue;
        }
        kept.push_back(child);
      }
      if (short_circuit) {
        ir.alias[id] = constant(ir, !is_and);
        continue;
      }
      if (kept.empty()) {
        ir.alias[id] = constant(ir, is_and);  // empty AND = 1, empty OR = 0
        ++stats.rewrites;
        continue;
      }
      children = std::move(kept);
    } else if (item.gate == fta::GateType::kXor) {
      // exactly-one: FALSE children are inert; anything stronger (a TRUE
      // child forces all siblings false) needs negation we cannot express.
      std::erase_if(children, [&](std::uint32_t child) {
        const bool drop = ir.items[child].kind == ItemKind::kFalse;
        if (drop) ++stats.rewrites;
        return drop;
      });
      if (children.empty()) {
        ir.alias[id] = constant(ir, false);
        ++stats.rewrites;
        continue;
      }
    }

    if (children.size() == 1 && item.gate != fta::GateType::kKofN) {
      ir.alias[id] = children.front();
      ++stats.rewrites;
      continue;
    }
    item.children = std::move(children);
  }
  ir.root = ir.resolve(ir.root);
  stats.nodes_after = ir.reachable_count();
  return stats;
}

// ----------------------------------------------------- k-of-n expansion
//
// Recursive Shannon split with memoized suffix thresholds:
//   ge(i, j) = "at least j of children[i..n)":
//     ge(i, 1)     = OR(children[i..n))
//     ge(i, n - i) = AND(children[i..n))
//     ge(i, j)     = OR(AND(children[i], ge(i+1, j-1)), ge(i+1, j))
// O(n·k) shared gates — never the C(n,k) sum-of-products blow-up — and the
// leaves keep their DFS first-visit order (child i is always reached before
// any gate that first touches child i+1).
PassStats run_normalize(Ir& ir) {
  PassStats stats{.name = "normalize", .nodes_before = ir.reachable_count()};
  const auto gate_count = static_cast<std::uint32_t>(ir.items.size());
  for (std::uint32_t id = 0; id < gate_count; ++id) {
    if (ir.items[id].kind != ItemKind::kGate ||
        ir.items[id].gate != fta::GateType::kKofN) {
      continue;
    }
    std::vector<std::uint32_t> children;
    for (const std::uint32_t child : ir.items[id].children) {
      children.push_back(ir.resolve(child));
    }
    const std::uint32_t n = static_cast<std::uint32_t>(children.size());
    const std::uint32_t k = ir.items[id].k;
    SAFEOPT_ASSERT(k >= 1 && k <= n);
    const std::string base = ir.items[id].name;

    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> memo;
    const auto ge = [&](auto&& self, std::uint32_t i,
                        std::uint32_t j) -> std::uint32_t {
      SAFEOPT_ASSERT(j >= 1 && j <= n - i);
      if (j == 1 && n - i == 1) return children[i];
      const auto key = std::make_pair(i, j);
      const auto it = memo.find(key);
      if (it != memo.end()) return it->second;
      Item gate;
      gate.kind = ItemKind::kGate;
      gate.name = ir.fresh_name(
          concat(base, ".ge", std::to_string(j), ".", std::to_string(i)));
      if (j == 1) {
        gate.gate = fta::GateType::kOr;
        gate.children.assign(children.begin() + i, children.end());
      } else if (j == n - i) {
        gate.gate = fta::GateType::kAnd;
        gate.children.assign(children.begin() + i, children.end());
      } else {
        Item take;
        take.kind = ItemKind::kGate;
        take.gate = fta::GateType::kAnd;
        take.name = ir.fresh_name(
            concat(base, ".take", std::to_string(j), ".", std::to_string(i)));
        take.children = {children[i], self(self, i + 1, j - 1)};
        const std::uint32_t take_id = ir.add(std::move(take));
        gate.gate = fta::GateType::kOr;
        gate.children = {take_id, self(self, i + 1, j)};
      }
      const std::uint32_t gate_id = ir.add(std::move(gate));
      memo.emplace(key, gate_id);
      return gate_id;
    };
    ir.alias[id] = ge(ge, 0, k);
    ++stats.rewrites;
  }
  ir.root = ir.resolve(ir.root);
  stats.nodes_after = ir.reachable_count();
  return stats;
}

// --------------------------------------------------- same-op flattening
//
// AND(AND(a, b), c) -> AND(a, b, c) whenever the inner gate has no other
// parent (a shared gate stays put: splicing it would duplicate structure
// and lose the sharing modularization feeds on). Splicing in place keeps
// the child order, hence the DFS leaf order. One ascending sweep cascades
// through whole same-op chains because children have been flattened by the
// time their parent is visited — except for gates synthesized *above* their
// parents by normalization, which a second sweep in a later propagate/merge
// round would catch; in practice normalization emits alternating AND/OR
// levels, so there is nothing to flatten there anyway.
PassStats run_flatten(Ir& ir) {
  PassStats stats{.name = "flatten", .nodes_before = ir.reachable_count()};
  // Reference counts over the resolved, reachable graph only.
  std::vector<std::uint32_t> refs(ir.items.size(), 0);
  {
    std::vector<bool> seen(ir.items.size(), false);
    std::vector<std::uint32_t> stack{ir.resolve(ir.root)};
    while (!stack.empty()) {
      const std::uint32_t id = stack.back();
      stack.pop_back();
      if (seen[id]) continue;
      seen[id] = true;
      for (const std::uint32_t raw : ir.items[id].children) {
        const std::uint32_t child = ir.resolve(raw);
        ++refs[child];
        stack.push_back(child);
      }
    }
  }
  for (std::uint32_t id = 0; id < ir.items.size(); ++id) {
    Item& item = ir.items[id];
    if (item.kind != ItemKind::kGate) continue;
    if (item.gate != fta::GateType::kAnd && item.gate != fta::GateType::kOr) {
      continue;
    }
    std::vector<std::uint32_t> flat;
    flat.reserve(item.children.size());
    for (const std::uint32_t raw : item.children) {
      const std::uint32_t child = ir.resolve(raw);
      const Item& c = ir.items[child];
      if (c.kind == ItemKind::kGate && c.gate == item.gate &&
          refs[child] == 1) {
        for (const std::uint32_t grand : c.children) {
          flat.push_back(ir.resolve(grand));
        }
        ++stats.rewrites;
      } else {
        flat.push_back(child);
      }
    }
    item.children = std::move(flat);
  }
  ir.root = ir.resolve(ir.root);
  stats.nodes_after = ir.reachable_count();
  return stats;
}

// ---------------------------------------------- common-argument merging
//
// Structural hash-consing: two gates with the same type, threshold and
// child *list* become one node. Equal-as-sets-but-differently-ordered
// gates are deliberately NOT merged — reordering children would permute
// the DFS leaf first-visit order and break the bitwise-parity guarantee.
PassStats run_merge(Ir& ir) {
  PassStats stats{.name = "merge", .nodes_before = ir.reachable_count()};
  std::map<std::tuple<fta::GateType, std::uint32_t,
                      std::vector<std::uint32_t>>,
           std::uint32_t>
      canonical;
  for (std::uint32_t id = 0; id < ir.items.size(); ++id) {
    Item& item = ir.items[id];
    if (item.kind != ItemKind::kGate) continue;
    for (std::uint32_t& child : item.children) child = ir.resolve(child);
    const auto [it, inserted] = canonical.try_emplace(
        std::make_tuple(item.gate, item.k, item.children), id);
    if (!inserted) {
      ir.alias[id] = it->second;
      ++stats.rewrites;
    }
  }
  ir.root = ir.resolve(ir.root);
  stats.nodes_after = ir.reachable_count();
  return stats;
}

// --------------------------------------------------------- modularization
//
// Dutuit & Rauzy's linear-time module detection. One DFS with a global
// clock stamps every node's first and last *touch*; children are expanded
// only on first touch. A gate g is a module iff every strict descendant is
// touched exclusively inside g's first traversal — i.e. the min first-touch
// of its descendants is after g's own first touch and the max last-touch is
// before the first traversal of g completed. Shared gates whose sharing is
// entirely internal to the subtree still qualify; any edge from outside
// moves a descendant's touch outside the window and disqualifies g.

struct ModuleScan {
  std::vector<std::uint32_t> postorder;  // reachable ids, children first
  std::vector<bool> is_module;           // by item id
  std::vector<std::size_t> leaf_refs;    // DAG leaf-reference weight
};

ModuleScan scan_modules(Ir& ir) {
  const std::size_t n = ir.items.size();
  constexpr std::uint64_t kUnset = 0;
  std::vector<std::uint64_t> first(n, kUnset);
  std::vector<std::uint64_t> last(n, kUnset);
  std::vector<std::uint64_t> exit1(n, kUnset);
  ModuleScan scan;
  scan.is_module.assign(n, false);
  scan.leaf_refs.assign(n, 0);

  std::uint64_t clock = 0;
  struct Frame {
    std::uint32_t id;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack;
  const auto touch = [&](std::uint32_t id) {
    ++clock;
    last[id] = clock;
    if (first[id] == kUnset) {
      first[id] = clock;
      stack.push_back({id});
    }
  };
  touch(ir.resolve(ir.root));
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const Item& item = ir.items[frame.id];
    if (frame.next_child < item.children.size()) {
      const std::uint32_t child =
          ir.resolve(item.children[frame.next_child++]);
      touch(child);
    } else {
      ++clock;
      exit1[frame.id] = clock;
      last[frame.id] = clock;
      scan.postorder.push_back(frame.id);
      stack.pop_back();
    }
  }

  // Strict-descendant touch windows, children-first over the DAG.
  std::vector<std::uint64_t> desc_min(
      n, std::numeric_limits<std::uint64_t>::max());
  std::vector<std::uint64_t> desc_max(n, 0);
  for (const std::uint32_t id : scan.postorder) {
    const Item& item = ir.items[id];
    if (item.kind != ItemKind::kGate) {
      scan.leaf_refs[id] = is_constant(item) ? 0 : 1;
      continue;
    }
    std::size_t refs = 0;
    for (const std::uint32_t raw : item.children) {
      const std::uint32_t child = ir.resolve(raw);
      desc_min[id] = std::min({desc_min[id], first[child], desc_min[child]});
      desc_max[id] = std::max({desc_max[id], last[child], desc_max[child]});
      refs += scan.leaf_refs[child];
    }
    scan.leaf_refs[id] = refs;
    scan.is_module[id] =
        desc_min[id] > first[id] && desc_max[id] < exit1[id];
  }
  return scan;
}

// ------------------------------------------------------------- rebuild

/// Builds the FaultTree for the subtree rooted at `start`, stopping at
/// chosen module boundaries (they become pseudo-leaf basic events named
/// after the module gate). Leaves are created at their DFS first visit, so
/// subtree ordinal order *is* DFS order — the BDD variable order.
Subtree build_subtree(Ir& ir, std::uint32_t start, std::string tree_name,
                      const std::vector<std::int64_t>& module_of) {
  Subtree subtree{.tree = fta::FaultTree(std::move(tree_name)),
                  .name = ir.items[start].name,
                  .basic_origin = {},
                  .condition_origin = {}};
  std::unordered_map<std::uint32_t, fta::NodeId> built;
  const auto build = [&](auto&& self, std::uint32_t id) -> fta::NodeId {
    const auto it = built.find(id);
    if (it != built.end()) return it->second;
    const Item& item = ir.items[id];
    fta::NodeId node = 0;
    if (id != start && module_of[id] >= 0) {
      node = subtree.tree.add_basic_event(item.name);
      subtree.basic_origin.push_back(
          {LeafOrigin::Kind::kModule,
           static_cast<std::uint32_t>(module_of[id])});
    } else {
      switch (item.kind) {
        case ItemKind::kBasic:
          node = subtree.tree.add_basic_event(item.name, item.description);
          subtree.basic_origin.push_back(
              {LeafOrigin::Kind::kBasicEvent, item.ordinal});
          break;
        case ItemKind::kCondition:
          node = subtree.tree.add_condition(item.name, item.description);
          subtree.condition_origin.push_back(item.ordinal);
          break;
        case ItemKind::kTrue:
        case ItemKind::kFalse:
          // Constants reaching the rebuild would need TRUE/FALSE leaves the
          // FaultTree model does not have. Constant-free inputs never get
          // here: propagate() folds every constant a pass introduces.
          SAFEOPT_ASSERT(false && "unfolded constant survived preprocessing");
          break;
        case ItemKind::kGate: {
          std::vector<fta::NodeId> children;
          children.reserve(item.children.size());
          for (const std::uint32_t raw : item.children) {
            children.push_back(self(self, ir.resolve(raw)));
          }
          switch (item.gate) {
            case fta::GateType::kAnd:
              node = subtree.tree.add_and(item.name, std::move(children));
              break;
            case fta::GateType::kOr:
              node = subtree.tree.add_or(item.name, std::move(children));
              break;
            case fta::GateType::kKofN:
              node = subtree.tree.add_k_of_n(item.name, item.k,
                                             std::move(children));
              break;
            case fta::GateType::kXor:
              node = subtree.tree.add_xor(item.name, std::move(children));
              break;
            case fta::GateType::kInhibit:
              SAFEOPT_ASSERT(children.size() == 2);
              node = subtree.tree.add_inhibit(item.name, children[0],
                                              children[1]);
              break;
          }
          break;
        }
      }
    }
    built.emplace(id, node);
    return node;
  };
  subtree.tree.set_top(build(build, start));
  return subtree;
}

}  // namespace

PreprocessedTree preprocess(const fta::FaultTree& tree,
                            const PreprocessOptions& options) {
  SAFEOPT_EXPECTS(tree.has_top());
  Ir ir = build_ir(tree);

  PreprocessedTree result;
  result.statistics.events_before =
      tree.basic_event_count() + tree.condition_count();
  result.statistics.gates_before = tree.gate_count();

  // Pass-boundary poll: passes are all-or-nothing (they rewrite a private
  // IR), so between-pass checkpoints are the finest abort granularity that
  // still leaves nothing torn.
  const auto checkpoint = [&options] {
    if (options.control != nullptr) {
      options.control->check("fault-tree preprocessing");
    }
  };
  checkpoint();
  if (options.propagate) result.statistics.passes.push_back(run_propagate(ir));
  checkpoint();
  if (options.normalize) result.statistics.passes.push_back(run_normalize(ir));
  checkpoint();
  if (options.flatten) result.statistics.passes.push_back(run_flatten(ir));
  checkpoint();
  if (options.merge) result.statistics.passes.push_back(run_merge(ir));
  checkpoint();
  // Normalization/flattening/merging expose fresh redundancy (e.g. a merged
  // gate appearing twice under one AND); one more propagation folds it.
  if (options.propagate &&
      (options.normalize || options.flatten || options.merge)) {
    result.statistics.passes.push_back(run_propagate(ir));
  }
  checkpoint();

  // Pick modules bottom-up (postorder puts inner modules first), excluding
  // the root — the top subtree is built last and is "the" tree.
  std::vector<std::int64_t> module_of(ir.items.size(), -1);
  const std::uint32_t root = ir.resolve(ir.root);
  if (options.modularize) {
    const ModuleScan scan = scan_modules(ir);
    for (const std::uint32_t id : scan.postorder) {
      if (id == root || !scan.is_module[id]) continue;
      if (scan.leaf_refs[id] < options.module_min_leaves) continue;
      module_of[id] = static_cast<std::int64_t>(result.subtrees.size());
      result.subtrees.push_back(
          build_subtree(ir, id, ir.items[id].name, module_of));
    }
  }
  result.statistics.modules = result.subtrees.size();
  result.subtrees.push_back(build_subtree(ir, root, tree.name(), module_of));

  const Subtree& top = result.subtrees.back();
  result.statistics.events_after =
      top.tree.basic_event_count() + top.tree.condition_count();
  for (const Subtree& subtree : result.subtrees) {
    result.statistics.gates_after += subtree.tree.gate_count();
  }
  return result;
}

fta::QuantificationInput PreprocessedTree::input_for(
    std::size_t index, const fta::QuantificationInput& original,
    const std::vector<double>& module_probability) const {
  SAFEOPT_EXPECTS(index < subtrees.size());
  const Subtree& subtree = subtrees[index];
  fta::QuantificationInput input;
  input.basic_event_probability.reserve(subtree.basic_origin.size());
  for (const LeafOrigin& origin : subtree.basic_origin) {
    switch (origin.kind) {
      case LeafOrigin::Kind::kBasicEvent:
        input.basic_event_probability.push_back(
            original.basic_event_probability[origin.index]);
        break;
      case LeafOrigin::Kind::kModule:
        SAFEOPT_EXPECTS(origin.index < module_probability.size());
        input.basic_event_probability.push_back(
            module_probability[origin.index]);
        break;
      case LeafOrigin::Kind::kCondition:
        SAFEOPT_ASSERT(false && "condition origin on a basic-event leaf");
        break;
    }
  }
  input.condition_probability.reserve(subtree.condition_origin.size());
  for (const std::uint32_t ordinal : subtree.condition_origin) {
    input.condition_probability.push_back(
        original.condition_probability[ordinal]);
  }
  return input;
}

CompiledPreprocessedTree::CompiledPreprocessedTree(
    const PreprocessedTree& preprocessed, const bdd::BddOptions& options)
    : preprocessed_(&preprocessed) {
  compiled_.reserve(preprocessed.subtrees.size());
  for (const Subtree& subtree : preprocessed.subtrees) {
    // `options` is a per-manager ceiling, not a per-manager grant: a module
    // a few dozen nodes wide must not zero a multi-megabyte ITE cache (with
    // hundreds of modules that would dwarf the quantification itself). Each
    // module gets geometry proportional to its own size, capped by the
    // caller's options. Results are unaffected — the cache only memoizes.
    bdd::BddOptions scaled = options;
    std::size_t hint = 16;
    while (hint < 64 * subtree.tree.node_count()) hint <<= 1;
    scaled.cache_size = std::min(scaled.cache_size, hint);
    scaled.initial_table_size = std::min(scaled.initial_table_size, hint);
    compiled_.push_back(bdd::compile(subtree.tree, scaled));
    const bdd::BddStatistics& stats =
        compiled_.back().manager.statistics();
    statistics_.decision_nodes += stats.decision_node_count();
    statistics_.ite_calls += stats.ite_calls;
    statistics_.cache_hits += stats.cache_hits;
    statistics_.cache_evictions += stats.cache_evictions;
  }
}

double CompiledPreprocessedTree::probability(
    const fta::QuantificationInput& input) {
  std::vector<double> module_probability;
  module_probability.reserve(compiled_.size());
  double probability = 0.0;
  for (std::size_t i = 0; i < compiled_.size(); ++i) {
    probability = compiled_[i].probability(
        preprocessed_->input_for(i, input, module_probability));
    module_probability.push_back(probability);
  }
  return probability;
}

ModularBddResult quantify_bdd(const PreprocessedTree& preprocessed,
                              const fta::QuantificationInput& input,
                              const bdd::BddOptions& options) {
  CompiledPreprocessedTree compiled(preprocessed, options);
  ModularBddResult result = compiled.compile_statistics();
  result.probability = compiled.probability(input);
  return result;
}

namespace {

/// a ∪ b with sorted duplicate-free invariant maintained.
fta::CutSet merge_cut_sets(const fta::CutSet& a, const fta::CutSet& b) {
  fta::CutSet merged;
  std::set_union(a.events.begin(), a.events.end(), b.events.begin(),
                 b.events.end(), std::back_inserter(merged.events));
  std::set_union(a.conditions.begin(), a.conditions.end(),
                 b.conditions.begin(), b.conditions.end(),
                 std::back_inserter(merged.conditions));
  return merged;
}

}  // namespace

fta::CutSetCollection minimal_cut_sets(const PreprocessedTree& preprocessed) {
  // Bottom-up: composed[i] holds subtree i's cut sets already expressed in
  // the original tree's ordinals, so substituting a module pseudo-leaf is a
  // cartesian product with an earlier entry.
  std::vector<fta::CutSetCollection> composed;
  composed.reserve(preprocessed.subtrees.size());
  for (std::size_t i = 0; i < preprocessed.subtrees.size(); ++i) {
    const Subtree& subtree = preprocessed.subtrees[i];
    const fta::CutSetCollection local =
        fta::minimal_cut_sets(subtree.tree);
    std::vector<fta::CutSet> expanded;
    for (const fta::CutSet& cut : local) {
      // Split the local cut set into its direct (original-ordinal) part and
      // the modules to substitute.
      fta::CutSet direct;
      std::vector<std::uint32_t> modules;
      for (const fta::BasicEventOrdinal event : cut.events) {
        const LeafOrigin& origin = subtree.basic_origin[event];
        if (origin.kind == LeafOrigin::Kind::kModule) {
          modules.push_back(origin.index);
        } else {
          direct.events.push_back(origin.index);
        }
      }
      for (const fta::ConditionOrdinal condition : cut.conditions) {
        direct.conditions.push_back(subtree.condition_origin[condition]);
      }
      std::sort(direct.events.begin(), direct.events.end());
      std::sort(direct.conditions.begin(), direct.conditions.end());
      std::vector<fta::CutSet> partial{std::move(direct)};
      for (const std::uint32_t module : modules) {
        std::vector<fta::CutSet> next;
        next.reserve(partial.size() * composed[module].size());
        for (const fta::CutSet& p : partial) {
          for (const fta::CutSet& m : composed[module]) {
            next.push_back(merge_cut_sets(p, m));
          }
        }
        partial = std::move(next);
      }
      expanded.insert(expanded.end(),
                      std::make_move_iterator(partial.begin()),
                      std::make_move_iterator(partial.end()));
    }
    fta::CutSetCollection collection(std::move(expanded));
    collection.minimize();
    composed.push_back(std::move(collection));
  }
  return std::move(composed.back());
}

}  // namespace safeopt::prep
