#include "safeopt/opt/solver.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "builtin_solvers.h"
#include "safeopt/support/contracts.h"
#include "safeopt/support/execution.h"
#include "safeopt/support/mutex.h"
#include "safeopt/support/registry.h"
#include "safeopt/support/strings.h"
#include "safeopt/support/thread_annotations.h"

namespace safeopt::opt {

// ------------------------------------------------------------ SolverConfig

SolverConfig& SolverConfig::set(std::string_view key, double value) {
  numbers_.insert_or_assign(std::string(key), value);
  return *this;
}

SolverConfig& SolverConfig::set(std::string_view key, std::string value) {
  strings_.insert_or_assign(std::string(key), std::move(value));
  return *this;
}

SolverConfig& SolverConfig::set_extra_argument(
    std::string_view key_equals_value) {
  const std::size_t equals = key_equals_value.find('=');
  if (equals == std::string_view::npos) {
    throw std::invalid_argument(concat("solver extra must be key=value, got \"",
                                       key_equals_value, "\""));
  }
  const std::string_view key = key_equals_value.substr(0, equals);
  const std::string_view value = key_equals_value.substr(equals + 1);
  if (key.empty() || value.empty()) {
    throw std::invalid_argument(concat("solver extra must be key=value, got \"",
                                       key_equals_value, "\""));
  }
  double number = 0.0;
  const auto [end, ec] =
      std::from_chars(value.data(), value.data() + value.size(), number);
  if (ec == std::errc{} && end == value.data() + value.size()) {
    return set(key, number);
  }
  // "starts=4x" / "starts=1_000": a value that *starts* numeric but fails
  // the full parse is a typo, not a string extra — storing it as a string
  // would make count_or/number_or silently fall back to their defaults.
  if (numeric_looking(value)) {
    throw std::invalid_argument(
        concat("solver extra \"", key, "\" has a malformed numeric value \"",
               value, "\""));
  }
  return set(key, std::string(value));
}

bool SolverConfig::numeric_looking(std::string_view value) noexcept {
  if (value.empty()) return false;
  const char first = value.front();
  return (first >= '0' && first <= '9') || first == '-' || first == '+' ||
         first == '.';
}

bool SolverConfig::has(std::string_view key) const noexcept {
  return numbers_.find(key) != numbers_.end() ||
         strings_.find(key) != strings_.end();
}

double SolverConfig::number_or(std::string_view key,
                               double fallback) const noexcept {
  const auto it = numbers_.find(key);
  return it != numbers_.end() ? it->second : fallback;
}

std::size_t SolverConfig::count_or(std::string_view key,
                                   std::size_t fallback) const {
  const auto it = numbers_.find(key);
  if (it == numbers_.end()) return fallback;
  const double value = it->second;
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  if (!(value >= 0.0) || value > kMaxExact ||
      value != std::floor(value)) {  // rejects NaN, negatives, fractions
    throw std::invalid_argument(concat("extra \"", key,
                                       "\" must be a non-negative integer"));
  }
  return static_cast<std::size_t>(value);
}

std::string SolverConfig::string_or(std::string_view key,
                                    std::string_view fallback) const {
  const auto it = strings_.find(key);
  return it != strings_.end() ? it->second : std::string(fallback);
}

// ---------------------------------------------------------- instrumentation

namespace {

/// Wraps a Problem to count evaluations, track the best point, fire the
/// progress observer, and enforce the evaluation budget. All shared state is
/// guarded by one mutex (multi_start may evaluate from pool workers); the
/// wrapped calls produce exactly the values the original problem produces,
/// so instrumentation never changes a trajectory — it can only cut one short
/// when the budget runs out, after which the objective reports +inf without
/// evaluating (the solver then winds down on its own and the best point seen
/// within budget is returned).
class Instrument {
 public:
  explicit Instrument(const SolverConfig& config)
      : budget_(config.max_evaluations),
        observer_(config.observer),
        control_(config.control) {}

  [[nodiscard]] Problem wrap(const Problem& original) {
    Problem wrapped;
    wrapped.bounds = original.bounds;
    wrapped.gradient = original.gradient;  // exact gradients are not billed
    wrapped.objective = [this, &original](std::span<const double> x) {
      if (!reserve(1)) return std::numeric_limits<double>::infinity();
      const double value = original.objective(x);
      record(x, value);
      return value;
    };
    // Batch paths are decided at batch granularity: a batch that starts
    // under budget runs to completion (values identical to the unwrapped
    // problem for any thread count), and only the in-budget prefix is
    // counted. Capability flags must not change — solvers pick code paths
    // by has_batch_objective()/has_batch_gradient().
    if (original.has_batch_objective()) {
      wrapped.batch_objective = [this, &original](
                                    std::span<const double> points,
                                    std::span<double> out) {
        if (!reserve(out.size())) {
          std::fill(out.begin(), out.end(),
                    std::numeric_limits<double>::infinity());
          return;
        }
        original.evaluate_batch(points, out);
        record_batch(points, out);
      };
    }
    if (original.has_batch_gradient()) {
      wrapped.batch_gradient = [this, &original](
                                   std::span<const double> points,
                                   std::span<double> values_out,
                                   std::span<double> gradients_out) {
        if (!reserve(values_out.size())) {
          std::fill(values_out.begin(), values_out.end(),
                    std::numeric_limits<double>::infinity());
          std::fill(gradients_out.begin(), gradients_out.end(), 0.0);
          return;
        }
        original.evaluate_batch_with_gradients(points, values_out,
                                               gradients_out);
        record_batch(points, values_out);
      };
    }
    return wrapped;
  }

  /// Applies the instrumented accounting to the solver's raw result.
  [[nodiscard]] OptimizationResult finalize(OptimizationResult result) {
    const MutexLock lock(mutex_);
    if (abort_status_ != ExecutionStatus::kRunning) {
      result.evaluations = evaluations_;
      result.converged = false;
      result.message = concat(status_reason(abort_status_), " after ",
                              std::to_string(evaluations_), " evaluations");
      if (!best_point_.empty()) {
        result.argmin = best_point_;
        result.value = best_value_;
      }
    } else if (exhausted_) {
      result.evaluations = evaluations_;
      result.converged = false;
      result.message = concat("evaluation budget exhausted after ",
                              std::to_string(evaluations_), " evaluations");
      if (!best_point_.empty()) {
        result.argmin = best_point_;
        result.value = best_value_;
      }
    }
    return result;
  }

 private:
  /// Books `n` evaluations against the budget. Returns false when the
  /// budget was already spent (the caller must then report +inf without
  /// evaluating). A request that straddles the boundary is granted in full
  /// but billed only up to the budget, keeping the reported count <= budget.
  [[nodiscard]] bool reserve(std::size_t n) {
    const MutexLock lock(mutex_);
    // Abort check first: once the control fires, the refusal is sticky (no
    // further status polls), every later evaluation reports +inf, and the
    // run winds down exactly like a spent budget.
    if (control_ != nullptr && abort_status_ == ExecutionStatus::kRunning) {
      abort_status_ = control_->status();
    }
    if (abort_status_ != ExecutionStatus::kRunning) return false;
    if (budget_ == 0) {
      evaluations_ += n;
      return true;
    }
    if (evaluations_ >= budget_) {
      exhausted_ = true;
      return false;
    }
    if (evaluations_ + n > budget_) {
      // Granted in full, billed up to the budget. A run that finishes using
      // *exactly* the budget is a normal completion — exhausted_ is only
      // set when a request overruns or is refused.
      evaluations_ = budget_;
      exhausted_ = true;
    } else {
      evaluations_ += n;
    }
    return true;
  }

  void record(std::span<const double> x, double value) {
    const MutexLock lock(mutex_);
    if (!(value < best_value_)) return;
    best_value_ = value;
    best_point_.assign(x.begin(), x.end());
    notify();
  }

  void record_batch(std::span<const double> points,
                    std::span<double> values) {
    if (values.empty()) return;
    const std::size_t dim = points.size() / values.size();
    const MutexLock lock(mutex_);
    bool improved = false;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i] < best_value_) {
        best_value_ = values[i];
        best_point_.assign(points.begin() + static_cast<std::ptrdiff_t>(i * dim),
                           points.begin() +
                               static_cast<std::ptrdiff_t>((i + 1) * dim));
        improved = true;
      }
    }
    if (improved) notify();  // one event per improving batch
  }

  void notify() SAFEOPT_REQUIRES(mutex_) {
    if (!observer_) return;
    ProgressEvent event;
    event.iteration = events_++;
    event.evaluations = evaluations_;
    event.best_value = best_value_;
    event.best_point = best_point_;
    observer_(event);
  }

  Mutex mutex_;
  std::size_t budget_;
  const ProgressObserver& observer_;
  const ExecutionControl* control_;
  std::size_t evaluations_ SAFEOPT_GUARDED_BY(mutex_) = 0;
  std::size_t events_ SAFEOPT_GUARDED_BY(mutex_) = 0;
  double best_value_ SAFEOPT_GUARDED_BY(mutex_) =
      std::numeric_limits<double>::infinity();
  std::vector<double> best_point_ SAFEOPT_GUARDED_BY(mutex_);
  bool exhausted_ SAFEOPT_GUARDED_BY(mutex_) = false;
  ExecutionStatus abort_status_ SAFEOPT_GUARDED_BY(mutex_) =
      ExecutionStatus::kRunning;
};

}  // namespace

// ----------------------------------------------------------------- Solver

void Solver::check(const Problem& problem) const {
  if (!problem.objective) {
    throw std::invalid_argument(
        concat(name(), ": the problem has no objective"));
  }
  const std::size_t dim = problem.bounds.dimension();
  if (dim == 0) {
    throw std::invalid_argument(
        concat(name(), ": the problem's bounds are empty (dimension 0)"));
  }
  const SolverTraits t = traits();
  if (t.max_dimension != 0 && dim > t.max_dimension) {
    throw std::invalid_argument(concat(
        name(), " handles at most ", std::to_string(t.max_dimension),
        "-dimensional problems, but the box has ", std::to_string(dim),
        " dimensions; pick another solver from SolverRegistry::available()"));
  }
}

OptimizationResult Solver::solve(const Problem& problem,
                                 const SolverConfig& config) const {
  check(problem);
  if (!config.initial.empty() &&
      config.initial.size() != problem.bounds.dimension()) {
    throw std::invalid_argument(concat(
        name(), ": initial point has ", std::to_string(config.initial.size()),
        " coordinates for a ", std::to_string(problem.bounds.dimension()),
        "-dimensional box"));
  }
  if (!config.observer && config.max_evaluations == 0 &&
      config.control == nullptr) {
    return run(problem, config);  // untouched fast path, bit-identical
  }
  Instrument instrument(config);
  const Problem wrapped = instrument.wrap(problem);
  return instrument.finalize(run(wrapped, config));
}

// --------------------------------------------------------- SolverRegistry

namespace {

/// The shared registry scaffolding, seeded with the nine built-in solvers
/// on first use (via named factory functions the linker cannot drop — see
/// builtin_solvers.h).
NameRegistry<SolverRegistry::Factory>& registry() {
  static NameRegistry<SolverRegistry::Factory> instance(
      "solver",
      {{"coordinate_descent", &detail::make_coordinate_descent_solver},
       {"differential_evolution", &detail::make_differential_evolution_solver},
       {"golden_section", &detail::make_golden_section_solver},
       {"gradient_descent", &detail::make_gradient_descent_solver},
       {"grid_search", &detail::make_grid_search_solver},
       {"hooke_jeeves", &detail::make_hooke_jeeves_solver},
       {"multi_start", &detail::make_multi_start_solver},
       {"nelder_mead", &detail::make_nelder_mead_solver},
       {"simulated_annealing", &detail::make_simulated_annealing_solver}});
  return instance;
}

}  // namespace

bool SolverRegistry::add(std::string name, Factory factory) {
  return registry().add(std::move(name), std::move(factory));
}

std::unique_ptr<Solver> SolverRegistry::create(std::string_view name) {
  std::unique_ptr<Solver> solver = registry().find(name)();
  SAFEOPT_ENSURES(solver != nullptr);
  return solver;
}

bool SolverRegistry::contains(std::string_view name) {
  return registry().contains(name);
}

std::vector<std::string> SolverRegistry::available() {
  return registry().available();
}

}  // namespace safeopt::opt
