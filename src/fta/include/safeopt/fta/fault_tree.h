// Fault tree object model (paper §II).
//
// A fault tree is a rooted DAG. The root is the *hazard* (top event), inner
// nodes are *gates* over intermediate events, and leaves are either
//   * basic events — the "primary failures" PF_i of the paper, or
//   * conditions   — environmental constraints attached to INHIBIT gates
//                    (paper §II-D.1: "this condition must not be a failure").
// Keeping conditions as a distinct leaf kind is what lets the quantification
// layer implement the paper's Eq. 2, P(CS) = P(Constraints)·∏ P(PF), with the
// constraint factor separated from the failure factors.
//
// Supported gates: AND, OR, k-of-n (VOTE), XOR, INHIBIT. NOT is deliberately
// unsupported: the cut-set machinery assumes coherent trees, as does the
// paper. XOR is expanded to OR for cut-set purposes (the coherent hull),
// which is the standard conservative treatment.
//
// Nodes are created bottom-up (children must exist before their parent),
// which makes the structure acyclic by construction while still allowing
// shared subtrees (repeated events), the case where minimal-cut-set
// *minimization* actually matters.
#ifndef SAFEOPT_FTA_FAULT_TREE_H
#define SAFEOPT_FTA_FAULT_TREE_H

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace safeopt::fta {

/// Index of a node within its FaultTree. Stable for the tree's lifetime.
using NodeId = std::uint32_t;

/// Dense index over the tree's basic events, in creation order. Quantitative
/// inputs (probabilities, Monte Carlo states) are vectors over this ordinal.
using BasicEventOrdinal = std::uint32_t;

/// Dense index over the tree's conditions, in creation order.
using ConditionOrdinal = std::uint32_t;

enum class NodeKind : std::uint8_t { kBasicEvent, kCondition, kGate };

enum class GateType : std::uint8_t { kAnd, kOr, kKofN, kXor, kInhibit };

/// Returns "AND", "OR", "KOFN", "XOR" or "INHIBIT".
[[nodiscard]] std::string_view to_string(GateType type) noexcept;

class FaultTree {
 public:
  /// Creates an empty tree. `name` identifies the modelled hazard context in
  /// reports (e.g. "Collision").
  explicit FaultTree(std::string name);

  // ---- construction (bottom-up) -------------------------------------------

  /// Adds a primary failure leaf. Names must be unique within the tree.
  NodeId add_basic_event(std::string name, std::string description = {});

  /// Adds an environmental-condition leaf for use under INHIBIT gates.
  NodeId add_condition(std::string name, std::string description = {});

  /// Adds an AND gate over >= 1 children.
  NodeId add_and(std::string name, std::vector<NodeId> children);

  /// Adds an OR gate over >= 1 children.
  NodeId add_or(std::string name, std::vector<NodeId> children);

  /// Adds a k-of-n voting gate: true iff at least `k` children are true.
  /// Precondition: 1 <= k <= children.size().
  NodeId add_k_of_n(std::string name, std::uint32_t k,
                    std::vector<NodeId> children);

  /// Adds an XOR gate: true iff exactly one child is true.
  NodeId add_xor(std::string name, std::vector<NodeId> children);

  /// Adds an INHIBIT gate: `cause` propagates only while `condition` holds.
  /// Precondition: `condition` refers to a kCondition leaf.
  NodeId add_inhibit(std::string name, NodeId cause, NodeId condition);

  /// Declares the hazard / top event. Must be called exactly once before any
  /// analysis. Precondition: `top` is a gate or basic event of this tree.
  void set_top(NodeId top);

  // ---- structural queries --------------------------------------------------

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool has_top() const noexcept { return top_.has_value(); }
  /// Precondition: has_top().
  [[nodiscard]] NodeId top() const;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t basic_event_count() const noexcept {
    return basic_events_.size();
  }
  [[nodiscard]] std::size_t condition_count() const noexcept {
    return conditions_.size();
  }
  [[nodiscard]] std::size_t gate_count() const noexcept;

  [[nodiscard]] NodeKind kind(NodeId id) const;
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] const std::string& description(NodeId id) const;
  /// Precondition: kind(id) == kGate.
  [[nodiscard]] GateType gate_type(NodeId id) const;
  /// Precondition: kind(id) == kGate. For INHIBIT the children are
  /// {cause, condition} in that order.
  [[nodiscard]] std::span<const NodeId> children(NodeId id) const;
  /// Precondition: gate_type(id) == kKofN.
  [[nodiscard]] std::uint32_t vote_threshold(NodeId id) const;

  /// NodeId for `name`, or nullopt if no node has that name.
  [[nodiscard]] std::optional<NodeId> find(std::string_view name) const;

  /// Basic-event NodeIds in ordinal (creation) order.
  [[nodiscard]] std::span<const NodeId> basic_events() const noexcept {
    return basic_events_;
  }
  /// Condition NodeIds in ordinal (creation) order.
  [[nodiscard]] std::span<const NodeId> conditions() const noexcept {
    return conditions_;
  }
  /// Precondition: kind(id) == kBasicEvent.
  [[nodiscard]] BasicEventOrdinal basic_event_ordinal(NodeId id) const;
  /// Precondition: kind(id) == kCondition.
  [[nodiscard]] ConditionOrdinal condition_ordinal(NodeId id) const;

  // ---- semantics -----------------------------------------------------------

  /// Evaluates the structure function: does the hazard occur under the given
  /// leaf truth assignment? `basic_state` is indexed by BasicEventOrdinal,
  /// `condition_state` by ConditionOrdinal; both must cover every leaf.
  /// Precondition: has_top().
  [[nodiscard]] bool evaluate(const std::vector<bool>& basic_state,
                              const std::vector<bool>& condition_state) const;

  /// Convenience overload for trees without conditions.
  [[nodiscard]] bool evaluate(const std::vector<bool>& basic_state) const;

  /// Checks well-formedness beyond what construction enforces: a top event is
  /// set, every node is reachable from it, INHIBIT conditions are condition
  /// leaves and conditions appear only under INHIBIT gates. Returns a list of
  /// human-readable problems; empty means valid.
  [[nodiscard]] std::vector<std::string> validate() const;

 private:
  struct Node {
    NodeKind node_kind = NodeKind::kBasicEvent;
    GateType gate = GateType::kAnd;
    std::uint32_t k = 0;  // vote threshold for kKofN
    std::string name;
    std::string description;
    std::vector<NodeId> children;
  };

  NodeId add_node(Node node);
  NodeId add_gate(std::string name, GateType type, std::uint32_t k,
                  std::vector<NodeId> children);
  void check_child_ids(std::span<const NodeId> children) const;
  [[nodiscard]] bool evaluate_node(NodeId id,
                                   const std::vector<bool>& basic_state,
                                   const std::vector<bool>& condition_state,
                                   std::vector<signed char>& memo) const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> basic_events_;
  std::vector<NodeId> conditions_;
  std::map<std::string, NodeId, std::less<>> by_name_;
  std::optional<NodeId> top_;
};

}  // namespace safeopt::fta

#endif  // SAFEOPT_FTA_FAULT_TREE_H
