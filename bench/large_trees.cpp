// Experiment: the preprocessing pipeline + per-module BDD compilation on
// the scaling corpus (tools/corpus.h) — the on/off ablation behind the
// "industrial-scale trees" claim.
//
// For each tier the run quantifies the same tree twice:
//
//   plain  bdd::compile on the raw tree — one monolithic BDD threading the
//          top vote through every variable (skipped above --plain-limit
//          events, where monolithic compilation stops being reasonable);
//   prep   preprocess() (propagate/normalize/flatten/merge/modularize) and
//          CompiledPreprocessedTree — every module compiled once, the top
//          vote taken over module pseudo-variables.
//
// Contracts verified on the way:
//
//   agreement               plain and preprocessed probabilities match to
//                           1e-9 relative (modularization re-associates the
//                           floating-point product, so bitwise equality is
//                           not expected on this path — see prep docs);
//   cache_geometry_invariant the preprocessed probability is *bitwise*
//                           identical when every ITE cache is shrunk to 64
//                           slots (the cache only memoizes);
//   determinism             node counts are seeded-corpus deterministic, so
//                           scripts/compare_bench.py gates them for exact
//                           equality against BENCH_large_trees.json.
//
// Usage: bench_large_trees [--json PATH] [--plain-limit EVENTS]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "safeopt/bdd/bdd.h"
#include "safeopt/prep/preprocess.h"
#include "tools/corpus.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

struct TierReport {
  std::string name;
  std::size_t events = 0;
  std::size_t modules = 0;
  double probability = 0.0;
  double pipeline_ms = 0.0;
  double prep_compile_eval_ms = 0.0;
  std::size_t prep_decision_nodes = 0;
  std::size_t prep_ite_calls = 0;
  bool plain_measured = false;
  double plain_probability = 0.0;
  double plain_compile_eval_ms = 0.0;
  std::size_t plain_decision_nodes = 0;
  std::size_t plain_ite_calls = 0;
  double node_reduction = 0.0;
  double time_ratio = 0.0;
  double rel_error = 0.0;
  bool agree = true;
  bool cache_geometry_invariant = true;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace safeopt;

  std::string json_path;
  std::size_t plain_limit = 10000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--plain-limit") == 0 && i + 1 < argc) {
      plain_limit = std::strtoull(argv[++i], nullptr, 10);
    }
  }

  // Generous geometry for the monolithic path; the per-module compiler caps
  // each module's cache at its own size anyway, so both paths get the room
  // they can actually use.
  bdd::BddOptions options;
  options.initial_table_size = std::size_t{1} << 16;
  options.cache_size = std::size_t{1} << 20;

  std::printf("=== preprocessing pipeline vs monolithic BDD ===\n\n");
  std::printf("%-6s %8s %8s %12s %12s %9s %9s  %s\n", "tier", "events",
              "modules", "plain nodes", "prep nodes", "nodes", "time",
              "P(top)");

  std::vector<TierReport> reports;
  double max_node_reduction = 0.0;
  bool all_agree = true;
  bool all_invariant = true;

  for (const corpus::CorpusSpec& spec : corpus::corpus_tiers()) {
    const corpus::CorpusModel model = corpus::make_corpus(spec);
    TierReport report;
    report.name = spec.name;
    report.events = spec.events();

    const auto t0 = Clock::now();
    const prep::PreprocessedTree preprocessed =
        prep::preprocess(model.tree, {});
    const auto t1 = Clock::now();
    prep::CompiledPreprocessedTree compiled(preprocessed, options);
    report.probability = compiled.probability(model.input);
    const auto t2 = Clock::now();

    report.modules = preprocessed.statistics.modules;
    report.pipeline_ms = ms_between(t0, t1);
    report.prep_compile_eval_ms = ms_between(t1, t2);
    report.prep_decision_nodes = compiled.compile_statistics().decision_nodes;
    report.prep_ite_calls = compiled.compile_statistics().ite_calls;

    // Contract: shrinking every ITE cache 1024x changes nothing but time —
    // the result diagram and the probability are bitwise identical. Checked
    // on the smallest tier only: a starved cache on a wide vote network
    // recomputes instead of memoizing, so the check would dominate the
    // bench's wall clock on the big tiers while proving nothing new.
    if (spec.events() <= 1000) {
      bdd::BddOptions tiny = options;
      tiny.cache_size = std::size_t{1} << 10;
      prep::CompiledPreprocessedTree recompiled(preprocessed, tiny);
      report.cache_geometry_invariant =
          recompiled.probability(model.input) == report.probability;
    }

    if (spec.events() <= plain_limit) {
      const auto t3 = Clock::now();
      bdd::CompiledFaultTree plain = bdd::compile(model.tree, options);
      report.plain_probability = plain.probability(model.input);
      const auto t4 = Clock::now();

      report.plain_measured = true;
      report.plain_compile_eval_ms = ms_between(t3, t4);
      const bdd::BddStatistics& stats = plain.manager.statistics();
      report.plain_decision_nodes = stats.decision_node_count();
      report.plain_ite_calls = static_cast<std::size_t>(stats.ite_calls);
      report.node_reduction =
          static_cast<double>(report.plain_decision_nodes) /
          static_cast<double>(report.prep_decision_nodes);
      report.time_ratio =
          report.plain_compile_eval_ms /
          (report.pipeline_ms + report.prep_compile_eval_ms);
      report.rel_error =
          std::abs(report.plain_probability - report.probability) /
          std::max(report.plain_probability, 1e-300);
      report.agree = report.rel_error < 1e-9;
      max_node_reduction = std::max(max_node_reduction, report.node_reduction);
    }

    all_agree = all_agree && report.agree;
    all_invariant = all_invariant && report.cache_geometry_invariant;

    if (report.plain_measured) {
      std::printf("%-6s %8zu %8zu %12zu %12zu %8.1fx %8.1fx  %.6e\n",
                  report.name.c_str(), report.events, report.modules,
                  report.plain_decision_nodes, report.prep_decision_nodes,
                  report.node_reduction, report.time_ratio,
                  report.probability);
    } else {
      std::printf("%-6s %8zu %8zu %12s %12zu %9s %9s  %.6e\n",
                  report.name.c_str(), report.events, report.modules,
                  "(skipped)", report.prep_decision_nodes, "-", "-",
                  report.probability);
    }
    reports.push_back(report);
  }

  std::printf("\ncontracts: agreement %s, cache-geometry invariance %s\n",
              all_agree ? "ok" : "FAIL", all_invariant ? "ok" : "FAIL");
  std::printf("max node reduction: %.1fx\n", max_node_reduction);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"tiers\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const TierReport& r = reports[i];
      out << "    {\"name\": \"" << r.name << "\", \"events\": " << r.events
          << ", \"modules\": " << r.modules << ",\n";
      char buffer[64];
      std::snprintf(buffer, sizeof buffer, "%.17g", r.probability);
      out << "     \"probability\": " << buffer << ",\n";
      out << "     \"pipeline_ms\": " << r.pipeline_ms
          << ", \"prep_compile_eval_ms\": " << r.prep_compile_eval_ms
          << ",\n     \"prep_decision_nodes\": " << r.prep_decision_nodes
          << ", \"prep_ite_calls\": " << r.prep_ite_calls << ",\n";
      out << "     \"plain_measured\": " << (r.plain_measured ? "true" : "false");
      if (r.plain_measured) {
        std::snprintf(buffer, sizeof buffer, "%.17g", r.plain_probability);
        out << ",\n     \"plain_probability\": " << buffer
            << ", \"plain_compile_eval_ms\": " << r.plain_compile_eval_ms
            << ",\n     \"plain_decision_nodes\": " << r.plain_decision_nodes
            << ", \"plain_ite_calls\": " << r.plain_ite_calls
            << ",\n     \"node_reduction\": " << r.node_reduction
            << ", \"time_ratio\": " << r.time_ratio
            << ", \"rel_error\": " << r.rel_error;
      }
      out << ",\n     \"agree\": " << (r.agree ? "true" : "false")
          << ", \"cache_geometry_invariant\": "
          << (r.cache_geometry_invariant ? "true" : "false") << "}"
          << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"all_agree\": " << (all_agree ? "true" : "false") << ",\n";
    out << "  \"cache_geometry_invariant\": "
        << (all_invariant ? "true" : "false") << ",\n";
    out << "  \"max_node_reduction\": " << max_node_reduction << "\n}\n";
  }

  return (all_agree && all_invariant) ? 0 : 1;
}
