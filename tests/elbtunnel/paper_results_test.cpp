// The paper-reported results of §IV, asserted end to end: every number the
// paper states about the Elbtunnel case study must come out of the library.
// This is the regression suite behind EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <cmath>

#include "safeopt/core/environment_sweep.h"
#include "safeopt/core/sensitivity.h"
#include "safeopt/elbtunnel/elbtunnel_model.h"

namespace safeopt::elbtunnel {
namespace {

using expr::ParameterAssignment;

class PaperResults : public ::testing::Test {
 protected:
  ElbtunnelModel model_;
};

TEST_F(PaperResults, OptimalTimerRuntimesAreApprox19And15_6) {
  // §IV-C.2: "optimal parameters for the timer runtimes of approximately
  // 19 resp. 15.6 minutes for timer 1 resp. 2".
  const auto result =
      model_.optimizer().optimize(core::Algorithm::kMultiStartNelderMead);
  EXPECT_NEAR(result.optimization.argmin[0], 19.0, 1.0);
  EXPECT_NEAR(result.optimization.argmin[1], 15.6, 0.7);
}

TEST_F(PaperResults, GridSearchAgreesWithSimplexOnTheOptimum) {
  // §III-B: even plain combination testing finds the optimum; the paper
  // located it by zooming into a 3-D plot (Fig. 5). The surface is nearly
  // flat along T1 (that is the paper's own observation about timer 1), so
  // agreement is asserted on T2 and on the cost, with a loose T1 band.
  const auto simplex =
      model_.optimizer().optimize(core::Algorithm::kMultiStartNelderMead);
  const auto grid = model_.optimizer().optimize(core::Algorithm::kGridSearch);
  EXPECT_NEAR(grid.optimization.argmin[0], simplex.optimization.argmin[0],
              2.0);
  EXPECT_NEAR(grid.optimization.argmin[1], simplex.optimization.argmin[1],
              0.5);
  EXPECT_NEAR(grid.cost, simplex.cost, 1e-4 * simplex.cost);
}

TEST_F(PaperResults, CostNearOptimumLiesInFig5Band) {
  // Fig. 5's vertical axis spans ≈ 0.0046 .. 0.0047 over
  // T1 ∈ [15, 20] × T2 ∈ [15, 18].
  const auto cost = model_.cost_model().cost_expression();
  for (double t1 = 15.0; t1 <= 20.0; t1 += 1.0) {
    for (double t2 = 15.0; t2 <= 18.0; t2 += 0.5) {
      const double value = cost.evaluate({{"T1", t1}, {"T2", t2}});
      EXPECT_GT(value, 0.0045) << "T1=" << t1 << " T2=" << t2;
      EXPECT_LT(value, 0.0048) << "T1=" << t1 << " T2=" << t2;
    }
  }
}

TEST_F(PaperResults, FalseAlarmRiskImprovesByAboutTenPercent) {
  // §IV-C.2: "results in an improvement of about 10% in false alarm risk".
  const auto optimizer = model_.optimizer();
  const auto optimal =
      optimizer.optimize(core::Algorithm::kMultiStartNelderMead);
  const auto report = optimizer.compare(model_.engineers_guess(), optimal);
  ASSERT_EQ(report.hazards.size(), 2u);
  const auto& alarm = report.hazards[1];
  EXPECT_EQ(alarm.hazard, "HAlr");
  EXPECT_LT(alarm.relative_change, -0.08);  // at least 8% better
  EXPECT_GT(alarm.relative_change, -0.13);  // but ~10%, not 30%
}

TEST_F(PaperResults, CollisionRiskChangesByLessThanZeroPointOnePercent) {
  // §IV-C.2: "while the risk for collision does not change (less then
  // 0.1%)".
  const auto optimizer = model_.optimizer();
  const auto optimal =
      optimizer.optimize(core::Algorithm::kMultiStartNelderMead);
  const auto report = optimizer.compare(model_.engineers_guess(), optimal);
  const auto& collision = report.hazards[0];
  EXPECT_EQ(collision.hazard, "HCol");
  EXPECT_LT(std::abs(collision.relative_change), 0.001);
}

TEST_F(PaperResults, Timer1IsLessCriticalThanTimer2AtTheOptimum) {
  // §IV-C.2: "timer 1 may be chosen more conservatively than timer 2" —
  // the cost is much flatter along T1 than along T2 near the optimum.
  const auto result =
      model_.optimizer().optimize(core::Algorithm::kMultiStartNelderMead);
  const auto cost = model_.cost_model().cost_expression();
  const ParameterAssignment at = result.optimal_parameters;
  const double base = cost.evaluate(at);

  // Push each timer up by 5 minutes and compare the cost increase.
  ParameterAssignment t1_up = at;
  t1_up.set("T1", at.get("T1") + 5.0);
  ParameterAssignment t2_up = at;
  t2_up.set("T2", at.get("T2") + 5.0);
  const double dt1 = cost.evaluate(t1_up) - base;
  const double dt2 = cost.evaluate(t2_up) - base;
  EXPECT_LT(dt1 * 10.0, dt2);
}

TEST_F(PaperResults, Fig6WithoutLb4MatchesReportedLevels) {
  const auto fig6 = model_.false_alarm_given_ohv(Design::kBaseline);
  // "even with the suggested, reduced runtime of 15.6 minutes for timer 2
  // more than 80% of the correct driving OHVs will trigger an alarm".
  EXPECT_GT(fig6.evaluate({{"T2", 15.6}}), 0.80);
  // Footnote 4: "For a runtime of 30 minutes it is more than 95%."
  EXPECT_GT(fig6.evaluate({{"T2", 30.0}}), 0.95);
}

TEST_F(PaperResults, Fig6WithLb4IsRoughlyFortyPercent) {
  // "The system will still ring the bell for a very high number (≈ 40%) of
  // correct driving OHV".
  const auto lb4 = model_.false_alarm_given_ohv(Design::kWithLB4);
  const double at_optimum = lb4.evaluate({{"T2", 15.6}});
  EXPECT_GT(at_optimum, 0.33);
  EXPECT_LT(at_optimum, 0.47);
}

TEST_F(PaperResults, LightBarrierAtOdfinalDropsToAboutFourPercent) {
  // "This would lower the false alarm rate to approx. 4% of the OHVs".
  const auto fixed = model_.false_alarm_given_ohv(
      Design::kLightBarrierAtODfinal);
  const double value = fixed.evaluate({{"T2", 15.6}});
  EXPECT_GT(value, 0.02);
  EXPECT_LT(value, 0.06);
}

TEST_F(PaperResults, Fig6SweepIsSigmoidRisingTowardsOne) {
  // Fig. 6's visual shape: from ≈ 0.5 at 5 minutes towards 1.0 at 25.
  const core::SweepTable table = core::sweep_parameter(
      "T2", 5.0, 25.0, 21, {},
      {{"without_LB4", model_.false_alarm_given_ohv(Design::kBaseline)},
       {"with_LB4", model_.false_alarm_given_ohv(Design::kWithLB4)}});
  const auto& without = table.values[0];
  const auto& with = table.values[1];
  EXPECT_NEAR(without.front(), 0.48, 0.05);
  EXPECT_GT(without.back(), 0.95);
  for (std::size_t k = 0; k < table.xs.size(); ++k) {
    EXPECT_LE(with[k], without[k] + 1e-12);  // the fix only helps
  }
  // with_LB4 flattens: its total rise is much smaller.
  EXPECT_LT(with.back() - with.front(), 0.25);
}

TEST_F(PaperResults, TenMinuteTimer2MakesCollisionRiskUnacceptable) {
  // "a runtime of less than 10 minutes will make the risk for a collision
  // unacceptably high": at T2 = 10 the collision cost term dwarfs the
  // false-alarm cost; the optimizer is pushed away from short timers.
  const auto cost = model_.cost_model().cost_expression();
  const double at_ten = cost.evaluate({{"T1", 19.0}, {"T2", 10.0}});
  const double at_optimum = cost.evaluate({{"T1", 19.0}, {"T2", 15.6}});
  EXPECT_GT(at_ten, 5.0 * at_optimum);
}

TEST_F(PaperResults, SensitivityGradientVanishesAtTheOptimum) {
  const auto result =
      model_.optimizer().optimize(core::Algorithm::kMultiStartNelderMead);
  const auto report = core::sensitivity_analysis(
      model_.cost_model(), model_.parameter_space(),
      result.optimal_parameters);
  // Interior optimum: both partial derivatives ≈ 0 relative to the cost
  // curvature scale (cost changes ~1e-4 per minute nearby).
  EXPECT_LT(std::abs(report[0].cost_gradient), 2e-5);
  EXPECT_LT(std::abs(report[1].cost_gradient), 2e-5);
}

TEST_F(PaperResults, EngineersGuessIsThirtyMinutes) {
  const ParameterAssignment guess = model_.engineers_guess();
  EXPECT_DOUBLE_EQ(guess.get("T1"), 30.0);
  EXPECT_DOUBLE_EQ(guess.get("T2"), 30.0);
}

}  // namespace
}  // namespace safeopt::elbtunnel
