// Acceptance gate for the declarative pipeline: the shipped
// examples/models/elbtunnel.ft, loaded through ftio::load_study +
// core::Study::from_document, must be *bit-identical* to the compiled-in
// elbtunnel::ElbtunnelModel fault-tree derivation — the same minimal cut
// sets, the same hazard expression values at every probed point, and the
// same optimum from the same solver and seed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "safeopt/core/parameterized_fta.h"
#include "safeopt/core/study.h"
#include "safeopt/elbtunnel/elbtunnel_model.h"
#include "safeopt/fta/cut_sets.h"
#include "safeopt/ftio/study_document.h"

namespace safeopt::elbtunnel {
namespace {

std::string model_path() {
  return std::string(SAFEOPT_SOURCE_DIR) + "/examples/models/elbtunnel.ft";
}

/// The compiled-in reference: both trees with their parameterized
/// quantifications, and the cost model assembled from the *fault-tree*
/// hazard expressions (the same construction from_document uses).
struct Reference {
  ElbtunnelModel model;
  fta::FaultTree collision;
  fta::FaultTree false_alarm;
  core::ParameterizedQuantification collision_q;
  core::ParameterizedQuantification false_alarm_q;

  Reference()
      : collision(model.collision_tree()),
        false_alarm(model.false_alarm_tree()),
        collision_q(model.collision_quantification(collision)),
        false_alarm_q(model.false_alarm_quantification(false_alarm)) {}

  [[nodiscard]] core::Study study() const {
    core::CostModel cost;
    cost.add_hazard({"HCol", collision_q.hazard_expression(),
                     model.parameters().cost_collision});
    cost.add_hazard({"HAlr", false_alarm_q.hazard_expression(),
                     model.parameters().cost_false_alarm});
    return core::Study(std::move(cost), model.parameter_space());
  }
};

std::vector<expr::ParameterAssignment> probe_points() {
  std::vector<expr::ParameterAssignment> points;
  for (double t1 = 5.0; t1 <= 40.0; t1 += 3.5) {
    for (double t2 = 5.0; t2 <= 40.0; t2 += 3.5) {
      points.push_back({{"T1", t1}, {"T2", t2}});
    }
  }
  return points;
}

TEST(DocumentParityTest, SameMinimalCutSets) {
  const ftio::StudyDocument doc = ftio::load_study(model_path());
  const Reference ref;

  const ftio::TreeModel* hcol = doc.find_tree("HCol");
  const ftio::TreeModel* halr = doc.find_tree("HAlr");
  ASSERT_NE(hcol, nullptr);
  ASSERT_NE(halr, nullptr);

  const auto mcs_doc_col = fta::minimal_cut_sets(hcol->tree);
  const auto mcs_ref_col = fta::minimal_cut_sets(ref.collision);
  // Ordinal-level equality (not just names): the document was authored so
  // leaf creation order matches the C++ construction, which is what makes
  // the assembled expressions — and their floating-point evaluation order —
  // identical.
  EXPECT_EQ(mcs_doc_col.sets(), mcs_ref_col.sets());
  EXPECT_EQ(mcs_doc_col.to_string(hcol->tree),
            mcs_ref_col.to_string(ref.collision));

  const auto mcs_doc_alr = fta::minimal_cut_sets(halr->tree);
  const auto mcs_ref_alr = fta::minimal_cut_sets(ref.false_alarm);
  EXPECT_EQ(mcs_doc_alr.sets(), mcs_ref_alr.sets());
  EXPECT_EQ(mcs_doc_alr.to_string(halr->tree),
            mcs_ref_alr.to_string(ref.false_alarm));
}

TEST(DocumentParityTest, HazardExpressionValuesAreBitIdentical) {
  const core::Study loaded = core::Study::from_file(model_path());
  const Reference ref;
  const core::Study reference = ref.study();

  for (const auto& at : probe_points()) {
    const auto loaded_result = loaded.evaluate_at(at);
    const auto reference_result = reference.evaluate_at(at);
    ASSERT_EQ(loaded_result.hazard_probabilities.size(), 2u);
    // Bitwise: same expression structure, same evaluation order.
    EXPECT_EQ(loaded_result.hazard_probabilities,
              reference_result.hazard_probabilities)
        << "T1=" << at.get("T1") << " T2=" << at.get("T2");
    EXPECT_EQ(loaded_result.cost, reference_result.cost);
  }
}

TEST(DocumentParityTest, SameOptimumFromTheSameSolverAndSeed) {
  const core::Study loaded = core::Study::from_file(model_path());
  const Reference ref;
  const core::Study reference = ref.study();

  opt::SolverConfig config;
  config.seed = 42;
  const auto loaded_opt =
      core::Study(loaded).solver("differential_evolution", config).run();
  const auto reference_opt =
      core::Study(reference).solver("differential_evolution", config).run();

  EXPECT_EQ(loaded_opt.optimization.value, reference_opt.optimization.value);
  EXPECT_EQ(loaded_opt.optimization.argmin,
            reference_opt.optimization.argmin);
  EXPECT_EQ(loaded_opt.cost, reference_opt.cost);
  EXPECT_EQ(loaded_opt.hazard_probabilities,
            reference_opt.hazard_probabilities);

  // And the optimum is the paper's: T1 ≈ 19, T2 ≈ 15.6.
  EXPECT_NEAR(loaded_opt.optimal_parameters.get("T1"), 19.0, 1.0);
  EXPECT_NEAR(loaded_opt.optimal_parameters.get("T2"), 15.6, 1.0);
}

TEST(DocumentParityTest, EngineQuantificationMatchesAtTheOptimum) {
  core::Study loaded = core::Study::from_file(model_path());
  const Reference ref;

  core::Study reference = ref.study();
  reference.hazard_tree("HCol", ref.collision, ref.collision_q)
      .hazard_tree("HAlr", ref.false_alarm, ref.false_alarm_q);

  const expr::ParameterAssignment optimum{{"T1", 19.0}, {"T2", 15.6}};
  for (const char* engine : {"fta", "bdd"}) {
    loaded.engine(engine);
    reference.engine(engine);
    for (const char* hazard : {"HCol", "HAlr"}) {
      const auto a = loaded.quantify(hazard, optimum);
      const auto b = reference.quantify(hazard, optimum);
      EXPECT_EQ(a.probability, b.probability)
          << engine << "/" << hazard;  // bitwise
    }
  }
}

TEST(DocumentParityTest, DocumentDefaultsMatchTheCompiledInDefaults) {
  const ftio::StudyDocument doc = ftio::load_study(model_path());
  ASSERT_TRUE(doc.solver.has_value());
  EXPECT_EQ(doc.solver->name, "multi_start");
  const core::Study loaded = core::Study::from_document(doc);
  EXPECT_EQ(loaded.solver_name(), "multi_start");
  EXPECT_EQ(loaded.engine_name(), "fta");
  EXPECT_EQ(loaded.space().names(),
            ElbtunnelModel().parameter_space().names());
}

}  // namespace
}  // namespace safeopt::elbtunnel
