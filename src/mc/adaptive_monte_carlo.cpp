#include "safeopt/mc/adaptive_monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "safeopt/stats/special_functions.h"
#include "safeopt/support/contracts.h"
#include "safeopt/support/execution.h"
#include "safeopt/support/rng.h"
#include "safeopt/support/thread_pool.h"

namespace safeopt::mc {
namespace {

/// Chunk granularity of one round. The chunk layout depends only on the
/// options (never on the pool), which is what makes the stopped trial count
/// and every accumulated total thread-count-invariant.
constexpr std::uint64_t kChunkTrials = 4096;

/// Minimum raw hits before a relative-target or importance-sampled stopping
/// decision is trusted: a relative target against a one-hit estimate, or a
/// zero-hit weighted sample (whose observed variance is 0, not small), would
/// otherwise stop on noise.
constexpr std::uint64_t kMinHits = 8;

/// The tilted per-leaf proposal: q = min(1/2, tilt·p) for rare leaves, with
/// the exact per-leaf likelihood-ratio factors precomputed. Leaves at p = 0
/// or p >= 1/2 are left untouched (factor 1): a zero-probability leaf cannot
/// fire under the model, and boosting an already-likely leaf past 1/2 only
/// adds weight variance.
struct Proposal {
  std::vector<double> basic_q, basic_w1, basic_w0;
  std::vector<double> cond_q, cond_w1, cond_w0;
};

void tilt_leaves(const std::vector<double>& p, double tilt,
                 std::vector<double>& q, std::vector<double>& w1,
                 std::vector<double>& w0) {
  q.resize(p.size());
  w1.assign(p.size(), 1.0);
  w0.assign(p.size(), 1.0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    q[i] = p[i];
    if (p[i] <= 0.0 || p[i] >= 0.5) continue;
    q[i] = std::min(0.5, p[i] * tilt);
    if (q[i] == p[i]) continue;
    w1[i] = p[i] / q[i];
    w0[i] = (1.0 - p[i]) / (1.0 - q[i]);
  }
}

Proposal make_proposal(const fta::QuantificationInput& input, double tilt) {
  Proposal proposal;
  tilt_leaves(input.basic_event_probability, tilt, proposal.basic_q,
              proposal.basic_w1, proposal.basic_w0);
  tilt_leaves(input.condition_probability, tilt, proposal.cond_q,
              proposal.cond_w1, proposal.cond_w0);
  return proposal;
}

/// Partial sums of one chunk. Chunks are reduced in chunk order, so every
/// total is a pure function of the chunk layout.
struct ChunkSums {
  std::uint64_t trials = 0;
  std::uint64_t hits = 0;
  double sum_w = 0.0;    // Σ W                (importance mode only)
  double sum_w2 = 0.0;   // Σ W²
  double sum_wi = 0.0;   // Σ W·1{top}
  double sum_wi2 = 0.0;  // Σ (W·1{top})²
};

ChunkSums run_crude_chunk(const fta::FaultTree& tree,
                          const fta::QuantificationInput& input, Rng rng,
                          std::uint64_t trials, std::vector<bool>& basic,
                          std::vector<bool>& condition) {
  ChunkSums sums;
  sums.trials = trials;
  for (std::uint64_t t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < basic.size(); ++i) {
      basic[i] = bernoulli(rng, input.basic_event_probability[i]);
    }
    for (std::size_t i = 0; i < condition.size(); ++i) {
      condition[i] = bernoulli(rng, input.condition_probability[i]);
    }
    if (tree.evaluate(basic, condition)) ++sums.hits;
  }
  return sums;
}

ChunkSums run_importance_chunk(const fta::FaultTree& tree,
                               const Proposal& proposal, Rng rng,
                               std::uint64_t trials, std::vector<bool>& basic,
                               std::vector<bool>& condition) {
  ChunkSums sums;
  sums.trials = trials;
  for (std::uint64_t t = 0; t < trials; ++t) {
    double w = 1.0;
    for (std::size_t i = 0; i < basic.size(); ++i) {
      const bool x = bernoulli(rng, proposal.basic_q[i]);
      basic[i] = x;
      w *= x ? proposal.basic_w1[i] : proposal.basic_w0[i];
    }
    for (std::size_t i = 0; i < condition.size(); ++i) {
      const bool x = bernoulli(rng, proposal.cond_q[i]);
      condition[i] = x;
      w *= x ? proposal.cond_w1[i] : proposal.cond_w0[i];
    }
    sums.sum_w += w;
    sums.sum_w2 += w * w;
    if (tree.evaluate(basic, condition)) {
      ++sums.hits;
      sums.sum_wi += w;
      sums.sum_wi2 += w * w;
    }
  }
  return sums;
}

/// Running totals and the chunk-stream cursor of one input's adaptive loop.
struct AdaptiveState {
  const fta::QuantificationInput* input = nullptr;
  Proposal proposal;
  Rng stream{0};  // the next chunk's generator; jump()ed per handout
  std::uint64_t done = 0;
  std::uint64_t hits = 0;
  stats::ProportionEstimator crude;
  double sum_w = 0.0, sum_w2 = 0.0, sum_wi = 0.0, sum_wi2 = 0.0;
  bool finished = false;
  AdaptiveResult result;
};

/// One chunk of one input's current round, with its result slot.
struct ChunkJob {
  AdaptiveState* state = nullptr;
  Rng rng{0};
  std::uint64_t trials = 0;
  ChunkSums sums;
};

/// Updates the state's estimate/interval from its totals and applies the
/// stopping rule. `z` is the 97.5% normal quantile (95% two-sided).
void finish_round(AdaptiveState& s, const AdaptiveOptions& options,
                  bool importance, double z) {
  double estimate = 0.0;
  double halfwidth = 0.0;
  stats::ConfidenceInterval ci;
  if (importance) {
    const auto n = static_cast<double>(s.done);
    estimate = s.sum_wi / n;
    double variance = 0.0;
    if (s.done >= 2) {
      variance =
          std::max(0.0, (s.sum_wi2 - n * estimate * estimate) /
                            (n - 1.0));
    }
    halfwidth = z * std::sqrt(variance / n);
    ci = {std::max(0.0, estimate - halfwidth),
          std::min(1.0, estimate + halfwidth)};
  } else {
    estimate = s.crude.estimate();
    ci = s.crude.wilson(0.95);
    halfwidth = 0.5 * ci.width();
  }

  const double target = options.relative
                            ? options.target_halfwidth * estimate
                            : options.target_halfwidth;
  // A relative target against estimate = 0 is unreachable by construction
  // (target 0 < any honest half-width); the zero-hit importance sample is
  // excluded by the kMinHits guard, not by a width test — its *observed*
  // half-width is 0, which says nothing at all.
  const bool trustworthy =
      (!importance && !options.relative) || s.hits >= kMinHits;
  const bool converged =
      trustworthy && halfwidth <= target && (!options.relative || estimate > 0.0);

  s.result.estimate = estimate;
  s.result.ci95 = ci;
  s.result.trials = s.done;
  s.result.occurrences = s.hits;
  s.result.converged = converged;
  s.result.importance = importance;
  s.result.ess =
      importance
          ? (s.sum_w2 > 0.0 ? s.sum_w * s.sum_w / s.sum_w2 : 0.0)
          : static_cast<double>(s.done);
  s.result.self_normalized =
      importance ? (s.sum_w > 0.0 ? s.sum_wi / s.sum_w : 0.0) : estimate;
  if (converged || s.done >= options.max_trials) s.finished = true;
}

}  // namespace

AdaptiveMonteCarlo::AdaptiveMonteCarlo(AdaptiveOptions options)
    : options_(options) {
  SAFEOPT_EXPECTS(options_.target_halfwidth > 0.0);
  SAFEOPT_EXPECTS(!options_.relative || options_.target_halfwidth < 1.0);
  SAFEOPT_EXPECTS(options_.batch >= 1);
  SAFEOPT_EXPECTS(options_.max_trials >= 1);
  SAFEOPT_EXPECTS(!std::isnan(options_.tilt));
}

AdaptiveResult AdaptiveMonteCarlo::estimate(
    const fta::FaultTree& tree, const fta::QuantificationInput& input) const {
  return estimate_batch(tree, {input}).front();
}

std::vector<AdaptiveResult> AdaptiveMonteCarlo::estimate_batch(
    const fta::FaultTree& tree,
    const std::vector<fta::QuantificationInput>& inputs) const {
  return estimate_batch(tree, inputs, options_.control);
}

std::vector<AdaptiveResult> AdaptiveMonteCarlo::estimate_batch(
    const fta::FaultTree& tree,
    const std::vector<fta::QuantificationInput>& inputs,
    const ExecutionControl* control) const {
  SAFEOPT_EXPECTS(tree.has_top());
  const bool importance = options_.tilt > 1.0;
  const double z = stats::normal_quantile(0.975);

  std::vector<AdaptiveState> states(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    SAFEOPT_EXPECTS(inputs[i].is_valid_for(tree));
    states[i].input = &inputs[i];
    states[i].stream = Rng(options_.seed);
    if (importance) states[i].proposal = make_proposal(inputs[i], options_.tilt);
  }

  std::vector<ChunkJob> jobs;
  for (;;) {
    // Round-boundary abort poll — the only place the control is consulted,
    // so completed-round totals (which are thread-count-invariant) are the
    // only thing an abort can expose. Unfinished inputs keep their last
    // finish_round() result; an abort before the first round reports zero
    // trials. Aborted estimates are flagged, never thrown: a partial
    // estimate with an honest interval is still a result.
    if (control != nullptr && control->should_abort()) {
      for (AdaptiveState& state : states) {
        if (state.finished) continue;
        state.result.trials = state.done;
        state.result.occurrences = state.hits;
        state.result.converged = false;
        state.result.aborted = true;
        state.result.importance = importance;
        state.finished = true;
      }
      break;
    }
    // Hand out the next round of every unfinished input: per input, a run
    // of kChunkTrials-sized chunks covering min(batch, budget left) trials,
    // each chunk on its own jump() stream. The layout depends only on the
    // options, never on the pool.
    jobs.clear();
    for (AdaptiveState& state : states) {
      if (state.finished) continue;
      std::uint64_t round =
          std::min(options_.batch, options_.max_trials - state.done);
      while (round > 0) {
        ChunkJob job;
        job.state = &state;
        job.rng = state.stream;
        state.stream.jump();
        job.trials = std::min(kChunkTrials, round);
        round -= job.trials;
        jobs.push_back(job);
      }
    }
    if (jobs.empty()) break;

    const auto run_jobs = [&](std::size_t begin, std::size_t end) {
      std::vector<bool> basic(tree.basic_event_count());
      std::vector<bool> condition(tree.condition_count());
      for (std::size_t j = begin; j < end; ++j) {
        ChunkJob& job = jobs[j];
        job.sums = importance
                       ? run_importance_chunk(tree, job.state->proposal,
                                              job.rng, job.trials, basic,
                                              condition)
                       : run_crude_chunk(tree, *job.state->input, job.rng,
                                         job.trials, basic, condition);
      }
    };
    if (options_.pool != nullptr && jobs.size() > 1) {
      options_.pool->parallel_for(jobs.size(), run_jobs);
    } else {
      run_jobs(0, jobs.size());
    }

    // Reduce in job order — each input's jobs are contiguous and in chunk
    // order, so its floating-point totals accumulate deterministically.
    for (const ChunkJob& job : jobs) {
      AdaptiveState& state = *job.state;
      state.done += job.sums.trials;
      state.hits += job.sums.hits;
      state.crude.add_batch(job.sums.trials, job.sums.hits);
      state.sum_w += job.sums.sum_w;
      state.sum_w2 += job.sums.sum_w2;
      state.sum_wi += job.sums.sum_wi;
      state.sum_wi2 += job.sums.sum_wi2;
    }
    for (AdaptiveState& state : states) {
      if (!state.finished && state.done > 0) {
        finish_round(state, options_, importance, z);
      }
    }
  }

  std::vector<AdaptiveResult> results;
  results.reserve(states.size());
  for (const AdaptiveState& state : states) results.push_back(state.result);
  return results;
}

}  // namespace safeopt::mc
