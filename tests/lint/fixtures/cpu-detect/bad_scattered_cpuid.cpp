// Fixture: raw CPUID probes outside the one detection TU.
#include <cpuid.h>

bool has_avx2_builtin() { return __builtin_cpu_supports("avx2") != 0; }

bool has_avx2_cpuid() {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (__get_cpuid_count(7, 0, &a, &b, &c, &d) == 0) return false;
  return (b & (1u << 5)) != 0;
}
