// ArtifactCache — the immutable-artifact store behind the analysis-pass
// graph (analysis_graph.h). Every pass output (parsed document, compiled
// study, quantification outcome) is cached under a content-derived key:
//
//   <pass>:<canonical document hash>[:<option fingerprint>...]
//
// so repeated requests over the same document amortize everything up to the
// first pass whose inputs actually changed.
//
// Two policies, both enforced here so the passes stay policy-free:
//   * byte-budget LRU: artifacts carry a size estimate; inserting past the
//     budget evicts least-recently-used entries (never the one just
//     inserted). Artifacts larger than the whole budget are returned but
//     not stored.
//   * single-flight: N concurrent requests for the same missing key run
//     ONE factory; the rest block on its completion and share the result.
//     A deterministic factory failure propagates to every waiter and caches
//     nothing — but an outcome tainted by the leader's own request control
//     (share=false, or a thrown deadline/cancellation Error) is never handed
//     to waiters: they retry the lookup and run their own factory.
//
// Values are type-erased shared_ptr<const void>; callers use the typed
// get_as<T> wrapper. Thread-safe; factories run outside the cache lock.
#ifndef SAFEOPT_SERVE_ARTIFACT_CACHE_H
#define SAFEOPT_SERVE_ARTIFACT_CACHE_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "safeopt/support/mutex.h"
#include "safeopt/support/thread_annotations.h"

namespace safeopt::serve {

/// One pass artifact as the factory hands it back.
struct CacheEntry {
  std::shared_ptr<const void> value;
  /// Estimated footprint, charged against the byte budget.
  std::size_t bytes = 0;
  /// When false the value is handed to the caller (and any single-flight
  /// waiters) but not stored — e.g. a degraded outcome whose diagnostics
  /// must reach the requester but should not be replayed from cache.
  bool store = true;
  /// When false the value is valid only for the request whose factory ran
  /// (its deadline fired / its client vanished mid-computation): waiters
  /// joined on the flight discard it and recompute under their own control.
  /// Implies nothing about `store` — callers set both.
  bool share = true;
};

/// Hit/miss counters, global and per pass (the key's ":"-prefix).
struct CachePassStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Requests that joined an in-flight computation instead of starting one.
  std::uint64_t single_flight_waits = 0;
  /// Waits that could not adopt the leader's outcome (it was tainted by the
  /// leader's own deadline/cancellation) and retried the lookup.
  std::uint64_t single_flight_reruns = 0;
  std::uint64_t evictions = 0;
  std::size_t bytes_in_use = 0;
  std::size_t entries = 0;
  std::size_t byte_budget = 0;
  std::map<std::string, CachePassStats> passes;
};

class ArtifactCache {
 public:
  using Factory = std::function<CacheEntry()>;

  explicit ArtifactCache(std::size_t byte_budget);

  /// Returns the cached value for `key`, or runs `make` (single-flight) and
  /// caches its result. Exceptions from `make` propagate to the caller and
  /// — unless they are the leader's own deadline/cancellation — to every
  /// waiter joined on the same computation; nothing is cached. Waiters never
  /// adopt a control-tainted outcome (share=false or deadline/cancel throw):
  /// they retry and compute under their own request's control.
  std::shared_ptr<const void> get_or_compute(const std::string& key,
                                             const Factory& make);

  /// Typed wrapper; T must be the type the factory stored under this key.
  template <typename T, typename Make>
  std::shared_ptr<const T> get_as(const std::string& key, Make&& make) {
    return std::static_pointer_cast<const T>(
        get_or_compute(key, std::forward<Make>(make)));
  }

  [[nodiscard]] CacheStats stats() const;

  /// Drops every stored entry (in-flight computations are unaffected).
  void clear();

 private:
  struct Stored {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru;  // position in lru_ (front = MRU)
  };
  struct InFlight {
    Mutex mutex;
    std::condition_variable done_cv;
    bool done SAFEOPT_GUARDED_BY(mutex) = false;
    /// False when the leader's outcome (value or error) is specific to its
    /// own request control; waiters then retry instead of adopting it.
    bool shared SAFEOPT_GUARDED_BY(mutex) = true;
    std::shared_ptr<const void> value SAFEOPT_GUARDED_BY(mutex);
    std::exception_ptr error SAFEOPT_GUARDED_BY(mutex);
  };

  void evict_over_budget_locked(const std::string& keep)
      SAFEOPT_REQUIRES(mutex_);
  void record_locked(const std::string& key, bool hit)
      SAFEOPT_REQUIRES(mutex_);

  const std::size_t byte_budget_;
  mutable Mutex mutex_;
  std::map<std::string, Stored> entries_ SAFEOPT_GUARDED_BY(mutex_);
  /// front = most recently used
  std::list<std::string> lru_ SAFEOPT_GUARDED_BY(mutex_);
  std::map<std::string, std::shared_ptr<InFlight>> in_flight_
      SAFEOPT_GUARDED_BY(mutex_);
  CacheStats stats_ SAFEOPT_GUARDED_BY(mutex_);
};

}  // namespace safeopt::serve

#endif  // SAFEOPT_SERVE_ARTIFACT_CACHE_H
