// Experiment: compiled-tape evaluation vs the recursive expression walk on
// the paper's Fig. 5 cost surface f_cost(T1, T2).
//
// Evaluation strategies over the same grid workload:
//   tree    — the pre-compilation objective path: build a
//             ParameterAssignment, walk the Expr DAG (what every optimizer
//             called before this subsystem existed);
//   tape    — CompiledExpr::evaluate, one point at a time;
//   lane L  — CompiledExpr::evaluate_batch at lane width L ∈ {1, 4, 8} on
//             the "generic" backend. L = 1 is the single-lane reference
//             loop (the PR 1 batch path); L = 4/8 run the SoA lane kernel;
//   backend B — evaluate_batch pinned to each registered hardware backend
//             (generic / avx2 / avx512 where the CPU supports them) at the
//             common lane width 8, same grid;
//   batch N — the lane kernel fanned out over a ThreadPool;
//   grad    — per-point evaluate_with_gradient vs the lane-batched
//             gradient request (values + gradients per row).
//
// Besides timing, the run *verifies* the architectural contracts: every
// strategy must produce bitwise-identical surfaces (lane-count and
// thread-count invariance), batched gradients must equal the per-point
// reverse sweep bitwise, and GridSearch / DifferentialEvolution must return
// bitwise-identical optima on the tree and compiled paths.
//
// Besides the evaluation strategies, the run times the declarative
// pipeline's load-to-first-eval latency: ftio::load_study on the shipped
// elbtunnel document + core::Study::from_document (MOCUS, expression
// assembly) + the first compiled-problem evaluation. compare_bench.py
// tracks the metric (report-only) so document-parser regressions show up
// next to the kernel numbers.
//
// Usage: bench_compiled_eval [--repeats N] [--grid N] [--json PATH]
//                            [--model PATH]
//   --repeats  timing repetitions per strategy (default 5; CI smoke uses 1)
//   --grid     points per grid axis (default 301)
//   --json     write machine-readable results to PATH
//   --model    study document for the load benchmark
//              (default examples/models/elbtunnel.ft, as in CI's repo-root
//              working directory)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "safeopt/core/safety_optimizer.h"
#include "safeopt/core/study.h"
#include "safeopt/elbtunnel/elbtunnel_model.h"
#include "safeopt/expr/compiled.h"
#include "safeopt/expr/eval_backend.h"
#include "safeopt/ftio/study_document.h"
#include "safeopt/opt/differential_evolution.h"
#include "safeopt/opt/grid_search.h"
#include "safeopt/support/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Best-of-N wall time for `body` in seconds.
template <typename F>
double best_time(int repeats, F&& body) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto start = Clock::now();
    body();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safeopt;

  int repeats = 5;
  std::size_t grid = 301;
  std::string json_path;
  std::string model_path = "examples/models/elbtunnel.ft";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--grid") == 0 && i + 1 < argc) {
      grid = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_path = argv[++i];
    }
  }
  repeats = std::max(repeats, 1);
  grid = std::max<std::size_t>(grid, 2);

  const elbtunnel::ElbtunnelModel model;
  const core::SafetyOptimizer optimizer = model.optimizer();
  const expr::Expr cost = model.cost_model().cost_expression();
  const core::ParameterSpace space = model.parameter_space();
  const auto compiled = expr::CompiledExpr::compile(cost, space.names());

  std::printf("=== compiled expression tape vs recursive walk ===\n\n");
  std::printf("tape: %zu instructions\n%s\n", compiled.tape_size(),
              compiled.disassemble().c_str());

  // The Fig. 5 grid workload: T1 × T2 over the figure box, T1 fastest.
  const std::size_t rows = grid * grid;
  std::vector<double> points(rows * 2);
  {
    std::size_t k = 0;
    for (std::size_t j = 0; j < grid; ++j) {
      for (std::size_t i = 0; i < grid; ++i) {
        points[2 * k] =
            15.0 + 5.0 * static_cast<double>(i) / static_cast<double>(grid - 1);
        points[2 * k + 1] =
            15.0 + 3.0 * static_cast<double>(j) / static_cast<double>(grid - 1);
        ++k;
      }
    }
  }

  // --- strategy 1: recursive tree walk (the pre-compilation objective) ----
  std::vector<double> tree_values(rows);
  const double tree_s = best_time(repeats, [&] {
    std::vector<double> x(2);
    for (std::size_t r = 0; r < rows; ++r) {
      x[0] = points[2 * r];
      x[1] = points[2 * r + 1];
      tree_values[r] = cost.evaluate(space.assignment(x));
    }
  });

  // --- strategy 2: compiled tape, scalar calls ---------------------------
  std::vector<double> tape_values(rows);
  const double tape_s = best_time(repeats, [&] {
    for (std::size_t r = 0; r < rows; ++r) {
      tape_values[r] =
          compiled.evaluate(std::span<const double>(&points[2 * r], 2));
    }
  });

  // --- strategies 3-5: batch at lane widths 1 (reference), 4, 8 ----------
  // Pinned to the "generic" backend so the lane metrics track the portable
  // kernel across machines regardless of what runtime dispatch would pick.
  const expr::EvalBackend& generic = expr::BackendRegistry::generic();
  std::vector<double> lane1_values(rows);
  const double lane1_s = best_time(repeats, [&] {
    compiled.evaluate_batch({.points = points, .values = lane1_values,
                             .lane_width = 1, .backend = &generic});
  });
  std::vector<double> lane4_values(rows);
  const double lane4_s = best_time(repeats, [&] {
    compiled.evaluate_batch({.points = points, .values = lane4_values,
                             .lane_width = 4, .backend = &generic});
  });
  std::vector<double> lane8_values(rows);
  const double lane8_s = best_time(repeats, [&] {
    compiled.evaluate_batch({.points = points, .values = lane8_values,
                             .lane_width = 8, .backend = &generic});
  });

  // --- hardware backends, each at its own default lane width -------------
  // Each registered backend runs the same surface exactly as runtime
  // dispatch would run it (lane_width 0 = the backend's default: generic
  // blocks 8 rows, the SIMD backends 16), and every one must reproduce the
  // tree walk bit for bit (the backend contract). Unavailable backends
  // (e.g. avx512 on an avx2-only host) are reported and skipped.
  struct BackendRun {
    std::string name;
    bool available = false;
    double ns_per_eval = 0.0;
    bool identical = true;
  };
  std::vector<BackendRun> backend_runs;
  for (const std::string& name : expr::BackendRegistry::registered()) {
    BackendRun run;
    run.name = name;
    const expr::EvalBackend* backend = expr::BackendRegistry::find(name);
    run.available = backend != nullptr && backend->available();
    if (run.available) {
      std::vector<double> values(rows);
      const double s = best_time(repeats, [&] {
        compiled.evaluate_batch(
            {.points = points, .values = values, .backend = backend});
      });
      run.ns_per_eval = 1e9 * s / static_cast<double>(rows);
      run.identical = values == tree_values;
    }
    backend_runs.push_back(std::move(run));
  }
  const std::string active_backend{expr::BackendRegistry::active().name()};

  // --- strategy 6: lane kernel over the thread pool ----------------------
  ThreadPool& pool = ThreadPool::shared();
  std::vector<double> parallel_values(rows);
  const double batchn_s = best_time(repeats, [&] {
    compiled.evaluate_batch(
        {.points = points, .values = parallel_values, .pool = &pool});
  });

  // Lane-count invariance: every width must reproduce the scalar surface
  // bit for bit; thread-count invariance: so must the pooled run.
  const bool lanes_invariant = tree_values == lane1_values &&
                               tree_values == lane4_values &&
                               tree_values == lane8_values;
  const bool surfaces_identical = lanes_invariant &&
                                  tree_values == tape_values &&
                                  tree_values == parallel_values;

  // --- gradients: per-point reverse sweep vs lane-batched sweep ----------
  std::vector<double> grad_point_values(rows);
  std::vector<double> grad_point(rows * 2);
  const double gradp_s = best_time(repeats, [&] {
    for (std::size_t r = 0; r < rows; ++r) {
      grad_point_values[r] = compiled.evaluate_with_gradient(
          std::span<const double>(&points[2 * r], 2),
          std::span<double>(&grad_point[2 * r], 2));
    }
  });
  std::vector<double> grad_batch_values(rows);
  std::vector<double> grad_batch(rows * 2);
  const double gradb_s = best_time(repeats, [&] {
    compiled.evaluate_batch({.points = points, .values = grad_batch_values,
                             .gradients = grad_batch});
  });
  const bool gradients_identical = grad_point_values == grad_batch_values &&
                                   grad_point == grad_batch;

  const auto per_eval = [rows](double s) {
    return 1e9 * s / static_cast<double>(rows);
  };
  const double tree_ns = per_eval(tree_s);
  const double tape_ns = per_eval(tape_s);
  const double lane1_ns = per_eval(lane1_s);
  const double lane4_ns = per_eval(lane4_s);
  const double lane8_ns = per_eval(lane8_s);
  const double batchn_ns = per_eval(batchn_s);
  const double gradp_ns = per_eval(gradp_s);
  const double gradb_ns = per_eval(gradb_s);

  std::printf("grid workload: %zu points (%zu x %zu), best of %d\n", rows,
              grid, grid, repeats);
  std::printf("  tree walk          : %8.1f ns/eval   1.00x\n", tree_ns);
  std::printf("  compiled tape      : %8.1f ns/eval   %.2fx\n", tape_ns,
              tree_ns / tape_ns);
  std::printf("  batch, 1 lane      : %8.1f ns/eval   %.2fx\n", lane1_ns,
              tree_ns / lane1_ns);
  std::printf("  batch, 4 lanes     : %8.1f ns/eval   %.2fx\n", lane4_ns,
              tree_ns / lane4_ns);
  std::printf("  batch, 8 lanes     : %8.1f ns/eval   %.2fx\n", lane8_ns,
              tree_ns / lane8_ns);
  bool backends_identical = true;
  for (const BackendRun& run : backend_runs) {
    if (!run.available) {
      std::printf("  backend %-10s : not available on this cpu\n",
                  run.name.c_str());
      continue;
    }
    backends_identical = backends_identical && run.identical;
    std::printf("  backend %-10s : %8.1f ns/eval   %.2fx%s%s\n",
                run.name.c_str(), run.ns_per_eval,
                tree_ns / run.ns_per_eval,
                run.name == active_backend ? "   (active)" : "",
                run.identical ? "" : "   NOT BITWISE-IDENTICAL — BUG");
  }
  std::printf("  batch, %2zu threads  : %8.1f ns/eval   %.2fx\n",
              pool.thread_count(), batchn_ns, tree_ns / batchn_ns);
  std::printf("  gradient, per point: %8.1f ns/eval\n", gradp_ns);
  std::printf("  gradient, 8 lanes  : %8.1f ns/eval   %.2fx vs per-point\n",
              gradb_ns, gradp_ns / gradb_ns);
  std::printf("  surfaces bitwise-identical (lane/thread invariant): %s\n",
              surfaces_identical ? "yes" : "NO — BUG");
  std::printf("  batched gradients bitwise-identical: %s\n\n",
              gradients_identical ? "yes" : "NO — BUG");

  // --- identical optima through the solvers ------------------------------
  opt::Problem tree_problem;
  tree_problem.bounds = space.box();
  tree_problem.objective = [&space, &cost](std::span<const double> x) {
    return cost.evaluate(space.assignment(x));
  };
  const opt::Problem compiled_problem = optimizer.problem();

  const opt::GridSearch grid_search(33, 5);
  const auto grid_tree = grid_search.minimize(tree_problem);
  const auto grid_compiled = grid_search.minimize(compiled_problem);
  const bool grid_identical = grid_tree.value == grid_compiled.value &&
                              grid_tree.argmin == grid_compiled.argmin;

  opt::DifferentialEvolution::Settings de_settings;
  de_settings.generations = 100;
  const opt::DifferentialEvolution de(de_settings);
  const auto de_tree = de.minimize(tree_problem);
  const auto de_compiled = de.minimize(compiled_problem);
  const bool de_identical = de_tree.value == de_compiled.value &&
                            de_tree.argmin == de_compiled.argmin;

  std::printf("GridSearch optimum  (tree)     T1=%.6f T2=%.6f cost=%.10g\n",
              grid_tree.argmin[0], grid_tree.argmin[1], grid_tree.value);
  std::printf("GridSearch optimum  (compiled) T1=%.6f T2=%.6f cost=%.10g\n",
              grid_compiled.argmin[0], grid_compiled.argmin[1],
              grid_compiled.value);
  std::printf("  bitwise-identical: %s\n", grid_identical ? "yes" : "NO");
  std::printf("DE optimum          (tree)     T1=%.6f T2=%.6f cost=%.10g\n",
              de_tree.argmin[0], de_tree.argmin[1], de_tree.value);
  std::printf("DE optimum          (compiled) T1=%.6f T2=%.6f cost=%.10g\n",
              de_compiled.argmin[0], de_compiled.argmin[1], de_compiled.value);
  std::printf("  bitwise-identical: %s\n", de_identical ? "yes" : "NO");
  std::printf("paper optimum:                 T1=19       T2=15.6\n");

  const bool lane_fast_enough = lane1_ns / lane8_ns >= 2.0;
  std::printf("\n8-lane kernel speedup over single-lane batch >= 2x: %s "
              "(%.2fx)\n",
              lane_fast_enough ? "yes" : "NO", lane1_ns / lane8_ns);

  // --- declarative pipeline: document load -> first compiled eval --------
  // CI runs from the repo root; a build-directory invocation finds the
  // model one level up. 0 in the JSON means "skipped" (compare_bench.py
  // ignores non-positive raw metrics), so the kernel gates still run
  // anywhere.
  double load_ns = 0.0;
  if (!std::ifstream(model_path).good() &&
      std::ifstream("../" + model_path).good()) {
    model_path = "../" + model_path;
  }
  if (std::ifstream(model_path).good()) {
    double first_eval_value = 0.0;
    const double load_s = best_time(repeats, [&] {
      const ftio::StudyDocument doc = ftio::load_study(model_path);
      const core::Study study = core::Study::from_document(doc);
      const opt::Problem& problem = study.problem();
      const std::vector<double> center = problem.bounds.center();
      first_eval_value = problem.objective(center);
    });
    load_ns = 1e9 * load_s;
    std::printf("\nload-to-first-eval (%s): %.1f us  (parse + Study compile "
                "+ 1 eval, cost %.6g)\n",
                model_path.c_str(), load_ns / 1e3, first_eval_value);
  } else {
    std::printf("\nload-to-first-eval skipped: %s not found "
                "(pass --model PATH)\n",
                model_path.c_str());
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    // Per-backend entries: 0 ns means "not available on this host"
    // (compare_bench.py ignores non-positive raw metrics).
    double avx2_ns = 0.0;
    double generic_ns = 0.0;
    std::string backend_json;
    for (const BackendRun& run : backend_runs) {
      char line[128];
      std::snprintf(line, sizeof line,
                    "  \"backend_%s_ns_per_eval\": %.3f,\n",
                    run.name.c_str(), run.ns_per_eval);
      backend_json += line;
      if (run.name == "avx2") avx2_ns = run.ns_per_eval;
      if (run.name == "generic") generic_ns = run.ns_per_eval;
    }
    const double avx2_speedup =
        avx2_ns > 0.0 && generic_ns > 0.0 ? generic_ns / avx2_ns : 0.0;
    std::fprintf(f,
                 "{\n"
                 "  \"grid_points\": %zu,\n"
                 "  \"repeats\": %d,\n"
                 "  \"threads\": %zu,\n"
                 "  \"tree_ns_per_eval\": %.3f,\n"
                 "  \"tape_ns_per_eval\": %.3f,\n"
                 "  \"lane1_ns_per_eval\": %.3f,\n"
                 "  \"lane4_ns_per_eval\": %.3f,\n"
                 "  \"lane8_ns_per_eval\": %.3f,\n"
                 "  \"batchn_ns_per_eval\": %.3f,\n"
                 "  \"grad_point_ns_per_eval\": %.3f,\n"
                 "  \"grad_lane_ns_per_eval\": %.3f,\n"
                 "  \"load_to_first_eval_ns\": %.3f,\n"
                 "%s"
                 "  \"active_backend\": \"%s\",\n"
                 "  \"speedup_tape\": %.3f,\n"
                 "  \"speedup_lane8\": %.3f,\n"
                 "  \"speedup_lane8_vs_lane1\": %.3f,\n"
                 "  \"speedup_avx2_vs_generic\": %.3f,\n"
                 "  \"speedup_grad_lane_vs_point\": %.3f,\n"
                 "  \"surfaces_identical\": %s,\n"
                 "  \"lanes_invariant\": %s,\n"
                 "  \"backends_identical\": %s,\n"
                 "  \"gradients_identical\": %s,\n"
                 "  \"grid_search_identical\": %s,\n"
                 "  \"de_identical\": %s\n"
                 "}\n",
                 rows, repeats, pool.thread_count(), tree_ns, tape_ns,
                 lane1_ns, lane4_ns, lane8_ns, batchn_ns, gradp_ns, gradb_ns,
                 load_ns, backend_json.c_str(), active_backend.c_str(),
                 tree_ns / tape_ns, tree_ns / lane8_ns, lane1_ns / lane8_ns,
                 avx2_speedup, gradp_ns / gradb_ns,
                 surfaces_identical ? "true" : "false",
                 lanes_invariant ? "true" : "false",
                 backends_identical ? "true" : "false",
                 gradients_identical ? "true" : "false",
                 grid_identical ? "true" : "false",
                 de_identical ? "true" : "false");
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }

  const bool ok = surfaces_identical && backends_identical &&
                  gradients_identical && grid_identical && de_identical;
  return ok ? 0 : 1;
}
