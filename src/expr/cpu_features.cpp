// The one TU allowed to call __builtin_cpu_supports (safeopt-lint:
// cpu-detect). Everything else asks cpu_features().
#include "safeopt/expr/cpu_features.h"

namespace safeopt::expr {

namespace {

CpuFeatures probe() noexcept {
  CpuFeatures features;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  features.avx2 = __builtin_cpu_supports("avx2") > 0;
  features.avx512f = __builtin_cpu_supports("avx512f") > 0;
  features.avx512dq = __builtin_cpu_supports("avx512dq") > 0;
  features.avx512vl = __builtin_cpu_supports("avx512vl") > 0;
#endif
  return features;
}

}  // namespace

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures features = probe();
  return features;
}

}  // namespace safeopt::expr
