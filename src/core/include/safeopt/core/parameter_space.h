// Free parameters of the analyzed system (paper §II-D.2, §III-B): each has a
// compact interval domain — "to guarantee the existence of the minimum we
// restrict the real value domains to be compact intervals" — plus reporting
// metadata. The space maps between the optimizer's flat vectors and the
// expression layer's named assignments.
#ifndef SAFEOPT_CORE_PARAMETER_SPACE_H
#define SAFEOPT_CORE_PARAMETER_SPACE_H

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "safeopt/expr/expr.h"
#include "safeopt/opt/problem.h"

namespace safeopt::core {

/// One free parameter: e.g. {"T1", 5, 40, "min", "runtime of timer 1"}.
struct Parameter {
  std::string name;
  double lower = 0.0;
  double upper = 1.0;
  std::string unit;
  std::string description;
};

class ParameterSpace {
 public:
  ParameterSpace() = default;
  ParameterSpace(std::initializer_list<Parameter> parameters);

  /// Precondition: lower <= upper, name unique and non-empty.
  void add(Parameter parameter);

  [[nodiscard]] std::size_t size() const noexcept {
    return parameters_.size();
  }
  [[nodiscard]] const Parameter& operator[](std::size_t i) const;
  [[nodiscard]] std::optional<std::size_t> index_of(
      std::string_view name) const noexcept;
  [[nodiscard]] std::vector<std::string> names() const;

  /// The optimizer's feasible box, axes in parameter order.
  [[nodiscard]] opt::Box box() const;

  /// Binds a flat optimizer vector to parameter names.
  /// Precondition: values.size() == size().
  [[nodiscard]] expr::ParameterAssignment assignment(
      std::span<const double> values) const;

  /// Extracts this space's values from an assignment, in parameter order.
  [[nodiscard]] std::vector<double> values(
      const expr::ParameterAssignment& assignment) const;

 private:
  std::vector<Parameter> parameters_;
};

}  // namespace safeopt::core

#endif  // SAFEOPT_CORE_PARAMETER_SPACE_H
