// Minimal HTTP/1.1 for the embedded service front end: one request per
// connection (Connection: close), Content-Length bodies only (no chunked
// encoding, no keep-alive, no TLS). Deliberately the smallest surface that
// curl and the test clients speak — the service is an embedded tool, not a
// general web server; anything beyond this belongs behind a real proxy.
//
// Failure mapping (the server turns these into status codes):
//   Error(kInvalidInput)       malformed request line/headers/length → 400
//   Error(kResourceExhausted)  header or body over the limits → 413
//   Error(kDeadlineExceeded)   client too slow to send the request → 408
//   Error(kInternal)           socket-layer failure → connection dropped
#ifndef SAFEOPT_SERVE_HTTP_H
#define SAFEOPT_SERVE_HTTP_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "safeopt/support/net.h"

namespace safeopt::serve {

struct HttpRequest {
  std::string method;  // uppercase as sent ("GET", "POST")
  std::string target;  // path as sent ("/v1/quantify")
  /// Header names lowercased; values trimmed. Duplicates keep order.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with `name` (lowercase), or nullptr.
  [[nodiscard]] const std::string* find_header(
      std::string_view name) const noexcept;
};

struct HttpLimits {
  std::size_t max_header_bytes = 16 * 1024;
  std::size_t max_body_bytes = 4 * 1024 * 1024;
  /// Slow-client guard on the socket while reading; 0 = block forever.
  std::uint64_t read_timeout_ms = 10'000;
};

/// Reads one request off the socket. nullopt = the peer closed before
/// sending anything (a health-probe connect; not an error). Throws per the
/// header-comment mapping.
[[nodiscard]] std::optional<HttpRequest> read_http_request(
    TcpSocket& socket, const HttpLimits& limits = {});

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Writes status line + Content-Type/Content-Length/Connection: close +
/// body. Throws Error(kInternal) when the peer is gone (callers that are
/// already failing catch and drop).
void write_http_response(TcpSocket& socket, const HttpResponse& response);

/// Reason phrase for the statuses the service emits ("OK", "Too Many
/// Requests", ...); "Unknown" otherwise.
[[nodiscard]] std::string_view http_status_reason(int status) noexcept;

}  // namespace safeopt::serve

#endif  // SAFEOPT_SERVE_HTTP_H
