// Quantitative FTA (paper §II-C and §II-D.1).
//
// Given per-basic-event probabilities (and per-condition *constraint
// probabilities*), the top-event probability is computed from the minimal cut
// sets. Three methods are provided:
//
//   kRareEvent          — the paper's Eq. 1/2: P(H) = Σ P(MCS), where
//                         P(MCS) = P(Constraints)·∏ P(PF). Overestimates
//                         (first Bonferroni bound) but is the engineering
//                         standard for small probabilities.
//   kMinCutUpperBound   — P(H) ≈ 1 − ∏(1 − P(MCS)); tighter than rare-event,
//                         still an upper bound for coherent trees.
//   kInclusionExclusion — exact for statistically independent leaves; cost is
//                         exponential in the number of cut sets (guarded).
//
// `exact_probability_bruteforce` integrates the structure function over all
// leaf assignments; it is the oracle the test suite checks everything else
// against, and the only method here that is exact for XOR trees.
#ifndef SAFEOPT_FTA_PROBABILITY_H
#define SAFEOPT_FTA_PROBABILITY_H

#include <string_view>
#include <vector>

#include "safeopt/fta/cut_sets.h"
#include "safeopt/fta/fault_tree.h"

namespace safeopt::fta {

/// Probabilities for every leaf of one fault tree.
struct QuantificationInput {
  /// P(PF_i), indexed by BasicEventOrdinal. All values in [0, 1].
  std::vector<double> basic_event_probability;
  /// Constraint probabilities for INHIBIT conditions, indexed by
  /// ConditionOrdinal. Defaulting a condition to 1.0 recovers classical
  /// worst-case quantitative FTA (paper: "If one chooses P(Constraints)=1 ...
  /// one gets the same formula as before").
  std::vector<double> condition_probability;

  /// Builds an input sized for `tree` with every basic event at
  /// `default_event_p` and every condition at 1 (worst case).
  [[nodiscard]] static QuantificationInput for_tree(const FaultTree& tree,
                                                    double default_event_p);

  /// Sets the probability of the leaf named `name`. Precondition: the name
  /// refers to a basic event or condition of `tree`.
  void set(const FaultTree& tree, std::string_view name, double p);

  /// True if sized for `tree` and all probabilities lie in [0, 1].
  [[nodiscard]] bool is_valid_for(const FaultTree& tree) const noexcept;
};

enum class ProbabilityMethod {
  kRareEvent,
  kMinCutUpperBound,
  kInclusionExclusion,
};

/// How multiple INHIBIT constraints on one cut set combine (paper §II-D.1):
/// "An upper bound for the constraint probability is then the product of all
/// conditions' probabilities if statistical independence holds; if not then
/// the maximum is an upper bound for it."
enum class ConstraintCombination {
  /// ∏ P(condition) — exact under independence (the default everywhere).
  kIndependentProduct,
  /// min P(condition) — a valid upper bound under arbitrary dependence
  /// (P(A ∩ B) <= min(P(A), P(B))); use when constraints may be correlated.
  kDependentUpperBound,
};

/// P(MCS) = P(Constraints) · ∏_{PF ∈ MCS} P(PF) — paper Eq. 2, with the
/// constraint factor combined per `combination`.
[[nodiscard]] double cut_set_probability(
    const CutSet& cut_set, const QuantificationInput& input,
    ConstraintCombination combination =
        ConstraintCombination::kIndependentProduct);

/// Top-event probability from minimal cut sets by the chosen method.
/// Results are clamped into [0, 1].
/// Precondition for kInclusionExclusion: mcs.size() <= 25.
/// (kInclusionExclusion always combines constraints as independent; the
/// dependent bound is only meaningful for the two bounding methods.)
[[nodiscard]] double top_event_probability(
    const CutSetCollection& mcs, const QuantificationInput& input,
    ProbabilityMethod method = ProbabilityMethod::kRareEvent,
    ConstraintCombination combination =
        ConstraintCombination::kIndependentProduct);

/// Exact P(top) by summing the probability mass of every leaf assignment for
/// which the structure function is true. Exponential: requires
/// basic_event_count() + condition_count() <= 24.
[[nodiscard]] double exact_probability_bruteforce(
    const FaultTree& tree, const QuantificationInput& input);

}  // namespace safeopt::fta

#endif  // SAFEOPT_FTA_PROBABILITY_H
