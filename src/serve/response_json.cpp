// One renderer per --json schema (response_json.h). The byte format is the
// contract: tests diff CLI stdout against HTTP bodies, so every separator
// and %.17g here is load-bearing.
#include "safeopt/serve/response_json.h"

#include <cinttypes>
#include <cstdio>

#include "safeopt/support/json.h"
#include "safeopt/support/strings.h"

namespace safeopt::serve {
namespace {

std::string fmt_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string fmt_u64(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

void append_string_array(std::string& out,
                         const std::vector<std::string>& items) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    out += concat(i > 0 ? ", " : "", "\"", json_escape(items[i]), "\"");
  }
}

void append_assignment_object(std::string& out,
                              const expr::ParameterAssignment& point) {
  for (std::size_t i = 0; i < point.entries().size(); ++i) {
    out += concat(i > 0 ? ", " : "", "\"",
                  json_escape(point.entries()[i].first),
                  "\": ", fmt_double(point.entries()[i].second));
  }
}

}  // namespace

std::string render_hazard_results(const HazardResults& results) {
  std::string out = "  \"hazards\": [";
  bool first = true;
  for (const auto& [hazard, result] : results) {
    out += concat(first ? "" : ",", "\n    {\"hazard\": \"",
                  json_escape(hazard),
                  "\", \"probability\": ", fmt_double(result.probability));
    if (result.ci95.has_value()) {
      out += concat(", \"ci95\": [", fmt_double(result.ci95->lo), ", ",
                    fmt_double(result.ci95->hi),
                    "], \"halfwidth\": ", fmt_double(result.halfwidth()),
                    ", \"trials\": ", fmt_u64(result.trials));
      if (result.ess.has_value()) {
        out += concat(", \"ess\": ", fmt_double(*result.ess));
      }
      if (result.converged.has_value()) {
        out += concat(", \"converged\": ",
                      *result.converged ? "true" : "false");
      }
      if (result.aborted.has_value()) {
        out += concat(", \"aborted\": ", *result.aborted ? "true" : "false");
      }
    }
    if (!result.diagnostics.empty()) {
      out += ", \"diagnostics\": [";
      append_string_array(out, result.diagnostics);
      out += "]";
    }
    if (!result.backend.empty()) {
      out += concat(", \"backend\": \"", json_escape(result.backend), "\"");
    }
    if (result.preprocess.has_value()) {
      const core::PreprocessSummary& pre = *result.preprocess;
      out += concat(", \"preprocess\": {\"modules\": ",
                    std::to_string(pre.modules),
                    ", \"events_before\": ", std::to_string(pre.events_before),
                    ", \"events_after\": ", std::to_string(pre.events_after),
                    ", \"gates_before\": ", std::to_string(pre.gates_before),
                    ", \"gates_after\": ", std::to_string(pre.gates_after),
                    ", \"passes\": [");
      append_string_array(out, pre.passes);
      out += "]}";
    }
    out += "}";
    first = false;
  }
  out += "\n  ],\n";
  return out;
}

std::string render_quantify_response(std::string_view model,
                                     std::string_view engine,
                                     const expr::ParameterAssignment& at,
                                     const HazardResults& results,
                                     double cost) {
  std::string out =
      concat("{\n  \"model\": \"", json_escape(model), "\",\n  \"engine\": \"",
             json_escape(engine), "\",\n  \"at\": {");
  append_assignment_object(out, at);
  out += "},\n";
  out += render_hazard_results(results);
  out += concat("  \"cost\": ", fmt_double(cost), "\n}\n");
  return out;
}

std::string render_constant_quantify_response(std::string_view model,
                                              std::string_view engine,
                                              const HazardResults& results,
                                              double cost) {
  std::string out =
      concat("{\n  \"model\": \"", json_escape(model), "\",\n  \"engine\": \"",
             json_escape(engine), "\",\n");
  out += render_hazard_results(results);
  out += concat("  \"cost\": ", fmt_double(cost), "\n}\n");
  return out;
}

std::string render_optimize_response(std::string_view model,
                                     std::string_view solver,
                                     std::string_view engine, bool converged,
                                     std::size_t evaluations,
                                     const expr::ParameterAssignment& optimum,
                                     const HazardResults& results,
                                     double cost) {
  std::string out = concat(
      "{\n  \"model\": \"", json_escape(model), "\",\n  \"solver\": \"",
      json_escape(solver), "\",\n  \"engine\": \"", json_escape(engine),
      "\",\n  \"converged\": ", converged ? "true" : "false",
      ",\n  \"evaluations\": ", std::to_string(evaluations),
      ",\n  \"optimum\": {");
  append_assignment_object(out, optimum);
  out += "},\n";
  out += render_hazard_results(results);
  out += concat("  \"cost\": ", fmt_double(cost), "\n}\n");
  return out;
}

std::string render_validate_response(std::string_view model,
                                     std::size_t parameters,
                                     std::size_t trees, std::size_t hazards,
                                     const std::vector<std::string>&
                                         problems) {
  std::string out = concat(
      "{\n  \"model\": \"", json_escape(model),
      "\",\n  \"parameters\": ", std::to_string(parameters),
      ",\n  \"trees\": ", std::to_string(trees),
      ",\n  \"hazards\": ", std::to_string(hazards), ",\n  \"problems\": [");
  for (std::size_t i = 0; i < problems.size(); ++i) {
    out += concat(i > 0 ? "," : "", "\n    \"", json_escape(problems[i]),
                  "\"");
  }
  out += concat(problems.empty() ? "" : "\n  ", "],\n  \"valid\": ",
                problems.empty() ? "true" : "false", "\n}\n");
  return out;
}

std::string render_error_response(std::string_view category,
                                  std::string_view message) {
  return concat("{\n  \"error\": {\"category\": \"", json_escape(category),
                "\", \"message\": \"", json_escape(message), "\"}\n}\n");
}

}  // namespace safeopt::serve
