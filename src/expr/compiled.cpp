#include "safeopt/expr/compiled.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <typeinfo>
#include <unordered_map>
#include <utility>

#include "node.h"
#include "safeopt/expr/eval_backend.h"
#include "safeopt/support/contracts.h"
#include "safeopt/support/strings.h"
#include "safeopt/support/thread_pool.h"

namespace safeopt::expr {

namespace {

// Scratch buffers reused across evaluations. Per-thread so concurrent
// evaluation of the same CompiledExpr (the batch path) needs no locking.
thread_local std::vector<double> t_slots;
thread_local std::vector<double> t_adjoint;
thread_local std::vector<double> t_memo_arg;
thread_local std::vector<double> t_memo_val;

double* scratch(std::vector<double>& buffer, std::size_t size) {
  if (buffer.size() < size) buffer.resize(size);
  return buffer.data();
}

// Direct-mapped memo index for a distribution argument: multiplicative hash
// on the bit pattern, top bits as the table slot. kMemoMask must track
// CompiledExpr::kMemoEntries (static_assert at the use site).
constexpr std::size_t kMemoMask = 2047;
inline std::size_t memo_index(double x) noexcept {
  const std::uint64_t bits =
      std::bit_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL;
  return static_cast<std::size_t>(bits >> 53) & kMemoMask;
}

/// Applies a deterministic unary function across L lanes. When every lane
/// holds the same bit pattern (the slow-axis subexpressions of grid-shaped
/// blocks), one evaluation is broadcast — identical to per-lane calls
/// because f is a pure function of the argument bits.
template <std::size_t L, typename F>
inline void map_lanes_uniform(const double* a, double* lane, F&& f) {
  const std::uint64_t first = std::bit_cast<std::uint64_t>(a[0]);
  bool uniform = true;
  for (std::size_t l = 1; l < L; ++l) {
    uniform &= std::bit_cast<std::uint64_t>(a[l]) == first;
  }
  if (uniform) {
    const double v = f(a[0]);
    for (std::size_t l = 0; l < L; ++l) lane[l] = v;
    return;
  }
  for (std::size_t l = 0; l < L; ++l) lane[l] = f(a[l]);
}

}  // namespace

// ----------------------------------------------------------------- Builder

/// Flattens the node DAG into the tape. Three layers of sharing:
///   1. node identity — a subtree reached through two shared_ptr paths is
///      emitted once (memo on the node address);
///   2. structural identity — distinct nodes computing the same operation on
///      the same slots collapse into one instruction (hash on the
///      instruction tuple), which is what dedupes model code that rebuilds
///      the same subexpression twice;
///   3. constant folding — operations whose operands are constants are
///      evaluated now with the exact scalar code run() would use, so folding
///      never changes results.
class CompiledExpr::Builder {
 public:
  Builder(CompiledExpr& out,
          const std::vector<std::string>& parameter_order) {
    out_ = &out;
    for (std::size_t i = 0; i < parameter_order.size(); ++i) {
      parameter_slots_.emplace(parameter_order[i],
                               static_cast<std::uint32_t>(i));
    }
  }

  std::uint32_t emit_node(const std::shared_ptr<const detail::Node>& node) {
    const auto memo = node_slots_.find(node.get());
    if (memo != node_slots_.end()) return memo->second;
    const std::uint32_t slot = emit_uncached(node);
    node_slots_.emplace(node.get(), slot);
    return slot;
  }

 private:
  using OpCode = CompiledExpr::OpCode;
  using Instruction = CompiledExpr::Instruction;

  std::uint32_t emit_uncached(
      const std::shared_ptr<const detail::Node>& handle) {
    using detail::NodeKind;
    const detail::Node& node = *handle;
    switch (node.kind()) {
      case NodeKind::kConst:
        return emit_constant(
            static_cast<const detail::ConstNode&>(node).constant());
      case NodeKind::kParam: {
        const auto& param = static_cast<const detail::ParamNode&>(node);
        const auto it = parameter_slots_.find(param.name());
        SAFEOPT_EXPECTS(it != parameter_slots_.end());
        return emit({OpCode::kParam, it->second, 0, 0, 0.0});
      }
      case NodeKind::kBinary: {
        const auto& binary = static_cast<const detail::BinaryNode&>(node);
        const std::uint32_t a = emit_node(binary.lhs());
        const std::uint32_t b = emit_node(binary.rhs());
        OpCode op = OpCode::kAdd;
        switch (binary.op()) {
          case detail::BinaryOp::kAdd: op = OpCode::kAdd; break;
          case detail::BinaryOp::kSub: op = OpCode::kSub; break;
          case detail::BinaryOp::kMul: op = OpCode::kMul; break;
          case detail::BinaryOp::kDiv: op = OpCode::kDiv; break;
          case detail::BinaryOp::kMin: op = OpCode::kMin; break;
          case detail::BinaryOp::kMax: op = OpCode::kMax; break;
        }
        return emit_binary(op, a, b);
      }
      case NodeKind::kUnary: {
        const auto& unary = static_cast<const detail::UnaryNode&>(node);
        const std::uint32_t a = emit_node(unary.operand());
        OpCode op = OpCode::kNeg;
        switch (unary.op()) {
          case detail::UnaryOp::kNeg: op = OpCode::kNeg; break;
          case detail::UnaryOp::kExp: op = OpCode::kExp; break;
          case detail::UnaryOp::kLog: op = OpCode::kLog; break;
          case detail::UnaryOp::kSqrt: op = OpCode::kSqrt; break;
        }
        if (is_constant(a)) {
          return emit_constant(
              CompiledExpr::apply_unary(op, constant_of(a), 0.0));
        }
        return emit({op, a, 0, 0, 0.0});
      }
      case NodeKind::kPow: {
        const auto& pow_node = static_cast<const detail::PowNode&>(node);
        const std::uint32_t a = emit_node(pow_node.operand());
        if (is_constant(a)) {
          return emit_constant(CompiledExpr::apply_unary(
              OpCode::kPow, constant_of(a), pow_node.exponent()));
        }
        // pow(x, 1) == x bitwise for every x (IEC 60559), including NaN.
        if (pow_node.exponent() == 1.0) return a;
        return emit({OpCode::kPow, a, 0, 0, pow_node.exponent()});
      }
      case NodeKind::kCdf: {
        const auto& cdf = static_cast<const detail::CdfNode&>(node);
        const std::uint32_t a = emit_node(cdf.operand());
        const std::uint32_t dist = distribution_index(cdf.distribution());
        const OpCode op =
            cdf.is_survival() ? OpCode::kSurvival : OpCode::kCdf;
        if (is_constant(a)) {
          const double x = constant_of(a);
          return emit_constant(cdf.is_survival()
                                   ? cdf.distribution()->survival(x)
                                   : cdf.distribution()->cdf(x));
        }
        return emit({op, a, dist, 0, 0.0});
      }
      case NodeKind::kFunction: {
        const auto& call = static_cast<const detail::FunctionNode&>(node);
        const std::uint32_t a = emit_node(call.operand());
        // Opaque std::functions cannot be compared, so kCall instructions
        // are shared by node identity only (the memo in emit_node) and
        // never folded.
        const auto index = static_cast<std::uint32_t>(out_->calls_.size());
        out_->calls_.push_back(handle);
        const auto slot = static_cast<std::uint32_t>(out_->tape_.size());
        out_->tape_.push_back({OpCode::kCall, a, index, 0, 0.0});
        return slot;
      }
    }
    SAFEOPT_ASSERT(false);
    return 0;
  }

  [[nodiscard]] bool is_constant(std::uint32_t slot) const {
    return out_->tape_[slot].op == OpCode::kConst;
  }
  [[nodiscard]] double constant_of(std::uint32_t slot) const {
    return out_->tape_[slot].imm;
  }

  std::uint32_t emit_constant(double value) {
    return emit({OpCode::kConst, 0, 0, 0, value});
  }

  /// Binary emission with three strength levels, all value-preserving:
  /// full fold (both operands constant), exact algebraic identity (x+0,
  /// x−0, x·1, 1·x, x/1 — see the header caveat on −0.0), and immediate
  /// fusion (one constant operand moves into the instruction).
  std::uint32_t emit_binary(OpCode op, std::uint32_t a, std::uint32_t b) {
    const bool ca = is_constant(a);
    const bool cb = is_constant(b);
    if (ca && cb) {
      return emit_constant(
          CompiledExpr::apply_binary(op, constant_of(a), constant_of(b)));
    }
    const auto is_pos_zero = [](double c) {
      return std::bit_cast<std::uint64_t>(c) == 0;
    };
    if (cb) {
      const double c = constant_of(b);
      if ((op == OpCode::kAdd || op == OpCode::kSub) && is_pos_zero(c)) {
        return a;
      }
      if ((op == OpCode::kMul || op == OpCode::kDiv) && c == 1.0) return a;
      switch (op) {
        case OpCode::kAdd: return emit({OpCode::kAddImm, a, 0, 0, c});
        case OpCode::kSub: return emit({OpCode::kSubImm, a, 0, 0, c});
        case OpCode::kMul: return emit({OpCode::kMulImm, a, 0, 0, c});
        case OpCode::kDiv: return emit({OpCode::kDivImm, a, 0, 0, c});
        default: break;  // min/max stay slot-based (tie rules are positional)
      }
    } else if (ca) {
      const double c = constant_of(a);
      if (op == OpCode::kAdd && is_pos_zero(c)) return b;
      if (op == OpCode::kMul && c == 1.0) return b;
      switch (op) {
        case OpCode::kAdd: return emit({OpCode::kAddImm, b, 0, 0, c});
        case OpCode::kSub: return emit({OpCode::kRsubImm, b, 0, 0, c});
        case OpCode::kMul: return emit({OpCode::kMulImm, b, 0, 0, c});
        case OpCode::kDiv: return emit({OpCode::kRdivImm, b, 0, 0, c});
        default: break;
      }
    }
    return emit({op, a, b, 0, 0.0});
  }

  /// Structurally deduplicating emit: an identical (op, a, b, imm) tuple
  /// reuses its existing slot. The memo index `c` is assigned on first
  /// emission and shared by deduplicated uses.
  std::uint32_t emit(Instruction instruction) {
    const Key key{static_cast<std::uint8_t>(instruction.op), instruction.a,
                  instruction.b, std::bit_cast<std::uint64_t>(instruction.imm)};
    const auto it = structural_.find(key);
    if (it != structural_.end()) return it->second;
    if (instruction.op == OpCode::kCdf ||
        instruction.op == OpCode::kSurvival) {
      instruction.c = out_->memo_count_++;
    }
    const auto slot = static_cast<std::uint32_t>(out_->tape_.size());
    out_->tape_.push_back(instruction);
    structural_.emplace(key, slot);
    return slot;
  }

  /// Index into the distribution table, deduplicated first by object
  /// identity and then by canonical (type, name) — name() embeds the
  /// distribution's parameters, so two independently constructed
  /// TruncatedNormal(4, 2) instances share one table entry and their cdf
  /// applications become CSE-able.
  std::uint32_t distribution_index(
      const std::shared_ptr<const stats::Distribution>& dist) {
    const auto by_ptr = distributions_by_ptr_.find(dist.get());
    if (by_ptr != distributions_by_ptr_.end()) return by_ptr->second;
    std::string canonical = typeid(*dist).name();
    canonical += '|';
    canonical += dist->name();
    const auto by_name = distributions_by_name_.find(canonical);
    if (by_name != distributions_by_name_.end()) {
      distributions_by_ptr_.emplace(dist.get(), by_name->second);
      return by_name->second;
    }
    const auto index = static_cast<std::uint32_t>(out_->distributions_.size());
    out_->distributions_.push_back(dist);
    distributions_by_ptr_.emplace(dist.get(), index);
    distributions_by_name_.emplace(std::move(canonical), index);
    return index;
  }

  CompiledExpr* out_ = nullptr;
  std::unordered_map<std::string, std::uint32_t> parameter_slots_;
  std::unordered_map<const detail::Node*, std::uint32_t> node_slots_;

  struct Key {
    std::uint8_t op;
    std::uint32_t a;
    std::uint32_t b;
    std::uint64_t imm_bits;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      std::uint64_t h = key.op;
      h = h * 0x9e3779b97f4a7c15ULL + key.a;
      h = h * 0x9e3779b97f4a7c15ULL + key.b;
      h = h * 0x9e3779b97f4a7c15ULL + key.imm_bits;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };
  std::unordered_map<Key, std::uint32_t, KeyHash> structural_;
  std::unordered_map<const stats::Distribution*, std::uint32_t>
      distributions_by_ptr_;
  std::unordered_map<std::string, std::uint32_t> distributions_by_name_;
};

// ------------------------------------------------------------- CompiledExpr

CompiledExpr CompiledExpr::compile(const Expr& source) {
  const std::set<std::string> mentioned = source.parameters();
  return compile(source,
                 std::vector<std::string>(mentioned.begin(), mentioned.end()));
}

CompiledExpr CompiledExpr::compile(const Expr& source,
                                   std::vector<std::string> parameter_order) {
  CompiledExpr compiled;
  static std::atomic<std::uint64_t> next_id{1};
  compiled.id_ = next_id.fetch_add(1, std::memory_order_relaxed);
  compiled.parameter_order_ = std::move(parameter_order);
  Builder builder(compiled, compiled.parameter_order_);
  const std::uint32_t root = builder.emit_node(source.node());
  compiled.eliminate_dead_code(root);
  SAFEOPT_ENSURES(!compiled.tape_.empty());
  return compiled;
}

void CompiledExpr::eliminate_dead_code(std::uint32_t root) {
  // Slot operand count; kParam's `a` and the table indices in `b` are not
  // slot references.
  const auto slot_operands = [](OpCode op) -> int {
    switch (op) {
      case OpCode::kConst:
      case OpCode::kParam:
        return 0;
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv:
      case OpCode::kMin:
      case OpCode::kMax:
        return 2;
      default:
        return 1;
    }
  };

  std::vector<bool> live(tape_.size(), false);
  live[root] = true;
  for (std::size_t i = root + 1; i-- > 0;) {
    if (!live[i]) continue;
    const Instruction& ins = tape_[i];
    const int operands = slot_operands(ins.op);
    if (operands >= 1) live[ins.a] = true;
    if (operands >= 2) live[ins.b] = true;
  }

  std::vector<std::uint32_t> remap(tape_.size(), 0);
  std::vector<Instruction> compacted;
  compacted.reserve(tape_.size());
  std::uint32_t memo_count = 0;
  for (std::size_t i = 0; i <= root; ++i) {
    if (!live[i]) continue;
    Instruction ins = tape_[i];
    const int operands = slot_operands(ins.op);
    if (operands >= 1) ins.a = remap[ins.a];
    if (operands >= 2) ins.b = remap[ins.b];
    if (ins.op == OpCode::kCdf || ins.op == OpCode::kSurvival) {
      ins.c = memo_count++;
    }
    remap[i] = static_cast<std::uint32_t>(compacted.size());
    compacted.push_back(ins);
  }
  tape_ = std::move(compacted);
  memo_count_ = memo_count;
  // Postorder emission puts every operand before its consumer, so the root
  // compacts to the final slot — which is what run() returns.
  SAFEOPT_ENSURES(!tape_.empty());
}

// Tapes at or below this size evaluate on a stack buffer; a thread_local
// heap scratch (with its per-access TLS guard) only backs the rare giants.
constexpr std::size_t kStackSlots = 256;

void CompiledExpr::bind(Workspace& workspace) const {
  if (workspace.bound_id == id_) return;
  workspace.bound_id = id_;
  workspace.slots.assign(tape_.size(), 0.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  workspace.memo_arg.assign(memo_count_, nan);
  workspace.memo_val.assign(memo_count_, nan);
}

double CompiledExpr::evaluate(std::span<const double> parameters) const {
  SAFEOPT_EXPECTS(parameters.size() == parameter_order_.size());
  if (tape_.size() <= kStackSlots && memo_count_ <= kStackSlots) {
    double slots[kStackSlots];
    double memo_arg[kStackSlots];
    double memo_val[kStackSlots];
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (std::uint32_t m = 0; m < memo_count_; ++m) memo_arg[m] = nan;
    return run(parameters, slots, memo_arg, memo_val);
  }
  // Giant tapes reuse the per-thread heap scratch; the memo is cold per
  // call (it cannot be trusted across calls without a Workspace binding).
  double* slots = scratch(t_slots, tape_.size());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  double* memo_arg = scratch(t_memo_arg, memo_count_);
  double* memo_val = scratch(t_memo_val, memo_count_);
  std::fill(memo_arg, memo_arg + memo_count_, nan);
  return run(parameters, slots, memo_arg, memo_val);
}

double CompiledExpr::evaluate(std::span<const double> parameters,
                              Workspace& workspace) const {
  SAFEOPT_EXPECTS(parameters.size() == parameter_order_.size());
  bind(workspace);
  return run(parameters, workspace.slots.data(), workspace.memo_arg.data(),
             workspace.memo_val.data());
}

double CompiledExpr::evaluate(const ParameterAssignment& env) const {
  std::vector<double> parameters(parameter_order_.size());
  for (std::size_t i = 0; i < parameters.size(); ++i) {
    parameters[i] = env.get(parameter_order_[i]);
  }
  return evaluate(parameters);
}

void CompiledExpr::bind_lanes(LaneScratch& scratch, std::size_t lanes,
                              bool with_adjoint) const {
  static_assert(kMemoEntries == kMemoMask + 1);
  scratch.slab.assign(tape_.size() * lanes, 0.0);
  if (with_adjoint) scratch.adjoint.assign(tape_.size() * lanes, 0.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::size_t memo_size =
      static_cast<std::size_t>(memo_count_) * kMemoEntries;
  scratch.memo_arg.assign(memo_size, nan);
  scratch.memo_val.assign(memo_size, nan);
}

template <std::size_t L>
void CompiledExpr::run_lane_block(const double* points, std::size_t dim,
                                  double* out, LaneScratch& scratch) const {
  const Instruction* const tape = tape_.data();
  const std::size_t n = tape_.size();
  double* const slab = scratch.slab.data();
  // For kConst/kParam `a` is an immediate/parameter index, not a slot;
  // clamping keeps the (unused) operand pointers inside the slab so the
  // unconditional setup below is never out-of-bounds pointer arithmetic.
  const auto slot_of = [n](std::uint32_t s) {
    return std::min<std::size_t>(s, n - 1);
  };
  for (std::size_t i = 0; i < n; ++i) {
    const Instruction& ins = tape[i];
    double* const lane = slab + i * L;
    const double* const a = slab + slot_of(ins.a) * L;
    const double* const b = slab + slot_of(ins.b) * L;
    switch (ins.op) {
      case OpCode::kConst:
        for (std::size_t l = 0; l < L; ++l) lane[l] = ins.imm;
        break;
      case OpCode::kParam:
        for (std::size_t l = 0; l < L; ++l) lane[l] = points[l * dim + ins.a];
        break;
      case OpCode::kAdd:
        for (std::size_t l = 0; l < L; ++l) lane[l] = a[l] + b[l];
        break;
      case OpCode::kSub:
        for (std::size_t l = 0; l < L; ++l) lane[l] = a[l] - b[l];
        break;
      case OpCode::kMul:
        for (std::size_t l = 0; l < L; ++l) lane[l] = a[l] * b[l];
        break;
      case OpCode::kDiv:
        for (std::size_t l = 0; l < L; ++l) lane[l] = a[l] / b[l];
        break;
      case OpCode::kMin:
        for (std::size_t l = 0; l < L; ++l) lane[l] = std::min(a[l], b[l]);
        break;
      case OpCode::kMax:
        for (std::size_t l = 0; l < L; ++l) lane[l] = std::max(a[l], b[l]);
        break;
      case OpCode::kAddImm:
        for (std::size_t l = 0; l < L; ++l) lane[l] = a[l] + ins.imm;
        break;
      case OpCode::kSubImm:
        for (std::size_t l = 0; l < L; ++l) lane[l] = a[l] - ins.imm;
        break;
      case OpCode::kRsubImm:
        for (std::size_t l = 0; l < L; ++l) lane[l] = ins.imm - a[l];
        break;
      case OpCode::kMulImm:
        for (std::size_t l = 0; l < L; ++l) lane[l] = a[l] * ins.imm;
        break;
      case OpCode::kDivImm:
        for (std::size_t l = 0; l < L; ++l) lane[l] = a[l] / ins.imm;
        break;
      case OpCode::kRdivImm:
        for (std::size_t l = 0; l < L; ++l) lane[l] = ins.imm / a[l];
        break;
      case OpCode::kNeg:
        for (std::size_t l = 0; l < L; ++l) lane[l] = -a[l];
        break;
      case OpCode::kSqrt:
        for (std::size_t l = 0; l < L; ++l) lane[l] = std::sqrt(a[l]);
        break;
      case OpCode::kExp:
        map_lanes_uniform<L>(a, lane, [](double x) { return std::exp(x); });
        break;
      case OpCode::kLog:
        map_lanes_uniform<L>(a, lane, [](double x) { return std::log(x); });
        break;
      case OpCode::kPow:
        map_lanes_uniform<L>(a, lane, [imm = ins.imm](double x) {
          return std::pow(x, imm);
        });
        break;
      case OpCode::kCdf:
      case OpCode::kSurvival: {
        const stats::Distribution& dist = *distributions_[ins.b];
        const bool survival = ins.op == OpCode::kSurvival;
        double* const site_arg =
            scratch.memo_arg.data() +
            static_cast<std::size_t>(ins.c) * kMemoEntries;
        double* const site_val =
            scratch.memo_val.data() +
            static_cast<std::size_t>(ins.c) * kMemoEntries;
        for (std::size_t l = 0; l < L; ++l) {
          const double x = a[l];
          const std::size_t slot = memo_index(x);
          // A hit replays the bit-identical stored result of this exact
          // argument (NaN sentinels never compare equal, so cold slots and
          // NaN arguments always recompute).
          if (site_arg[slot] == x) {
            lane[l] = site_val[slot];
            continue;
          }
          const double v = survival ? dist.survival(x) : dist.cdf(x);
          site_arg[slot] = x;
          site_val[slot] = v;
          lane[l] = v;
        }
        break;
      }
      case OpCode::kCall: {
        // No uniform-lane broadcast here: opaque callbacks are assumed pure
        // for value purposes, but broadcasting would also change how often
        // they are *invoked* versus the scalar loop — keep the per-row call
        // pattern identical instead.
        const auto& fn =
            static_cast<const detail::FunctionNode*>(calls_[ins.b].get())
                ->fn();
        for (std::size_t l = 0; l < L; ++l) lane[l] = fn(a[l]);
        break;
      }
    }
  }
  const double* const root = slab + (n - 1) * L;
  for (std::size_t l = 0; l < L; ++l) out[l] = root[l];
}

void CompiledExpr::evaluate_batch(const BatchRequest& request) const {
  const std::size_t dim = parameter_order_.size();
  const std::size_t rows = request.values.size();
  const bool with_gradients = !request.gradients.empty();
  SAFEOPT_EXPECTS(request.points.size() == rows * dim);
  if (with_gradients) SAFEOPT_EXPECTS(request.gradients.size() == rows * dim);
  const EvalBackend& backend =
      request.backend != nullptr ? *request.backend : BackendRegistry::active();
  const std::size_t width = request.lane_width == 0
                                ? backend.default_lane_width()
                                : request.lane_width;
  SAFEOPT_EXPECTS(width == 1 || backend.supports_lane_width(width));

  if (request.pool != nullptr) {
    // Grain keeps per-task work above scheduling noise for tiny tapes and
    // leaves every chunk at least one full lane block. Chunks re-enter with
    // the resolved backend and width pinned, so the split only changes
    // which rows land in lane blocks versus the scalar tail — paths that
    // are bitwise-identical per row by contract.
    const std::size_t per_task = with_gradients ? 128 : 256;
    const std::size_t grain = std::max<std::size_t>(
        width, per_task / std::max<std::size_t>(1, tape_.size()));
    request.pool->parallel_for(
        rows,
        [&](std::size_t begin, std::size_t end) {
          const std::size_t count = end - begin;
          BatchRequest chunk;
          chunk.points = request.points.subspan(begin * dim, count * dim);
          chunk.values = request.values.subspan(begin, count);
          if (with_gradients) {
            chunk.gradients =
                request.gradients.subspan(begin * dim, count * dim);
          }
          chunk.lane_width = width;
          chunk.backend = &backend;
          evaluate_batch(chunk);
        },
        grain);
    return;
  }

  const std::size_t blocks = width > 1 ? rows / width : 0;
  if (blocks == 0 || width == 1) {
    // The scalar reference paths — also taken for sub-block batches
    // (finite-difference stencils, tiny populations) that would pay the
    // slab/memo setup without ever running a lane kernel. Values carry a
    // Workspace (the last-argument memo) across rows, exactly the pre-lane
    // batch loop; this is the oracle every backend is tested against.
    if (with_gradients) {
      for (std::size_t row = 0; row < rows; ++row) {
        request.values[row] =
            evaluate_with_gradient(request.points.subspan(row * dim, dim),
                                   request.gradients.subspan(row * dim, dim));
      }
      return;
    }
    Workspace workspace;
    bind(workspace);
    for (std::size_t row = 0; row < rows; ++row) {
      request.values[row] =
          run(request.points.subspan(row * dim, dim), workspace.slots.data(),
              workspace.memo_arg.data(), workspace.memo_val.data());
    }
    return;
  }

  LaneScratch scratch;
  bind_lanes(scratch, width, with_gradients);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const double* block_points = request.points.data() + blk * width * dim;
    double* block_values = request.values.data() + blk * width;
    if (with_gradients) {
      backend.run_block_with_gradients(
          *this, block_points, dim, width, block_values,
          request.gradients.data() + blk * width * dim, scratch);
    } else {
      backend.run_block(*this, block_points, dim, width, block_values,
                        scratch);
    }
  }
  // Scalar tail: the reference loop, bitwise-identical per row.
  for (std::size_t row = blocks * width; row < rows; ++row) {
    if (with_gradients) {
      request.values[row] =
          evaluate_with_gradient(request.points.subspan(row * dim, dim),
                                 request.gradients.subspan(row * dim, dim));
    } else {
      request.values[row] = evaluate(request.points.subspan(row * dim, dim));
    }
  }
}

void CompiledExpr::run_generic_block(const double* points, std::size_t dim,
                                     std::size_t width, double* out,
                                     LaneScratch& scratch) const {
  switch (width) {
    case 4: run_lane_block<4>(points, dim, out, scratch); break;
    case 8: run_lane_block<8>(points, dim, out, scratch); break;
    case 16: run_lane_block<16>(points, dim, out, scratch); break;
    default: SAFEOPT_EXPECTS(false);
  }
}

void CompiledExpr::run_generic_adjoint_block(std::size_t dim,
                                             std::size_t width,
                                             double* gradients,
                                             LaneScratch& scratch) const {
  switch (width) {
    case 4: run_lane_adjoint<4>(dim, gradients, scratch); break;
    case 8: run_lane_adjoint<8>(dim, gradients, scratch); break;
    case 16: run_lane_adjoint<16>(dim, gradients, scratch); break;
    default: SAFEOPT_EXPECTS(false);
  }
}

// Legacy wrappers, deprecated in the header: each re-describes the call as
// a BatchRequest. The lane_width overload pins the "generic" backend, whose
// width set {1, 4, 8, 16} predates the registry.
void CompiledExpr::evaluate_batch(std::span<const double> points,
                                  std::span<double> out) const {
  evaluate_batch(BatchRequest{.points = points, .values = out});
}

void CompiledExpr::evaluate_batch(std::span<const double> points,
                                  std::span<double> out,
                                  std::size_t lane_width) const {
  evaluate_batch(BatchRequest{.points = points,
                              .values = out,
                              .lane_width = lane_width,
                              .backend = &BackendRegistry::generic()});
}

void CompiledExpr::evaluate_batch(std::span<const double> points,
                                  std::span<double> out,
                                  ThreadPool& pool) const {
  evaluate_batch(BatchRequest{.points = points, .values = out, .pool = &pool});
}

void CompiledExpr::evaluate_batch_with_gradients(
    std::span<const double> points, std::span<double> values_out,
    std::span<double> gradients_out) const {
  evaluate_batch(BatchRequest{
      .points = points, .values = values_out, .gradients = gradients_out});
}

void CompiledExpr::evaluate_batch_with_gradients(
    std::span<const double> points, std::span<double> values_out,
    std::span<double> gradients_out, ThreadPool& pool) const {
  evaluate_batch(BatchRequest{.points = points,
                              .values = values_out,
                              .gradients = gradients_out,
                              .pool = &pool});
}

template <std::size_t L>
void CompiledExpr::run_lane_adjoint(std::size_t dim, double* gradients,
                                    LaneScratch& scratch) const {
  // Reverse sweep over a slab run_lane_block<L> (or an intrinsic backend's
  // forward kernel) already filled. It mirrors the scalar
  // evaluate_with_gradient() instruction-for-instruction, so each lane's
  // gradient is bitwise-identical to the per-point call; intrinsic
  // backends share this sweep and replace only the forward kernel.
  const Instruction* const tape = tape_.data();
  const std::size_t n = tape_.size();
  const double* const slab = scratch.slab.data();
  double* const adj = scratch.adjoint.data();
  std::fill(adj, adj + n * L, 0.0);
  std::fill(gradients, gradients + L * dim, 0.0);
  for (std::size_t l = 0; l < L; ++l) adj[(n - 1) * L + l] = 1.0;

  // Same clamp as the forward sweep: keeps the unconditionally-built
  // operand pointers in-bounds for kConst/kParam instructions.
  const auto slot_of = [n](std::uint32_t s) {
    return std::min<std::size_t>(s, n - 1);
  };
  for (std::size_t i = n; i-- > 0;) {
    const Instruction& ins = tape[i];
    const double* const w = adj + i * L;
    double* const aa = adj + slot_of(ins.a) * L;
    double* const ab = adj + slot_of(ins.b) * L;
    const double* const va = slab + slot_of(ins.a) * L;
    const double* const vb = slab + slot_of(ins.b) * L;
    const double* const vi = slab + i * L;
    switch (ins.op) {
      case OpCode::kConst:
        break;
      case OpCode::kParam:
        for (std::size_t l = 0; l < L; ++l) {
          gradients[l * dim + ins.a] += w[l];
        }
        break;
      case OpCode::kAdd:
        for (std::size_t l = 0; l < L; ++l) {
          aa[l] += w[l];
          ab[l] += w[l];
        }
        break;
      case OpCode::kSub:
        for (std::size_t l = 0; l < L; ++l) {
          aa[l] += w[l];
          ab[l] -= w[l];
        }
        break;
      case OpCode::kMul:
        for (std::size_t l = 0; l < L; ++l) {
          aa[l] += w[l] * vb[l];
          ab[l] += w[l] * va[l];
        }
        break;
      case OpCode::kDiv:
        for (std::size_t l = 0; l < L; ++l) {
          aa[l] += w[l] / vb[l];
          ab[l] -= w[l] * vi[l] / vb[l];
        }
        break;
      case OpCode::kMin:
        // Subgradient at ties: first argument, matching Dual's min/max.
        for (std::size_t l = 0; l < L; ++l) {
          (va[l] <= vb[l] ? aa : ab)[l] += w[l];
        }
        break;
      case OpCode::kMax:
        for (std::size_t l = 0; l < L; ++l) {
          (va[l] >= vb[l] ? aa : ab)[l] += w[l];
        }
        break;
      case OpCode::kAddImm:
      case OpCode::kSubImm:
        for (std::size_t l = 0; l < L; ++l) aa[l] += w[l];
        break;
      case OpCode::kRsubImm:
        for (std::size_t l = 0; l < L; ++l) aa[l] -= w[l];
        break;
      case OpCode::kMulImm:
        for (std::size_t l = 0; l < L; ++l) aa[l] += w[l] * ins.imm;
        break;
      case OpCode::kDivImm:
        for (std::size_t l = 0; l < L; ++l) aa[l] += w[l] / ins.imm;
        break;
      case OpCode::kRdivImm:
        // d(c/x)/dx = −c/x² = −(c/x)/x, reusing this slot's value.
        for (std::size_t l = 0; l < L; ++l) {
          aa[l] -= w[l] * vi[l] / va[l];
        }
        break;
      case OpCode::kNeg:
        for (std::size_t l = 0; l < L; ++l) aa[l] -= w[l];
        break;
      case OpCode::kExp:
        for (std::size_t l = 0; l < L; ++l) aa[l] += w[l] * vi[l];
        break;
      case OpCode::kLog:
        for (std::size_t l = 0; l < L; ++l) aa[l] += w[l] / va[l];
        break;
      case OpCode::kSqrt:
        for (std::size_t l = 0; l < L; ++l) aa[l] += w[l] * 0.5 / vi[l];
        break;
      case OpCode::kPow:
        for (std::size_t l = 0; l < L; ++l) {
          aa[l] += w[l] * ins.imm * std::pow(va[l], ins.imm - 1.0);
        }
        break;
      case OpCode::kCdf: {
        const stats::Distribution& dist = *distributions_[ins.b];
        for (std::size_t l = 0; l < L; ++l) {
          aa[l] += w[l] * dist.pdf(va[l]);
        }
        break;
      }
      case OpCode::kSurvival: {
        const stats::Distribution& dist = *distributions_[ins.b];
        for (std::size_t l = 0; l < L; ++l) {
          aa[l] -= w[l] * dist.pdf(va[l]);
        }
        break;
      }
      case OpCode::kCall: {
        const auto* call =
            static_cast<const detail::FunctionNode*>(calls_[ins.b].get());
        for (std::size_t l = 0; l < L; ++l) {
          aa[l] += w[l] * call->derivative_at(va[l]);
        }
        break;
      }
    }
  }
}

double CompiledExpr::run(std::span<const double> parameters, double* slots,
                         double* memo_arg, double* memo_val) const {
  const Instruction* const tape = tape_.data();
  const std::size_t n = tape_.size();
#if defined(__GNUC__) || defined(__clang__)
  // Direct-threaded dispatch: each handler jumps straight to the next
  // opcode's label, giving the branch predictor one indirect-jump site per
  // opcode instead of one shared switch. Label order must match OpCode.
  // Computed goto is a deliberate GNU extension (both compilers support
  // it); the pragma keeps -Wpedantic builds -Werror-clean.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
#if defined(__clang__)
#pragma GCC diagnostic ignored "-Wgnu-label-as-value"
#endif
  static const void* const kDispatch[] = {
      &&op_const,   &&op_param,   &&op_add,    &&op_sub,   &&op_mul,
      &&op_div,     &&op_min,     &&op_max,    &&op_addi,  &&op_subi,
      &&op_rsubi,   &&op_muli,    &&op_divi,   &&op_rdivi, &&op_neg,
      &&op_exp,     &&op_log,     &&op_sqrt,   &&op_pow,   &&op_cdf,
      &&op_survival, &&op_call,
  };
  std::size_t i = 0;
#define SAFEOPT_TAPE_NEXT()                                       \
  do {                                                            \
    if (++i == n) return slots[n - 1];                            \
    goto* kDispatch[static_cast<std::size_t>(tape[i].op)];        \
  } while (false)
  goto* kDispatch[static_cast<std::size_t>(tape[0].op)];
op_const:
  slots[i] = tape[i].imm;
  SAFEOPT_TAPE_NEXT();
op_param:
  slots[i] = parameters[tape[i].a];
  SAFEOPT_TAPE_NEXT();
op_add:
  slots[i] = slots[tape[i].a] + slots[tape[i].b];
  SAFEOPT_TAPE_NEXT();
op_sub:
  slots[i] = slots[tape[i].a] - slots[tape[i].b];
  SAFEOPT_TAPE_NEXT();
op_mul:
  slots[i] = slots[tape[i].a] * slots[tape[i].b];
  SAFEOPT_TAPE_NEXT();
op_div:
  slots[i] = slots[tape[i].a] / slots[tape[i].b];
  SAFEOPT_TAPE_NEXT();
op_min:
  slots[i] = std::min(slots[tape[i].a], slots[tape[i].b]);
  SAFEOPT_TAPE_NEXT();
op_max:
  slots[i] = std::max(slots[tape[i].a], slots[tape[i].b]);
  SAFEOPT_TAPE_NEXT();
op_addi:
  slots[i] = slots[tape[i].a] + tape[i].imm;
  SAFEOPT_TAPE_NEXT();
op_subi:
  slots[i] = slots[tape[i].a] - tape[i].imm;
  SAFEOPT_TAPE_NEXT();
op_rsubi:
  slots[i] = tape[i].imm - slots[tape[i].a];
  SAFEOPT_TAPE_NEXT();
op_muli:
  slots[i] = slots[tape[i].a] * tape[i].imm;
  SAFEOPT_TAPE_NEXT();
op_divi:
  slots[i] = slots[tape[i].a] / tape[i].imm;
  SAFEOPT_TAPE_NEXT();
op_rdivi:
  slots[i] = tape[i].imm / slots[tape[i].a];
  SAFEOPT_TAPE_NEXT();
op_neg:
  slots[i] = -slots[tape[i].a];
  SAFEOPT_TAPE_NEXT();
op_exp:
  slots[i] = std::exp(slots[tape[i].a]);
  SAFEOPT_TAPE_NEXT();
op_log:
  slots[i] = std::log(slots[tape[i].a]);
  SAFEOPT_TAPE_NEXT();
op_sqrt:
  slots[i] = std::sqrt(slots[tape[i].a]);
  SAFEOPT_TAPE_NEXT();
op_pow:
  slots[i] = std::pow(slots[tape[i].a], tape[i].imm);
  SAFEOPT_TAPE_NEXT();
op_cdf: {
  const double x = slots[tape[i].a];
  const std::uint32_t m = tape[i].c;
  // Last-argument memo: a hit replays the previous result bit-for-bit (the
  // cdf is a pure function of x), so caching cannot perturb values. NaN
  // sentinels never match (NaN != NaN), so a cold memo is just a miss.
  slots[i] = memo_arg[m] == x
                 ? memo_val[m]
                 : (memo_arg[m] = x,
                    memo_val[m] = distributions_[tape[i].b]->cdf(x));
  SAFEOPT_TAPE_NEXT();
}
op_survival: {
  const double x = slots[tape[i].a];
  const std::uint32_t m = tape[i].c;
  slots[i] = memo_arg[m] == x
                 ? memo_val[m]
                 : (memo_arg[m] = x,
                    memo_val[m] = distributions_[tape[i].b]->survival(x));
  SAFEOPT_TAPE_NEXT();
}
op_call:
  slots[i] = static_cast<const detail::FunctionNode*>(calls_[tape[i].b].get())
                 ->fn()(slots[tape[i].a]);
  SAFEOPT_TAPE_NEXT();
#undef SAFEOPT_TAPE_NEXT
#pragma GCC diagnostic pop
#else
  for (std::size_t i = 0; i < n; ++i) {
    const Instruction& ins = tape[i];
    double v = 0.0;
    switch (ins.op) {
      case OpCode::kConst: v = ins.imm; break;
      case OpCode::kParam: v = parameters[ins.a]; break;
      case OpCode::kAdd: v = slots[ins.a] + slots[ins.b]; break;
      case OpCode::kSub: v = slots[ins.a] - slots[ins.b]; break;
      case OpCode::kMul: v = slots[ins.a] * slots[ins.b]; break;
      case OpCode::kDiv: v = slots[ins.a] / slots[ins.b]; break;
      case OpCode::kMin: v = std::min(slots[ins.a], slots[ins.b]); break;
      case OpCode::kMax: v = std::max(slots[ins.a], slots[ins.b]); break;
      case OpCode::kAddImm: v = slots[ins.a] + ins.imm; break;
      case OpCode::kSubImm: v = slots[ins.a] - ins.imm; break;
      case OpCode::kRsubImm: v = ins.imm - slots[ins.a]; break;
      case OpCode::kMulImm: v = slots[ins.a] * ins.imm; break;
      case OpCode::kDivImm: v = slots[ins.a] / ins.imm; break;
      case OpCode::kRdivImm: v = ins.imm / slots[ins.a]; break;
      case OpCode::kNeg: v = -slots[ins.a]; break;
      case OpCode::kExp: v = std::exp(slots[ins.a]); break;
      case OpCode::kLog: v = std::log(slots[ins.a]); break;
      case OpCode::kSqrt: v = std::sqrt(slots[ins.a]); break;
      case OpCode::kPow: v = std::pow(slots[ins.a], ins.imm); break;
      case OpCode::kCdf: {
        const double x = slots[ins.a];
        v = memo_arg[ins.c] == x
                ? memo_val[ins.c]
                : (memo_arg[ins.c] = x,
                   memo_val[ins.c] = distributions_[ins.b]->cdf(x));
        break;
      }
      case OpCode::kSurvival: {
        const double x = slots[ins.a];
        v = memo_arg[ins.c] == x
                ? memo_val[ins.c]
                : (memo_arg[ins.c] = x,
                   memo_val[ins.c] = distributions_[ins.b]->survival(x));
        break;
      }
      case OpCode::kCall:
        v = static_cast<const detail::FunctionNode*>(calls_[ins.b].get())
                ->fn()(slots[ins.a]);
        break;
    }
    slots[i] = v;
  }
  return slots[n - 1];
#endif
}

double CompiledExpr::evaluate_with_gradient(
    std::span<const double> parameters, std::span<double> gradient_out) const {
  SAFEOPT_EXPECTS(parameters.size() == parameter_order_.size());
  SAFEOPT_EXPECTS(gradient_out.size() == parameter_order_.size());
  const std::size_t n = tape_.size();
  double* slots = scratch(t_slots, n);
  double* memo_arg = scratch(t_memo_arg, memo_count_);
  double* memo_val = scratch(t_memo_val, memo_count_);
  std::fill(memo_arg, memo_arg + memo_count_,
            std::numeric_limits<double>::quiet_NaN());
  const double value = run(parameters, slots, memo_arg, memo_val);

  double* adjoint = scratch(t_adjoint, n);
  std::fill(adjoint, adjoint + n, 0.0);
  std::fill(gradient_out.begin(), gradient_out.end(), 0.0);
  adjoint[n - 1] = 1.0;

  for (std::size_t i = n; i-- > 0;) {
    const Instruction& ins = tape_[i];
    const double w = adjoint[i];
    switch (ins.op) {
      case OpCode::kConst: break;
      case OpCode::kParam: gradient_out[ins.a] += w; break;
      case OpCode::kAdd:
        adjoint[ins.a] += w;
        adjoint[ins.b] += w;
        break;
      case OpCode::kSub:
        adjoint[ins.a] += w;
        adjoint[ins.b] -= w;
        break;
      case OpCode::kMul:
        adjoint[ins.a] += w * slots[ins.b];
        adjoint[ins.b] += w * slots[ins.a];
        break;
      case OpCode::kDiv:
        adjoint[ins.a] += w / slots[ins.b];
        adjoint[ins.b] -= w * slots[i] / slots[ins.b];
        break;
      case OpCode::kMin:
        // Subgradient at ties: first argument, matching Dual's min/max.
        adjoint[slots[ins.a] <= slots[ins.b] ? ins.a : ins.b] += w;
        break;
      case OpCode::kMax:
        adjoint[slots[ins.a] >= slots[ins.b] ? ins.a : ins.b] += w;
        break;
      case OpCode::kAddImm:
      case OpCode::kSubImm:
        adjoint[ins.a] += w;
        break;
      case OpCode::kRsubImm: adjoint[ins.a] -= w; break;
      case OpCode::kMulImm: adjoint[ins.a] += w * ins.imm; break;
      case OpCode::kDivImm: adjoint[ins.a] += w / ins.imm; break;
      case OpCode::kRdivImm:
        // d(c/x)/dx = −c/x² = −(c/x)/x, reusing this slot's value.
        adjoint[ins.a] -= w * slots[i] / slots[ins.a];
        break;
      case OpCode::kNeg: adjoint[ins.a] -= w; break;
      case OpCode::kExp: adjoint[ins.a] += w * slots[i]; break;
      case OpCode::kLog: adjoint[ins.a] += w / slots[ins.a]; break;
      case OpCode::kSqrt: adjoint[ins.a] += w * 0.5 / slots[i]; break;
      case OpCode::kPow:
        adjoint[ins.a] +=
            w * ins.imm * std::pow(slots[ins.a], ins.imm - 1.0);
        break;
      case OpCode::kCdf:
        adjoint[ins.a] += w * distributions_[ins.b]->pdf(slots[ins.a]);
        break;
      case OpCode::kSurvival:
        adjoint[ins.a] -= w * distributions_[ins.b]->pdf(slots[ins.a]);
        break;
      case OpCode::kCall:
        adjoint[ins.a] +=
            w *
            static_cast<const detail::FunctionNode*>(calls_[ins.b].get())
                ->derivative_at(slots[ins.a]);
        break;
    }
  }
  return value;
}

double CompiledExpr::apply_call(std::uint32_t index, double x) const {
  return static_cast<const detail::FunctionNode*>(calls_[index].get())->fn()(
      x);
}

double CompiledExpr::call_derivative_at(std::uint32_t index, double x) const {
  return static_cast<const detail::FunctionNode*>(calls_[index].get())
      ->derivative_at(x);
}

double CompiledExpr::apply_binary(OpCode op, double x, double y) {
  switch (op) {
    case OpCode::kAdd: return x + y;
    case OpCode::kSub: return x - y;
    case OpCode::kMul: return x * y;
    case OpCode::kDiv: return x / y;
    case OpCode::kMin: return std::min(x, y);
    case OpCode::kMax: return std::max(x, y);
    default: break;
  }
  SAFEOPT_ASSERT(false);
  return 0.0;
}

double CompiledExpr::apply_unary(OpCode op, double x, double imm) {
  switch (op) {
    case OpCode::kNeg: return -x;
    case OpCode::kExp: return std::exp(x);
    case OpCode::kLog: return std::log(x);
    case OpCode::kSqrt: return std::sqrt(x);
    case OpCode::kPow: return std::pow(x, imm);
    default: break;
  }
  SAFEOPT_ASSERT(false);
  return 0.0;
}

std::string CompiledExpr::disassemble() const {
  std::string out;
  for (std::size_t i = 0; i < tape_.size(); ++i) {
    const Instruction& ins = tape_[i];
    out += concat("%", std::to_string(i), " = ");
    const auto slot = [](std::uint32_t s) {
      return concat("%", std::to_string(s));
    };
    switch (ins.op) {
      case OpCode::kConst: out += concat("const ", format_double(ins.imm)); break;
      case OpCode::kParam:
        out += concat("param ", parameter_order_[ins.a]);
        break;
      case OpCode::kAdd: out += concat("add ", slot(ins.a), " ", slot(ins.b)); break;
      case OpCode::kSub: out += concat("sub ", slot(ins.a), " ", slot(ins.b)); break;
      case OpCode::kMul: out += concat("mul ", slot(ins.a), " ", slot(ins.b)); break;
      case OpCode::kDiv: out += concat("div ", slot(ins.a), " ", slot(ins.b)); break;
      case OpCode::kMin: out += concat("min ", slot(ins.a), " ", slot(ins.b)); break;
      case OpCode::kMax: out += concat("max ", slot(ins.a), " ", slot(ins.b)); break;
      case OpCode::kAddImm:
        out += concat("add ", slot(ins.a), " ", format_double(ins.imm));
        break;
      case OpCode::kSubImm:
        out += concat("sub ", slot(ins.a), " ", format_double(ins.imm));
        break;
      case OpCode::kRsubImm:
        out += concat("rsub ", format_double(ins.imm), " ", slot(ins.a));
        break;
      case OpCode::kMulImm:
        out += concat("mul ", slot(ins.a), " ", format_double(ins.imm));
        break;
      case OpCode::kDivImm:
        out += concat("div ", slot(ins.a), " ", format_double(ins.imm));
        break;
      case OpCode::kRdivImm:
        out += concat("rdiv ", format_double(ins.imm), " ", slot(ins.a));
        break;
      case OpCode::kNeg: out += concat("neg ", slot(ins.a)); break;
      case OpCode::kExp: out += concat("exp ", slot(ins.a)); break;
      case OpCode::kLog: out += concat("log ", slot(ins.a)); break;
      case OpCode::kSqrt: out += concat("sqrt ", slot(ins.a)); break;
      case OpCode::kPow:
        out += concat("pow ", slot(ins.a), " ", format_double(ins.imm));
        break;
      case OpCode::kCdf:
        out += concat("cdf[", distributions_[ins.b]->name(), "] ",
                      slot(ins.a));
        break;
      case OpCode::kSurvival:
        out += concat("survival[", distributions_[ins.b]->name(), "] ",
                      slot(ins.a));
        break;
      case OpCode::kCall:
        out += concat(
            static_cast<const detail::FunctionNode*>(calls_[ins.b].get())
                ->name(),
            " ", slot(ins.a));
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace safeopt::expr
