#include "safeopt/core/study.h"

#include <stdexcept>
#include <utility>

#include "safeopt/support/strings.h"

namespace safeopt::core {

Study::Study(CostModel model, ParameterSpace space)
    : optimizer_(std::move(model), std::move(space)) {}

Study& Study::solver(std::string name, opt::SolverConfig config) {
  solver_name_ = std::move(name);
  solver_config_ = std::move(config);
  return *this;
}

Study& Study::algorithm(Algorithm algorithm) {
  return solver(std::string(algorithm_registry_name(algorithm)),
                algorithm_solver_config(algorithm));
}

Study& Study::observe(opt::ProgressObserver observer) {
  observer_ = std::move(observer);
  return *this;
}

Study& Study::engine(std::string name, EngineConfig config) {
  engine_name_ = std::move(name);
  engine_config_ = config;
  // Engines are per-(tree, config); drop the ones built for the old choice.
  for (const TreeHazard& entry : tree_hazards_) entry.engine.reset();
  return *this;
}

Study& Study::hazard_tree(std::string hazard, const fta::FaultTree& tree,
                          const ParameterizedQuantification& quantification) {
  // Validate eagerly — the hazard must exist in the cost model so the
  // engine-quantified probability has an expression-path counterpart.
  (void)model().hazard_by_name(hazard);
  TreeHazard entry;
  entry.hazard = std::move(hazard);
  entry.tree = &tree;
  entry.quantification = &quantification;
  tree_hazards_.push_back(std::move(entry));
  return *this;
}

SafetyOptimizationResult Study::run() const {
  if (!observer_ || solver_config_.observer) {
    return optimizer_.optimize(solver_name_, solver_config_);
  }
  opt::SolverConfig config = solver_config_;
  config.observer = observer_;
  return optimizer_.optimize(solver_name_, config);
}

SafetyOptimizationResult Study::evaluate_at(
    const expr::ParameterAssignment& configuration) const {
  return optimizer_.evaluate_at(configuration);
}

ComparisonReport Study::compare(
    const expr::ParameterAssignment& baseline,
    const SafetyOptimizationResult& optimal) const {
  return optimizer_.compare(baseline, optimal);
}

QuantificationResult Study::quantify(
    std::string_view hazard, const expr::ParameterAssignment& at) const {
  for (const TreeHazard& entry : tree_hazards_) {
    if (entry.hazard != hazard) continue;
    if (!entry.compiled) {
      entry.compiled =
          std::make_unique<CompiledQuantification>(*entry.quantification);
    }
    if (!entry.engine) {
      entry.engine =
          EngineRegistry::create(engine_name_, *entry.tree, engine_config_);
    }
    return entry.engine->quantify(entry.compiled->input_at(at));
  }
  throw std::invalid_argument(
      concat("no fault tree attached for hazard \"", hazard,
             "\"; call Study::hazard_tree first"));
}

}  // namespace safeopt::core
