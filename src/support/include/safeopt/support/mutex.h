// safeopt::Mutex / MutexLock — the repo's one blessed mutex. A thin wrapper
// over std::mutex carrying the clang thread-safety capability annotations
// (thread_annotations.h), so every GUARDED_BY / REQUIRES declaration in the
// tree is enforced by the CI `-Wthread-safety -Werror` leg instead of by
// review. Raw std::mutex / std::lock_guard / std::unique_lock in src/ are
// banned by safeopt-lint (rule raw-mutex); this header is the allow-listed
// exception because the wrapper has to bottom out somewhere.
//
// Condition variables stay std::condition_variable: MutexLock::wait()
// releases and reacquires the underlying mutex through the wrapped
// unique_lock. Analysis-wise the capability is treated as held across the
// wait (the standard treatment), so call sites must re-check their
// predicate in an explicit `while (!pred) lock.wait(cv);` loop — never the
// predicate-lambda overload, which clang would analyze as a separate
// function that does not hold the capability.
#ifndef SAFEOPT_SUPPORT_MUTEX_H
#define SAFEOPT_SUPPORT_MUTEX_H

#include <condition_variable>
#include <mutex>  // safeopt-lint: allow-file(raw-mutex)

#include "safeopt/support/thread_annotations.h"

namespace safeopt {

/// Annotated exclusive mutex. Satisfies BasicLockable, so it also works
/// with standard generic code, but prefer MutexLock for scoped holds —
/// the analysis understands it.
class SAFEOPT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SAFEOPT_ACQUIRE() { mutex_.lock(); }
  void unlock() SAFEOPT_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() SAFEOPT_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  friend class MutexLock;
  std::mutex mutex_;
};

/// RAII scoped hold of a Mutex; the capability is acquired for the
/// object's lifetime. Also the door to condition-variable waits.
class SAFEOPT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SAFEOPT_ACQUIRE(mutex)
      : lock_(mutex.mutex_) {}
  ~MutexLock() SAFEOPT_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Blocks on `cv` until notified; the mutex is released while waiting
  /// and reacquired before returning. The capability is considered held
  /// throughout, so guard the call with an explicit predicate loop:
  ///   while (!done_) lock.wait(cv_);
  void wait(std::condition_variable& cv) const { cv.wait(lock_); }

 private:
  mutable std::unique_lock<std::mutex> lock_;
};

}  // namespace safeopt

#endif  // SAFEOPT_SUPPORT_MUTEX_H
