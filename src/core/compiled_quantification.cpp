#include "safeopt/core/compiled_quantification.h"

#include <algorithm>
#include <set>
#include <utility>

#include "safeopt/support/contracts.h"
#include "safeopt/support/thread_pool.h"

namespace safeopt::core {

namespace {

/// Alphabetical union of every leaf/condition expression's parameters — the
/// slot order the convenience constructor uses. The hazard and Birnbaum
/// expressions are assembled from these leaves, so the union covers them.
std::vector<std::string> default_order(
    const ParameterizedQuantification& quantification) {
  std::set<std::string> names;
  const fta::FaultTree& tree = quantification.tree();
  for (std::size_t e = 0; e < tree.basic_event_count(); ++e) {
    const std::set<std::string> mentioned =
        quantification.event_probability(static_cast<fta::BasicEventOrdinal>(e))
            .parameters();
    names.insert(mentioned.begin(), mentioned.end());
  }
  for (std::size_t c = 0; c < tree.condition_count(); ++c) {
    const std::set<std::string> mentioned =
        quantification
            .condition_probability(static_cast<fta::ConditionOrdinal>(c))
            .parameters();
    names.insert(mentioned.begin(), mentioned.end());
  }
  return {names.begin(), names.end()};
}

}  // namespace

CompiledQuantification::CompiledQuantification(
    const ParameterizedQuantification& quantification,
    const fta::CutSetCollection& mcs,
    std::vector<std::string> parameter_order, HazardFormula formula)
    : parameter_order_(std::move(parameter_order)),
      formula_(formula),
      hazard_(expr::CompiledExpr::compile(
          quantification.hazard_expression(mcs, formula), parameter_order_)) {
  const fta::FaultTree& tree = quantification.tree();
  birnbaum_.reserve(tree.basic_event_count());
  events_.reserve(tree.basic_event_count());
  for (std::size_t e = 0; e < tree.basic_event_count(); ++e) {
    const auto ordinal = static_cast<fta::BasicEventOrdinal>(e);
    birnbaum_.push_back(expr::CompiledExpr::compile(
        quantification.birnbaum_expression(mcs, ordinal, formula),
        parameter_order_));
    events_.push_back(expr::CompiledExpr::compile(
        quantification.event_probability(ordinal), parameter_order_));
  }
  conditions_.reserve(tree.condition_count());
  for (std::size_t c = 0; c < tree.condition_count(); ++c) {
    conditions_.push_back(expr::CompiledExpr::compile(
        quantification.condition_probability(
            static_cast<fta::ConditionOrdinal>(c)),
        parameter_order_));
  }
}

CompiledQuantification::CompiledQuantification(
    const ParameterizedQuantification& quantification, HazardFormula formula)
    : CompiledQuantification(quantification,
                             fta::minimal_cut_sets(quantification.tree()),
                             default_order(quantification), formula) {}

double CompiledQuantification::hazard(
    std::span<const double> parameters) const {
  return hazard_.evaluate(parameters);
}

void CompiledQuantification::hazard_batch(std::span<const double> points,
                                          std::span<double> out) const {
  hazard_.evaluate_batch({.points = points, .values = out,
                          .backend = backend_});
}

void CompiledQuantification::hazard_batch(std::span<const double> points,
                                          std::span<double> out,
                                          ThreadPool& pool) const {
  hazard_.evaluate_batch({.points = points, .values = out, .pool = &pool,
                          .backend = backend_});
}

void CompiledQuantification::hazard_batch_with_gradients(
    std::span<const double> points, std::span<double> values_out,
    std::span<double> gradients_out) const {
  hazard_.evaluate_batch({.points = points, .values = values_out,
                          .gradients = gradients_out, .backend = backend_});
}

double CompiledQuantification::birnbaum(
    fta::BasicEventOrdinal event, std::span<const double> parameters) const {
  return birnbaum_tape(event).evaluate(parameters);
}

void CompiledQuantification::birnbaum_batch(fta::BasicEventOrdinal event,
                                            std::span<const double> points,
                                            std::span<double> out) const {
  birnbaum_tape(event).evaluate_batch(
      {.points = points, .values = out, .backend = backend_});
}

const expr::CompiledExpr& CompiledQuantification::birnbaum_tape(
    fta::BasicEventOrdinal event) const {
  SAFEOPT_EXPECTS(event < birnbaum_.size());
  return birnbaum_[event];
}

fta::QuantificationInput CompiledQuantification::input_at(
    std::span<const double> parameters) const {
  fta::QuantificationInput input;
  input.basic_event_probability.reserve(events_.size());
  for (const expr::CompiledExpr& tape : events_) {
    input.basic_event_probability.push_back(
        std::clamp(tape.evaluate(parameters), 0.0, 1.0));
  }
  input.condition_probability.reserve(conditions_.size());
  for (const expr::CompiledExpr& tape : conditions_) {
    input.condition_probability.push_back(
        std::clamp(tape.evaluate(parameters), 0.0, 1.0));
  }
  return input;
}

fta::QuantificationInput CompiledQuantification::input_at(
    const expr::ParameterAssignment& at) const {
  std::vector<double> parameters(parameter_order_.size());
  for (std::size_t i = 0; i < parameters.size(); ++i) {
    parameters[i] = at.get(parameter_order_[i]);
  }
  return input_at(parameters);
}

}  // namespace safeopt::core
