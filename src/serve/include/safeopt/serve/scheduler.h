// AdmissionScheduler — maps service requests onto a support::ThreadPool
// with per-tenant weighted fair queuing and bounded-queue load shedding.
//
// Fairness is start-time fair queuing (SFQ): each accepted job gets a
// virtual finish tag F = max(v, tenant's last F) + cost/weight (cost = 1
// per request), and dispatch always picks the backlogged tenant with the
// smallest head tag. Over any backlogged interval, tenant throughput
// converges to the weight ratio regardless of arrival order — one chatty
// tenant cannot starve the rest.
//
// Admission is bounded per tenant: a tenant whose queue is full has its
// request shed *synchronously* with Error(kResourceExhausted) (the PR 7
// taxonomy; the HTTP layer maps it to 429). Shedding at admission keeps
// the failure cheap — no thread, no parse, no artifact work.
//
// `start_paused` + resume() exist for deterministic tests and benches:
// enqueue a whole scenario, then release it against a known backlog.
#ifndef SAFEOPT_SERVE_SCHEDULER_H
#define SAFEOPT_SERVE_SCHEDULER_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "safeopt/support/mutex.h"
#include "safeopt/support/thread_annotations.h"
#include "safeopt/support/thread_pool.h"

namespace safeopt::serve {

struct SchedulerOptions {
  /// Worker pool the jobs run on. Not owned; must outlive the scheduler.
  ThreadPool* pool = nullptr;
  /// Queued-jobs cap per tenant; admission beyond it sheds with
  /// Error(kResourceExhausted).
  std::size_t max_queue_per_tenant = 64;
  /// Jobs running at once; 0 = the pool's concurrency.
  std::size_t max_concurrent = 0;
  /// Tenant name → weight (default weight 1 for unlisted tenants).
  std::vector<std::pair<std::string, double>> tenant_weights;
  /// Cap on distinct tracked tenants. Tenant names come from the client
  /// (X-Tenant header / body field), so the map must not grow without
  /// bound: once the cap is reached, jobs for names not already tracked
  /// share one overflow bucket (kOverflowTenant, weight 1). Operator-listed
  /// `tenant_weights` are always tracked, even beyond the cap.
  std::size_t max_tenants = 64;
  /// When true, accepted jobs queue but do not dispatch until resume().
  bool start_paused = false;
};

/// The shared bucket unknown tenant names fold into once `max_tenants`
/// distinct names are tracked ("~" keeps it out of the plausible-name
/// space and sorts it last in stats output).
inline constexpr std::string_view kOverflowTenant = "~other";

struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  double weight = 1.0;
};

struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::size_t queued = 0;
  std::size_t running = 0;
  std::map<std::string, TenantStats> tenants;
};

class AdmissionScheduler {
 public:
  using Job = std::function<void()>;

  explicit AdmissionScheduler(SchedulerOptions options);
  ~AdmissionScheduler();

  AdmissionScheduler(const AdmissionScheduler&) = delete;
  AdmissionScheduler& operator=(const AdmissionScheduler&) = delete;

  /// Admits `job` for `tenant` or throws Error(kResourceExhausted) when the
  /// tenant's queue is full. The job runs on the pool; its exceptions are
  /// swallowed (jobs are HTTP handlers that report their own failures).
  void submit(const std::string& tenant, Job job);

  /// Releases a paused scheduler (idempotent).
  void resume();

  /// Blocks until every admitted job has completed. Call resume() first on
  /// a paused scheduler, or drain() waits forever.
  void drain();

  [[nodiscard]] SchedulerStats stats() const;

 private:
  struct Entry {
    double start_tag = 0.0;
    double finish_tag = 0.0;
    Job job;
  };
  struct Tenant {
    std::deque<Entry> queue;
    double last_finish = 0.0;
    double weight = 1.0;
    TenantStats stats;
  };

  /// Dispatches queued entries while a worker slot is free; caller holds
  /// mutex_ (enforced by the annotation rather than a lock parameter).
  void pump_locked() SAFEOPT_REQUIRES(mutex_);

  const SchedulerOptions options_;
  const std::size_t max_concurrent_;
  mutable Mutex mutex_;
  std::condition_variable idle_cv_;
  std::map<std::string, Tenant> tenants_ SAFEOPT_GUARDED_BY(mutex_);
  double virtual_time_ SAFEOPT_GUARDED_BY(mutex_) = 0.0;
  std::size_t queued_ SAFEOPT_GUARDED_BY(mutex_) = 0;
  std::size_t running_ SAFEOPT_GUARDED_BY(mutex_) = 0;
  std::uint64_t submitted_ SAFEOPT_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ SAFEOPT_GUARDED_BY(mutex_) = 0;
  std::uint64_t shed_ SAFEOPT_GUARDED_BY(mutex_) = 0;
  bool paused_ SAFEOPT_GUARDED_BY(mutex_) = false;
  bool stopping_ SAFEOPT_GUARDED_BY(mutex_) = false;
};

}  // namespace safeopt::serve

#endif  // SAFEOPT_SERVE_SCHEDULER_H
