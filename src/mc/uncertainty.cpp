#include "safeopt/mc/uncertainty.h"

#include <algorithm>
#include <cmath>

#include "safeopt/stats/special_functions.h"
#include "safeopt/support/contracts.h"

namespace safeopt::mc {

UncertainQuantification::UncertainQuantification(
    const fta::FaultTree& tree, fta::QuantificationInput point_estimates)
    : tree_(tree),
      point_(std::move(point_estimates)),
      event_dists_(tree.basic_event_count()),
      condition_dists_(tree.condition_count()) {
  SAFEOPT_EXPECTS(point_.is_valid_for(tree));
}

void UncertainQuantification::set_uncertainty(
    std::string_view name, std::shared_ptr<const stats::Distribution> dist) {
  SAFEOPT_EXPECTS(dist != nullptr);
  const auto id = tree_.find(name);
  SAFEOPT_EXPECTS(id.has_value());
  switch (tree_.kind(*id)) {
    case fta::NodeKind::kBasicEvent:
      event_dists_[tree_.basic_event_ordinal(*id)] = std::move(dist);
      break;
    case fta::NodeKind::kCondition:
      condition_dists_[tree_.condition_ordinal(*id)] = std::move(dist);
      break;
    case fta::NodeKind::kGate:
      SAFEOPT_EXPECTS(false && "gates carry no probability");
  }
}

void UncertainQuantification::set_lognormal_error_factor(std::string_view name,
                                                         double median,
                                                         double error_factor) {
  SAFEOPT_EXPECTS(median > 0.0 && median < 1.0);
  SAFEOPT_EXPECTS(error_factor > 1.0);
  // LogNormal(µ = ln median, σ = ln EF / z95): the 95th percentile is then
  // median · EF, the Fault Tree Handbook convention.
  const double z95 = stats::normal_quantile(0.95);
  set_uncertainty(name, std::make_shared<stats::LogNormal>(
                            std::log(median), std::log(error_factor) / z95));
}

fta::QuantificationInput UncertainQuantification::sample(Rng& rng) const {
  fta::QuantificationInput input = point_;
  for (std::size_t i = 0; i < event_dists_.size(); ++i) {
    if (event_dists_[i] != nullptr) {
      input.basic_event_probability[i] =
          std::clamp(event_dists_[i]->sample(rng), 0.0, 1.0);
    }
  }
  for (std::size_t i = 0; i < condition_dists_.size(); ++i) {
    if (condition_dists_[i] != nullptr) {
      input.condition_probability[i] =
          std::clamp(condition_dists_[i]->sample(rng), 0.0, 1.0);
    }
  }
  return input;
}

UncertaintyResult propagate_uncertainty(
    const UncertainQuantification& quantification,
    const fta::CutSetCollection& mcs, std::size_t samples, std::uint64_t seed,
    fta::ProbabilityMethod method) {
  SAFEOPT_EXPECTS(samples >= 100);
  Rng rng(seed);
  std::vector<double> tops;
  tops.reserve(samples);
  double sum = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const fta::QuantificationInput input = quantification.sample(rng);
    const double p = fta::top_event_probability(mcs, input, method);
    tops.push_back(p);
    sum += p;
  }
  std::sort(tops.begin(), tops.end());
  const auto at_quantile = [&](double q) {
    const auto index = static_cast<std::size_t>(
        q * static_cast<double>(samples - 1) + 0.5);
    return tops[std::min(index, samples - 1)];
  };

  UncertaintyResult result;
  result.samples = samples;
  result.mean = sum / static_cast<double>(samples);
  result.median = at_quantile(0.5);
  result.p05 = at_quantile(0.05);
  result.p95 = at_quantile(0.95);
  result.point_estimate = fta::top_event_probability(
      mcs, quantification.point_estimates(), method);
  return result;
}

}  // namespace safeopt::mc
