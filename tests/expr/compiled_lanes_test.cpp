// Property tests for the lane-blocked SoA batch kernel: the lane-invariance
// contract (evaluate_batch results are bitwise-identical across lane widths,
// batch sizes, and thread counts) and the lane-batched reverse-mode
// gradients (bitwise-equal to the per-point adjoint sweep, equal to the
// forward-mode dual up to reassociation) on random expression DAGs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "safeopt/expr/compiled.h"
#include "safeopt/expr/eval_backend.h"
#include "safeopt/expr/expr.h"
#include "safeopt/stats/distribution.h"
#include "safeopt/support/rng.h"
#include "safeopt/support/thread_pool.h"
#include "testutil/random_expr.h"

namespace safeopt::expr {
namespace {

std::vector<double> random_points(Rng& rng, std::size_t rows,
                                  std::size_t dim) {
  std::vector<double> points(rows * dim);
  for (double& v : points) v = uniform(rng, 0.25, 4.0);
  return points;
}

TEST(CompiledLanesTest, LaneWidthsProduceIdenticalResultsOnRandomDags) {
  const std::vector<std::string> params = {"a", "b", "c"};
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(seed * 6151 + 11);
    const Expr e = testutil::random_expr(rng, params, 5);
    const CompiledExpr compiled = CompiledExpr::compile(e, params);
    // Batch sizes straddling the lane widths: empty tails, partial tails,
    // single-block and multi-block batches.
    for (const std::size_t rows : {1u, 3u, 4u, 7u, 8u, 9u, 32u, 137u}) {
      const std::vector<double> points =
          random_points(rng, rows, params.size());
      std::vector<double> scalar(rows);
      for (std::size_t r = 0; r < rows; ++r) {
        scalar[r] = compiled.evaluate(
            std::span<const double>(points).subspan(r * params.size(),
                                                    params.size()));
      }
      for (const std::size_t width : {1u, 4u, 8u, 16u}) {
        std::vector<double> batch(rows);
        compiled.evaluate_batch({.points = points, .values = batch,
                                 .lane_width = width,
                                 .backend = &BackendRegistry::generic()});
        EXPECT_EQ(scalar, batch)
            << "seed " << seed << " rows " << rows << " width " << width;
      }
      // Default width under runtime dispatch: whichever backend the
      // registry picks must reproduce the scalar oracle bit for bit.
      std::vector<double> default_width(rows);
      compiled.evaluate_batch({.points = points, .values = default_width});
      EXPECT_EQ(scalar, default_width) << "seed " << seed << " rows " << rows;
    }
  }
}

TEST(CompiledLanesTest, SplitBatchesEqualOneBatch) {
  const std::vector<std::string> params = {"a", "b"};
  Rng rng(1234);
  const Expr e = testutil::random_expr(rng, params, 6);
  const CompiledExpr compiled = CompiledExpr::compile(e, params);
  const std::size_t rows = 100;
  const std::vector<double> points = random_points(rng, rows, 2);

  std::vector<double> whole(rows);
  compiled.evaluate_batch({.points = points, .values = whole});
  // Evaluate the same rows as several sub-batches with misaligned splits:
  // each row's value may not depend on where block boundaries fall.
  for (const std::size_t split : {1u, 5u, 8u, 13u, 99u}) {
    std::vector<double> pieces(rows);
    for (std::size_t begin = 0; begin < rows; begin += split) {
      const std::size_t count = std::min(split, rows - begin);
      compiled.evaluate_batch(
          {.points =
               std::span<const double>(points).subspan(begin * 2, count * 2),
           .values = std::span<double>(pieces).subspan(begin, count)});
    }
    EXPECT_EQ(whole, pieces) << "split " << split;
  }
}

TEST(CompiledLanesTest, LaneKernelIndependentOfThreadCount) {
  const std::vector<std::string> params = {"a", "b", "c"};
  Rng rng(77);
  const Expr e = testutil::random_expr(rng, params, 6);
  const CompiledExpr compiled = CompiledExpr::compile(e, params);
  const std::size_t rows = 1000;
  const std::vector<double> points = random_points(rng, rows, 3);

  std::vector<double> serial(rows);
  compiled.evaluate_batch({.points = points, .values = serial});
  for (const std::size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    std::vector<double> parallel(rows);
    compiled.evaluate_batch(
        {.points = points, .values = parallel, .pool = &pool});
    EXPECT_EQ(serial, parallel) << threads << " threads";
  }
}

TEST(CompiledLanesTest, GridShapedBatchesHitTheArgumentMemoSafely) {
  // Grid workloads revisit distribution arguments row after row — exactly
  // the access pattern the lane kernel's direct-mapped memo serves. Every
  // replayed value must still equal a cold scalar evaluation bit for bit.
  const auto dist = std::make_shared<stats::TruncatedNormal>(
      4.0, 2.0, 0.0, std::numeric_limits<double>::infinity());
  const Expr e = survival(dist, parameter("x")) *
                     survival(dist, parameter("y")) +
                 exp(parameter("y") * -0.13);
  const CompiledExpr compiled = CompiledExpr::compile(e, {"x", "y"});

  const std::size_t nx = 37;
  const std::size_t ny = 11;
  std::vector<double> points(nx * ny * 2);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      points[2 * (j * nx + i)] = 15.0 + 0.1 * static_cast<double>(i);
      points[2 * (j * nx + i) + 1] = 15.0 + 0.3 * static_cast<double>(j);
    }
  }
  std::vector<double> batch(nx * ny);
  compiled.evaluate_batch({.points = points, .values = batch});
  for (std::size_t r = 0; r < batch.size(); ++r) {
    EXPECT_EQ(batch[r], compiled.evaluate(std::span<const double>(
                            &points[2 * r], 2)))
        << "row " << r;
  }
}

TEST(CompiledLanesTest, BatchGradientsMatchPerPointReverseSweep) {
  const std::vector<std::string> params = {"a", "b", "c"};
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(seed * 24593 + 7);
    const Expr e = testutil::random_expr(rng, params, 5);
    const CompiledExpr compiled = CompiledExpr::compile(e, params);
    for (const std::size_t rows : {1u, 7u, 8u, 9u, 40u}) {
      const std::vector<double> points = random_points(rng, rows, 3);
      std::vector<double> values(rows);
      std::vector<double> gradients(rows * 3);
      compiled.evaluate_batch(
          {.points = points, .values = values, .gradients = gradients});

      for (std::size_t r = 0; r < rows; ++r) {
        std::vector<double> grad(3);
        const double value = compiled.evaluate_with_gradient(
            std::span<const double>(points).subspan(r * 3, 3), grad);
        EXPECT_EQ(values[r], value) << "seed " << seed << " row " << r;
        for (std::size_t i = 0; i < 3; ++i) {
          EXPECT_EQ(gradients[r * 3 + i], grad[i])
              << "seed " << seed << " row " << r << " d/d" << params[i];
        }
      }
    }
  }
}

TEST(CompiledLanesTest, BatchGradientsAgreeWithForwardDual) {
  const std::vector<std::string> params = {"a", "b", "c"};
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed * 49157 + 3);
    const Expr e = testutil::random_expr(rng, params, 5);
    const CompiledExpr compiled = CompiledExpr::compile(e, params);
    const std::size_t rows = 9;  // one lane block plus a scalar tail
    const std::vector<double> points = random_points(rng, rows, 3);
    std::vector<double> values(rows);
    std::vector<double> gradients(rows * 3);
    compiled.evaluate_batch(
        {.points = points, .values = values, .gradients = gradients});

    for (std::size_t r = 0; r < rows; ++r) {
      ParameterAssignment env;
      for (std::size_t i = 0; i < 3; ++i) env.set(params[i], points[r * 3 + i]);
      const Dual dual = e.evaluate_dual(env, params);
      EXPECT_EQ(values[r], e.evaluate(env)) << "seed " << seed;
      for (std::size_t i = 0; i < 3; ++i) {
        const double scale = std::max(1.0, std::abs(dual.grad(i)));
        EXPECT_NEAR(gradients[r * 3 + i], dual.grad(i), 1e-9 * scale)
            << "seed " << seed << " row " << r << " d/d" << params[i];
      }
    }
  }
}

TEST(CompiledLanesTest, BatchGradientsIndependentOfThreadCount) {
  const std::vector<std::string> params = {"a", "b"};
  Rng rng(31);
  const Expr e = testutil::random_expr(rng, params, 6);
  const CompiledExpr compiled = CompiledExpr::compile(e, params);
  const std::size_t rows = 500;
  const std::vector<double> points = random_points(rng, rows, 2);

  std::vector<double> values(rows);
  std::vector<double> gradients(rows * 2);
  compiled.evaluate_batch(
      {.points = points, .values = values, .gradients = gradients});
  for (const std::size_t threads : {1u, 3u}) {
    ThreadPool pool(threads);
    std::vector<double> pvalues(rows);
    std::vector<double> pgradients(rows * 2);
    compiled.evaluate_batch({.points = points, .values = pvalues,
                             .gradients = pgradients, .pool = &pool});
    EXPECT_EQ(values, pvalues) << threads << " threads";
    EXPECT_EQ(gradients, pgradients) << threads << " threads";
  }
}

TEST(CompiledLanesTest, ExtraUnusedParametersKeepLaneKernelInBounds) {
  // kParam slot indices can exceed the tape size when the slot order carries
  // unused names; the kernel must handle a one-instruction tape with a
  // large parameter index (regression guard for the operand-pointer clamp).
  const Expr e = parameter("z");
  const CompiledExpr compiled =
      CompiledExpr::compile(e, {"p0", "p1", "p2", "p3", "p4", "z"});
  const std::size_t rows = 16;
  std::vector<double> points(rows * 6);
  Rng rng(5);
  for (double& v : points) v = uniform(rng, -2.0, 2.0);
  std::vector<double> out(rows);
  compiled.evaluate_batch({.points = points, .values = out});
  std::vector<double> values(rows);
  std::vector<double> gradients(rows * 6);
  compiled.evaluate_batch(
      {.points = points, .values = values, .gradients = gradients});
  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_EQ(out[r], points[r * 6 + 5]);
    EXPECT_EQ(values[r], points[r * 6 + 5]);
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_EQ(gradients[r * 6 + i], i == 5 ? 1.0 : 0.0);
    }
  }
}

}  // namespace
}  // namespace safeopt::expr
