#!/usr/bin/env python3
"""safeopt-lint — fast project-invariant linter for the safeopt tree.

The rules encode repo invariants that are cheaper to enforce here than to
rediscover in review (docs/static_analysis.md has the full rationale):

  string-concat-plus   `operator+` on a string literal (the gcc PR105651
                       -Wrestrict idiom). Use safeopt::concat from
                       safeopt/support/strings.h.
  error-taxonomy       `throw std::runtime_error` / `throw std::logic_error`
                       in src/. Throw safeopt::Error with a category from
                       the PR 7 taxonomy (or std::invalid_argument for
                       precondition violations) instead.
  raw-mutex            std::mutex / lock_guard / unique_lock / scoped_lock /
                       shared_mutex outside the annotated wrapper
                       (safeopt/support/mutex.h). Use safeopt::Mutex /
                       MutexLock so the clang -Wthread-safety CI leg sees
                       the lock discipline.
  unseeded-rng         rand() / srand() / std::random_device. All safeopt
                       randomness flows through explicitly seeded xoshiro
                       streams (safeopt/support/rng.h) so every trajectory
                       is reproducible.
  checkpoint-poll      A file the robustness docs declare checkpointed
                       (long-running engine loops) no longer polls its
                       ExecutionControl. The declared file list lives in
                       CHECKPOINTED_FILES below; files can also self-declare
                       with a `safeopt-lint: checkpointed` comment.
  cpu-detect           __builtin_cpu_supports / __get_cpuid outside the one
                       detection TU (src/expr/cpu_features.cpp). Scattered
                       CPUID probes drift out of sync with the backend
                       registry's availability policy; ask
                       safeopt::expr::cpu_features() instead.

Suppression pragmas (always in a comment, rule name exact):
  // safeopt-lint: allow(<rule>)         this line or the next line
  // safeopt-lint: allow-file(<rule>)    whole file

Usage:
  safeopt_lint.py [--root DIR] PATH...     lint files/directories
  safeopt_lint.py --self-test FIXTURES     run the fixture corpus
  safeopt_lint.py --list-rules
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".cpp", ".cc", ".cxx", ".h", ".hpp"}

# Files allowed to touch the raw std primitives: the wrapper itself has to
# bottom out on std::mutex, and the annotation header names the attributes.
RAW_MUTEX_ALLOWED = {
    "src/support/include/safeopt/support/mutex.h",
}

# Files whose long-running loops the robustness contract declares
# cooperatively interruptible (docs/robustness.md): each must poll an
# ExecutionControl at least once or the abort paths silently rot.
CHECKPOINTED_FILES = {
    "src/bdd/bdd.cpp",
    "src/prep/preprocess.cpp",
    "src/mc/adaptive_monte_carlo.cpp",
    "src/opt/solver.cpp",
    "src/opt/multi_start.cpp",
    "src/serve/analysis_graph.cpp",
}

# The single TU allowed to probe the CPU: every other module asks the cached
# safeopt::expr::cpu_features() so availability decisions have one source.
CPU_DETECT_ALLOWED = {
    "src/expr/cpu_features.cpp",
}

CHECKPOINT_POLL = re.compile(
    r"\.check\(|->check\(|should_abort\(|->status\(|\.status\(")

PRAGMA = re.compile(r"safeopt-lint:\s*(allow|allow-file|checkpointed)"
                    r"(?:\(([A-Za-z0-9_-]+)\))?")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text: str):
    """Blanks comments and literal bodies, preserving line structure.

    Returns (code_lines, raw_lines). Comments become spaces; string and
    char literal *contents* become spaces but keep their quotes, so a
    quote adjacent to an operator is still visible to the rules while a
    `+` inside a literal is not.
    """
    raw_lines = text.splitlines()
    out = []
    i = 0
    n = len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW_STRING = range(6)
    state = NORMAL
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                end = text.find("(", i + 2)
                if end != -1:
                    raw_delim = ")" + text[i + 2:end] + '"'
                    state = RAW_STRING
                    out.append('R"')
                    out.append(" " * (end - i - 1))
                    i = end + 1
                    continue
            if c == '"':
                state = STRING
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = CHAR
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == STRING:
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = NORMAL
                out.append('"')
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == CHAR:
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = NORMAL
                out.append("'")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == RAW_STRING:
            if text.startswith(raw_delim, i):
                state = NORMAL
                out.append('"')
                out.append(" " * (len(raw_delim) - 1))
                i += len(raw_delim)
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    code_lines = "".join(out).splitlines()
    # splitlines drops a trailing partial line mismatch; pad to raw length.
    while len(code_lines) < len(raw_lines):
        code_lines.append("")
    return code_lines, raw_lines


def collect_pragmas(raw_lines):
    """Returns (file_allows, line_allows, self_checkpointed)."""
    file_allows = set()
    line_allows = {}  # line number (1-based) -> set of rules
    checkpointed = False
    for idx, line in enumerate(raw_lines, start=1):
        for match in PRAGMA.finditer(line):
            kind, rule = match.group(1), match.group(2)
            if kind == "checkpointed":
                checkpointed = True
            elif kind == "allow-file" and rule:
                file_allows.add(rule)
            elif kind == "allow" and rule:
                # Covers the pragma's own line and the following line, so
                # the comment can sit above the offending statement.
                line_allows.setdefault(idx, set()).add(rule)
                line_allows.setdefault(idx + 1, set()).add(rule)
    return file_allows, line_allows, checkpointed


# `"…" +` or `+ "…"` with ++/+= excluded; literal bodies are blanked, so a
# `+` inside a string cannot trip this, and a literal is any quoted span.
CONCAT_LITERAL = re.compile(r'"\s*\+(?![+=])|(?<!\+)(?<!\+\s)\+\s*"')
THROW_STD = re.compile(r"\bthrow\s+std::(runtime_error|logic_error)\b")
RAW_MUTEX = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")
UNSEEDED_RNG = re.compile(r"(?<![\w:])(?:s?rand)\s*\(|\bstd::random_device\b")
CPU_DETECT = re.compile(
    r"\b__builtin_cpu_(?:supports|init)\b|\b__get_cpuid(?:_count)?\b|"
    r"\b_may_i_use_cpu_feature\b")


def lint_file(path: Path, rel: str, rules):
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as error:
        return [Finding(rel, 0, "io", f"unreadable: {error}")]

    code_lines, raw_lines = strip_code(text)
    file_allows, line_allows, self_checkpointed = collect_pragmas(raw_lines)
    findings = []

    def report(lineno: int, rule: str, message: str):
        if rule in file_allows:
            return
        if rule in line_allows.get(lineno, ()):  # pragma on line or above
            return
        findings.append(Finding(rel, lineno, rule, message))

    for idx, line in enumerate(code_lines, start=1):
        if "string-concat-plus" in rules and CONCAT_LITERAL.search(line):
            report(idx, "string-concat-plus",
                   "operator+ on a string literal trips gcc 12 -Wrestrict "
                   "(PR105651) and allocates per step; use safeopt::concat")
        if "error-taxonomy" in rules:
            match = THROW_STD.search(line)
            if match:
                report(idx, "error-taxonomy",
                       f"throw std::{match.group(1)} bypasses the "
                       "safeopt::Error taxonomy; throw "
                       "Error(ErrorCategory::…, …) so callers can react to "
                       "the category")
        if ("raw-mutex" in rules and rel not in RAW_MUTEX_ALLOWED
                and RAW_MUTEX.search(line)):
            report(idx, "raw-mutex",
                   "raw std synchronization primitive; use safeopt::Mutex / "
                   "MutexLock (safeopt/support/mutex.h) so clang "
                   "-Wthread-safety sees the lock discipline")
        if "unseeded-rng" in rules and UNSEEDED_RNG.search(line):
            report(idx, "unseeded-rng",
                   "unseeded/global randomness; use the explicitly seeded "
                   "xoshiro streams (safeopt/support/rng.h) to keep runs "
                   "reproducible")
        if ("cpu-detect" in rules and rel not in CPU_DETECT_ALLOWED
                and CPU_DETECT.search(line)):
            report(idx, "cpu-detect",
                   "raw CPUID probe outside src/expr/cpu_features.cpp; ask "
                   "safeopt::expr::cpu_features() so backend availability "
                   "has one cached source of truth")

    if "checkpoint-poll" in rules:
        declared = rel in CHECKPOINTED_FILES or self_checkpointed
        if declared and "checkpoint-poll" not in file_allows:
            code = "\n".join(code_lines)
            if not CHECKPOINT_POLL.search(code):
                report(1, "checkpoint-poll",
                       "file is declared checkpointed (docs/robustness.md) "
                       "but never polls an ExecutionControl "
                       "(.check()/should_abort()/status())")
    return findings


ALL_RULES = ("string-concat-plus", "error-taxonomy", "raw-mutex",
             "unseeded-rng", "checkpoint-poll", "cpu-detect")


def iter_sources(paths, root: Path):
    for path in paths:
        p = (root / path) if not Path(path).is_absolute() else Path(path)
        if p.is_dir():
            for child in sorted(p.rglob("*")):
                if child.suffix in SOURCE_SUFFIXES and child.is_file():
                    yield child
        elif p.is_file():
            yield p
        else:
            raise FileNotFoundError(path)


def run_lint(args) -> int:
    root = Path(args.root).resolve()
    rules = set(args.rule) if args.rule else set(ALL_RULES)
    unknown = rules - set(ALL_RULES)
    if unknown:
        print(f"unknown rule(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2
    findings = []
    for source in iter_sources(args.paths, root):
        try:
            rel = source.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = source.as_posix()
        findings.extend(lint_file(source, rel, rules))
    for finding in findings:
        print(finding)
    if findings:
        print(f"safeopt-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def run_self_test(fixtures: Path) -> int:
    """Fixture layout: <fixtures>/<rule>/good*.cpp must be clean for <rule>;
    <fixtures>/<rule>/bad*.cpp must produce >=1 finding of <rule>."""
    failures = []
    checked = 0
    for rule_dir in sorted(p for p in fixtures.iterdir() if p.is_dir()):
        rule = rule_dir.name
        if rule not in ALL_RULES:
            failures.append(f"{rule_dir}: not a rule name")
            continue
        for fixture in sorted(rule_dir.iterdir()):
            if fixture.suffix not in SOURCE_SUFFIXES:
                continue
            checked += 1
            rel = fixture.as_posix()
            found = [f for f in lint_file(fixture, rel, {rule})
                     if f.rule == rule]
            if fixture.name.startswith("good") and found:
                failures.append(
                    f"{rel}: expected clean, got: " +
                    "; ".join(str(f) for f in found))
            elif fixture.name.startswith("bad") and not found:
                failures.append(f"{rel}: expected >=1 {rule} finding, got 0")
    if checked == 0:
        failures.append(f"{fixtures}: no fixtures found")
    for failure in failures:
        print(f"SELF-TEST FAIL: {failure}")
    print(f"safeopt-lint self-test: {checked} fixture(s), "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directories to lint (relative to "
                             "--root)")
    parser.add_argument("--root", default=".",
                        help="repo root; findings and allow-lists use paths "
                             "relative to it")
    parser.add_argument("--rule", action="append",
                        help="restrict to the given rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", metavar="FIXTURES",
                        help="run the good/bad fixture corpus and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(rule)
        return 0
    if args.self_test:
        return run_self_test(Path(args.self_test))
    if not args.paths:
        parser.error("no paths given (try: src)")
    return run_lint(args)


if __name__ == "__main__":
    sys.exit(main())
