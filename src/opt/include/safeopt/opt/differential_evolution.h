// Differential evolution (rand/1/bin): population-based global optimizer.
// The strongest general-purpose choice here when the cost surface has
// plateaus or multiple basins and dimensions beyond what grid search covers.
// Deterministic under a fixed seed.
#ifndef SAFEOPT_OPT_DIFFERENTIAL_EVOLUTION_H
#define SAFEOPT_OPT_DIFFERENTIAL_EVOLUTION_H

#include <cstdint>

#include "safeopt/opt/problem.h"

namespace safeopt::opt {

class DifferentialEvolution final : public Optimizer {
 public:
  struct Settings {
    std::size_t population = 0;      // 0 => max(15, 10·dimension)
    double differential_weight = 0.7;   // F
    double crossover_rate = 0.9;        // CR
    std::size_t generations = 200;
    /// Stop early when the population's best-to-worst value spread falls
    /// below this.
    double spread_tolerance = 1e-12;
  };

  DifferentialEvolution() : DifferentialEvolution(Settings{}) {}
  explicit DifferentialEvolution(Settings settings,
                                 std::uint64_t seed = 0xd1ffe);

  [[nodiscard]] OptimizationResult minimize(
      const Problem& problem) const override;
  [[nodiscard]] std::string name() const override {
    return "DifferentialEvolution";
  }

 private:
  Settings settings_;
  std::uint64_t seed_;
};

}  // namespace safeopt::opt

#endif  // SAFEOPT_OPT_DIFFERENTIAL_EVOLUTION_H
