#include "safeopt/fta/common_cause.h"

#include <gtest/gtest.h>

#include "safeopt/fta/cut_sets.h"

namespace safeopt::fta {
namespace {

/// Redundant pump pair: hazard = AND(pumpA, pumpB), both p = 0.01.
struct RedundantPair {
  RedundantPair() : tree("pumps") {
    const NodeId a = tree.add_basic_event("pumpA");
    const NodeId b = tree.add_basic_event("pumpB");
    tree.set_top(tree.add_and("both", {a, b}));
    input = QuantificationInput::for_tree(tree, 0.01);
  }
  FaultTree tree;
  QuantificationInput input;
};

TEST(BetaFactorTest, RewritesStructure) {
  const RedundantPair base;
  const CommonCauseModel model = apply_beta_factor(
      base.tree, base.input, {{"pumps", {"pumpA", "pumpB"}, 0.1}});
  EXPECT_TRUE(model.tree.validate().empty());
  // New leaves: pumps.ccf + 2 independent parts.
  EXPECT_EQ(model.tree.basic_event_count(), 3u);
  ASSERT_TRUE(model.tree.find("pumps.ccf").has_value());
  ASSERT_TRUE(model.tree.find("pumpA.indep").has_value());
  // The member position keeps its original name (now an OR gate).
  ASSERT_TRUE(model.tree.find("pumpA").has_value());
  EXPECT_EQ(model.tree.kind(*model.tree.find("pumpA")), NodeKind::kGate);
}

TEST(BetaFactorTest, CcfBecomesASingleCutSet) {
  const RedundantPair base;
  const CommonCauseModel model = apply_beta_factor(
      base.tree, base.input, {{"pumps", {"pumpA", "pumpB"}, 0.1}});
  const CutSetCollection mcs = minimal_cut_sets(model.tree);
  // {ccf} alone defeats the redundancy; {A.indep, B.indep} remains.
  ASSERT_EQ(mcs.size(), 2u);
  EXPECT_EQ(mcs[0].order(), 1u);
  EXPECT_EQ(mcs[1].order(), 2u);
  EXPECT_NE(mcs.to_string(model.tree).find("pumps.ccf"), std::string::npos);
}

TEST(BetaFactorTest, ProbabilitiesFollowTheBetaSplit) {
  const RedundantPair base;
  const double beta = 0.1;
  const CommonCauseModel model = apply_beta_factor(
      base.tree, base.input, {{"pumps", {"pumpA", "pumpB"}, beta}});
  const CutSetCollection mcs = minimal_cut_sets(model.tree);
  const double p = top_event_probability(mcs, model.probabilities);
  // Rare-event: β·p + ((1−β)·p)² = 1e-3 + (9e-3)² = 1.081e-3.
  EXPECT_NEAR(p, beta * 0.01 + (0.9 * 0.01) * (0.9 * 0.01), 1e-12);
}

TEST(BetaFactorTest, CommonCauseDominatesRedundancy) {
  // The engineering point of CCF analysis: with independence the pair looks
  // 1e-4-safe; a 10% beta factor makes it 1e-3 — an order of magnitude
  // worse, dominated by the shared cause.
  const RedundantPair base;
  const double independent = top_event_probability(
      minimal_cut_sets(base.tree), base.input);
  const CommonCauseModel model = apply_beta_factor(
      base.tree, base.input, {{"pumps", {"pumpA", "pumpB"}, 0.1}});
  const double with_ccf = top_event_probability(
      minimal_cut_sets(model.tree), model.probabilities);
  EXPECT_NEAR(independent, 1e-4, 1e-12);
  EXPECT_GT(with_ccf, 9.0 * independent);
}

TEST(BetaFactorTest, BetaOneMeansFullyCommon) {
  const RedundantPair base;
  const CommonCauseModel model = apply_beta_factor(
      base.tree, base.input, {{"pumps", {"pumpA", "pumpB"}, 1.0}});
  const double p = top_event_probability(minimal_cut_sets(model.tree),
                                          model.probabilities);
  // Everything is the shared cause: P = β·p = 0.01 (independent parts 0).
  EXPECT_NEAR(p, 0.01, 1e-12);
}

TEST(BetaFactorTest, MultipleDisjointGroups) {
  FaultTree tree("two-groups");
  const NodeId a = tree.add_basic_event("a");
  const NodeId b = tree.add_basic_event("b");
  const NodeId c = tree.add_basic_event("c");
  const NodeId d = tree.add_basic_event("d");
  const NodeId ab = tree.add_and("ab", {a, b});
  const NodeId cd = tree.add_and("cd", {c, d});
  tree.set_top(tree.add_or("top", {ab, cd}));
  QuantificationInput input = QuantificationInput::for_tree(tree, 0.02);
  const CommonCauseModel model = apply_beta_factor(
      tree, input,
      {{"g1", {"a", "b"}, 0.2}, {"g2", {"c", "d"}, 0.5}});
  EXPECT_TRUE(model.tree.validate().empty());
  const CutSetCollection mcs = minimal_cut_sets(model.tree);
  // {g1.ccf}, {g2.ccf}, {a.indep, b.indep}, {c.indep, d.indep}.
  EXPECT_EQ(mcs.size(), 4u);
  const double p = top_event_probability(mcs, model.probabilities);
  const double expected = 0.2 * 0.02 + 0.5 * 0.02 +
                          (0.8 * 0.02) * (0.8 * 0.02) +
                          (0.5 * 0.02) * (0.5 * 0.02);
  EXPECT_NEAR(p, expected, 1e-12);
}

TEST(BetaFactorTest, PreservesInhibitStructure) {
  FaultTree tree("guarded");
  const NodeId a = tree.add_basic_event("a");
  const NodeId b = tree.add_basic_event("b");
  const NodeId both = tree.add_and("both", {a, b});
  const NodeId env = tree.add_condition("env");
  tree.set_top(tree.add_inhibit("top", both, env));
  QuantificationInput input = QuantificationInput::for_tree(tree, 0.1);
  input.set(tree, "env", 0.5);
  const CommonCauseModel model =
      apply_beta_factor(tree, input, {{"g", {"a", "b"}, 0.25}});
  const CutSetCollection mcs = minimal_cut_sets(model.tree);
  // Both cut sets stay constrained by the condition.
  for (const CutSet& cs : mcs.sets()) {
    EXPECT_EQ(cs.conditions.size(), 1u);
  }
  const double p = top_event_probability(mcs, model.probabilities);
  EXPECT_NEAR(p, 0.5 * (0.25 * 0.1 + 0.075 * 0.075), 1e-12);
}

TEST(BetaFactorDeathTest, RejectsOverlappingGroups) {
  const RedundantPair base;
  EXPECT_DEATH(apply_beta_factor(base.tree, base.input,
                                 {{"g1", {"pumpA", "pumpB"}, 0.1},
                                  {"g2", {"pumpB", "pumpA"}, 0.1}}),
               "precondition");
}

TEST(BetaFactorDeathTest, RejectsUnknownMembers) {
  const RedundantPair base;
  EXPECT_DEATH(apply_beta_factor(base.tree, base.input,
                                 {{"g", {"pumpA", "ghost"}, 0.1}}),
               "precondition");
}

}  // namespace
}  // namespace safeopt::fta
