// Paper §V extensions in action: "the results of this analysis depend a lot
// on how well the statistical model reflects reality" — so quantify that
// dependence instead of hoping.
//
//   1. Epistemic uncertainty propagation: lognormal error factors on the
//      Elbtunnel leaf probabilities -> percentiles of P(HAlr).
//   2. Common-cause analysis (paper §II-C points to it for correlated
//      failures): a beta factor on a redundant sensor pair.
//   3. Robust safety optimization (§V: "reduce the whole optimization
//      problem to a problem of stochastic programming"): optimize the
//      timers when the HV rate itself is uncertain, by expected cost and
//      by worst case, and report the regret.
#include <cstdio>

#include "safeopt/core/robust_optimizer.h"
#include "safeopt/elbtunnel/elbtunnel_model.h"
#include "safeopt/fta/common_cause.h"
#include "safeopt/fta/cut_sets.h"
#include "safeopt/mc/uncertainty.h"

int main() {
  using namespace safeopt;
  const elbtunnel::ElbtunnelModel model;

  // ---- 1. uncertainty propagation on the false-alarm hazard -------------
  std::printf("== 1. epistemic uncertainty on P(HAlr) ==\n\n");
  const fta::FaultTree alarm_tree = model.false_alarm_tree();
  const auto quantification = model.false_alarm_quantification(alarm_tree);
  const fta::QuantificationInput point =
      quantification.evaluate({{"T1", 19.0}, {"T2", 15.6}});
  const fta::CutSetCollection mcs = fta::minimal_cut_sets(alarm_tree);

  for (const double error_factor : {2.0, 5.0, 10.0}) {
    mc::UncertainQuantification uncertain(alarm_tree, point);
    uncertain.set_lognormal_error_factor(
        "HVODfinal", point.basic_event_probability[1], error_factor);
    uncertain.set_lognormal_error_factor(
        "OtherFalseAlarmCauses", point.basic_event_probability[0],
        error_factor);
    const mc::UncertaintyResult result =
        mc::propagate_uncertainty(uncertain, mcs, 20000);
    std::printf(
        "  error factor %4.1f: median %.3e, 90%% band [%.3e, %.3e] "
        "(span %.1fx)\n",
        error_factor, result.median, result.p05, result.p95,
        result.uncertainty_span());
  }

  // ---- 2. common-cause beta factor on a redundant detector pair ---------
  std::printf("\n== 2. beta-factor common cause on redundant detectors ==\n\n");
  fta::FaultTree detectors("missed-detection");
  const auto d1 = detectors.add_basic_event("detector1_blind");
  const auto d2 = detectors.add_basic_event("detector2_blind");
  detectors.set_top(detectors.add_and("both_blind", {d1, d2}));
  const auto input = fta::QuantificationInput::for_tree(detectors, 1e-3);
  const double independent = fta::top_event_probability(
      fta::minimal_cut_sets(detectors), input);
  std::printf("  independent 1e-3 pair:  P(both blind) = %.3e\n",
              independent);
  for (const double beta : {0.05, 0.1, 0.2}) {
    const fta::CommonCauseModel ccf = fta::apply_beta_factor(
        detectors, input,
        {{"detector_pair", {"detector1_blind", "detector2_blind"}, beta}});
    const double with_ccf = fta::top_event_probability(
        fta::minimal_cut_sets(ccf.tree), ccf.probabilities);
    std::printf("  beta = %.2f:            P(both blind) = %.3e  (%.0fx)\n",
                beta, with_ccf, with_ccf / independent);
  }

  // ---- 3. robust timer optimization under HV-rate uncertainty -----------
  std::printf("\n== 3. robust optimization: uncertain HV rate ==\n\n");
  const auto scenario = [&](Rng& rng) {
    // The left-lane HV rate is only known to within a factor ~2.
    elbtunnel::ModelParameters params = model.parameters();
    params.hv_left_rate_per_min *= uniform(rng, 0.5, 2.0);
    const elbtunnel::ElbtunnelModel world(params);
    return world.cost_model().cost_expression();
  };
  const core::ScenarioSet scenarios(12, scenario, 0xe1b);
  const core::RobustSafetyOptimizer robust(scenarios,
                                           model.parameter_space());

  const auto expected = robust.optimize(core::RobustCriterion::kExpectedValue);
  const auto minimax = robust.optimize(core::RobustCriterion::kWorstCase);
  const auto nominal = model.optimizer().optimize();

  std::printf("  %-22s T1=%6.2f T2=%6.2f  E[cost]=%.6f  worst=%.6f\n",
              "nominal-model optimum", nominal.optimization.argmin[0],
              nominal.optimization.argmin[1],
              scenarios.expected_cost().evaluate(nominal.optimal_parameters),
              scenarios.worst_case_cost().evaluate(
                  nominal.optimal_parameters));
  std::printf("  %-22s T1=%6.2f T2=%6.2f  E[cost]=%.6f  worst=%.6f\n",
              "expected-value robust", expected.optimization.argmin[0],
              expected.optimization.argmin[1], expected.expected_cost,
              expected.worst_case_cost);
  std::printf("  %-22s T1=%6.2f T2=%6.2f  E[cost]=%.6f  worst=%.6f\n",
              "worst-case robust", minimax.optimization.argmin[0],
              minimax.optimization.argmin[1], minimax.expected_cost,
              minimax.worst_case_cost);
  std::printf("\n  max regret: nominal %.3e, robust %.3e\n",
              robust.max_regret(nominal.optimal_parameters),
              robust.max_regret(expected.optimal_parameters));
  return 0;
}
