#include "safeopt/serve/server.h"

#include <cmath>
#include <utility>

#include "safeopt/expr/eval_backend.h"
#include "safeopt/ftio/parser.h"
#include "safeopt/support/build_info.h"
#include "safeopt/support/error.h"
#include "safeopt/support/json.h"
#include "safeopt/support/strings.h"

namespace safeopt::serve {
namespace {

/// Taxonomy → status for failures raised by the analysis passes.
int status_for(ErrorCategory category) noexcept {
  switch (category) {
    case ErrorCategory::kInvalidInput: return 400;
    case ErrorCategory::kResourceExhausted: return 429;
    case ErrorCategory::kDeadlineExceeded: return 504;
    case ErrorCategory::kCancelled: return 499;
    case ErrorCategory::kInternal: return 500;
  }
  return 500;
}

/// Taxonomy → status for failures while *reading* the request: the client
/// is at fault in different ways than a failing analysis.
int read_status_for(ErrorCategory category) noexcept {
  switch (category) {
    case ErrorCategory::kInvalidInput: return 400;
    case ErrorCategory::kResourceExhausted: return 413;
    case ErrorCategory::kDeadlineExceeded: return 408;
    default: return 500;
  }
}

std::string_view category_for_status(int status) noexcept {
  switch (status) {
    case 400: case 404: case 405: case 408: case 413: return "invalid_input";
    case 429: return "resource_exhausted";
    case 499: return "cancelled";
    case 504: return "deadline_exceeded";
    default: return "internal";
  }
}

struct ParsedRequest {
  std::string document;
  AnalysisOptions options;
  std::string tenant = "default";
  std::uint64_t deadline_ms = 0;  // 0 = none requested
};

std::uint64_t to_u64(const JsonValue& value, std::string_view field) {
  const double number = value.as_number();
  if (!(number >= 0) || number != std::floor(number)) {
    throw Error(ErrorCategory::kInvalidInput,
                concat("field \"", field,
                       "\" must be a non-negative integer"));
  }
  return static_cast<std::uint64_t>(number);
}

/// Decodes the analysis-request body shared by quantify/optimize/validate.
ParsedRequest parse_request_body(const HttpRequest& request) {
  const JsonValue body = JsonValue::parse(request.body);
  if (!body.is_object()) {
    throw Error(ErrorCategory::kInvalidInput,
                "request body must be a JSON object");
  }
  ParsedRequest parsed;
  const JsonValue* document = body.find("document");
  if (document == nullptr) {
    throw Error(ErrorCategory::kInvalidInput,
                "request body needs a \"document\" string (the study text)");
  }
  parsed.document = document->as_string();
  parsed.options.model = "request";
  if (const JsonValue* model = body.find("model")) {
    parsed.options.model = model->as_string();
  }
  if (const JsonValue* engine = body.find("engine")) {
    parsed.options.engine = engine->as_string();
  }
  if (const JsonValue* opts = body.find("engine_options")) {
    for (const JsonValue& option : opts->items()) {
      parsed.options.engine_options.push_back(option.as_string());
    }
  }
  if (const JsonValue* solver = body.find("solver")) {
    parsed.options.solver = solver->as_string();
  }
  if (const JsonValue* extras = body.find("extras")) {
    for (const JsonValue& extra : extras->items()) {
      parsed.options.extras.push_back(extra.as_string());
    }
  }
  if (const JsonValue* seed = body.find("seed")) {
    parsed.options.seed = to_u64(*seed, "seed");
  }
  if (const JsonValue* at = body.find("at")) {
    for (const auto& [name, value] : at->members()) {
      parsed.options.at.emplace_back(name, value.as_number());
    }
  }
  if (const JsonValue* deadline = body.find("deadline_ms")) {
    parsed.deadline_ms = to_u64(*deadline, "deadline_ms");
  }
  if (const std::string* tenant = request.find_header("x-tenant")) {
    parsed.tenant = *tenant;
  } else if (const JsonValue* tenant = body.find("tenant")) {
    parsed.tenant = tenant->as_string();
  }
  return parsed;
}

JsonValue pass_stats_json(const CacheStats& cache) {
  JsonValue passes = JsonValue::object();
  for (const auto& [name, stats] : cache.passes) {
    JsonValue pass = JsonValue::object();
    pass.set("hits", JsonValue::number(static_cast<double>(stats.hits)));
    pass.set("misses", JsonValue::number(static_cast<double>(stats.misses)));
    passes.set(name, std::move(pass));
  }
  return passes;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      graph_(options_.cache_bytes),
      pool_(options_.threads) {
  SchedulerOptions scheduler_options;
  scheduler_options.pool = &pool_;
  scheduler_options.max_queue_per_tenant = options_.max_queue;
  scheduler_options.max_concurrent = options_.max_concurrent;
  scheduler_options.tenant_weights = options_.tenant_weights;
  scheduler_options.max_tenants = options_.max_tenants;
  scheduler_ = std::make_unique<AdmissionScheduler>(scheduler_options);
}

Server::~Server() { stop(); }

void Server::start() {
  listener_ = TcpListener::bind_loopback(options_.port);
  port_ = listener_.port();
  started_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopped_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  scheduler_->drain();
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

ServerStats Server::stats() const {
  const MutexLock lock(stats_mutex_);
  return stats_;
}

void Server::accept_loop() {
  std::uint64_t accepted = 0;
  while (true) {
    std::optional<TcpSocket> socket = listener_.accept();
    if (!socket.has_value()) break;
    ++accepted;
    {
      const MutexLock lock(stats_mutex_);
      ++stats_.accepted;
    }
    // Read + parse on the worker pool, not here: a slow or malicious
    // client (slowloris) then stalls one worker for at most the receive
    // timeout instead of head-of-line blocking every other connection on
    // the single accept thread.
    auto connection = std::make_shared<TcpSocket>(std::move(*socket));
    {
      const MutexLock lock(connections_mutex_);
      ++open_connections_;
    }
    pool_.submit([this, connection] {
      try {
        handle_connection(connection);
      } catch (...) {
        // handle_connection answers its own failures; containment here
        // only keeps the connection accounting balanced on a handler bug.
      }
      // Notify under the lock so a waiter in accept_loop cannot finish its
      // predicate re-check and tear the condition variable down mid-notify.
      const MutexLock lock(connections_mutex_);
      --open_connections_;
      connections_cv_.notify_all();
    });
    if (options_.max_requests != 0 && accepted >= options_.max_requests) {
      listener_.close();
      break;
    }
  }
  // Once every accepted connection has been read and either answered or
  // handed to the scheduler, the drain below covers the analysis jobs too.
  {
    MutexLock lock(connections_mutex_);
    while (open_connections_ != 0) lock.wait(connections_cv_);
  }
  scheduler_->drain();
  finished_.store(true, std::memory_order_release);
}

void Server::handle_connection(const std::shared_ptr<TcpSocket>& socket) {
  const auto finish = [this, socket](HttpResponse response) {
    {
      const MutexLock lock(stats_mutex_);
      switch (response.status) {
        case 200: ++stats_.ok; break;
        case 429: ++stats_.shed; break;
        case 499: ++stats_.cancelled; break;
        case 504: ++stats_.deadline; break;
        case 500: ++stats_.internal; break;
        default: ++stats_.invalid; break;
      }
    }
    try {
      write_http_response(*socket, response);
    } catch (const Error&) {
      // Peer already gone; the outcome is still counted above.
    }
    socket->close();
  };
  const auto fail = [&finish](int status, std::string_view message) {
    finish(HttpResponse{status, "application/json",
                        render_error_response(category_for_status(status),
                                              message)});
  };

  std::optional<HttpRequest> request;
  try {
    request = read_http_request(*socket, options_.http_limits);
  } catch (const Error& error) {
    fail(read_status_for(error.category()), error.what());
    return;
  } catch (const std::exception& error) {
    fail(500, error.what());
    return;
  }
  if (!request.has_value()) return;  // probe connect, nothing to answer

  if (request->target == "/v1/stats") {
    if (request->method != "GET") {
      fail(405, "use GET /v1/stats");
      return;
    }
    finish(HttpResponse{200, "application/json", stats_body()});
    return;
  }
  const bool is_quantify = request->target == "/v1/quantify";
  const bool is_optimize = request->target == "/v1/optimize";
  const bool is_validate = request->target == "/v1/validate";
  if (!is_quantify && !is_optimize && !is_validate) {
    fail(404, concat("unknown path \"", request->target,
                     "\" (endpoints: /v1/quantify /v1/optimize /v1/validate "
                     "/v1/stats)"));
    return;
  }
  if (request->method != "POST") {
    fail(405, concat("use POST ", request->target));
    return;
  }

  ParsedRequest parsed;
  try {
    parsed = parse_request_body(*request);
  } catch (const Error& error) {
    fail(status_for(error.category()), error.what());
    return;
  }

  // Admission: shed synchronously (429) when the tenant's queue is full;
  // otherwise the job runs on the pool under weighted fair queuing and
  // answers the client itself.
  const std::string tenant = parsed.tenant;
  auto job = [this, socket, finish, parsed = std::move(parsed), is_quantify,
              is_optimize]() {
    const std::uint64_t deadline_ms = parsed.deadline_ms != 0
                                          ? parsed.deadline_ms
                                          : options_.default_deadline_ms;
    ExecutionControl control(deadline_ms != 0 ? Deadline::after_ms(deadline_ms)
                                              : Deadline::never());
    // Client-disconnect cancellation: the engines' cooperative checkpoints
    // poll this probe; a vanished client aborts its own request instead of
    // burning a worker on an answer nobody reads.
    control.probe = [socket]() -> ExecutionStatus {
      return socket->peer_closed() ? ExecutionStatus::kCancelled
                                   : ExecutionStatus::kRunning;
    };
    try {
      std::string body;
      if (is_quantify) {
        body = graph_.quantify(parsed.document, parsed.options, &control);
      } else if (is_optimize) {
        body = graph_.optimize(parsed.document, parsed.options, &control);
      } else {
        body = graph_.validate(parsed.document, parsed.options);
      }
      finish(HttpResponse{200, "application/json", std::move(body)});
    } catch (const ftio::ParseError& error) {
      finish(HttpResponse{400, "application/json",
                          render_error_response("invalid_input",
                                                error.what())});
    } catch (const Error& error) {
      finish(HttpResponse{status_for(error.category()), "application/json",
                          render_error_response(
                              category_name(error.category()),
                              error.what())});
    } catch (const std::invalid_argument& error) {
      finish(HttpResponse{400, "application/json",
                          render_error_response("invalid_input",
                                                error.what())});
    } catch (const std::exception& error) {
      finish(HttpResponse{500, "application/json",
                          render_error_response("internal", error.what())});
    }
  };
  try {
    scheduler_->submit(tenant, std::move(job));
  } catch (const Error& error) {
    fail(status_for(error.category()), error.what());
  }
}

std::string Server::stats_body() const {
  const CacheStats cache = graph_.cache_stats();
  const SchedulerStats scheduler = scheduler_->stats();
  const ServerStats server = stats();

  JsonValue root = JsonValue::object();
  root.set("build", JsonValue::string(build_info_string()));
  root.set("version",
           JsonValue::string(std::string(build_info().version)));
  root.set("backend",
           JsonValue::string(
               std::string(expr::BackendRegistry::active().name())));

  JsonValue requests = JsonValue::object();
  const auto count = [&requests](std::string_view name, std::uint64_t n) {
    requests.set(std::string(name),
                 JsonValue::number(static_cast<double>(n)));
  };
  count("accepted", server.accepted);
  count("ok", server.ok);
  count("invalid", server.invalid);
  count("shed", server.shed);
  count("deadline_exceeded", server.deadline);
  count("cancelled", server.cancelled);
  count("internal", server.internal);
  root.set("requests", std::move(requests));

  JsonValue cache_json = JsonValue::object();
  cache_json.set("hits", JsonValue::number(static_cast<double>(cache.hits)));
  cache_json.set("misses",
                 JsonValue::number(static_cast<double>(cache.misses)));
  cache_json.set("single_flight_waits",
                 JsonValue::number(
                     static_cast<double>(cache.single_flight_waits)));
  cache_json.set("single_flight_reruns",
                 JsonValue::number(
                     static_cast<double>(cache.single_flight_reruns)));
  cache_json.set("evictions",
                 JsonValue::number(static_cast<double>(cache.evictions)));
  cache_json.set("bytes_in_use",
                 JsonValue::number(static_cast<double>(cache.bytes_in_use)));
  cache_json.set("byte_budget",
                 JsonValue::number(static_cast<double>(cache.byte_budget)));
  cache_json.set("entries",
                 JsonValue::number(static_cast<double>(cache.entries)));
  cache_json.set("passes", pass_stats_json(cache));
  root.set("cache", std::move(cache_json));

  JsonValue scheduler_json = JsonValue::object();
  scheduler_json.set("submitted",
                     JsonValue::number(
                         static_cast<double>(scheduler.submitted)));
  scheduler_json.set("completed",
                     JsonValue::number(
                         static_cast<double>(scheduler.completed)));
  scheduler_json.set("shed",
                     JsonValue::number(static_cast<double>(scheduler.shed)));
  scheduler_json.set("queued",
                     JsonValue::number(
                         static_cast<double>(scheduler.queued)));
  scheduler_json.set("running",
                     JsonValue::number(
                         static_cast<double>(scheduler.running)));
  JsonValue tenants = JsonValue::object();
  for (const auto& [name, tenant] : scheduler.tenants) {
    JsonValue row = JsonValue::object();
    row.set("submitted",
            JsonValue::number(static_cast<double>(tenant.submitted)));
    row.set("completed",
            JsonValue::number(static_cast<double>(tenant.completed)));
    row.set("shed", JsonValue::number(static_cast<double>(tenant.shed)));
    row.set("weight", JsonValue::number(tenant.weight));
    tenants.set(name, std::move(row));
  }
  scheduler_json.set("tenants", std::move(tenants));
  root.set("scheduler", std::move(scheduler_json));

  JsonValue passes = JsonValue::array();
  for (const PassDesc& pass : analysis_passes()) {
    passes.push_back(JsonValue::string(std::string(pass.name)));
  }
  root.set("analysis_passes", std::move(passes));
  return root.dump();
}

}  // namespace safeopt::serve
